// Package cliutil holds the flag-validation helpers the wadate and
// waserve binaries share: parsing the comma-separated axis flags
// (backends, comb sizes, objective sets) and the usage-error
// convention. Keeping them here means the two binaries cannot drift —
// a backend accepted by one is accepted by the other, and both report
// a flag combination that can never work as exit status 2 (like a
// flag-parse failure) instead of the runtime-failure status 1.
package cliutil

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// UsageError marks a flag combination or value that can never work,
// detected before any work runs. Binaries map it to exit status 2 via
// ExitStatus.
type UsageError struct{ Err error }

// Error implements error.
func (u UsageError) Error() string { return u.Err.Error() }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (u UsageError) Unwrap() error { return u.Err }

// Usagef builds a UsageError from a format string.
func Usagef(format string, args ...any) error {
	return UsageError{Err: fmt.Errorf(format, args...)}
}

// IsUsage reports whether err marks a usage error.
func IsUsage(err error) bool {
	var u UsageError
	return errors.As(err, &u)
}

// ExitStatus maps an error to the process exit status: 2 for usage
// errors, 1 for everything else (runtime failures).
func ExitStatus(err error) int {
	if IsUsage(err) {
		return 2
	}
	return 1
}

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseBackends validates a comma-separated backend list against
// core.Backends(). An unknown backend is a usage error, reported
// before any work runs.
func ParseBackends(s string) ([]string, error) {
	known := make(map[string]bool)
	for _, b := range core.Backends() {
		known[b] = true
	}
	var out []string
	for _, part := range SplitList(s) {
		if !known[part] {
			return nil, Usagef("unknown backend %q (want one of %s)", part, strings.Join(core.Backends(), ", "))
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, Usagef("no backends in %q", s)
	}
	return out, nil
}

// ParseNWs parses a comma-separated list of comb sizes. Non-positive
// or non-numeric entries are usage errors.
func ParseNWs(s string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, Usagef("bad wavelength count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, Usagef("no wavelength counts in %q", s)
	}
	return out, nil
}

// ParseObjectiveSets parses a comma-separated list of the short
// objective-set names ("teb", "te", "tb") via core.ParseObjectiveSet.
func ParseObjectiveSets(s string) ([]core.ObjectiveSet, error) {
	var out []core.ObjectiveSet
	for _, part := range SplitList(s) {
		os, err := core.ParseObjectiveSet(part)
		if err != nil {
			return nil, UsageError{Err: err}
		}
		out = append(out, os)
	}
	if len(out) == 0 {
		return nil, Usagef("no objective sets in %q", s)
	}
	return out, nil
}
