package cliutil

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestUsageErrorExitStatus(t *testing.T) {
	if got := ExitStatus(Usagef("bad flag")); got != 2 {
		t.Fatalf("usage error exit status = %d, want 2", got)
	}
	if got := ExitStatus(fmt.Errorf("runtime failure")); got != 1 {
		t.Fatalf("runtime error exit status = %d, want 1", got)
	}
	// Wrapped usage errors must still map to 2: main wraps parse
	// errors with context before exiting.
	wrapped := fmt.Errorf("campaign: %w", Usagef("bad flag"))
	if got := ExitStatus(wrapped); got != 2 {
		t.Fatalf("wrapped usage error exit status = %d, want 2", got)
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SplitList = %v", got)
	}
	if SplitList(" , ") != nil {
		t.Fatalf("SplitList of blanks = %v, want nil", SplitList(" , "))
	}
}

func TestParseBackends(t *testing.T) {
	got, err := ParseBackends("ring,crossbar")
	if err != nil || !reflect.DeepEqual(got, []string{"ring", "crossbar"}) {
		t.Fatalf("ParseBackends = %v, %v", got, err)
	}
	for _, bad := range []string{"mesh", "", "ring,mesh"} {
		if _, err := ParseBackends(bad); err == nil || !IsUsage(err) {
			t.Fatalf("ParseBackends(%q) = %v, want usage error", bad, err)
		}
	}
}

func TestParseNWs(t *testing.T) {
	got, err := ParseNWs("4, 8,12")
	if err != nil || !reflect.DeepEqual(got, []int{4, 8, 12}) {
		t.Fatalf("ParseNWs = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-4", "eight", ""} {
		if _, err := ParseNWs(bad); err == nil || !IsUsage(err) {
			t.Fatalf("ParseNWs(%q) = %v, want usage error", bad, err)
		}
	}
}

func TestParseObjectiveSets(t *testing.T) {
	got, err := ParseObjectiveSets("teb,te,tb")
	want := []core.ObjectiveSet{core.TimeEnergyBER, core.TimeEnergy, core.TimeBER}
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseObjectiveSets = %v, %v", got, err)
	}
	for _, bad := range []string{"tx", ""} {
		if _, err := ParseObjectiveSets(bad); err == nil || !IsUsage(err) {
			t.Fatalf("ParseObjectiveSets(%q) = %v, want usage error", bad, err)
		}
	}
	// Round trip through the short names core exposes.
	for _, os := range want {
		back, err := core.ParseObjectiveSet(os.ShortName())
		if err != nil || back != os {
			t.Fatalf("ParseObjectiveSet(%q) = %v, %v", os.ShortName(), back, err)
		}
	}
}
