package serve

import (
	"sync"

	"repro/internal/jsonx"
)

// This file is the serving-side assembly fast path: hand-rolled
// compact encoders for the wire types every request marshals. The
// bytes are identical to encoding/json's — encode_test.go diffs each
// composed response against the stdlib, float notation, omitempty
// rules and HTML escaping included — so the CLI/daemon byte-identity
// contract (see encodeJSON) is untouched; only the reflection and the
// per-response allocation storm are gone. Types the switch does not
// know (the cold status endpoints' maps) and documents carrying
// non-finite floats fall back to encoding/json.

// jenc composes compact JSON into an append-only buffer.
type jenc struct {
	b   []byte
	bad bool // non-finite float seen: the caller must fall back
}

func (e *jenc) raw(s string) { e.b = append(e.b, s...) }
func (e *jenc) str(s string) { e.b = jsonx.AppendString(e.b, s) }
func (e *jenc) num(i int)    { e.b = jsonx.AppendInt(e.b, int64(i)) }
func (e *jenc) i64(i int64)  { e.b = jsonx.AppendInt(e.b, i) }
func (e *jenc) boolv(v bool) {
	if v {
		e.raw("true")
	} else {
		e.raw("false")
	}
}
func (e *jenc) f64(f float64) {
	if !jsonx.Finite(f) {
		e.bad = true
		e.b = append(e.b, '0')
		return
	}
	e.b = jsonx.AppendFloat(e.b, f)
}

func (e *jenc) ints(xs []int) {
	if xs == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i, x := range xs {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.num(x)
	}
	e.b = append(e.b, ']')
}

func (e *jenc) metrics(m *MetricsJSON) {
	e.raw(`{"makespan_cycles":`)
	e.f64(m.MakespanCycles)
	e.raw(`,"time_kcc":`)
	e.f64(m.TimeKCC)
	e.raw(`,"bit_energy_fj":`)
	e.f64(m.BitEnergyFJ)
	e.raw(`,"mean_ber":`)
	e.f64(m.MeanBER)
	e.raw(`,"log10_mean_ber":`)
	e.f64(m.Log10MeanBER)
	e.raw(`,"worst_ber":`)
	e.f64(m.WorstBER)
	e.raw(`,"counts":`)
	e.ints(m.Counts)
	e.raw("}")
}

func (e *jenc) evaluate(r *EvaluateResponse) {
	e.raw(`{"workload":`)
	e.str(r.Workload)
	e.raw(`,"backend":`)
	e.str(r.Backend)
	e.raw(`,"nw":`)
	e.num(r.NW)
	e.raw(`,"genome":`)
	e.str(r.Genome)
	e.raw(`,"valid":`)
	e.boolv(r.Valid)
	e.raw(`,"violation":`)
	e.f64(r.Violation)
	if r.Reason != "" {
		e.raw(`,"reason":`)
		e.str(r.Reason)
	}
	if r.Metrics != nil {
		e.raw(`,"metrics":`)
		e.metrics(r.Metrics)
	}
	e.raw("}")
}

func (e *jenc) explain(r *ExplainResponse) {
	e.raw(`{"evaluate":`)
	e.evaluate(&r.Evaluate)
	e.raw(`,"report":`)
	e.str(r.Report)
	e.raw("}")
}

func (e *jenc) solution(s *SolutionJSON) {
	e.raw(`{"genome":`)
	e.str(s.Genome)
	e.raw(`,"counts":`)
	e.ints(s.Counts)
	e.raw(`,"time_kcc":`)
	e.f64(s.TimeKCC)
	e.raw(`,"bit_energy_fj":`)
	e.f64(s.BitEnergyFJ)
	e.raw(`,"mean_ber":`)
	e.f64(s.MeanBER)
	e.raw("}")
}

func (e *jenc) solutions(ss []SolutionJSON) {
	if ss == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i := range ss {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.solution(&ss[i])
	}
	e.b = append(e.b, ']')
}

func (e *jenc) optimizeResult(r *OptimizeResult) {
	e.raw(`{"front":`)
	e.solutions(r.Front)
	e.raw(`,"front_time_energy":`)
	e.solutions(r.FrontTimeEnergy)
	e.raw(`,"front_time_ber":`)
	e.solutions(r.FrontTimeBER)
	e.raw(`,"evaluations":`)
	e.num(r.Evaluations)
	e.raw(`,"valid_evaluations":`)
	e.num(r.ValidEvaluations)
	e.raw(`,"distinct_valid":`)
	e.num(r.DistinctValid)
	e.raw("}")
}

func (e *jenc) optimize(r *OptimizeResponse) {
	e.raw(`{"workload":`)
	e.str(r.Workload)
	e.raw(`,"backend":`)
	e.str(r.Backend)
	e.raw(`,"nw":`)
	e.num(r.NW)
	e.raw(`,"objectives":`)
	e.str(r.Objectives)
	e.raw(`,"pop":`)
	e.num(r.Pop)
	e.raw(`,"generations":`)
	e.num(r.Generations)
	e.raw(`,"seed":`)
	e.i64(r.Seed)
	e.raw(`,"generation":`)
	e.num(r.Generation)
	e.raw(`,"done":`)
	e.boolv(r.Done)
	if r.Draining {
		e.raw(`,"draining":true`)
	}
	if r.Session != "" {
		e.raw(`,"session":`)
		e.str(r.Session)
	}
	if r.Result != nil {
		e.raw(`,"result":`)
		e.optimizeResult(r.Result)
	}
	e.raw("}")
}

func (e *jenc) errorResp(r *ErrorResponse) {
	e.raw(`{"error":`)
	e.str(r.Error)
	if r.Reason != "" {
		e.raw(`,"reason":`)
		e.str(r.Reason)
	}
	if r.RetryAfterMS != 0 {
		e.raw(`,"retry_after_ms":`)
		e.num(r.RetryAfterMS)
	}
	e.raw("}")
}

// appendJSON appends v's canonical compact rendering when v is one of
// the known wire types and carries only finite floats; ok reports
// whether it did. On ok=false nothing usable was appended — the
// caller must delegate to encoding/json (which reproduces both the
// bytes for unknown types and the error for non-finite floats).
func appendJSON(b []byte, v any) ([]byte, bool) {
	e := jenc{b: b}
	switch t := v.(type) {
	case EvaluateResponse:
		e.evaluate(&t)
	case *EvaluateResponse:
		e.evaluate(t)
	case ExplainResponse:
		e.explain(&t)
	case *ExplainResponse:
		e.explain(t)
	case OptimizeResponse:
		e.optimize(&t)
	case *OptimizeResponse:
		e.optimize(t)
	case ErrorResponse:
		e.errorResp(&t)
	case *ErrorResponse:
		e.errorResp(t)
	default:
		return b, false
	}
	if e.bad {
		return b, false
	}
	return e.b, true
}

// respPool recycles per-request response buffers for writeJSON.
var respPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}
