package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// Golden diffs for the serving fast path: every wire shape the
// appendJSON type switch knows is rendered both ways and compared
// byte for byte. The serve-smoke CI job diffs daemon output against
// the CLI literally, so any drift here would surface as a user-facing
// incompatibility — these tests catch it at unit scope first.

func negZero() float64 { return math.Copysign(0, -1) }

func serveFixtures() []any {
	metrics := &MetricsJSON{
		MakespanCycles: 123456, // integer-valued float
		TimeKCC:        0.123456789,
		BitEnergyFJ:    9.999999e-7,
		MeanBER:        1e-300,
		Log10MeanBER:   -300,
		WorstBER:       5e-324,
		Counts:         []int{1, 2, 3, 4},
	}
	sols := []SolutionJSON{
		{Genome: "1000/0100", Counts: []int{1, 2}, TimeKCC: 42, BitEnergyFJ: 1e21, MeanBER: 2.5e-13},
		{Genome: "", Counts: []int{}, TimeKCC: negZero(), BitEnergyFJ: 1e-6, MeanBER: 9.99999e20},
	}
	return []any{
		EvaluateResponse{Workload: "paper", Backend: "ring", NW: 8,
			Genome: "1000/0100", Valid: true, Violation: 0, Metrics: metrics},
		EvaluateResponse{Workload: "hot<spot>", Backend: "crossbar", NW: 16,
			Genome: `g"1`, Valid: false, Violation: 2.5, Reason: "conflict on <waveguide> & comb"},
		&EvaluateResponse{Workload: "paper", Backend: "ring", NW: 8,
			Genome: "1000", Valid: false, Violation: negZero()},
		ExplainResponse{
			Evaluate: EvaluateResponse{Workload: "paper", Backend: "ring", NW: 8,
				Genome: "1000/0100", Valid: true, Metrics: metrics},
			Report: "link budget:\n  λ0 → node 3\t<ok>\n",
		},
		OptimizeResponse{Workload: "paper", Backend: "ring", NW: 8, Objectives: "teb",
			Pop: 80, Generations: 60, Seed: 42, Generation: 60, Done: true,
			Result: &OptimizeResult{Front: sols, FrontTimeEnergy: sols[:1], FrontTimeBER: []SolutionJSON{},
				Evaluations: 4800, ValidEvaluations: 3200, DistinctValid: 1500}},
		OptimizeResponse{Workload: "paper", Backend: "crossbar", NW: 8, Objectives: "te",
			Pop: 24, Generations: 10, Seed: 5, Generation: 4, Done: false,
			Draining: true, Session: "opaque/token+base64=="},
		&OptimizeResponse{Workload: "paper", Backend: "ring", NW: 4, Objectives: "tb",
			Pop: 24, Generations: 10, Seed: -7, Generation: 10, Done: true,
			Result: &OptimizeResult{}},
		ErrorResponse{Error: "instance (paper, ring, nw=8) is not served; serving: []"},
		ErrorResponse{Error: "queue full", RetryAfterMS: 250},
		&ErrorResponse{Error: "invalid chromosome", Reason: `conflict: "λ3" <shared>`},
	}
}

func TestEncodeJSONGolden(t *testing.T) {
	for i, v := range serveFixtures() {
		got, err := encodeJSON(v)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		m, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("fixture %d: stdlib: %v", i, err)
		}
		want := append(m, '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("fixture %d (%T):\n got: %s\nwant: %s", i, v, got, want)
		}
		// The fast path must actually engage for every known shape.
		if _, ok := appendJSON(nil, v); !ok {
			t.Errorf("fixture %d (%T): appendJSON declined a known wire type", i, v)
		}
	}
}

// TestEncodeJSONFallback pins the two escape hatches: unknown types
// render through the stdlib unchanged, and non-finite floats reject
// with the stdlib's error instead of emitting corrupt bytes.
func TestEncodeJSONFallback(t *testing.T) {
	v := map[string]any{"status": "ok", "instances": 3}
	if _, ok := appendJSON(nil, v); ok {
		t.Fatal("appendJSON claimed a map it cannot canonically order")
	}
	got, err := encodeJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := json.Marshal(v)
	if want := append(m, '\n'); !bytes.Equal(got, want) {
		t.Errorf("map fallback:\n got: %s\nwant: %s", got, want)
	}

	bad := EvaluateResponse{Workload: "paper", Violation: math.NaN()}
	if _, ok := appendJSON(nil, bad); ok {
		t.Fatal("appendJSON accepted a NaN violation")
	}
	if _, err := encodeJSON(bad); err == nil {
		t.Fatal("encodeJSON swallowed a NaN violation")
	}
	inf := OptimizeResponse{Result: &OptimizeResult{Front: []SolutionJSON{{TimeKCC: math.Inf(1)}}}}
	if _, ok := appendJSON(nil, inf); ok {
		t.Fatal("appendJSON accepted an infinite objective")
	}
}

// BenchmarkServeEncode measures the per-request response rendering:
// the fast composer into a reused buffer (gated 0 allocs/op in CI)
// against the reflection-based stdlib rendering of the same response.
func BenchmarkServeEncode(b *testing.B) {
	resp := serveFixtures()[0]
	b.Run("fast", func(b *testing.B) {
		buf := make([]byte, 0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, ok := appendJSON(buf[:0], resp)
			if !ok {
				b.Fatal("fast path declined")
			}
			buf = out[:0]
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
