package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Session tokens make long-running optimizations resumable without any
// server-side state: the token IS the session. It wraps the problem
// parameters (so the resuming daemon rebuilds the identical Problem)
// around the engine's v2 checkpoint bytes (so the exploration resumes
// bit-identically — the checkpoint header pins genome geometry,
// population size and seed and fails loudly on mismatch). Losing the
// daemon loses nothing; any replica that serves the same (workload,
// backend, NW) combination can continue the run.
//
// Layout before base64: magic line, big-endian uint32 CRC32 (IEEE) of
// everything after it, big-endian uint32 metadata length, metadata
// JSON, raw checkpoint bytes. base64.RawURLEncoding keeps the token
// safe inside JSON strings and query parameters. The CRC catches any
// token corruption outright (including trailing garbage the engine's
// own reader would ignore); the engine's checkpoint header and
// checksum remain the deeper integrity layer for the state itself.

const tokenMagic = "WASERVE-SESSION-1\n"

// sessionMeta is the parameter block a token carries alongside the
// checkpoint.
type sessionMeta struct {
	Workload    string `json:"workload"`
	Backend     string `json:"backend"`
	NW          int    `json:"nw"`
	Objectives  string `json:"objectives"`
	Pop         int    `json:"pop"`
	Generations int    `json:"generations"`
	Seed        int64  `json:"seed"`
	WarmStart   bool   `json:"warmstart,omitempty"`
}

// encodeSession packs parameters and checkpoint bytes into an opaque
// token.
func encodeSession(meta sessionMeta, checkpoint []byte) (string, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	buf.Grow(len(tokenMagic) + 8 + len(mb) + len(checkpoint))
	buf.WriteString(tokenMagic)
	var word [4]byte
	crc := crc32.NewIEEE()
	binary.BigEndian.PutUint32(word[:], uint32(len(mb)))
	crc.Write(word[:])
	crc.Write(mb)
	crc.Write(checkpoint)
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc.Sum32())
	buf.Write(crcBuf[:])
	buf.Write(word[:])
	buf.Write(mb)
	buf.Write(checkpoint)
	return base64.RawURLEncoding.EncodeToString(buf.Bytes()), nil
}

// decodeSession unpacks a token. Corruption at this layer (bad base64,
// wrong magic, truncated metadata) is caught here; corruption inside
// the checkpoint bytes is caught by the engine's own header and
// checksum validation on resume.
func decodeSession(token string) (sessionMeta, []byte, error) {
	var meta sessionMeta
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return meta, nil, fmt.Errorf("serve: session token is not valid base64: %v", err)
	}
	if len(raw) < len(tokenMagic)+8 || string(raw[:len(tokenMagic)]) != tokenMagic {
		return meta, nil, fmt.Errorf("serve: session token is not a %q token", tokenMagic[:len(tokenMagic)-1])
	}
	raw = raw[len(tokenMagic):]
	sum := binary.BigEndian.Uint32(raw[:4])
	raw = raw[4:]
	if crc32.ChecksumIEEE(raw) != sum {
		return meta, nil, fmt.Errorf("serve: session token failed its integrity check (corrupted or truncated)")
	}
	metaLen := int(binary.BigEndian.Uint32(raw[:4]))
	raw = raw[4:]
	if metaLen < 0 || metaLen > len(raw) {
		return meta, nil, fmt.Errorf("serve: session token metadata length %d exceeds token size", metaLen)
	}
	if err := json.Unmarshal(raw[:metaLen], &meta); err != nil {
		return meta, nil, fmt.Errorf("serve: session token metadata: %v", err)
	}
	return meta, raw[metaLen:], nil
}
