package serve

import (
	"encoding/json"
	"net/http"

	"repro/internal/alloc"
	"repro/internal/core"
)

// This file defines the serving API's wire types and their canonical
// rendering. The rendering is shared verbatim with the wadate CLI's
// -eval mode: the daemon and the CLI marshal the same structs through
// the same encoder, so a served evaluate response is byte-identical to
// the CLI's output for the same genome — the CI serve-smoke job
// enforces that with a literal diff.

// EvaluateRequest names an instance (workload, comb size, backend)
// and a chromosome in the paper's notation.
type EvaluateRequest struct {
	// Workload is a workload spec (expt.NamedWorkload); default
	// "paper".
	Workload string `json:"workload,omitempty"`
	// Backend names the optical fabric; default "ring".
	Backend string `json:"backend,omitempty"`
	// NW is the comb size (required).
	NW int `json:"nw"`
	// Genome is the chromosome in the paper's "1000/0001/..." form
	// (slashes and spaces optional).
	Genome string `json:"genome"`
}

// MetricsJSON is the figure-of-merit block of a valid evaluation.
type MetricsJSON struct {
	MakespanCycles float64 `json:"makespan_cycles"`
	TimeKCC        float64 `json:"time_kcc"`
	BitEnergyFJ    float64 `json:"bit_energy_fj"`
	MeanBER        float64 `json:"mean_ber"`
	Log10MeanBER   float64 `json:"log10_mean_ber"`
	WorstBER       float64 `json:"worst_ber"`
	Counts         []int   `json:"counts"`
}

// EvaluateResponse is the canonical rendering of one evaluation.
// Invalid chromosomes are not transport errors: they return 200 with
// Valid false, the graded violation and the evaluator's
// lazily-formatted failure reason; Metrics is nil (the objectives are
// infinite, which JSON cannot carry).
type EvaluateResponse struct {
	Workload string `json:"workload"`
	Backend  string `json:"backend"`
	NW       int    `json:"nw"`
	// Genome echoes the chromosome in canonical slash form.
	Genome    string       `json:"genome"`
	Valid     bool         `json:"valid"`
	Violation float64      `json:"violation"`
	Reason    string       `json:"reason,omitempty"`
	Metrics   *MetricsJSON `json:"metrics,omitempty"`
}

// ExplainResponse expands a valid evaluation into the full link
// budget.
type ExplainResponse struct {
	Evaluate EvaluateResponse `json:"evaluate"`
	// Report is the engineering view: the rendered link-budget text
	// (alloc.Explanation.String).
	Report string `json:"report"`
}

// OptimizeRequest starts or resumes an exploration. A fresh run names
// its parameters; a resumed one carries the previous response's
// opaque Session token (which embeds the parameters and the v2
// checkpoint bytes), plus at most StepGenerations of new work.
type OptimizeRequest struct {
	Workload string `json:"workload,omitempty"`
	Backend  string `json:"backend,omitempty"`
	NW       int    `json:"nw,omitempty"`
	// Objectives is the short objective-set name: teb, te or tb
	// (default teb).
	Objectives string `json:"objectives,omitempty"`
	// Pop, Generations and Seed tune the GA (defaults 80/60/42, the
	// quick-suite configuration).
	Pop         int   `json:"pop,omitempty"`
	Generations int   `json:"generations,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	// WarmStart seeds the GA with the heuristic allocations.
	WarmStart bool `json:"warmstart,omitempty"`
	// Session resumes the exploration a previous response returned.
	// When set, the parameter fields above are ignored — the token
	// carries them.
	Session string `json:"session,omitempty"`
	// StepGenerations caps how many generations this request advances
	// (0 = run to completion). A capped run that is not done returns
	// a new Session token instead of a result.
	StepGenerations int `json:"step_generations,omitempty"`
}

// SolutionJSON is one valid allocation with its metric triple.
type SolutionJSON struct {
	Genome      string  `json:"genome"`
	Counts      []int   `json:"counts"`
	TimeKCC     float64 `json:"time_kcc"`
	BitEnergyFJ float64 `json:"bit_energy_fj"`
	MeanBER     float64 `json:"mean_ber"`
}

// OptimizeResult is a completed exploration's outcome.
type OptimizeResult struct {
	// Front is the final population's feasible first front.
	Front []SolutionJSON `json:"front"`
	// FrontTimeEnergy and FrontTimeBER are the global 2D Pareto
	// projections over every valid genome evaluated (Figs. 6(a), 6(b)).
	FrontTimeEnergy []SolutionJSON `json:"front_time_energy"`
	FrontTimeBER    []SolutionJSON `json:"front_time_ber"`
	// Evaluation counters (the paper's Table II bookkeeping).
	Evaluations      int `json:"evaluations"`
	ValidEvaluations int `json:"valid_evaluations"`
	DistinctValid    int `json:"distinct_valid"`
}

// OptimizeResponse reports an exploration's progress. Done runs carry
// Result; interrupted ones (StepGenerations cap, or the daemon
// draining for shutdown) carry a Session token that resumes
// bit-identically.
type OptimizeResponse struct {
	Workload    string `json:"workload"`
	Backend     string `json:"backend"`
	NW          int    `json:"nw"`
	Objectives  string `json:"objectives"`
	Pop         int    `json:"pop"`
	Generations int    `json:"generations"`
	Seed        int64  `json:"seed"`
	// Generation counts completed generations so far.
	Generation int  `json:"generation"`
	Done       bool `json:"done"`
	// Draining marks a run cut short by graceful shutdown: the state
	// was checkpointed into Session, resume against the next daemon.
	Draining bool            `json:"draining,omitempty"`
	Session  string          `json:"session,omitempty"`
	Result   *OptimizeResult `json:"result,omitempty"`
}

// CampaignRequest is the serving form of a campaign sweep: the cross
// product of backends, comb sizes, objective sets, workloads and
// replicates (see expt.CampaignConfig). The response is a chunked
// application/x-ndjson stream: one cell_start/cell_done line per
// progress event (the expt event stream), then a final line of type
// "result" embedding the campaign JSON artifact.
type CampaignRequest struct {
	Backends    []string `json:"backends,omitempty"`
	NWs         []int    `json:"nws,omitempty"`
	Objectives  []string `json:"objectives,omitempty"`
	Workloads   []string `json:"workloads,omitempty"`
	Replicates  int      `json:"replicates,omitempty"`
	Pop         int      `json:"pop,omitempty"`
	Generations int      `json:"generations,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	WarmStart   bool     `json:"warmstart,omitempty"`
	// CellWorkers bounds the cells in flight (default 1; results are
	// identical regardless).
	CellWorkers int `json:"cell_workers,omitempty"`
}

// ErrorResponse is the structured per-request error report. Reason
// carries the evaluator's lazily-formatted failure reason when the
// error wraps an invalid chromosome (e.g. /v1/explain on a
// conflicting allocation).
type ErrorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
	// RetryAfterMS accompanies 429 responses (queue full, campaign
	// slot busy), mirroring the Retry-After header.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
}

// encodeJSON renders v in the canonical serving form: compact
// encoding/json output plus one trailing newline. Every response —
// served or printed by the CLI's -eval mode — goes through this one
// function, which is what makes the byte-identity check meaningful.
// Known wire types take the hand-rolled fast path (see encode.go);
// everything else, and any document carrying a non-finite float,
// renders through encoding/json exactly as before.
func encodeJSON(v any) ([]byte, error) {
	if b, ok := appendJSON(nil, v); ok {
		return append(b, '\n'), nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeJSON sends one canonical JSON document with the given status.
// The response buffer is pooled: the fast path composes straight into
// a recycled slice, so steady-state request marshalling does not
// allocate.
func writeJSON(w http.ResponseWriter, status int, v any) {
	bp := respPool.Get().(*[]byte)
	b, ok := appendJSON((*bp)[:0], v)
	if ok {
		b = append(b, '\n')
	} else {
		m, err := json.Marshal(v)
		if err != nil {
			respPool.Put(bp)
			http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
			return
		}
		b = append(append(b[:0], m...), '\n')
	}
	*bp = b
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	respPool.Put(bp)
}

// buildEvaluateResponse assembles the canonical response for one
// evaluation outcome.
func buildEvaluateResponse(workload, backend string, nw int, g alloc.Genome, out *alloc.Eval) EvaluateResponse {
	resp := EvaluateResponse{
		Workload:  workload,
		Backend:   backend,
		NW:        nw,
		Genome:    g.String(),
		Valid:     out.Valid,
		Violation: out.Violation,
	}
	if !out.Valid {
		resp.Reason = out.Reason()
		return resp
	}
	resp.Metrics = &MetricsJSON{
		MakespanCycles: out.MakespanCycles,
		TimeKCC:        out.TimeKCC(),
		BitEnergyFJ:    out.BitEnergyFJ,
		MeanBER:        out.MeanBER,
		Log10MeanBER:   out.Log10MeanBER(),
		WorstBER:       out.WorstBER,
		Counts:         out.Counts,
	}
	return resp
}

// solutionJSON projects one core.Solution onto the wire form.
func solutionJSON(s core.Solution) SolutionJSON {
	return SolutionJSON{
		Genome:      s.Genome.String(),
		Counts:      s.Counts,
		TimeKCC:     s.TimeKCC,
		BitEnergyFJ: s.BitEnergyFJ,
		MeanBER:     s.MeanBER,
	}
}

// optimizeResult projects a finished exploration onto the wire form.
func optimizeResult(res *core.Result) *OptimizeResult {
	out := &OptimizeResult{
		Front:            make([]SolutionJSON, 0, len(res.Front)),
		FrontTimeEnergy:  make([]SolutionJSON, 0, len(res.FrontTimeEnergy)),
		FrontTimeBER:     make([]SolutionJSON, 0, len(res.FrontTimeBER)),
		Evaluations:      res.Evaluations,
		ValidEvaluations: res.ValidEvaluations,
		DistinctValid:    res.DistinctValid,
	}
	for _, s := range res.Front {
		out.Front = append(out.Front, solutionJSON(s))
	}
	for _, s := range res.FrontTimeEnergy {
		out.FrontTimeEnergy = append(out.FrontTimeEnergy, solutionJSON(s))
	}
	for _, s := range res.FrontTimeBER {
		out.FrontTimeBER = append(out.FrontTimeBER, solutionJSON(s))
	}
	return out
}
