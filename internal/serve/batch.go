package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
)

// The batching front. alloc.Evaluator is deliberately not
// concurrency-safe (its scratch buffers are what make single-thread
// evaluation fast), so a server has two naive options: one evaluator
// behind a lock (serializes everything) or one evaluator per request
// (pays construction per call). The batcher takes a third route:
// concurrent requests land on a bounded queue, a collector coalesces
// them — flushing when the batch fills or a deadline passes — and each
// flush runs as one worker-pool pass over pooled delta-enabled
// evaluators. Evaluation is a pure function of (instance, genome), so
// batching cannot change any result byte: only latency and throughput
// move.

var (
	errQueueFull = errors.New("serve: evaluate queue full")
	errClosed    = errors.New("serve: server is shutting down")
)

// evalJob is one queued evaluation. The batcher owns out until done is
// closed; out is detached (no scratch aliasing) by then.
type evalJob struct {
	inst *instance
	g    alloc.Genome
	out  *alloc.Eval
	err  error
	done chan struct{}
}

// batcher coalesces concurrent evaluate submissions into worker-pool
// passes.
type batcher struct {
	queue    chan *evalJob
	window   time.Duration
	maxBatch int
	workers  int

	// run executes one flushed batch. Tests substitute it to control
	// timing (e.g. to hold the queue full deterministically).
	run func([]*evalJob)

	mu      sync.RWMutex
	closed  bool
	drained chan struct{}
}

// newBatcher starts the collector goroutine.
func newBatcher(window time.Duration, maxBatch, workers, depth int) *batcher {
	b := &batcher{
		queue:    make(chan *evalJob, depth),
		window:   window,
		maxBatch: maxBatch,
		workers:  workers,
		drained:  make(chan struct{}),
	}
	b.run = b.runBatch
	go b.loop()
	return b
}

// submit enqueues one job. It returns errQueueFull when the bounded
// queue is at capacity (the caller maps this to 429 + Retry-After) and
// errClosed once close has begun. The read-lock pairs with close's
// write-lock so a send can never race the channel close.
func (b *batcher) submit(j *evalJob) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return errClosed
	}
	select {
	case b.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close stops intake, waits for every queued job to finish, and
// returns. Safe to call more than once.
func (b *batcher) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	if !already {
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.drained
}

// loop is the collector: block for the first job, then gather more
// until the batch fills or the flush deadline passes, then hand the
// batch to run. Draining after close finishes every queued job before
// signalling drained.
func (b *batcher) loop() {
	defer close(b.drained)
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch := append(make([]*evalJob, 0, b.maxBatch), first)
		deadline := time.NewTimer(b.window)
	gather:
		for len(batch) < b.maxBatch {
			select {
			case j, ok := <-b.queue:
				if !ok {
					break gather
				}
				batch = append(batch, j)
			case <-deadline.C:
				break gather
			}
		}
		deadline.Stop()
		b.run(batch)
	}
}

// runBatch evaluates one batch with a worker pool over the instances'
// evaluator pools. Each job's result is detached before done closes,
// so the caller owns it outright and the evaluator can go straight
// back to its pool.
func (b *batcher) runBatch(jobs []*evalJob) {
	workers := b.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			evalOne(j)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				evalOne(jobs[i])
			}
		}()
	}
	wg.Wait()
}

// evalOne runs a single job against its instance's evaluator pool.
func evalOne(j *evalJob) {
	defer close(j.done)
	ev, err := j.inst.pool.Get()
	if err != nil {
		j.err = err
		return
	}
	ev.EvaluateInto(j.out, j.g)
	j.out.Detach()
	j.inst.pool.Put(ev)
}
