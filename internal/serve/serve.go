// Package serve is the allocation-as-a-service layer: an HTTP daemon
// exposing the wavelength-allocation engine over JSON. It serves
// evaluations (batched), link-budget explanations, resumable GA
// optimizations and streamed campaign sweeps against a fixed set of
// shared read-only instances built at startup.
//
// The serving discipline mirrors the repo's artifact discipline:
// every served number is produced by the same code path the CLI uses,
// and evaluate responses are byte-identical to `wadate -eval` output —
// CI diffs the two on every push.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/nsga2"
)

// Serving defaults. Optimize and campaign defaults match the quick
// suite (expt.QuickConfig) so a bare request reproduces familiar
// numbers.
const (
	defaultWorkload   = "paper"
	defaultObjectives = "teb"
	defaultPop        = 80
	defaultGens       = 60
	defaultSeed       = 42

	// DefaultBatchWindow is the flush deadline of the batching front:
	// how long the collector waits for company after the first queued
	// request. Roughly 10 kernel evaluations — long enough to coalesce
	// a concurrent burst, short enough to be invisible next to network
	// latency.
	DefaultBatchWindow = 200 * time.Microsecond
	// DefaultMaxBatch caps one coalesced worker-pool pass.
	DefaultMaxBatch = 64
	// DefaultQueueDepth bounds the evaluate queue; beyond it the
	// daemon sheds load with 429 + Retry-After.
	DefaultQueueDepth = 1024
)

// Config describes the daemon: which instances to build and how to
// batch.
type Config struct {
	// Backends, Workloads and NWs define the served instance set — the
	// cross product is built eagerly at startup so a bad combination
	// fails the boot, not a request. Defaults: all backends, the paper
	// workload, comb sizes 4 and 8.
	Backends  []string
	Workloads []string
	NWs       []int

	// BatchWindow, MaxBatch and QueueDepth tune the batching front
	// (zero = the defaults above). Workers sizes the per-flush worker
	// pool and the GA evaluation pool (default GOMAXPROCS).
	BatchWindow time.Duration
	MaxBatch    int
	QueueDepth  int
	Workers     int

	// NoBatch disables the batching front: one evaluator per instance
	// behind a mutex — the naive thread-safe server. It exists as the
	// honest baseline the serving benchmarks and the CI speedup gate
	// compare against.
	NoBatch bool

	// CampaignSlots bounds concurrent campaign sweeps (default 1);
	// further requests get 429.
	CampaignSlots int

	// Log receives request-level diagnostics (nil = silent).
	Log *log.Logger
}

// instKey identifies one served instance.
type instKey struct {
	backend  string
	workload string
	nw       int
}

// instance is one shared read-only evaluation context plus its
// serving gear: a delta-enabled evaluator pool for the batched path
// and a single lock-guarded evaluator for the NoBatch baseline.
type instance struct {
	key  instKey
	in   *alloc.Instance
	pool *alloc.EvaluatorPool

	mu sync.Mutex
	ev *alloc.Evaluator
}

// evaluateSerial is the NoBatch path: the whole evaluation serializes
// on one evaluator.
func (inst *instance) evaluateSerial(g alloc.Genome, out *alloc.Eval) error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.ev == nil {
		ev, err := alloc.NewEvaluator(inst.in)
		if err != nil {
			return err
		}
		ev.EnableDeltaCache(0)
		inst.ev = ev
	}
	inst.ev.EvaluateInto(out, g)
	out.Detach()
	return nil
}

// Server is the daemon state.
type Server struct {
	cfg       Config
	instances map[instKey]*instance
	order     []instKey
	batch     *batcher
	campaigns chan struct{}
	draining  atomic.Bool
	log       *log.Logger
}

// NewServer builds every served instance eagerly and starts the
// batching front.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		cfg.Backends = core.Backends()
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{defaultWorkload}
	}
	if len(cfg.NWs) == 0 {
		cfg.NWs = []int{4, 8}
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CampaignSlots <= 0 {
		cfg.CampaignSlots = 1
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(noopWriter{}, "", 0)
	}
	s := &Server{
		cfg:       cfg,
		instances: make(map[instKey]*instance),
		campaigns: make(chan struct{}, cfg.CampaignSlots),
		log:       logger,
	}
	for _, wl := range cfg.Workloads {
		w, err := expt.NamedWorkload(wl)
		if err != nil {
			return nil, err
		}
		for _, backend := range cfg.Backends {
			for _, nw := range cfg.NWs {
				in, err := core.NewSharedInstance(core.Config{NW: nw, Backend: backend, App: w.App, Mapping: w.Mapping})
				if err != nil {
					return nil, fmt.Errorf("serve: instance (%s, %s, NW=%d): %w", wl, backend, nw, err)
				}
				key := instKey{backend: backend, workload: wl, nw: nw}
				s.instances[key] = &instance{key: key, in: in, pool: alloc.NewEvaluatorPool(in, true)}
				s.order = append(s.order, key)
			}
		}
	}
	sort.Slice(s.order, func(i, j int) bool {
		a, b := s.order[i], s.order[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.backend != b.backend {
			return a.backend < b.backend
		}
		return a.nw < b.nw
	})
	if !cfg.NoBatch {
		s.batch = newBatcher(cfg.BatchWindow, cfg.MaxBatch, cfg.Workers, cfg.QueueDepth)
	}
	return s, nil
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// BeginDrain flips the daemon into shutdown mode: in-flight optimize
// loops stop at their next generation boundary and return session
// tokens (the checkpoint flush), and health reports draining so load
// balancers stop routing here. Evaluate and explain keep answering
// until Close.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the batching front after finishing every queued job.
// Call after the HTTP server has stopped accepting requests.
func (s *Server) Close() {
	if s.batch != nil {
		s.batch.close()
	}
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/instances", s.handleInstances)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	return mux
}

// decodeRequest parses one JSON request body strictly; unknown fields
// are 400s so client typos fail loudly instead of silently defaulting.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "instances": len(s.instances)})
}

// instanceInfo is one row of the served-instance listing.
type instanceInfo struct {
	Workload string `json:"workload"`
	Backend  string `json:"backend"`
	NW       int    `json:"nw"`
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	out := make([]instanceInfo, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, instanceInfo{Workload: k.workload, Backend: k.backend, NW: k.nw})
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": out})
}

// resolveEvaluate applies the evaluate defaults. Shared with
// EvaluateLocal so the CLI and the daemon resolve requests
// identically — a precondition of the byte-identity guarantee.
func resolveEvaluate(req *EvaluateRequest) error {
	if req.Workload == "" {
		req.Workload = defaultWorkload
	}
	if req.Backend == "" {
		req.Backend = core.DefaultBackend
	}
	if req.NW <= 0 {
		return fmt.Errorf("nw must be positive, got %d", req.NW)
	}
	if req.Genome == "" {
		return fmt.Errorf("genome is required")
	}
	return nil
}

// lookup finds the served instance for a request, or formats the 404
// body listing what IS served.
func (s *Server) lookup(workload, backend string, nw int) (*instance, *ErrorResponse) {
	inst, ok := s.instances[instKey{backend: backend, workload: workload, nw: nw}]
	if ok {
		return inst, nil
	}
	served := make([]string, 0, len(s.order))
	for _, k := range s.order {
		served = append(served, fmt.Sprintf("(%s, %s, nw=%d)", k.workload, k.backend, k.nw))
	}
	return nil, &ErrorResponse{Error: fmt.Sprintf("instance (%s, %s, nw=%d) is not served; serving: %v",
		workload, backend, nw, served)}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := resolveEvaluate(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	inst, nf := s.lookup(req.Workload, req.Backend, req.NW)
	if nf != nil {
		writeJSON(w, http.StatusNotFound, *nf)
		return
	}
	g, err := alloc.ParseGenome(req.Genome, inst.in.Edges(), req.NW)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	var out alloc.Eval
	if s.batch == nil {
		if err := inst.evaluateSerial(g, &out); err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
	} else {
		job := &evalJob{inst: inst, g: g, out: &out, done: make(chan struct{})}
		switch err := s.batch.submit(job); err {
		case nil:
		case errQueueFull:
			// The queue drains in batches of MaxBatch every
			// BatchWindow-ish, so "try again in about a window" is the
			// honest hint; the header's resolution is whole seconds.
			retryMS := int(s.cfg.BatchWindow / time.Millisecond)
			if retryMS < 1 {
				retryMS = 1
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Error: err.Error(), RetryAfterMS: retryMS,
			})
			return
		default:
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
			return
		}
		<-job.done
		if job.err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: job.err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, buildEvaluateResponse(req.Workload, req.Backend, req.NW, g, &out))
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := resolveEvaluate(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	inst, nf := s.lookup(req.Workload, req.Backend, req.NW)
	if nf != nil {
		writeJSON(w, http.StatusNotFound, *nf)
		return
	}
	g, err := alloc.ParseGenome(req.Genome, inst.in.Edges(), req.NW)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	// Explanations are rare and heavyweight next to evaluations, so
	// they bypass the batcher: grab a pooled evaluator directly.
	var out alloc.Eval
	ev, err := inst.pool.Get()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	ev.EvaluateInto(&out, g)
	out.Detach()
	inst.pool.Put(ev)
	if !out.Valid {
		// Unlike evaluate, explain has nothing to say about an invalid
		// chromosome: 422 with the evaluator's failure reason.
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
			Error:  "cannot explain invalid chromosome",
			Reason: out.Reason(),
		})
		return
	}
	exp, err := inst.in.Explain(g)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Evaluate: buildEvaluateResponse(req.Workload, req.Backend, req.NW, g, &out),
		Report:   exp.String(),
	})
}

// EvaluateLocal is the CLI's entry point: resolve, build, evaluate and
// render one request exactly as the daemon would, returning the
// canonical response bytes. `wadate -eval` prints these bytes; the CI
// serve-smoke job diffs them against the daemon's response.
func EvaluateLocal(req EvaluateRequest) ([]byte, error) {
	if err := resolveEvaluate(&req); err != nil {
		return nil, err
	}
	wl, err := expt.NamedWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	in, err := core.NewSharedInstance(core.Config{NW: req.NW, Backend: req.Backend, App: wl.App, Mapping: wl.Mapping})
	if err != nil {
		return nil, err
	}
	g, err := alloc.ParseGenome(req.Genome, in.Edges(), req.NW)
	if err != nil {
		return nil, err
	}
	ev, err := alloc.NewEvaluator(in)
	if err != nil {
		return nil, err
	}
	var out alloc.Eval
	ev.EvaluateInto(&out, g)
	return encodeJSON(buildEvaluateResponse(req.Workload, req.Backend, req.NW, g, &out))
}

// resolveOptimize applies the optimize defaults to a fresh request and
// returns the session parameter block.
func resolveOptimize(req OptimizeRequest) (sessionMeta, error) {
	meta := sessionMeta{
		Workload:    req.Workload,
		Backend:     req.Backend,
		NW:          req.NW,
		Objectives:  req.Objectives,
		Pop:         req.Pop,
		Generations: req.Generations,
		Seed:        req.Seed,
		WarmStart:   req.WarmStart,
	}
	if meta.Workload == "" {
		meta.Workload = defaultWorkload
	}
	if meta.Backend == "" {
		meta.Backend = core.DefaultBackend
	}
	if meta.NW <= 0 {
		return meta, fmt.Errorf("nw must be positive, got %d", meta.NW)
	}
	if meta.Objectives == "" {
		meta.Objectives = defaultObjectives
	}
	if meta.Pop <= 0 {
		meta.Pop = defaultPop
	}
	if meta.Generations <= 0 {
		meta.Generations = defaultGens
	}
	if meta.Seed == 0 {
		meta.Seed = defaultSeed
	}
	return meta, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	var meta sessionMeta
	var checkpoint []byte
	if req.Session != "" {
		var err error
		meta, checkpoint, err = decodeSession(req.Session)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
	} else {
		var err error
		meta, err = resolveOptimize(req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
	}
	inst, nf := s.lookup(meta.Workload, meta.Backend, meta.NW)
	if nf != nil {
		writeJSON(w, http.StatusNotFound, *nf)
		return
	}
	objs, err := core.ParseObjectiveSet(meta.Objectives)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	p, err := core.New(core.Config{
		NW:         meta.NW,
		Instance:   inst.in,
		Objectives: objs,
		WarmStart:  meta.WarmStart,
		GA: nsga2.Config{
			PopSize:     meta.Pop,
			Generations: meta.Generations,
			Seed:        meta.Seed,
			Workers:     s.cfg.Workers,
		},
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	var ex *core.Explorer
	if checkpoint != nil {
		// The checkpoint header pins geometry, population and seed, so
		// a token replayed against a mismatched session fails loudly
		// here instead of silently computing something else.
		ex, err = p.ResumeExplorer(bytes.NewReader(checkpoint))
	} else {
		ex, err = p.NewExplorer()
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	// The step loop: advance one generation at a time so a draining
	// daemon can stop at the next boundary and flush the state into a
	// session token instead of discarding minutes of work.
	stepped := 0
	drained := false
	for !ex.Done() {
		if s.draining.Load() {
			drained = true
			break
		}
		if req.StepGenerations > 0 && stepped >= req.StepGenerations {
			break
		}
		ex.Step()
		stepped++
	}

	resp := OptimizeResponse{
		Workload:    meta.Workload,
		Backend:     meta.Backend,
		NW:          meta.NW,
		Objectives:  meta.Objectives,
		Pop:         meta.Pop,
		Generations: meta.Generations,
		Seed:        meta.Seed,
		Generation:  ex.Generation(),
		Done:        ex.Done(),
		Draining:    drained,
	}
	if ex.Done() {
		res, err := ex.Finish()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
		resp.Result = optimizeResult(res)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var buf bytes.Buffer
	if err := ex.WriteCheckpoint(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	token, err := encodeSession(meta, buf.Bytes())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	resp.Session = token
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	select {
	case s.campaigns <- struct{}{}:
		defer func() { <-s.campaigns }()
	default:
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: "all campaign slots busy", RetryAfterMS: 5000,
		})
		return
	}
	cfg, err := s.campaignConfig(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	// From here the response is a chunked ndjson stream: progress
	// events as they happen, then one final result (or error) line.
	// CampaignConfig.Progress delivers events serially and RunCampaign
	// blocks this handler, so the writes below never interleave.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeLine := func(b []byte) {
		w.Write(b)
		w.Write([]byte{'\n'})
		if flusher != nil {
			flusher.Flush()
		}
	}
	cfg.Progress = func(ev expt.CellEvent) {
		line, err := expt.CellEventJSON(ev)
		if err != nil {
			s.log.Printf("campaign event encode: %v", err)
			return
		}
		writeLine(line)
	}
	c, err := expt.RunCampaign(cfg)
	if err != nil {
		line, _ := json.Marshal(map[string]string{"type": "error", "error": err.Error()})
		writeLine(line)
		return
	}
	var artifact bytes.Buffer
	if err := expt.WriteCampaignJSON(&artifact, c); err != nil {
		line, _ := json.Marshal(map[string]string{"type": "error", "error": err.Error()})
		writeLine(line)
		return
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, artifact.Bytes()); err != nil {
		line, _ := json.Marshal(map[string]string{"type": "error", "error": err.Error()})
		writeLine(line)
		return
	}
	final, err := json.Marshal(struct {
		Type     string          `json:"type"`
		Campaign json.RawMessage `json:"campaign"`
	}{Type: "result", Campaign: compact.Bytes()})
	if err != nil {
		line, _ := json.Marshal(map[string]string{"type": "error", "error": err.Error()})
		writeLine(line)
		return
	}
	writeLine(final)
}

// campaignConfig maps a campaign request onto expt.CampaignConfig with
// the quick-suite defaults. Campaign sweeps build their own instances
// (the cross product requested, not the served set) — they are batch
// work that happens to arrive over HTTP.
func (s *Server) campaignConfig(req CampaignRequest) (expt.CampaignConfig, error) {
	cfg := expt.CampaignConfig{
		Backends:    req.Backends,
		NWs:         req.NWs,
		Replicates:  req.Replicates,
		Pop:         req.Pop,
		Generations: req.Generations,
		Seed:        req.Seed,
		WarmStart:   req.WarmStart,
		CellWorkers: req.CellWorkers,
		EvalWorkers: s.cfg.Workers,
	}
	if len(cfg.NWs) == 0 {
		cfg.NWs = []int{4, 8}
	}
	if cfg.Pop <= 0 {
		cfg.Pop = defaultPop
	}
	if cfg.Generations <= 0 {
		cfg.Generations = defaultGens
	}
	if cfg.Seed == 0 {
		cfg.Seed = defaultSeed
	}
	known := make(map[string]bool)
	for _, b := range core.Backends() {
		known[b] = true
	}
	for _, b := range cfg.Backends {
		if !known[b] {
			return cfg, fmt.Errorf("unknown backend %q", b)
		}
	}
	objNames := req.Objectives
	if len(objNames) == 0 {
		objNames = []string{defaultObjectives}
	}
	for _, name := range objNames {
		os, err := core.ParseObjectiveSet(name)
		if err != nil {
			return cfg, err
		}
		cfg.ObjectiveSets = append(cfg.ObjectiveSets, os)
	}
	wlNames := req.Workloads
	if len(wlNames) == 0 {
		wlNames = []string{defaultWorkload}
	}
	for _, name := range wlNames {
		wl, err := expt.NamedWorkload(name)
		if err != nil {
			return cfg, err
		}
		cfg.Workloads = append(cfg.Workloads, wl)
	}
	return cfg, nil
}
