package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
)

// newTestServer boots a daemon over httptest. The returned cleanup
// stops both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends one JSON request and returns status and body.
func post(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

// testGenomes builds a deterministic mix of valid heuristic
// allocations and an invalid all-on-one-channel chromosome for the
// paper workload at NW=8.
func testGenomes(t *testing.T) []string {
	t.Helper()
	in, err := core.NewSharedInstance(core.Config{NW: 8, Backend: "ring"})
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	countSets := [][]int{
		{1, 1, 1, 1, 1, 1},
		{2, 1, 1, 1, 1, 1},
		{1, 2, 1, 2, 1, 1},
		{2, 2, 2, 2, 2, 2},
		{1, 1, 3, 1, 1, 2},
	}
	var out []string
	for _, counts := range countSets {
		g, err := alloc.Assign(in, counts, alloc.LeastUsed, nil)
		if err != nil {
			t.Fatalf("assign %v: %v", counts, err)
		}
		out = append(out, g.String())
	}
	// Every communication on channel 0: maximally conflicting, so the
	// mix exercises the invalid path too.
	out = append(out, strings.Repeat("10000000/", in.Edges()-1)+"10000000")
	return out
}

func TestEvaluateMatchesEvaluateLocal(t *testing.T) {
	_, ts := newTestServer(t, Config{NWs: []int{8}})
	for _, backend := range core.Backends() {
		for _, genome := range testGenomes(t) {
			req := EvaluateRequest{Backend: backend, NW: 8, Genome: genome}
			want, err := EvaluateLocal(req)
			if err != nil {
				t.Fatalf("EvaluateLocal(%s, %s): %v", backend, genome, err)
			}
			code, got := post(t, ts.URL+"/v1/evaluate", req)
			if code != http.StatusOK {
				t.Fatalf("evaluate(%s, %s) status %d: %s", backend, genome, code, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("served response differs from CLI bytes for (%s, %s):\nserved: %s\ncli:    %s",
					backend, genome, got, want)
			}
		}
	}
}

// TestConcurrentEvaluateBitIdentical hammers the batching front from
// many goroutines and checks every response against the serial
// reference bytes — batching must be invisible in the results. Run
// with -race in CI.
func TestConcurrentEvaluateBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}, Workers: 4})
	genomes := testGenomes(t)
	want := make(map[string][]byte, len(genomes))
	for _, g := range genomes {
		b, err := EvaluateLocal(EvaluateRequest{NW: 8, Genome: g})
		if err != nil {
			t.Fatalf("EvaluateLocal(%s): %v", g, err)
		}
		want[g] = b
	}
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				g := genomes[(c+i)%len(genomes)]
				body, _ := json.Marshal(EvaluateRequest{NW: 8, Genome: g})
				resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
					return
				}
				if !bytes.Equal(b, want[g]) {
					errs <- fmt.Errorf("batched response differs for %s:\ngot:  %s\nwant: %s", g, b, want[g])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNoBatchMatchesBatched pins the two serving modes to each other:
// the lock-serialized baseline and the batching front must produce the
// same bytes.
func TestNoBatchMatchesBatched(t *testing.T) {
	_, batched := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	_, serial := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}, NoBatch: true})
	for _, g := range testGenomes(t) {
		req := EvaluateRequest{NW: 8, Genome: g}
		_, a := post(t, batched.URL+"/v1/evaluate", req)
		_, b := post(t, serial.URL+"/v1/evaluate", req)
		if !bytes.Equal(a, b) {
			t.Fatalf("batched and no-batch responses differ for %s:\nbatched:  %s\nno-batch: %s", g, a, b)
		}
	}
}

// TestBatchFlushDeadline: a lone request must not wait for the batch
// to fill — the window deadline flushes it.
func TestBatchFlushDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Backends: []string{"ring"}, NWs: []int{8},
		BatchWindow: 5 * time.Millisecond, MaxBatch: 64,
	})
	g := testGenomes(t)[0]
	start := time.Now()
	code, body := post(t, ts.URL+"/v1/evaluate", EvaluateRequest{NW: 8, Genome: g})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	// Generous bound: the point is "milliseconds, not forever".
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone request took %v; flush deadline is not working", elapsed)
	}
}

// TestQueueFullBackpressure fills a tiny queue behind a deliberately
// blocked batch runner and checks the daemon sheds load with 429 +
// Retry-After instead of queueing unboundedly.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	// Swap in a hand-built batcher whose run blocks until released;
	// constructing it here (before any submission) keeps the stub
	// publication race-free.
	s.batch.close()
	unblock := make(chan struct{})
	b := &batcher{
		queue:    make(chan *evalJob, 2),
		window:   time.Hour,
		maxBatch: 1,
		workers:  1,
		drained:  make(chan struct{}),
	}
	b.run = func(jobs []*evalJob) {
		<-unblock
		for _, j := range jobs {
			evalOne(j)
		}
	}
	go b.loop()
	s.batch = b
	t.Cleanup(func() { b.close() })

	g := testGenomes(t)[0]
	body, _ := json.Marshal(EvaluateRequest{NW: 8, Genome: g})

	// One request occupies the (blocked) runner, two fill the queue.
	results := make(chan *http.Response, 3)
	for i := 0; i < 3; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				results <- resp
			}
		}()
	}
	// Wait until the queue really is full (collector took one job,
	// two sit queued) before probing.
	deadline := time.After(5 * time.Second)
	for len(b.queue) < 2 {
		select {
		case <-deadline:
			t.Fatalf("queue never filled: %d/2", len(b.queue))
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("probe POST: %v", err)
	}
	probeBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429: %s", resp.StatusCode, probeBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(probeBody, &er); err != nil || er.RetryAfterMS <= 0 {
		t.Fatalf("429 body %s should carry retry_after_ms", probeBody)
	}

	// Release the runner; the three held requests must all complete.
	close(unblock)
	for i := 0; i < 3; i++ {
		select {
		case resp := <-results:
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("held request finished with %d", resp.StatusCode)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("held request %d never completed after release", i)
		}
	}
}

// TestOptimizeSessionRoundTrip pins the checkpoint-as-session-token
// lifecycle: run once monolithically, then again in small steps
// through opaque tokens; the final responses must be byte-identical.
func TestOptimizeSessionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}, Workers: 2})
	full := OptimizeRequest{NW: 8, Pop: 40, Generations: 12, Seed: 7}
	code, want := post(t, ts.URL+"/v1/optimize", full)
	if code != http.StatusOK {
		t.Fatalf("monolithic optimize status %d: %s", code, want)
	}

	step := full
	step.StepGenerations = 5
	code, body := post(t, ts.URL+"/v1/optimize", step)
	if code != http.StatusOK {
		t.Fatalf("stepped optimize status %d: %s", code, body)
	}
	var got []byte
	for hops := 0; ; hops++ {
		if hops > 10 {
			t.Fatalf("optimize did not converge in 10 hops")
		}
		var resp OptimizeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("unmarshal optimize response: %v", err)
		}
		if resp.Done {
			got = body
			break
		}
		if resp.Session == "" {
			t.Fatalf("undone response without session token: %s", body)
		}
		code, body = post(t, ts.URL+"/v1/optimize", OptimizeRequest{Session: resp.Session, StepGenerations: 5})
		if code != http.StatusOK {
			t.Fatalf("resume status %d: %s", code, body)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stepped+resumed final response differs from monolithic run:\nstepped:    %s\nmonolithic: %s", got, want)
	}
}

func TestOptimizeTamperedToken(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	code, body := post(t, ts.URL+"/v1/optimize", OptimizeRequest{NW: 8, Pop: 30, Generations: 8, StepGenerations: 2})
	if code != http.StatusOK {
		t.Fatalf("optimize status %d: %s", code, body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil || resp.Session == "" {
		t.Fatalf("no session token in %s", body)
	}
	tok := resp.Session
	for name, bad := range map[string]string{
		"appended":  tok + "AAAA",
		"flipped":   tok[:len(tok)/2] + flip(tok[len(tok)/2]) + tok[len(tok)/2+1:],
		"truncated": tok[:len(tok)-8],
		"garbage":   "not-a-token",
	} {
		code, body := post(t, ts.URL+"/v1/optimize", OptimizeRequest{Session: bad})
		if code != http.StatusBadRequest {
			t.Fatalf("%s token: status %d, want 400: %s", name, code, body)
		}
	}
}

// flip returns a different base64url character.
func flip(c byte) string {
	if c == 'A' {
		return "B"
	}
	return "A"
}

// TestOptimizeDraining: after BeginDrain an optimize request must
// checkpoint immediately instead of exploring, and the token must
// resume on a healthy server.
func TestOptimizeDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	s.BeginDrain()
	code, body := post(t, ts.URL+"/v1/optimize", OptimizeRequest{NW: 8, Pop: 30, Generations: 8})
	if code != http.StatusOK {
		t.Fatalf("draining optimize status %d: %s", code, body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !resp.Draining || resp.Done || resp.Session == "" || resp.Generation != 0 {
		t.Fatalf("draining response should checkpoint at generation 0 with a token: %s", body)
	}

	_, healthy := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	code, resumed := post(t, healthy.URL+"/v1/optimize", OptimizeRequest{Session: resp.Session})
	if code != http.StatusOK {
		t.Fatalf("resume on healthy server: status %d: %s", code, resumed)
	}
	code, direct := post(t, healthy.URL+"/v1/optimize", OptimizeRequest{NW: 8, Pop: 30, Generations: 8})
	if code != http.StatusOK {
		t.Fatalf("direct run: status %d", code)
	}
	if !bytes.Equal(resumed, direct) {
		t.Fatalf("drained-then-resumed run differs from direct run:\nresumed: %s\ndirect:  %s", resumed, direct)
	}
}

func TestEvaluateErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	g := testGenomes(t)[0]
	cases := []struct {
		name string
		req  any
		code int
	}{
		{"missing nw", EvaluateRequest{Genome: g}, http.StatusBadRequest},
		{"missing genome", EvaluateRequest{NW: 8}, http.StatusBadRequest},
		{"bad genome", EvaluateRequest{NW: 8, Genome: "zzz"}, http.StatusBadRequest},
		{"unserved nw", EvaluateRequest{NW: 5, Genome: g}, http.StatusNotFound},
		{"unserved backend", EvaluateRequest{Backend: "crossbar", NW: 8, Genome: g}, http.StatusNotFound},
		{"unknown field", map[string]any{"nw": 8, "genom": g}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(t, ts.URL+"/v1/evaluate", tc.req)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, code, tc.code, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: body %s is not a structured error", tc.name, body)
		}
	}
}

// TestExplainInvalid: explain on a conflicting chromosome is 422 and
// surfaces the evaluator's lazily-formatted failure reason.
func TestExplainInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	genomes := testGenomes(t)
	invalid := genomes[len(genomes)-1]
	code, body := post(t, ts.URL+"/v1/explain", EvaluateRequest{NW: 8, Genome: invalid})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("explain(invalid) status %d, want 422: %s", code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !strings.Contains(er.Reason, "share wavelength") {
		t.Fatalf("422 should carry the failure reason, got %q", er.Reason)
	}

	code, body = post(t, ts.URL+"/v1/explain", EvaluateRequest{NW: 8, Genome: genomes[0]})
	if code != http.StatusOK {
		t.Fatalf("explain(valid) status %d: %s", code, body)
	}
	var ex ExplainResponse
	if err := json.Unmarshal(body, &ex); err != nil || ex.Report == "" || !ex.Evaluate.Valid {
		t.Fatalf("explain(valid) response incomplete: %s", body)
	}
}

func TestCampaignStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Backends: []string{"ring"}, NWs: []int{8}})
	code, body := post(t, ts.URL+"/v1/campaign", CampaignRequest{NWs: []int{4}, Pop: 30, Generations: 4})
	if code != http.StatusOK {
		t.Fatalf("campaign status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 3 {
		t.Fatalf("campaign stream too short: %q", body)
	}
	var first, last map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first["type"] != "cell_start" {
		t.Fatalf("first stream line should be cell_start: %s", lines[0])
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || last["type"] != "result" {
		t.Fatalf("last stream line should be the result: %s", lines[len(lines)-1])
	}
	if _, ok := last["campaign"].(map[string]any); !ok {
		t.Fatalf("result line should embed the campaign artifact: %s", lines[len(lines)-1])
	}
}

func TestTokenCodec(t *testing.T) {
	meta := sessionMeta{Workload: "paper", Backend: "ring", NW: 8, Objectives: "teb",
		Pop: 80, Generations: 60, Seed: 42, WarmStart: true}
	checkpoint := []byte("pretend checkpoint bytes \x00\x01\x02")
	tok, err := encodeSession(meta, checkpoint)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	gotMeta, gotCk, err := decodeSession(tok)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	if !bytes.Equal(gotCk, checkpoint) {
		t.Fatalf("checkpoint round trip: got %q", gotCk)
	}
	for _, bad := range []string{"", "!!!", tok[:len(tok)-2], tok + "zz"} {
		if _, _, err := decodeSession(bad); err == nil {
			t.Fatalf("decodeSession(%q) should fail", bad)
		}
	}
}

func TestHealthAndInstances(t *testing.T) {
	s, ts := newTestServer(t, Config{Backends: []string{"ring"}, Workloads: []string{"paper"}, NWs: []int{4, 8}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "draining" {
		t.Fatalf("health after BeginDrain = %v", health)
	}

	resp, err = http.Get(ts.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	var inst struct {
		Instances []instanceInfo `json:"instances"`
	}
	json.NewDecoder(resp.Body).Decode(&inst)
	resp.Body.Close()
	want := []instanceInfo{
		{Workload: "paper", Backend: "ring", NW: 4},
		{Workload: "paper", Backend: "ring", NW: 8},
	}
	if len(inst.Instances) != len(want) {
		t.Fatalf("instances = %+v, want %+v", inst.Instances, want)
	}
	for i := range want {
		if inst.Instances[i] != want[i] {
			t.Fatalf("instances[%d] = %+v, want %+v", i, inst.Instances[i], want[i])
		}
	}
}
