package alloc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/ring"
)

func mustInstance(t *testing.T, nw int) *Instance {
	t.Helper()
	in, err := DefaultInstance(nw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// disjointSets spreads each communication over its own channels so no
// conflict is possible; it needs nw >= edges when one channel each.
func allOnesDisjoint(t *testing.T, in *Instance) Genome {
	t.Helper()
	sets := make([][]int, in.Edges())
	for e := range sets {
		sets[e] = []int{e % in.Channels()}
	}
	g, err := FromSets(sets, in.Channels())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDefaultInstanceShape(t *testing.T) {
	in := mustInstance(t, 8)
	if in.Edges() != 6 || in.Channels() != 8 {
		t.Fatalf("instance shape %d/%d, want 6 edges / 8 channels", in.Edges(), in.Channels())
	}
	// Paths follow the mapping: c1 is T1(p1) -> T2(p5).
	if in.SrcCore(1) != 1 || in.DstCore(1) != 5 {
		t.Errorf("c1 route %d->%d, want 1->5", in.SrcCore(1), in.DstCore(1))
	}
	if in.Path(1).Hops() != 4 {
		t.Errorf("c1 hops = %d, want 4", in.Path(1).Hops())
	}
}

func TestNewInstanceValidation(t *testing.T) {
	r, _ := ring.New(ring.DefaultConfig(8))
	app := graph.PaperApp()
	if _, err := NewInstance(nil, app, graph.PaperMapping(), 1, energy.Default()); err == nil {
		t.Error("nil ring must fail")
	}
	if _, err := NewInstance(r, app, graph.Mapping{0, 1, 2}, 1, energy.Default()); err == nil {
		t.Error("short mapping must fail")
	}
	if _, err := NewInstance(r, app, graph.PaperMapping(), 0, energy.Default()); err == nil {
		t.Error("zero bandwidth must fail")
	}
	bad := energy.Default()
	bad.Duty = 0
	if _, err := NewInstance(r, app, graph.PaperMapping(), 1, bad); err == nil {
		t.Error("bad energy model must fail")
	}
}

func TestEvaluateAllOnesIsValid(t *testing.T) {
	in := mustInstance(t, 8)
	ev := in.Evaluate(allOnesDisjoint(t, in))
	if !ev.Valid {
		t.Fatalf("spread all-ones genome must be valid: %s", ev.Reason())
	}
	if ev.MakespanCycles != 36000 {
		t.Errorf("makespan = %v, want 36000 (single wavelength each)", ev.MakespanCycles)
	}
	if ev.TimeKCC() != 36 {
		t.Errorf("TimeKCC = %v, want 36", ev.TimeKCC())
	}
}

func TestEvaluateBitEnergyInPaperDecade(t *testing.T) {
	// The all-ones allocation is the paper's most energy-efficient
	// point at ~3.5 fJ/bit; dense allocations reach ~8 fJ/bit.
	in := mustInstance(t, 8)
	lean := in.Evaluate(allOnesDisjoint(t, in))
	if !lean.Valid {
		t.Fatal(lean.Reason())
	}
	if lean.BitEnergyFJ < 2 || lean.BitEnergyFJ > 5.5 {
		t.Errorf("lean bit energy = %v fJ/bit, want in the 3.5 fJ/bit region", lean.BitEnergyFJ)
	}
	dense, err := FromCounts(UniformCounts(6, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	dev := in.Evaluate(dense)
	// Dense same-channel allocation is likely invalid (conflicts), so
	// compare with a conflict-free dense genome instead: stagger via
	// heuristic assignment.
	if dev.Valid {
		if dev.BitEnergyFJ <= lean.BitEnergyFJ {
			t.Errorf("denser allocation must cost more energy: %v vs %v", dev.BitEnergyFJ, lean.BitEnergyFJ)
		}
	}
	g, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, FirstFit, nil)
	if err != nil {
		t.Fatalf("first-fit staggering failed: %v", err)
	}
	mid := in.Evaluate(g)
	if !mid.Valid {
		t.Fatalf("staggered genome invalid: %s", mid.Reason())
	}
	if mid.BitEnergyFJ <= lean.BitEnergyFJ {
		t.Errorf("multi-wavelength allocation must cost more than all-ones: %v vs %v",
			mid.BitEnergyFJ, lean.BitEnergyFJ)
	}
	if mid.MakespanCycles >= lean.MakespanCycles {
		t.Errorf("multi-wavelength allocation must be faster: %v vs %v",
			mid.MakespanCycles, lean.MakespanCycles)
	}
}

func TestEvaluateInvalidZeroWavelengths(t *testing.T) {
	in := mustInstance(t, 8)
	g := in.NewZeroGenome()
	ev := in.Evaluate(g)
	if ev.Valid {
		t.Fatal("all-zero genome must be invalid")
	}
	if !math.IsInf(ev.MakespanCycles, 1) || !math.IsInf(ev.BitEnergyFJ, 1) {
		t.Error("invalid genome must carry infinite objectives")
	}
	if !strings.Contains(ev.Reason(), "no wavelength") {
		t.Errorf("reason = %q", ev.Reason())
	}
}

func TestEvaluateInvalidSharedWavelength(t *testing.T) {
	// c2 (T2->T4, cores 5->10) and c4 (T2->T5, cores 5->15) start at
	// the same instant (both wait for T2) and share segments; the
	// same channel on both must trip the validity rule.
	in := mustInstance(t, 8)
	sets := [][]int{{0}, {1}, {2}, {3}, {2}, {5}}
	g, err := FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	if ev.Valid {
		t.Fatal("conflicting genome must be invalid")
	}
	if !strings.Contains(ev.Reason(), "share wavelength 2") {
		t.Errorf("reason = %q", ev.Reason())
	}
}

func TestEvaluateSequentialCommsMayShareWavelength(t *testing.T) {
	// c1 (T1->T2) finishes before c2 (T2->T4) starts: same channel is
	// fine even though the paths overlap... the paths 1->5 and 5->10
	// don't overlap; use c1 and c5 (10->15)? also disjoint. c0 spans
	// 0->15 overlapping everything, but c0 [5,11) vs c5 [27,31) do
	// not overlap in time, so sharing a channel is legal.
	in := mustInstance(t, 8)
	sets := [][]int{{0}, {1}, {2}, {3}, {4}, {0}}
	g, err := FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("time-disjoint channel reuse must be valid: %s", ev.Reason())
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	in := mustInstance(t, 8)
	ev := in.Evaluate(NewGenome(6, 4))
	if ev.Valid {
		t.Error("shape mismatch must be invalid")
	}
}

func TestEvaluateBERWorsensWithParallelWavelengths(t *testing.T) {
	// More wavelengths on one communication -> more intra-channel
	// crosstalk -> higher BER. Compare c1 with 1 vs 6 adjacent
	// channels (others kept minimal and out of the way).
	in := mustInstance(t, 8)
	lean, err := FromSets([][]int{{7}, {0}, {0}, {1}, {1}, {0}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := FromSets([][]int{{7}, {0, 1, 2, 3, 4, 5}, {0}, {6}, {1}, {0}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	evLean := in.Evaluate(lean)
	evDense := in.Evaluate(dense)
	if !evLean.Valid {
		t.Fatalf("lean genome invalid: %s", evLean.Reason())
	}
	if !evDense.Valid {
		t.Fatalf("dense genome invalid: %s", evDense.Reason())
	}
	if evDense.CommBER[1] <= evLean.CommBER[1] {
		t.Errorf("c1 BER with 6 channels (%g) must exceed single channel (%g)",
			evDense.CommBER[1], evLean.CommBER[1])
	}
	if evDense.MeanBER <= evLean.MeanBER {
		t.Errorf("mean BER must degrade with parallelism: %g vs %g", evDense.MeanBER, evLean.MeanBER)
	}
	if evDense.WorstBER < evDense.MeanBER {
		t.Error("worst BER cannot sit below mean BER")
	}
}

func TestEvaluateSpreadChannelsBeatAdjacent(t *testing.T) {
	// Same wavelength count, but spacing the channels apart reduces
	// the Lorentzian leakage and hence the BER: the reason wavelength
	// *selection*, not just count, matters (Fig. 7's spread).
	in := mustInstance(t, 12)
	adjacent, err := FromSets([][]int{{11}, {0, 1, 2}, {0}, {6}, {1}, {0}}, 12)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := FromSets([][]int{{11}, {0, 4, 9}, {0}, {6}, {1}, {0}}, 12)
	if err != nil {
		t.Fatal(err)
	}
	evAdj := in.Evaluate(adjacent)
	evSpread := in.Evaluate(spread)
	if !evAdj.Valid || !evSpread.Valid {
		t.Fatalf("genomes invalid: %s / %s", evAdj.Reason(), evSpread.Reason())
	}
	if evSpread.CommBER[1] >= evAdj.CommBER[1] {
		t.Errorf("spread channels must lower BER: %g vs %g", evSpread.CommBER[1], evAdj.CommBER[1])
	}
	// Same counts -> same schedule.
	if evSpread.MakespanCycles != evAdj.MakespanCycles {
		t.Error("channel positions must not change the schedule")
	}
}

func TestEvaluateTimeMatchesHandSchedule(t *testing.T) {
	// Hand-checked schedule for counts [1,4,2,3,2,3] (one of the
	// paper's 12-wavelength vectors): c1 takes 2k so T2 ends at 12k;
	// c2 takes 2k and c3 2k so T4 starts max(14k, 7k) = 14k and ends
	// 19k; c5 takes 4/3 k so T5 starts max(11k, 16k, 20.33k) and the
	// makespan is 20333.3 + 5000 = 25333.3 cycles.
	in := mustInstance(t, 12)
	g, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("invalid: %s", ev.Reason())
	}
	want := 24000 + 4000.0/3
	if math.Abs(ev.MakespanCycles-want) > 1e-6 {
		t.Errorf("makespan = %v, want %v", ev.MakespanCycles, want)
	}
}

func TestEvaluateInterCommCrosstalkRaisesBER(t *testing.T) {
	// c3 (p2->p10) passes through c2's destination (p10)? No: c2's
	// destination IS p10, and c3 also ends at p10. Shift c3's window
	// to overlap c2's by giving c1 enough bandwidth: both feeds of T4
	// then fly concurrently and leak into each other's detectors.
	// counts [1,8?]... keep it explicit: c1 gets 4 channels so T2
	// ends at 12k; c2 [12,16) with ch {4}; c3 [5,11) with ch {5}: no
	// overlap. Widen c3's window by giving it 1 channel on a 6 kb
	// transfer: [5,11). Overlap needs c2 to start before 11k: c1 on
	// 4 channels ends at 7k, T2 ends 12k. Not enough; give c1 all 8:
	// T2 ends 11k, c2 [11,15) vs c3 [5,11): still disjoint (half
	// open). So instead move c3's start later by loading c1 less and
	// slowing c3... c3 starts at T3's end (5k) regardless. Use a
	// fatter c3: 6 kb on 1 channel = [5,11). The honest way to get
	// overlap: compare c2's BER with c3 active vs c3 absent
	// (zero-volume c3 clone).
	app := graph.PaperApp()
	app.Edges[2].VolumeBits = 8000 // c2: p5->p10, window [10+? ..]
	r, err := ring.New(ring.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	quiet := app.Clone()
	quiet.Edges[3].VolumeBits = 0 // silence c3
	inLoud, err := NewInstance(r, app, graph.PaperMapping(), 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	inQuiet, err := NewInstance(r, quiet, graph.PaperMapping(), 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	// c1 on 4 channels {0-3}: T2 ends at 5+2+5 = 12k; c2 on {4} runs
	// [12,20); c3 on {5} runs [5,11)... still disjoint. Make c3 carry
	// 16 kb? Volumes are ours to choose in this synthetic variant.
	app.Edges[3].VolumeBits = 16000 // c3 window [5,21) overlaps c2
	sets := [][]int{{7}, {0, 1, 2, 3}, {4}, {5}, {6}, {7}}
	g, err := FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	evLoud := inLoud.Evaluate(g)
	zsets := [][]int{{7}, {0, 1, 2, 3}, {4}, {}, {6}, {7}}
	zg, err := FromSets(zsets, 8)
	if err != nil {
		t.Fatal(err)
	}
	evQuiet := inQuiet.Evaluate(zg)
	if !evLoud.Valid {
		t.Fatalf("loud genome invalid: %s", evLoud.Reason())
	}
	if !evQuiet.Valid {
		t.Fatalf("quiet genome invalid: %s", evQuiet.Reason())
	}
	// c3 (p2 -> p10) terminates at c2's destination p10 while c2 is
	// receiving: its channel leaks into c2's detectors.
	if evLoud.CommBER[2] <= evQuiet.CommBER[2] {
		t.Errorf("inter-communication crosstalk must raise c2's BER: %g vs %g",
			evLoud.CommBER[2], evQuiet.CommBER[2])
	}
}

func TestEvaluateZeroVolumeEdgeSkipped(t *testing.T) {
	in := mustInstance(t, 8)
	app := in.App.Clone()
	app.Edges[0].VolumeBits = 0
	r := in.Fabric()
	in2, err := NewInstance(r, app, in.Map, 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int{{}, {1}, {2}, {3}, {4}, {5}}
	g, err := FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := in2.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("zero-volume edge without wavelengths must be fine: %s", ev.Reason())
	}
	if ev.CommEnergyFJ[0] != 0 || ev.CommBER[0] != 0 {
		t.Error("silent edge must cost nothing")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	in := mustInstance(t, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := RandomGenome(rng, in.Edges(), in.Channels(), 0.3)
		a := in.Evaluate(g)
		b := in.Evaluate(g)
		if a.Valid != b.Valid || a.MakespanCycles != b.MakespanCycles ||
			a.BitEnergyFJ != b.BitEnergyFJ || a.MeanBER != b.MeanBER {
			t.Fatal("evaluation must be deterministic")
		}
	}
}

func TestObjectivesProjection(t *testing.T) {
	in := mustInstance(t, 8)
	ev := in.Evaluate(allOnesDisjoint(t, in))
	objs := ev.Objectives([]Objective{ObjTime, ObjEnergy, ObjBER})
	if objs[0] != ev.MakespanCycles || objs[1] != ev.BitEnergyFJ || objs[2] != ev.MeanBER {
		t.Errorf("projection mismatch: %v", objs)
	}
	bad := invalid("x", 2).Objectives([]Objective{ObjTime, ObjBER})
	for _, v := range bad {
		if !math.IsInf(v, 1) {
			t.Error("invalid genome must project to +Inf")
		}
	}
}

func TestObjectiveStrings(t *testing.T) {
	names := map[Objective]string{ObjTime: "execution time", ObjEnergy: "bit energy", ObjBER: "mean BER"}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Objective(99).String() == "" {
		t.Error("unknown objective must still render")
	}
}

func bidirInstance(t *testing.T, nw int) *Instance {
	t.Helper()
	cfg := ring.DefaultConfig(nw)
	cfg.Bidirectional = true
	r, err := ring.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(r, graph.PaperApp(), graph.PaperMapping(), 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBidirectionalShortensPaths(t *testing.T) {
	uni := mustInstance(t, 8)
	bi := bidirInstance(t, 8)
	shorter := 0
	for e := 0; e < uni.Edges(); e++ {
		if bi.Path(e).Hops() > uni.Path(e).Hops() {
			t.Errorf("edge %d: bidirectional path longer (%d vs %d hops)",
				e, bi.Path(e).Hops(), uni.Path(e).Hops())
		}
		if bi.Path(e).Hops() < uni.Path(e).Hops() {
			shorter++
		}
	}
	if shorter == 0 {
		t.Error("no communication benefited from the twin waveguide")
	}
}

func TestBidirectionalLowersEnergy(t *testing.T) {
	// Shorter routes mean fewer bank transits and less propagation:
	// the loss-compensating laser spends less.
	uni := mustInstance(t, 8)
	bi := bidirInstance(t, 8)
	g, err := Assign(uni, UniformCounts(6, 1), LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	evU := uni.Evaluate(g)
	evB := bi.Evaluate(g)
	if !evU.Valid {
		t.Fatalf("unidirectional eval invalid: %s", evU.Reason())
	}
	if !evB.Valid {
		t.Fatalf("bidirectional eval invalid: %s", evB.Reason())
	}
	if evB.BitEnergyFJ >= evU.BitEnergyFJ {
		t.Errorf("twin waveguide must save laser energy: %v vs %v fJ/bit",
			evB.BitEnergyFJ, evU.BitEnergyFJ)
	}
	// The analytic time model is topology-independent: same makespan.
	if evB.MakespanCycles != evU.MakespanCycles {
		t.Errorf("makespan changed: %v vs %v", evB.MakespanCycles, evU.MakespanCycles)
	}
}

func TestBidirectionalRelaxesConflicts(t *testing.T) {
	// c0 (0->15) runs clockwise 15 hops on the unidirectional ring
	// and conflicts with everything; bidirectionally it hops 15->0
	// backwards in one step, freeing its wavelength for c1.
	uni := mustInstance(t, 8)
	bi := bidirInstance(t, 8)
	if got := bi.Path(0).Hops(); got != 1 {
		t.Fatalf("bidirectional c0 hops = %d, want 1 (0->15 backwards)", got)
	}
	sets := [][]int{{0}, {0}, {1}, {2}, {3}, {4}}
	g, err := FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ev := uni.Evaluate(g); ev.Valid {
		t.Fatal("channel sharing between overlapping c0/c1 must be invalid unidirectionally")
	}
	if ev := bi.Evaluate(g); !ev.Valid {
		t.Fatalf("counter-propagating c0/c1 must be valid bidirectionally: %s", ev.Reason())
	}
}

func TestCrosstalkModeAttribution(t *testing.T) {
	// The two noise sources the paper's introduction names must
	// decompose cleanly: both >= each single source >= none, and the
	// no-crosstalk BER is the extinction-ratio floor.
	in := mustInstance(t, 8)
	app := in.App.Clone()
	app.Edges[3].VolumeBits = 16000 // widen c3's window to force overlap with c2
	mkEval := func(mode CrosstalkMode) Eval {
		in2, err := NewInstance(in.Fabric(), app, in.Map, 1, in.Energy)
		if err != nil {
			t.Fatal(err)
		}
		in2.Xtalk = mode
		g, err := FromSets([][]int{{7}, {0, 1, 2, 3}, {4}, {5}, {6}, {7}}, 8)
		if err != nil {
			t.Fatal(err)
		}
		ev := in2.Evaluate(g)
		if !ev.Valid {
			t.Fatalf("%v: invalid: %s", mode, ev.Reason())
		}
		return ev
	}
	both := mkEval(XtalkBoth)
	intra := mkEval(XtalkIntraOnly)
	inter := mkEval(XtalkInterOnly)
	none := mkEval(XtalkNone)
	if !(both.MeanBER >= intra.MeanBER && both.MeanBER >= inter.MeanBER) {
		t.Errorf("both (%g) must dominate single sources (intra %g, inter %g)",
			both.MeanBER, intra.MeanBER, inter.MeanBER)
	}
	if !(intra.MeanBER > none.MeanBER && inter.MeanBER > none.MeanBER) {
		t.Errorf("each source must add noise over the floor: intra %g inter %g none %g",
			intra.MeanBER, inter.MeanBER, none.MeanBER)
	}
	// The no-crosstalk BER is the pure extinction floor: SNR = P1/P0
	// scaled by the link loss, identical for every wavelength count.
	if none.MeanBER <= 0 {
		t.Error("extinction floor must be positive (P0 is non-zero)")
	}
	// The schedule is crosstalk-independent.
	for _, ev := range []Eval{intra, inter, none} {
		if ev.MakespanCycles != both.MakespanCycles {
			t.Error("crosstalk mode must not change the schedule")
		}
	}
}

func TestCrosstalkModeStrings(t *testing.T) {
	for mode, want := range map[CrosstalkMode]string{
		XtalkBoth: "intra+inter", XtalkIntraOnly: "intra-only",
		XtalkInterOnly: "inter-only", XtalkNone: "none",
	} {
		if mode.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), mode.String(), want)
		}
	}
}

func TestExplainRespectsCrosstalkMode(t *testing.T) {
	in := mustInstance(t, 8)
	in.Xtalk = XtalkNone
	g, err := Assign(in, []int{1, 3, 2, 2, 2, 2}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := in.Explain(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range ex.Comms {
		for _, lb := range cb.Lambdas {
			if len(lb.Noise) != 0 {
				t.Fatalf("%s ch%d: noise terms present with crosstalk disabled", cb.Name, lb.Channel)
			}
		}
	}
}
