package alloc

import "sync"

// EvaluatorPool recycles evaluators over one shared read-only
// instance. It is the reusable form of the pooling idiom that was
// private to Instance.Evaluate and core.Problem: callers that serve
// many short-lived evaluation requests (the GA's compatibility path,
// the waserve batching front) draw a warm evaluator, run it, and put
// it back, instead of paying NewEvaluator's scratch construction per
// request.
//
// The pool is safe for concurrent use; the evaluators it hands out are
// not — each Get gives the caller exclusive use until the matching
// Put. Evaluators are constructed lazily, so an idle pool costs
// nothing, and sync.Pool semantics apply: evaluators may be dropped
// under memory pressure and rebuilt on demand.
type EvaluatorPool struct {
	in    *Instance
	delta bool
	pool  sync.Pool
}

// NewEvaluatorPool builds a pool over in. With delta set, every
// evaluator the pool constructs carries a delta cache
// (EnableDeltaCache), so pooled callers that evaluate related genomes
// back-to-back keep the incremental kernels available.
func NewEvaluatorPool(in *Instance, delta bool) *EvaluatorPool {
	return &EvaluatorPool{in: in, delta: delta}
}

// Instance returns the instance every pooled evaluator is bound to.
func (p *EvaluatorPool) Instance() *Instance { return p.in }

// Get returns an evaluator for exclusive use until Put. The only
// possible error is NewEvaluator's (a task graph that lost its
// acyclicity since instance construction).
func (p *EvaluatorPool) Get() (*Evaluator, error) {
	if ev, _ := p.pool.Get().(*Evaluator); ev != nil {
		return ev, nil
	}
	ev, err := NewEvaluator(p.in)
	if err != nil {
		return nil, err
	}
	if p.delta {
		ev.EnableDeltaCache(0)
	}
	return ev, nil
}

// Put returns an evaluator to the pool. Evaluators bound to a
// different instance are dropped rather than poisoning the pool.
func (p *EvaluatorPool) Put(ev *Evaluator) {
	if ev == nil || ev.in != p.in {
		return
	}
	p.pool.Put(ev)
}
