package alloc

import (
	"fmt"
	"math"

	"repro/internal/phys"
	"repro/internal/ring"
	"repro/internal/sched"
)

// Eval is the full figure-of-merit vector of one chromosome. Invalid
// chromosomes (the paper sets their fitness to infinity) carry the
// Reason and infinite objectives.
type Eval struct {
	// Valid reports whether the chromosome satisfies the paper's
	// validity rules; when false, Reason explains which rule fired
	// first and Violation grades how badly the rules are broken (the
	// number of missing reservations plus the number of shared
	// wavelength/link/time collisions). The GA uses the magnitude as
	// Deb's constraint violation, which gives evolution a gradient
	// toward the feasible region.
	Valid     bool
	Reason    string
	Violation float64

	// MakespanCycles is the global execution time (Eq. 11).
	MakespanCycles float64
	// BitEnergyFJ is the laser energy per transmitted bit (Fig 6(a)).
	BitEnergyFJ float64
	// MeanBER and WorstBER aggregate the per-wavelength BER of every
	// reserved (communication, wavelength) pair (Fig 6(b) plots the
	// mean).
	MeanBER  float64
	WorstBER float64

	// Counts is the per-communication wavelength count vector.
	Counts []int
	// CommBER is the mean BER per communication.
	CommBER []float64
	// CommEnergyFJ is the laser energy per communication.
	CommEnergyFJ []float64
	// Schedule is the analytic schedule the metrics were derived
	// from.
	Schedule *sched.Schedule
}

// TimeKCC returns the makespan in kilo-clock-cycles, the unit of the
// paper's plots.
func (e Eval) TimeKCC() float64 { return e.MakespanCycles / 1000 }

// Log10MeanBER returns the display form used by Figs. 6(b) and 7.
func (e Eval) Log10MeanBER() float64 { return phys.Log10BER(e.MeanBER) }

func invalid(reason string, violation float64) Eval {
	inf := math.Inf(1)
	if violation <= 0 {
		violation = 1
	}
	return Eval{Valid: false, Reason: reason, Violation: violation,
		MakespanCycles: inf, BitEnergyFJ: inf, MeanBER: inf, WorstBER: inf}
}

// Evaluate computes the objective vector of one chromosome:
//
//  1. decode and check the validity rules (every loaded communication
//     needs at least one wavelength; communications whose ring paths
//     share a segment and whose activity windows overlap must use
//     disjoint wavelength sets),
//  2. run the analytic time model,
//  3. assemble the per-window receiver-bank states and walk the
//     optics for the signal and every first-order crosstalk
//     contributor (Eqs. 2-7),
//  4. aggregate SNR -> BER (Eqs. 8-9) and the loss-compensating laser
//     energy.
func (in *Instance) Evaluate(g Genome) Eval {
	if g.Edges() != in.Edges() || g.Channels() != in.Channels() {
		return invalid(fmt.Sprintf("genome shape %dx%d does not match instance %dx%d",
			g.Edges(), g.Channels(), in.Edges(), in.Channels()), 1)
	}
	counts := g.Counts()
	sets := make([][]int, in.Edges())
	var violation float64
	var reason string
	note := func(v float64, format string, args ...interface{}) {
		violation += v
		if reason == "" {
			reason = fmt.Sprintf(format, args...)
		}
	}
	// Effective counts let the scheduler produce windows even for a
	// broken chromosome, so the conflict grading below stays
	// meaningful while the genome is repaired by evolution.
	eff := make([]int, in.Edges())
	for e := range sets {
		sets[e] = g.ChannelSet(e)
		eff[e] = counts[e]
		if counts[e] == 0 && in.App.Edges[e].VolumeBits > 0 {
			note(1, "communication %s reserves no wavelength", in.App.Edges[e].Name)
			eff[e] = 1
		}
	}

	s, err := sched.Compute(in.App, eff, in.BitsPerCycle)
	if err != nil {
		return invalid(err.Error(), violation+1)
	}

	// Validity: time-overlapping communications sharing waveguide
	// segments must not share wavelengths (the paper's "same
	// wavelength assigned to the same link"). Every shared channel
	// adds to the violation grade.
	for i := 0; i < in.Edges(); i++ {
		for j := i + 1; j < in.Edges(); j++ {
			if !s.Comm[i].Overlaps(s.Comm[j]) || !in.paths[i].Overlaps(in.paths[j]) {
				continue
			}
			if shared := countShared(sets[i], sets[j]); shared > 0 {
				note(float64(shared), "communications %s and %s share wavelength %d on a common link while both active",
					in.App.Edges[i].Name, in.App.Edges[j].Name, intersects(sets[i], sets[j]))
			}
		}
	}
	if violation > 0 {
		return invalid(reason, violation)
	}

	par := in.Ring.Config().Params
	pv := par.LaserOnDBm
	p0 := par.LaserOffDBm.MilliWatt()

	ev := Eval{
		Valid:        true,
		Counts:       counts,
		CommBER:      make([]float64, in.Edges()),
		CommEnergyFJ: make([]float64, in.Edges()),
		Schedule:     s,
	}
	ev.MakespanCycles = s.MakespanCycles

	var berSum float64
	var berN int
	var totalFJ, totalBits float64
	for e := 0; e < in.Edges(); e++ {
		if in.App.Edges[e].VolumeBits <= 0 || counts[e] == 0 {
			continue
		}
		bank := in.bankFor(e, s, sets)
		dst := in.dstCore[e]
		powers := make([]phys.MilliWatt, 0, counts[e])
		var commBERSum float64
		for _, ch := range sets[e] {
			sigLoss := in.Ring.SignalArrivalDB(in.paths[e], ch, bank)
			psig := pv.Add(sigLoss).MilliWatt()

			var noise phys.MilliWatt
			// Intra-communication crosstalk: the same transfer's
			// other wavelengths leak into this detector.
			for _, other := range sets[e] {
				if other == ch || !in.Xtalk.intra() {
					continue
				}
				arr, err := in.Ring.ArrivalAlongDB(in.paths[e], dst, other, ch, bank)
				if err == nil {
					noise += pv.Add(arr).MilliWatt()
				}
			}
			// Inter-communication crosstalk: wavelengths of other
			// transfers whose light crosses this receiver while this
			// transfer is active, walked along the interferer's own
			// route.
			for o := 0; in.Xtalk.inter() && o < in.Edges(); o++ {
				if o == e || counts[o] == 0 || in.App.Edges[o].VolumeBits <= 0 {
					continue
				}
				// Counter-propagating transfers live on the twin
				// waveguide and pass a different receiver bank: no
				// coupling.
				if in.paths[o].Dir != in.paths[e].Dir {
					continue
				}
				if !s.Comm[e].Overlaps(s.Comm[o]) || !in.paths[o].Through(dst) {
					continue
				}
				for _, other := range sets[o] {
					if other == ch {
						// Impossible in valid genomes (the shared
						// incoming segment would have tripped the
						// validity rule); skip defensively.
						continue
					}
					arr, err := in.Ring.ArrivalAlongDB(in.paths[o], dst, other, ch, bank)
					if err == nil {
						noise += pv.Add(arr).MilliWatt()
					}
				}
			}
			ber := phys.BEROOK(phys.SNR(psig, noise, p0))
			commBERSum += ber
			berSum += ber
			berN++
			if ber > ev.WorstBER {
				ev.WorstBER = ber
			}
			// Laser sizing: fixed receive-power target by default,
			// or the BER-target mode where crosstalk directly drives
			// the emitted power (the paper's introduction).
			powers = append(powers, in.Energy.WavelengthLaserMW(sigLoss, noise, p0))
		}
		ev.CommBER[e] = commBERSum / float64(len(sets[e]))
		ev.CommEnergyFJ[e] = in.Energy.EnergyFJ(powers, s.Comm[e].Duration())
		totalFJ += ev.CommEnergyFJ[e]
		totalBits += in.App.Edges[e].VolumeBits
	}
	if berN > 0 {
		ev.MeanBER = berSum / float64(berN)
	}
	if totalBits > 0 {
		ev.BitEnergyFJ = totalFJ / totalBits
	}
	return ev
}

// bankFor builds the receiver-bank state seen by communication e's
// light: the micro-ring for channel ch at ONI oni is ON when some
// communication whose activity window overlaps e's (including e
// itself) is dropping ch at oni on e's waveguide. On bidirectional
// rings each direction carries its own bank, so counter-propagating
// receivers never appear in e's view.
func (in *Instance) bankFor(e int, s *sched.Schedule, sets [][]int) ring.BankState {
	nw := in.Channels()
	bank := ring.NewBank(in.Ring.Size(), nw)
	for o := 0; o < in.Edges(); o++ {
		if in.App.Edges[o].VolumeBits <= 0 {
			continue
		}
		if in.paths[o].Dir != in.paths[e].Dir {
			continue
		}
		if o != e && !s.Comm[e].Overlaps(s.Comm[o]) {
			continue
		}
		for _, ch := range sets[o] {
			bank.Set(in.dstCore[o], ch, true)
		}
	}
	return bank
}

// intersects returns a channel present in both sorted sets, or -1.
func intersects(a, b []int) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// countShared returns how many channels two sorted sets share.
func countShared(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Objectives projects an evaluation onto a minimization vector.
// Invalid evaluations map to +Inf in every coordinate, mirroring the
// paper's "set the fitness to infinity".
func (e Eval) Objectives(objs []Objective) []float64 {
	out := make([]float64, len(objs))
	for i, o := range objs {
		if !e.Valid {
			out[i] = math.Inf(1)
			continue
		}
		switch o {
		case ObjTime:
			out[i] = e.MakespanCycles
		case ObjEnergy:
			out[i] = e.BitEnergyFJ
		case ObjBER:
			out[i] = e.MeanBER
		default:
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Objective selects one of the paper's three optimization criteria.
type Objective int

const (
	// ObjTime is the global execution time (Eq. 11).
	ObjTime Objective = iota
	// ObjEnergy is the energy per transmitted bit.
	ObjEnergy
	// ObjBER is the mean bit-error rate (Eq. 9).
	ObjBER
)

// String names the objective for reports.
func (o Objective) String() string {
	switch o {
	case ObjTime:
		return "execution time"
	case ObjEnergy:
		return "bit energy"
	case ObjBER:
		return "mean BER"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}
