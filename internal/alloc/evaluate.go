package alloc

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/phys"
	"repro/internal/sched"
)

// Eval is the full figure-of-merit vector of one chromosome. Invalid
// chromosomes (the paper sets their fitness to infinity) carry a
// failure reason (see Reason) and infinite objectives.
type Eval struct {
	// Valid reports whether the chromosome satisfies the paper's
	// validity rules; when false, Reason() explains which rule fired
	// first and Violation grades how badly the rules are broken (the
	// number of missing reservations plus the number of shared
	// wavelength/link/time collisions). The GA uses the magnitude as
	// Deb's constraint violation, which gives evolution a gradient
	// toward the feasible region.
	Valid     bool
	Violation float64
	// reason records which validity rule fired first, as indices into
	// the instance rather than a formatted string: the GA discards
	// reasons wholesale, so the invalid hot path must not pay a
	// fmt.Sprintf allocation per rejected genome. Reason() formats it
	// on demand.
	reason failureReason

	// MakespanCycles is the global execution time (Eq. 11).
	MakespanCycles float64
	// BitEnergyFJ is the laser energy per transmitted bit (Fig 6(a)).
	BitEnergyFJ float64
	// MeanBER and WorstBER aggregate the per-wavelength BER of every
	// reserved (communication, wavelength) pair (Fig 6(b) plots the
	// mean).
	MeanBER  float64
	WorstBER float64

	// Counts is the per-communication wavelength count vector.
	Counts []int
	// CommBER is the mean BER per communication.
	CommBER []float64
	// CommEnergyFJ is the laser energy per communication.
	CommEnergyFJ []float64
	// Schedule is the analytic schedule the metrics were derived
	// from.
	Schedule *sched.Schedule
}

// TimeKCC returns the makespan in kilo-clock-cycles, the unit of the
// paper's plots.
func (e Eval) TimeKCC() float64 { return e.MakespanCycles / 1000 }

// Log10MeanBER returns the display form used by Figs. 6(b) and 7.
func (e Eval) Log10MeanBER() float64 { return phys.Log10BER(e.MeanBER) }

// reasonKind discriminates the lazily formatted failure reasons.
type reasonKind uint8

const (
	// reasonNone marks a valid evaluation (Reason returns "").
	reasonNone reasonKind = iota
	// reasonText carries a pre-formatted message, used only on the
	// exceptional paths (shape mismatch, scheduler failure) where the
	// message is built from an error anyway.
	reasonText
	// reasonNoWavelength: communication `edge` reserves no wavelength.
	reasonNoWavelength
	// reasonSharedWavelength: communications `edge` and `other` share
	// `channel` on a common link while both active.
	reasonSharedWavelength
)

// failureReason is the allocation-free record of the first validity
// rule an evaluation broke: indices into the (immutable, long-lived)
// instance instead of a formatted string. It stays resolvable after
// Detach and after the producing evaluator moves on, because it
// references no evaluator scratch.
type failureReason struct {
	kind                 reasonKind
	text                 string
	in                   *Instance
	edge, other, channel int
}

// Reason formats the first-failure explanation of an invalid
// evaluation ("" for valid ones). The string is computed on demand:
// the GA's invalid path records only indices, so rejecting a genome
// does not allocate, while explain/simulator/CLI callers that surface
// the message still get exactly the historical wording.
func (e *Eval) Reason() string {
	r := &e.reason
	switch r.kind {
	case reasonText:
		return r.text
	case reasonNoWavelength:
		return fmt.Sprintf("communication %s reserves no wavelength", r.in.App.Edges[r.edge].Name)
	case reasonSharedWavelength:
		return fmt.Sprintf("communications %s and %s share wavelength %d on a common link while both active",
			r.in.App.Edges[r.edge].Name, r.in.App.Edges[r.other].Name, r.channel)
	}
	return ""
}

// invalid builds an infeasible evaluation with a pre-formatted text
// reason (exceptional paths only — the kernel's graded-violation path
// uses invalidEval with an index-backed reason instead).
func invalid(reason string, violation float64) Eval {
	return invalidEval(failureReason{kind: reasonText, text: reason}, violation)
}

func invalidEval(reason failureReason, violation float64) Eval {
	inf := math.Inf(1)
	if violation <= 0 {
		violation = 1
	}
	return Eval{Valid: false, reason: reason, Violation: violation,
		MakespanCycles: inf, BitEnergyFJ: inf, MeanBER: inf, WorstBER: inf}
}

// Evaluate computes the objective vector of one chromosome. It is a
// compatibility wrapper over Evaluator.EvaluateInto: evaluators are
// drawn from a pool (so concurrent callers evaluate in parallel, as
// before the kernel refactor) and the result is detached, so the
// returned Eval owns its slices. Hot loops (the GA workers) should
// hold their own Evaluator instead and skip both the pool round-trip
// and the copies.
func (in *Instance) Evaluate(g Genome) Eval {
	ev, _ := in.evalPool.Get().(*Evaluator)
	if ev == nil {
		var err error
		ev, err = NewEvaluator(in)
		if err != nil {
			return invalid(err.Error(), 1)
		}
	}
	var out Eval
	ev.EvaluateInto(&out, g)
	out.Detach()
	in.evalPool.Put(ev)
	return out
}

// bankFor builds the receiver-bank state seen by communication e's
// light: the micro-ring for channel ch at ONI oni is ON when some
// communication whose activity window overlaps e's (including e
// itself) is dropping ch at oni on e's lane. Each lane carries its
// own bank (physically separate media), so receivers on other lanes
// never appear in e's view.
func (in *Instance) bankFor(e int, s *sched.Schedule, sets [][]int) fabric.BankState {
	nw := in.Channels()
	bank := fabric.NewBank(in.fab.Size(), nw)
	for o := 0; o < in.Edges(); o++ {
		if in.App.Edges[o].VolumeBits <= 0 || in.selfEdge[o] {
			continue
		}
		if in.paths[o].Lane != in.paths[e].Lane {
			continue
		}
		if o != e && !s.Comm[e].Overlaps(s.Comm[o]) {
			continue
		}
		for _, ch := range sets[o] {
			bank.Set(in.dstCore[o], ch, true)
		}
	}
	return bank
}

// intersects returns a channel present in both sorted sets, or -1.
func intersects(a, b []int) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// countShared returns how many channels two sorted sets share.
func countShared(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Objectives projects an evaluation onto a minimization vector.
// Invalid evaluations map to +Inf in every coordinate, mirroring the
// paper's "set the fitness to infinity".
func (e Eval) Objectives(objs []Objective) []float64 {
	out := make([]float64, len(objs))
	e.ObjectivesInto(out, objs)
	return out
}

// ObjectivesInto is Objectives writing into a caller-owned vector
// (len(dst) must be len(objs)) — the allocation-free form the search
// engine uses to land objective values directly in its column arena.
func (e Eval) ObjectivesInto(dst []float64, objs []Objective) {
	for i, o := range objs {
		if !e.Valid {
			dst[i] = math.Inf(1)
			continue
		}
		switch o {
		case ObjTime:
			dst[i] = e.MakespanCycles
		case ObjEnergy:
			dst[i] = e.BitEnergyFJ
		case ObjBER:
			dst[i] = e.MeanBER
		default:
			dst[i] = math.Inf(1)
		}
	}
}

// Objective selects one of the paper's three optimization criteria.
type Objective int

const (
	// ObjTime is the global execution time (Eq. 11).
	ObjTime Objective = iota
	// ObjEnergy is the energy per transmitted bit.
	ObjEnergy
	// ObjBER is the mean bit-error rate (Eq. 9).
	ObjBER
)

// String names the objective for reports.
func (o Objective) String() string {
	switch o {
	case ObjTime:
		return "execution time"
	case ObjEnergy:
		return "bit energy"
	case ObjBER:
		return "mean BER"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}
