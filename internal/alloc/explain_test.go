package alloc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/phys"
)

func explainedGenome(t *testing.T, in *Instance) Genome {
	t.Helper()
	g, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExplainMatchesEvaluate(t *testing.T) {
	in := mustInstance(t, 12)
	g := explainedGenome(t, in)
	ev := in.Evaluate(g)
	ex, err := in.Explain(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Eval.MeanBER != ev.MeanBER || ex.Eval.MakespanCycles != ev.MakespanCycles {
		t.Error("explanation must embed the same evaluation")
	}
	// The per-lambda BERs must average to the per-communication BER.
	for _, cb := range ex.Comms {
		var sum float64
		for _, lb := range cb.Lambdas {
			sum += lb.BER
		}
		mean := sum / float64(len(cb.Lambdas))
		if math.Abs(mean-ev.CommBER[cb.Edge]) > 1e-15 {
			t.Errorf("%s: explained mean BER %g vs evaluated %g", cb.Name, mean, ev.CommBER[cb.Edge])
		}
	}
	// Every loaded communication appears exactly once.
	if len(ex.Comms) != in.Edges() {
		t.Errorf("explained %d communications, want %d", len(ex.Comms), in.Edges())
	}
}

func TestExplainBudgetInternals(t *testing.T) {
	in := mustInstance(t, 12)
	g := explainedGenome(t, in)
	ex, err := in.Explain(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range ex.Comms {
		if cb.Hops <= 0 {
			t.Errorf("%s: zero hops", cb.Name)
		}
		for _, lb := range cb.Lambdas {
			if lb.PathLossDB >= 0 {
				t.Errorf("%s ch%d: loss %v must be negative", cb.Name, lb.Channel, lb.PathLossDB)
			}
			if float64(lb.SignalDBm) >= -10 {
				t.Errorf("%s ch%d: arrival %v dBm cannot exceed the -10 dBm laser", cb.Name, lb.Channel, lb.SignalDBm)
			}
			if lb.SNR <= 0 {
				t.Errorf("%s ch%d: SNR %v", cb.Name, lb.Channel, lb.SNR)
			}
			if lb.LaserMW <= 0 {
				t.Errorf("%s ch%d: laser power %v", cb.Name, lb.Channel, lb.LaserMW)
			}
			// Noise terms are sorted strongest first and sum to the
			// total.
			var sum phys.MilliWatt
			for i, term := range lb.Noise {
				sum += term.PowerDBm.MilliWatt()
				if i > 0 && term.PowerDBm > lb.Noise[i-1].PowerDBm {
					t.Errorf("%s ch%d: noise terms not sorted", cb.Name, lb.Channel)
				}
			}
			if math.Abs(float64(sum-lb.NoiseTotalMW)) > 1e-18 {
				t.Errorf("%s ch%d: noise sum %v vs total %v", cb.Name, lb.Channel, sum, lb.NoiseTotalMW)
			}
		}
	}
}

func TestExplainMultiLambdaHasIntraTerms(t *testing.T) {
	in := mustInstance(t, 12)
	g := explainedGenome(t, in)
	ex, err := in.Explain(g)
	if err != nil {
		t.Fatal(err)
	}
	// c1 holds 4 wavelengths: each of its detectors must see 3 intra
	// terms from its own transfer.
	for _, cb := range ex.Comms {
		if cb.Edge != 1 {
			continue
		}
		for _, lb := range cb.Lambdas {
			intra := 0
			for _, term := range lb.Noise {
				if term.Intra {
					intra++
					if term.FromEdge != 1 {
						t.Error("intra term attributed to another communication")
					}
				}
			}
			if intra != 3 {
				t.Errorf("c1 ch%d: %d intra terms, want 3", lb.Channel, intra)
			}
		}
	}
}

func TestExplainRejectsInvalid(t *testing.T) {
	in := mustInstance(t, 8)
	if _, err := in.Explain(in.NewZeroGenome()); err == nil {
		t.Error("invalid genome must not be explainable")
	}
}

func TestExplainString(t *testing.T) {
	in := mustInstance(t, 12)
	g := explainedGenome(t, in)
	ex, err := in.Explain(g)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	for _, want := range []string{"link budget", "c1", "SNR", "dBm", "mW"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestBERTargetModeRaisesEnergyWithCrosstalk(t *testing.T) {
	// In BER-target mode a communication in a noisier environment
	// needs more laser power: compare c1 alone on many channels
	// (heavy intra crosstalk) against spread single channels.
	in := mustInstance(t, 8)
	em := in.Energy
	em.BERTarget = 1e-9
	in2, err := NewInstance(in.Fabric(), in.App, in.Map, 1, em)
	if err != nil {
		t.Fatal(err)
	}
	lean, err := FromSets([][]int{{7}, {0}, {1}, {2}, {3}, {0}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := FromSets([][]int{{7}, {0, 1, 2, 3, 4, 5}, {1}, {6}, {3}, {0}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	evLean := in2.Evaluate(lean)
	evDense := in2.Evaluate(dense)
	if !evLean.Valid || !evDense.Valid {
		t.Fatalf("genomes invalid: %s / %s", evLean.Reason(), evDense.Reason())
	}
	// Per-bit laser energy on c1 (averaged over its channels) grows
	// with the crosstalk its own parallelism injects. Compare the
	// per-channel average power, which normalizes the time split.
	leanPower := evLean.CommEnergyFJ[1] / evLean.Schedule.Comm[1].Duration()
	densePower := evDense.CommEnergyFJ[1] / evDense.Schedule.Comm[1].Duration() / 6
	if densePower <= leanPower {
		t.Errorf("BER-target mode: per-channel power %v (dense) must exceed %v (lean)",
			densePower, leanPower)
	}
}

func TestBERTargetStricterCostsMore(t *testing.T) {
	in := mustInstance(t, 8)
	g := explainedGenome(t, in)
	energyAt := func(target float64) float64 {
		em := in.Energy
		em.BERTarget = target
		in2, err := NewInstance(in.Fabric(), in.App, in.Map, 1, em)
		if err != nil {
			t.Fatal(err)
		}
		ev := in2.Evaluate(g)
		if !ev.Valid {
			t.Fatal(ev.Reason())
		}
		return ev.BitEnergyFJ
	}
	if e9, e12 := energyAt(1e-9), energyAt(1e-12); e12 <= e9 {
		t.Errorf("stricter BER target must cost more energy: %v (1e-12) vs %v (1e-9)", e12, e9)
	}
}

func TestBERTargetZeroKeepsFixedTargetModel(t *testing.T) {
	in := mustInstance(t, 8)
	g := explainedGenome(t, in)
	ev := in.Evaluate(g)
	// Rebuilding with an explicit zero target must not change
	// anything.
	em := in.Energy
	em.BERTarget = 0
	in2, err := NewInstance(in.Fabric(), in.App, in.Map, 1, em)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := in2.Evaluate(g)
	if ev.BitEnergyFJ != ev2.BitEnergyFJ {
		t.Errorf("zero target changed energy: %v vs %v", ev.BitEnergyFJ, ev2.BitEnergyFJ)
	}
}
