package alloc

import (
	"math"
	"math/rand"
	"testing"
)

// requireSameEval asserts bit-identity of two evaluations: validity,
// violation grade, first-failure reason, every objective and every
// per-communication vector.
func requireSameEval(t *testing.T, ctx string, got, want *Eval) {
	t.Helper()
	if got.Valid != want.Valid {
		t.Fatalf("%s: Valid = %v, want %v", ctx, got.Valid, want.Valid)
	}
	sameF := func(name string, g, w float64) {
		t.Helper()
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: %s = %v (%016x), want %v (%016x)", ctx, name, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	sameF("Violation", got.Violation, want.Violation)
	sameF("MakespanCycles", got.MakespanCycles, want.MakespanCycles)
	sameF("BitEnergyFJ", got.BitEnergyFJ, want.BitEnergyFJ)
	sameF("MeanBER", got.MeanBER, want.MeanBER)
	sameF("WorstBER", got.WorstBER, want.WorstBER)
	if gr, wr := got.Reason(), want.Reason(); gr != wr {
		t.Fatalf("%s: Reason = %q, want %q", ctx, gr, wr)
	}
	if !want.Valid {
		return
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("%s: %d counts, want %d", ctx, len(got.Counts), len(want.Counts))
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("%s: Counts[%d] = %d, want %d", ctx, i, got.Counts[i], want.Counts[i])
		}
		sameF("CommBER", got.CommBER[i], want.CommBER[i])
		sameF("CommEnergyFJ", got.CommEnergyFJ[i], want.CommEnergyFJ[i])
	}
}

// mutateOneGene flips one random gene of g in place and returns the
// delta-call arguments describing the flip.
func mutateOneGene(rng *rand.Rand, g Genome) (edge, oldCh, newCh int) {
	gene := rng.Intn(g.Len())
	edge = gene / g.Channels()
	ch := gene % g.Channels()
	if g.Get(edge, ch) {
		g.Set(edge, ch, false)
		return edge, ch, -1
	}
	g.Set(edge, ch, true)
	return edge, -1, ch
}

// TestDeltaKernelMatchesFull drives long chains of random single-gene
// mutations (plus occasional same-edge channel swaps) through the
// delta kernel and checks every evaluation — objectives, violation
// grade, first-failure reason, per-communication vectors — against a
// fresh full EvaluateInto, across comb sizes. Chains deliberately
// cross in and out of the feasible region, so delta-off-delta
// (captured child becomes the next parent), delta-off-invalid-parent
// fallbacks and full-kernel re-entry are all exercised.
func TestDeltaKernelMatchesFull(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		ev.EnableDeltaCache(0)
		ref, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + nw)))

		// Start from a feasible allocation so the first capture exists.
		cur, err := Assign(in, UniformCounts(in.Edges(), 1), FirstFit, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out Eval
		ev.EvaluateInto(&out, cur)
		if !out.Valid {
			t.Fatalf("NW=%d: seed genome invalid: %s", nw, out.Reason())
		}
		lastValid := cur
		deltaCalls := 0
		for step := 0; step < 600; step++ {
			// Long invalid excursions starve the delta path (only valid
			// parents are retained): pull the chain back to the last
			// valid genome now and then, like selection pressure does.
			if rng.Intn(3) == 0 {
				cur = lastValid
			}
			child := cur.Clone()
			edge, oldCh, newCh := mutateOneGene(rng, child)
			if rng.Intn(4) == 0 {
				// Turn the flip into a same-edge channel swap when
				// possible: release one reserved channel, reserve the
				// mutated one (or vice versa), keeping the count.
				if set := child.ChannelSet(edge); oldCh == -1 && len(set) > 1 {
					for _, c := range set {
						if c != newCh {
							child.Set(edge, c, false)
							oldCh = c
							break
						}
					}
				}
			}

			var want Eval
			ref.EvaluateInto(&want, child)

			var got Eval
			if h, ok := ev.DeltaHandle(cur); ok {
				ev.EvaluateDeltaInto(&got, h, edge, oldCh, newCh)
				deltaCalls++
			} else if ev.EvaluateNearInto(&got, child, cur.Bits()) {
				deltaCalls++
			}
			requireSameEval(t, "chain", &got, &want)
			cur = child
			if want.Valid {
				lastValid = child
			}
		}
		if deltaCalls < 200 {
			t.Fatalf("NW=%d: only %d delta evaluations in 600 steps — chain never exercised the delta path", nw, deltaCalls)
		}
	}
}

// TestEvaluateNearMatchesFull exercises the general few-row delta
// (crossover-child shape): children differing from a retained parent
// in 1..3 edge rows, plus far children that must fall back to the
// full kernel, all bit-identical to the reference.
func TestEvaluateNearMatchesFull(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		ev.EnableDeltaCache(0)
		ref, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(200 + nw)))

		parent, err := Assign(in, UniformCounts(in.Edges(), 1), LeastUsed, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out Eval
		ev.EvaluateInto(&out, parent)
		if !out.Valid {
			t.Fatalf("NW=%d: parent invalid: %s", nw, out.Reason())
		}
		usedDelta, usedFull := 0, 0
		for trial := 0; trial < 400; trial++ {
			child := parent.Clone()
			rows := 1 + rng.Intn(in.Edges()) // up to every row mutated
			for r := 0; r < rows; r++ {
				mutateOneGene(rng, child)
			}
			var want Eval
			ref.EvaluateInto(&want, child)
			var got Eval
			if ev.EvaluateNearInto(&got, child, parent.Bits()) {
				usedDelta++
			} else {
				usedFull++
			}
			requireSameEval(t, "near", &got, &want)
		}
		if usedDelta == 0 || usedFull == 0 {
			t.Fatalf("NW=%d: delta/full split %d/%d — both paths must be exercised", nw, usedDelta, usedFull)
		}
	}
}

// rowDiff counts the edge rows on which two same-shape genomes differ.
func rowDiff(a, b Genome) int {
	nw, d := a.Channels(), 0
	ab, bb := a.Bits(), b.Bits()
	for r := 0; r < a.Edges(); r++ {
		if string(ab[r*nw:(r+1)*nw]) != string(bb[r*nw:(r+1)*nw]) {
			d++
		}
	}
	return d
}

// TestEvaluateCrossMatchesFull exercises the two-parent crossover
// delta: children spliced from two retained parents by gene-level
// two-point crossover (the GA's operator shape), occasionally plus
// mutations, all bit-identical to the full kernel. It additionally
// asserts that the crossover path engages (LastEvalPath reports
// EvalPathCrossDelta) and that children too distant from EITHER
// parent alone — which the single-parent rule would send to the full
// kernel — are still evaluated incrementally when the two parents
// jointly cover all but a few rows.
func TestEvaluateCrossMatchesFull(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		ev.EnableDeltaCache(0)
		ref, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(300 + nw)))

		parentA, err := Assign(in, UniformCounts(in.Edges(), 1), FirstFit, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out Eval
		ev.EvaluateInto(&out, parentA)
		if !out.Valid {
			t.Fatalf("NW=%d: parent A invalid: %s", nw, out.Reason())
		}
		// Parent B: swap every row's channel so the parents differ on
		// every edge (retry until the swap combination is feasible).
		var parentB Genome
		for attempt := 0; ; attempt++ {
			if attempt >= 1000 {
				t.Fatalf("NW=%d: no feasible all-rows-distinct mate found", nw)
			}
			cand := parentA.Clone()
			for r := 0; r < in.Edges(); r++ {
				old := cand.ChannelSet(r)[0]
				cand.Set(r, old, false)
				cand.Set(r, (old+1+rng.Intn(nw-1))%nw, true)
			}
			ref.EvaluateInto(&out, cand)
			if out.Valid {
				parentB = cand
				break
			}
		}
		ev.EvaluateInto(&out, parentB)
		if rowDiff(parentA, parentB) != in.Edges() {
			t.Fatalf("NW=%d: mate construction broken", nw)
		}

		maxRows := in.Edges() / 2
		if maxRows < 2 {
			maxRows = 2
		}
		crossDelta, distantDelta, usedFull := 0, 0, 0
		for trial := 0; trial < 500; trial++ {
			c1, c2 := rng.Intn(parentA.Len()+1), rng.Intn(parentA.Len()+1)
			if c1 > c2 {
				c1, c2 = c2, c1
			}
			child := parentA.Clone()
			copy(child.Bits()[c1:c2], parentB.Bits()[c1:c2])
			if rng.Intn(4) == 0 {
				for r := rng.Intn(in.Edges()); r >= 0; r-- {
					mutateOneGene(rng, child)
				}
			}
			var want Eval
			ref.EvaluateInto(&want, child)
			var got Eval
			took := ev.EvaluateNearInto(&got, child, parentA.Bits(), parentB.Bits())
			requireSameEval(t, "cross", &got, &want)
			if !took {
				usedFull++
				continue
			}
			if ev.LastEvalPath() == EvalPathCrossDelta {
				crossDelta++
			}
			dA, dB := rowDiff(child, parentA), rowDiff(child, parentB)
			if dA > maxRows && dB > maxRows {
				distantDelta++
			}
		}
		if crossDelta == 0 {
			t.Fatalf("NW=%d: crossover-delta path never engaged", nw)
		}
		if distantDelta == 0 {
			t.Fatalf("NW=%d: no distant-from-both-parents child took the delta path", nw)
		}
		if usedFull == 0 {
			t.Fatalf("NW=%d: full-kernel fallback never exercised", nw)
		}
	}
}

// TestDeltaHandleMissesInvalid pins the store policy: only valid
// evaluations are retained as parents.
func TestDeltaHandleMissesInvalid(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	ev.EnableDeltaCache(0)
	zero := in.NewZeroGenome()
	var out Eval
	ev.EvaluateInto(&out, zero)
	if out.Valid {
		t.Fatal("zero genome cannot be valid")
	}
	if _, ok := ev.DeltaHandle(zero); ok {
		t.Fatal("invalid evaluation must not be retained as a delta parent")
	}
}

// TestDeltaKernelSteadyStateZeroAllocs pins the delta path's
// allocation budget: re-evaluating an already-retained child off a
// retained parent performs no heap allocations.
func TestDeltaKernelSteadyStateZeroAllocs(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	ev.EnableDeltaCache(0)
	parent, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Eval
	ev.EvaluateInto(&out, parent)
	if !out.Valid {
		t.Fatal(out.Reason())
	}
	h, ok := ev.DeltaHandle(parent)
	if !ok {
		t.Fatal("parent not retained")
	}
	ch := parent.ChannelSet(0)[0]
	ev.EvaluateDeltaInto(&out, h, 0, ch, -1) // warm: child capture
	allocs := testing.AllocsPerRun(100, func() {
		h, _ := ev.DeltaHandle(parent)
		ev.EvaluateDeltaInto(&out, h, 0, ch, -1)
	})
	if allocs != 0 {
		t.Fatalf("delta path allocates %v times per evaluation, want 0", allocs)
	}
}

// FuzzEvaluateDelta feeds arbitrary flip scripts through the delta
// kernel and cross-checks every step against the full kernel.
func FuzzEvaluateDelta(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x42, 0x17, 0x99})
	f.Add(int64(7), []byte{0xff, 0x00, 0x3c})
	in, err := DefaultInstance(8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		ev.EnableDeltaCache(64)
		ref, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := Assign(in, UniformCounts(in.Edges(), 1), FirstFit, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out Eval
		ev.EvaluateInto(&out, cur)
		for _, b := range script {
			child := cur.Clone()
			gene := int(b) % child.Len()
			edge, ch := gene/child.Channels(), gene%child.Channels()
			var oldCh, newCh int
			if child.Get(edge, ch) {
				child.Set(edge, ch, false)
				oldCh, newCh = ch, -1
			} else {
				child.Set(edge, ch, true)
				oldCh, newCh = -1, ch
			}
			var want Eval
			ref.EvaluateInto(&want, child)
			var got Eval
			if h, ok := ev.DeltaHandle(cur); ok {
				ev.EvaluateDeltaInto(&got, h, edge, oldCh, newCh)
			} else {
				ev.EvaluateNearInto(&got, child, cur.Bits())
			}
			requireSameEval(t, "fuzz", &got, &want)
			cur = child
		}
	})
}
