package alloc

import (
	"fmt"
	"math/bits"

	"repro/internal/fabric"
	"repro/internal/phys"
	"repro/internal/sched"
)

// Evaluator is the reusable, allocation-free form of the chromosome
// evaluation kernel. It owns every piece of scratch the evaluation
// needs — the decoded channel sets, the effective-count vector, the
// schedule windows, the receiver-bank state and the per-communication
// metric vectors — so a steady-state GA loop calling EvaluateInto
// performs no heap allocations for valid genomes.
//
// An Evaluator is NOT safe for concurrent use: give each worker
// goroutine its own (they are cheap — a few KiB of slices). The
// shared *Instance is read-only during evaluation, so any number of
// evaluators may wrap the same instance.
//
// With EnableDeltaCache, the evaluator additionally retains the
// decoded state and per-edge optics results of recently evaluated
// valid genomes, which the delta kernel (EvaluateDeltaInto,
// EvaluateNearInto — see delta.go) uses to re-evaluate single-gene
// and few-row mutants at a fraction of the full kernel's cost while
// staying bit-identical to it.
type Evaluator struct {
	in      *Instance
	planner *sched.Planner

	sched   sched.Schedule
	counts  []int
	eff     []int
	sets    [][]int
	setsBuf []int
	// setOff holds the per-edge CSR offsets of sets/berBuf: edge e's
	// channel set is setsBuf[setOff[e]:setOff[e+1]], and its
	// per-channel BERs land at the same offsets in berBuf.
	setOff []int32
	// masks holds the decoded per-edge wavelength bitmasks, one
	// in.MaskWords()-word row per edge: the native representation of
	// the conflict kernel (disjointness = word-wise AND) and of the
	// receiver-bank fill (Bank.OrRow).
	masks []uint64
	bank  *fabric.Bank
	// berBuf records the per-(edge, reserved channel) BER values of
	// the optics walk, parallel to setsBuf. The delta kernel replays
	// them in stream order for edges whose optics inputs did not
	// change, reproducing the full kernel's float accumulation
	// bit-for-bit.
	berBuf  []float64
	powers  []phys.MilliWatt
	commBER []float64
	commFJ  []float64

	// delta is the opt-in retained-parent store plus the delta-path
	// scratch (see delta.go); nil until EnableDeltaCache.
	delta *deltaState

	// lastPath records which kernel served the most recent
	// Evaluate*Into call (see LastEvalPath).
	lastPath EvalPath
}

// EvalPath identifies which kernel served an evaluation.
type EvalPath uint8

const (
	// EvalPathFull is the full evaluation kernel.
	EvalPathFull EvalPath = iota
	// EvalPathGeneDelta is the single-gene delta kernel
	// (EvaluateDeltaInto).
	EvalPathGeneDelta
	// EvalPathNearDelta is the few-row delta replay off a single
	// retained parent (EvaluateNearInto with one usable parent).
	EvalPathNearDelta
	// EvalPathCrossDelta is the two-parent crossover delta replay
	// (EvaluateNearInto with both mating parents retained).
	EvalPathCrossDelta
)

// LastEvalPath reports which kernel served the most recent
// Evaluate*Into call on this evaluator — observability for the
// engine-level instrumentation counters, not part of any result.
func (e *Evaluator) LastEvalPath() EvalPath { return e.lastPath }

// NewEvaluator builds an evaluator with scratch sized for the
// instance. The only possible error is a task graph that lost its
// acyclicity since NewInstance validated it.
func NewEvaluator(in *Instance) (*Evaluator, error) {
	if in == nil {
		return nil, fmt.Errorf("alloc: nil instance")
	}
	planner, err := sched.NewPlannerMapped(in.App, in.Map, in.fab.Size())
	if err != nil {
		return nil, err
	}
	nl, nw := in.Edges(), in.Channels()
	return &Evaluator{
		in:      in,
		planner: planner,
		counts:  make([]int, nl),
		eff:     make([]int, nl),
		sets:    make([][]int, nl),
		setsBuf: make([]int, 0, nl*nw),
		setOff:  make([]int32, nl+1),
		masks:   make([]uint64, nl*in.maskWords),
		bank:    fabric.NewBank(in.fab.Size(), nw),
		berBuf:  make([]float64, nl*nw),
		powers:  make([]phys.MilliWatt, 0, nw),
		commBER: make([]float64, nl),
		commFJ:  make([]float64, nl),
	}, nil
}

// Instance returns the bound problem instance.
func (e *Evaluator) Instance() *Instance { return e.in }

// Evaluate is the convenience form of EvaluateInto: the returned
// Eval is detached, so it owns its slices and survives later calls
// on this evaluator. Hot loops should use EvaluateInto and accept
// the scratch-aliasing contract instead.
func (e *Evaluator) Evaluate(g Genome) Eval {
	var out Eval
	e.EvaluateInto(&out, g)
	out.Detach()
	return out
}

// EvaluateInto computes the objective vector of one chromosome into
// out, reusing the evaluator's scratch. The slices and the Schedule
// reachable from out (Counts, CommBER, CommEnergyFJ, Schedule) alias
// that scratch: they are valid only until the next Evaluate*Into call
// on this evaluator. Callers that retain them must copy (see
// Instance.Evaluate and Eval.Detach).
//
// The model is identical to Instance.Evaluate:
//
//  1. decode and check the validity rules (every loaded communication
//     needs at least one wavelength; communications whose fabric paths
//     share a resource and whose activity windows overlap must use
//     disjoint wavelength sets),
//  2. run the analytic time model,
//  3. assemble the per-window receiver-bank states and walk the
//     optics for the signal and every first-order crosstalk
//     contributor (Eqs. 2-7),
//  4. aggregate SNR -> BER (Eqs. 8-9) and the loss-compensating laser
//     energy.
func (e *Evaluator) EvaluateInto(out *Eval, g Genome) {
	in := e.in
	if g.Edges() != in.Edges() || g.Channels() != in.Channels() {
		e.lastPath = EvalPathFull
		*out = invalid(fmt.Sprintf("genome shape %dx%d does not match instance %dx%d",
			g.Edges(), g.Channels(), in.Edges(), in.Channels()), 1)
		return
	}
	// Decode the chromosome into per-edge wavelength bitmasks; the
	// rest of the kernel consumes the mask rows natively.
	g.MaskInto(e.masks, in.maskWords)
	e.evaluateDecoded(out, g.bits)
}

// evaluateDecoded runs the kernel on the already decoded mask rows in
// e.masks. key is the genome's gene slice, used only to register the
// evaluation with the delta cache (nil skips registration).
func (e *Evaluator) evaluateDecoded(out *Eval, key []byte) {
	e.lastPath = EvalPathFull
	violation, reason := e.decodeMasks()
	if err := e.planner.ComputeInto(&e.sched, e.eff, e.in.BitsPerCycle); err != nil {
		*out = invalid(err.Error(), violation+1)
		return
	}
	s := &e.sched
	violation, reason = e.gradeConflicts(s, violation, reason)
	if violation > 0 {
		*out = invalidEval(reason, violation)
		return
	}
	e.opticsInto(out, s)
	e.capture(key)
}

// decodeMasks derives the channel index sets (the optics walk
// iterates those) and the effective counts from the mask rows in
// e.masks: counts are popcounts, set members come off TrailingZeros.
// Missing reservations are graded as we go; effective counts let the
// scheduler produce windows even for a broken chromosome, so the
// conflict grading stays meaningful while the genome is repaired by
// evolution.
func (e *Evaluator) decodeMasks() (violation float64, reason failureReason) {
	in := e.in
	nl, W := in.Edges(), in.maskWords
	e.setsBuf = e.setsBuf[:0]
	off := 0
	for ei := 0; ei < nl; ei++ {
		row := e.masks[ei*W : (ei+1)*W]
		n := 0
		for w, word := range row {
			n += bits.OnesCount64(word)
			base := w * 64
			for word != 0 {
				e.setsBuf = append(e.setsBuf, base+bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
		e.setOff[ei] = int32(off)
		e.sets[ei] = e.setsBuf[off : off+n : off+n]
		off += n
		e.counts[ei] = n
		e.eff[ei] = n
		e.commBER[ei] = 0
		e.commFJ[ei] = 0
		// Self edges (same-core endpoints under a shared mapping) are
		// served by the core's memory: they need no wavelengths and any
		// reserved ones are inert.
		if n == 0 && in.App.Edges[ei].VolumeBits > 0 && !in.selfEdge[ei] {
			violation++
			if reason.kind == reasonNone {
				reason = failureReason{kind: reasonNoWavelength, in: in, edge: ei}
			}
			e.eff[ei] = 1
		}
	}
	e.setOff[nl] = int32(off)
	return violation, reason
}

// gradeConflicts applies the wavelength-disjointness rule over every
// conflict-neighbor pair: time-overlapping communications sharing
// waveguide segments must not share wavelengths (the paper's "same
// wavelength assigned to the same link"). Every shared channel adds
// to the violation grade. Only the precomputed conflict-neighbor
// pairs (paths sharing a resource, ascending i < j exactly like the
// full matrix scan) can trip the rule, and set intersection is a
// word-wise AND over the mask rows.
func (e *Evaluator) gradeConflicts(s *sched.Schedule, violation float64, reason failureReason) (float64, failureReason) {
	in := e.in
	nl, W := in.Edges(), in.maskWords
	for i := 0; i < nl; i++ {
		wi := e.masks[i*W : (i+1)*W]
		for k := in.confStart[i]; k < in.confStart[i+1]; k++ {
			j := int(in.confAdj[k])
			if !s.Comm[i].Overlaps(s.Comm[j]) {
				continue
			}
			wj := e.masks[j*W : (j+1)*W]
			shared := 0
			for w := range wi {
				shared += bits.OnesCount64(wi[w] & wj[w])
			}
			if shared > 0 {
				violation += float64(shared)
				if reason.kind == reasonNone {
					first := -1
					for w := range wi {
						if x := wi[w] & wj[w]; x != 0 {
							first = w*64 + bits.TrailingZeros64(x)
							break
						}
					}
					reason = failureReason{kind: reasonSharedWavelength, in: in, edge: i, other: j, channel: first}
				}
			}
		}
	}
	return violation, reason
}

// opticsAccum carries the cross-edge aggregation state of the optics
// walk. The delta path shares it with the full kernel so replayed and
// recomputed edges contribute to the same float accumulation sequence.
type opticsAccum struct {
	berSum             float64
	berN               int
	totalFJ, totalBits float64
}

// opticsInto walks the optics of every transmitting edge and
// assembles the valid evaluation.
func (e *Evaluator) opticsInto(out *Eval, s *sched.Schedule) {
	in := e.in
	nl := in.Edges()
	*out = Eval{
		Valid:          true,
		Counts:         e.counts,
		CommBER:        e.commBER,
		CommEnergyFJ:   e.commFJ,
		Schedule:       s,
		MakespanCycles: s.MakespanCycles,
	}
	var acc opticsAccum
	for ei := 0; ei < nl; ei++ {
		// Self edges never reach the optics: no BER, no laser energy,
		// and their bits do not count as optically transmitted.
		if in.App.Edges[ei].VolumeBits <= 0 || e.counts[ei] == 0 || in.selfEdge[ei] {
			continue
		}
		e.opticsEdge(out, ei, s, &acc)
	}
	if acc.berN > 0 {
		out.MeanBER = acc.berSum / float64(acc.berN)
	}
	if acc.totalBits > 0 {
		out.BitEnergyFJ = acc.totalFJ / acc.totalBits
	}
}

// opticsEdge computes one transmitting edge's optics: the receiver
// bank it sees, the signal and crosstalk walks of every reserved
// wavelength, the per-channel BERs (recorded in berBuf for the delta
// kernel's replay) and the edge's laser energy.
func (e *Evaluator) opticsEdge(out *Eval, ei int, s *sched.Schedule, acc *opticsAccum) {
	in := e.in
	nl := in.Edges()
	par := in.fab.Params()
	pv := par.LaserOnDBm
	p0 := par.LaserOffDBm.MilliWatt()

	e.fillBank(ei, s)
	dst := in.dstCore[ei]
	powers := e.powers[:0]
	bers := e.berBuf[e.setOff[ei]:e.setOff[ei+1]]
	var commBERSum float64
	for si, ch := range e.sets[ei] {
		sigLoss := in.fab.SignalArrivalDB(in.paths[ei], ch, e.bank)
		psig := pv.Add(sigLoss).MilliWatt()

		var noise phys.MilliWatt
		// Intra-communication crosstalk: the same transfer's
		// other wavelengths leak into this detector.
		for _, other := range e.sets[ei] {
			if other == ch || !in.Xtalk.intra() {
				continue
			}
			arr, err := in.fab.ArrivalAlongDB(in.paths[ei], dst, other, ch, e.bank)
			if err == nil {
				noise += pv.Add(arr).MilliWatt()
			}
		}
		// Inter-communication crosstalk: wavelengths of other
		// transfers whose light crosses this receiver while this
		// transfer is active, walked along the interferer's own
		// route.
		for o := 0; in.Xtalk.inter() && o < nl; o++ {
			if o == ei || e.counts[o] == 0 || in.App.Edges[o].VolumeBits <= 0 || in.selfEdge[o] {
				continue
			}
			// Transfers on another lane live on a physically
			// separate medium and pass a different receiver bank:
			// no coupling.
			if in.paths[o].Lane != in.paths[ei].Lane {
				continue
			}
			if !s.Comm[ei].Overlaps(s.Comm[o]) || !in.paths[o].Through(dst) {
				continue
			}
			for _, other := range e.sets[o] {
				if other == ch {
					// Impossible in valid genomes (the shared
					// incoming segment would have tripped the
					// validity rule); skip defensively.
					continue
				}
				arr, err := in.fab.ArrivalAlongDB(in.paths[o], dst, other, ch, e.bank)
				if err == nil {
					noise += pv.Add(arr).MilliWatt()
				}
			}
		}
		ber := phys.BEROOK(phys.SNR(psig, noise, p0))
		bers[si] = ber
		commBERSum += ber
		acc.berSum += ber
		acc.berN++
		if ber > out.WorstBER {
			out.WorstBER = ber
		}
		// Laser sizing: fixed receive-power target by default,
		// or the BER-target mode where crosstalk directly drives
		// the emitted power (the paper's introduction).
		powers = append(powers, in.Energy.WavelengthLaserMW(sigLoss, noise, p0))
	}
	e.commBER[ei] = commBERSum / float64(len(e.sets[ei]))
	e.commFJ[ei] = in.Energy.EnergyFJ(powers, s.Comm[ei].Duration())
	acc.totalFJ += e.commFJ[ei]
	acc.totalBits += in.App.Edges[ei].VolumeBits
}

// fillBank rebuilds the evaluator's receiver-bank scratch with the
// state seen by communication ei's light (the zero-allocation form of
// Instance.bankFor). Each contributing communication installs its
// whole wavelength set with one word-wise OR of its mask row.
func (e *Evaluator) fillBank(ei int, s *sched.Schedule) {
	in := e.in
	W := in.maskWords
	e.bank.Reset()
	for o := 0; o < in.Edges(); o++ {
		if in.App.Edges[o].VolumeBits <= 0 || in.selfEdge[o] {
			continue
		}
		if in.paths[o].Lane != in.paths[ei].Lane {
			continue
		}
		if o != ei && !s.Comm[ei].Overlaps(s.Comm[o]) {
			continue
		}
		e.bank.OrRow(in.dstCore[o], e.masks[o*W:(o+1)*W])
	}
}

// Detach deep-copies every slice and the schedule reachable from the
// evaluation, so it survives the next EvaluateInto call on the
// evaluator that produced it.
func (e *Eval) Detach() {
	e.Counts = append([]int(nil), e.Counts...)
	e.CommBER = append([]float64(nil), e.CommBER...)
	e.CommEnergyFJ = append([]float64(nil), e.CommEnergyFJ...)
	if e.Schedule != nil {
		e.Schedule = e.Schedule.Clone()
	}
}
