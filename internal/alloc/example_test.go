package alloc_test

import (
	"fmt"

	"repro/internal/alloc"
)

// The paper's Section III-D chromosome: six communications over four
// wavelengths, one wavelength each.
func ExampleParseGenome() {
	g, err := alloc.ParseGenome("1000/0001/0001/0001/1000/1000", 6, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("counts:", g.Counts())
	fmt.Println("c0 channels:", g.ChannelSet(0))
	// Output:
	// counts: [1 1 1 1 1 1]
	// c0 channels: [0]
}

// Evaluating the energy-optimal all-ones allocation on the paper's
// default platform.
func ExampleInstance_Evaluate() {
	in, err := alloc.DefaultInstance(8)
	if err != nil {
		fmt.Println(err)
		return
	}
	g, err := alloc.Assign(in, alloc.UniformCounts(in.Edges(), 1), alloc.LeastUsed, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	ev := in.Evaluate(g)
	fmt.Printf("valid: %v\n", ev.Valid)
	fmt.Printf("time: %.0f k-cc\n", ev.TimeKCC())
	fmt.Printf("energy: %.2f fJ/bit\n", ev.BitEnergyFJ)
	// Output:
	// valid: true
	// time: 36 k-cc
	// energy: 3.68 fJ/bit
}

// The validity rule in action: two time-overlapping communications on
// shared waveguide segments may not share a wavelength.
func ExampleInstance_Evaluate_invalid() {
	in, err := alloc.DefaultInstance(8)
	if err != nil {
		fmt.Println(err)
		return
	}
	// c2 and c4 both leave T2's core at the same instant; channel 2
	// on both violates the rule.
	g, err := alloc.FromSets([][]int{{0}, {1}, {2}, {3}, {2}, {5}}, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	ev := in.Evaluate(g)
	fmt.Println(ev.Valid)
	fmt.Println(ev.Reason())
	// Output:
	// false
	// communications c2 and c4 share wavelength 2 on a common link while both active
}
