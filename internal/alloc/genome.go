// Package alloc implements the wavelength-allocation layer of the
// paper: the binary chromosome encoding of Section III-D (Nl x NW
// genes, one per communication/wavelength pair), the validity rules,
// the full evaluation kernel combining the time model, the crosstalk
// BER model and the bit-energy model, and the classic wavelength
// assignment heuristics of the related-work section (First-Fit,
// Random, Most-Used, Least-Used) used as baselines.
package alloc

import (
	"fmt"
	"strings"
)

// Genome is the paper's chromosome: a flat row-major bit matrix with
// one row of NW genes per communication. Gene (e, ch) set to 1 means
// wavelength channel ch is reserved for communication e.
type Genome struct {
	bits  []byte
	edges int
	nw    int
}

// NewGenome returns an all-zero chromosome for edges communications
// over an nw-channel comb.
func NewGenome(edges, nw int) Genome {
	return Genome{bits: make([]byte, edges*nw), edges: edges, nw: nw}
}

// Edges returns Nl, the number of communications.
func (g Genome) Edges() int { return g.edges }

// Channels returns NW.
func (g Genome) Channels() int { return g.nw }

// Len returns the number of genes (Nl x NW).
func (g Genome) Len() int { return len(g.bits) }

// Get reports whether channel ch is reserved for edge e.
func (g Genome) Get(e, ch int) bool { return g.bits[e*g.nw+ch] != 0 }

// Set reserves (or releases) channel ch for edge e.
func (g Genome) Set(e, ch int, on bool) {
	if on {
		g.bits[e*g.nw+ch] = 1
	} else {
		g.bits[e*g.nw+ch] = 0
	}
}

// Bits exposes the underlying gene slice for the genetic operators.
// The slice is the genome's own storage: mutating it mutates the
// genome.
func (g Genome) Bits() []byte { return g.bits }

// FromBits wraps a gene slice produced by the genetic engine back
// into a genome of the given shape. The slice is not copied.
func FromBits(bits []byte, edges, nw int) (Genome, error) {
	if len(bits) != edges*nw {
		return Genome{}, fmt.Errorf("alloc: %d genes cannot shape %dx%d", len(bits), edges, nw)
	}
	return Genome{bits: bits, edges: edges, nw: nw}, nil
}

// Clone deep-copies the genome.
func (g Genome) Clone() Genome {
	nb := make([]byte, len(g.bits))
	copy(nb, g.bits)
	return Genome{bits: nb, edges: g.edges, nw: g.nw}
}

// ChannelSet returns the reserved channel indices of edge e, in
// ascending order.
func (g Genome) ChannelSet(e int) []int {
	var set []int
	for ch := 0; ch < g.nw; ch++ {
		if g.Get(e, ch) {
			set = append(set, ch)
		}
	}
	return set
}

// MaskInto decodes the chromosome into per-edge wavelength bitmasks:
// row e occupies dst[e*words : (e+1)*words], with bit ch of the row
// (bit ch&63 of word ch>>6) set iff gene (e, ch) is 1. words must be
// at least ring.MaskWords(Channels()) and dst must hold Edges()*words
// words. The evaluation kernel consumes these rows natively: set
// disjointness is a word-wise AND, wavelength counts are popcounts.
func (g Genome) MaskInto(dst []uint64, words int) {
	if g.edges*words == 0 {
		return
	}
	_ = dst[g.edges*words-1]
	for e := 0; e < g.edges; e++ {
		row := dst[e*words : (e+1)*words]
		for w := range row {
			row[w] = 0
		}
		base := e * g.nw
		for ch := 0; ch < g.nw; ch++ {
			if g.bits[base+ch] != 0 {
				row[ch>>6] |= 1 << (uint(ch) & 63)
			}
		}
	}
}

// Counts returns the per-edge number of reserved wavelengths: the
// "[2, 8, 6, 6, 4, 7]" vectors printed beside the paper's Pareto
// plots.
func (g Genome) Counts() []int {
	counts := make([]int, g.edges)
	for e := 0; e < g.edges; e++ {
		for ch := 0; ch < g.nw; ch++ {
			if g.Get(e, ch) {
				counts[e]++
			}
		}
	}
	return counts
}

// String renders the chromosome in the paper's notation:
// "1000/0001/0001/0001/1000/1000".
func (g Genome) String() string {
	var sb strings.Builder
	for e := 0; e < g.edges; e++ {
		if e > 0 {
			sb.WriteByte('/')
		}
		for ch := 0; ch < g.nw; ch++ {
			if g.Get(e, ch) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// Key returns a compact map key identifying the genotype; the archive
// uses it to count distinct valid solutions (Table II).
func (g Genome) Key() string { return string(g.bits) }

// ParseGenome reads the paper's slash-separated notation (slashes and
// spaces optional) into a genome of the given shape.
func ParseGenome(s string, edges, nw int) (Genome, error) {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '/', ' ', '\t':
			return -1
		}
		return r
	}, s)
	if len(clean) != edges*nw {
		return Genome{}, fmt.Errorf("alloc: %q has %d genes, want %d (%dx%d)", s, len(clean), edges*nw, edges, nw)
	}
	g := NewGenome(edges, nw)
	for i, c := range clean {
		switch c {
		case '0':
		case '1':
			g.bits[i] = 1
		default:
			return Genome{}, fmt.Errorf("alloc: invalid gene %q in %q", c, s)
		}
	}
	return g, nil
}

// FromCounts builds the canonical genome for a per-edge wavelength
// count vector by assigning the lowest channel indices to every edge
// (the packing a designer would write down first; heuristics and
// tests use it as a starting point). Counts exceeding NW are
// rejected.
func FromCounts(counts []int, nw int) (Genome, error) {
	g := NewGenome(len(counts), nw)
	for e, n := range counts {
		if n < 0 || n > nw {
			return Genome{}, fmt.Errorf("alloc: edge %d count %d outside [0,%d]", e, n, nw)
		}
		for ch := 0; ch < n; ch++ {
			g.Set(e, ch, true)
		}
	}
	return g, nil
}

// FromSets builds a genome from explicit per-edge channel sets.
func FromSets(sets [][]int, nw int) (Genome, error) {
	g := NewGenome(len(sets), nw)
	for e, set := range sets {
		for _, ch := range set {
			if ch < 0 || ch >= nw {
				return Genome{}, fmt.Errorf("alloc: edge %d channel %d outside [0,%d)", e, ch, nw)
			}
			if g.Get(e, ch) {
				return Genome{}, fmt.Errorf("alloc: edge %d channel %d listed twice", e, ch)
			}
			g.Set(e, ch, true)
		}
	}
	return g, nil
}
