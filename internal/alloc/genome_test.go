package alloc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGenomeBasics(t *testing.T) {
	g := NewGenome(6, 4)
	if g.Edges() != 6 || g.Channels() != 4 || g.Len() != 24 {
		t.Fatalf("shape = %d/%d/%d, want 6/4/24", g.Edges(), g.Channels(), g.Len())
	}
	if g.Get(2, 3) {
		t.Error("new genome must be all zero")
	}
	g.Set(2, 3, true)
	if !g.Get(2, 3) {
		t.Error("Set(true) not visible")
	}
	if g.Get(2, 2) || g.Get(3, 3) {
		t.Error("Set leaked to neighbours")
	}
	g.Set(2, 3, false)
	if g.Get(2, 3) {
		t.Error("Set(false) not visible")
	}
}

func TestGenomePaperExample(t *testing.T) {
	// Section III-D: chromosome [1000/0001/0001/0001/1000/1000] for
	// 6 communications over 4 wavelengths; c0 = [1000] allocates
	// lambda 1 (channel 0).
	g, err := ParseGenome("1000/0001/0001/0001/1000/1000", 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ChannelSet(0); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("c0 channels = %v, want [0]", got)
	}
	if got := g.ChannelSet(1); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("c1 channels = %v, want [3]", got)
	}
	if got := g.Counts(); !reflect.DeepEqual(got, []int{1, 1, 1, 1, 1, 1}) {
		t.Errorf("counts = %v, want all ones", got)
	}
	if g.String() != "1000/0001/0001/0001/1000/1000" {
		t.Errorf("String = %q", g.String())
	}
}

func TestParseGenomeTolerant(t *testing.T) {
	a, err := ParseGenome("10 00/01\t10", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGenome("10000110", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("whitespace handling broke parse: %q vs %q", a, b)
	}
}

func TestParseGenomeErrors(t *testing.T) {
	if _, err := ParseGenome("10/01", 2, 4); err == nil {
		t.Error("short genome must fail")
	}
	if _, err := ParseGenome("10x0", 1, 4); err == nil {
		t.Error("bad gene must fail")
	}
}

func TestGenomeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGenome(rng, 5, 8, 0.4)
		back, err := ParseGenome(g.String(), 5, 8)
		if err != nil {
			return false
		}
		return back.Key() == g.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenomeCloneIndependent(t *testing.T) {
	g := NewGenome(2, 2)
	c := g.Clone()
	c.Set(0, 0, true)
	if g.Get(0, 0) {
		t.Error("clone shares storage")
	}
}

func TestFromBits(t *testing.T) {
	bits := []byte{1, 0, 0, 1}
	g, err := FromBits(bits, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Get(0, 0) || !g.Get(1, 1) || g.Get(0, 1) {
		t.Error("FromBits mis-shaped")
	}
	if _, err := FromBits(bits, 2, 3); err == nil {
		t.Error("shape mismatch must fail")
	}
	// FromBits wraps without copying: operator mutations reach the genome.
	bits[1] = 1
	if !g.Get(0, 1) {
		t.Error("FromBits must alias the slice")
	}
}

func TestFromCounts(t *testing.T) {
	g, err := FromCounts([]int{1, 3, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ChannelSet(1); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("edge 1 channels = %v, want first three", got)
	}
	if len(g.ChannelSet(2)) != 0 {
		t.Error("zero count must reserve nothing")
	}
	if _, err := FromCounts([]int{5}, 4); err == nil {
		t.Error("count above NW must fail")
	}
	if _, err := FromCounts([]int{-1}, 4); err == nil {
		t.Error("negative count must fail")
	}
}

func TestFromSets(t *testing.T) {
	g, err := FromSets([][]int{{0, 2}, {1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Get(0, 0) || !g.Get(0, 2) || !g.Get(1, 1) {
		t.Error("FromSets wiring wrong")
	}
	if _, err := FromSets([][]int{{4}}, 4); err == nil {
		t.Error("out-of-range channel must fail")
	}
	if _, err := FromSets([][]int{{1, 1}}, 4); err == nil {
		t.Error("duplicate channel must fail")
	}
}

func TestKeyDistinguishesGenomes(t *testing.T) {
	a := NewGenome(2, 2)
	b := NewGenome(2, 2)
	if a.Key() != b.Key() {
		t.Error("identical genomes must share a key")
	}
	b.Set(1, 1, true)
	if a.Key() == b.Key() {
		t.Error("different genomes must differ in key")
	}
}
