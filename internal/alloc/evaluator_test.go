package alloc

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// randomGenome draws a genome with the given set-bit density.
func randomGenome(rng *rand.Rand, edges, nw int, density float64) Genome {
	g := NewGenome(edges, nw)
	for i := range g.bits {
		if rng.Float64() < density {
			g.bits[i] = 1
		}
	}
	return g
}

func evalEqual(a, b Eval) bool {
	if a.Valid != b.Valid || a.Reason() != b.Reason() || a.Violation != b.Violation {
		return false
	}
	if a.MakespanCycles != b.MakespanCycles || a.BitEnergyFJ != b.BitEnergyFJ {
		// Inf == Inf holds, so invalid evals compare fine.
		if !(math.IsInf(a.MakespanCycles, 1) && math.IsInf(b.MakespanCycles, 1)) {
			return false
		}
	}
	if a.MeanBER != b.MeanBER && !(math.IsInf(a.MeanBER, 1) && math.IsInf(b.MeanBER, 1)) {
		return false
	}
	if a.WorstBER != b.WorstBER && !(math.IsInf(a.WorstBER, 1) && math.IsInf(b.WorstBER, 1)) {
		return false
	}
	if len(a.Counts) != len(b.Counts) || len(a.CommBER) != len(b.CommBER) || len(a.CommEnergyFJ) != len(b.CommEnergyFJ) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	for i := range a.CommBER {
		if a.CommBER[i] != b.CommBER[i] || a.CommEnergyFJ[i] != b.CommEnergyFJ[i] {
			return false
		}
	}
	return true
}

// TestEvaluatorMatchesWrapper drives both paths over a mix of valid
// and invalid random genomes and demands bit-identical results — the
// contract the GA's determinism rests on.
func TestEvaluatorMatchesWrapper(t *testing.T) {
	for _, nw := range []int{4, 8} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(nw)))
		// Random genomes are nearly always invalid under the
		// disjointness rule, so mix in heuristic allocations to cover
		// the valid path too.
		samples := make([]Genome, 0, 220)
		for i := 0; i < 200; i++ {
			density := 0.1 + 0.8*rng.Float64()
			samples = append(samples, randomGenome(rng, in.Edges(), nw, density))
		}
		for n := 1; n <= nw/2; n++ {
			for _, pol := range []Policy{FirstFit, MostUsed, LeastUsed} {
				if g, err := Assign(in, UniformCounts(in.Edges(), n), pol, nil); err == nil {
					samples = append(samples, g)
				}
			}
		}
		var valid, invalidN int
		for _, g := range samples {
			want := in.Evaluate(g)
			var got Eval
			ev.EvaluateInto(&got, g)
			if !evalEqual(want, got) {
				t.Fatalf("NW=%d genome %s: wrapper %+v, kernel %+v", nw, g, want, got)
			}
			if got.Valid {
				valid++
				if got.Schedule == nil {
					t.Fatal("valid eval lost its schedule")
				}
				if err := got.Schedule.Validate(in.App); err != nil {
					t.Fatalf("kernel schedule invalid: %v", err)
				}
			} else {
				invalidN++
			}
		}
		if valid == 0 || invalidN == 0 {
			t.Fatalf("NW=%d: want both valid and invalid samples, got %d/%d", nw, valid, invalidN)
		}
	}
}

// TestEvaluatorSteadyStateZeroAllocs is the tentpole property: after
// warm-up, evaluating a valid chromosome performs no heap
// allocations.
func TestEvaluatorSteadyStateZeroAllocs(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Eval
	ev.EvaluateInto(&out, g) // warm-up
	allocs := testing.AllocsPerRun(50, func() {
		ev.EvaluateInto(&out, g)
		if !out.Valid {
			t.Fatal(out.Reason())
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state EvaluateInto allocates %v objects per run, want 0", allocs)
	}
}

// TestEvaluatorInvalidZeroAllocs pins the reason-free invalid path:
// rejecting a chromosome — with both rule kinds firing — records the
// failure as indices and must not allocate. Reason() still formats
// the historical wording when a caller asks for it.
func TestEvaluatorInvalidZeroAllocs(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	// zero: every loaded communication misses its reservation;
	// ones: maximal shared-wavelength conflicts.
	zero := in.NewZeroGenome()
	ones := in.NewZeroGenome()
	for e := 0; e < in.Edges(); e++ {
		for ch := 0; ch < in.Channels(); ch++ {
			ones.Set(e, ch, true)
		}
	}
	var out Eval
	ev.EvaluateInto(&out, zero) // warm-up
	ev.EvaluateInto(&out, ones)
	for _, g := range []Genome{zero, ones} {
		allocs := testing.AllocsPerRun(50, func() {
			ev.EvaluateInto(&out, g)
			if out.Valid {
				t.Fatal("genome cannot be valid")
			}
		})
		if allocs != 0 {
			t.Errorf("invalid-path EvaluateInto allocates %v objects per run, want 0", allocs)
		}
	}
	ev.EvaluateInto(&out, zero)
	if r := out.Reason(); !strings.Contains(r, "reserves no wavelength") {
		t.Errorf("zero-genome reason = %q", r)
	}
	ev.EvaluateInto(&out, ones)
	if r := out.Reason(); !strings.Contains(r, "share wavelength") {
		t.Errorf("all-ones reason = %q", r)
	}
}

// TestEvaluatorScratchAliasing documents the lifetime rule: results
// alias the evaluator's scratch until Detach.
func TestEvaluatorScratchAliasing(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Assign(in, UniformCounts(in.Edges(), 1), FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Eval
	ev.EvaluateInto(&a, g1)
	a.Detach()
	detachedCounts := append([]int(nil), a.Counts...)
	detachedBER := a.MeanBER

	var b Eval
	ev.EvaluateInto(&b, g2)
	for i := range a.Counts {
		if a.Counts[i] != detachedCounts[i] {
			t.Fatal("Detach did not copy Counts")
		}
	}
	if a.MeanBER != detachedBER {
		t.Fatal("detached eval mutated")
	}
	// b's counts are the all-ones vector, proving the scratch was
	// rewritten in place.
	for i, c := range b.Counts {
		if c != 1 {
			t.Fatalf("second eval counts[%d] = %d, want 1", i, c)
		}
	}
}

// TestEvaluatorShapeMismatch mirrors the wrapper's fast-reject path.
func TestEvaluatorShapeMismatch(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Eval
	ev.EvaluateInto(&out, NewGenome(2, 8))
	if out.Valid || out.Violation == 0 {
		t.Fatalf("shape mismatch accepted: %+v", out)
	}
	if NewEvaluatorMustErr() {
		t.Fatal("unreachable")
	}
}

// NewEvaluatorMustErr exercises the nil-instance guard.
func NewEvaluatorMustErr() bool {
	_, err := NewEvaluator(nil)
	return err == nil
}

// TestEvaluatorConvenienceEvaluate covers the value-returning form.
func TestEvaluatorConvenienceEvaluate(t *testing.T) {
	in, err := DefaultInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Instance() != in {
		t.Fatal("evaluator lost its instance")
	}
	g, err := FromCounts(UniformCounts(in.Edges(), 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := ev.Evaluate(g)
	want := in.Evaluate(g)
	if !evalEqual(want, got) {
		t.Fatalf("convenience form differs: %+v vs %+v", got, want)
	}
}

// TestInstanceEvaluateConcurrent pins the compatibility wrapper's
// contract: concurrent callers evaluate in parallel (pooled
// evaluators) and all observe identical results.
func TestInstanceEvaluateConcurrent(t *testing.T) {
	in, err := DefaultInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Assign(in, []int{1, 4, 2, 3, 2, 3}, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := in.Evaluate(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := in.Evaluate(g)
				if !evalEqual(want, got) {
					t.Errorf("concurrent evaluation diverged: %+v vs %+v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
