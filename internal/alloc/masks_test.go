package alloc

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// refValidity is the pre-mask reference implementation of the
// validity rules: decode per-edge channel sets as [][]int, grade
// missing reservations, run the planner, then scan every edge pair
// against the window overlap, the path overlap and the sorted-set
// intersection. The property tests pin the bitmask conflict kernel to
// this oracle bit for bit (violation grade AND first-failure reason).
func refValidity(t *testing.T, in *Instance, g Genome) (violation float64, reason string) {
	t.Helper()
	nl, nw := in.Edges(), in.Channels()
	sets := make([][]int, nl)
	eff := make([]int, nl)
	for ei := 0; ei < nl; ei++ {
		for ch := 0; ch < nw; ch++ {
			if g.Get(ei, ch) {
				sets[ei] = append(sets[ei], ch)
			}
		}
		eff[ei] = len(sets[ei])
		if len(sets[ei]) == 0 && in.App.Edges[ei].VolumeBits > 0 && !in.SelfEdge(ei) {
			violation++
			if reason == "" {
				reason = fmt.Sprintf("communication %s reserves no wavelength", in.App.Edges[ei].Name)
			}
			eff[ei] = 1
		}
	}
	planner, err := sched.NewPlannerMapped(in.App, in.Map, in.Fabric().Size())
	if err != nil {
		t.Fatal(err)
	}
	var s sched.Schedule
	if err := planner.ComputeInto(&s, eff, in.BitsPerCycle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nl; i++ {
		for j := i + 1; j < nl; j++ {
			if !s.Comm[i].Overlaps(s.Comm[j]) || !in.PathsOverlap(i, j) {
				continue
			}
			if shared := countShared(sets[i], sets[j]); shared > 0 {
				violation += float64(shared)
				if reason == "" {
					reason = fmt.Sprintf("communications %s and %s share wavelength %d on a common link while both active",
						in.App.Edges[i].Name, in.App.Edges[j].Name, intersects(sets[i], sets[j]))
				}
			}
		}
	}
	return violation, reason
}

// checkMaskAgainstReference compares one genome's EvaluateInto result
// against the set-based oracle.
func checkMaskAgainstReference(t *testing.T, in *Instance, ev *Evaluator, g Genome) {
	t.Helper()
	wantViolation, wantReason := refValidity(t, in, g)
	var out Eval
	ev.EvaluateInto(&out, g)
	if out.Valid != (wantViolation == 0) {
		t.Fatalf("NW=%d genome %s: mask kernel valid=%v, reference violation=%v",
			in.Channels(), g, out.Valid, wantViolation)
	}
	if !out.Valid {
		if out.Violation != wantViolation {
			t.Fatalf("NW=%d genome %s: mask violation %v, reference %v",
				in.Channels(), g, out.Violation, wantViolation)
		}
		if out.Reason() != wantReason {
			t.Fatalf("NW=%d genome %s:\nmask reason      %q\nreference reason %q",
				in.Channels(), g, out.Reason(), wantReason)
		}
	}
}

// TestMaskKernelMatchesSetKernel is the equivalence property test of
// the tentpole: across NW in {4, 8, 16} and randomized genomes of
// every density (from surely-invalid sparse to conflict-heavy dense),
// the bitmask conflict kernel and the [][]int set-based validity
// check agree on validity, on the violation grade and on the
// first-failure reason.
func TestMaskKernelMatchesSetKernel(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(in)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + nw)))
		for trial := 0; trial < 300; trial++ {
			g := in.NewZeroGenome()
			density := float64(trial%10) / 9
			for e := 0; e < in.Edges(); e++ {
				for ch := 0; ch < nw; ch++ {
					if rng.Float64() < density {
						g.Set(e, ch, true)
					}
				}
			}
			checkMaskAgainstReference(t, in, ev, g)
		}
		// Known-valid genomes via the heuristics, so the valid branch
		// is exercised for sure at every comb size.
		for n := 1; n <= 2; n++ {
			g, err := Assign(in, UniformCounts(in.Edges(), n), FirstFit, nil)
			if err != nil {
				continue
			}
			checkMaskAgainstReference(t, in, ev, g)
		}
	}
}

// TestMaskIntoMatchesChannelSets pins the decoder itself: MaskInto
// rows agree with ChannelSet and Counts on random genomes, including
// multi-word rows (NW > 64).
func TestMaskIntoMatchesChannelSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nw := range []int{1, 4, 8, 16, 63, 64, 65, 130} {
		edges := 1 + rng.Intn(8)
		g := NewGenome(edges, nw)
		for i := range g.Bits() {
			g.Bits()[i] = byte(rng.Intn(2))
		}
		words := (nw + 63) / 64
		masks := make([]uint64, edges*words)
		g.MaskInto(masks, words)
		counts := g.Counts()
		for e := 0; e < edges; e++ {
			row := masks[e*words : (e+1)*words]
			n := 0
			var set []int
			for w, word := range row {
				n += bits.OnesCount64(word)
				for word != 0 {
					set = append(set, w*64+bits.TrailingZeros64(word))
					word &= word - 1
				}
			}
			if n != counts[e] {
				t.Fatalf("NW=%d edge %d: mask popcount %d, Counts %d", nw, e, n, counts[e])
			}
			want := g.ChannelSet(e)
			if len(set) != len(want) {
				t.Fatalf("NW=%d edge %d: mask set %v, ChannelSet %v", nw, e, set, want)
			}
			for i := range want {
				if set[i] != want[i] {
					t.Fatalf("NW=%d edge %d: mask set %v, ChannelSet %v", nw, e, set, want)
				}
			}
		}
	}
}

// TestConflictNeighborsMatchOverlapMatrix pins the sparse CSR
// adjacency to the dense path-overlap matrix it compresses.
func TestConflictNeighborsMatchOverlapMatrix(t *testing.T) {
	for _, nw := range []int{4, 8} {
		in, err := DefaultInstance(nw)
		if err != nil {
			t.Fatal(err)
		}
		nl := in.Edges()
		for i := 0; i < nl; i++ {
			var want []int32
			for j := i + 1; j < nl; j++ {
				if in.PathsOverlap(i, j) {
					want = append(want, int32(j))
				}
			}
			got := in.ConflictNeighbors(i)
			if len(got) != len(want) {
				t.Fatalf("edge %d: neighbors %v, want %v", i, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("edge %d: neighbors %v, want %v", i, got, want)
				}
			}
		}
	}
}

// FuzzGenomeDecode fuzzes the chromosome decoder: arbitrary byte
// strings shaped into genomes must decode to masks consistent with
// the scalar accessors, and the mask kernel must agree with the
// set-based oracle on the paper instance.
func FuzzGenomeDecode(f *testing.F) {
	in, err := DefaultInstance(8)
	if err != nil {
		f.Fatal(err)
	}
	ev, err := NewEvaluator(in)
	if err != nil {
		f.Fatal(err)
	}
	nl, nw := in.Edges(), in.Channels()
	// Seed corpus: the paper's notation examples, the degenerate
	// all-zero/all-one genomes, and single-conflict shapes.
	if g, err := ParseGenome("10000000/00000001/00000001/00000001/10000000/10000000", nl, nw); err == nil {
		f.Add(g.Bits())
	}
	f.Add(make([]byte, nl*nw))
	all := make([]byte, nl*nw)
	for i := range all {
		all[i] = 1
	}
	f.Add(all)
	alt := make([]byte, nl*nw)
	for i := range alt {
		alt[i] = byte(i % 2)
	}
	f.Add(alt)
	if g, err := Assign(in, UniformCounts(nl, 1), FirstFit, nil); err == nil {
		f.Add(g.Bits())
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		bitsBuf := make([]byte, nl*nw)
		for i := range bitsBuf {
			if i < len(raw) {
				bitsBuf[i] = raw[i] & 1
			}
		}
		g, err := FromBits(bitsBuf, nl, nw)
		if err != nil {
			t.Fatal(err)
		}
		words := in.MaskWords()
		masks := make([]uint64, nl*words)
		g.MaskInto(masks, words)
		counts := g.Counts()
		for e := 0; e < nl; e++ {
			n := 0
			for _, w := range masks[e*words : (e+1)*words] {
				n += bits.OnesCount64(w)
			}
			if n != counts[e] {
				t.Fatalf("edge %d: mask popcount %d, Counts %d", e, n, counts[e])
			}
		}
		checkMaskAgainstReference(t, in, ev, g)
	})
}
