package alloc

import (
	"math/rand"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/energy"
	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/ring"
)

// This file pins the tentpole refactor: routing the evaluation stack
// through the fabric.Fabric interface must be bit-identical to the
// pre-refactor direct ring calls — for the loss model, the full
// kernel, every delta kernel and Explain — and the delta kernels must
// hold their bit-identity contract on the crossbar backend too, whose
// single-lane all-paths-share-a-destination overlap structure stresses
// the affected-set computation differently than the ring.

// ringFabric builds the paper platform and returns it both as the
// concrete ring and as an opaque fabric handle.
func ringFabric(t *testing.T, nw int) (*ring.Ring, fabric.Fabric) {
	t.Helper()
	r, err := ring.New(ring.DefaultConfig(nw))
	if err != nil {
		t.Fatal(err)
	}
	return r, r
}

// randomBank flips a random subset of (oni, channel) micro-rings ON.
func randomBank(rng *rand.Rand, onis, nw int) *fabric.Bank {
	b := fabric.NewBank(onis, nw)
	for i := 0; i < onis*nw/3; i++ {
		b.Set(rng.Intn(onis), rng.Intn(nw), true)
	}
	return b
}

// TestRingFabricLossBitIdentical compares every fabric loss method,
// called through the interface, against the direct ring method on
// random paths, channels and bank states across the comb sizes: the
// interface indirection must not change a single bit.
func TestRingFabricLossBitIdentical(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		r, f := ringFabric(t, nw)
		rng := rand.New(rand.NewSource(int64(nw)))
		for trial := 0; trial < 200; trial++ {
			src, dst := rng.Intn(r.Size()), rng.Intn(r.Size())
			if src == dst {
				continue
			}
			p, err := r.PathBetween(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := f.PathBetween(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if fp.Src != p.Src || fp.Dst != p.Dst || fp.Lane != p.Lane || fp.Hops() != p.Hops() {
				t.Fatalf("NW=%d: fabric path %d->%d differs from ring path", nw, src, dst)
			}
			bank := randomBank(rng, r.Size(), nw)
			ch, detCh := rng.Intn(nw), rng.Intn(nw)
			if got, want := f.TransitLossDB(p, ch, bank), r.TransitLossDB(p, ch, bank); got != want {
				t.Fatalf("NW=%d: TransitLossDB via fabric %v, direct %v", nw, got, want)
			}
			if got, want := f.SignalArrivalDB(p, ch, bank), r.SignalArrivalDB(p, ch, bank); got != want {
				t.Fatalf("NW=%d: SignalArrivalDB via fabric %v, direct %v", nw, got, want)
			}
			gotA, gotErr := f.DetectorArrivalDB(src, dst, ch, detCh, bank)
			wantA, wantErr := r.DetectorArrivalDB(src, dst, ch, detCh, bank)
			if gotA != wantA || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("NW=%d: DetectorArrivalDB via fabric (%v,%v), direct (%v,%v)", nw, gotA, gotErr, wantA, wantErr)
			}
		}
	}
}

// TestRingFabricKernelsAndExplainBitIdentical runs mutation chains
// through two instances of the same ring — one consumed through the
// evaluation stack's fabric handle, one rebuilt independently — and
// checks the full kernel, the gene-delta kernel, the near/crossover
// delta kernels and Explain agree bit for bit at every step.
func TestRingFabricKernelsAndExplainBitIdentical(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		r, f := ringFabric(t, nw)
		app := graph.PaperApp()
		inDirect, err := NewInstance(r, app, graph.PaperMapping(), 1, energy.Default())
		if err != nil {
			t.Fatal(err)
		}
		inFabric, err := NewInstance(f, app, graph.PaperMapping(), 1, energy.Default())
		if err != nil {
			t.Fatal(err)
		}
		if inFabric.Fabric().Name() != "ring" {
			t.Fatalf("fabric name %q", inFabric.Fabric().Name())
		}
		runKernelChain(t, nw, inFabric, inDirect, 300)

		// Explain: identical strings through either instance.
		g, err := Assign(inFabric, UniformCounts(inFabric.Edges(), 1), FirstFit, nil)
		if err != nil {
			t.Fatal(err)
		}
		exF, err := inFabric.Explain(g)
		if err != nil {
			t.Fatal(err)
		}
		exD, err := inDirect.Explain(g)
		if err != nil {
			t.Fatal(err)
		}
		if exF.String() != exD.String() {
			t.Fatalf("NW=%d: Explain differs between fabric-handle and direct instances", nw)
		}
	}
}

// TestCrossbarDeltaKernelsMatchFull holds the delta kernels to their
// bit-identity contract on the crossbar backend: all paths share lane
// 0 and overlap exactly by destination, so the affected-set scan sees
// a conflict graph shape the ring never produces.
func TestCrossbarDeltaKernelsMatchFull(t *testing.T) {
	for _, nw := range []int{4, 8, 16} {
		x, err := crossbar.New(crossbar.DefaultConfig(nw))
		if err != nil {
			t.Fatal(err)
		}
		in, err := NewInstance(x, graph.PaperApp(), graph.PaperMapping(), 1, energy.Default())
		if err != nil {
			t.Fatal(err)
		}
		if in.Fabric().Name() != "crossbar" {
			t.Fatalf("fabric name %q", in.Fabric().Name())
		}
		runKernelChain(t, nw, in, in, 300)
	}
}

// runKernelChain drives a random single-gene mutation chain (with
// occasional crossover-shaped two-parent children) through a
// delta-enabled evaluator on inDelta and a fresh full evaluator on
// inRef, requiring bit-identical evaluations throughout and that the
// delta path actually served a meaningful share.
func runKernelChain(t *testing.T, nw int, inDelta, inRef *Instance, steps int) {
	t.Helper()
	ev, err := NewEvaluator(inDelta)
	if err != nil {
		t.Fatal(err)
	}
	ev.EnableDeltaCache(0)
	ref, err := NewEvaluator(inRef)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(900 + nw)))
	cur, err := Assign(inDelta, UniformCounts(inDelta.Edges(), 1), FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seedOut Eval
	ev.EvaluateInto(&seedOut, cur)
	if !seedOut.Valid {
		t.Fatalf("NW=%d: seed genome invalid: %s", nw, seedOut.Reason())
	}
	lastValid := cur
	deltaCalls := 0
	for step := 0; step < steps; step++ {
		if rng.Intn(3) == 0 {
			cur = lastValid
		}
		child := cur.Clone()
		edge, oldCh, newCh := mutateOneGene(rng, child)
		useCross := rng.Intn(5) == 0
		if useCross {
			// Crossover shape: splice a second edge row from the last
			// valid genome, giving the two-parent near kernel a child
			// that matches neither parent exactly.
			other := (edge + 1) % child.Edges()
			for c := 0; c < child.Channels(); c++ {
				child.Set(other, c, lastValid.Get(other, c))
			}
		}

		var want Eval
		ref.EvaluateInto(&want, child)

		var got Eval
		served := false
		if !useCross {
			if h, ok := ev.DeltaHandle(cur); ok {
				ev.EvaluateDeltaInto(&got, h, edge, oldCh, newCh)
				served, deltaCalls = true, deltaCalls+1
			}
		}
		if !served && ev.EvaluateNearInto(&got, child, cur.Bits(), lastValid.Bits()) {
			served, deltaCalls = true, deltaCalls+1
		}
		if !served {
			ev.EvaluateInto(&got, child)
		}
		requireSameEval(t, "fabric chain", &got, &want)
		cur = child
		if want.Valid {
			lastValid = child
		}
	}
	if deltaCalls < steps/3 {
		t.Fatalf("NW=%d: only %d of %d steps served by delta kernels", nw, deltaCalls, steps)
	}
}
