package alloc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/phys"
	"repro/internal/sched"
)

// Explain produces the full link-budget breakdown of a valid
// chromosome: for every (communication, wavelength) pair, the signal
// arrival power, every first-order crosstalk contributor with its
// origin, the SNR and BER, and the loss-compensating laser power. It
// is the engineering view behind the scalar objectives — what a
// designer would ask the tool to print before signing off an
// allocation (cmd/onocsim -explain renders it).
type Explanation struct {
	// Eval echoes the scalar evaluation the breakdown expands.
	Eval Eval
	// Comms holds one breakdown per loaded communication.
	Comms []CommBudget
}

// CommBudget is the per-communication part of an explanation.
type CommBudget struct {
	// Edge is the communication index; Name its task-graph label.
	Edge int
	Name string
	// SrcCore and DstCore are the mapped fabric endpoints; Hops the
	// path length.
	SrcCore, DstCore, Hops int
	// Window is the activity interval from the schedule.
	Window sched.Window
	// Lambdas holds one budget per reserved wavelength.
	Lambdas []LambdaBudget
}

// LambdaBudget is the per-wavelength link budget.
type LambdaBudget struct {
	// Channel is the comb slot; WavelengthNM its absolute position.
	Channel      int
	WavelengthNM float64
	// SignalDBm is the arrival power at the photodetector for the
	// fixed Pv laser; PathLossDB the corresponding end-to-end loss.
	SignalDBm  phys.DBm
	PathLossDB phys.DB
	// Noise lists every crosstalk contributor at this detector.
	Noise []NoiseTerm
	// NoiseTotalMW aggregates the contributors plus nothing else;
	// the 0-level P0 enters the SNR separately, as in Eq. 8.
	NoiseTotalMW phys.MilliWatt
	// SNR is linear, per Eq. 8; BER per Eq. 9.
	SNR float64
	BER float64
	// LaserMW is the loss-compensating average laser power of the
	// energy model.
	LaserMW phys.MilliWatt
}

// NoiseTerm is one first-order crosstalk contributor.
type NoiseTerm struct {
	// FromEdge and FromName identify the interfering communication
	// (the communication itself for intra-channel terms).
	FromEdge int
	FromName string
	// Channel is the interfering wavelength; Intra marks terms from
	// the victim's own transfer.
	Channel int
	Intra   bool
	// PowerDBm is the leak's arrival power at the victim detector.
	PowerDBm phys.DBm
}

// Explain evaluates the chromosome and expands the full budget. It
// fails on invalid chromosomes — there is no meaningful budget for a
// conflicting allocation.
func (in *Instance) Explain(g Genome) (*Explanation, error) {
	ev := in.Evaluate(g)
	if !ev.Valid {
		return nil, fmt.Errorf("alloc: cannot explain invalid chromosome: %s", ev.Reason())
	}
	sets := make([][]int, in.Edges())
	for e := range sets {
		sets[e] = g.ChannelSet(e)
	}
	par := in.fab.Params()
	pv := par.LaserOnDBm
	p0 := par.LaserOffDBm.MilliWatt()
	grid := in.fab.Grid()

	ex := &Explanation{Eval: ev}
	for e := 0; e < in.Edges(); e++ {
		// Self edges have no link budget: nothing travels the
		// waveguide.
		if in.App.Edges[e].VolumeBits <= 0 || len(sets[e]) == 0 || in.selfEdge[e] {
			continue
		}
		bank := in.bankFor(e, ev.Schedule, sets)
		cb := CommBudget{
			Edge:    e,
			Name:    in.App.Edges[e].Name,
			SrcCore: in.srcCore[e],
			DstCore: in.dstCore[e],
			Hops:    in.paths[e].Hops(),
			Window:  ev.Schedule.Comm[e],
		}
		for _, ch := range sets[e] {
			loss := in.fab.SignalArrivalDB(in.paths[e], ch, bank)
			lb := LambdaBudget{
				Channel:      ch,
				WavelengthNM: grid.WavelengthNM(ch),
				SignalDBm:    pv.Add(loss),
				PathLossDB:   loss,
			}
			addTerm := func(from, channel int, intra bool) {
				arr, err := in.fab.ArrivalAlongDB(in.paths[from], in.dstCore[e], channel, ch, bank)
				if err != nil {
					return
				}
				t := NoiseTerm{
					FromEdge: from,
					FromName: in.App.Edges[from].Name,
					Channel:  channel,
					Intra:    intra,
					PowerDBm: pv.Add(arr),
				}
				lb.Noise = append(lb.Noise, t)
				lb.NoiseTotalMW += t.PowerDBm.MilliWatt()
			}
			for _, other := range sets[e] {
				if other != ch && in.Xtalk.intra() {
					addTerm(e, other, true)
				}
			}
			for o := 0; in.Xtalk.inter() && o < in.Edges(); o++ {
				if o == e || len(sets[o]) == 0 || in.App.Edges[o].VolumeBits <= 0 {
					continue
				}
				if in.paths[o].Lane != in.paths[e].Lane {
					continue
				}
				if !ev.Schedule.Comm[e].Overlaps(ev.Schedule.Comm[o]) || !in.paths[o].Through(in.dstCore[e]) {
					continue
				}
				for _, other := range sets[o] {
					if other != ch {
						addTerm(o, other, false)
					}
				}
			}
			sort.Slice(lb.Noise, func(a, b int) bool {
				return lb.Noise[a].PowerDBm > lb.Noise[b].PowerDBm
			})
			lb.SNR = phys.SNR(lb.SignalDBm.MilliWatt(), lb.NoiseTotalMW, p0)
			lb.BER = phys.BEROOK(lb.SNR)
			lb.LaserMW = in.Energy.WavelengthLaserMW(loss, lb.NoiseTotalMW, p0)
			cb.Lambdas = append(cb.Lambdas, lb)
		}
		ex.Comms = append(ex.Comms, cb)
	}
	return ex, nil
}

// String renders the explanation as the report cmd/onocsim -explain
// prints.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "link budget: %.3f k-cc, %.3f fJ/bit, mean BER %.3e\n",
		ex.Eval.TimeKCC(), ex.Eval.BitEnergyFJ, ex.Eval.MeanBER)
	for _, cb := range ex.Comms {
		fmt.Fprintf(&sb, "\n%s: cores %d->%d (%d hops), window [%.0f,%.0f)\n",
			cb.Name, cb.SrcCore, cb.DstCore, cb.Hops, cb.Window.Start, cb.Window.End)
		for _, lb := range cb.Lambdas {
			fmt.Fprintf(&sb, "  ch %2d (%.2f nm): signal %6.2f dBm (loss %5.2f dB), laser %.3f mW\n",
				lb.Channel, lb.WavelengthNM, float64(lb.SignalDBm), float64(lb.PathLossDB), float64(lb.LaserMW))
			fmt.Fprintf(&sb, "      SNR %7.1f  BER %.3e  noise %.4g uW over %d terms\n",
				lb.SNR, lb.BER, float64(lb.NoiseTotalMW)*1000, len(lb.Noise))
			for i, t := range lb.Noise {
				if i >= 4 {
					fmt.Fprintf(&sb, "      ... %d more terms\n", len(lb.Noise)-i)
					break
				}
				kind := "inter"
				if t.Intra {
					kind = "intra"
				}
				fmt.Fprintf(&sb, "      %-5s ch %2d from %-4s at %6.2f dBm\n",
					kind, t.Channel, t.FromName, float64(t.PowerDBm))
			}
		}
	}
	return sb.String()
}
