package alloc

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
)

// The related-work section of the paper lists the classic static
// wavelength-assignment heuristics for WDM networks (after Zang et
// al.): Random, First-Fit, Most-Used and Least-Used. This file
// implements them on the fabric interface so the GA has baselines to
// beat:
// given a per-communication wavelength count, each heuristic picks
// concrete channels while respecting the same validity rule the GA
// chromosomes are checked against.

// Policy selects the channel-ordering strategy of a heuristic
// assignment.
type Policy int

const (
	// FirstFit prefers the lowest-indexed free channels.
	FirstFit Policy = iota
	// RandomFit picks uniformly among the free channels.
	RandomFit
	// MostUsed prefers channels already used by many other
	// communications (packs wavelengths, maximising reuse).
	MostUsed
	// LeastUsed prefers the least-used channels (spreads load, the
	// crosstalk-friendly choice).
	LeastUsed
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random"
	case MostUsed:
		return "most-used"
	case LeastUsed:
		return "least-used"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Assign builds a genome reserving counts[e] wavelengths for each
// communication following the policy. Communications are processed in
// order of their activity-window start (the schedule is fully
// determined by the counts and the instance's mapping); each pick
// avoids channels that would violate the validity rule against
// already-assigned, time- and path-overlapping communications. Self
// edges of shared-core mappings are skipped — they need no
// wavelengths, whatever their count says. rng is only consulted by
// RandomFit. Returns an error when a communication cannot be served,
// i.e. the counts are infeasible for this policy.
func Assign(in *Instance, counts []int, policy Policy, rng *rand.Rand) (Genome, error) {
	if len(counts) != in.Edges() {
		return Genome{}, fmt.Errorf("alloc: %d counts for %d communications", len(counts), in.Edges())
	}
	if policy == RandomFit && rng == nil {
		return Genome{}, fmt.Errorf("alloc: random assignment needs a rand source")
	}
	p, err := sched.NewPlannerMapped(in.App, in.Map, in.fab.Size())
	if err != nil {
		return Genome{}, err
	}
	s := &sched.Schedule{}
	if err := p.ComputeInto(s, counts, in.BitsPerCycle); err != nil {
		return Genome{}, err
	}
	order := make([]int, in.Edges())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Comm[order[a]].Start < s.Comm[order[b]].Start
	})

	nw := in.Channels()
	g := NewGenome(in.Edges(), nw)
	usage := make([]int, nw) // how many assigned communications use each channel
	assigned := make([]bool, in.Edges())
	for _, e := range order {
		if counts[e] == 0 || in.SelfEdge(e) {
			assigned[e] = true
			continue
		}
		blocked := make([]bool, nw)
		for o := 0; o < in.Edges(); o++ {
			if !assigned[o] || o == e {
				continue
			}
			if !s.Comm[e].Overlaps(s.Comm[o]) || !in.paths[e].Overlaps(in.paths[o]) {
				continue
			}
			for ch := 0; ch < nw; ch++ {
				if g.Get(o, ch) {
					blocked[ch] = true
				}
			}
		}
		free := make([]int, 0, nw)
		for ch := 0; ch < nw; ch++ {
			if !blocked[ch] {
				free = append(free, ch)
			}
		}
		if len(free) < counts[e] {
			return Genome{}, fmt.Errorf("alloc: %s assignment starves communication %s (%d free, %d wanted)",
				policy, in.App.Edges[e].Name, len(free), counts[e])
		}
		orderChannels(free, policy, usage, rng)
		for _, ch := range free[:counts[e]] {
			g.Set(e, ch, true)
			usage[ch]++
		}
		assigned[e] = true
	}
	return g, nil
}

// orderChannels reorders the free channel list in the policy's
// preference order.
func orderChannels(free []int, policy Policy, usage []int, rng *rand.Rand) {
	switch policy {
	case FirstFit:
		sort.Ints(free)
	case RandomFit:
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	case MostUsed:
		sort.SliceStable(free, func(i, j int) bool {
			if usage[free[i]] != usage[free[j]] {
				return usage[free[i]] > usage[free[j]]
			}
			return free[i] < free[j]
		})
	case LeastUsed:
		sort.SliceStable(free, func(i, j int) bool {
			if usage[free[i]] != usage[free[j]] {
				return usage[free[i]] < usage[free[j]]
			}
			return free[i] < free[j]
		})
	}
}

// UniformCounts returns the n-per-communication count vector, the
// natural baseline inputs ([1,1,...] is the paper's most
// energy-efficient allocation).
func UniformCounts(edges, n int) []int {
	counts := make([]int, edges)
	for i := range counts {
		counts[i] = n
	}
	return counts
}

// RandomGenome draws a random chromosome with the given per-gene
// reservation probability — the initial population generator of the
// GA (the paper draws the first generation uniformly at random).
func RandomGenome(rng *rand.Rand, edges, nw int, density float64) Genome {
	g := NewGenome(edges, nw)
	for e := 0; e < edges; e++ {
		for ch := 0; ch < nw; ch++ {
			if rng.Float64() < density {
				g.Set(e, ch, true)
			}
		}
	}
	return g
}
