package alloc

import (
	"math/rand"
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/sched"
)

// sharedChainInstance maps a chain longer than the platform onto the
// 16-core ring with a load-balanced shared mapping.
func sharedChainInstance(t *testing.T, n int, nw int, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	app, err := graph.Chain(rng, n, graph.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.SharedRandomMapping(rng, app, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.New(ring.DefaultConfig(nw))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(r, app, m, 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// blockedChainInstance maps a chain with m[i] = i/3: consecutive
// tasks share cores, guaranteeing self edges.
func blockedChainInstance(t *testing.T, n, nw int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	app, err := graph.Chain(rng, n, graph.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := make(graph.Mapping, n)
	for i := range m {
		m[i] = i / 3
	}
	r, err := ring.New(ring.DefaultConfig(nw))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(r, app, m, 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSharedInstanceConstruction(t *testing.T) {
	in := blockedChainInstance(t, 40, 8)
	selfs := 0
	for e := 0; e < in.Edges(); e++ {
		if in.SelfEdge(e) {
			selfs++
			if in.SrcCore(e) != in.DstCore(e) {
				t.Errorf("edge %d marked self with cores %d->%d", e, in.SrcCore(e), in.DstCore(e))
			}
			if in.Path(e).Hops() != 0 {
				t.Errorf("self edge %d has %d hops, want 0", e, in.Path(e).Hops())
			}
			for j := 0; j < in.Edges(); j++ {
				if in.PathsOverlap(e, j) {
					t.Errorf("self edge %d overlaps edge %d", e, j)
				}
			}
		}
	}
	// Blocks of three consecutive chain tasks share a core: two of
	// every three edges are self edges.
	if want := 26; selfs != want {
		t.Errorf("found %d self edges, want %d", selfs, want)
	}
}

func TestSharedEvaluationSelfEdgesNeedNoWavelengths(t *testing.T) {
	in := blockedChainInstance(t, 40, 8)
	// One wavelength per cross-core communication, none on self edges:
	// the heuristic assigner applies exactly that policy.
	g, err := Assign(in, UniformCounts(in.Edges(), 1), LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < in.Edges(); e++ {
		if in.SelfEdge(e) && len(g.ChannelSet(e)) != 0 {
			t.Errorf("assigner reserved wavelengths on self edge %d", e)
		}
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("allocation invalid: %s", ev.Reason())
	}
	// The makespan must match the core-serialized analytic model.
	p, err := sched.NewPlannerMapped(in.App, in.Map, in.Fabric().Size())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Shared() {
		t.Fatal("40 tasks on 16 cores must share")
	}
	var s sched.Schedule
	if err := p.ComputeInto(&s, ev.Counts, 1); err != nil {
		t.Fatal(err)
	}
	if ev.MakespanCycles != s.MakespanCycles {
		t.Errorf("evaluation makespan %v, serialized model %v", ev.MakespanCycles, s.MakespanCycles)
	}
	if err := s.ValidateCoreSerial(in.App, in.Map); err != nil {
		t.Errorf("core-serial check: %v", err)
	}
	// Self edges carry no optical metrics.
	for e := 0; e < in.Edges(); e++ {
		if in.SelfEdge(e) && (ev.CommBER[e] != 0 || ev.CommEnergyFJ[e] != 0) {
			t.Errorf("self edge %d has BER %v energy %v, want zero", e, ev.CommBER[e], ev.CommEnergyFJ[e])
		}
	}
}

func TestSharedEvaluationReservedSelfWavelengthsAreInert(t *testing.T) {
	in := blockedChainInstance(t, 40, 8)
	base, err := Assign(in, UniformCounts(in.Edges(), 1), LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	evBase := in.Evaluate(base)
	if !evBase.Valid {
		t.Fatalf("base allocation invalid: %s", evBase.Reason())
	}
	// Flip wavelengths on every self edge: the metrics must not move.
	withSelf := base.Clone()
	flipped := false
	for e := 0; e < in.Edges(); e++ {
		if in.SelfEdge(e) {
			withSelf.Set(e, 0, true)
			flipped = true
		}
	}
	if !flipped {
		t.Skip("this draw produced no self edges")
	}
	evSelf := in.Evaluate(withSelf)
	if !evSelf.Valid {
		t.Fatalf("self-reserving allocation invalid: %s", evSelf.Reason())
	}
	if evSelf.MakespanCycles != evBase.MakespanCycles ||
		evSelf.BitEnergyFJ != evBase.BitEnergyFJ ||
		evSelf.MeanBER != evBase.MeanBER {
		t.Errorf("self-edge reservations changed metrics: (%v,%v,%v) vs (%v,%v,%v)",
			evSelf.MakespanCycles, evSelf.BitEnergyFJ, evSelf.MeanBER,
			evBase.MakespanCycles, evBase.BitEnergyFJ, evBase.MeanBER)
	}
}

func TestSharedEvaluatorZeroAlloc(t *testing.T) {
	in := sharedChainInstance(t, 40, 8, 5)
	ev, err := NewEvaluator(in)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Assign(in, UniformCounts(in.Edges(), 1), LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Eval
	ev.EvaluateInto(&out, g)
	if !out.Valid {
		t.Fatalf("allocation invalid: %s", out.Reason())
	}
	allocs := testing.AllocsPerRun(100, func() {
		ev.EvaluateInto(&out, g)
	})
	if allocs != 0 {
		t.Errorf("shared-core EvaluateInto allocates %v objects per run, want 0", allocs)
	}
}

func TestInjectiveInstanceRejectsNothingNew(t *testing.T) {
	// The relaxed mapping validation must not have loosened the
	// bounds checks NewInstance relies on.
	r, err := ring.New(ring.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	app := graph.PaperApp()
	if _, err := NewInstance(r, app, graph.Mapping{0, 1, 2, 3, 4, 16}, 1, energy.Default()); err == nil {
		t.Error("out-of-range core must be rejected")
	}
	if _, err := NewInstance(r, app, graph.Mapping{0, 1}, 1, energy.Default()); err == nil {
		t.Error("short mapping must be rejected")
	}
	// A shared mapping of the paper app is now accepted.
	if _, err := NewInstance(r, app, graph.Mapping{0, 0, 1, 1, 2, 2}, 1, energy.Default()); err != nil {
		t.Errorf("shared mapping rejected: %v", err)
	}
}
