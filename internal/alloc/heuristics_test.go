package alloc

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestUniformCounts(t *testing.T) {
	if got := UniformCounts(4, 2); !reflect.DeepEqual(got, []int{2, 2, 2, 2}) {
		t.Errorf("UniformCounts = %v", got)
	}
}

func TestAssignPoliciesProduceValidGenomes(t *testing.T) {
	in := mustInstance(t, 8)
	rng := rand.New(rand.NewSource(1))
	for _, pol := range []Policy{FirstFit, RandomFit, MostUsed, LeastUsed} {
		for _, n := range []int{1, 2} {
			g, err := Assign(in, UniformCounts(in.Edges(), n), pol, rng)
			if err != nil {
				t.Fatalf("%v with %d wavelengths: %v", pol, n, err)
			}
			ev := in.Evaluate(g)
			if !ev.Valid {
				t.Fatalf("%v produced invalid genome: %s", pol, ev.Reason())
			}
			for e, c := range ev.Counts {
				if c != n {
					t.Fatalf("%v gave edge %d %d wavelengths, want %d", pol, e, c, n)
				}
			}
		}
	}
}

func TestAssignMixedCounts(t *testing.T) {
	in := mustInstance(t, 12)
	counts := []int{1, 4, 2, 3, 2, 3}
	for _, pol := range []Policy{FirstFit, LeastUsed, MostUsed} {
		g, err := Assign(in, counts, pol, nil)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		ev := in.Evaluate(g)
		if !ev.Valid {
			t.Fatalf("%v invalid: %s", pol, ev.Reason())
		}
		if !reflect.DeepEqual(ev.Counts, counts) {
			t.Fatalf("%v counts = %v, want %v", pol, ev.Counts, counts)
		}
	}
}

func TestAssignLeastUsedSpreadsMoreThanFirstFit(t *testing.T) {
	// First-fit concentrates everything on the low channels;
	// least-used spreads. With enough headroom the least-used
	// assignment must touch more distinct channels.
	in := mustInstance(t, 12)
	counts := UniformCounts(in.Edges(), 2)
	ff, err := Assign(in, counts, FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Assign(in, counts, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(g Genome) int {
		used := map[int]bool{}
		for e := 0; e < g.Edges(); e++ {
			for _, ch := range g.ChannelSet(e) {
				used[ch] = true
			}
		}
		return len(used)
	}
	if distinct(lu) <= distinct(ff) {
		t.Errorf("least-used touched %d channels, first-fit %d; want strictly more",
			distinct(lu), distinct(ff))
	}
}

func TestAssignRandomNeedsRNG(t *testing.T) {
	in := mustInstance(t, 8)
	if _, err := Assign(in, UniformCounts(in.Edges(), 1), RandomFit, nil); err == nil {
		t.Error("random policy without rng must fail")
	}
}

func TestAssignRandomDeterministicPerSeed(t *testing.T) {
	in := mustInstance(t, 8)
	a, err := Assign(in, UniformCounts(in.Edges(), 2), RandomFit, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assign(in, UniformCounts(in.Edges(), 2), RandomFit, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Error("same seed must reproduce the assignment")
	}
}

func TestAssignInfeasibleCounts(t *testing.T) {
	// On a 4-channel comb, demanding 4 channels for overlapping
	// communications starves someone.
	in := mustInstance(t, 4)
	if _, err := Assign(in, UniformCounts(in.Edges(), 4), FirstFit, nil); err == nil {
		t.Error("overcommitted counts must fail")
	}
	if _, err := Assign(in, []int{1}, FirstFit, nil); err == nil {
		t.Error("wrong count length must fail")
	}
	if _, err := Assign(in, []int{0, 1, 1, 1, 1, 1}, FirstFit, nil); err == nil {
		t.Error("zero wavelengths on a loaded edge must fail in the scheduler")
	}
}

func TestAssignFirstFitMatchesPaperChromosomeShape(t *testing.T) {
	// With NW = 4 and one wavelength per communication, first-fit
	// tracks the validity structure the paper's example chromosome
	// illustrates: overlapping communications land on different
	// channels, sequential ones reuse channel 0.
	in := mustInstance(t, 4)
	g, err := Assign(in, UniformCounts(in.Edges(), 1), FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("first-fit genome invalid: %s", ev.Reason())
	}
	// c0 (window [5,11), path 0->15) and c1 (window [5,13), path
	// 1->5) overlap in both; they must differ.
	if reflect.DeepEqual(g.ChannelSet(0), g.ChannelSet(1)) {
		t.Error("overlapping c0/c1 must use different channels")
	}
}

func TestRandomGenomeDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomGenome(rng, 50, 8, 0.25)
	onBits := 0
	for e := 0; e < g.Edges(); e++ {
		onBits += len(g.ChannelSet(e))
	}
	frac := float64(onBits) / float64(g.Len())
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("density = %v, want near 0.25", frac)
	}
}

func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[Policy]string{
		FirstFit: "first-fit", RandomFit: "random", MostUsed: "most-used", LeastUsed: "least-used",
	} {
		if pol.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(pol), pol.String(), want)
		}
	}
}
