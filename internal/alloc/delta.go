package alloc

import (
	"fmt"
	"hash/maphash"
	"math"
	"math/bits"

	"repro/internal/sched"
)

// This file implements the delta-aware evaluation path: an evaluator
// with EnableDeltaCache retains the decoded state and per-edge optics
// results of recently evaluated VALID genomes, and re-evaluates a
// genome that differs from a retained parent in a few edge rows by
//
//  1. editing the parent's mask rows instead of decoding the child
//     genome gene by gene,
//  2. recomputing the analytic schedule (cheap) and re-grading the
//     wavelength-conflict rule over only the mutated edges'
//     conflict-neighbor CSR rows when the activity windows did not
//     move (a valid parent has no conflicts anywhere, so new
//     conflicts can only involve a mutated row), falling back to the
//     full CSR scan when they did,
//  3. recomputing the optics walk for only the AFFECTED edges — the
//     mutated ones plus every edge whose receiver-bank view or
//     crosstalk-contributor set can see a mutated row or a moved
//     window — and replaying the parent's recorded per-channel BERs
//     and per-edge energies, in the full kernel's exact stream order,
//     for the rest.
//
// The replay keeps the result bit-identical to EvaluateInto: an
// unaffected edge's optics are a pure function of inputs that did not
// change, and the cross-edge aggregation (BER sum, worst BER, total
// energy) consumes the identical values in the identical order.
// Property tests (TestDeltaKernelMatchesFull, FuzzEvaluateDelta) pin
// the equivalence across comb sizes.
//
// Handle lifetime vs the scratch-aliasing contract: a Handle borrows
// an entry of the evaluator's bounded parent store. Entries are only
// invalidated by the store's wholesale reset (when it reaches
// capacity), never by Evaluate*Into calls — the store copies state
// out of the scratch, it does not alias it — so the idiomatic
// lookup-then-evaluate sequence is always safe on a single evaluator.
// A stale Handle (kept across enough insertions to trigger a reset)
// fails loudly. Like the rest of the evaluator, none of this is safe
// for concurrent use.

// Handle references one retained parent evaluation inside an
// evaluator's delta cache. The zero Handle is invalid. Handles are
// evaluator-specific and must not be used across evaluators.
type Handle struct {
	idx int32
	gen uint32
	ok  bool
}

// Valid reports whether the handle references an entry (it may still
// have gone stale if the store reset since the lookup).
func (h Handle) Valid() bool { return h.ok }

// deltaEntry is one retained valid evaluation: the decoded mask rows,
// per-edge wavelength counts, activity windows, and the optics
// results the replay path consumes.
type deltaEntry struct {
	hash    uint64
	key     []byte
	masks   []uint64
	counts  []int32
	windows []sched.Window
	setOff  []int32
	bers    []float64
	commBER []float64
	commFJ  []float64
}

// deltaState is the bounded parent store plus the delta-path scratch.
type deltaState struct {
	seed    maphash.Seed
	slots   int
	gen     uint32
	table   []int32 // 1-based indices into entries, 0 = empty
	mask    uint64
	entries []deltaEntry

	// Per-evaluation scratch of the delta path. auxEq and fromAux
	// belong to the two-parent crossover replay: auxEq marks child
	// rows bit-equal to the aux parent's, fromAux the edges whose
	// optics are replayed from the aux parent's recorded results.
	changed     []int
	changedMark []bool
	wchanged    []bool
	wchangedLst []int
	affected    []bool
	auxEq       []bool
	fromAux     []bool
	keyBuf      []byte
}

// DefaultDeltaCacheBudget is the approximate memory budget (in bytes)
// EnableDeltaCache(0) sizes the parent store for.
const DefaultDeltaCacheBudget = 32 << 20

// EnableDeltaCache switches the evaluator into delta-aware mode:
// every valid evaluation is registered in a bounded parent store, and
// EvaluateNearInto / EvaluateDeltaInto can re-evaluate nearby genomes
// incrementally. slots bounds the number of retained parents; slots
// <= 0 picks a default sized so the store stays within
// DefaultDeltaCacheBudget for this instance's geometry. When the
// store fills up it is reset wholesale (entry slices are recycled),
// so retention is approximately "the most recent slots distinct valid
// genomes". Results are bit-identical with the cache on or off; only
// the evaluation cost changes.
func (e *Evaluator) EnableDeltaCache(slots int) {
	if slots <= 0 {
		nl, nw := e.in.Edges(), e.in.Channels()
		// Rough per-entry footprint: interned key + mask rows + counts
		// + windows + offsets + optics vectors.
		approx := nl*nw + nl*e.in.maskWords*8 + nl*44 + nl*nw*8
		slots = DefaultDeltaCacheBudget / approx
		if slots > 4096 {
			slots = 4096
		}
		if slots < 64 {
			slots = 64
		}
	}
	tableLen := 1
	for tableLen < 2*slots {
		tableLen *= 2
	}
	nl := e.in.Edges()
	e.delta = &deltaState{
		seed:        maphash.MakeSeed(),
		slots:       slots,
		table:       make([]int32, tableLen),
		mask:        uint64(tableLen - 1),
		entries:     make([]deltaEntry, 0, slots),
		changed:     make([]int, 0, nl),
		changedMark: make([]bool, nl),
		wchanged:    make([]bool, nl),
		wchangedLst: make([]int, 0, nl),
		affected:    make([]bool, nl),
		auxEq:       make([]bool, nl),
		fromAux:     make([]bool, nl),
		keyBuf:      make([]byte, nl*e.in.Channels()),
	}
}

// DeltaCacheEnabled reports whether EnableDeltaCache was called.
func (e *Evaluator) DeltaCacheEnabled() bool { return e.delta != nil }

// lookup returns the entry index of key, or false. Allocation-free.
func (d *deltaState) lookup(key []byte) (int, bool) {
	h := maphash.Bytes(d.seed, key)
	for slot := h & d.mask; ; slot = (slot + 1) & d.mask {
		t := d.table[slot]
		if t == 0 {
			return 0, false
		}
		ent := &d.entries[t-1]
		if ent.hash == h && string(ent.key) == string(key) {
			return int(t - 1), true
		}
	}
}

// entryFor returns the (new or refreshed) entry for key, resetting
// the store first when it is full. Refreshing an existing key and
// inserting into a warm slot are allocation-free.
func (d *deltaState) entryFor(key []byte) *deltaEntry {
	if idx, ok := d.lookup(key); ok {
		return &d.entries[idx]
	}
	if len(d.entries) >= d.slots {
		d.gen++
		for i := range d.table {
			d.table[i] = 0
		}
		d.entries = d.entries[:0]
	}
	idx := len(d.entries)
	if idx < cap(d.entries) {
		d.entries = d.entries[:idx+1]
	} else {
		d.entries = append(d.entries, deltaEntry{})
	}
	ent := &d.entries[idx]
	ent.hash = maphash.Bytes(d.seed, key)
	ent.key = append(ent.key[:0], key...)
	for slot := ent.hash & d.mask; ; slot = (slot + 1) & d.mask {
		if d.table[slot] == 0 {
			d.table[slot] = int32(idx + 1)
			break
		}
	}
	return ent
}

// capture registers the evaluator's current (valid) evaluation state
// under key. No-op when the delta cache is disabled or key is nil.
func (e *Evaluator) capture(key []byte) {
	if e.delta == nil || key == nil {
		return
	}
	in := e.in
	nl, W := in.Edges(), in.maskWords
	ent := e.delta.entryFor(key)
	ent.masks = append(ent.masks[:0], e.masks[:nl*W]...)
	ent.counts = ent.counts[:0]
	for _, c := range e.counts {
		ent.counts = append(ent.counts, int32(c))
	}
	ent.windows = append(ent.windows[:0], e.sched.Comm...)
	ent.setOff = append(ent.setOff[:0], e.setOff...)
	ent.bers = append(ent.bers[:0], e.berBuf[:e.setOff[nl]]...)
	ent.commBER = append(ent.commBER[:0], e.commBER...)
	ent.commFJ = append(ent.commFJ[:0], e.commFJ...)
}

// DeltaHandle looks up a retained parent evaluation for g. ok is
// false when the genome shape mismatches, the delta cache is
// disabled, or g was not evaluated valid recently enough to still be
// retained.
func (e *Evaluator) DeltaHandle(g Genome) (Handle, bool) {
	if g.Edges() != e.in.Edges() || g.Channels() != e.in.Channels() {
		return Handle{}, false
	}
	return e.deltaHandleBytes(g.bits)
}

func (e *Evaluator) deltaHandleBytes(key []byte) (Handle, bool) {
	if e.delta == nil || len(key) != e.in.Edges()*e.in.Channels() {
		return Handle{}, false
	}
	idx, ok := e.delta.lookup(key)
	if !ok {
		return Handle{}, false
	}
	return Handle{idx: int32(idx), gen: e.delta.gen, ok: true}, true
}

// resolve returns the entry a handle references, failing loudly on
// stale or invalid handles (the store reset since the lookup).
func (d *deltaState) resolve(h Handle) *deltaEntry {
	if !h.ok || h.gen != d.gen || int(h.idx) >= len(d.entries) {
		panic("alloc: stale or invalid delta Handle (the parent store reset since the lookup)")
	}
	return &d.entries[h.idx]
}

// EvaluateDeltaInto evaluates the child chromosome obtained from the
// retained parent by editing one edge's wavelength row — releasing
// channel oldCh (pass -1 for none) and reserving channel newCh (pass
// -1 for none) — into out, bit-identically to a full EvaluateInto of
// that child but rescanning only what the edit can affect. The
// paper's single-gene mutation is the (oldCh == -1) or (newCh == -1)
// case; both set is a channel swap, which keeps the schedule and
// re-grades only the mutated edge's conflict-neighbor CSR row.
//
// The evaluator must have the delta cache enabled and parent must be
// a live Handle from DeltaHandle; misuse (stale handle, out-of-range
// edge or channels, releasing an unreserved channel, reserving a
// reserved one) panics. Out aliases evaluator scratch exactly like
// EvaluateInto's result.
func (e *Evaluator) EvaluateDeltaInto(out *Eval, parent Handle, edge, oldCh, newCh int) {
	if e.delta == nil {
		panic("alloc: EvaluateDeltaInto without EnableDeltaCache")
	}
	in := e.in
	nl, nw, W := in.Edges(), in.Channels(), in.maskWords
	ent := e.delta.resolve(parent)
	if edge < 0 || edge >= nl {
		panic(fmt.Sprintf("alloc: delta edge %d outside [0,%d)", edge, nl))
	}
	if oldCh < -1 || oldCh >= nw || newCh < -1 || newCh >= nw {
		panic(fmt.Sprintf("alloc: delta channels (%d,%d) outside [-1,%d)", oldCh, newCh, nw))
	}
	row := ent.masks[edge*W : (edge+1)*W]
	if oldCh >= 0 && row[oldCh>>6]&(1<<(uint(oldCh)&63)) == 0 {
		panic(fmt.Sprintf("alloc: delta releases channel %d edge %d, which the parent does not reserve", oldCh, edge))
	}
	if newCh >= 0 && newCh != oldCh && row[newCh>>6]&(1<<(uint(newCh)&63)) != 0 {
		panic(fmt.Sprintf("alloc: delta reserves channel %d edge %d, which the parent already reserves", newCh, edge))
	}
	copy(e.masks, ent.masks)
	crow := e.masks[edge*W : (edge+1)*W]
	if oldCh >= 0 {
		crow[oldCh>>6] &^= 1 << (uint(oldCh) & 63)
	}
	if newCh >= 0 {
		crow[newCh>>6] |= 1 << (uint(newCh) & 63)
	}
	d := e.delta
	d.changed = append(d.changed[:0], edge)
	d.keyBuf = append(d.keyBuf[:0], ent.key...)
	if oldCh >= 0 {
		d.keyBuf[edge*nw+oldCh] = 0
	}
	if newCh >= 0 {
		d.keyBuf[edge*nw+newCh] = 1
	}
	e.lastPath = EvalPathGeneDelta
	e.evaluateDelta(out, ent, nil, d.keyBuf)
}

// EvaluateNearInto evaluates g like EvaluateInto, but first tries the
// delta path against the candidate parent genomes (typically the
// offspring's mating parents). The closest retained parent becomes
// the BASE: the schedule is recomputed and conflicts are re-graded
// over the rows differing from it. When a second distinct parent is
// also retained (the crossover case), it becomes the AUX parent:
// child rows inherited intact from the aux parent replay the aux
// evaluation's recorded optics instead of recomputing, provided the
// row's optics inputs (duration bits, overlap relations, overlapping
// contributors' rows) are bit-identical to the aux evaluation's. The
// delta path is taken when the rows covered by neither parent are few
// enough; with a single parent this degenerates to the original
// closest-parent rule. The result is bit-identical either way; the
// return value reports whether the delta path was taken (for tests
// and benchmarks). nil or wrong-length parents are ignored.
func (e *Evaluator) EvaluateNearInto(out *Eval, g Genome, parents ...[]byte) bool {
	in := e.in
	if g.Edges() != in.Edges() || g.Channels() != in.Channels() {
		e.lastPath = EvalPathFull
		*out = invalid(fmt.Sprintf("genome shape %dx%d does not match instance %dx%d",
			g.Edges(), g.Channels(), in.Edges(), in.Channels()), 1)
		return false
	}
	nl, W := in.Edges(), in.maskWords
	g.MaskInto(e.masks, W)
	if e.delta != nil {
		maxRows := nl / 2
		if maxRows < 2 {
			maxRows = 2
		}
		var base, aux *deltaEntry
		baseDiff := 0
		for _, p := range parents {
			if len(p) != nl*in.Channels() {
				continue
			}
			idx, ok := e.delta.lookup(p)
			if !ok {
				continue
			}
			ent := &e.delta.entries[idx]
			if ent == base || ent == aux {
				continue // identical parents share an interned entry
			}
			diff := 0
			for ei := 0; ei < nl; ei++ {
				for w := ei * W; w < (ei+1)*W; w++ {
					if e.masks[w] != ent.masks[w] {
						diff++
						break
					}
				}
			}
			switch {
			case base == nil:
				base, baseDiff = ent, diff
			case diff < baseDiff:
				base, aux, baseDiff = ent, base, diff
			case aux == nil:
				aux = ent
			}
		}
		if base != nil {
			d := e.delta
			d.changed = d.changed[:0]
			uncovered := 0
			for ei := 0; ei < nl; ei++ {
				rowChanged := false
				for w := ei * W; w < (ei+1)*W; w++ {
					if e.masks[w] != base.masks[w] {
						rowChanged = true
						break
					}
				}
				eqAux := aux != nil
				if eqAux {
					for w := ei * W; w < (ei+1)*W; w++ {
						if e.masks[w] != aux.masks[w] {
							eqAux = false
							break
						}
					}
				}
				d.auxEq[ei] = eqAux
				if rowChanged {
					d.changed = append(d.changed, ei)
					if !eqAux {
						uncovered++
					}
				}
			}
			if uncovered <= maxRows {
				if aux != nil {
					e.lastPath = EvalPathCrossDelta
				} else {
					e.lastPath = EvalPathNearDelta
				}
				e.evaluateDelta(out, base, aux, g.bits)
				return true
			}
		}
	}
	e.evaluateDecoded(out, g.bits)
	return false
}

// evaluateDelta runs the delta kernel: e.masks holds the child's mask
// rows, ent the retained (valid) BASE parent, e.delta.changed the
// edges whose rows differ from it. aux, when non-nil, is a second
// retained parent (the crossover mate) whose recorded optics are
// replayed for changed rows the child inherited from it intact
// (d.auxEq, filled by EvaluateNearInto) whenever auxReplayable proves
// the row's optics inputs bit-identical to the aux evaluation's. key
// is the child's gene slice for registration.
func (e *Evaluator) evaluateDelta(out *Eval, ent, aux *deltaEntry, key []byte) {
	in := e.in
	nl := in.Edges()
	d := e.delta
	for i := range d.changedMark {
		d.changedMark[i] = false
	}
	for _, ei := range d.changed {
		d.changedMark[ei] = true
	}

	// Decode sets/counts/effective counts and grade missing
	// reservations from the mask rows — identical to the full kernel's
	// decode, minus the gene-by-gene genome scan.
	violation, reason := e.decodeMasks()
	if err := e.planner.ComputeInto(&e.sched, e.eff, in.BitsPerCycle); err != nil {
		*out = invalid(err.Error(), violation+1)
		return
	}
	s := &e.sched

	// Window movement: the schedule is a pure function of the
	// effective counts, so windows move iff a mutated edge's count
	// changed (0 <-> 1 transitions keep the clamped effective count
	// and the channel-swap case keeps the count entirely).
	d.wchangedLst = d.wchangedLst[:0]
	for o := 0; o < nl; o++ {
		w := s.Comm[o]
		pw := ent.windows[o]
		moved := w.Start != pw.Start || w.End != pw.End
		d.wchanged[o] = moved
		if moved && in.App.Edges[o].VolumeBits > 0 && !in.selfEdge[o] {
			d.wchangedLst = append(d.wchangedLst, o)
		}
	}

	if len(d.wchangedLst) == 0 {
		// Windows identical: the valid parent had no conflicts on any
		// pair, so conflicts can only involve a mutated row — re-grade
		// just those CSR rows, tracking the first conflict in the full
		// scan's (i, j, word) order for the failure reason.
		violation, reason = e.gradeConflictsChanged(s, violation, reason)
	} else {
		// Windows moved: any pair's overlap status may have flipped —
		// fall back to the full conflict scan.
		violation, reason = e.gradeConflicts(s, violation, reason)
	}
	if violation > 0 {
		*out = invalidEval(reason, violation)
		return
	}

	// Affected edges: a mutated row, a row that can see a mutated row
	// in its receiver bank or crosstalk-contributor set (same lane
	// and overlapping windows, before or after
	// the edit), or a row whose overlap relation with any loaded edge
	// flipped when windows moved. Everything else has bit-identical
	// optics inputs and replays the parent's recorded results.
	for o := 0; o < nl; o++ {
		d.fromAux[o] = false
		if aux != nil && d.changedMark[o] && d.auxEq[o] && e.auxReplayable(o, aux, s) {
			// The row differs from the base but was inherited intact
			// from the aux parent, and every optics input matches the
			// aux evaluation bit-for-bit: replay aux instead of
			// recomputing.
			d.fromAux[o] = true
			d.affected[o] = false
			continue
		}
		aff := d.changedMark[o]
		laneO := in.paths[o].Lane
		if !aff && d.wchanged[o] {
			// A shifted window keeps its overlap relations more often
			// than not, but its Duration() — an input of the laser
			// energy — is a float subtraction whose result can change
			// in the last ulp even under a pure shift. Replay is only
			// sound when the duration bits are unchanged.
			w, pw := s.Comm[o], ent.windows[o]
			if math.Float64bits(w.End-w.Start) != math.Float64bits(pw.End-pw.Start) {
				aff = true
			}
		}
		if !aff {
			for _, E := range d.changed {
				if in.App.Edges[E].VolumeBits <= 0 || in.selfEdge[E] || in.paths[E].Lane != laneO {
					continue
				}
				if ent.windows[o].Overlaps(ent.windows[E]) || s.Comm[o].Overlaps(s.Comm[E]) {
					aff = true
					break
				}
			}
		}
		if !aff && d.wchanged[o] {
			for q := 0; q < nl; q++ {
				if q == o || in.App.Edges[q].VolumeBits <= 0 || in.selfEdge[q] || in.paths[q].Lane != laneO {
					continue
				}
				if ent.windows[o].Overlaps(ent.windows[q]) != s.Comm[o].Overlaps(s.Comm[q]) {
					aff = true
					break
				}
			}
		} else if !aff {
			for _, q := range d.wchangedLst {
				if q == o || in.paths[q].Lane != laneO {
					continue
				}
				if ent.windows[o].Overlaps(ent.windows[q]) != s.Comm[o].Overlaps(s.Comm[q]) {
					aff = true
					break
				}
			}
		}
		d.affected[o] = aff
	}

	*out = Eval{
		Valid:          true,
		Counts:         e.counts,
		CommBER:        e.commBER,
		CommEnergyFJ:   e.commFJ,
		Schedule:       s,
		MakespanCycles: s.MakespanCycles,
	}
	var acc opticsAccum
	for ei := 0; ei < nl; ei++ {
		if in.App.Edges[ei].VolumeBits <= 0 || e.counts[ei] == 0 || in.selfEdge[ei] {
			continue
		}
		if d.affected[ei] {
			e.opticsEdge(out, ei, s, &acc)
			continue
		}
		// Replay: identical inputs would produce identical per-channel
		// BERs and energies, so feed the recorded values — the aux
		// parent's for rows inherited from it, the base parent's for
		// the rest — into the same accumulation stream the full kernel
		// runs.
		src := ent
		if d.fromAux[ei] {
			src = aux
		}
		off := int(e.setOff[ei])
		poff := int(src.setOff[ei])
		n := int(e.setOff[ei+1]) - off
		for k := 0; k < n; k++ {
			ber := src.bers[poff+k]
			e.berBuf[off+k] = ber
			acc.berSum += ber
			acc.berN++
			if ber > out.WorstBER {
				out.WorstBER = ber
			}
		}
		e.commBER[ei] = src.commBER[ei]
		e.commFJ[ei] = src.commFJ[ei]
		acc.totalFJ += e.commFJ[ei]
		acc.totalBits += in.App.Edges[ei].VolumeBits
	}
	if acc.berN > 0 {
		out.MeanBER = acc.berSum / float64(acc.berN)
	}
	if acc.totalBits > 0 {
		out.BitEnergyFJ = acc.totalFJ / acc.totalBits
	}
	e.capture(key)
}

// auxReplayable reports whether changed edge o's optics under the
// child's schedule s are a bit-identical replay of the aux parent's
// evaluation. It requires (the caller already established the child's
// row o equals aux's row o):
//
//   - o's activity-window duration bits match aux's (the laser-energy
//     input, a float subtraction sensitive in the last ulp), and
//   - for every other statically loaded same-lane edge q, the
//     o/q window-overlap relation matches the aux evaluation's, and
//     every overlapping q's row equals aux's row q.
//
// Those inputs determine everything o's optics consume: the receiver
// bank is the OR of overlapping same-lane rows (a zero row ORs
// as a no-op, so counts need no separate check), the inter-crosstalk
// contributors are a subset of the same overlapping set, and the
// intra walk uses only o's own row.
func (e *Evaluator) auxReplayable(o int, aux *deltaEntry, s *sched.Schedule) bool {
	in := e.in
	d := e.delta
	w, aw := s.Comm[o], aux.windows[o]
	if math.Float64bits(w.End-w.Start) != math.Float64bits(aw.End-aw.Start) {
		return false
	}
	laneO := in.paths[o].Lane
	nl := in.Edges()
	for q := 0; q < nl; q++ {
		if q == o || in.App.Edges[q].VolumeBits <= 0 || in.selfEdge[q] || in.paths[q].Lane != laneO {
			continue
		}
		ov := w.Overlaps(s.Comm[q])
		if ov != aw.Overlaps(aux.windows[q]) {
			return false
		}
		if ov && !d.auxEq[q] {
			return false
		}
	}
	return true
}

// gradeConflictsChanged re-grades the wavelength-disjointness rule
// over only the pairs that involve a mutated edge, assuming every
// other pair is conflict-free (true when the parent is valid and no
// window moved). The violation total and the first-failure reason are
// identical to the full scan's: integer conflict counts sum exactly
// in any order, and the first conflict of the full (i, j)-ascending
// scan is the lexicographically smallest conflicting pair.
func (e *Evaluator) gradeConflictsChanged(s *sched.Schedule, violation float64, reason failureReason) (float64, failureReason) {
	in := e.in
	W := in.maskWords
	d := e.delta
	bestI, bestJ := -1, -1
	for _, E := range d.changed {
		for _, jj := range in.AllConflictNeighbors(E) {
			o := int(jj)
			if d.changedMark[o] && o < E {
				continue // pair handled from o's side
			}
			i, j := E, o
			if o < E {
				i, j = o, E
			}
			if !s.Comm[i].Overlaps(s.Comm[j]) {
				continue
			}
			wi := e.masks[i*W : (i+1)*W]
			wj := e.masks[j*W : (j+1)*W]
			shared := 0
			for w := range wi {
				shared += bits.OnesCount64(wi[w] & wj[w])
			}
			if shared > 0 {
				violation += float64(shared)
				if bestI == -1 || i < bestI || (i == bestI && j < bestJ) {
					bestI, bestJ = i, j
				}
			}
		}
	}
	if bestI >= 0 && reason.kind == reasonNone {
		wi := e.masks[bestI*W : (bestI+1)*W]
		wj := e.masks[bestJ*W : (bestJ+1)*W]
		first := -1
		for w := range wi {
			if x := wi[w] & wj[w]; x != 0 {
				first = w*64 + bits.TrailingZeros64(x)
				break
			}
		}
		reason = failureReason{kind: reasonSharedWavelength, in: in, edge: bestI, other: bestJ, channel: first}
	}
	return violation, reason
}
