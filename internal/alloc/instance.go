package alloc

import (
	"fmt"
	"sync"

	"repro/internal/energy"
	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/ring"
)

// CrosstalkMode selects which first-order crosstalk sources the
// evaluation accounts. The paper's introduction distinguishes the two:
// intra-communication crosstalk ("undesirable coupling between
// different wavelengths used for the same transmission... will always
// be there until the communication finishes") and inter-communication
// crosstalk ("two different transmissions share the same waveguide
// simultaneously"). The ablation modes quantify each contribution.
type CrosstalkMode int

const (
	// XtalkBoth is the physical model (default).
	XtalkBoth CrosstalkMode = iota
	// XtalkIntraOnly keeps only same-transmission coupling.
	XtalkIntraOnly
	// XtalkInterOnly keeps only cross-transmission coupling.
	XtalkInterOnly
	// XtalkNone disables crosstalk: the BER floor set by the laser's
	// 0-level residue alone.
	XtalkNone
)

// String names the mode for reports.
func (m CrosstalkMode) String() string {
	switch m {
	case XtalkBoth:
		return "intra+inter"
	case XtalkIntraOnly:
		return "intra-only"
	case XtalkInterOnly:
		return "inter-only"
	case XtalkNone:
		return "none"
	}
	return fmt.Sprintf("xtalk(%d)", int(m))
}

func (m CrosstalkMode) intra() bool { return m == XtalkBoth || m == XtalkIntraOnly }
func (m CrosstalkMode) inter() bool { return m == XtalkBoth || m == XtalkInterOnly }

// Instance binds one wavelength-allocation problem: an application
// task graph mapped onto an optical fabric backend (the ring ONoC,
// the multi-layer crossbar, ...), with the data rate and energy
// calibration. It precomputes the per-communication fabric paths so
// the GA's evaluation loop does no repeated path construction.
//
// The mapping may be shared-core (several tasks per core): the
// evaluation then runs the core-serialized time model, and edges
// between same-core tasks become zero-cost self edges outside the
// optical layer. Injective mappings (the paper's Definition 3)
// evaluate bit-identically to the original model.
type Instance struct {
	fab fabric.Fabric
	App *graph.TaskGraph
	Map graph.Mapping
	// BitsPerCycle is B of Eq. 10 (1 in all paper experiments).
	BitsPerCycle float64
	// Energy is the bit-energy calibration.
	Energy energy.Model
	// Xtalk selects the crosstalk sources accounted by Evaluate and
	// Explain; the zero value is the full physical model.
	Xtalk CrosstalkMode

	paths    []fabric.Path // per edge: src core -> dst core route
	srcCore  []int         // per edge
	dstCore  []int         // per edge
	selfEdge []bool        // per edge: endpoints mapped onto the same core
	// pathOverlap[i*Nl+j] caches paths[i].Overlaps(paths[j]) — the
	// pair relation is fixed at instance construction and sits on the
	// validity check of every evaluation.
	pathOverlap []bool
	// maskWords is the stride of one edge's wavelength bitmask row
	// (fabric.MaskWords of the comb size).
	maskWords int
	// confStart/confAdj hold the overlap matrix as a CSR adjacency
	// over edge pairs: confAdj[confStart[i]:confStart[i+1]] lists, in
	// ascending order, the edges j > i whose fabric paths share a
	// waveguide resource with edge i's — the only pairs the wavelength
	// disjointness rule can reject. The conflict kernel walks this
	// sparse list instead of the Nl x Nl matrix, so a validity check
	// costs O(actually-overlapping pairs). Both slices are immutable
	// after construction and shared read-only by every evaluator (and,
	// through core.Config.Instance, by every campaign replicate).
	confStart []int32
	confAdj   []int32
	// confSymStart/confSymAdj hold the same overlap relation as a
	// symmetric CSR adjacency: confSymAdj[confSymStart[i]:confSymStart[i+1]]
	// lists, in ascending order, every edge j != i whose fabric path
	// shares a waveguide resource with edge i's. The delta kernel walks
	// this row to re-grade only the conflict pairs a mutated edge can
	// touch, in either pair direction.
	confSymStart []int32
	confSymAdj   []int32

	// evalPool recycles evaluators behind the compatibility Evaluate
	// method, so concurrent callers run genuinely in parallel; hot
	// paths hold their own Evaluator and never touch it.
	evalPool sync.Pool
}

// NewInstance validates the pieces and precomputes the routes. f is
// the optical backend the allocation runs on; any fabric.Fabric
// implementation works (*ring.Ring and *crossbar.Crossbar ship with
// the repository).
func NewInstance(f fabric.Fabric, app *graph.TaskGraph, m graph.Mapping, bitsPerCycle float64, em energy.Model) (*Instance, error) {
	if f == nil || app == nil {
		return nil, fmt.Errorf("alloc: nil fabric or application")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(app, f.Size()); err != nil {
		return nil, err
	}
	if bitsPerCycle <= 0 {
		return nil, fmt.Errorf("alloc: bits per cycle must be positive, got %v", bitsPerCycle)
	}
	if err := em.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{
		fab:          f,
		App:          app,
		Map:          m,
		BitsPerCycle: bitsPerCycle,
		Energy:       em,
		paths:        make([]fabric.Path, app.NumEdges()),
		srcCore:      make([]int, app.NumEdges()),
		dstCore:      make([]int, app.NumEdges()),
		selfEdge:     make([]bool, app.NumEdges()),
	}
	for ei, e := range app.Edges {
		src, dst := m[e.Src], m[e.Dst]
		in.srcCore[ei] = src
		in.dstCore[ei] = dst
		if src == dst {
			// Shared-core mapping: the transfer stays in the core's
			// memory and never enters the optical layer.
			in.paths[ei] = fabric.SelfPath(src)
			in.selfEdge[ei] = true
			continue
		}
		p, err := f.PathBetween(src, dst)
		if err != nil {
			return nil, fmt.Errorf("alloc: edge %s: %v", e.Name, err)
		}
		in.paths[ei] = p
	}
	nl := app.NumEdges()
	in.pathOverlap = make([]bool, nl*nl)
	for i := 0; i < nl; i++ {
		for j := 0; j < nl; j++ {
			in.pathOverlap[i*nl+j] = in.paths[i].Overlaps(in.paths[j])
		}
	}
	in.maskWords = fabric.MaskWords(f.Channels())
	in.confStart = make([]int32, nl+1)
	var adj []int32
	for i := 0; i < nl; i++ {
		in.confStart[i] = int32(len(adj))
		for j := i + 1; j < nl; j++ {
			if in.pathOverlap[i*nl+j] {
				adj = append(adj, int32(j))
			}
		}
	}
	in.confStart[nl] = int32(len(adj))
	in.confAdj = adj
	in.confSymStart = make([]int32, nl+1)
	var sym []int32
	for i := 0; i < nl; i++ {
		in.confSymStart[i] = int32(len(sym))
		for j := 0; j < nl; j++ {
			if j != i && in.pathOverlap[i*nl+j] {
				sym = append(sym, int32(j))
			}
		}
	}
	in.confSymStart[nl] = int32(len(sym))
	in.confSymAdj = sym
	return in, nil
}

// MaskWords returns the per-edge wavelength bitmask stride of this
// instance's comb (see Genome.MaskInto and fabric.MaskWords).
func (in *Instance) MaskWords() int { return in.maskWords }

// ConflictNeighbors returns the edges j > i whose precomputed fabric
// paths share a waveguide resource with edge i's, in ascending order.
// The returned slice is shared; callers must not mutate it.
func (in *Instance) ConflictNeighbors(i int) []int32 {
	return in.confAdj[in.confStart[i]:in.confStart[i+1]]
}

// AllConflictNeighbors returns every edge j != i whose precomputed
// fabric path shares a waveguide resource with edge i's, in ascending
// order — the symmetric form of ConflictNeighbors. The returned slice
// is shared; callers must not mutate it.
func (in *Instance) AllConflictNeighbors(i int) []int32 {
	return in.confSymAdj[in.confSymStart[i]:in.confSymStart[i+1]]
}

// PathsOverlap reports whether the precomputed routes of edges i and
// j share a waveguide resource.
func (in *Instance) PathsOverlap(i, j int) bool {
	return in.pathOverlap[i*len(in.paths)+j]
}

// DefaultInstance assembles the paper's evaluation platform: the
// virtual application and its mapping on a 4x4 serpentine ring with
// Table I parameters, an nw-channel comb, B = 1 bit/cycle and the
// default energy calibration.
func DefaultInstance(nw int) (*Instance, error) {
	r, err := ring.New(ring.DefaultConfig(nw))
	if err != nil {
		return nil, err
	}
	return NewInstance(r, graph.PaperApp(), graph.PaperMapping(), 1, energy.Default())
}

// Fabric exposes the optical backend the instance was built on.
func (in *Instance) Fabric() fabric.Fabric { return in.fab }

// Channels returns NW of the underlying comb.
func (in *Instance) Channels() int { return in.fab.Channels() }

// Edges returns Nl.
func (in *Instance) Edges() int { return in.App.NumEdges() }

// Path returns the precomputed route of edge e.
func (in *Instance) Path(e int) fabric.Path { return in.paths[e] }

// SrcCore and DstCore return the mapped endpoint cores of edge e.
func (in *Instance) SrcCore(e int) int { return in.srcCore[e] }

// DstCore returns the destination core of edge e.
func (in *Instance) DstCore(e int) int { return in.dstCore[e] }

// SelfEdge reports whether edge e connects two tasks mapped onto the
// same core. Self edges need no wavelengths, emit no light and cost
// zero cycles; wavelengths a genome reserves on them are ignored.
func (in *Instance) SelfEdge(e int) bool { return in.selfEdge[e] }

// NewZeroGenome returns an all-zero chromosome of this instance's
// shape.
func (in *Instance) NewZeroGenome() Genome {
	return NewGenome(in.Edges(), in.Channels())
}
