// Package dist implements distributed campaign execution: a
// coordinator that enumerates campaign cells and hands them to
// worker processes over a length-prefixed TCP protocol, and the
// worker loop that executes them with the ordinary evaluator stack.
//
// The campaign checkpoint formats double as the wire formats: a
// worker streams back the exact cell-<N>.ckpt / cell-<N>.json bytes
// the in-process checkpoint manager writes, the coordinator stores
// them verbatim in its checkpoint directory, and the artifact
// directory comes out byte-identical to a single-process run's. A
// worker that dies mid-cell loses nothing but the tail since its
// last streamed snapshot: the coordinator holds the cell's lease,
// detects the broken connection, and reassigns the cell — resume
// bytes included — to the next free worker.
//
// The protocol carries no authentication and no encryption: it is
// meant for trusted hosts (a lab cluster, one multi-core machine),
// not the open internet.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/expt"
)

// Frame layout, little-endian:
//
//	u32 length   of everything after this field
//	u8  type     one of the msg* constants
//	u32 metaLen  length of the JSON metadata
//	... meta     JSON, message-type specific
//	... blob     opaque payload (checkpoint bytes, records, manifest)
//
// Every exchange is synchronous per connection: the coordinator
// sends one assignment and reads frames until the job resolves, so
// there is no interleaving to disambiguate.
const (
	// msgConfig (coordinator → worker) opens a session: meta is the
	// WireConfig, blob the coordinator's manifest rendering.
	msgConfig = iota + 1
	// msgReady (worker → coordinator) accepts the session: blob is
	// the worker's own manifest rendering, which the coordinator
	// byte-compares against its own — identity is checked in both
	// directions before any work is assigned.
	msgReady
	// msgReject (worker → coordinator) refuses the session: meta
	// carries the reason. Sent when the manifests disagree.
	msgReject
	// msgCell (coordinator → worker) assigns one whole cell: meta is
	// cellMeta, blob the cell's resume snapshot (empty = fresh).
	msgCell
	// msgCkpt (worker → coordinator) streams an in-flight snapshot
	// of the running cell: blob is a complete cell-<N>.ckpt file.
	msgCkpt
	// msgDone (worker → coordinator) completes a cell: blob is the
	// complete cell-<N>.json record.
	msgDone
	// msgFail (worker → coordinator) reports a deterministic cell or
	// segment failure: meta carries the error.
	msgFail
	// msgSegment (coordinator → worker) assigns one island segment:
	// meta is cellMeta, blob the JSON-encoded core.IslandSegment.
	msgSegment
	// msgSegDone (worker → coordinator) completes a segment: blob is
	// the JSON-encoded core.IslandSegmentResult.
	msgSegDone
	// msgShutdown (coordinator → worker) ends the session cleanly.
	msgShutdown
)

// maxFrame bounds a frame so a corrupt or hostile length prefix
// cannot make a peer allocate unbounded memory. Engine checkpoints
// of paper-scale cells are a few hundred kilobytes; a gigabyte is
// far beyond anything legitimate.
const maxFrame = 1 << 30

// cellMeta addresses a cell (and, for failures, carries the error).
type cellMeta struct {
	Index int    `json:"index"`
	Error string `json:"error,omitempty"`
}

// WireConfig is the campaign configuration as shipped to workers:
// the result-determining fields only, with workloads by name (the
// name is the generator spec, so the worker rebuilds the identical
// task graph and mapping). The worker reconstructs a CampaignConfig
// from it and must arrive at the same manifest bytes as the
// coordinator; anything this struct failed to carry would surface
// there, fail-loud.
type WireConfig struct {
	Backends        []string `json:"backends,omitempty"`
	NWs             []int    `json:"nws,omitempty"`
	ObjectiveSets   []int    `json:"objective_sets,omitempty"`
	Workloads       []string `json:"workloads,omitempty"`
	Replicates      int      `json:"replicates,omitempty"`
	Pop             int      `json:"pop,omitempty"`
	Generations     int      `json:"generations,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	WarmStart       bool     `json:"warm_start,omitempty"`
	Stats           bool     `json:"stats,omitempty"`
	EvalWorkers     int      `json:"eval_workers,omitempty"`
	CheckpointEvery int      `json:"checkpoint_every,omitempty"`
	Islands         int      `json:"islands,omitempty"`
	MigrationEvery  int      `json:"migration_every,omitempty"`
	MigrationK      int      `json:"migration_k,omitempty"`
}

// WireFrom projects a campaign configuration onto the wire shape.
func WireFrom(cfg expt.CampaignConfig) WireConfig {
	w := WireConfig{
		Backends:        cfg.Backends,
		NWs:             cfg.NWs,
		Replicates:      cfg.Replicates,
		Pop:             cfg.Pop,
		Generations:     cfg.Generations,
		Seed:            cfg.Seed,
		WarmStart:       cfg.WarmStart,
		Stats:           cfg.Stats,
		EvalWorkers:     cfg.EvalWorkers,
		CheckpointEvery: cfg.CheckpointEvery,
		Islands:         cfg.Islands,
		MigrationEvery:  cfg.MigrationEvery,
		MigrationK:      cfg.MigrationK,
	}
	for _, os := range cfg.ObjectiveSets {
		w.ObjectiveSets = append(w.ObjectiveSets, int(os))
	}
	for _, wl := range cfg.Workloads {
		w.Workloads = append(w.Workloads, wl.Name)
	}
	return w
}

// CampaignConfig reconstructs the worker-side campaign configuration:
// workload names resolve through the deterministic generator, so
// both ends hold the same task graphs without shipping them.
func (w WireConfig) CampaignConfig() (expt.CampaignConfig, error) {
	cfg := expt.CampaignConfig{
		Backends:        w.Backends,
		NWs:             w.NWs,
		Replicates:      w.Replicates,
		Pop:             w.Pop,
		Generations:     w.Generations,
		Seed:            w.Seed,
		WarmStart:       w.WarmStart,
		Stats:           w.Stats,
		EvalWorkers:     w.EvalWorkers,
		CheckpointEvery: w.CheckpointEvery,
		Islands:         w.Islands,
		MigrationEvery:  w.MigrationEvery,
		MigrationK:      w.MigrationK,
	}
	for _, os := range w.ObjectiveSets {
		cfg.ObjectiveSets = append(cfg.ObjectiveSets, core.ObjectiveSet(os))
	}
	for _, name := range w.Workloads {
		wl, err := expt.NamedWorkload(name)
		if err != nil {
			return expt.CampaignConfig{}, fmt.Errorf("dist: wire workload %q: %w", name, err)
		}
		cfg.Workloads = append(cfg.Workloads, wl)
	}
	return cfg, nil
}

// writeFrame writes one protocol frame. meta nil means empty
// metadata.
func writeFrame(w io.Writer, typ byte, meta any, blob []byte) error {
	var metaRaw []byte
	if meta != nil {
		var err error
		if metaRaw, err = json.Marshal(meta); err != nil {
			return fmt.Errorf("dist: encode frame meta: %w", err)
		}
	}
	total := 1 + 4 + len(metaRaw) + len(blob)
	if total > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", total, maxFrame)
	}
	hdr := make([]byte, 4+1+4)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(total))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(metaRaw)))
	for _, part := range [][]byte{hdr, metaRaw, blob} {
		if _, err := w.Write(part); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one protocol frame.
func readFrame(r io.Reader) (typ byte, meta, blob []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 5 || total > maxFrame {
		return 0, nil, nil, fmt.Errorf("dist: implausible frame length %d", total)
	}
	payload := make([]byte, total)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	typ = payload[0]
	metaLen := binary.LittleEndian.Uint32(payload[1:5])
	if int(metaLen) > len(payload)-5 {
		return 0, nil, nil, fmt.Errorf("dist: frame metadata length %d exceeds payload", metaLen)
	}
	meta = payload[5 : 5+metaLen]
	blob = payload[5+metaLen:]
	if len(blob) == 0 {
		blob = nil
	}
	return typ, meta, blob, nil
}

// isConnLost normalizes the read errors a vanished peer produces.
func isConnLost(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// jsonBlob renders a frame blob from a JSON-encodable value.
func jsonBlob(v any) ([]byte, error) { return json.Marshal(v) }

// parseMeta decodes frame metadata (or a JSON blob); empty input is
// the zero value.
func parseMeta(raw []byte, v any) error {
	if len(raw) == 0 {
		return nil
	}
	return json.Unmarshal(raw, v)
}
