package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/expt"
)

// ErrWorkerHalted is returned by Worker.Run when the configured
// HaltAfterCheckpoints budget is exhausted: the worker drops its
// connection mid-cell without a farewell, exactly like a crash. The
// deterministic worker-kill behind the distributed-equivalence CI
// job.
var ErrWorkerHalted = errors.New("dist: worker halted after checkpoint budget (simulated crash)")

// WorkerOptions configures Run.
type WorkerOptions struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// DialAttempts bounds connection retries (default 30, exponential
	// backoff from 100ms capped at 2s — workers routinely start
	// before their coordinator).
	DialAttempts int
	// HaltAfterCheckpoints > 0 makes the worker die abruptly after
	// streaming that many snapshot frames (Run returns
	// ErrWorkerHalted).
	HaltAfterCheckpoints int
	// Log, when non-nil, receives human-oriented progress lines.
	Log func(format string, args ...any)
}

// worker executes jobs for one coordinator session.
type worker struct {
	opts  WorkerOptions
	cfg   expt.CampaignConfig
	cells []expt.Cell

	// instances caches the shared evaluation instance per
	// (backend, workload, NW) triple — cells arrive one at a time but
	// share triples, and instance construction dominates short cells.
	instances map[string]*alloc.Instance

	ckptsSent int
}

// Run connects to the coordinator, validates the campaign identity,
// and executes assigned cells and island segments until the
// coordinator shuts the session down. It returns nil on a clean
// shutdown, ErrManifestMismatch when the identities disagree, and
// ErrWorkerHalted when a simulated crash was requested.
func Run(opts WorkerOptions) error {
	conn, err := dialRetry(opts.Addr, opts.DialAttempts)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := &worker{opts: opts, instances: make(map[string]*alloc.Instance)}

	typ, meta, manifest, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake with %s: %w", opts.Addr, err)
	}
	if typ != msgConfig {
		return fmt.Errorf("dist: coordinator opened with frame type %d, want config", typ)
	}
	var wire WireConfig
	if err := parseMeta(meta, &wire); err != nil {
		return fmt.Errorf("dist: corrupt wire config: %w", err)
	}
	if w.cfg, err = wire.CampaignConfig(); err != nil {
		writeFrame(conn, msgReject, cellMeta{Error: err.Error()}, nil)
		return err
	}
	local, err := expt.ManifestBytes(w.cfg)
	if err != nil {
		writeFrame(conn, msgReject, cellMeta{Error: err.Error()}, nil)
		return err
	}
	if !bytes.Equal(local, manifest) {
		writeFrame(conn, msgReject, cellMeta{Error: "worker-side manifest differs from coordinator's"}, nil)
		return fmt.Errorf("%w (this build renders a different manifest for the received configuration)", ErrManifestMismatch)
	}
	w.cells = w.cfg.Cells()
	if err := writeFrame(conn, msgReady, nil, local); err != nil {
		return err
	}
	w.logf("joined coordinator %s (%d campaign cells)", opts.Addr, len(w.cells))

	for {
		typ, meta, blob, err := readFrame(conn)
		if err != nil {
			if isConnLost(err) {
				// Coordinator gone without a shutdown frame — it
				// crashed or was killed; nothing left to do here.
				return fmt.Errorf("dist: coordinator %s vanished: %w", opts.Addr, err)
			}
			return err
		}
		switch typ {
		case msgShutdown:
			w.logf("coordinator released this worker")
			return nil
		case msgCell:
			if err := w.runCell(conn, meta, blob); err != nil {
				return err
			}
		case msgSegment:
			if err := w.runSegment(conn, meta, blob); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected frame type %d from coordinator", typ)
		}
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.opts.Log != nil {
		w.opts.Log(format, args...)
	}
}

func (w *worker) cellAt(meta []byte) (expt.Cell, error) {
	var m cellMeta
	if err := parseMeta(meta, &m); err != nil {
		return expt.Cell{}, fmt.Errorf("dist: corrupt assignment: %w", err)
	}
	if m.Index < 0 || m.Index >= len(w.cells) {
		return expt.Cell{}, fmt.Errorf("dist: assigned cell %d of a %d-cell campaign", m.Index, len(w.cells))
	}
	return w.cells[m.Index], nil
}

func (w *worker) instance(cell expt.Cell) (*alloc.Instance, error) {
	key := fmt.Sprintf("%s|%s|%d", cell.Backend, cell.Workload, cell.NW)
	if in, ok := w.instances[key]; ok {
		return in, nil
	}
	wl, err := expt.NamedWorkload(cell.Workload)
	if err != nil {
		return nil, err
	}
	in, err := expt.BuildCellInstance(cell, wl)
	if err != nil {
		return nil, err
	}
	w.instances[key] = in
	return in, nil
}

// runCell executes one whole cell, streaming snapshot frames as the
// engine crosses checkpoint boundaries. A deterministic evaluation
// failure is reported with msgFail and the session continues; a
// send failure (coordinator gone) or a simulated crash ends Run.
func (w *worker) runCell(conn net.Conn, meta, resume []byte) error {
	cell, err := w.cellAt(meta)
	if err != nil {
		return err
	}
	in, err := w.instance(cell)
	if err != nil {
		return w.reportFail(conn, cell, err)
	}
	if resume != nil {
		w.logf("cell %d: resuming (%d snapshot bytes)", cell.Index, len(resume))
	} else {
		w.logf("cell %d: running", cell.Index)
	}
	emit := func(ck []byte) error {
		if err := writeFrame(conn, msgCkpt, nil, ck); err != nil {
			return err
		}
		w.ckptsSent++
		if w.opts.HaltAfterCheckpoints > 0 && w.ckptsSent >= w.opts.HaltAfterCheckpoints {
			return ErrWorkerHalted
		}
		return nil
	}
	done, err := expt.ExecuteCell(w.cfg, cell, in, resume, emit)
	if err != nil {
		if errors.Is(err, ErrWorkerHalted) {
			// Simulated crash: sever the connection with the lease
			// held, no farewell frame.
			conn.Close()
			return ErrWorkerHalted
		}
		return w.reportFail(conn, cell, err)
	}
	w.logf("cell %d: done", cell.Index)
	return writeFrame(conn, msgDone, nil, done)
}

// runSegment executes one island segment.
func (w *worker) runSegment(conn net.Conn, meta, blob []byte) error {
	cell, err := w.cellAt(meta)
	if err != nil {
		return err
	}
	var seg core.IslandSegment
	if err := parseMeta(blob, &seg); err != nil {
		return fmt.Errorf("dist: cell %d: corrupt segment: %w", cell.Index, err)
	}
	in, err := w.instance(cell)
	if err != nil {
		return w.reportFail(conn, cell, err)
	}
	w.logf("cell %d: island %d gens %d..%d", cell.Index, seg.Island, seg.StartGen, seg.StartGen+seg.Gens)
	res, err := expt.RunCellSegment(w.cfg, cell, in, seg)
	if err != nil {
		return w.reportFail(conn, cell, err)
	}
	blob, err = jsonBlob(res)
	if err != nil {
		return err
	}
	return writeFrame(conn, msgSegDone, nil, blob)
}

// reportFail forwards a deterministic failure and keeps the session
// alive for further assignments.
func (w *worker) reportFail(conn net.Conn, cell expt.Cell, cause error) error {
	w.logf("cell %d: failed: %v", cell.Index, cause)
	return writeFrame(conn, msgFail, cellMeta{Index: cell.Index, Error: cause.Error()}, nil)
}

// dialRetry connects with exponential backoff: workers routinely
// start before their coordinator's listener is up.
func dialRetry(addr string, attempts int) (net.Conn, error) {
	if attempts <= 0 {
		attempts = 30
	}
	backoff := 100 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return nil, fmt.Errorf("dist: dial %s: %w", addr, lastErr)
}
