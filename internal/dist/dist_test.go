package dist

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expt"
)

// distCampaignConfig is a small two-cell campaign (two replicates of
// one (ring, NW=4, paper) combination) with frequent snapshots.
func distCampaignConfig() expt.CampaignConfig {
	return expt.CampaignConfig{
		NWs:             []int{4},
		Replicates:      2,
		Pop:             12,
		Generations:     6,
		Seed:            3,
		CheckpointEvery: 2,
	}
}

// readTree returns every file in dir keyed by name.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = raw
	}
	return out
}

func sameTree(t *testing.T, want, got map[string][]byte, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d files, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing %s", label, name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: %s differs (%d vs %d bytes)", label, name, len(g), len(w))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected file %s", label, name)
		}
	}
}

// serveAndWork runs a coordinator for cfg plus n workers in-process
// and returns the coordinator error and each worker's error.
func serveAndWork(t *testing.T, cfg expt.CampaignConfig, workers []WorkerOptions) (error, []error) {
	t.Helper()
	addrCh := make(chan string, 1)
	serveCh := make(chan error, 1)
	go func() {
		serveCh <- Serve(CoordinatorOptions{
			Addr:   "127.0.0.1:0",
			Config: cfg,
			Log:    t.Logf,
			Ready:  func(addr string) { addrCh <- addr },
		})
	}()
	addr := <-addrCh
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i := range workers {
		w := workers[i]
		w.Addr = addr
		wg.Add(1)
		go func(i int, w WorkerOptions) {
			defer wg.Done()
			errs[i] = Run(w)
		}(i, w)
	}
	err := <-serveCh
	wg.Wait()
	return err, errs
}

// TestDistributedMatchesSingleProcess is the tentpole's acceptance
// pin: a campaign distributed over two workers leaves a checkpoint
// directory byte-identical to a single-process run's, and the
// artifacts rendered from it (via a resuming RunCampaign) match the
// single-process artifacts byte-for-byte.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	refDir := t.TempDir()
	refCfg := distCampaignConfig()
	refCfg.CheckpointDir = refDir
	ref, err := expt.RunCampaign(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	distDir := t.TempDir()
	distCfg := distCampaignConfig()
	distCfg.CheckpointDir = distDir
	serveErr, workerErrs := serveAndWork(t, distCfg, make([]WorkerOptions, 2))
	if serveErr != nil {
		t.Fatalf("coordinator: %v", serveErr)
	}
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	sameTree(t, readTree(t, refDir), readTree(t, distDir), "checkpoint dir")

	// The artifact path: a resuming run over the distributed
	// directory restores every cell and renders the same bytes as the
	// single-process campaign.
	resumeCfg := distCampaignConfig()
	resumeCfg.CheckpointDir = distDir
	resumeCfg.Resume = true
	resumed, err := expt.RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed.Cells {
		if !resumed.Cells[i].Restored() {
			t.Errorf("cell %d re-explored instead of restored from the distributed record", i)
		}
	}
	var refJSON, resJSON, refCSV, resCSV bytes.Buffer
	if err := expt.WriteCampaignJSON(&refJSON, ref); err != nil {
		t.Fatal(err)
	}
	if err := expt.WriteCampaignJSON(&resJSON, resumed); err != nil {
		t.Fatal(err)
	}
	if err := expt.WriteCampaignCSV(&refCSV, ref); err != nil {
		t.Fatal(err)
	}
	if err := expt.WriteCampaignCSV(&resCSV, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON.Bytes(), resJSON.Bytes()) {
		t.Error("JSON artifact from the distributed run differs from the single-process run")
	}
	if !bytes.Equal(refCSV.Bytes(), resCSV.Bytes()) {
		t.Error("CSV artifact from the distributed run differs from the single-process run")
	}
}

// TestWorkerCrashLeaseReassigned: a worker that dies mid-cell (after
// streaming two snapshots) loses its lease; the surviving worker
// resumes the cell from the last streamed snapshot and the final
// directory still matches a single-process run byte-for-byte.
func TestWorkerCrashLeaseReassigned(t *testing.T) {
	single := func() expt.CampaignConfig {
		return expt.CampaignConfig{
			NWs:             []int{4},
			Pop:             12,
			Generations:     8,
			Seed:            7,
			CheckpointEvery: 2,
		}
	}
	refDir := t.TempDir()
	refCfg := single()
	refCfg.CheckpointDir = refDir
	if _, err := expt.RunCampaign(refCfg); err != nil {
		t.Fatal(err)
	}

	distDir := t.TempDir()
	distCfg := single()
	distCfg.CheckpointDir = distDir
	addrCh := make(chan string, 1)
	serveCh := make(chan error, 1)
	go func() {
		serveCh <- Serve(CoordinatorOptions{
			Addr:   "127.0.0.1:0",
			Config: distCfg,
			Log:    t.Logf,
			Ready:  func(addr string) { addrCh <- addr },
		})
	}()
	addr := <-addrCh

	// The doomed worker runs alone first, so it necessarily holds the
	// cell's lease when it crashes (after streaming two snapshots).
	if err := Run(WorkerOptions{Addr: addr, HaltAfterCheckpoints: 2, Log: t.Logf}); !errors.Is(err, ErrWorkerHalted) {
		t.Fatalf("doomed worker returned %v, want ErrWorkerHalted", err)
	}
	// The crash severs the socket right after sending; give the
	// coordinator a moment to drain and persist the streamed frames.
	snapPath := filepath.Join(distDir, "cell-0.ckpt")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no streamed snapshot on the coordinator after the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh worker picks up the reassigned lease mid-cell.
	var mu sync.Mutex
	var resumed bool
	err := Run(WorkerOptions{Addr: addr, Log: func(format string, args ...any) {
		t.Logf(format, args...)
		if strings.HasPrefix(format, "cell %d: resuming") {
			mu.Lock()
			resumed = true
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatalf("replacement worker: %v", err)
	}
	if !resumed {
		t.Error("replacement worker did not resume from the streamed snapshot")
	}
	if err := <-serveCh; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	sameTree(t, readTree(t, refDir), readTree(t, distDir), "post-crash checkpoint dir")
}

// TestDistributedIslandsMatchSingleProcess: an island-model campaign
// distributed segment-by-segment produces the same completion
// records as the in-process island run.
func TestDistributedIslandsMatchSingleProcess(t *testing.T) {
	island := func() expt.CampaignConfig {
		return expt.CampaignConfig{
			NWs:            []int{4},
			Pop:            12,
			Generations:    6,
			Seed:           5,
			Islands:        2,
			MigrationEvery: 2,
			MigrationK:     2,
		}
	}
	refDir := t.TempDir()
	refCfg := island()
	refCfg.CheckpointDir = refDir
	if _, err := expt.RunCampaign(refCfg); err != nil {
		t.Fatal(err)
	}

	distDir := t.TempDir()
	distCfg := island()
	distCfg.CheckpointDir = distDir
	serveErr, workerErrs := serveAndWork(t, distCfg, make([]WorkerOptions, 2))
	if serveErr != nil {
		t.Fatalf("coordinator: %v", serveErr)
	}
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	sameTree(t, readTree(t, refDir), readTree(t, distDir), "island checkpoint dir")
}

// TestManifestMismatchFailLoud pins both rejection directions: a
// peer whose manifest disagrees is refused before any work moves.
func TestManifestMismatchFailLoud(t *testing.T) {
	t.Run("coordinator-rejects-worker", func(t *testing.T) {
		cfg := distCampaignConfig()
		cfg.CheckpointDir = t.TempDir()
		addrCh := make(chan string, 1)
		serveCh := make(chan error, 1)
		go func() {
			serveCh <- Serve(CoordinatorOptions{
				Addr: "127.0.0.1:0", Config: cfg,
				Ready: func(addr string) { addrCh <- addr },
			})
		}()
		conn, err := net.Dial("tcp", <-addrCh)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		typ, _, manifest, err := readFrame(conn)
		if err != nil || typ != msgConfig {
			t.Fatalf("handshake: type %d err %v", typ, err)
		}
		// Echo a tampered manifest: one byte off is enough.
		manifest[len(manifest)/2] ^= 0x01
		if err := writeFrame(conn, msgReady, nil, manifest); err != nil {
			t.Fatal(err)
		}
		if err := <-serveCh; !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("coordinator returned %v, want ErrManifestMismatch", err)
		}
	})

	t.Run("worker-rejects-coordinator", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		rejectCh := make(chan error, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				rejectCh <- err
				return
			}
			defer conn.Close()
			cfg := distCampaignConfig()
			manifest, err := expt.ManifestBytes(cfg)
			if err != nil {
				rejectCh <- err
				return
			}
			manifest[len(manifest)/2] ^= 0x01 // coordinator lies about identity
			if err := writeFrame(conn, msgConfig, WireFrom(cfg), manifest); err != nil {
				rejectCh <- err
				return
			}
			typ, _, _, err := readFrame(conn)
			if err != nil {
				rejectCh <- err
				return
			}
			if typ != msgReject {
				rejectCh <- errors.New("worker did not reject the session")
				return
			}
			rejectCh <- nil
		}()
		err = Run(WorkerOptions{Addr: ln.Addr().String(), DialAttempts: 3})
		if !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("worker returned %v, want ErrManifestMismatch", err)
		}
		if err := <-rejectCh; err != nil {
			t.Fatalf("fake coordinator: %v", err)
		}
	})
}

// TestWireConfigRoundTrip: the wire projection reconstructs an
// equivalent campaign configuration (workloads by name).
func TestWireConfigRoundTrip(t *testing.T) {
	cfg := expt.CampaignConfig{
		Backends:        []string{"ring", "crossbar"},
		NWs:             []int{4, 8},
		Replicates:      2,
		Pop:             24,
		Generations:     10,
		Seed:            5,
		Stats:           true,
		CheckpointEvery: 3,
		Islands:         2,
		MigrationEvery:  4,
		MigrationK:      1,
	}
	back, err := WireFrom(cfg).CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	a, err := expt.ManifestBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := expt.ManifestBytes(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("wire round-trip changed the campaign manifest")
	}
	if !reflect.DeepEqual(cfg.Cells(), back.Cells()) {
		t.Fatal("wire round-trip changed the cell enumeration")
	}
}
