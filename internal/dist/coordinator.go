package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/expt"
)

// maxLeaseAttempts bounds how many times one job is reassigned after
// worker deaths before the coordinator declares it failed. Five
// consecutive crashes on the same cell is a deterministic problem,
// not bad luck.
const maxLeaseAttempts = 5

// ErrManifestMismatch is the fail-loud rejection of a worker whose
// reconstructed campaign manifest disagrees with the coordinator's.
var ErrManifestMismatch = errors.New("dist: campaign manifest mismatch between coordinator and worker")

// CoordinatorOptions configures Serve.
type CoordinatorOptions struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:9733".
	Addr string
	// Config is the campaign. CheckpointDir is required — the
	// directory is the durable ground truth workers stream their
	// bytes into. Progress, CellWorkers, StopAfterCheckpoints and
	// WarmCacheSiblings are not supported in distributed mode.
	Config expt.CampaignConfig
	// Log, when non-nil, receives human-oriented progress lines.
	Log func(format string, args ...any)
	// Ready, when non-nil, is called with the bound listen address
	// once the coordinator accepts connections — the actual port when
	// Addr asked for an ephemeral one.
	Ready func(addr string)
}

// job is one unit of work a worker can hold a lease on: a whole cell
// or one island segment.
type job struct {
	cell   expt.Cell
	seg    *core.IslandSegment // nil → whole-cell job
	resume []byte              // latest snapshot bytes (whole-cell only)

	attempts  int
	result    chan jobResult // buffered 1; exactly one send
	segResult *core.IslandSegmentResult
}

type jobResult struct {
	done []byte                    // whole-cell completion record
	seg  *core.IslandSegmentResult // segment result
	err  error
}

type coordinator struct {
	opts     CoordinatorOptions
	cfg      expt.CampaignConfig
	dir      *expt.CampaignDir
	manifest []byte
	wire     WireConfig

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*job
	done  bool  // no more assignments; handlers shut workers down
	fatal error // first protocol-level failure (e.g. manifest mismatch)
}

// Serve runs the campaign at opts.Config by distributing its cells
// to workers that connect to opts.Addr. It returns when every cell
// has either completed (its artifacts durably in CheckpointDir) or
// failed terminally. Serve does not render the campaign's JSON/CSV
// artifacts itself: run RunCampaign over the same directory with
// Resume set afterwards — every cell restores from its record, so
// the artifacts are byte-identical to a single-process run's.
func Serve(opts CoordinatorOptions) error {
	cfg := opts.Config
	if cfg.CheckpointDir == "" {
		return fmt.Errorf("dist: distributed campaigns need CheckpointDir (it is the durable ground truth)")
	}
	if cfg.Progress != nil || cfg.StopAfterCheckpoints > 0 || cfg.WarmCacheSiblings {
		return fmt.Errorf("dist: Progress, StopAfterCheckpoints and WarmCacheSiblings are not supported in distributed mode")
	}
	dir, err := expt.OpenCampaignDir(cfg)
	if err != nil {
		return err
	}
	manifest, err := expt.ManifestBytes(cfg)
	if err != nil {
		return err
	}
	c := &coordinator{opts: opts, cfg: cfg, dir: dir, manifest: manifest, wire: WireFrom(cfg)}
	c.cond = sync.NewCond(&c.mu)

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", opts.Addr, err)
	}
	if opts.Ready != nil {
		opts.Ready(ln.Addr().String())
	}
	var conns sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: campaign over
			}
			conns.Add(1)
			go func() {
				defer conns.Done()
				c.handleConn(conn)
			}()
		}
	}()

	cells := dir.Cells()
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, cell := range cells {
		restored, err := dir.HasDone(cell)
		if err != nil {
			errs[i] = err
			continue
		}
		if restored {
			c.logf("cell %d/%d: restored", cell.Index+1, len(cells))
			continue
		}
		wg.Add(1)
		go func(i int, cell expt.Cell) {
			defer wg.Done()
			errs[i] = c.runCell(cell, len(cells))
		}(i, cell)
	}
	wg.Wait()

	c.mu.Lock()
	c.done = true
	fatal := c.fatal
	c.cond.Broadcast()
	c.mu.Unlock()
	ln.Close()
	conns.Wait()

	if fatal != nil {
		return fatal
	}
	var failed int
	var first error
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("dist: %d of %d cells failed, first: %w", failed, len(cells), first)
	}
	return nil
}

func (c *coordinator) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

// runCell drives one cell to durable completion: plain cells become
// a single leased job; island cells run the migration loop here in
// the coordinator, with each round's segments fanned out as jobs.
func (c *coordinator) runCell(cell expt.Cell, total int) error {
	in, err := c.instance(cell)
	if err != nil {
		return fmt.Errorf("dist: cell %d: %w", cell.Index, err)
	}
	c.logf("cell %d/%d: dispatching", cell.Index+1, total)
	var done []byte
	if c.cfg.Islands > 1 {
		done, err = expt.DriveIslandCell(c.cfg, cell, in, c.roundRunner(cell))
	} else {
		resume, ok, lerr := c.dir.LoadCkptRaw(cell)
		if lerr != nil {
			return lerr
		}
		if ok {
			c.logf("cell %d/%d: resuming from snapshot", cell.Index+1, total)
		}
		done, err = c.dispatch(&job{cell: cell, resume: resume})
	}
	if err != nil {
		c.logf("cell %d/%d: FAILED: %v", cell.Index+1, total, err)
		return err
	}
	if err := c.dir.PutDoneRaw(cell, done); err != nil {
		return err
	}
	c.logf("cell %d/%d: done", cell.Index+1, total)
	return nil
}

// instance builds the cell's shared evaluation instance (needed
// coordinator-side only for island cells, whose assembly and sim
// cross-check run here). Instances are cheap relative to cells, so
// no cross-cell cache.
func (c *coordinator) instance(cell expt.Cell) (*alloc.Instance, error) {
	wl, err := expt.NamedWorkload(cell.Workload)
	if err != nil {
		return nil, err
	}
	return expt.BuildCellInstance(cell, wl)
}

// roundRunner fans one migration round's segments out to workers in
// parallel and gathers the results in order.
func (c *coordinator) roundRunner(cell expt.Cell) core.RoundRunner {
	return func(segs []core.IslandSegment) ([]core.IslandSegmentResult, error) {
		out := make([]core.IslandSegmentResult, len(segs))
		errs := make([]error, len(segs))
		var wg sync.WaitGroup
		for i := range segs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				seg := segs[i]
				j := &job{cell: cell, seg: &seg}
				if _, err := c.dispatch(j); err != nil {
					errs[i] = err
					return
				}
				if j.segResult == nil {
					errs[i] = fmt.Errorf("dist: cell %d island %d: segment resolved without a result", cell.Index, seg.Island)
					return
				}
				out[i] = *j.segResult
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
}

// dispatch enqueues the job and blocks until a worker resolves it,
// reassigning it (with its latest resume bytes) every time a holder
// dies, up to maxLeaseAttempts.
func (c *coordinator) dispatch(j *job) ([]byte, error) {
	j.result = make(chan jobResult, 1)
	if err := c.enqueue(j); err != nil {
		return nil, err
	}
	r := <-j.result
	if r.err != nil {
		return nil, r.err
	}
	j.segResult = r.seg
	return r.done, nil
}

func (c *coordinator) enqueue(j *job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return c.fatal
	}
	if c.done {
		return fmt.Errorf("dist: campaign already finished")
	}
	c.queue = append(c.queue, j)
	c.cond.Signal()
	return nil
}

// requeue puts a job whose holder died back at the head of the queue
// so reassignment beats fresh work. Exhausted leases fail the job.
func (c *coordinator) requeue(j *job, cause error) {
	j.attempts++
	if j.attempts >= maxLeaseAttempts {
		j.result <- jobResult{err: fmt.Errorf("dist: cell %d: lease abandoned %d times, last: %w", j.cell.Index, j.attempts, cause)}
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		j.result <- jobResult{err: c.fatal}
		return
	}
	c.queue = append([]*job{j}, c.queue...)
	c.cond.Signal()
}

// pop blocks until a job is available or the campaign is over.
func (c *coordinator) pop() *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.done {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return nil
	}
	j := c.queue[0]
	c.queue = c.queue[1:]
	return j
}

// fail records the first protocol-level failure and wakes everyone:
// queued jobs resolve with the error, handlers shut their workers
// down. Fail-loud — a worker that disagrees about the campaign
// identity means the deployment is wrong, not that cell.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.fatal == nil {
		c.fatal = err
	}
	queued := c.queue
	c.queue = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, j := range queued {
		j.result <- jobResult{err: err}
	}
}

// handleConn speaks the protocol with one worker: handshake, then a
// strict assign → stream → resolve loop until the campaign is done.
func (c *coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Detect dead peers without bounding how long a cell may
		// compute between frames.
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	if err := writeFrame(conn, msgConfig, c.wire, c.manifest); err != nil {
		return
	}
	typ, meta, blob, err := readFrame(conn)
	if err != nil {
		return // worker vanished before handshake: nothing leased
	}
	switch typ {
	case msgReady:
		if !bytes.Equal(blob, c.manifest) {
			writeFrame(conn, msgShutdown, nil, nil)
			c.fail(fmt.Errorf("%w (worker %s echoed a different manifest)", ErrManifestMismatch, conn.RemoteAddr()))
			return
		}
	case msgReject:
		var m cellMeta
		parseMeta(meta, &m)
		c.fail(fmt.Errorf("%w (worker %s: %s)", ErrManifestMismatch, conn.RemoteAddr(), m.Error))
		return
	default:
		c.fail(fmt.Errorf("dist: worker %s opened with frame type %d", conn.RemoteAddr(), typ))
		return
	}
	c.logf("worker %s joined", conn.RemoteAddr())

	for {
		j := c.pop()
		if j == nil {
			writeFrame(conn, msgShutdown, nil, nil)
			return
		}
		if err := c.runLease(conn, j); err != nil {
			c.requeue(j, err)
			return // connection is unusable after a mid-job error
		}
	}
}

// runLease assigns one job to the connected worker and consumes
// frames until it resolves. A returned error means the worker died
// holding the lease (the caller requeues); a resolved job — success
// or deterministic failure — returns nil.
func (c *coordinator) runLease(conn net.Conn, j *job) error {
	var assignErr error
	if j.seg != nil {
		blob, err := jsonBlob(j.seg)
		if err != nil {
			j.result <- jobResult{err: err}
			return nil
		}
		assignErr = writeFrame(conn, msgSegment, cellMeta{Index: j.cell.Index}, blob)
	} else {
		assignErr = writeFrame(conn, msgCell, cellMeta{Index: j.cell.Index}, j.resume)
	}
	if assignErr != nil {
		return assignErr
	}
	for {
		typ, meta, blob, err := readFrame(conn)
		if err != nil {
			return fmt.Errorf("dist: worker %s lost mid-cell: %w", conn.RemoteAddr(), err)
		}
		switch typ {
		case msgCkpt:
			// Persist the snapshot (durability) and retain it as the
			// job's resume point (lease reassignment).
			if err := c.dir.PutCkptRaw(j.cell, blob); err != nil {
				j.result <- jobResult{err: err}
				return nil
			}
			j.resume = blob
		case msgDone:
			j.result <- jobResult{done: blob}
			return nil
		case msgSegDone:
			var r core.IslandSegmentResult
			if err := parseMeta(blob, &r); err != nil {
				j.result <- jobResult{err: fmt.Errorf("dist: cell %d: corrupt segment result: %w", j.cell.Index, err)}
				return nil
			}
			j.result <- jobResult{seg: &r}
			return nil
		case msgFail:
			var m cellMeta
			parseMeta(meta, &m)
			j.result <- jobResult{err: fmt.Errorf("dist: cell %d failed on worker %s: %s", j.cell.Index, conn.RemoteAddr(), m.Error)}
			return nil
		default:
			return fmt.Errorf("dist: worker %s sent unexpected frame type %d mid-cell", conn.RemoteAddr(), typ)
		}
	}
}
