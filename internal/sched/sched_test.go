package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func ones(n int) []int {
	l := make([]int, n)
	for i := range l {
		l[i] = 1
	}
	return l
}

func TestWindowOverlaps(t *testing.T) {
	cases := []struct {
		a, b Window
		want bool
	}{
		{Window{0, 10}, Window{5, 15}, true},
		{Window{0, 10}, Window{10, 20}, false}, // half-open: touching is disjoint
		{Window{10, 20}, Window{0, 10}, false},
		{Window{0, 10}, Window{2, 3}, true},
		{Window{5, 5}, Window{0, 10}, false}, // zero-length never overlaps
		{Window{0, 10}, Window{5, 5}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap must be symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestPaperAppAllOnesMakespan(t *testing.T) {
	// With one wavelength per communication and B = 1 bit/cycle the
	// reconstructed application runs in 36 k-cc: T1(5k) c1(8k) T2(5k)
	// c2(4k) T4(5k) c5(4k) T5(5k).
	g := graph.PaperApp()
	s, err := Compute(g, ones(g.NumEdges()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.MakespanCycles != 36000 {
		t.Errorf("makespan = %v, want 36000", s.MakespanCycles)
	}
	if err := s.Validate(g); err != nil {
		t.Errorf("schedule self-check: %v", err)
	}
}

func TestPaperAppGenerousAllocationApproachesFloor(t *testing.T) {
	g := graph.PaperApp()
	huge := make([]int, g.NumEdges())
	for i := range huge {
		huge[i] = 1000
	}
	s, err := Compute(g, huge, 1)
	if err != nil {
		t.Fatal(err)
	}
	floor, _ := MinMakespanCycles(g)
	if floor != 20000 {
		t.Fatalf("floor = %v, want 20000", floor)
	}
	if s.MakespanCycles < floor {
		t.Errorf("makespan %v below the infinite-bandwidth floor %v", s.MakespanCycles, floor)
	}
	if s.MakespanCycles > floor+100 {
		t.Errorf("makespan %v should be within 0.1 k-cc of the floor with 1000 wavelengths", s.MakespanCycles)
	}
}

func TestCommWindows(t *testing.T) {
	g := graph.PaperApp()
	s, err := Compute(g, ones(g.NumEdges()), 1)
	if err != nil {
		t.Fatal(err)
	}
	// c1: T1 -> T2, 8 kb on one wavelength: starts when T1 ends (5k),
	// runs 8k cycles.
	c1 := s.Comm[1]
	if c1.Start != 5000 || c1.End != 13000 {
		t.Errorf("c1 window = %+v, want [5000,13000)", c1)
	}
	// T2 starts when c1 delivers.
	if s.TaskStart[2] != 13000 {
		t.Errorf("T2 start = %v, want 13000", s.TaskStart[2])
	}
}

func TestMoreWavelengthsShortenWindows(t *testing.T) {
	g := graph.PaperApp()
	l := ones(g.NumEdges())
	s1, _ := Compute(g, l, 1)
	l[1] = 4
	s4, _ := Compute(g, l, 1)
	if got, want := s4.Comm[1].Duration(), 2000.0; got != want {
		t.Errorf("c1 duration at 4 wavelengths = %v, want %v", got, want)
	}
	if s4.MakespanCycles >= s1.MakespanCycles {
		t.Errorf("makespan must drop when the critical edge gets bandwidth: %v -> %v",
			s1.MakespanCycles, s4.MakespanCycles)
	}
}

func TestBitsPerCycleScalesDurations(t *testing.T) {
	g := graph.PaperApp()
	s1, _ := Compute(g, ones(g.NumEdges()), 1)
	s2, _ := Compute(g, ones(g.NumEdges()), 2)
	for ei := range g.Edges {
		if d1, d2 := s1.Comm[ei].Duration(), s2.Comm[ei].Duration(); d1 != 2*d2 {
			t.Errorf("edge %d: doubling B must halve duration (%v vs %v)", ei, d1, d2)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	g := graph.PaperApp()
	if _, err := Compute(g, ones(3), 1); err == nil {
		t.Error("wrong lambda count must fail")
	}
	if _, err := Compute(g, ones(g.NumEdges()), 0); err == nil {
		t.Error("zero bandwidth must fail")
	}
	l := ones(g.NumEdges())
	l[2] = 0
	if _, err := Compute(g, l, 1); err == nil {
		t.Error("zero wavelengths on a loaded edge must fail")
	}
	l[2] = -1
	if _, err := Compute(g, l, 1); err == nil {
		t.Error("negative wavelengths must fail")
	}
}

func TestZeroVolumeEdgeNeedsNoWavelength(t *testing.T) {
	g := &graph.TaskGraph{
		Tasks: []graph.Task{{Name: "a", ExecCycles: 10}, {Name: "b", ExecCycles: 10}},
		Edges: []graph.Edge{{Name: "sync", Src: 0, Dst: 1, VolumeBits: 0}},
	}
	s, err := Compute(g, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Comm[0].Duration() != 0 {
		t.Errorf("zero-volume window = %+v, want zero length", s.Comm[0])
	}
	if s.MakespanCycles != 20 {
		t.Errorf("makespan = %v, want 20", s.MakespanCycles)
	}
}

func TestMakespanMonotoneInWavelengths(t *testing.T) {
	// Property: adding wavelengths to any edge never increases the
	// makespan (time model is monotone).
	g := graph.PaperApp()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]int, g.NumEdges())
		for i := range base {
			base[i] = 1 + rng.Intn(8)
		}
		s0, err := Compute(g, base, 1)
		if err != nil {
			return false
		}
		grown := make([]int, len(base))
		copy(grown, base)
		grown[rng.Intn(len(grown))] += 1 + rng.Intn(4)
		s1, err := Compute(g, grown, 1)
		if err != nil {
			return false
		}
		return s1.MakespanCycles <= s0.MakespanCycles+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScheduleValidateProperty(t *testing.T) {
	// Every computed schedule passes its own consistency check, for
	// random graphs and random allocations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.Layered(rng, 3, 3, 0.4, graph.DefaultGenConfig())
		if err != nil {
			return false
		}
		l := make([]int, g.NumEdges())
		for i := range l {
			l[i] = 1 + rng.Intn(6)
		}
		s, err := Compute(g, l, 1)
		if err != nil {
			return false
		}
		return s.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSlack(t *testing.T) {
	g := graph.PaperApp()
	s, _ := Compute(g, ones(g.NumEdges()), 1)
	slack := s.Slack(g)
	// c1 feeds T2 directly and is the only input: zero slack.
	if slack[1] != 0 {
		t.Errorf("c1 slack = %v, want 0", slack[1])
	}
	// c0 (T0 -> T5, 6 kb) finishes at 11k while T5 starts at 31k.
	if slack[0] != 20000 {
		t.Errorf("c0 slack = %v, want 20000", slack[0])
	}
	for ei, sl := range slack {
		if sl < 0 {
			t.Errorf("edge %d negative slack %v", ei, sl)
		}
	}
}

func TestValidateCatchesCorruptedSchedules(t *testing.T) {
	g := graph.PaperApp()
	fresh := func() *Schedule {
		s, err := Compute(g, ones(g.NumEdges()), 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"wrong shape", func(s *Schedule) { s.Comm = s.Comm[:2] }},
		{"task duration", func(s *Schedule) { s.TaskEnd[2] += 100 }},
		{"comm start", func(s *Schedule) { s.Comm[1].Start += 50 }},
		{"comm past consumer", func(s *Schedule) { s.Comm[1].End = s.TaskStart[2] + 1 }},
		{"makespan", func(s *Schedule) { s.MakespanCycles += 1 }},
	}
	for _, c := range cases {
		s := fresh()
		c.mut(s)
		if err := s.Validate(g); err == nil {
			t.Errorf("%s: corrupted schedule passed validation", c.name)
		}
	}
	if err := fresh().Validate(g); err != nil {
		t.Fatalf("pristine schedule failed validation: %v", err)
	}
}

func TestPlannerMatchesCompute(t *testing.T) {
	g := graph.PaperApp()
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Graph() != g {
		t.Fatal("planner lost its graph")
	}
	var scratch Schedule
	for _, lambdas := range [][]int{
		ones(g.NumEdges()),
		{1, 4, 2, 3, 2, 3},
		{8, 8, 8, 8, 8, 8},
	} {
		want, err := Compute(g, lambdas, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.ComputeInto(&scratch, lambdas, 1); err != nil {
			t.Fatal(err)
		}
		if scratch.MakespanCycles != want.MakespanCycles {
			t.Errorf("lambdas %v: makespan %v, want %v", lambdas, scratch.MakespanCycles, want.MakespanCycles)
		}
		for i := range want.Comm {
			if scratch.Comm[i] != want.Comm[i] {
				t.Errorf("lambdas %v: window %d = %+v, want %+v", lambdas, i, scratch.Comm[i], want.Comm[i])
			}
		}
		if err := scratch.Validate(g); err != nil {
			t.Errorf("lambdas %v: %v", lambdas, err)
		}
	}
}

func TestPlannerComputeIntoReusesStorage(t *testing.T) {
	g := graph.PaperApp()
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	var s Schedule
	lambdas := []int{1, 4, 2, 3, 2, 3}
	if err := pl.ComputeInto(&s, lambdas, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := pl.ComputeInto(&s, lambdas, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ComputeInto allocates %v objects per run, want 0", allocs)
	}
}

func TestPlannerComputeIntoRejectsBadInput(t *testing.T) {
	g := graph.PaperApp()
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	var s Schedule
	if err := pl.ComputeInto(&s, []int{1}, 1); err == nil {
		t.Error("short lambda vector must be rejected")
	}
	if err := pl.ComputeInto(&s, ones(g.NumEdges()), 0); err == nil {
		t.Error("zero bits per cycle must be rejected")
	}
	bad := ones(g.NumEdges())
	bad[0] = -1
	if err := pl.ComputeInto(&s, bad, 1); err == nil {
		t.Error("negative count must be rejected")
	}
	bad[0] = 0
	if err := pl.ComputeInto(&s, bad, 1); err == nil {
		t.Error("zero wavelengths on a loaded edge must be rejected")
	}
}

// sharedTestGraph is a 4-task, 2-core workload exercising every
// shared-core rule: a zero-cost self edge, core waits, and serialized
// same-core execution.
func sharedTestGraph() (*graph.TaskGraph, graph.Mapping) {
	g := &graph.TaskGraph{
		Tasks: []graph.Task{
			{Name: "T0", ExecCycles: 10},
			{Name: "T1", ExecCycles: 10},
			{Name: "T2", ExecCycles: 10},
			{Name: "T3", ExecCycles: 10},
		},
		Edges: []graph.Edge{
			{Name: "c0", Src: 0, Dst: 1, VolumeBits: 10},
			{Name: "c1", Src: 0, Dst: 2, VolumeBits: 10}, // self edge on core 0
			{Name: "c2", Src: 1, Dst: 3, VolumeBits: 10}, // self edge on core 1
			{Name: "c3", Src: 2, Dst: 3, VolumeBits: 10},
		},
	}
	return g, graph.Mapping{0, 1, 0, 1}
}

func TestSerializedSharedCoreSchedule(t *testing.T) {
	g, m := sharedTestGraph()
	p, err := NewPlannerMapped(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Shared() {
		t.Fatal("mapping shares core 0; planner must serialize")
	}
	if !p.SelfEdge(1) || !p.SelfEdge(2) || p.SelfEdge(0) || p.SelfEdge(3) {
		t.Fatal("self-edge detection wrong")
	}
	var s Schedule
	if err := p.ComputeInto(&s, []int{1, 0, 0, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Hand-computed: T0 [0,10); the self edge c1 is free so T2 runs
	// [10,20) on core 0; c0 delivers at 20 so T1 runs [20,30) on core
	// 1; c3 [20,30) and the free self edge c2 gate T3, which waits for
	// core 1 until 30: [30,40).
	wantStart := []float64{0, 20, 10, 30}
	wantEnd := []float64{10, 30, 20, 40}
	for tsk := range wantStart {
		if s.TaskStart[tsk] != wantStart[tsk] || s.TaskEnd[tsk] != wantEnd[tsk] {
			t.Errorf("task %d window [%v,%v), want [%v,%v)",
				tsk, s.TaskStart[tsk], s.TaskEnd[tsk], wantStart[tsk], wantEnd[tsk])
		}
	}
	if s.MakespanCycles != 40 {
		t.Errorf("makespan = %v, want 40", s.MakespanCycles)
	}
	if s.Comm[1].Duration() != 0 || s.Comm[2].Duration() != 0 {
		t.Errorf("self edges must have zero duration: %+v, %+v", s.Comm[1], s.Comm[2])
	}
	if err := s.ValidateCoreSerial(g, m); err != nil {
		t.Errorf("core-serial self-check: %v", err)
	}
	// A loaded non-self edge still needs a wavelength.
	if err := p.ComputeInto(&s, []int{0, 0, 1, 1}, 1); err == nil {
		t.Error("zero wavelengths on a loaded cross-core edge must fail")
	}
}

func TestSerializedIndependentTasksRunInIndexOrder(t *testing.T) {
	g := &graph.TaskGraph{
		Tasks: []graph.Task{{Name: "a", ExecCycles: 5}, {Name: "b", ExecCycles: 7}},
	}
	p, err := NewPlannerMapped(g, graph.Mapping{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var s Schedule
	if err := p.ComputeInto(&s, nil, 1); err != nil {
		t.Fatal(err)
	}
	if s.TaskStart[0] != 0 || s.TaskStart[1] != 5 || s.MakespanCycles != 12 {
		t.Errorf("equal-ready tasks must serialize by index: starts %v/%v, makespan %v",
			s.TaskStart[0], s.TaskStart[1], s.MakespanCycles)
	}
}

// TestSerializedInjectiveBitIdentical pins the compatibility
// guarantee: forcing the core-serialized dispatcher on an injective
// mapping reproduces the pre-change topological model bit for bit, so
// every reproduction number computed before this change stands.
func TestSerializedInjectiveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g, err := graph.Layered(rng, 3, 4, 0.5, graph.DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		m, err := graph.RandomMapping(rng, g, 16)
		if err != nil {
			t.Fatal(err)
		}
		lambdas := make([]int, g.NumEdges())
		for i := range lambdas {
			lambdas[i] = 1 + rng.Intn(6)
		}
		want, err := Compute(g, lambdas, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlannerMapped(g, m, 16)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shared() {
			t.Fatal("random injective mapping misclassified as shared")
		}
		// Force the serialized dispatcher the way a shared mapping
		// would take it.
		got := &Schedule{
			TaskStart: make([]float64, g.NumTasks()),
			TaskEnd:   make([]float64, g.NumTasks()),
			Comm:      make([]Window, g.NumEdges()),
		}
		p.shared = true
		p.computeSerialInto(got, lambdas, 1)
		for tsk := range want.TaskStart {
			if math.Float64bits(got.TaskStart[tsk]) != math.Float64bits(want.TaskStart[tsk]) ||
				math.Float64bits(got.TaskEnd[tsk]) != math.Float64bits(want.TaskEnd[tsk]) {
				t.Fatalf("trial %d task %d: serialized [%v,%v) vs model [%v,%v) not bit-identical",
					trial, tsk, got.TaskStart[tsk], got.TaskEnd[tsk], want.TaskStart[tsk], want.TaskEnd[tsk])
			}
		}
		for ei := range want.Comm {
			if math.Float64bits(got.Comm[ei].Start) != math.Float64bits(want.Comm[ei].Start) ||
				math.Float64bits(got.Comm[ei].End) != math.Float64bits(want.Comm[ei].End) {
				t.Fatalf("trial %d edge %d: windows differ", trial, ei)
			}
		}
		if math.Float64bits(got.MakespanCycles) != math.Float64bits(want.MakespanCycles) {
			t.Fatalf("trial %d: makespans differ: %v vs %v", trial, got.MakespanCycles, want.MakespanCycles)
		}
	}
}

func TestSerializedScheduleProperty(t *testing.T) {
	// Every core-serialized schedule on a random shared mapping passes
	// the full consistency check including core exclusivity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.Layered(rng, 4, 5, 0.4, graph.DefaultGenConfig())
		if err != nil {
			return false
		}
		m, err := graph.SharedRandomMapping(rng, g, 4)
		if err != nil {
			return false
		}
		p, err := NewPlannerMapped(g, m, 4)
		if err != nil {
			return false
		}
		l := make([]int, g.NumEdges())
		for i := range l {
			l[i] = 1 + rng.Intn(6)
		}
		var s Schedule
		if err := p.ComputeInto(&s, l, 1); err != nil {
			return false
		}
		return s.ValidateCoreSerial(g, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSerializedComputeIntoReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.Chain(rng, 40, graph.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.SharedRandomMapping(rng, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlannerMapped(g, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	lambdas := make([]int, g.NumEdges())
	for i := range lambdas {
		lambdas[i] = 1 + i%3
	}
	var s Schedule
	if err := p.ComputeInto(&s, lambdas, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.ComputeInto(&s, lambdas, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state shared-core ComputeInto allocates %v objects per run, want 0", allocs)
	}
}

func TestScheduleClone(t *testing.T) {
	g := graph.PaperApp()
	s, err := Compute(g, ones(g.NumEdges()), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.TaskEnd[0] += 1
	c.Comm[0].End += 1
	if s.TaskEnd[0] == c.TaskEnd[0] || s.Comm[0].End == c.Comm[0].End {
		t.Error("clone shares storage with the original")
	}
	if c.MakespanCycles != s.MakespanCycles {
		t.Error("clone lost the makespan")
	}
}
