// Package sched implements the paper's analytic time model
// (Section III-C, Eqs. 10-12): given a task graph and the number of
// wavelengths reserved per communication, it computes task start/end
// times, communication activity windows, and the global execution time
// (makespan). Communication time is V(d_jk) / (NW_jk * B), where B is
// the per-wavelength data rate in bits per clock cycle.
//
// The windows drive two consumers: the chromosome validity rule (two
// time-overlapping communications sharing waveguide segments must use
// disjoint wavelengths) and the crosstalk model (only simultaneously
// propagating wavelengths interfere).
package sched

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Window is a half-open activity interval [Start, End) in clock
// cycles.
type Window struct {
	Start, End float64
}

// Duration returns the window length in cycles.
func (w Window) Duration() float64 { return w.End - w.Start }

// Overlaps reports whether two half-open windows intersect. Zero
// length windows (zero-volume transfers) never overlap anything.
func (w Window) Overlaps(o Window) bool {
	if w.Start >= w.End || o.Start >= o.End {
		return false
	}
	return w.Start < o.End && o.Start < w.End
}

// Schedule is the result of the analytic time model.
type Schedule struct {
	// TaskStart and TaskEnd are per-task times in cycles.
	TaskStart, TaskEnd []float64
	// Comm holds the per-edge activity windows: a communication
	// starts the instant its producer finishes (Eq. 12's earliest
	// availability) and occupies its wavelengths for V/(NW*B)
	// cycles.
	Comm []Window
	// MakespanCycles is the global execution time of Eq. 11.
	MakespanCycles float64
}

// Planner is the reusable form of the time model: it caches the
// graph's topological order and predecessor/successor lists once so
// the GA's evaluation loop can recompute schedules for millions of
// wavelength count vectors without re-deriving (or re-allocating)
// either.
//
// A planner built by NewPlannerMapped additionally knows the
// task-to-core mapping. For injective mappings (the paper's
// Definition 3) the mapping is inert and the schedule is bit-identical
// to the unmapped model; for shared-core mappings ComputeInto switches
// to the core-serialized list schedule (see computeSerialInto).
//
// A Planner is NOT safe for concurrent use: the shared-core path
// dispatches through planner-owned scratch. Give each worker
// goroutine its own (as alloc.Evaluator already does).
type Planner struct {
	g     *graph.TaskGraph
	order []int
	preds [][]int
	succs [][]int

	// m is nil for unmapped planners. shared marks a non-injective
	// mapping; selfEdge[e] marks edges whose endpoint tasks share a
	// core (zero-cost, zero optical resources).
	m        graph.Mapping
	nCores   int
	shared   bool
	selfEdge []bool

	// Serialized-dispatch scratch, reused across ComputeInto calls so
	// the shared-core path stays allocation-free in steady state.
	pend     []int
	ready    []float64
	coreFree []float64
	cand     []int
}

// NewPlanner validates the graph's acyclicity and caches its
// traversal structure. The resulting planner is mapping-agnostic: it
// computes the paper's unserialized time model.
func NewPlanner(g *graph.TaskGraph) (*Planner, error) {
	return newPlanner(g, nil, 0)
}

// NewPlannerMapped builds a mapping-aware planner. The mapping may
// place several tasks on one core: such tasks are serialized on that
// core's timeline, and edges between same-core tasks cost zero time
// and zero wavelengths. Injective mappings reproduce NewPlanner's
// schedules bit for bit.
func NewPlannerMapped(g *graph.TaskGraph, m graph.Mapping, nCores int) (*Planner, error) {
	if err := m.Validate(g, nCores); err != nil {
		return nil, err
	}
	return newPlanner(g, m, nCores)
}

func newPlanner(g *graph.TaskGraph, m graph.Mapping, nCores int) (*Planner, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &Planner{g: g, order: order, preds: g.Preds(), succs: g.Succs(), m: m, nCores: nCores}
	if m != nil {
		p.shared = !m.Injective()
		p.selfEdge = make([]bool, g.NumEdges())
		for ei, e := range g.Edges {
			p.selfEdge[ei] = m[e.Src] == m[e.Dst]
		}
	}
	return p, nil
}

// Graph returns the planner's task graph.
func (p *Planner) Graph() *graph.TaskGraph { return p.g }

// SelfEdge reports whether edge e connects two tasks mapped onto the
// same core (always false for unmapped planners). Self edges need no
// wavelengths and have zero-length activity windows.
func (p *Planner) SelfEdge(e int) bool {
	return p.selfEdge != nil && p.selfEdge[e]
}

// Shared reports whether the planner's mapping places several tasks
// on one core, i.e. whether ComputeInto core-serializes.
func (p *Planner) Shared() bool { return p.shared }

// ComputeInto evaluates the time model into s, reusing its slices
// when their capacity suffices — a steady-state caller performs zero
// heap allocations. On error s is left in an unspecified state.
func (p *Planner) ComputeInto(s *Schedule, lambdas []int, bitsPerCycle float64) error {
	g := p.g
	if len(lambdas) != g.NumEdges() {
		return fmt.Errorf("sched: %d lambda counts for %d edges", len(lambdas), g.NumEdges())
	}
	if bitsPerCycle <= 0 {
		return fmt.Errorf("sched: bits per cycle must be positive, got %v", bitsPerCycle)
	}
	for e, n := range lambdas {
		if n < 0 {
			return fmt.Errorf("sched: edge %d has negative wavelength count %d", e, n)
		}
		// Self edges on a shared core never touch the optical layer,
		// so they are exempt from the one-wavelength minimum.
		if n == 0 && g.Edges[e].VolumeBits > 0 && !p.SelfEdge(e) {
			return fmt.Errorf("sched: edge %d carries %v bits over zero wavelengths", e, g.Edges[e].VolumeBits)
		}
	}
	s.TaskStart = grow(s.TaskStart, g.NumTasks())
	s.TaskEnd = grow(s.TaskEnd, g.NumTasks())
	s.Comm = grow(s.Comm, g.NumEdges())
	s.MakespanCycles = 0
	if p.shared {
		p.computeSerialInto(s, lambdas, bitsPerCycle)
		return nil
	}
	for _, t := range p.order {
		start := 0.0
		for _, ei := range p.preds[t] {
			e := g.Edges[ei]
			// The producer's completion gates the transfer; the
			// transfer's completion gates the consumer (Eq. 12).
			cs := s.TaskEnd[e.Src]
			d := 0.0
			if e.VolumeBits > 0 {
				d = e.VolumeBits / (float64(lambdas[ei]) * bitsPerCycle)
			}
			s.Comm[ei] = Window{Start: cs, End: cs + d}
			if s.Comm[ei].End > start {
				start = s.Comm[ei].End
			}
		}
		s.TaskStart[t] = start
		s.TaskEnd[t] = start + g.Tasks[t].ExecCycles
		if s.TaskEnd[t] > s.MakespanCycles {
			s.MakespanCycles = s.TaskEnd[t]
		}
	}
	return nil
}

// computeSerialInto is the core-serialized list schedule used for
// shared-core mappings. Each task still becomes data-ready when its
// last incoming communication delivers (the unmapped model's rule),
// but a core executes at most one task at a time: among the tasks
// waiting on a core, the one with the earliest (ready time, task
// index) runs next. Communications start the instant their producer
// finishes, exactly as in the unmapped model; edges between same-core
// tasks cost zero cycles and zero wavelengths.
//
// The greedy global dispatch below — repeatedly committing the
// candidate with the smallest (start, ready, index) — is equivalent to
// per-core event-driven dispatch: a task's ready time always exceeds
// the start time of its last-finishing predecessor, so no
// later-discovered candidate can ever preempt an earlier commitment.
// For injective mappings the core constraint never binds and every
// start equals the unmapped model's value bit for bit (pinned by
// TestSerializedInjectiveBitIdentical).
func (p *Planner) computeSerialInto(s *Schedule, lambdas []int, bitsPerCycle float64) {
	g := p.g
	n := g.NumTasks()
	p.pend = grow(p.pend, n)
	p.ready = grow(p.ready, n)
	p.coreFree = grow(p.coreFree, p.nCores)
	if cap(p.cand) < n {
		p.cand = make([]int, 0, n)
	}
	p.cand = p.cand[:0]
	for t := 0; t < n; t++ {
		p.pend[t] = len(p.preds[t])
		p.ready[t] = 0
		if p.pend[t] == 0 {
			p.cand = append(p.cand, t)
		}
	}
	for c := range p.coreFree {
		p.coreFree[c] = 0
	}
	for scheduled := 0; scheduled < n; scheduled++ {
		// Commit the candidate with the earliest start; ties resolve
		// by ready time then task index, so the schedule is a pure
		// function of the inputs.
		best, bestPos := -1, -1
		var bestStart, bestReady float64
		for pos, t := range p.cand {
			start := p.ready[t]
			if f := p.coreFree[p.m[t]]; f > start {
				start = f
			}
			if best == -1 || start < bestStart ||
				(start == bestStart && (p.ready[t] < bestReady ||
					(p.ready[t] == bestReady && t < best))) {
				best, bestPos, bestStart, bestReady = t, pos, start, p.ready[t]
			}
		}
		s.TaskStart[best] = bestStart
		end := bestStart + g.Tasks[best].ExecCycles
		s.TaskEnd[best] = end
		if end > s.MakespanCycles {
			s.MakespanCycles = end
		}
		p.coreFree[p.m[best]] = end
		p.cand[bestPos] = p.cand[len(p.cand)-1]
		p.cand = p.cand[:len(p.cand)-1]
		for _, ei := range p.succs[best] {
			e := g.Edges[ei]
			d := 0.0
			if e.VolumeBits > 0 && !p.selfEdge[ei] {
				d = e.VolumeBits / (float64(lambdas[ei]) * bitsPerCycle)
			}
			s.Comm[ei] = Window{Start: end, End: end + d}
			if s.Comm[ei].End > p.ready[e.Dst] {
				p.ready[e.Dst] = s.Comm[ei].End
			}
			p.pend[e.Dst]--
			if p.pend[e.Dst] == 0 {
				p.cand = append(p.cand, e.Dst)
			}
		}
	}
}

// grow returns a length-n slice reusing s's storage when it fits.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// ComputeInto is the single-shot form of Planner.ComputeInto: it
// re-derives the traversal order each call but still reuses s's
// slices. Callers with a fixed graph should hold a Planner instead.
func ComputeInto(s *Schedule, g *graph.TaskGraph, lambdas []int, bitsPerCycle float64) error {
	p, err := NewPlanner(g)
	if err != nil {
		return err
	}
	return p.ComputeInto(s, lambdas, bitsPerCycle)
}

// Compute evaluates the time model. lambdas[e] is the number of
// wavelengths reserved for edge e; every positive-volume edge needs at
// least one. bitsPerCycle is B; the paper-scale experiments use 1 bit
// per cycle per wavelength.
func Compute(g *graph.TaskGraph, lambdas []int, bitsPerCycle float64) (*Schedule, error) {
	s := &Schedule{}
	if err := ComputeInto(s, g, lambdas, bitsPerCycle); err != nil {
		return nil, err
	}
	return s, nil
}

// Clone deep-copies the schedule, detaching it from any scratch
// storage it was computed into.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		TaskStart:      append([]float64(nil), s.TaskStart...),
		TaskEnd:        append([]float64(nil), s.TaskEnd...),
		Comm:           append([]Window(nil), s.Comm...),
		MakespanCycles: s.MakespanCycles,
	}
	return c
}

// MinMakespanCycles is the infinite-bandwidth floor of the makespan:
// the task-graph critical path with all communication times at zero
// (the paper's "minimal execution time", 20 k-cc for the virtual
// application).
func MinMakespanCycles(g *graph.TaskGraph) (float64, error) {
	return g.CriticalPathCycles()
}

// Slack returns, for each edge, how many cycles its window could grow
// before delaying the start of its consumer task. Slack 0 marks the
// communications on the schedule's binding chain — the ones extra
// wavelengths actually accelerate.
func (s *Schedule) Slack(g *graph.TaskGraph) []float64 {
	slack := make([]float64, g.NumEdges())
	for ei, e := range g.Edges {
		slack[ei] = s.TaskStart[e.Dst] - s.Comm[ei].End
		if slack[ei] < 0 {
			// Numerical noise only; the schedule construction makes
			// TaskStart >= every incoming window end.
			slack[ei] = 0
		}
	}
	return slack
}

// ValidateCoreSerial cross-checks a core-serialized schedule: on top
// of Validate's invariants, no two tasks sharing a core may overlap
// in time. It exists for the simulator and the shared-core property
// tests.
func (s *Schedule) ValidateCoreSerial(g *graph.TaskGraph, m graph.Mapping) error {
	if err := s.Validate(g); err != nil {
		return err
	}
	if len(m) != g.NumTasks() {
		return fmt.Errorf("sched: mapping covers %d tasks, graph has %d", len(m), g.NumTasks())
	}
	const tol = 1e-6
	for i := 0; i < g.NumTasks(); i++ {
		for j := i + 1; j < g.NumTasks(); j++ {
			if m[i] != m[j] {
				continue
			}
			if s.TaskStart[i] < s.TaskEnd[j]-tol && s.TaskStart[j] < s.TaskEnd[i]-tol {
				return fmt.Errorf("sched: tasks %d [%v,%v) and %d [%v,%v) overlap on core %d",
					i, s.TaskStart[i], s.TaskEnd[i], j, s.TaskStart[j], s.TaskEnd[j], m[i])
			}
		}
	}
	return nil
}

// Validate cross-checks a schedule against its graph: windows start at
// producer completion, tasks start after every incoming window, and
// the makespan matches the latest task end. It exists for the
// simulator and property tests.
func (s *Schedule) Validate(g *graph.TaskGraph) error {
	if len(s.TaskEnd) != g.NumTasks() || len(s.Comm) != g.NumEdges() {
		return fmt.Errorf("sched: schedule shape mismatch")
	}
	const tol = 1e-6
	makespan := 0.0
	for t := range g.Tasks {
		if s.TaskEnd[t]-s.TaskStart[t]-g.Tasks[t].ExecCycles > tol ||
			g.Tasks[t].ExecCycles-(s.TaskEnd[t]-s.TaskStart[t]) > tol {
			return fmt.Errorf("sched: task %d duration mismatch", t)
		}
		makespan = math.Max(makespan, s.TaskEnd[t])
	}
	for ei, e := range g.Edges {
		if math.Abs(s.Comm[ei].Start-s.TaskEnd[e.Src]) > tol {
			return fmt.Errorf("sched: edge %d starts at %v, producer ends at %v", ei, s.Comm[ei].Start, s.TaskEnd[e.Src])
		}
		if s.Comm[ei].End-s.TaskStart[e.Dst] > tol {
			return fmt.Errorf("sched: edge %d ends after its consumer starts", ei)
		}
	}
	if math.Abs(makespan-s.MakespanCycles) > tol {
		return fmt.Errorf("sched: makespan %v, latest task end %v", s.MakespanCycles, makespan)
	}
	return nil
}
