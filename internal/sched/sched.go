// Package sched implements the paper's analytic time model
// (Section III-C, Eqs. 10-12): given a task graph and the number of
// wavelengths reserved per communication, it computes task start/end
// times, communication activity windows, and the global execution time
// (makespan). Communication time is V(d_jk) / (NW_jk * B), where B is
// the per-wavelength data rate in bits per clock cycle.
//
// The windows drive two consumers: the chromosome validity rule (two
// time-overlapping communications sharing waveguide segments must use
// disjoint wavelengths) and the crosstalk model (only simultaneously
// propagating wavelengths interfere).
package sched

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Window is a half-open activity interval [Start, End) in clock
// cycles.
type Window struct {
	Start, End float64
}

// Duration returns the window length in cycles.
func (w Window) Duration() float64 { return w.End - w.Start }

// Overlaps reports whether two half-open windows intersect. Zero
// length windows (zero-volume transfers) never overlap anything.
func (w Window) Overlaps(o Window) bool {
	if w.Start >= w.End || o.Start >= o.End {
		return false
	}
	return w.Start < o.End && o.Start < w.End
}

// Schedule is the result of the analytic time model.
type Schedule struct {
	// TaskStart and TaskEnd are per-task times in cycles.
	TaskStart, TaskEnd []float64
	// Comm holds the per-edge activity windows: a communication
	// starts the instant its producer finishes (Eq. 12's earliest
	// availability) and occupies its wavelengths for V/(NW*B)
	// cycles.
	Comm []Window
	// MakespanCycles is the global execution time of Eq. 11.
	MakespanCycles float64
}

// Planner is the reusable form of the time model: it caches the
// graph's topological order and predecessor lists once so the GA's
// evaluation loop can recompute schedules for millions of wavelength
// count vectors without re-deriving (or re-allocating) either.
type Planner struct {
	g     *graph.TaskGraph
	order []int
	preds [][]int
}

// NewPlanner validates the graph's acyclicity and caches its
// traversal structure.
func NewPlanner(g *graph.TaskGraph) (*Planner, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Planner{g: g, order: order, preds: g.Preds()}, nil
}

// Graph returns the planner's task graph.
func (p *Planner) Graph() *graph.TaskGraph { return p.g }

// ComputeInto evaluates the time model into s, reusing its slices
// when their capacity suffices — a steady-state caller performs zero
// heap allocations. On error s is left in an unspecified state.
func (p *Planner) ComputeInto(s *Schedule, lambdas []int, bitsPerCycle float64) error {
	g := p.g
	if len(lambdas) != g.NumEdges() {
		return fmt.Errorf("sched: %d lambda counts for %d edges", len(lambdas), g.NumEdges())
	}
	if bitsPerCycle <= 0 {
		return fmt.Errorf("sched: bits per cycle must be positive, got %v", bitsPerCycle)
	}
	for e, n := range lambdas {
		if n < 0 {
			return fmt.Errorf("sched: edge %d has negative wavelength count %d", e, n)
		}
		if n == 0 && g.Edges[e].VolumeBits > 0 {
			return fmt.Errorf("sched: edge %d carries %v bits over zero wavelengths", e, g.Edges[e].VolumeBits)
		}
	}
	s.TaskStart = grow(s.TaskStart, g.NumTasks())
	s.TaskEnd = grow(s.TaskEnd, g.NumTasks())
	s.Comm = grow(s.Comm, g.NumEdges())
	s.MakespanCycles = 0
	for _, t := range p.order {
		start := 0.0
		for _, ei := range p.preds[t] {
			e := g.Edges[ei]
			// The producer's completion gates the transfer; the
			// transfer's completion gates the consumer (Eq. 12).
			cs := s.TaskEnd[e.Src]
			d := 0.0
			if e.VolumeBits > 0 {
				d = e.VolumeBits / (float64(lambdas[ei]) * bitsPerCycle)
			}
			s.Comm[ei] = Window{Start: cs, End: cs + d}
			if s.Comm[ei].End > start {
				start = s.Comm[ei].End
			}
		}
		s.TaskStart[t] = start
		s.TaskEnd[t] = start + g.Tasks[t].ExecCycles
		if s.TaskEnd[t] > s.MakespanCycles {
			s.MakespanCycles = s.TaskEnd[t]
		}
	}
	return nil
}

// grow returns a length-n slice reusing s's storage when it fits.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// ComputeInto is the single-shot form of Planner.ComputeInto: it
// re-derives the traversal order each call but still reuses s's
// slices. Callers with a fixed graph should hold a Planner instead.
func ComputeInto(s *Schedule, g *graph.TaskGraph, lambdas []int, bitsPerCycle float64) error {
	p, err := NewPlanner(g)
	if err != nil {
		return err
	}
	return p.ComputeInto(s, lambdas, bitsPerCycle)
}

// Compute evaluates the time model. lambdas[e] is the number of
// wavelengths reserved for edge e; every positive-volume edge needs at
// least one. bitsPerCycle is B; the paper-scale experiments use 1 bit
// per cycle per wavelength.
func Compute(g *graph.TaskGraph, lambdas []int, bitsPerCycle float64) (*Schedule, error) {
	s := &Schedule{}
	if err := ComputeInto(s, g, lambdas, bitsPerCycle); err != nil {
		return nil, err
	}
	return s, nil
}

// Clone deep-copies the schedule, detaching it from any scratch
// storage it was computed into.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		TaskStart:      append([]float64(nil), s.TaskStart...),
		TaskEnd:        append([]float64(nil), s.TaskEnd...),
		Comm:           append([]Window(nil), s.Comm...),
		MakespanCycles: s.MakespanCycles,
	}
	return c
}

// MinMakespanCycles is the infinite-bandwidth floor of the makespan:
// the task-graph critical path with all communication times at zero
// (the paper's "minimal execution time", 20 k-cc for the virtual
// application).
func MinMakespanCycles(g *graph.TaskGraph) (float64, error) {
	return g.CriticalPathCycles()
}

// Slack returns, for each edge, how many cycles its window could grow
// before delaying the start of its consumer task. Slack 0 marks the
// communications on the schedule's binding chain — the ones extra
// wavelengths actually accelerate.
func (s *Schedule) Slack(g *graph.TaskGraph) []float64 {
	slack := make([]float64, g.NumEdges())
	for ei, e := range g.Edges {
		slack[ei] = s.TaskStart[e.Dst] - s.Comm[ei].End
		if slack[ei] < 0 {
			// Numerical noise only; the schedule construction makes
			// TaskStart >= every incoming window end.
			slack[ei] = 0
		}
	}
	return slack
}

// Validate cross-checks a schedule against its graph: windows start at
// producer completion, tasks start after every incoming window, and
// the makespan matches the latest task end. It exists for the
// simulator and property tests.
func (s *Schedule) Validate(g *graph.TaskGraph) error {
	if len(s.TaskEnd) != g.NumTasks() || len(s.Comm) != g.NumEdges() {
		return fmt.Errorf("sched: schedule shape mismatch")
	}
	const tol = 1e-6
	makespan := 0.0
	for t := range g.Tasks {
		if s.TaskEnd[t]-s.TaskStart[t]-g.Tasks[t].ExecCycles > tol ||
			g.Tasks[t].ExecCycles-(s.TaskEnd[t]-s.TaskStart[t]) > tol {
			return fmt.Errorf("sched: task %d duration mismatch", t)
		}
		makespan = math.Max(makespan, s.TaskEnd[t])
	}
	for ei, e := range g.Edges {
		if math.Abs(s.Comm[ei].Start-s.TaskEnd[e.Src]) > tol {
			return fmt.Errorf("sched: edge %d starts at %v, producer ends at %v", ei, s.Comm[ei].Start, s.TaskEnd[e.Src])
		}
		if s.Comm[ei].End-s.TaskStart[e.Dst] > tol {
			return fmt.Errorf("sched: edge %d ends after its consumer starts", ei)
		}
	}
	if math.Abs(makespan-s.MakespanCycles) > tol {
		return fmt.Errorf("sched: makespan %v, latest task end %v", s.MakespanCycles, makespan)
	}
	return nil
}
