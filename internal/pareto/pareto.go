// Package pareto provides multi-objective dominance utilities used by
// the NSGA-II engine and by the post-hoc analyses that regenerate the
// paper's figures: dominance tests, global front extraction,
// projections, and a 2D hypervolume indicator for ablation studies.
// All objectives are minimized, matching the paper's formulation
// (execution time, bit energy, BER).
package pareto

import (
	"fmt"
	"sort"
)

// Dominates reports whether point a Pareto-dominates point b under
// minimization: a is no worse in every objective and strictly better
// in at least one. Points must have equal dimension.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strictly := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strictly = true
		}
	}
	return strictly
}

// FrontIndices returns the indices of the non-dominated points, in
// their original order. Duplicate objective vectors are all kept (they
// dominate nothing and are dominated by nothing among themselves),
// matching how the paper counts "solutions on the Pareto front" from
// distinct genomes.
func FrontIndices(points [][]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// FrontIndices2D is an O(n log n) specialization for two objectives:
// sort by the first objective, sweep keeping the running minimum of
// the second. It matches FrontIndices on 2D inputs and makes the
// 100k-solution archives of Table II cheap to reduce.
func FrontIndices2D(points [][]float64) []int {
	type rec struct {
		x, y float64
		idx  int
	}
	rs := make([]rec, len(points))
	for i, p := range points {
		if len(p) != 2 {
			panic("pareto: FrontIndices2D needs 2D points")
		}
		rs[i] = rec{p[0], p[1], i}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].x != rs[j].x {
			return rs[i].x < rs[j].x
		}
		return rs[i].y < rs[j].y
	})
	var front []int
	bestY := 0.0
	for i := 0; i < len(rs); {
		// Group points sharing the same x; the group's candidates are
		// those matching its minimal y. They survive iff that y
		// strictly improves on the best y of any smaller-x group
		// (equal y at smaller x dominates via the x objective).
		j := i
		minY := rs[i].y
		for j < len(rs) && rs[j].x == rs[i].x {
			if rs[j].y < minY {
				minY = rs[j].y
			}
			j++
		}
		if len(front) == 0 || minY < bestY {
			for k := i; k < j; k++ {
				if rs[k].y == minY {
					front = append(front, rs[k].idx)
				}
			}
			bestY = minY
		}
		i = j
	}
	sort.Ints(front)
	return front
}

// Project extracts the chosen objective columns from each point,
// e.g. Project(points, 0, 2) maps (time, energy, ber) to (time, ber).
func Project(points [][]float64, dims ...int) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		row := make([]float64, len(dims))
		for k, d := range dims {
			row[k] = p[d]
		}
		out[i] = row
	}
	return out
}

// SortByObjective orders indices by the given objective of their
// points, ascending; ties broken by the next objectives then index.
func SortByObjective(points [][]float64, idx []int, obj int) {
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[obj] != pb[obj] {
			return pa[obj] < pb[obj]
		}
		for d := range pa {
			if pa[d] != pb[d] {
				return pa[d] < pb[d]
			}
		}
		return idx[a] < idx[b]
	})
}

// Hypervolume2D computes the dominated hypervolume of a 2D
// minimization front with respect to a reference point that must be
// dominated by every front point. Larger is better; the indicator is
// used by the GA ablation benches to compare configurations.
func Hypervolume2D(points [][]float64, ref [2]float64) float64 {
	front := FrontIndices2D(points)
	type xy struct{ x, y float64 }
	fs := make([]xy, 0, len(front))
	for _, i := range front {
		p := points[i]
		if p[0] > ref[0] || p[1] > ref[1] {
			continue // outside the reference box contributes nothing
		}
		fs = append(fs, xy{p[0], p[1]})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].x < fs[j].x })
	var hv float64
	prevY := ref[1]
	for _, p := range fs {
		if p.y < prevY {
			hv += (ref[0] - p.x) * (prevY - p.y)
			prevY = p.y
		}
	}
	return hv
}
