package pareto

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{1, 5, 3}, []float64{1, 5, 4}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestDominanceIsStrictPartialOrder(t *testing.T) {
	// Irreflexive and asymmetric, for random points.
	f := func(a, b [3]float64) bool {
		as, bs := a[:], b[:]
		if Dominates(as, as) {
			return false
		}
		if Dominates(as, bs) && Dominates(bs, as) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrontIndicesSmall(t *testing.T) {
	points := [][]float64{
		{1, 5},   // front
		{2, 4},   // front
		{3, 3},   // front
		{3, 5},   // dominated by {1,5}? no: equal y, worse x -> dominated
		{4, 4},   // dominated by {2,4} and {3,3}
		{0.5, 6}, // front
	}
	got := FrontIndices(points)
	want := []int{0, 1, 2, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("front = %v, want %v", got, want)
	}
}

func TestFrontKeepsDuplicates(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	got := FrontIndices(points)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("front = %v, want both duplicates", got)
	}
}

func TestFront2DMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		points := make([][]float64, n)
		for i := range points {
			// Coarse coordinates force plenty of ties.
			points[i] = []float64{float64(rng.Intn(10)), float64(rng.Intn(10))}
		}
		slow := FrontIndices(points)
		fast := FrontIndices2D(points)
		sort.Ints(slow)
		if !reflect.DeepEqual(slow, fast) {
			t.Fatalf("trial %d: general %v vs 2D %v for %v", trial, slow, fast, points)
		}
	}
}

func TestFront2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on 3D input")
		}
	}()
	FrontIndices2D([][]float64{{1, 2, 3}})
}

func TestProject(t *testing.T) {
	points := [][]float64{{1, 2, 3}, {4, 5, 6}}
	got := Project(points, 0, 2)
	want := [][]float64{{1, 3}, {4, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
}

func TestSortByObjective(t *testing.T) {
	points := [][]float64{{3, 1}, {1, 9}, {2, 5}, {1, 2}}
	idx := []int{0, 1, 2, 3}
	SortByObjective(points, idx, 0)
	want := []int{3, 1, 2, 0} // ties on obj 0 broken by obj 1
	if !reflect.DeepEqual(idx, want) {
		t.Errorf("sorted = %v, want %v", idx, want)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point {1,1} against ref {3,3}: box 2x2.
	hv := Hypervolume2D([][]float64{{1, 1}}, [2]float64{3, 3})
	if hv != 4 {
		t.Errorf("hv = %v, want 4", hv)
	}
	// Staircase front.
	hv = Hypervolume2D([][]float64{{1, 2}, {2, 1}}, [2]float64{3, 3})
	// (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3.
	if hv != 3 {
		t.Errorf("staircase hv = %v, want 3", hv)
	}
	// Dominated points do not add volume.
	hv2 := Hypervolume2D([][]float64{{1, 2}, {2, 1}, {2.5, 2.5}}, [2]float64{3, 3})
	if hv2 != hv {
		t.Errorf("dominated point changed hv: %v vs %v", hv2, hv)
	}
	// Points outside the reference box contribute nothing.
	hv3 := Hypervolume2D([][]float64{{1, 2}, {2, 1}, {5, 0.5}}, [2]float64{3, 3})
	if hv3 != hv {
		t.Errorf("outside point changed hv: %v vs %v", hv3, hv)
	}
}

func TestHypervolumeMonotoneUnderImprovement(t *testing.T) {
	// Improving any front point can only grow the hypervolume.
	base := [][]float64{{2, 2}, {1, 3}}
	better := [][]float64{{2, 1.5}, {1, 3}}
	ref := [2]float64{4, 4}
	if Hypervolume2D(better, ref) <= Hypervolume2D(base, ref) {
		t.Error("hypervolume must grow when a point improves")
	}
}

func TestFrontOfEmptyAndSingle(t *testing.T) {
	if got := FrontIndices(nil); len(got) != 0 {
		t.Errorf("front of empty = %v", got)
	}
	if got := FrontIndices2D([][]float64{{1, 2}}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("front of single = %v", got)
	}
}
