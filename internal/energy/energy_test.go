package energy

import (
	"math"
	"testing"

	"repro/internal/phys"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	m := Default()
	m.Duty = 0
	if err := m.Validate(); err == nil {
		t.Error("zero duty must fail")
	}
	m = Default()
	m.Duty = 1.5
	if err := m.Validate(); err == nil {
		t.Error("duty > 1 must fail")
	}
	m = Default()
	m.ClockGHz = -1
	if err := m.Validate(); err == nil {
		t.Error("negative clock must fail")
	}
}

func TestLaserPowerCompensatesLoss(t *testing.T) {
	m := Default()
	// Lossless link: average power is duty * 10^(-13/10) mW.
	p0 := float64(m.LaserPowerMW(0))
	want := 0.5 * math.Pow(10, -1.3)
	if math.Abs(p0-want) > 1e-12 {
		t.Errorf("lossless laser power = %v mW, want %v", p0, want)
	}
	// A 3 dB link needs twice the power.
	p3 := float64(m.LaserPowerMW(-3.0103))
	if math.Abs(p3/p0-2) > 1e-3 {
		t.Errorf("3 dB loss should double the power: %v vs %v", p3, p0)
	}
}

func TestLaserPowerMonotoneInLoss(t *testing.T) {
	m := Default()
	prev := phys.MilliWatt(0)
	for loss := phys.DB(0); loss >= -10; loss -= 0.5 {
		p := m.LaserPowerMW(loss)
		if p <= prev {
			t.Fatalf("power must grow with loss: %v mW at %v dB", p, loss)
		}
		prev = p
	}
}

func TestCommEnergyCalibration(t *testing.T) {
	// Single wavelength, 1.5 dB link, one bit per cycle at 10 GHz:
	// the paper-scale baseline should land near 3.5 fJ/bit.
	m := Default()
	volume := 8000.0
	duration := volume // one wavelength, 1 bit/cycle
	fj := m.CommEnergyFJ([]phys.DB{-1.5}, duration)
	perBit := BitEnergyFJ(fj, volume)
	if perBit < 3 || perBit > 4.5 {
		t.Errorf("baseline bit energy = %v fJ/bit, want ~3.5 (paper's floor)", perBit)
	}
}

func TestMoreWavelengthsWithSameLossKeepBitEnergy(t *testing.T) {
	// Splitting a transfer over n equal-loss wavelengths leaves the
	// energy per bit unchanged: duration shrinks by n, power grows by
	// n. The increase in Fig. 6(a) comes only from the extra ON-ring
	// losses, which the allocation layer feeds through lossesDB.
	m := Default()
	volume := 8000.0
	one := BitEnergyFJ(m.CommEnergyFJ([]phys.DB{-2}, volume), volume)
	four := BitEnergyFJ(m.CommEnergyFJ([]phys.DB{-2, -2, -2, -2}, volume/4), volume)
	if math.Abs(one-four) > 1e-9 {
		t.Errorf("equal-loss split changed bit energy: %v vs %v", one, four)
	}
}

func TestExtraOnRingLossRaisesBitEnergy(t *testing.T) {
	// Same split, but the later wavelengths pay Lp1 per earlier ON
	// ring (the physical situation at a WDM destination): bit energy
	// must rise.
	m := Default()
	volume := 8000.0
	flat := BitEnergyFJ(m.CommEnergyFJ([]phys.DB{-2, -2, -2, -2}, volume/4), volume)
	stair := BitEnergyFJ(m.CommEnergyFJ([]phys.DB{-2, -2.5, -3, -3.5}, volume/4), volume)
	if stair <= flat {
		t.Errorf("staircase losses must cost more: %v vs %v fJ/bit", stair, flat)
	}
}

func TestCommEnergyScalesWithDuration(t *testing.T) {
	m := Default()
	e1 := m.CommEnergyFJ([]phys.DB{-1}, 1000)
	e2 := m.CommEnergyFJ([]phys.DB{-1}, 2000)
	if math.Abs(e2-2*e1) > 1e-9 {
		t.Errorf("energy must be linear in duration: %v vs %v", e1, e2)
	}
}

func TestBitEnergyDegenerate(t *testing.T) {
	if got := BitEnergyFJ(100, 0); got != 0 {
		t.Errorf("zero bits bit-energy = %v, want 0", got)
	}
}

func TestLaserPowerForBERScalesWithNoise(t *testing.T) {
	m := Default()
	m.BERTarget = 1e-9
	quiet := m.LaserPowerForBERMW(-2, 0.0005, 0.001)
	noisy := m.LaserPowerForBERMW(-2, 0.005, 0.001)
	if noisy <= quiet {
		t.Errorf("more crosstalk must demand more power: %v vs %v", noisy, quiet)
	}
	// Power is linear in (noise + p0).
	ratio := float64(noisy) / float64(quiet)
	want := (0.005 + 0.001) / (0.0005 + 0.001)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("scaling ratio %v, want %v", ratio, want)
	}
}

func TestLaserPowerForBERScalesWithLoss(t *testing.T) {
	m := Default()
	m.BERTarget = 1e-9
	short := m.LaserPowerForBERMW(-1, 0.001, 0.001)
	long := m.LaserPowerForBERMW(-4, 0.001, 0.001)
	if long <= short {
		t.Errorf("lossier link must demand more power: %v vs %v", long, short)
	}
	// Fully blocked link needs infinite power.
	if !math.IsInf(float64(m.LaserPowerForBERMW(phys.DB(math.Inf(-1)), 0.001, 0.001)), 1) {
		t.Error("a dark link must demand infinite power")
	}
}

func TestWavelengthLaserDispatch(t *testing.T) {
	m := Default()
	fixed := m.WavelengthLaserMW(-2, 0.005, 0.001)
	if fixed != m.LaserPowerMW(-2) {
		t.Error("zero target must use the fixed receive-power model")
	}
	m.BERTarget = 1e-9
	adaptive := m.WavelengthLaserMW(-2, 0.005, 0.001)
	if adaptive != m.LaserPowerForBERMW(-2, 0.005, 0.001) {
		t.Error("positive target must use the BER-target model")
	}
}

func TestValidateBERTarget(t *testing.T) {
	m := Default()
	m.BERTarget = 0.6
	if err := m.Validate(); err == nil {
		t.Error("BER target >= 0.5 must fail")
	}
	m.BERTarget = -1
	if err := m.Validate(); err == nil {
		t.Error("negative BER target must fail")
	}
	m.BERTarget = 1e-9
	if err := m.Validate(); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
}

func TestEnergyFJMatchesCommEnergy(t *testing.T) {
	m := Default()
	losses := []phys.DB{-1, -2, -3}
	powers := make([]phys.MilliWatt, len(losses))
	for i, l := range losses {
		powers[i] = m.LaserPowerMW(l)
	}
	a := m.CommEnergyFJ(losses, 4000)
	b := m.EnergyFJ(powers, 4000)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("CommEnergyFJ %v vs EnergyFJ %v", a, b)
	}
}
