// Package energy implements the bit-energy model of the reproduction.
//
// The paper plots "bit energy" in fJ/bit (Fig. 6(a)) and explains its
// growth with the number of reserved wavelengths by "the additional
// ON-state MRs suffering from more propagation loss in the
// architecture", but never prints the energy equation itself. We
// therefore model the laser emission energy needed to deliver a fixed
// target power at the photodetector through the allocated link:
//
//	P_laser(lambda) = P_rx-target / eta_link(lambda)
//
// where eta_link is the linear transmission of the path (propagation,
// bends, every OFF- and ON-state micro-ring crossed — so a wavelength
// sitting behind more ON drops of its own communication needs more
// power), and the average emitted power accounts for the OOK duty
// cycle. Energy per communication is the summed average laser power
// of its wavelengths times the transfer duration; the figure-of-merit
// divides by the bits moved. See DESIGN.md section 5 for the
// calibration discussion.
package energy

import (
	"fmt"
	"math"

	"repro/internal/phys"
)

// Model holds the calibration constants of the bit-energy model.
type Model struct {
	// RxTargetDBm is the optical power each wavelength must deliver
	// at its photodetector. -13 dBm lands the all-ones allocation of
	// the paper's application at ~3.5 fJ/bit, the bottom of Fig. 6(a).
	RxTargetDBm phys.DBm
	// Duty is the OOK mark ratio: the fraction of bits that are 1s
	// and so carry the full laser power (0.5 for balanced data).
	Duty float64
	// ClockGHz converts schedule cycles to time: the optical layer
	// runs at 10 GHz, so one cycle moves one bit per wavelength at
	// 10 Gb/s.
	ClockGHz float64
	// BERTarget, when positive, switches the laser sizing from the
	// fixed receive-power target to BER-target mode: each wavelength
	// emits just enough power for its detector to reach the target
	// BER in its crosstalk environment — the paper's introduction
	// ("inter-channel crosstalk leads to an increase of the laser
	// power when a specific BER is targeted") made operational.
	BERTarget float64
}

// Default returns the calibration used by all paper-reproduction
// experiments.
func Default() Model {
	return Model{RxTargetDBm: -13, Duty: 0.5, ClockGHz: 10}
}

// Validate rejects non-physical calibrations.
func (m Model) Validate() error {
	if m.Duty <= 0 || m.Duty > 1 {
		return fmt.Errorf("energy: duty %v outside (0,1]", m.Duty)
	}
	if m.ClockGHz <= 0 {
		return fmt.Errorf("energy: clock %v GHz must be positive", m.ClockGHz)
	}
	if m.BERTarget < 0 || m.BERTarget >= 0.5 {
		return fmt.Errorf("energy: BER target %v outside [0, 0.5)", m.BERTarget)
	}
	return nil
}

// LaserPowerMW returns the average emitted laser power (in mW) needed
// on a wavelength whose end-to-end link loss is lossDB (a negative dB
// value): the receive target divided by the link transmission, scaled
// by the duty cycle.
func (m Model) LaserPowerMW(lossDB phys.DB) phys.MilliWatt {
	peak := m.RxTargetDBm.Add(-lossDB).MilliWatt() // compensate the loss
	return phys.MilliWatt(m.Duty * float64(peak))
}

// LaserPowerForBERMW sizes the average laser power of a wavelength so
// that its detector reaches the model's BER target given the
// first-order crosstalk noise and the 0-level residue at that
// detector (both in linear mW, evaluated at the nominal laser level):
// the peak power must deliver SNRForBER(target) times the noise floor
// through the link's transmission.
func (m Model) LaserPowerForBERMW(lossDB phys.DB, noise, p0 phys.MilliWatt) phys.MilliWatt {
	snr := phys.SNRForBER(m.BERTarget)
	needAtDetector := snr * (float64(noise) + float64(p0))
	transmission := lossDB.Linear()
	if transmission <= 0 {
		return phys.MilliWatt(math.Inf(1))
	}
	return phys.MilliWatt(m.Duty * needAtDetector / transmission)
}

// WavelengthLaserMW dispatches between the fixed receive-power sizing
// and BER-target sizing according to the model mode.
func (m Model) WavelengthLaserMW(lossDB phys.DB, noise, p0 phys.MilliWatt) phys.MilliWatt {
	if m.BERTarget > 0 {
		return m.LaserPowerForBERMW(lossDB, noise, p0)
	}
	return m.LaserPowerMW(lossDB)
}

// EnergyFJ converts summed average laser powers held for a window
// into femtojoules.
func (m Model) EnergyFJ(avgPowers []phys.MilliWatt, durationCycles float64) float64 {
	var totalMW float64
	for _, p := range avgPowers {
		totalMW += float64(p)
	}
	ns := durationCycles / m.ClockGHz
	// 1 mW * 1 ns = 1 pJ = 1000 fJ.
	return totalMW * ns * 1000
}

// CommEnergyFJ returns the laser energy (femtojoules) spent moving one
// communication in fixed receive-power mode: the summed average power
// of its wavelengths times the transfer duration. lossesDB carries
// the per-wavelength end-to-end link loss; durationCycles is the
// window length from the schedule.
func (m Model) CommEnergyFJ(lossesDB []phys.DB, durationCycles float64) float64 {
	powers := make([]phys.MilliWatt, len(lossesDB))
	for i, l := range lossesDB {
		powers[i] = m.LaserPowerMW(l)
	}
	return m.EnergyFJ(powers, durationCycles)
}

// BitEnergyFJ aggregates communication energies into the figure of
// merit of Fig. 6(a): total laser femtojoules per transmitted bit.
func BitEnergyFJ(totalFJ, totalBits float64) float64 {
	if totalBits <= 0 {
		return 0
	}
	return totalFJ / totalBits
}
