package nsga2

import "fmt"

// This file holds the engine surface the island model builds on:
// deterministic emigrant selection (TopGenomes), deterministic
// immigrant absorption (InjectGenomes), and the merge of several
// island runs into one result (MergeResults). The island driver
// itself lives in internal/core — here are only the engine-level
// primitives, each of them PRNG-free so that migration never
// perturbs an island's replayable random trajectory.

// TopGenomes returns copies of the first k distinct genomes of the
// current population. The population is ranked (front by front, in
// the deterministic reference member order), so the returned set is
// the population's best k distinct individuals — the emigrants of the
// island model. Fewer than k distinct genomes returns what exists.
// The selection reads no randomness: for a given engine state it is
// always the same.
func (e *Engine) TopGenomes(k int) [][]byte {
	if k <= 0 {
		return nil
	}
	out := make([][]byte, 0, k)
	seen := make(map[string]bool, k)
	for _, ind := range e.pop {
		key := string(ind.Genome)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, append([]byte(nil), ind.Genome...))
		if len(out) == k {
			break
		}
	}
	return out
}

// InjectGenomes absorbs foreign genomes (the island model's
// immigrants) into the population: each genome is evaluated through
// the dedup cache, appended to the current population, and the
// merged set is put through the usual elitist survival truncation
// back to the population size. The engine's PRNG is not consulted —
// injection is deterministic for a given (state, genomes) pair — and
// the generation counter does not advance, so a checkpoint written
// afterwards resumes exactly like any other.
func (e *Engine) InjectGenomes(genomes [][]byte) error {
	if len(genomes) == 0 {
		return nil
	}
	if len(genomes) > e.size {
		return fmt.Errorf("nsga2: injecting %d genomes exceeds population size %d", len(genomes), e.size)
	}
	for gi, g := range genomes {
		if len(g) != e.gl {
			return fmt.Errorf("nsga2: injected genome %d has %d genes, want %d", gi, len(g), e.gl)
		}
	}
	// Immigrants are staged in the offspring slab (unused between
	// Steps) so evaluation and survival run on arena-backed rows like
	// any generation's offspring.
	e.rowRefs = e.rowRefs[:0]
	for gi, g := range genomes {
		row := e.offRow(gi)
		copy(row, g)
		e.rowRefs = append(e.rowRefs, row)
	}
	e.evaluateBatch(e.rowRefs, nil, e.offBuf)
	m := append(e.merged[:0], e.pop...)
	m = append(m, e.offBuf[:len(genomes)]...)
	e.pop = e.surviveInto(m)
	return nil
}

// MergeResults folds several independent runs over one problem (the
// island model's per-island results) into a single Result:
//
//   - Final is the concatenation of the final populations in island
//     order, re-ranked with the reference non-dominated sort, so
//     rank 0 is the globally non-dominated set across islands.
//   - Archive is the island-major concatenation deduplicated by
//     genome (first occurrence wins; evaluation is deterministic, so
//     duplicates carry identical vectors either way).
//   - Evaluations and ValidEvaluations sum the per-island work;
//     DistinctEvaluated / DistinctValid are recomputed from the
//     deduplicated archive (islands may evaluate overlapping
//     genotypes, so the per-island counts do not simply add).
//
// Every step is deterministic in the input order, which the island
// driver fixes by island index.
func MergeResults(rs ...*Result) *Result {
	merged := &Result{}
	seen := make(map[string]bool)
	for _, r := range rs {
		merged.Final = append(merged.Final, r.Final...)
		merged.Evaluations += r.Evaluations
		merged.ValidEvaluations += r.ValidEvaluations
		for _, e := range r.Archive {
			key := string(e.Genome)
			if seen[key] {
				continue
			}
			seen[key] = true
			merged.Archive = append(merged.Archive, e)
			merged.DistinctEvaluated++
			if e.Feasible() {
				merged.DistinctValid++
			}
		}
	}
	sortPopulation(merged.Final)
	return merged
}

// Sub returns the counter-wise difference s - o: the instrumentation
// attributable to the work between two snapshots (e.g. one island
// segment).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Evaluations:       s.Evaluations - o.Evaluations,
		CacheHits:         s.CacheHits - o.CacheHits,
		WarmHits:          s.WarmHits - o.WarmHits,
		RelationsCompared: s.RelationsCompared - o.RelationsCompared,
		Eval: EvalStats{
			Full:       s.Eval.Full - o.Eval.Full,
			GeneDelta:  s.Eval.GeneDelta - o.Eval.GeneDelta,
			NearDelta:  s.Eval.NearDelta - o.Eval.NearDelta,
			CrossDelta: s.Eval.CrossDelta - o.Eval.CrossDelta,
		},
	}
}

// Add returns the counter-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Evaluations:       s.Evaluations + o.Evaluations,
		CacheHits:         s.CacheHits + o.CacheHits,
		WarmHits:          s.WarmHits + o.WarmHits,
		RelationsCompared: s.RelationsCompared + o.RelationsCompared,
		Eval: EvalStats{
			Full:       s.Eval.Full + o.Eval.Full,
			GeneDelta:  s.Eval.GeneDelta + o.Eval.GeneDelta,
			NearDelta:  s.Eval.NearDelta + o.Eval.NearDelta,
			CrossDelta: s.Eval.CrossDelta + o.Eval.CrossDelta,
		},
	}
}
