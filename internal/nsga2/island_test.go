package nsga2

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// loadFlat copies a population's objective vectors and packed
// violation words into the engine's SoA dominance buffers, the way
// rankAndCrowd does before front building.
func loadFlat(e *Engine, pop []Individual) {
	for i, ind := range pop {
		e.vfW[i] = math.Float64bits(ind.Violation)
		for k := 0; k < e.nObj && k < len(ind.Objs); k++ {
			e.objCol[k][i] = ind.Objs[k]
		}
	}
}

// TestRelationMatchesDominates pins the unrolled pair relation —
// including the 2/3/4-objective fast paths — to the reference
// dominates evaluated in both directions, on populations mixing
// feasible, infeasible, duplicate and NaN-carrying individuals.
func TestRelationMatchesDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		m := 1 + rng.Intn(6) // covers the unrolled widths and the generic fallback
		pop := randomPopulation(rng, n, m)
		for i := range pop {
			if rng.Intn(8) == 0 {
				pop[i].Objs[rng.Intn(m)] = math.NaN()
			}
		}
		e := scratchEngine(n, m)
		loadFlat(e, pop)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0
				switch {
				case dominates(pop[i], pop[j]):
					want = 1
				case dominates(pop[j], pop[i]):
					want = -1
				}
				if got := e.relation(i, j); got != want {
					t.Logf("relation(%d,%d)=%d want %d (m=%d, i=%+v, j=%+v)",
						i, j, got, want, m, pop[i], pop[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkRelation measures the pair relation at each unrolled width
// and at the generic-fallback width, over a feasible population with
// tie-heavy objective vectors (the shape that defeats the early exit).
func BenchmarkRelation(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		name := map[int]string{2: "m2", 3: "m3", 4: "m4", 5: "m5-generic"}[m]
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			const n = 64
			pop := make([]Individual, n)
			for i := range pop {
				objs := make([]float64, m)
				for k := range objs {
					objs[k] = float64(rng.Intn(4))
				}
				pop[i] = Individual{Objs: objs}
			}
			e := scratchEngine(n, m)
			loadFlat(e, pop)
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for it := 0; it < b.N; it++ {
				i := it % n
				j := (it * 31) % n
				sink += e.relation(i, j)
			}
			if sink == math.MaxInt {
				b.Fatal("unreachable")
			}
		})
	}
}

// BenchmarkRelationBatch measures one individual against a 64-wide
// block of opponents, batch kernel vs the scalar relation looped over
// the same block — the exact comparison CI's relative-speed gate
// enforces (batch < scalar within the run). Tie-heavy feasible
// vectors defeat the early exit, so both sides do full-width work.
func BenchmarkRelationBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const n, m = 64, 3
	pop := make([]Individual, n)
	for i := range pop {
		objs := make([]float64, m)
		for k := range objs {
			objs[k] = float64(rng.Intn(4))
		}
		pop[i] = Individual{Objs: objs}
	}
	js := make([]int32, n)
	for j := range js {
		js[j] = int32(j)
	}
	b.Run("batch", func(b *testing.B) {
		e := scratchEngine(n, m)
		loadFlat(e, pop)
		e.ensureBatchScratch(n)
		out := make([]int8, n)
		b.ReportAllocs()
		b.ResetTimer()
		sink := int8(0)
		for it := 0; it < b.N; it++ {
			e.relationBatch(it%n, js, out)
			sink += out[it%n]
		}
		if sink == math.MaxInt8 {
			b.Fatal("unreachable")
		}
	})
	b.Run("scalar", func(b *testing.B) {
		e := scratchEngine(n, m)
		loadFlat(e, pop)
		out := make([]int8, n)
		b.ReportAllocs()
		b.ResetTimer()
		sink := int8(0)
		for it := 0; it < b.N; it++ {
			i := it % n
			for idx, j := range js {
				out[idx] = int8(e.relation(i, int(j)))
			}
			sink += out[i]
		}
		if sink == math.MaxInt8 {
			b.Fatal("unreachable")
		}
	})
}

func newTestEngine(t *testing.T, n, pop, gens int, seed int64) *Engine {
	t.Helper()
	e, err := NewEngine(twoMin(n), Config{PopSize: pop, Generations: gens, Seed: seed, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTopGenomesDistinctPrefix: the emigrant set is the first k
// distinct genomes of the ranked population, copied (mutating the
// returned slices must not touch engine state), and repeat calls on an
// unchanged engine agree.
func TestTopGenomesDistinctPrefix(t *testing.T) {
	e := newTestEngine(t, 12, 20, 0, 9)
	for g := 0; g < 6; g++ {
		e.Step()
	}
	top := e.TopGenomes(5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("TopGenomes(5) returned %d genomes", len(top))
	}
	seen := map[string]bool{}
	for _, g := range top {
		if len(g) != 12 {
			t.Fatalf("emigrant genome length %d, want 12", len(g))
		}
		if seen[string(g)] {
			t.Fatalf("duplicate emigrant %v", g)
		}
		seen[string(g)] = true
	}
	// The set must be the distinct-prefix of the ranked population.
	want := [][]byte{}
	wseen := map[string]bool{}
	for _, ind := range e.Population() {
		if wseen[string(ind.Genome)] {
			continue
		}
		wseen[string(ind.Genome)] = true
		want = append(want, ind.Genome)
		if len(want) == 5 {
			break
		}
	}
	for i := range top {
		if !bytes.Equal(top[i], want[i]) {
			t.Fatalf("emigrant %d = %v, want %v", i, top[i], want[i])
		}
	}
	// Returned genomes are copies.
	top[0][0] ^= 1
	again := e.TopGenomes(5)
	if !bytes.Equal(again[0], want[0]) {
		t.Fatal("TopGenomes returned aliases into engine state")
	}
	if e.TopGenomes(0) != nil {
		t.Fatal("TopGenomes(0) should be nil")
	}
}

// TestInjectGenomesDeterministicNoDraws: injection consumes zero PRNG
// draws, leaves the generation counter alone, and two engines with
// identical histories that inject the same immigrants stay in
// lockstep through further Steps — the determinism contract the
// island model's migration relies on.
func TestInjectGenomesDeterministicNoDraws(t *testing.T) {
	mk := func() *Engine { return newTestEngine(t, 10, 16, 0, 3) }
	a, b := mk(), mk()
	for g := 0; g < 4; g++ {
		a.Step()
		b.Step()
	}
	imm := [][]byte{
		bytes.Repeat([]byte{0}, 10),
		{0, 0, 0, 0, 0, 1, 1, 1, 1, 1},
	}
	drawsBefore, genBefore, evalsBefore := a.src.n, a.gen, a.evals
	if err := a.InjectGenomes(imm); err != nil {
		t.Fatal(err)
	}
	if a.src.n != drawsBefore {
		t.Fatalf("injection consumed %d PRNG draws, want 0", a.src.n-drawsBefore)
	}
	if a.gen != genBefore {
		t.Fatalf("injection advanced generation %d -> %d", genBefore, a.gen)
	}
	if a.evals != evalsBefore+int(len(imm)) {
		t.Fatalf("injection counted %d evaluations, want %d", a.evals-evalsBefore, len(imm))
	}
	if err := b.InjectGenomes(imm); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		a.Step()
		b.Step()
	}
	pa, pb := a.Population(), b.Population()
	if len(pa) != len(pb) {
		t.Fatalf("population sizes diverged: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if !bytes.Equal(pa[i].Genome, pb[i].Genome) || pa[i].Rank != pb[i].Rank {
			t.Fatalf("populations diverged at %d after identical injection", i)
		}
	}
	// An injected dominator must survive into the population.
	best := append(bytes.Repeat([]byte{0}, 5), bytes.Repeat([]byte{1}, 5)...)
	if err := a.InjectGenomes([][]byte{best}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ind := range a.Population() {
		if bytes.Equal(ind.Genome, best) {
			found = true
		}
	}
	if !found {
		t.Fatal("injected optimum missing from survived population")
	}
}

func TestInjectGenomesValidation(t *testing.T) {
	e := newTestEngine(t, 8, 10, 0, 1)
	if err := e.InjectGenomes(nil); err != nil {
		t.Fatalf("empty injection: %v", err)
	}
	if err := e.InjectGenomes([][]byte{make([]byte, 7)}); err == nil {
		t.Fatal("wrong genome length accepted")
	}
	too := make([][]byte, 11)
	for i := range too {
		too[i] = make([]byte, 8)
	}
	if err := e.InjectGenomes(too); err == nil {
		t.Fatal("oversized immigrant batch accepted")
	}
}

// TestMergeResultsDedupAndRank: merged counters sum the work, the
// archive deduplicates by genome in island-major order, distinct
// counts are recomputed from the deduplicated archive, and the merged
// final population is re-ranked so rank 0 is globally non-dominated.
func TestMergeResultsDedupAndRank(t *testing.T) {
	r1, err := Run(twoMin(10), Config{PopSize: 12, Generations: 6, Seed: 1, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(twoMin(10), Config{PopSize: 12, Generations: 6, Seed: 2, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	m := MergeResults(r1, r2)
	if m.Evaluations != r1.Evaluations+r2.Evaluations {
		t.Fatalf("Evaluations = %d, want %d", m.Evaluations, r1.Evaluations+r2.Evaluations)
	}
	if m.ValidEvaluations != r1.ValidEvaluations+r2.ValidEvaluations {
		t.Fatal("ValidEvaluations not summed")
	}
	if len(m.Final) != len(r1.Final)+len(r2.Final) {
		t.Fatalf("Final length %d, want %d", len(m.Final), len(r1.Final)+len(r2.Final))
	}
	seen := map[string]bool{}
	valid := 0
	for _, e := range m.Archive {
		if seen[string(e.Genome)] {
			t.Fatalf("duplicate genome %v in merged archive", e.Genome)
		}
		seen[string(e.Genome)] = true
		if e.Feasible() {
			valid++
		}
	}
	if m.DistinctEvaluated != len(m.Archive) {
		t.Fatalf("DistinctEvaluated = %d, want %d", m.DistinctEvaluated, len(m.Archive))
	}
	if m.DistinctValid != valid {
		t.Fatalf("DistinctValid = %d, want %d", m.DistinctValid, valid)
	}
	// Island-major dedup: every r1 archive genome appears, in order,
	// as a prefix subsequence of the merged archive.
	for i, e := range r1.Archive {
		if !bytes.Equal(m.Archive[i].Genome, e.Genome) {
			t.Fatalf("merged archive not island-major at %d", i)
		}
	}
	// Rank-0 of the merged population is globally non-dominated.
	for _, a := range m.Final {
		if a.Rank != 0 {
			continue
		}
		for _, b := range m.Final {
			if dominates(b, a) {
				t.Fatalf("rank-0 individual %v dominated by %v", a.Objs, b.Objs)
			}
		}
	}
	// MergeResults of a single run preserves its counters.
	single := MergeResults(r1)
	if single.DistinctEvaluated != r1.DistinctEvaluated || single.DistinctValid != r1.DistinctValid {
		t.Fatal("single-run merge changed distinct counts")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Evaluations: 10, CacheHits: 4, WarmHits: 2, RelationsCompared: 100,
		Eval: EvalStats{Full: 5, GeneDelta: 3, NearDelta: 1, CrossDelta: 1}}
	b := Stats{Evaluations: 7, CacheHits: 1, WarmHits: 2, RelationsCompared: 40,
		Eval: EvalStats{Full: 2, GeneDelta: 2, NearDelta: 1, CrossDelta: 2}}
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("Add/Sub roundtrip: got %+v want %+v", got, a)
	}
	if got := a.Sub(a); got != (Stats{}) {
		t.Fatalf("a.Sub(a) = %+v, want zero", got)
	}
}
