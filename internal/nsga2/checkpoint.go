package nsga2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format — the durable, byte-stable serialization of an
// engine's full evolutionary state: the Snapshot (ranked population,
// PRNG draw position, evaluation counters) plus the interned-key
// genome cache, whose entries slice doubles as the insertion-order
// archive. Everything is fixed-width little-endian, so the same state
// always encodes to the same bytes:
//
//	magic      [6]byte  "WACKPT"
//	version    uint16   (checkpointVersion)
//	genomeLen  uint32   genes per chromosome (edges x channels)
//	numObjs    uint32   objective vector dimension
//	auxDim     uint32   auxiliary payload dimension (Config.AuxLen)
//	popSize    uint32   configured population size
//	seed       int64    engine PRNG seed
//	gen        uint64   completed generations
//	draws      uint64   PRNG state advances (replay position)
//	evals      uint64   evaluation requests
//	validEvals uint64   feasible evaluation requests
//	popLen     uint32   individuals that follow
//	popLen x { genome [genomeLen]byte, rank uint32, crowding f64 }
//	cacheLen   uint64   distinct evaluated genotypes that follow
//	cacheLen x { key [genomeLen]byte, objs [numObjs]f64, violation f64, aux [auxDim]f64 }
//	crc        uint32   IEEE CRC-32 of every preceding byte
//
// Version history: v1 (through PR 5) had no auxDim field and no
// per-entry aux payload; v2 added both so problems can persist
// evaluation-derived side state (core's metric triple) next to each
// genotype and warm-start feasible siblings from it. The decoder
// rejects any version it does not read — there is no silent
// cross-version parse.
//
// Individuals carry no objective vectors of their own: every
// population genome is by construction present in the cache, so the
// decoder rehydrates Objs and Violation from the restored entries,
// exactly as the live engine aliases them. Floats travel as their
// IEEE-754 bit patterns (math.Float64bits), so +Inf objectives of
// infeasible genotypes and crowding boundary values round-trip
// bit-exactly. The decoder fails loudly — wrong magic, unsupported
// version, geometry, aux-dimension or seed mismatch, truncation,
// duplicate or unknown genomes, CRC damage — and never panics on
// corrupt input (fuzzed by FuzzSnapshotDecode).
const checkpointVersion = 2

var checkpointMagic = [6]byte{'W', 'A', 'C', 'K', 'P', 'T'}

// WriteCheckpoint serializes the engine's state in the checkpoint
// format. Call it between Steps (never concurrently with one); the
// engine is not modified. A later ResumeEngine on the written bytes
// — in this process or a fresh one — continues the run bit-for-bit:
// populations, PRNG draws, counters, archive order and Result are
// identical to the uninterrupted run's.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	cw.bytes(checkpointMagic[:])
	cw.u16(checkpointVersion)
	cw.u32(uint32(e.gl))
	cw.u32(uint32(e.nObj))
	cw.u32(uint32(e.cfg.AuxLen))
	cw.u32(uint32(e.size))
	cw.u64(uint64(e.cfg.Seed))
	cw.u64(uint64(e.gen))
	cw.u64(e.src.n)
	cw.u64(uint64(e.evals))
	cw.u64(uint64(e.validEvals))
	cw.u32(uint32(len(e.pop)))
	for i := range e.pop {
		ind := &e.pop[i]
		cw.bytes(ind.Genome)
		cw.u32(uint32(ind.Rank))
		cw.f64(ind.Crowding)
	}
	cw.u64(uint64(len(e.cache.entries)))
	aux := make([]float64, e.cfg.AuxLen)
	for i := range e.cache.entries {
		ent := &e.cache.entries[i]
		if len(ent.objs) != e.nObj {
			return fmt.Errorf("nsga2: checkpoint: cache entry %d has %d objectives, want %d (pending evaluation?)",
				i, len(ent.objs), e.nObj)
		}
		cw.bytes(ent.key)
		for _, o := range ent.objs {
			cw.f64(o)
		}
		cw.f64(ent.violation)
		if len(aux) > 0 {
			// Pre-fill with what a resume retained (NaN where nothing
			// is known) and let the problem's hook overwrite from its
			// own side state.
			for k := range aux {
				if k < len(ent.aux) {
					aux[k] = ent.aux[k]
				} else {
					aux[k] = math.NaN()
				}
			}
			if e.cfg.AuxFill != nil {
				e.cfg.AuxFill(ent.key, aux)
			}
			for _, v := range aux {
				cw.f64(v)
			}
		}
	}
	// The CRC itself is written outside the checksummed stream.
	sum := cw.crc
	cw.u32(sum)
	if cw.err != nil {
		return fmt.Errorf("nsga2: write checkpoint: %w", cw.err)
	}
	return bw.Flush()
}

// ResumeEngine rebuilds an engine from a checkpoint written by
// WriteCheckpoint: it sizes a fresh arena for (p, cfg) — without
// evaluating an initial population — and loads the population, the
// PRNG position, the counters and the evaluation cache from r. The
// problem and configuration must match the checkpointed run (the
// header pins genome length, objective count, population size and
// seed; a mismatch is an error, not a silent divergence). Subsequent
// Steps replay the interrupted run exactly.
func ResumeEngine(p Problem, cfg Config, r io.Reader) (*Engine, error) {
	e, err := newEngineArena(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.readCheckpoint(r); err != nil {
		return nil, err
	}
	return e, nil
}

// readCheckpoint parses and validates a checkpoint stream into the
// (freshly built) engine. Any error leaves the engine unusable.
func (e *Engine) readCheckpoint(r io.Reader) error {
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic [6]byte
	cr.bytes(magic[:])
	if cr.err == nil && magic != checkpointMagic {
		return fmt.Errorf("nsga2: checkpoint: bad magic %q (not a checkpoint file?)", magic[:])
	}
	if v := cr.u16(); cr.err == nil && v != checkpointVersion {
		return fmt.Errorf("nsga2: checkpoint: format version %d, this build reads %d", v, checkpointVersion)
	}
	gl, nObj, auxDim, popSize := cr.u32(), cr.u32(), cr.u32(), cr.u32()
	seed := int64(cr.u64())
	gen, draws := cr.u64(), cr.u64()
	evals, validEvals := cr.u64(), cr.u64()
	popLen := cr.u32()
	if cr.err != nil {
		return fmt.Errorf("nsga2: checkpoint: truncated header: %w", cr.err)
	}
	switch {
	case int(gl) != e.gl:
		return fmt.Errorf("nsga2: checkpoint: genome length %d, problem wants %d", gl, e.gl)
	case int(nObj) != e.nObj:
		return fmt.Errorf("nsga2: checkpoint: %d objectives, problem wants %d", nObj, e.nObj)
	case int(auxDim) != e.cfg.AuxLen:
		return fmt.Errorf("nsga2: checkpoint: aux dimension %d, config wants %d", auxDim, e.cfg.AuxLen)
	case int(popSize) != e.size:
		return fmt.Errorf("nsga2: checkpoint: population size %d, config wants %d", popSize, e.size)
	case seed != e.cfg.Seed:
		return fmt.Errorf("nsga2: checkpoint: seed %d, config wants %d", seed, e.cfg.Seed)
	case popLen == 0 || int(popLen) > e.size:
		return fmt.Errorf("nsga2: checkpoint: population of %d individuals, want 1..%d", popLen, e.size)
	case gen > math.MaxInt32 || evals > math.MaxInt32 || validEvals > math.MaxInt32:
		return fmt.Errorf("nsga2: checkpoint: implausible counters (gen=%d evals=%d valid=%d)", gen, evals, validEvals)
	case draws > math.MaxInt32:
		// The decoder replays the PRNG draw by draw; an unbounded
		// count would turn a forged-but-CRC-consistent file into a
		// hang instead of an error. Real runs draw a few thousand
		// times per generation — MaxInt32 is orders of magnitude of
		// headroom and replays in seconds at worst.
		return fmt.Errorf("nsga2: checkpoint: implausible PRNG draw count %d", draws)
	}
	for i := 0; i < int(popLen); i++ {
		row := e.curRow(i)
		cr.bytes(row)
		rank := cr.u32()
		crowding := cr.f64()
		if cr.err != nil {
			return fmt.Errorf("nsga2: checkpoint: truncated population at individual %d: %w", i, cr.err)
		}
		e.popBuf[i] = Individual{Genome: row, Rank: int(rank), Crowding: crowding}
	}
	cacheLen := cr.u64()
	if cr.err != nil {
		return fmt.Errorf("nsga2: checkpoint: truncated cache header: %w", cr.err)
	}
	key := make([]byte, e.gl)
	for i := uint64(0); i < cacheLen; i++ {
		cr.bytes(key)
		// Objective and aux vectors are carved from the engine's
		// chunked arena instead of boxed per entry: rehydration drops
		// from two allocations per genotype to one per arena chunk.
		objs := e.store.alloc(e.nObj)
		for k := range objs {
			objs[k] = cr.f64()
		}
		violation := cr.f64()
		var aux []float64
		if auxDim > 0 {
			aux = e.store.alloc(int(auxDim))
			for k := range aux {
				aux[k] = cr.f64()
			}
		}
		if cr.err != nil {
			return fmt.Errorf("nsga2: checkpoint: truncated cache at entry %d of %d: %w", i, cacheLen, cr.err)
		}
		if _, dup := e.cache.lookup(key); dup {
			return fmt.Errorf("nsga2: checkpoint: corrupt cache: duplicate genotype at entry %d", i)
		}
		idx := e.cache.insert(key)
		ent := &e.cache.entries[idx]
		ent.objs = objs
		ent.violation = violation
		ent.aux = aux
	}
	want := cr.crc
	stored := cr.u32()
	if cr.err != nil {
		return fmt.Errorf("nsga2: checkpoint: truncated checksum: %w", cr.err)
	}
	if stored != want {
		return fmt.Errorf("nsga2: checkpoint: CRC mismatch (stored %08x, computed %08x): file damaged", stored, want)
	}
	// Rehydrate the population's objective views from the cache, like
	// the live engine aliases them. Every population genome was
	// evaluated, so a miss means the file lies about its own history.
	for i := 0; i < int(popLen); i++ {
		idx, ok := e.cache.lookup(e.popBuf[i].Genome)
		if !ok {
			return fmt.Errorf("nsga2: checkpoint: corrupt: population individual %d missing from evaluation cache", i)
		}
		e.popBuf[i].Objs = e.cache.entries[idx].objs
		e.popBuf[i].Violation = e.cache.entries[idx].violation
	}
	e.pop = e.popBuf[:popLen]
	e.gen, e.evals, e.validEvals = int(gen), int(evals), int(validEvals)
	e.rng, e.src = newCountedRNG(e.cfg.Seed)
	for i := uint64(0); i < draws; i++ {
		e.src.src.Int63()
	}
	e.src.n = draws
	return nil
}

// CheckpointArchive is the standalone decode of a checkpoint's
// identity header and evaluation-cache section — what a warm-start
// consumer needs, without a Problem to resurrect the engine around.
type CheckpointArchive struct {
	GenomeLen     int
	NumObjectives int
	AuxDim        int
	PopSize       int
	Seed          int64
	// Entries lists every distinct evaluated genotype in insertion
	// order, exactly like Result.Archive.
	Entries []ArchiveEntry
}

// ReadCheckpointArchive decodes the cache section of a checkpoint
// written by WriteCheckpoint without rebuilding an engine: the
// population is skipped, the archive entries are returned, and the
// trailing CRC is still verified (the whole stream is consumed). A
// campaign uses this to seed one cell's evaluation cache from a
// completed sibling's checkpoint. Like ResumeEngine, it fails loudly
// on damage and reads entry-wise, so a forged length cannot balloon
// one allocation.
func ReadCheckpointArchive(r io.Reader) (*CheckpointArchive, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic [6]byte
	cr.bytes(magic[:])
	if cr.err == nil && magic != checkpointMagic {
		return nil, fmt.Errorf("nsga2: checkpoint: bad magic %q (not a checkpoint file?)", magic[:])
	}
	if v := cr.u16(); cr.err == nil && v != checkpointVersion {
		return nil, fmt.Errorf("nsga2: checkpoint: format version %d, this build reads %d", v, checkpointVersion)
	}
	gl, nObj, auxDim, popSize := cr.u32(), cr.u32(), cr.u32(), cr.u32()
	seed := int64(cr.u64())
	_, _ = cr.u64(), cr.u64() // gen, draws
	_, _ = cr.u64(), cr.u64() // evals, validEvals
	popLen := cr.u32()
	if cr.err != nil {
		return nil, fmt.Errorf("nsga2: checkpoint: truncated header: %w", cr.err)
	}
	// Standalone sanity bounds (no engine geometry to validate
	// against): reject implausible shapes before sizing any reads.
	switch {
	case gl == 0 || gl > 1<<20:
		return nil, fmt.Errorf("nsga2: checkpoint: implausible genome length %d", gl)
	case nObj == 0 || nObj > 1<<10:
		return nil, fmt.Errorf("nsga2: checkpoint: implausible objective count %d", nObj)
	case auxDim > 1<<10:
		return nil, fmt.Errorf("nsga2: checkpoint: implausible aux dimension %d", auxDim)
	case popLen == 0 || popLen > popSize || popSize > 1<<24:
		return nil, fmt.Errorf("nsga2: checkpoint: implausible population %d of %d", popLen, popSize)
	}
	skip := make([]byte, gl)
	for i := 0; i < int(popLen); i++ {
		cr.bytes(skip)
		_ = cr.u32()
		_ = cr.f64()
		if cr.err != nil {
			return nil, fmt.Errorf("nsga2: checkpoint: truncated population at individual %d: %w", i, cr.err)
		}
	}
	cacheLen := cr.u64()
	if cr.err != nil {
		return nil, fmt.Errorf("nsga2: checkpoint: truncated cache header: %w", cr.err)
	}
	arch := &CheckpointArchive{
		GenomeLen:     int(gl),
		NumObjectives: int(nObj),
		AuxDim:        int(auxDim),
		PopSize:       int(popSize),
		Seed:          seed,
	}
	// One local arena for the whole decode: per-entry float vectors
	// are carved from chunks instead of boxed individually (the
	// entries retain the chunks, exactly like engine cache entries
	// retain the engine's arena).
	var store objStore
	for i := uint64(0); i < cacheLen; i++ {
		key := make([]byte, gl)
		cr.bytes(key)
		objs := store.alloc(int(nObj))
		for k := range objs {
			objs[k] = cr.f64()
		}
		violation := cr.f64()
		var aux []float64
		if auxDim > 0 {
			aux = store.alloc(int(auxDim))
			for k := range aux {
				aux[k] = cr.f64()
			}
		}
		if cr.err != nil {
			return nil, fmt.Errorf("nsga2: checkpoint: truncated cache at entry %d of %d: %w", i, cacheLen, cr.err)
		}
		arch.Entries = append(arch.Entries, ArchiveEntry{Genome: key, Objs: objs, Violation: violation, Aux: aux})
	}
	want := cr.crc
	stored := cr.u32()
	if cr.err != nil {
		return nil, fmt.Errorf("nsga2: checkpoint: truncated checksum: %w", cr.err)
	}
	if stored != want {
		return nil, fmt.Errorf("nsga2: checkpoint: CRC mismatch (stored %08x, computed %08x): file damaged", stored, want)
	}
	return arch, nil
}

// VisitArchive calls fn for every distinct evaluated genotype in
// insertion order — the same sequence Result's Archive reports, but
// without detaching copies. aux is the entry's auxiliary payload
// (nil when Config.AuxLen is zero or the entry was not resumed from
// a checkpoint carrying one). The slices alias engine-owned state:
// callers must not mutate or retain them past fn's return. Problems
// resuming from a checkpoint use this to rebuild evaluation-derived
// side state (e.g. core's metric cache) without re-running the GA.
func (e *Engine) VisitArchive(fn func(genome []byte, objs []float64, violation float64, aux []float64)) {
	for i := range e.cache.entries {
		ent := &e.cache.entries[i]
		fn(ent.key, ent.objs, ent.violation, ent.aux)
	}
}

// ArchiveLen returns the number of distinct evaluated genotypes
// VisitArchive will report, so resume paths can pre-size the side
// state they rebuild instead of growing maps entry by entry.
func (e *Engine) ArchiveLen() int { return len(e.cache.entries) }

// crcWriter accumulates an IEEE CRC-32 over everything written
// through it, encoding fixed-width little-endian. Errors stick.
type crcWriter struct {
	w   io.Writer
	crc uint32
	err error
	buf [8]byte
}

func (c *crcWriter) bytes(p []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	_, c.err = c.w.Write(p)
}

func (c *crcWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(c.buf[:2], v)
	c.bytes(c.buf[:2])
}

func (c *crcWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(c.buf[:4], v)
	c.bytes(c.buf[:4])
}

func (c *crcWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[:8], v)
	c.bytes(c.buf[:8])
}

func (c *crcWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

// crcReader mirrors crcWriter for decoding: it checks every read for
// truncation and accumulates the CRC of consumed bytes, so the
// decoder can compare against the stored checksum. Errors stick.
type crcReader struct {
	r   io.Reader
	crc uint32
	err error
	buf [8]byte
}

func (c *crcReader) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, p); err != nil {
		c.err = err
		return
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
}

func (c *crcReader) u16() uint16 {
	c.bytes(c.buf[:2])
	return binary.LittleEndian.Uint16(c.buf[:2])
}

func (c *crcReader) u32() uint32 {
	c.bytes(c.buf[:4])
	return binary.LittleEndian.Uint32(c.buf[:4])
}

func (c *crcReader) u64() uint64 {
	c.bytes(c.buf[:8])
	return binary.LittleEndian.Uint64(c.buf[:8])
}

func (c *crcReader) f64() float64 { return math.Float64frombits(c.u64()) }
