// Package nsga2 implements the Non-dominated Sorting Genetic
// Algorithm II of Deb et al., the optimizer the paper builds its
// wavelength-allocation exploration on: fast non-dominated sorting,
// crowding-distance diversity preservation, binary tournament
// selection, the paper's two-point crossover and single-gene
// inversion mutation, and elitist (mu + lambda) survival.
//
// Genomes are binary gene strings ([]byte of 0/1), exactly the
// chromosome shape of Section III-D. Infeasible individuals (the
// paper "sets the fitness to infinity") are handled with Deb's
// constraint dominance: any feasible individual dominates any
// infeasible one, infeasible ones tie among themselves.
package nsga2

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Problem is the optimization problem the engine minimizes.
type Problem interface {
	// GenomeLen is the number of binary genes.
	GenomeLen() int
	// NumObjectives is the dimension of the objective vector.
	NumObjectives() int
	// Evaluate maps a genome to its objective vector (minimized) and
	// a constraint-violation magnitude: 0 means feasible, larger
	// values mean "more broken". Deb's constraint domination uses the
	// magnitude to give the search a gradient toward feasibility even
	// from an all-infeasible population. Implementations must be
	// deterministic.
	Evaluate(genome []byte) (objs []float64, violation float64)
}

// PerWorkerProblem is the scaling hook for problems whose evaluation
// benefits from per-goroutine state (scratch buffers, metric shards).
// When Workers > 1 and the problem implements it, the engine calls
// NewWorker once per worker goroutine at the start of Run and routes
// every evaluation through the worker problems — so Evaluate
// implementations need no internal locking and no shared mutable
// state. Each worker problem is used by exactly one goroutine at a
// time; the worker problems of one run are used concurrently with
// each other. Results must be bit-for-bit identical to the parent's
// Evaluate.
type PerWorkerProblem interface {
	Problem
	// NewWorker returns an evaluation view for exclusive use by one
	// engine worker goroutine.
	NewWorker() Problem
}

// Config tunes the engine. The zero value is completed by
// (*Config).withDefaults; the paper's settings are population 400 and
// 300 generations.
type Config struct {
	// PopSize is the (even) population size.
	PopSize int
	// Generations is the number of evolution steps after the initial
	// population.
	Generations int
	// CrossoverProb is the probability of applying two-point
	// crossover to a mating pair (otherwise the parents are copied).
	CrossoverProb float64
	// MutationProb is the probability of inverting one random gene of
	// each offspring (the paper's mutation operator).
	MutationProb float64
	// PerBitMutation, when positive, replaces the single-gene
	// operator by an independent per-gene flip rate (classic binary
	// GA mutation). Used by the ablation benches.
	PerBitMutation float64
	// InitDensity is the 1-probability of the random initial genes.
	InitDensity float64
	// Seeds injects known genomes into the initial population (warm
	// start); the remainder is drawn randomly. Each seed must match
	// the problem's genome length. More seeds than the population
	// size is an error.
	Seeds [][]byte
	// Workers > 1 evaluates each generation's distinct new genomes on
	// that many goroutines. The run is bit-for-bit identical to the
	// serial one (operators, caching order and counters are
	// unaffected). Problems implementing PerWorkerProblem get one
	// private evaluation view per goroutine and need no locking;
	// plain Problems must make Evaluate safe for concurrent calls.
	Workers int
	// Seed drives the engine's private PRNG; runs are reproducible.
	Seed int64
	// ArchiveAll records every distinct evaluated genome, which the
	// Table II / Fig. 7 analyses need. The archive doubles as an
	// evaluation cache either way.
	ArchiveAll bool
	// OnGeneration, when non-nil, observes each generation's
	// population after survival selection.
	OnGeneration func(gen int, pop []Individual)
}

func (c Config) withDefaults() Config {
	if c.PopSize <= 0 {
		c.PopSize = 400
	}
	if c.PopSize%2 == 1 {
		c.PopSize++
	}
	if c.Generations <= 0 {
		c.Generations = 300
	}
	if c.CrossoverProb == 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb == 0 {
		c.MutationProb = 1.0
	}
	if c.InitDensity == 0 {
		c.InitDensity = 0.5
	}
	return c
}

// Individual is one member of a population.
type Individual struct {
	Genome []byte
	Objs   []float64
	// Violation is the constraint-violation magnitude; 0 is feasible.
	Violation float64
	// Rank is the non-domination front index (0 is the best front).
	Rank int
	// Crowding is the crowding distance within the front; boundary
	// individuals carry +Inf.
	Crowding float64
}

// Feasible reports whether the individual satisfies every constraint.
func (i Individual) Feasible() bool { return i.Violation == 0 }

// ArchiveEntry records one distinct evaluated genotype.
type ArchiveEntry struct {
	Genome    []byte
	Objs      []float64
	Violation float64
}

// Feasible reports whether the archived genotype was valid.
func (e ArchiveEntry) Feasible() bool { return e.Violation == 0 }

// Result is the outcome of a run.
type Result struct {
	// Final is the last population, non-dominated-sorted.
	Final []Individual
	// Archive lists every distinct genome evaluated during the run
	// (only populated with Config.ArchiveAll).
	Archive []ArchiveEntry
	// Evaluations counts evaluation requests, ValidEvaluations those
	// requests that hit a feasible genotype (the paper's "number of
	// valid solutions generated", duplicates included),
	// DistinctEvaluated the distinct genotypes, and DistinctValid the
	// distinct feasible genotypes.
	Evaluations       int
	ValidEvaluations  int
	DistinctEvaluated int
	DistinctValid     int
}

type engine struct {
	p          Problem
	cfg        Config
	rng        *rand.Rand
	cache      map[string]cached
	order      []string // insertion order of cache keys, for the archive
	evals      int
	validEvals int
	// workers holds the per-goroutine evaluation views used when
	// Workers > 1: either the problem's own NewWorker products or the
	// shared problem repeated (which must then be concurrency-safe).
	workers []Problem
}

type cached struct {
	objs      []float64
	violation float64
}

// Run executes NSGA-II on the problem.
func Run(p Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if p.GenomeLen() <= 0 {
		return nil, fmt.Errorf("nsga2: genome length must be positive")
	}
	if p.NumObjectives() <= 0 {
		return nil, fmt.Errorf("nsga2: need at least one objective")
	}
	if cfg.CrossoverProb < 0 || cfg.CrossoverProb > 1 {
		return nil, fmt.Errorf("nsga2: crossover probability %v outside [0,1]", cfg.CrossoverProb)
	}
	if cfg.MutationProb < 0 || cfg.MutationProb > 1 {
		return nil, fmt.Errorf("nsga2: mutation probability %v outside [0,1]", cfg.MutationProb)
	}
	if len(cfg.Seeds) > cfg.PopSize {
		return nil, fmt.Errorf("nsga2: %d seeds exceed population %d", len(cfg.Seeds), cfg.PopSize)
	}
	for i, s := range cfg.Seeds {
		if len(s) != p.GenomeLen() {
			return nil, fmt.Errorf("nsga2: seed %d has %d genes, want %d", i, len(s), p.GenomeLen())
		}
	}
	e := &engine{
		p:     p,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cache: make(map[string]cached),
	}
	if cfg.Workers > 1 {
		e.workers = make([]Problem, cfg.Workers)
		for w := range e.workers {
			if pw, ok := p.(PerWorkerProblem); ok {
				e.workers[w] = pw.NewWorker()
			} else {
				e.workers[w] = p
			}
		}
	}

	genomes := make([][]byte, cfg.PopSize)
	for i := range genomes {
		if i < len(cfg.Seeds) {
			genomes[i] = append([]byte(nil), cfg.Seeds[i]...)
		} else {
			genomes[i] = e.randomGenome()
		}
	}
	pop := e.evaluateBatch(genomes)
	sortPopulation(pop)

	for gen := 0; gen < cfg.Generations; gen++ {
		offspring := e.makeOffspring(pop)
		merged := append(pop, offspring...)
		pop = survive(merged, cfg.PopSize)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, pop)
		}
	}

	res := &Result{
		Final:             pop,
		Evaluations:       e.evals,
		ValidEvaluations:  e.validEvals,
		DistinctEvaluated: len(e.cache),
	}
	for _, k := range e.order {
		c := e.cache[k]
		if c.violation == 0 {
			res.DistinctValid++
		}
		if cfg.ArchiveAll {
			res.Archive = append(res.Archive, ArchiveEntry{Genome: []byte(k), Objs: c.objs, Violation: c.violation})
		}
	}
	return res, nil
}

func (e *engine) randomGenome() []byte {
	g := make([]byte, e.p.GenomeLen())
	for i := range g {
		if e.rng.Float64() < e.cfg.InitDensity {
			g[i] = 1
		}
	}
	return g
}

// evaluateBatch resolves a generation's genomes through the dedup
// cache, evaluating the distinct new ones — in parallel when Workers
// is set. The cache insertion order, counters and results are
// identical to a serial run.
func (e *engine) evaluateBatch(genomes [][]byte) []Individual {
	type job struct {
		key    string
		genome []byte
	}
	var jobs []job
	pending := make(map[string]bool)
	for _, g := range genomes {
		k := string(g)
		if _, ok := e.cache[k]; ok || pending[k] {
			continue
		}
		pending[k] = true
		jobs = append(jobs, job{key: k, genome: g})
	}
	results := make([]cached, len(jobs))
	if len(e.workers) > 0 && len(jobs) > 1 {
		// Fixed worker pool pulling job indices from an atomic
		// counter: each worker keeps its own evaluation state for the
		// whole generation, and results land at their job index, so
		// scheduling order cannot influence the outcome.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < len(e.workers) && w < len(jobs); w++ {
			wg.Add(1)
			go func(p Problem) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					objs, violation := p.Evaluate(jobs[i].genome)
					results[i] = cached{objs: objs, violation: violation}
				}
			}(e.workers[w])
		}
		wg.Wait()
	} else {
		for i := range jobs {
			objs, violation := e.p.Evaluate(jobs[i].genome)
			results[i] = cached{objs: objs, violation: violation}
		}
	}
	for i, j := range jobs {
		e.cache[j.key] = results[i]
		e.order = append(e.order, j.key)
	}
	out := make([]Individual, len(genomes))
	for i, g := range genomes {
		e.evals++
		c := e.cache[string(g)]
		if c.violation == 0 {
			e.validEvals++
		}
		out[i] = Individual{Genome: g, Objs: c.objs, Violation: c.violation}
	}
	return out
}

// makeOffspring builds PopSize children by binary tournament,
// two-point crossover and mutation. The genetic operators run
// serially (they consume the engine's PRNG); evaluation is batched.
func (e *engine) makeOffspring(pop []Individual) []Individual {
	children := make([][]byte, 0, e.cfg.PopSize)
	for len(children) < e.cfg.PopSize {
		p1 := e.tournament(pop)
		p2 := e.tournament(pop)
		c1 := append([]byte(nil), p1.Genome...)
		c2 := append([]byte(nil), p2.Genome...)
		if e.rng.Float64() < e.cfg.CrossoverProb {
			e.twoPointCrossover(c1, c2)
		}
		e.mutate(c1)
		e.mutate(c2)
		children = append(children, c1)
		if len(children) < e.cfg.PopSize {
			children = append(children, c2)
		}
	}
	return e.evaluateBatch(children)
}

// tournament picks the better of two random individuals by
// (rank, crowding).
func (e *engine) tournament(pop []Individual) Individual {
	a := pop[e.rng.Intn(len(pop))]
	b := pop[e.rng.Intn(len(pop))]
	if a.Rank != b.Rank {
		if a.Rank < b.Rank {
			return a
		}
		return b
	}
	if a.Crowding != b.Crowding {
		if a.Crowding > b.Crowding {
			return a
		}
		return b
	}
	if e.rng.Intn(2) == 0 {
		return a
	}
	return b
}

// twoPointCrossover exchanges the gene range [x,y] of the two
// chromosomes (the paper's operator).
func (e *engine) twoPointCrossover(a, b []byte) {
	n := len(a)
	x, y := e.rng.Intn(n), e.rng.Intn(n)
	if x > y {
		x, y = y, x
	}
	for i := x; i <= y; i++ {
		a[i], b[i] = b[i], a[i]
	}
}

// mutate applies the configured mutation operator in place.
func (e *engine) mutate(g []byte) {
	if e.cfg.PerBitMutation > 0 {
		for i := range g {
			if e.rng.Float64() < e.cfg.PerBitMutation {
				g[i] ^= 1
			}
		}
		return
	}
	if e.rng.Float64() < e.cfg.MutationProb {
		i := e.rng.Intn(len(g))
		g[i] ^= 1
	}
}

// dominates implements Deb's constraint dominance for minimization:
// a feasible individual dominates any infeasible one; between two
// infeasible individuals the smaller violation dominates; between two
// feasible individuals, standard Pareto dominance.
func dominates(a, b Individual) bool {
	if a.Feasible() != b.Feasible() {
		return a.Feasible()
	}
	if !a.Feasible() {
		return a.Violation < b.Violation
	}
	strictly := false
	for i := range a.Objs {
		switch {
		case a.Objs[i] > b.Objs[i]:
			return false
		case a.Objs[i] < b.Objs[i]:
			strictly = true
		}
	}
	return strictly
}

// sortPopulation assigns ranks and crowding distances in place.
func sortPopulation(pop []Individual) {
	fronts := fastNonDominatedSort(pop)
	for rank, front := range fronts {
		for _, i := range front {
			pop[i].Rank = rank
		}
		assignCrowding(pop, front)
	}
}

// fastNonDominatedSort returns the indices of each front.
func fastNonDominatedSort(pop []Individual) [][]int {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// assignCrowding computes crowding distances for one front.
func assignCrowding(pop []Individual, front []int) {
	if len(front) == 0 {
		return
	}
	for _, i := range front {
		pop[i].Crowding = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			pop[i].Crowding = math.Inf(1)
		}
		return
	}
	m := len(pop[front[0]].Objs)
	idx := make([]int, len(front))
	for obj := 0; obj < m; obj++ {
		copy(idx, front)
		sort.SliceStable(idx, func(a, b int) bool {
			return pop[idx[a]].Objs[obj] < pop[idx[b]].Objs[obj]
		})
		lo, hi := pop[idx[0]].Objs[obj], pop[idx[len(idx)-1]].Objs[obj]
		spread := hi - lo
		pop[idx[0]].Crowding = math.Inf(1)
		pop[idx[len(idx)-1]].Crowding = math.Inf(1)
		if spread <= 0 || math.IsInf(spread, 0) || math.IsNaN(spread) {
			// Degenerate axis (all equal, or infeasible front at
			// +Inf): contributes nothing.
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			d := (pop[idx[k+1]].Objs[obj] - pop[idx[k-1]].Objs[obj]) / spread
			if !math.IsInf(pop[idx[k]].Crowding, 1) {
				pop[idx[k]].Crowding += d
			}
		}
	}
}

// survive performs the elitist (mu + lambda) environmental selection:
// whole fronts are taken while they fit; the last partial front is
// truncated by crowding distance.
func survive(merged []Individual, size int) []Individual {
	fronts := fastNonDominatedSort(merged)
	for rank, front := range fronts {
		for _, i := range front {
			merged[i].Rank = rank
		}
		assignCrowding(merged, front)
	}
	next := make([]Individual, 0, size)
	for _, front := range fronts {
		if len(next)+len(front) <= size {
			for _, i := range front {
				next = append(next, merged[i])
			}
			continue
		}
		rest := make([]int, len(front))
		copy(rest, front)
		sort.SliceStable(rest, func(a, b int) bool {
			return merged[rest[a]].Crowding > merged[rest[b]].Crowding
		})
		for _, i := range rest[:size-len(next)] {
			next = append(next, merged[i])
		}
		break
	}
	return next
}

// FeasibleFront extracts the distinct feasible rank-0 individuals of
// a sorted population.
func FeasibleFront(pop []Individual) []Individual {
	seen := make(map[string]bool)
	var front []Individual
	for _, ind := range pop {
		if ind.Rank != 0 || !ind.Feasible() {
			continue
		}
		k := string(ind.Genome)
		if seen[k] {
			continue
		}
		seen[k] = true
		front = append(front, ind)
	}
	return front
}
