// Package nsga2 implements the Non-dominated Sorting Genetic
// Algorithm II of Deb et al., the optimizer the paper builds its
// wavelength-allocation exploration on: fast non-dominated sorting,
// crowding-distance diversity preservation, binary tournament
// selection, the paper's two-point crossover and single-gene
// inversion mutation, and elitist (mu + lambda) survival.
//
// Genomes are binary gene strings ([]byte of 0/1), exactly the
// chromosome shape of Section III-D. Infeasible individuals (the
// paper "sets the fitness to infinity") are handled with Deb's
// constraint dominance: any feasible individual dominates any
// infeasible one, infeasible ones tie among themselves.
//
// The hot path lives in the Engine (engine.go): an incremental,
// scratch-arena form of the generation loop that performs zero
// steady-state heap allocations per generation. This file keeps the
// public problem/config/result types and the simple reference
// implementations of the ranking machinery (fastNonDominatedSort,
// assignCrowding, survive), which the property tests use as the
// equivalence oracle for the scratch versions.
package nsga2

import (
	"math"
	"sort"
)

// Problem is the optimization problem the engine minimizes.
type Problem interface {
	// GenomeLen is the number of binary genes.
	GenomeLen() int
	// NumObjectives is the dimension of the objective vector.
	NumObjectives() int
	// Evaluate maps a genome to its objective vector (minimized) and
	// a constraint-violation magnitude: 0 means feasible, larger
	// values mean "more broken". Deb's constraint domination uses the
	// magnitude to give the search a gradient toward feasibility even
	// from an all-infeasible population. Implementations must be
	// deterministic, must not retain or mutate the genome slice, and
	// must return exactly NumObjectives objective values.
	Evaluate(genome []byte) (objs []float64, violation float64)
}

// DeltaProblem is the incremental-evaluation hook: problems that can
// evaluate an offspring faster by exploiting its similarity to a
// mating parent implement it, and the engine routes every distinct
// new offspring through EvaluateDelta with the variation pipeline's
// provenance record. Implementations MUST return results bit-for-bit
// identical to Evaluate(genome) — the delta path is a pure
// optimization, never a semantic switch — and fall back to a full
// evaluation internally when they cannot exploit the hint.
//
// When the problem also implements PerWorkerProblem, each worker view
// returned by NewWorker may itself implement DeltaProblem; workers
// whose views do not are routed through plain Evaluate.
type DeltaProblem interface {
	Problem
	// EvaluateDelta evaluates genome knowing it was produced by the
	// variation pipeline from parent1 (its copy source) and parent2
	// (its mate; may equal parent1's genome). gene >= 0 records a pure
	// single-gene mutant: genome equals parent1 with exactly that gene
	// flipped (crossover skipped or a no-op swap). Either parent may
	// be nil. The same retention rules as Evaluate apply.
	EvaluateDelta(genome, parent1, parent2 []byte, gene int) (objs []float64, violation float64)
}

// IntoProblem is an optional Problem extension for allocation-free
// objective write-out: EvaluateObjsInto writes the objective vector
// into dst (len NumObjectives, an engine-arena row carved at cache-
// insert time) and returns the violation. Results MUST be bit-for-bit
// identical to Evaluate(genome) — the into path only changes where
// the floats land, never their values. Implementations must not
// retain dst or the genome slice past the call.
type IntoProblem interface {
	Problem
	EvaluateObjsInto(dst []float64, genome []byte) (violation float64)
}

// DeltaIntoProblem combines the delta and write-into extensions: the
// engine only routes through it when the problem (and worker view)
// also implements IntoProblem. Same equivalence contract as
// EvaluateDelta.
type DeltaIntoProblem interface {
	DeltaProblem
	EvaluateDeltaObjsInto(dst []float64, genome, parent1, parent2 []byte, gene int) (violation float64)
}

// EvalStats is a problem-side split of how evaluations were served:
// full kernel runs, single-gene delta replays, few-row (near) delta
// replays off one parent, and two-parent crossover delta replays.
type EvalStats struct {
	Full       int64
	GeneDelta  int64
	NearDelta  int64
	CrossDelta int64
}

// StatsProblem is an optional Problem extension: problems that can
// distinguish their evaluation kernel paths implement it, and
// Engine.Stats surfaces the split. Counts are observability only —
// they may depend on worker scheduling and cache state and are not
// part of the reproducibility contract.
type StatsProblem interface {
	EvalStats() EvalStats
}

// PerWorkerProblem is the scaling hook for problems whose evaluation
// benefits from per-goroutine state (scratch buffers, metric shards).
// When Workers > 1 and the problem implements it, the engine calls
// NewWorker once per worker goroutine at the start of Run and routes
// every evaluation through the worker problems — so Evaluate
// implementations need no internal locking and no shared mutable
// state. Each worker problem is used by exactly one goroutine at a
// time; the worker problems of one run are used concurrently with
// each other. Results must be bit-for-bit identical to the parent's
// Evaluate.
type PerWorkerProblem interface {
	Problem
	// NewWorker returns an evaluation view for exclusive use by one
	// engine worker goroutine.
	NewWorker() Problem
}

// Off is the sentinel disabling a genetic operator probability.
// Config's zero value keeps the paper's defaults, so a literal 0 for
// CrossoverProb or MutationProb cannot mean "never apply the
// operator" — set the field to Off for that. Any other negative value
// is rejected by Run.
const Off = -1

// Config tunes the engine. The zero value is completed by
// (*Config).withDefaults; the paper's settings are population 400 and
// 300 generations.
type Config struct {
	// PopSize is the (even) population size.
	PopSize int
	// Generations is the number of evolution steps after the initial
	// population.
	Generations int
	// CrossoverProb is the probability of applying two-point
	// crossover to a mating pair (otherwise the parents are copied).
	// 0 means the paper's default (0.9); use Off to disable crossover
	// entirely.
	CrossoverProb float64
	// MutationProb is the probability of inverting one random gene of
	// each offspring (the paper's mutation operator). 0 means the
	// paper's default (1.0); use Off to disable mutation entirely.
	MutationProb float64
	// PerBitMutation, when positive, replaces the single-gene
	// operator by an independent per-gene flip rate (classic binary
	// GA mutation). Used by the ablation benches.
	PerBitMutation float64
	// InitDensity is the 1-probability of the random initial genes.
	InitDensity float64
	// Seeds injects known genomes into the initial population (warm
	// start); the remainder is drawn randomly. Each seed must match
	// the problem's genome length. More seeds than the population
	// size is an error.
	Seeds [][]byte
	// Workers > 1 evaluates each generation's distinct new genomes on
	// that many goroutines. The run is bit-for-bit identical to the
	// serial one (operators, caching order and counters are
	// unaffected). Problems implementing PerWorkerProblem get one
	// private evaluation view per goroutine and need no locking;
	// plain Problems must make Evaluate safe for concurrent calls.
	Workers int
	// Seed drives the engine's private PRNG; runs are reproducible.
	Seed int64
	// ArchiveAll records every distinct evaluated genome, which the
	// Table II / Fig. 7 analyses need. The archive doubles as an
	// evaluation cache either way.
	ArchiveAll bool
	// WarmLookup, when non-nil, is consulted once per evaluation-cache
	// miss, before the problem is asked: ok = true resolves the new
	// genotype with the returned vector and skips its evaluation
	// entirely. The returned values MUST equal what Evaluate(genome)
	// would return bit-for-bit (a campaign seeds this from a completed
	// sibling run's checkpointed cache — evaluation is deterministic,
	// so the equality holds by construction); anything else silently
	// diverges the run. Counters, cache insertion order, the archive
	// and all results are identical with or without the hook — only
	// evaluation work is skipped. The engine interns the returned objs
	// slice into its own arena before returning, so the callback may
	// hand out a slice it owns (even one aliasing its backing store)
	// without detaching a copy per hit.
	WarmLookup func(genome []byte) (objs []float64, violation float64, ok bool)
	// AuxLen is the number of auxiliary float64 values serialized per
	// evaluation-cache entry in checkpoints (format v2): problem-side
	// state, such as derived metrics, that a resumed run needs without
	// re-evaluating the genotype. 0 (the default) writes no aux data.
	// Resuming a checkpoint whose aux dimension differs from AuxLen
	// fails loudly.
	AuxLen int
	// AuxFill, when non-nil and AuxLen > 0, supplies the aux values at
	// checkpoint-write time: it is called once per cache entry with aux
	// pre-filled with the entry's retained aux values (NaN when none),
	// and may overwrite them. Entries the problem has no aux for should
	// be left untouched. The genome slice must not be retained.
	AuxFill func(genome []byte, aux []float64)
	// OnGeneration, when non-nil, observes each generation's
	// population after survival selection. The Individual slice and
	// the genome bytes it references alias engine-owned scratch that
	// is reused by the next generation: callbacks that retain genomes
	// past their own return must copy them.
	OnGeneration func(gen int, pop []Individual)
}

func (c Config) withDefaults() Config {
	if c.PopSize <= 0 {
		c.PopSize = 400
	}
	if c.PopSize%2 == 1 {
		c.PopSize++
	}
	if c.Generations <= 0 {
		c.Generations = 300
	}
	switch {
	case c.CrossoverProb == 0:
		c.CrossoverProb = 0.9
	case c.CrossoverProb == Off:
		c.CrossoverProb = 0
	}
	switch {
	case c.MutationProb == 0:
		c.MutationProb = 1.0
	case c.MutationProb == Off:
		c.MutationProb = 0
	}
	if c.InitDensity == 0 {
		c.InitDensity = 0.5
	}
	return c
}

// Individual is one member of a population.
type Individual struct {
	Genome []byte
	Objs   []float64
	// Violation is the constraint-violation magnitude; 0 is feasible.
	Violation float64
	// Rank is the non-domination front index (0 is the best front).
	Rank int
	// Crowding is the crowding distance within the front; boundary
	// individuals carry +Inf.
	Crowding float64
}

// Feasible reports whether the individual satisfies every constraint.
func (i Individual) Feasible() bool { return i.Violation == 0 }

// ArchiveEntry records one distinct evaluated genotype.
type ArchiveEntry struct {
	Genome    []byte
	Objs      []float64
	Violation float64
	// Aux carries the checkpoint's per-entry auxiliary values (see
	// Config.AuxLen); nil when the source carries none.
	Aux []float64
}

// Feasible reports whether the archived genotype was valid.
func (e ArchiveEntry) Feasible() bool { return e.Violation == 0 }

// Result is the outcome of a run.
type Result struct {
	// Final is the last population, non-dominated-sorted.
	Final []Individual
	// Archive lists every distinct genome evaluated during the run
	// (only populated with Config.ArchiveAll).
	Archive []ArchiveEntry
	// Evaluations counts evaluation requests, ValidEvaluations those
	// requests that hit a feasible genotype (the paper's "number of
	// valid solutions generated", duplicates included),
	// DistinctEvaluated the distinct genotypes, and DistinctValid the
	// distinct feasible genotypes.
	Evaluations       int
	ValidEvaluations  int
	DistinctEvaluated int
	DistinctValid     int
}

// Run executes NSGA-II on the problem.
func Run(p Problem, cfg Config) (*Result, error) {
	e, err := NewEngine(p, cfg)
	if err != nil {
		return nil, err
	}
	for g := 0; g < e.cfg.Generations; g++ {
		e.Step()
	}
	return e.Result(), nil
}

// dominates implements Deb's constraint dominance for minimization:
// a feasible individual dominates any infeasible one; between two
// infeasible individuals the smaller violation dominates; between two
// feasible individuals, standard Pareto dominance.
func dominates(a, b Individual) bool {
	if a.Feasible() != b.Feasible() {
		return a.Feasible()
	}
	if !a.Feasible() {
		return a.Violation < b.Violation
	}
	strictly := false
	for i := range a.Objs {
		switch {
		case a.Objs[i] > b.Objs[i]:
			return false
		case a.Objs[i] < b.Objs[i]:
			strictly = true
		}
	}
	return strictly
}

// sortPopulation assigns ranks and crowding distances in place — the
// reference implementation of the engine's rankAndCrowd scratch pass.
func sortPopulation(pop []Individual) {
	fronts := fastNonDominatedSort(pop)
	for rank, front := range fronts {
		for _, i := range front {
			pop[i].Rank = rank
		}
		assignCrowding(pop, front)
	}
}

// fastNonDominatedSort returns the indices of each front (reference
// implementation; the Engine carries an allocation-free scratch
// version producing identical fronts).
func fastNonDominatedSort(pop []Individual) [][]int {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// assignCrowding computes crowding distances for one front (reference
// implementation).
func assignCrowding(pop []Individual, front []int) {
	if len(front) == 0 {
		return
	}
	for _, i := range front {
		pop[i].Crowding = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			pop[i].Crowding = math.Inf(1)
		}
		return
	}
	m := len(pop[front[0]].Objs)
	idx := make([]int, len(front))
	for obj := 0; obj < m; obj++ {
		copy(idx, front)
		sort.SliceStable(idx, func(a, b int) bool {
			return pop[idx[a]].Objs[obj] < pop[idx[b]].Objs[obj]
		})
		lo, hi := pop[idx[0]].Objs[obj], pop[idx[len(idx)-1]].Objs[obj]
		spread := hi - lo
		pop[idx[0]].Crowding = math.Inf(1)
		pop[idx[len(idx)-1]].Crowding = math.Inf(1)
		if spread <= 0 || math.IsInf(spread, 0) || math.IsNaN(spread) {
			// Degenerate axis (all equal, or infeasible front at
			// +Inf): contributes nothing.
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			d := (pop[idx[k+1]].Objs[obj] - pop[idx[k-1]].Objs[obj]) / spread
			if !math.IsInf(pop[idx[k]].Crowding, 1) {
				pop[idx[k]].Crowding += d
			}
		}
	}
}

// survive performs the elitist (mu + lambda) environmental selection:
// whole fronts are taken while they fit; the last partial front is
// truncated by crowding distance (reference implementation).
func survive(merged []Individual, size int) []Individual {
	fronts := fastNonDominatedSort(merged)
	for rank, front := range fronts {
		for _, i := range front {
			merged[i].Rank = rank
		}
		assignCrowding(merged, front)
	}
	next := make([]Individual, 0, size)
	for _, front := range fronts {
		if len(next)+len(front) <= size {
			for _, i := range front {
				next = append(next, merged[i])
			}
			continue
		}
		rest := make([]int, len(front))
		copy(rest, front)
		sort.SliceStable(rest, func(a, b int) bool {
			return merged[rest[a]].Crowding > merged[rest[b]].Crowding
		})
		for _, i := range rest[:size-len(next)] {
			next = append(next, merged[i])
		}
		break
	}
	return next
}

// FeasibleFront extracts the distinct feasible rank-0 individuals of
// a sorted population.
func FeasibleFront(pop []Individual) []Individual {
	seen := make(map[string]bool)
	var front []Individual
	for _, ind := range pop {
		if ind.Rank != 0 || !ind.Feasible() {
			continue
		}
		k := string(ind.Genome)
		if seen[k] {
			continue
		}
		seen[k] = true
		front = append(front, ind)
	}
	return front
}
