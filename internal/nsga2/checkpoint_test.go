package nsga2

import (
	"bytes"
	"math"
	"testing"
)

// ckptProblem is a deterministic problem with a feasibility
// constraint, so checkpoints carry both finite and +Inf objective
// vectors and nonzero violations.
func ckptProblem(n int) funcProblem {
	return funcProblem{n: n, m: 2, eval: func(g []byte) ([]float64, float64) {
		ones := countOnes(g)
		if ones == 0 {
			return []float64{math.Inf(1), math.Inf(1)}, 1
		}
		h := n / 2
		return []float64{float64(countOnes(g[:h])), float64(h - countOnes(g[h:]))}, 0
	}}
}

func popsEqual(t *testing.T, a, b []Individual, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: population sizes %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Genome, b[i].Genome) {
			t.Fatalf("%s: individual %d genomes differ", label, i)
		}
		if a[i].Rank != b[i].Rank || a[i].Violation != b[i].Violation {
			t.Fatalf("%s: individual %d rank/violation differ: %+v vs %+v", label, i, a[i], b[i])
		}
		if a[i].Crowding != b[i].Crowding && !(math.IsInf(a[i].Crowding, 1) && math.IsInf(b[i].Crowding, 1)) {
			t.Fatalf("%s: individual %d crowding %v vs %v", label, i, a[i].Crowding, b[i].Crowding)
		}
		for k := range a[i].Objs {
			if a[i].Objs[k] != b[i].Objs[k] && !(math.IsInf(a[i].Objs[k], 1) && math.IsInf(b[i].Objs[k], 1)) {
				t.Fatalf("%s: individual %d objective %d: %v vs %v", label, i, k, a[i].Objs[k], b[i].Objs[k])
			}
		}
	}
}

// TestCheckpointResumeReplaysExactly is the tentpole contract: an
// engine checkpointed mid-run and resumed into a FRESH engine (the
// cross-process shape — nothing shared but the problem definition)
// retraces the interrupted run bit for bit, population by population,
// through to an identical Result.
func TestCheckpointResumeReplaysExactly(t *testing.T) {
	p := ckptProblem(16)
	cfg := Config{PopSize: 24, Generations: 20, Seed: 99, ArchiveAll: true}

	ref, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 7; g++ {
		ref.Step()
		live.Step()
	}
	var buf bytes.Buffer
	if err := live.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ckptBytes := append([]byte(nil), buf.Bytes()...)

	resumed, err := ResumeEngine(p, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 7 {
		t.Fatalf("resumed at generation %d, want 7", resumed.Generation())
	}
	popsEqual(t, ref.Population(), resumed.Population(), "restored population")
	for g := 7; g < 20; g++ {
		ref.Step()
		resumed.Step()
		popsEqual(t, ref.Population(), resumed.Population(), "generation")
	}
	refRes, resRes := ref.Result(), resumed.Result()
	if refRes.Evaluations != resRes.Evaluations ||
		refRes.ValidEvaluations != resRes.ValidEvaluations ||
		refRes.DistinctEvaluated != resRes.DistinctEvaluated ||
		refRes.DistinctValid != resRes.DistinctValid {
		t.Fatalf("counters diverge: %+v vs %+v", refRes, resRes)
	}
	if len(refRes.Archive) != len(resRes.Archive) {
		t.Fatalf("archive sizes %d vs %d", len(refRes.Archive), len(resRes.Archive))
	}
	for i := range refRes.Archive {
		if !bytes.Equal(refRes.Archive[i].Genome, resRes.Archive[i].Genome) {
			t.Fatalf("archive order diverges at %d", i)
		}
	}

	// Byte-stability: re-checkpointing the same state (a second fresh
	// resume from the original bytes) encodes identically.
	again, err := ResumeEngine(p, cfg, bytes.NewReader(ckptBytes))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := again.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBytes, buf2.Bytes()) {
		t.Fatal("checkpoint encoding is not byte-stable across a resume round-trip")
	}
}

// TestCheckpointRejectsMismatch pins the fail-loud contract: wrong
// magic, unsupported version, mismatched geometry or seed, truncation
// and bit damage are all errors (never a silently diverging engine).
func TestCheckpointRejectsMismatch(t *testing.T) {
	p := ckptProblem(16)
	cfg := Config{PopSize: 12, Generations: 8, Seed: 3}
	e, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	resume := func(raw []byte, p Problem, cfg Config) error {
		_, err := ResumeEngine(p, cfg, bytes.NewReader(raw))
		return err
	}
	if err := resume(good, p, cfg); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if resume(bad, p, cfg) == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[6] ^= 0xff // version little-endian low byte
		if resume(bad, p, cfg) == nil {
			t.Fatal("unknown version accepted")
		}
	})
	t.Run("genome-length", func(t *testing.T) {
		if resume(good, ckptProblem(18), cfg) == nil {
			t.Fatal("genome-length mismatch accepted")
		}
	})
	t.Run("popsize", func(t *testing.T) {
		c := cfg
		c.PopSize = 20
		if resume(good, p, c) == nil {
			t.Fatal("population-size mismatch accepted")
		}
	})
	t.Run("seed", func(t *testing.T) {
		c := cfg
		c.Seed = 4
		if resume(good, p, c) == nil {
			t.Fatal("seed mismatch accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 5, 20, len(good) / 2, len(good) - 1} {
			if resume(good[:cut], p, cfg) == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// Flip one payload byte: the CRC (or a structural check) must
		// catch it. Probe several offsets across the file.
		for _, off := range []int{30, 60, len(good) / 2, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x01
			if resume(bad, p, cfg) == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
		}
	})
}

// TestVisitArchiveMatchesResult pins VisitArchive to the Result
// archive: same genomes, same insertion order, same verdicts.
func TestVisitArchiveMatchesResult(t *testing.T) {
	e, err := NewEngine(ckptProblem(12), Config{PopSize: 16, Generations: 6, Seed: 5, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 6; g++ {
		e.Step()
	}
	res := e.Result()
	i := 0
	e.VisitArchive(func(genome []byte, objs []float64, violation float64) {
		if i >= len(res.Archive) {
			t.Fatalf("VisitArchive yields more than the %d archived entries", len(res.Archive))
		}
		want := res.Archive[i]
		if !bytes.Equal(genome, want.Genome) || violation != want.Violation {
			t.Fatalf("entry %d diverges from Result archive", i)
		}
		i++
	})
	if i != len(res.Archive) {
		t.Fatalf("VisitArchive yielded %d entries, Result archived %d", i, len(res.Archive))
	}
}

// FuzzSnapshotDecode fuzzes the checkpoint decoder: arbitrary bytes
// must either resume cleanly or fail with an error — never panic and
// never hang. Seeded with a valid checkpoint and structured
// corruptions of it.
func FuzzSnapshotDecode(f *testing.F) {
	p := ckptProblem(8)
	cfg := Config{PopSize: 8, Generations: 4, Seed: 11}
	e, err := NewEngine(p, cfg)
	if err != nil {
		f.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("WACKPT"))
	huge := append([]byte(nil), good...)
	// Claim an enormous cache length to probe allocation bombs.
	for i := 0; i < 8 && len(good) > 60+i; i++ {
		huge[52+i] = 0xff
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		eng, err := ResumeEngine(p, cfg, bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A decodable checkpoint must yield a steppable engine.
		eng.Step()
	})
}
