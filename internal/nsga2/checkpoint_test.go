package nsga2

import (
	"bytes"
	"math"
	"testing"
)

// ckptProblem is a deterministic problem with a feasibility
// constraint, so checkpoints carry both finite and +Inf objective
// vectors and nonzero violations.
func ckptProblem(n int) funcProblem {
	return funcProblem{n: n, m: 2, eval: func(g []byte) ([]float64, float64) {
		ones := countOnes(g)
		if ones == 0 {
			return []float64{math.Inf(1), math.Inf(1)}, 1
		}
		h := n / 2
		return []float64{float64(countOnes(g[:h])), float64(h - countOnes(g[h:]))}, 0
	}}
}

func popsEqual(t *testing.T, a, b []Individual, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: population sizes %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Genome, b[i].Genome) {
			t.Fatalf("%s: individual %d genomes differ", label, i)
		}
		if a[i].Rank != b[i].Rank || a[i].Violation != b[i].Violation {
			t.Fatalf("%s: individual %d rank/violation differ: %+v vs %+v", label, i, a[i], b[i])
		}
		if a[i].Crowding != b[i].Crowding && !(math.IsInf(a[i].Crowding, 1) && math.IsInf(b[i].Crowding, 1)) {
			t.Fatalf("%s: individual %d crowding %v vs %v", label, i, a[i].Crowding, b[i].Crowding)
		}
		for k := range a[i].Objs {
			if a[i].Objs[k] != b[i].Objs[k] && !(math.IsInf(a[i].Objs[k], 1) && math.IsInf(b[i].Objs[k], 1)) {
				t.Fatalf("%s: individual %d objective %d: %v vs %v", label, i, k, a[i].Objs[k], b[i].Objs[k])
			}
		}
	}
}

// TestCheckpointResumeReplaysExactly is the tentpole contract: an
// engine checkpointed mid-run and resumed into a FRESH engine (the
// cross-process shape — nothing shared but the problem definition)
// retraces the interrupted run bit for bit, population by population,
// through to an identical Result.
func TestCheckpointResumeReplaysExactly(t *testing.T) {
	p := ckptProblem(16)
	cfg := Config{PopSize: 24, Generations: 20, Seed: 99, ArchiveAll: true}

	ref, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 7; g++ {
		ref.Step()
		live.Step()
	}
	var buf bytes.Buffer
	if err := live.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ckptBytes := append([]byte(nil), buf.Bytes()...)

	resumed, err := ResumeEngine(p, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 7 {
		t.Fatalf("resumed at generation %d, want 7", resumed.Generation())
	}
	popsEqual(t, ref.Population(), resumed.Population(), "restored population")
	for g := 7; g < 20; g++ {
		ref.Step()
		resumed.Step()
		popsEqual(t, ref.Population(), resumed.Population(), "generation")
	}
	refRes, resRes := ref.Result(), resumed.Result()
	if refRes.Evaluations != resRes.Evaluations ||
		refRes.ValidEvaluations != resRes.ValidEvaluations ||
		refRes.DistinctEvaluated != resRes.DistinctEvaluated ||
		refRes.DistinctValid != resRes.DistinctValid {
		t.Fatalf("counters diverge: %+v vs %+v", refRes, resRes)
	}
	if len(refRes.Archive) != len(resRes.Archive) {
		t.Fatalf("archive sizes %d vs %d", len(refRes.Archive), len(resRes.Archive))
	}
	for i := range refRes.Archive {
		if !bytes.Equal(refRes.Archive[i].Genome, resRes.Archive[i].Genome) {
			t.Fatalf("archive order diverges at %d", i)
		}
	}

	// Byte-stability: re-checkpointing the same state (a second fresh
	// resume from the original bytes) encodes identically.
	again, err := ResumeEngine(p, cfg, bytes.NewReader(ckptBytes))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := again.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBytes, buf2.Bytes()) {
		t.Fatal("checkpoint encoding is not byte-stable across a resume round-trip")
	}
}

// TestCheckpointRejectsMismatch pins the fail-loud contract: wrong
// magic, unsupported version, mismatched geometry or seed, truncation
// and bit damage are all errors (never a silently diverging engine).
func TestCheckpointRejectsMismatch(t *testing.T) {
	p := ckptProblem(16)
	cfg := Config{PopSize: 12, Generations: 8, Seed: 3}
	e, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	resume := func(raw []byte, p Problem, cfg Config) error {
		_, err := ResumeEngine(p, cfg, bytes.NewReader(raw))
		return err
	}
	if err := resume(good, p, cfg); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if resume(bad, p, cfg) == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[6] ^= 0xff // version little-endian low byte
		if resume(bad, p, cfg) == nil {
			t.Fatal("unknown version accepted")
		}
	})
	t.Run("genome-length", func(t *testing.T) {
		if resume(good, ckptProblem(18), cfg) == nil {
			t.Fatal("genome-length mismatch accepted")
		}
	})
	t.Run("popsize", func(t *testing.T) {
		c := cfg
		c.PopSize = 20
		if resume(good, p, c) == nil {
			t.Fatal("population-size mismatch accepted")
		}
	})
	t.Run("seed", func(t *testing.T) {
		c := cfg
		c.Seed = 4
		if resume(good, p, c) == nil {
			t.Fatal("seed mismatch accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 5, 20, len(good) / 2, len(good) - 1} {
			if resume(good[:cut], p, cfg) == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// Flip one payload byte: the CRC (or a structural check) must
		// catch it. Probe several offsets across the file.
		for _, off := range []int{30, 60, len(good) / 2, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x01
			if resume(bad, p, cfg) == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
		}
	})
}

// encodeV1Checkpoint renders engine-shaped state in the retired v1
// layout (no auxDim header field, no per-entry aux payload), with a
// correct CRC — the version-skew probe needs a stream that is wrong
// ONLY in its version.
func encodeV1Checkpoint(e *Engine) []byte {
	var buf bytes.Buffer
	cw := &crcWriter{w: &buf}
	cw.bytes(checkpointMagic[:])
	cw.u16(1)
	cw.u32(uint32(e.gl))
	cw.u32(uint32(e.nObj))
	cw.u32(uint32(e.size))
	cw.u64(uint64(e.cfg.Seed))
	cw.u64(uint64(e.gen))
	cw.u64(e.src.n)
	cw.u64(uint64(e.evals))
	cw.u64(uint64(e.validEvals))
	cw.u32(uint32(len(e.pop)))
	for i := range e.pop {
		cw.bytes(e.pop[i].Genome)
		cw.u32(uint32(e.pop[i].Rank))
		cw.f64(e.pop[i].Crowding)
	}
	cw.u64(uint64(len(e.cache.entries)))
	for i := range e.cache.entries {
		ent := &e.cache.entries[i]
		cw.bytes(ent.key)
		for _, o := range ent.objs {
			cw.f64(o)
		}
		cw.f64(ent.violation)
	}
	cw.u32(cw.crc)
	return buf.Bytes()
}

// TestCheckpointVersionSkew pins the cross-version contract: a PR
// 5-era (v1) checkpoint fed to the current decoder must produce a
// descriptive unsupported-version error — no panic, no silent parse
// of the shifted layout — through both ResumeEngine and the
// standalone archive reader.
func TestCheckpointVersionSkew(t *testing.T) {
	p := ckptProblem(16)
	cfg := Config{PopSize: 12, Generations: 8, Seed: 3}
	e, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	old := encodeV1Checkpoint(e)

	_, err = ResumeEngine(p, cfg, bytes.NewReader(old))
	if err == nil {
		t.Fatal("ResumeEngine accepted a v1 checkpoint")
	}
	if want := "format version 1, this build reads 2"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("ResumeEngine error %q does not describe the version skew (want substring %q)", err, want)
	}
	_, err = ReadCheckpointArchive(bytes.NewReader(old))
	if err == nil {
		t.Fatal("ReadCheckpointArchive accepted a v1 checkpoint")
	}
	if want := "format version 1, this build reads 2"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("ReadCheckpointArchive error %q does not describe the version skew (want substring %q)", err, want)
	}
}

// TestCheckpointAuxRoundTrip pins the v2 aux payload: AuxFill's
// values come back bit-exactly through both the resumed engine's
// archive and the standalone reader, and an aux-dimension mismatch
// between file and config fails loudly.
func TestCheckpointAuxRoundTrip(t *testing.T) {
	p := ckptProblem(12)
	cfg := Config{PopSize: 12, Generations: 6, Seed: 7, AuxLen: 2,
		AuxFill: func(genome []byte, aux []float64) {
			aux[0] = float64(countOnes(genome))
			aux[1] = -float64(len(genome))
		}}
	e, err := NewEngine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	arch, err := ReadCheckpointArchive(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if arch.AuxDim != 2 {
		t.Fatalf("AuxDim = %d, want 2", arch.AuxDim)
	}
	for i, ent := range arch.Entries {
		if len(ent.Aux) != 2 || ent.Aux[0] != float64(countOnes(ent.Genome)) || ent.Aux[1] != -float64(len(ent.Genome)) {
			t.Fatalf("entry %d aux = %v, not the AuxFill payload", i, ent.Aux)
		}
	}

	// A resumed engine carries the payload through VisitArchive and
	// re-encodes it byte-identically without AuxFill's help.
	cfgNoFill := cfg
	cfgNoFill.AuxFill = nil
	resumed, err := ResumeEngine(p, cfgNoFill, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	resumed.VisitArchive(func(genome []byte, objs []float64, violation float64, aux []float64) {
		if len(aux) != 2 || aux[0] != float64(countOnes(genome)) || aux[1] != -float64(len(genome)) {
			t.Fatalf("resumed aux = %v, not the AuxFill payload", aux)
		}
		n++
	})
	if n != len(arch.Entries) {
		t.Fatalf("resumed archive has %d entries, file has %d", n, len(arch.Entries))
	}
	var buf2 bytes.Buffer
	if err := resumed.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("aux payload does not re-encode byte-identically across a resume")
	}

	// Dimension mismatch: same file, config expecting a different aux
	// length.
	cfgMismatch := cfg
	cfgMismatch.AuxLen = 0
	cfgMismatch.AuxFill = nil
	if _, err := ResumeEngine(p, cfgMismatch, bytes.NewReader(raw)); err == nil {
		t.Fatal("aux-dimension mismatch accepted")
	}
}

// TestVisitArchiveMatchesResult pins VisitArchive to the Result
// archive: same genomes, same insertion order, same verdicts.
func TestVisitArchiveMatchesResult(t *testing.T) {
	e, err := NewEngine(ckptProblem(12), Config{PopSize: 16, Generations: 6, Seed: 5, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 6; g++ {
		e.Step()
	}
	res := e.Result()
	i := 0
	e.VisitArchive(func(genome []byte, objs []float64, violation float64, aux []float64) {
		if i >= len(res.Archive) {
			t.Fatalf("VisitArchive yields more than the %d archived entries", len(res.Archive))
		}
		want := res.Archive[i]
		if !bytes.Equal(genome, want.Genome) || violation != want.Violation {
			t.Fatalf("entry %d diverges from Result archive", i)
		}
		i++
	})
	if i != len(res.Archive) {
		t.Fatalf("VisitArchive yielded %d entries, Result archived %d", i, len(res.Archive))
	}
}

// TestResumeAllocsPerEntry pins the rehydration-cost contract: the
// marginal price of one more archive entry is about one heap
// allocation (the interned genome key) for both ResumeEngine and the
// standalone ReadCheckpointArchive — objective and aux vectors are
// carved from a chunked arena, not boxed per genotype. The bound is
// measured as a marginal rate between a small and a large checkpoint,
// so the fixed engine-construction cost cancels out.
func TestResumeAllocsPerEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	p := ckptProblem(16)
	mk := func(gens int) ([]byte, int, Config) {
		cfg := Config{PopSize: 32, Generations: gens, Seed: 17, ArchiveAll: true, AuxLen: 3,
			AuxFill: func(genome []byte, aux []float64) {
				aux[0] = float64(countOnes(genome))
				aux[1] = 2
				aux[2] = 3
			}}
		e, err := NewEngine(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < gens; g++ {
			e.Step()
		}
		var buf bytes.Buffer
		if err := e.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), e.ArchiveLen(), cfg
	}
	smallRaw, smallN, smallCfg := mk(2)
	largeRaw, largeN, largeCfg := mk(40)
	extra := largeN - smallN
	if extra < 100 {
		t.Fatalf("archives too close for a marginal measurement: %d vs %d entries", smallN, largeN)
	}

	marginal := func(label string, run func(raw []byte, cfg Config)) {
		small := testing.AllocsPerRun(5, func() { run(smallRaw, smallCfg) })
		large := testing.AllocsPerRun(5, func() { run(largeRaw, largeCfg) })
		perEntry := (large - small) / float64(extra)
		if perEntry > 2.0 {
			t.Errorf("%s: %.2f allocs per marginal archive entry (%d extra entries, %.0f -> %.0f allocs), want <= 2.0",
				label, perEntry, extra, small, large)
		}
	}
	marginal("ResumeEngine", func(raw []byte, cfg Config) {
		if _, err := ResumeEngine(p, cfg, bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	})
	marginal("ReadCheckpointArchive", func(raw []byte, cfg Config) {
		if _, err := ReadCheckpointArchive(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSnapshotDecode fuzzes the checkpoint decoder: arbitrary bytes
// must either resume cleanly or fail with an error — never panic and
// never hang. Seeded with a valid checkpoint and structured
// corruptions of it.
func FuzzSnapshotDecode(f *testing.F) {
	p := ckptProblem(8)
	cfg := Config{PopSize: 8, Generations: 4, Seed: 11}
	e, err := NewEngine(p, cfg)
	if err != nil {
		f.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("WACKPT"))
	huge := append([]byte(nil), good...)
	// Claim implausible counters (v2 header: validEvals at 56..63) to
	// probe the plausibility bounds.
	for i := 0; i < 8 && len(huge) > 64+i; i++ {
		huge[56+i] = 0xff
	}
	f.Add(huge)
	// Claim an enormous cache length to probe allocation bombs: the
	// v2 cache header sits after the 68-byte file header and the
	// popLen x (genomeLen + 4 + 8)-byte population section.
	bomb := append([]byte(nil), good...)
	cacheOff := 68 + e.size*(e.gl+12)
	for i := 0; i < 8 && len(bomb) > cacheOff+8+i; i++ {
		bomb[cacheOff+i] = 0xff
	}
	f.Add(bomb)
	// The retired v1 layout (version field says 1, no auxDim, no aux
	// payload) must be rejected on its version, never misparsed.
	eV1, err := NewEngine(p, cfg)
	if err != nil {
		f.Fatal(err)
	}
	eV1.Step()
	f.Add(encodeV1Checkpoint(eV1))
	// An aux-bearing v2 stream seeds the aux-section decode paths.
	cfgAux := cfg
	cfgAux.AuxLen = 3
	cfgAux.AuxFill = func(genome []byte, aux []float64) {
		aux[0] = float64(countOnes(genome))
	}
	eAux, err := NewEngine(p, cfgAux)
	if err != nil {
		f.Fatal(err)
	}
	eAux.Step()
	var bufAux bytes.Buffer
	if err := eAux.WriteCheckpoint(&bufAux); err != nil {
		f.Fatal(err)
	}
	f.Add(bufAux.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Both the aux-free and the aux-bearing configurations must
		// survive arbitrary input: resume cleanly or error, never
		// panic, never hang.
		for _, c := range []Config{cfg, cfgAux} {
			eng, err := ResumeEngine(p, c, bytes.NewReader(raw))
			if err != nil {
				continue
			}
			// A decodable checkpoint must yield a steppable engine.
			eng.Step()
		}
		_, _ = ReadCheckpointArchive(bytes.NewReader(raw))
	})
}
