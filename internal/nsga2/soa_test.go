package nsga2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// dupHeavyPopulation builds a population where ~85% of individuals
// duplicate one of ~n/8 archetype vectors — the shape real GA merges
// take — with optional NaN payloads sprinkled into objectives.
func dupHeavyPopulation(rng *rand.Rand, n, m int, nan bool) []Individual {
	archetypes := randomPopulation(rng, 2+n/8, m)
	pop := make([]Individual, n)
	for i := range pop {
		if rng.Intn(8) == 0 {
			pop[i] = randomPopulation(rng, 1, m)[0]
		} else {
			src := archetypes[rng.Intn(len(archetypes))]
			pop[i] = Individual{
				Objs:      append([]float64(nil), src.Objs...),
				Violation: src.Violation,
			}
		}
		if nan && rng.Intn(10) == 0 {
			pop[i].Objs[rng.Intn(m)] = math.NaN()
		}
	}
	return pop
}

// TestRelationBatchMatchesScalar pins the block relation kernel to the
// scalar pair relation element by element, at every unrolled width and
// the generic fallback, over duplicate-heavy populations carrying NaN
// objectives, infeasible +Inf rows and exact ties — the block kernel
// must be a pure batching of the scalar result, nothing more.
func TestRelationBatchMatchesScalar(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 4 + rng.Intn(60)
			pop := dupHeavyPopulation(rng, n, m, true)
			e := scratchEngine((n+1)/2+1, m)
			loadFlat(e, pop)
			js := make([]int32, 0, n)
			for trial := 0; trial < 8; trial++ {
				i := rng.Intn(n)
				js = js[:0]
				for j := 0; j < n; j++ {
					if rng.Intn(3) != 0 { // ragged blocks, not always 0..n-1
						js = append(js, int32(j))
					}
				}
				if len(js) == 0 {
					continue
				}
				e.ensureBatchScratch(len(js))
				out := e.relOut[:len(js)]
				before := e.relations
				e.relationBatch(i, js, out)
				if e.relations != before+int64(len(js)) {
					t.Logf("relationBatch counted %d relations, want %d", e.relations-before, len(js))
					return false
				}
				for k, j := range js {
					if want := e.relation(i, int(j)); int(out[k]) != want {
						t.Logf("m=%d relationBatch(%d)[%d]=%d, scalar relation(%d,%d)=%d (i=%+v j=%+v)",
							m, i, k, out[k], i, j, want, pop[i], pop[j])
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// TestFrontBuildersAgreeDupHeavy runs the sort-based builder, the
// batch-accelerated pairwise builder and the allocating reference over
// the SoA layout on duplicate-heavy populations at m in {2,3,4,5}:
// fronts, member order, ranks and crowding must agree bit for bit.
func TestFrontBuildersAgreeDupHeavy(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 8 + rng.Intn(70)
			pop := dupHeavyPopulation(rng, n, m, false)
			ref := make([]Individual, n)
			copy(ref, pop)
			refFronts := fastNonDominatedSort(ref)
			for rank, front := range refFronts {
				for _, i := range front {
					ref[i].Rank = rank
				}
				assignCrowding(ref, front)
			}
			for _, pairwise := range []bool{false, true} {
				got := make([]Individual, n)
				copy(got, pop)
				for i := range got {
					got[i].Rank, got[i].Crowding = 0, 0
				}
				e := scratchEngine((n+1)/2+1, m)
				e.forcePairwise = pairwise
				gotFronts := e.rankAndCrowd(got)
				if len(gotFronts) != len(refFronts) {
					return false
				}
				for fi := range refFronts {
					if len(gotFronts[fi]) != len(refFronts[fi]) {
						return false
					}
					for k := range refFronts[fi] {
						if gotFronts[fi][k] != refFronts[fi][k] {
							return false
						}
					}
				}
				for i := range ref {
					if got[i].Rank != ref[i].Rank ||
						math.Float64bits(got[i].Crowding) != math.Float64bits(ref[i].Crowding) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// fuzzObjective maps one fuzz byte onto the objective domain that
// stresses dominance: small tied integers plus the IEEE specials.
func fuzzObjective(b byte) float64 {
	switch b % 16 {
	case 15:
		return math.NaN()
	case 14:
		return math.Inf(1)
	case 13:
		return math.Inf(-1)
	case 12:
		return math.Copysign(0, -1)
	default:
		return float64(b % 6)
	}
}

// fuzzViolation maps one fuzz byte onto the violation domain: mostly
// feasible, with graded, infinite and NaN violations mixed in.
func fuzzViolation(b byte) float64 {
	switch b % 8 {
	case 4:
		return 1
	case 5:
		return 2.5
	case 6:
		return math.Inf(1)
	case 7:
		return math.NaN()
	default:
		return 0
	}
}

// FuzzFrontBuilders decodes arbitrary bytes into a population (one
// byte per objective plus a violation byte per individual, spanning
// ties, duplicates, +/-Inf, -0 and NaN) and cross-checks the three
// front builders — ENS sort-based, batch pairwise, allocating
// reference — plus the block relation kernel against the scalar one.
func FuzzFrontBuilders(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 2, 1, 0, 1, 1, 4}, uint8(0))
	f.Add([]byte{15, 3, 0, 14, 14, 4, 13, 12, 0, 1, 1, 7}, uint8(1))
	dup := make([]byte, 0, 120)
	for i := 0; i < 30; i++ { // ~85% duplicates of three archetypes
		a := byte(i % 3)
		dup = append(dup, a, a+1, 5-a, byte(i%5))
	}
	f.Add(dup, uint8(1))
	f.Add([]byte{14, 14, 14, 14, 4, 14, 14, 14, 14, 5, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, mRaw uint8) {
		m := 2 + int(mRaw%4)
		stride := m + 1
		n := len(data) / stride
		if n < 2 {
			return
		}
		if n > 96 {
			n = 96
		}
		pop := make([]Individual, n)
		nanObjs := false
		for i := range pop {
			row := data[i*stride : (i+1)*stride]
			objs := make([]float64, m)
			for k := range objs {
				objs[k] = fuzzObjective(row[k])
				if math.IsNaN(objs[k]) {
					nanObjs = true
				}
			}
			pop[i] = Individual{Objs: objs, Violation: fuzzViolation(row[m])}
		}

		ref := make([]Individual, n)
		copy(ref, pop)
		refFronts := fastNonDominatedSort(ref)
		for rank, front := range refFronts {
			for _, i := range front {
				ref[i].Rank = rank
			}
			assignCrowding(ref, front)
		}
		for _, pairwise := range []bool{false, true} {
			got := make([]Individual, n)
			copy(got, pop)
			for i := range got {
				got[i].Rank, got[i].Crowding = 0, 0
			}
			e := scratchEngine((n+1)/2+1, m)
			e.forcePairwise = pairwise
			gotFronts := e.rankAndCrowd(got)
			if len(gotFronts) != len(refFronts) {
				t.Fatalf("pairwise=%v: %d fronts, reference has %d", pairwise, len(gotFronts), len(refFronts))
			}
			for fi := range refFronts {
				if len(gotFronts[fi]) != len(refFronts[fi]) {
					t.Fatalf("pairwise=%v front %d: %d members, reference has %d",
						pairwise, fi, len(gotFronts[fi]), len(refFronts[fi]))
				}
				for k := range refFronts[fi] {
					if gotFronts[fi][k] != refFronts[fi][k] {
						t.Fatalf("pairwise=%v front %d member %d: %d, reference %d",
							pairwise, fi, k, gotFronts[fi][k], refFronts[fi][k])
					}
				}
			}
			for i := range ref {
				if got[i].Rank != ref[i].Rank {
					t.Fatalf("pairwise=%v: rank[%d]=%d, reference %d", pairwise, i, got[i].Rank, ref[i].Rank)
				}
				// NaN objectives make crowding's comparison-based sort
				// order implementation-defined; ranks above still pin
				// the dominance structure in that regime.
				if !nanObjs && math.Float64bits(got[i].Crowding) != math.Float64bits(ref[i].Crowding) {
					t.Fatalf("pairwise=%v: crowding[%d]=%v, reference %v", pairwise, i, got[i].Crowding, ref[i].Crowding)
				}
			}
		}

		// The block relation kernel must agree with the scalar relation
		// on every pair, NaN and all.
		e := scratchEngine((n+1)/2+1, m)
		loadFlat(e, pop)
		js := make([]int32, n)
		for j := range js {
			js[j] = int32(j)
		}
		e.ensureBatchScratch(n)
		out := e.relOut[:n]
		for i := 0; i < n; i++ {
			e.relationBatch(i, js, out)
			for j := 0; j < n; j++ {
				if want := e.relation(i, j); int(out[j]) != want {
					t.Fatalf("relationBatch(%d)[%d]=%d, scalar=%d", i, j, out[j], want)
				}
			}
		}
	})
}
