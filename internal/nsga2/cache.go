package nsga2

import (
	"bytes"
	"hash/maphash"
	"math"
)

// genomeCache is the engine's evaluation cache and archive: an
// open-addressing hash table over interned genome keys whose entry
// slice doubles as the insertion-order archive. Unlike a
// map[string]..., a lookup never converts the genome to a string and
// never allocates: the probe compares the 64-bit hash first and the
// interned key bytes only on a hash match. Only inserting a
// previously unseen genome allocates (the interned key copy and the
// table growth), which is exactly the data the run retains anyway.
type genomeCache struct {
	seed    maphash.Seed
	entries []cacheEntry
	// table holds 1-based indices into entries (0 = empty slot) and
	// always has power-of-two length; mask is len(table)-1.
	table []int32
	mask  uint64
}

// cacheEntry is one distinct evaluated genotype in insertion order.
// A freshly inserted entry is pending (violation NaN) until the
// evaluation batch that created it stores its result.
type cacheEntry struct {
	hash      uint64
	key       []byte
	objs      []float64
	violation float64
	// aux is the checkpoint-carried auxiliary payload (Config.AuxLen
	// values) restored on resume; nil for entries evaluated live. The
	// engine never interprets it — it exists so problems can persist
	// evaluation-derived side state across checkpoint round-trips.
	aux []float64
}

func newGenomeCache() genomeCache {
	const initialSlots = 1024
	return genomeCache{
		seed:  maphash.MakeSeed(),
		table: make([]int32, initialSlots),
		mask:  initialSlots - 1,
	}
}

// lookup returns the entry index of g, or false. Allocation-free.
func (c *genomeCache) lookup(g []byte) (int, bool) {
	h := maphash.Bytes(c.seed, g)
	for slot := h & c.mask; ; slot = (slot + 1) & c.mask {
		t := c.table[slot]
		if t == 0 {
			return 0, false
		}
		e := &c.entries[t-1]
		if e.hash == h && bytes.Equal(e.key, g) {
			return int(t - 1), true
		}
	}
}

// insert interns a copy of g as a new pending entry and returns its
// index. The caller must know g is absent (lookup first).
func (c *genomeCache) insert(g []byte) int {
	// Grow at 3/4 load so probe chains stay short.
	if uint64(len(c.entries)+1)*4 >= uint64(len(c.table))*3 {
		c.grow()
	}
	h := maphash.Bytes(c.seed, g)
	idx := len(c.entries)
	c.entries = append(c.entries, cacheEntry{
		hash:      h,
		key:       append([]byte(nil), g...),
		violation: math.NaN(),
	})
	for slot := h & c.mask; ; slot = (slot + 1) & c.mask {
		if c.table[slot] == 0 {
			c.table[slot] = int32(idx + 1)
			break
		}
	}
	return idx
}

func (c *genomeCache) grow() {
	nt := make([]int32, 2*len(c.table))
	mask := uint64(len(nt) - 1)
	for i := range c.entries {
		h := c.entries[i].hash
		for slot := h & mask; ; slot = (slot + 1) & mask {
			if nt[slot] == 0 {
				nt[slot] = int32(i + 1)
				break
			}
		}
	}
	c.table, c.mask = nt, mask
}
