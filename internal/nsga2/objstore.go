package nsga2

// objStore is a chunked float64 arena for cache-entry objective and
// aux vectors. Rehydrating a checkpoint (or decoding a warm-cache
// archive) used to box two small slices per entry; the store carves
// them out of large chunks instead, cutting the resume path to one
// allocation per chunk. Chunks are never reallocated or reused —
// previously carved slices stay valid for the owner's lifetime, which
// is exactly the retention contract cache entries already have.
type objStore struct {
	cur []float64
}

// storeChunk is the arena chunk size in float64s (128 KiB chunks):
// large enough to amortize to well under one allocation per entry,
// small enough that a mostly-unused tail chunk costs little.
const storeChunk = 16384

// alloc carves an n-float slice (len n, full capacity) from the
// current chunk, starting a fresh chunk when it would overflow.
func (s *objStore) alloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	if len(s.cur)+n > cap(s.cur) {
		c := storeChunk
		if c < n {
			c = n
		}
		s.cur = make([]float64, 0, c)
	}
	off := len(s.cur)
	s.cur = s.cur[: off+n : cap(s.cur)]
	return s.cur[off : off+n : off+n]
}

// intern copies v into the arena and returns the arena-owned copy.
func (s *objStore) intern(v []float64) []float64 {
	dst := s.alloc(len(v))
	copy(dst, v)
	return dst
}
