package nsga2

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Engine is an incremental NSGA-II run: NewEngine evaluates and ranks
// the initial population, each Step advances one generation, and
// Result assembles the outcome at any point. Run wraps the three for
// the common case.
//
// The engine owns a scratch arena sized once at construction — genome
// slabs for the population, offspring and survivors, per-objective
// column buffers and packed violation words for the non-dominated
// sort (see the SoA scratch fields), index buffers for crowding and
// truncation, and the interned-key genome cache — so a steady-state
// Step performs zero heap allocations
// beyond the entries retained for newly discovered genotypes (and the
// problem's own allocations while evaluating them). Everything a Step
// hands out (OnGeneration populations, Population) aliases that
// arena; Result detaches what it returns.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	p       Problem
	cfg     Config
	rng     *rand.Rand
	src     *countingSource
	workers []Problem

	gl   int // genome length
	nObj int
	size int // population size (even)
	gen  int

	evals      int
	validEvals int

	cache genomeCache

	// Population arena: pop always aliases popBuf, whose genomes live
	// in curSlab; offspring go to offBuf/offSlab; survivors are built
	// in nextBuf/nextSlab, then the buffers swap roles.
	pop      []Individual
	popBuf   []Individual
	nextBuf  []Individual
	offBuf   []Individual
	merged   []Individual
	curSlab  []byte
	nextSlab []byte
	offSlab  []byte

	// Batch-evaluation scratch. offMeta records, per offspring, the
	// variation-pipeline provenance (mating parents and, for pure
	// single-gene mutants, the flipped gene); jobP1/jobP2/jobGene carry
	// it per distinct new genome so the evaluation fan-out can route
	// through the problem's delta kernel.
	rowRefs  [][]byte
	jobs     []int
	entryIdx []int
	offMeta  []offMeta
	jobP1    [][]byte
	jobP2    [][]byte
	jobGene  []int32
	deltaP   DeltaProblem   // e.p's delta view, when implemented
	deltaW   []DeltaProblem // per-worker delta views, aligned with workers
	// Write-into views (see IntoProblem): when implemented, cache
	// entries get arena rows carved at insert time and the problem
	// writes objectives straight into them — no per-evaluation boxing.
	// deltaIntoP/deltaIntoW are only set when the plain into view is
	// too, so every into-routed job has its row pre-carved.
	intoP      IntoProblem
	intoW      []IntoProblem
	deltaIntoP DeltaIntoProblem
	deltaIntoW []DeltaIntoProblem

	// Rank/crowd scratch (sized for the merged 2*size population),
	// laid out struct-of-arrays: objCol holds one contiguous column
	// per objective (all carved from objColBuf), and vfW packs each
	// individual's violation/feasibility into one word — the IEEE-754
	// bits of the violation, so feasibility is `vfW[i]<<1 == 0`
	// (violation == ±0) and the numeric value is a free bitcast back.
	// The relation kernels, the lexicographic pre-sort, the duplicate-
	// group hash and the crowding sweeps all walk whole columns instead
	// of striding interleaved rows.
	// The pair-relation pass runs over duplicate groups — individuals
	// with bit-identical (violation, objectives) vectors — instead of
	// individuals: groupOf/gRep/gSize/gHash/gTable find the groups,
	// gDom holds each group's dominated groups, gmStart/gMembers list
	// each group's members, and zbuf batches individuals whose
	// domination count hits zero so fronts keep the reference order.
	objCol    [][]float64
	objColBuf []float64
	vfW       []uint64
	// relationBatch scratch: per-element better-than flags and the
	// relation output block of the pairwise builder.
	batchIB  []uint8
	batchJB  []uint8
	relOut   []int8
	domCount []int32
	groupOf  []int32
	gRep     []int32
	gSize    []int32
	gCur     []int32
	gHash    []uint64
	gTable   []int32
	gMask    uint64
	gDom     [][]int32
	gmStart  []int32
	gMembers []int32
	zbuf     []int
	fronts   [][]int
	frontBuf []int
	crowdIdx []int
	rest     []int
	oSort    objSorter
	cSort    crowdSorter

	// Sorted-ranking scratch (the ENS path; see buildFrontsSorted):
	// group ids in dominance-compatible sorted order, per-front
	// linked-list heads and per-group next links, the per-group unlock
	// positions and final last-member positions used to reconstruct
	// the reference front order, and the previous/current front group
	// lists of the reconstruction sweep. forcePairwise pins the
	// retained pair-relation path (the property-test oracle and the
	// NaN fallback) for tests and benchmarks.
	sGroups       []int32
	gFrontOf      []int32
	gHead         []int32
	gNext         []int32
	gP            []int32
	gLastPos      []int32
	gPrevF        []int32
	gCurF         []int32
	gSortLex      lexSorter
	gSortPos      posSorter
	fSort         frontSorter
	forcePairwise bool

	// store is the engine's chunked objective arena: cache entries'
	// objective and aux vectors are carved from it instead of being
	// boxed one allocation each (checkpoint rehydration, warm hits and
	// — for IntoProblem problems — live evaluation all intern through
	// it). Chunks are never reallocated, so carved slices stay valid
	// for the engine's lifetime.
	store objStore

	// Instrumentation counters (see Stats).
	cacheHits int64
	warmHits  int64
	relations int64
}

// offMeta is one offspring's variation-pipeline record: the genomes
// of its mating parents (aliasing the current population slab, valid
// through the generation's evaluation) and the flipped gene index
// when the offspring is a pure single-gene mutant of p1 — crossover
// skipped or a no-op swap, and exactly one mutation flip — or -1.
type offMeta struct {
	p1, p2 []byte
	gene   int32
}

// countingSource wraps the standard math/rand source, counting state
// advances so Restore can rebuild the exact PRNG position by fast-
// forwarding a fresh source. Both Int63 and Uint64 advance the
// underlying generator by one step, so a single counter suffices.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// newCountedRNG builds the engine PRNG: the exact sequence of
// rand.New(rand.NewSource(seed)), observed through a draw counter.
func newCountedRNG(seed int64) (*rand.Rand, *countingSource) {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return rand.New(src), src
}

// NewEngine validates the configuration, sizes the scratch arena, and
// evaluates and ranks the initial population (seeds first, then
// random genomes).
func NewEngine(p Problem, cfg Config) (*Engine, error) {
	e, err := newEngineArena(p, cfg)
	if err != nil {
		return nil, err
	}
	P := e.size
	e.rowRefs = e.rowRefs[:0]
	for i := 0; i < P; i++ {
		row := e.curRow(i)
		if i < len(e.cfg.Seeds) {
			copy(row, e.cfg.Seeds[i])
		} else {
			e.fillRandomGenome(row)
		}
		e.rowRefs = append(e.rowRefs, row)
	}
	e.evaluateBatch(e.rowRefs, nil, e.popBuf)
	e.pop = e.popBuf[:P]
	e.rankAndCrowd(e.pop)
	return e, nil
}

// newEngineArena validates the configuration and builds an engine
// with its scratch arena sized, its PRNG seeded and its worker pool
// ready — but with no population yet. NewEngine initializes the
// population from seeds and random genomes; ResumeEngine loads it
// from a checkpoint instead.
func newEngineArena(p Problem, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if p.GenomeLen() <= 0 {
		return nil, fmt.Errorf("nsga2: genome length must be positive")
	}
	if p.NumObjectives() <= 0 {
		return nil, fmt.Errorf("nsga2: need at least one objective")
	}
	if cfg.CrossoverProb < 0 || cfg.CrossoverProb > 1 {
		return nil, fmt.Errorf("nsga2: crossover probability %v outside [0,1] (use nsga2.Off to disable)", cfg.CrossoverProb)
	}
	if cfg.MutationProb < 0 || cfg.MutationProb > 1 {
		return nil, fmt.Errorf("nsga2: mutation probability %v outside [0,1] (use nsga2.Off to disable)", cfg.MutationProb)
	}
	if len(cfg.Seeds) > cfg.PopSize {
		return nil, fmt.Errorf("nsga2: %d seeds exceed population %d", len(cfg.Seeds), cfg.PopSize)
	}
	for i, s := range cfg.Seeds {
		if len(s) != p.GenomeLen() {
			return nil, fmt.Errorf("nsga2: seed %d has %d genes, want %d", i, len(s), p.GenomeLen())
		}
	}
	P, gl, m := cfg.PopSize, p.GenomeLen(), p.NumObjectives()
	e := &Engine{
		p:     p,
		cfg:   cfg,
		gl:    gl,
		nObj:  m,
		size:  P,
		cache: newGenomeCache(),

		popBuf:   make([]Individual, P),
		nextBuf:  make([]Individual, P),
		offBuf:   make([]Individual, P),
		merged:   make([]Individual, 0, 2*P),
		curSlab:  make([]byte, P*gl),
		nextSlab: make([]byte, P*gl),
		offSlab:  make([]byte, P*gl),

		rowRefs:  make([][]byte, 0, P),
		jobs:     make([]int, 0, P),
		entryIdx: make([]int, 0, P),
		offMeta:  make([]offMeta, 0, P),
		jobP1:    make([][]byte, 0, P),
		jobP2:    make([][]byte, 0, P),
		jobGene:  make([]int32, 0, P),

		objCol:    make([][]float64, m),
		objColBuf: make([]float64, 2*P*m),
		vfW:       make([]uint64, 2*P),
		batchIB:   make([]uint8, 2*P),
		batchJB:   make([]uint8, 2*P),
		relOut:    make([]int8, 2*P),
		domCount:  make([]int32, 2*P),
		groupOf:   make([]int32, 2*P),
		gRep:      make([]int32, 2*P),
		gSize:     make([]int32, 2*P),
		gCur:      make([]int32, 2*P),
		gHash:     make([]uint64, 2*P),
		gDom:      make([][]int32, 2*P),
		gmStart:   make([]int32, 2*P+1),
		gMembers:  make([]int32, 2*P),
		zbuf:      make([]int, 0, 2*P),
		frontBuf:  make([]int, 0, 2*P),
		crowdIdx:  make([]int, 2*P),
		rest:      make([]int, 0, 2*P),
	}
	for k := 0; k < m; k++ {
		e.objCol[k] = e.objColBuf[k*2*P : (k+1)*2*P : (k+1)*2*P]
	}
	// The group hash table stays at most half full at 4*P slots.
	gt := 1
	for gt < 4*P {
		gt *= 2
	}
	e.gTable = make([]int32, gt)
	e.gMask = uint64(gt - 1)
	e.ensureSortScratch(2 * P)
	e.rng, e.src = newCountedRNG(cfg.Seed)
	if dp, ok := p.(DeltaProblem); ok {
		e.deltaP = dp
	}
	if ip, ok := p.(IntoProblem); ok {
		e.intoP = ip
		if dip, ok := p.(DeltaIntoProblem); ok {
			e.deltaIntoP = dip
		}
	}
	if cfg.Workers > 1 {
		e.workers = make([]Problem, cfg.Workers)
		e.deltaW = make([]DeltaProblem, cfg.Workers)
		e.intoW = make([]IntoProblem, cfg.Workers)
		e.deltaIntoW = make([]DeltaIntoProblem, cfg.Workers)
		for w := range e.workers {
			if pw, ok := p.(PerWorkerProblem); ok {
				e.workers[w] = pw.NewWorker()
			} else {
				e.workers[w] = p
			}
			if dw, ok := e.workers[w].(DeltaProblem); ok {
				e.deltaW[w] = dw
			}
			// Workers only use the into views when the parent problem
			// has them too: the parent's view is what gates the
			// arena-row pre-carve at insert time.
			if iw, ok := e.workers[w].(IntoProblem); ok && e.intoP != nil {
				e.intoW[w] = iw
				if diw, ok := e.workers[w].(DeltaIntoProblem); ok {
					e.deltaIntoW[w] = diw
				}
			}
		}
	}
	return e, nil
}

func (e *Engine) curRow(i int) []byte {
	return e.curSlab[i*e.gl : (i+1)*e.gl : (i+1)*e.gl]
}

func (e *Engine) offRow(i int) []byte {
	return e.offSlab[i*e.gl : (i+1)*e.gl : (i+1)*e.gl]
}

// Generation returns the number of completed Steps.
func (e *Engine) Generation() int { return e.gen }

// Config returns the engine's effective configuration (defaults
// applied), e.g. to read the target generation count of a run driven
// Step by Step.
func (e *Engine) Config() Config { return e.cfg }

// Population returns the current ranked population. The slice and its
// genomes alias engine scratch: they are valid until the next Step or
// Restore. Copy to retain.
func (e *Engine) Population() []Individual { return e.pop }

// Step advances one generation: binary-tournament mating, two-point
// crossover, mutation, batched (optionally parallel) evaluation of
// the distinct new genomes, and elitist survival over the merged
// parent+offspring population.
func (e *Engine) Step() {
	off := e.makeOffspring()
	m := append(e.merged[:0], e.pop...)
	m = append(m, off...)
	e.pop = e.surviveInto(m)
	if e.cfg.OnGeneration != nil {
		e.cfg.OnGeneration(e.gen, e.pop)
	}
	e.gen++
}

// Result assembles the run outcome. The returned population and
// archive are detached from engine scratch (archive genomes are the
// cache's interned keys, which the engine never mutates), so the
// result stays valid across further Steps.
func (e *Engine) Result() *Result {
	res := &Result{
		Final:             make([]Individual, len(e.pop)),
		Evaluations:       e.evals,
		ValidEvaluations:  e.validEvals,
		DistinctEvaluated: len(e.cache.entries),
	}
	copy(res.Final, e.pop)
	for i := range res.Final {
		res.Final[i].Genome = append([]byte(nil), res.Final[i].Genome...)
	}
	for i := range e.cache.entries {
		ent := &e.cache.entries[i]
		if ent.violation == 0 {
			res.DistinctValid++
		}
		if e.cfg.ArchiveAll {
			res.Archive = append(res.Archive, ArchiveEntry{Genome: ent.key, Objs: ent.objs, Violation: ent.violation})
		}
	}
	return res
}

// fillRandomGenome draws a random chromosome into g, consuming the
// PRNG exactly like the original engine.
func (e *Engine) fillRandomGenome(g []byte) {
	for i := range g {
		g[i] = 0
		if e.rng.Float64() < e.cfg.InitDensity {
			g[i] = 1
		}
	}
}

// evaluateBatch resolves a generation's genomes through the dedup
// cache, evaluating the distinct new ones — in parallel when Workers
// is set — and writes the individuals into out (one per genome, same
// order). meta, when non-nil, is the per-offspring variation record
// (same order as genomes): misses whose problem implements
// DeltaProblem are routed through the delta kernel with their mating
// parents, and Config.WarmLookup can short-circuit a miss entirely.
// Cache insertion order, counters and results are identical to a
// serial run without either hook.
func (e *Engine) evaluateBatch(genomes [][]byte, meta []offMeta, out []Individual) {
	e.jobs = e.jobs[:0]
	e.entryIdx = e.entryIdx[:0]
	e.jobP1 = e.jobP1[:0]
	e.jobP2 = e.jobP2[:0]
	e.jobGene = e.jobGene[:0]
	for gi, g := range genomes {
		idx, ok := e.cache.lookup(g)
		if ok {
			e.cacheHits++
		} else {
			idx = e.cache.insert(g)
			if e.cfg.WarmLookup != nil {
				if objs, viol, warm := e.cfg.WarmLookup(g); warm {
					// Warm hit: the entry is resolved without any
					// evaluation work; counters and archive order are
					// untouched. The vector is interned into the
					// engine's arena, so the lookup may alias its own
					// storage instead of detaching a copy per hit.
					e.warmHits++
					ent := &e.cache.entries[idx]
					ent.objs, ent.violation = e.store.intern(objs), viol
					e.entryIdx = append(e.entryIdx, idx)
					continue
				}
			}
			if e.intoP != nil {
				// Arena row for the objective write-out: carved
				// serially here so the concurrent fill below never
				// touches the store.
				e.cache.entries[idx].objs = e.store.alloc(e.nObj)
			}
			e.jobs = append(e.jobs, idx)
			if meta != nil {
				e.jobP1 = append(e.jobP1, meta[gi].p1)
				e.jobP2 = append(e.jobP2, meta[gi].p2)
				e.jobGene = append(e.jobGene, meta[gi].gene)
			} else {
				e.jobP1 = append(e.jobP1, nil)
				e.jobP2 = append(e.jobP2, nil)
				e.jobGene = append(e.jobGene, -1)
			}
		}
		e.entryIdx = append(e.entryIdx, idx)
	}
	// All inserts for this batch are done, so the entries slice is
	// stable while the jobs are filled (possibly concurrently).
	if len(e.workers) > 0 && len(e.jobs) > 1 {
		// Fixed worker pool pulling job indices from an atomic
		// counter: each worker keeps its own evaluation state for the
		// whole generation, and results land at their entry, so
		// scheduling order cannot influence the outcome.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < len(e.workers) && w < len(e.jobs); w++ {
			wg.Add(1)
			go func(p Problem, dp DeltaProblem, ip IntoProblem, dip DeltaIntoProblem) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.jobs) {
						return
					}
					ent := &e.cache.entries[e.jobs[i]]
					switch {
					case dip != nil && e.jobP1[i] != nil:
						ent.violation = dip.EvaluateDeltaObjsInto(ent.objs, ent.key, e.jobP1[i], e.jobP2[i], int(e.jobGene[i]))
					case dp != nil && e.jobP1[i] != nil:
						ent.objs, ent.violation = dp.EvaluateDelta(ent.key, e.jobP1[i], e.jobP2[i], int(e.jobGene[i]))
					case ip != nil:
						ent.violation = ip.EvaluateObjsInto(ent.objs, ent.key)
					default:
						ent.objs, ent.violation = p.Evaluate(ent.key)
					}
				}
			}(e.workers[w], e.deltaW[w], e.intoW[w], e.deltaIntoW[w])
		}
		wg.Wait()
	} else {
		for i, ji := range e.jobs {
			ent := &e.cache.entries[ji]
			switch {
			case e.deltaIntoP != nil && e.jobP1[i] != nil:
				ent.violation = e.deltaIntoP.EvaluateDeltaObjsInto(ent.objs, ent.key, e.jobP1[i], e.jobP2[i], int(e.jobGene[i]))
			case e.deltaP != nil && e.jobP1[i] != nil:
				ent.objs, ent.violation = e.deltaP.EvaluateDelta(ent.key, e.jobP1[i], e.jobP2[i], int(e.jobGene[i]))
			case e.intoP != nil:
				ent.violation = e.intoP.EvaluateObjsInto(ent.objs, ent.key)
			default:
				ent.objs, ent.violation = e.p.Evaluate(ent.key)
			}
		}
	}
	for i, g := range genomes {
		e.evals++
		ent := &e.cache.entries[e.entryIdx[i]]
		if ent.violation == 0 {
			e.validEvals++
		}
		out[i] = Individual{Genome: g, Objs: ent.objs, Violation: ent.violation}
	}
}

// makeOffspring builds PopSize children by binary tournament,
// two-point crossover and mutation into the offspring slab, recording
// each offspring's provenance (mating parents; flipped gene for pure
// single-gene mutants) for the delta-aware evaluation fan-out. The
// genetic operators run serially (they consume the engine's PRNG);
// evaluation is batched.
func (e *Engine) makeOffspring() []Individual {
	e.rowRefs = e.rowRefs[:0]
	e.offMeta = e.offMeta[:0]
	for n := 0; n < e.size; n += 2 {
		p1 := e.tournament()
		p2 := e.tournament()
		c1, c2 := e.offRow(n), e.offRow(n+1)
		copy(c1, p1.Genome)
		copy(c2, p2.Genome)
		crossed := false
		if e.rng.Float64() < e.cfg.CrossoverProb {
			crossed = e.twoPointCrossover(c1, c2)
		}
		g1 := e.mutate(c1)
		g2 := e.mutate(c2)
		if crossed {
			// A real (non-no-op) crossover mixes rows from both
			// parents: the children are not single-gene mutants.
			g1, g2 = -1, -1
		}
		e.offMeta = append(e.offMeta,
			offMeta{p1: p1.Genome, p2: p2.Genome, gene: g1},
			offMeta{p1: p2.Genome, p2: p1.Genome, gene: g2})
		e.rowRefs = append(e.rowRefs, c1, c2)
	}
	e.evaluateBatch(e.rowRefs, e.offMeta, e.offBuf)
	return e.offBuf[:e.size]
}

// tournament picks the better of two random individuals by
// (rank, crowding).
func (e *Engine) tournament() Individual {
	pop := e.pop
	a := pop[e.rng.Intn(len(pop))]
	b := pop[e.rng.Intn(len(pop))]
	if a.Rank != b.Rank {
		if a.Rank < b.Rank {
			return a
		}
		return b
	}
	if a.Crowding != b.Crowding {
		if a.Crowding > b.Crowding {
			return a
		}
		return b
	}
	if e.rng.Intn(2) == 0 {
		return a
	}
	return b
}

// twoPointCrossover exchanges the gene range [x,y] of the two
// chromosomes (the paper's operator) and reports whether any gene
// actually changed — a swap of identical ranges (common once the
// population converges) is a no-op, and its children remain pure
// mutants of their copy parents.
func (e *Engine) twoPointCrossover(a, b []byte) bool {
	n := len(a)
	x, y := e.rng.Intn(n), e.rng.Intn(n)
	if x > y {
		x, y = y, x
	}
	changed := false
	for i := x; i <= y; i++ {
		if a[i] != b[i] {
			changed = true
		}
		a[i], b[i] = b[i], a[i]
	}
	return changed
}

// mutate applies the configured mutation operator in place and
// returns the flipped gene index when exactly one gene changed (the
// paper's single-gene inversion always qualifies), or -1.
func (e *Engine) mutate(g []byte) int32 {
	if e.cfg.PerBitMutation > 0 {
		flipped, count := -1, 0
		for i := range g {
			if e.rng.Float64() < e.cfg.PerBitMutation {
				g[i] ^= 1
				flipped = i
				count++
			}
		}
		if count == 1 {
			return int32(flipped)
		}
		return -1
	}
	if e.rng.Float64() < e.cfg.MutationProb {
		i := e.rng.Intn(len(g))
		g[i] ^= 1
		return int32(i)
	}
	return -1
}

// surviveInto performs the elitist (mu + lambda) selection over the
// merged population into the next-generation buffers, copies the
// survivor genomes into the next slab, and swaps the arena roles.
// Identical survivors, in identical order, to the reference survive.
func (e *Engine) surviveInto(m []Individual) []Individual {
	fronts := e.rankAndCrowd(m)
	dst := e.nextBuf
	n := 0
	for _, front := range fronts {
		if n+len(front) <= e.size {
			for _, i := range front {
				dst[n] = m[i]
				n++
			}
			continue
		}
		rest := append(e.rest[:0], front...)
		e.cSort.ind, e.cSort.idx = m, rest
		sort.Stable(&e.cSort)
		e.cSort.ind, e.cSort.idx = nil, nil
		for _, i := range rest[:e.size-n] {
			dst[n] = m[i]
			n++
		}
		break
	}
	for k := 0; k < n; k++ {
		row := e.nextSlab[k*e.gl : (k+1)*e.gl : (k+1)*e.gl]
		copy(row, dst[k].Genome)
		dst[k].Genome = row
	}
	e.popBuf, e.nextBuf = e.nextBuf, e.popBuf
	e.curSlab, e.nextSlab = e.nextSlab, e.curSlab
	return dst[:n]
}

// rankAndCrowd assigns ranks and crowding distances in place and
// returns the fronts (aliasing engine scratch, valid until the next
// call). It produces bit-identical results to the reference
// fastNonDominatedSort + assignCrowding pair, but runs the pairwise
// dominance pass over DUPLICATE GROUPS: individuals whose (violation,
// objectives) vectors are bit-identical relate identically to
// everyone else, so one representative relation per group pair
// replaces up to |a|*|b| individual relations. GA populations carry
// heavy duplication (every infeasible individual of one violation
// grade is one group), which shrinks the O(n^2) term by the square of
// the duplication factor. Fronts, their member order, ranks and
// crowding are unchanged: group members share one domination count
// and one dominated set, so they enter the same front, and
// individuals whose count hits zero under one dominator are appended
// in ascending index order exactly like the reference's ascending
// dominated lists produce.
func (e *Engine) rankAndCrowd(m []Individual) [][]int {
	n, mo := len(m), e.nObj
	clean := true
	for i := 0; i < n; i++ {
		v := m[i].Violation
		e.vfW[i] = math.Float64bits(v)
		if v != v {
			clean = false
		}
	}
	// Scatter the interleaved Individual.Objs into per-objective
	// columns (zero-padding short vectors, like the row copy used to).
	for k := 0; k < mo; k++ {
		col := e.objCol[k]
		for i := 0; i < n; i++ {
			var x float64
			if k < len(m[i].Objs) {
				x = m[i].Objs[k]
			}
			col[i] = x
			if x != x {
				clean = false
			}
		}
	}
	G := e.groupIndividuals(n)

	// Per-group member lists (counting sort; members ascend within a
	// group because individuals are scanned in index order). Both
	// front builders consume them.
	e.gmStart[0] = 0
	for g := 0; g < G; g++ {
		e.gmStart[g+1] = e.gmStart[g] + e.gSize[g]
		e.gCur[g] = e.gmStart[g]
	}
	for i := 0; i < n; i++ {
		g := e.groupOf[i]
		e.gMembers[e.gCur[g]] = int32(i)
		e.gCur[g]++
	}

	// The ENS sort-based builder needs the lexicographic pre-sort's
	// "dominator sorts first" invariant, which NaN payloads break; the
	// pair-relation builder (also the property-test oracle) compares
	// NaN exactly like the reference, so it stays the fallback.
	if clean && !e.forcePairwise {
		e.buildFrontsSorted(n, G)
	} else {
		e.buildFrontsPairwise(n, G)
	}
	for rank, front := range e.fronts {
		for _, i := range front {
			m[i].Rank = rank
		}
		e.assignCrowdingScratch(m, front)
	}
	return e.fronts
}

// buildFrontsPairwise is the retained pair-relation front builder: an
// all-pairs relation pass over the group representatives followed by
// the classic domination-count peel. It is the oracle the sort-based
// builder is property-tested against and the fallback for populations
// carrying NaN objectives or violations.
func (e *Engine) buildFrontsPairwise(n, G int) {
	for i := 0; i < n; i++ {
		e.domCount[i] = 0
	}

	// Group-representative relation pass: one batched relation block
	// per representative against every later representative (gRep is
	// already the index block relationBatch wants).
	for g := 0; g < G; g++ {
		e.gDom[g] = e.gDom[g][:0]
	}
	for a := 0; a < G; a++ {
		js := e.gRep[a+1 : G]
		if len(js) == 0 {
			break
		}
		e.ensureBatchScratch(len(js))
		out := e.relOut[:len(js)]
		e.relationBatch(int(e.gRep[a]), js, out)
		for t, r := range out {
			switch r {
			case 1:
				e.gDom[a] = append(e.gDom[a], int32(a+1+t))
			case -1:
				e.gDom[a+1+t] = append(e.gDom[a+1+t], int32(a))
			}
		}
	}

	// Expanded per-individual domination counts.
	for a := 0; a < G; a++ {
		sz := e.gSize[a]
		for _, b := range e.gDom[a] {
			for _, j := range e.gMembers[e.gmStart[b]:e.gmStart[b+1]] {
				e.domCount[j] += sz
			}
		}
	}

	// Build the fronts as consecutive runs of one flat index buffer:
	// every individual lands in exactly one front, so frontBuf never
	// outgrows its n-capacity and the per-front slices stay valid.
	// Processing a front member decrements every individual its group
	// dominates; the batch whose count reaches zero under this member
	// is appended in ascending index order, which is exactly the order
	// the reference's ascending dominated[i] list yields.
	fb := e.frontBuf[:0]
	for i := 0; i < n; i++ {
		if e.domCount[i] == 0 {
			fb = append(fb, i)
		}
	}
	e.fronts = e.fronts[:0]
	for start := 0; start < len(fb); {
		end := len(fb)
		for _, i := range fb[start:end] {
			gd := e.gDom[e.groupOf[i]]
			if len(gd) == 0 {
				continue
			}
			z := e.zbuf[:0]
			for _, b := range gd {
				for _, j := range e.gMembers[e.gmStart[b]:e.gmStart[b+1]] {
					e.domCount[j]--
					if e.domCount[j] == 0 {
						z = append(z, int(j))
					}
				}
			}
			sort.Ints(z)
			fb = append(fb, z...)
		}
		e.fronts = append(e.fronts, fb[start:end:end])
		start = end
	}
}

// ensureSortScratch sizes the ENS path's scratch for populations up to
// n. NewEngine pre-sizes it for 2*PopSize; hand-built test engines hit
// the lazy growth instead.
func (e *Engine) ensureSortScratch(n int) {
	if cap(e.sGroups) >= n {
		return
	}
	e.sGroups = make([]int32, 0, n)
	e.gFrontOf = make([]int32, n)
	e.gHead = make([]int32, n)
	e.gNext = make([]int32, n)
	e.gP = make([]int32, n)
	e.gLastPos = make([]int32, n)
	e.gPrevF = make([]int32, 0, n)
	e.gCurF = make([]int32, 0, n)
}

// buildFrontsSorted is the ENS-style sort-based front builder. It
// replaces the all-pairs relation pass with a lexicographic pre-sort
// of the duplicate-group representatives — feasible groups ascending
// by objective vector, then infeasible groups ascending by violation —
// under which every dominator sorts strictly before everything it
// dominates (Deb dominance implies componentwise <= with one strict,
// hence lexicographic <; smaller violation sorts first; feasible
// always precedes infeasible). Groups are then inserted in sorted
// order: a group joins the first front none of whose already-inserted
// groups dominates it, which by transitivity equals 1 + the maximum
// front of its dominators — the reference front assignment. Infeasible
// groups need no comparisons at all: ascending violation runs map to
// consecutive fronts after every feasible front.
//
// Front membership alone does not fix the reference's member ORDER, so
// a reconstruction sweep rebuilds it per front: an individual enters
// front f+1 the moment the last member of its last dominator group in
// front f is processed, so sorting front f+1's individuals by (that
// dominator position, own index) reproduces the reference's
// zero-batch append order exactly. The position is found by scanning
// front f's groups in descending last-member position and stopping at
// the first dominator. Front 0 and every infeasible front unlock
// uniformly, i.e. ascend by index. The pair-relation oracle
// (buildFrontsPairwise) pins all of this bit-for-bit in the property
// tests.
func (e *Engine) buildFrontsSorted(n, G int) {
	e.ensureSortScratch(n)
	sg := e.sGroups[:0]
	for g := 0; g < G; g++ {
		sg = append(sg, int32(g))
	}
	e.gSortLex.e, e.gSortLex.ids = e, sg
	sort.Sort(&e.gSortLex)
	e.gSortLex.e, e.gSortLex.ids = nil, nil

	// Feasible prefix: sequential-search ENS insertion.
	numFronts := 0
	k := 0
	for ; k < len(sg); k++ {
		g := int(sg[k])
		rg := int(e.gRep[g])
		if !feasWord(e.vfW[rg]) {
			break
		}
		f := 0
		for ; f < numFronts; f++ {
			dominated := false
			for h := e.gHead[f]; h >= 0; h = e.gNext[h] {
				if e.relation(int(e.gRep[h]), rg) == 1 {
					dominated = true
					break
				}
			}
			if !dominated {
				break
			}
		}
		if f == numFronts {
			e.gHead[numFronts] = -1
			numFronts++
		}
		e.gFrontOf[g] = int32(f)
		e.gNext[g] = e.gHead[f]
		e.gHead[f] = int32(g)
	}
	nf := numFronts // number of feasible fronts

	// Infeasible suffix: one front per distinct violation value,
	// ascending, strictly after every feasible front.
	for prev := 0.0; k < len(sg); k++ {
		g := int(sg[k])
		v := math.Float64frombits(e.vfW[e.gRep[g]])
		if numFronts == nf || v > prev {
			e.gHead[numFronts] = -1
			numFronts++
		}
		prev = v
		f := numFronts - 1
		e.gFrontOf[g] = int32(f)
		e.gNext[g] = e.gHead[f]
		e.gHead[f] = int32(g)
	}

	// Reconstruction sweep: finalize each front's member order, then
	// stage its groups (descending last-member position) as the next
	// front's dominator scan order.
	fb := e.frontBuf[:0]
	e.fronts = e.fronts[:0]
	prevG := e.gPrevF[:0]
	for f := 0; f < numFronts; f++ {
		cur := e.gCurF[:0]
		for h := e.gHead[f]; h >= 0; h = e.gNext[h] {
			cur = append(cur, h)
		}
		if f == 0 || f >= nf {
			// Front 0 has no dominators; an infeasible front is
			// dominated by EVERY group of the previous front, so its
			// members all unlock at that front's final position.
			// Either way the order is ascending index.
			for _, g := range cur {
				e.gP[g] = 0
			}
		} else {
			for _, g := range cur {
				rg := int(e.gRep[g])
				var P int32
				for _, d := range prevG {
					if e.relation(int(e.gRep[d]), rg) == 1 {
						P = e.gLastPos[d]
						break
					}
				}
				e.gP[g] = P
			}
		}
		start := len(fb)
		for _, g := range cur {
			for _, j := range e.gMembers[e.gmStart[g]:e.gmStart[g+1]] {
				fb = append(fb, int(j))
			}
		}
		seg := fb[start:len(fb):len(fb)]
		e.fSort.e, e.fSort.idx = e, seg
		sort.Sort(&e.fSort)
		e.fSort.e, e.fSort.idx = nil, nil
		e.fronts = append(e.fronts, seg)
		if f+1 < nf {
			for pos, i := range seg {
				e.gLastPos[e.groupOf[i]] = int32(pos)
			}
			prevG = append(e.gPrevF[:0], cur...)
			e.gSortPos.e, e.gSortPos.ids = e, prevG
			sort.Sort(&e.gSortPos)
			e.gSortPos.e, e.gSortPos.ids = nil, nil
		}
	}
}

// groupIndividuals partitions the first n scratch rows into duplicate
// groups — maximal sets with bit-identical (violation, objectives)
// vectors — numbered in first-seen order. It fills groupOf, gRep,
// gSize and gHash, and returns the group count. Bit-level equality is
// the grouping key: it implies identical comparison behavior in
// relation (the reverse direction, e.g. 0.0 vs -0.0, merely yields
// separate groups whose pair relation is 0 — correct either way).
func (e *Engine) groupIndividuals(n int) int {
	for i := range e.gTable {
		e.gTable[i] = 0
	}
	mo := e.nObj
	G := 0
	for i := 0; i < n; i++ {
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := uint64(offset64)
		h = (h ^ e.vfW[i]) * prime64
		for k := 0; k < mo; k++ {
			h = (h ^ math.Float64bits(e.objCol[k][i])) * prime64
		}
		h ^= h >> 29 // finalize: spread the low bits the probe uses
		for slot := h & e.gMask; ; slot = (slot + 1) & e.gMask {
			t := e.gTable[slot]
			if t == 0 {
				e.gRep[G] = int32(i)
				e.gSize[G] = 1
				e.gHash[G] = h
				e.groupOf[i] = int32(G)
				e.gTable[slot] = int32(G + 1)
				G++
				break
			}
			g := int(t - 1)
			if e.gHash[g] == h && e.sameVector(int(e.gRep[g]), i) {
				e.gSize[g]++
				e.groupOf[i] = int32(g)
				break
			}
		}
	}
	return G
}

// sameVector reports bit-identity of two scratch rows' (violation,
// objectives) vectors.
func (e *Engine) sameVector(a, b int) bool {
	if e.vfW[a] != e.vfW[b] {
		return false
	}
	for k := 0; k < e.nObj; k++ {
		col := e.objCol[k]
		if math.Float64bits(col[a]) != math.Float64bits(col[b]) {
			return false
		}
	}
	return true
}

// feasWord reports the feasibility packed into a violation word: the
// word is the violation's IEEE-754 bits, so violation == ±0 (the
// `v == 0` feasibility rule) means every bit but the sign is clear. A
// NaN violation has payload bits set and correctly reads infeasible.
func feasWord(w uint64) bool { return w<<1 == 0 }

// relation decides one unordered pair under Deb's constraint
// dominance: 1 if i dominates j, -1 if j dominates i, 0 otherwise.
// Exactly equivalent to evaluating the reference dominates in both
// directions.
func (e *Engine) relation(i, j int) int {
	e.relations++
	wi, wj := e.vfW[i], e.vfW[j]
	fi, fj := feasWord(wi), feasWord(wj)
	if fi != fj {
		if fi {
			return 1
		}
		return -1
	}
	if !fi {
		vi, vj := math.Float64frombits(wi), math.Float64frombits(wj)
		switch {
		case vi < vj:
			return 1
		case vj < vi:
			return -1
		}
		return 0
	}
	mo := e.nObj
	// The common widths (the 2- and 3-objective sets) compare unrolled:
	// both better-than flags are folded over the whole vector with
	// short-circuit ORs instead of the flagged scan. The final decision
	// — both flags 0, one flag 1/-1 — is exactly what the reference
	// early-exit loop returns (it only returns 0 sooner, never a
	// different value), including under NaN, where every comparison is
	// false and both flags stay clear.
	var iBetter, jBetter bool
	switch mo {
	case 2:
		c0, c1 := e.objCol[0], e.objCol[1]
		iBetter = c0[i] < c0[j] || c1[i] < c1[j]
		jBetter = c0[i] > c0[j] || c1[i] > c1[j]
	case 3:
		c0, c1, c2 := e.objCol[0], e.objCol[1], e.objCol[2]
		iBetter = c0[i] < c0[j] || c1[i] < c1[j] || c2[i] < c2[j]
		jBetter = c0[i] > c0[j] || c1[i] > c1[j] || c2[i] > c2[j]
	case 4:
		c0, c1, c2, c3 := e.objCol[0], e.objCol[1], e.objCol[2], e.objCol[3]
		iBetter = c0[i] < c0[j] || c1[i] < c1[j] || c2[i] < c2[j] || c3[i] < c3[j]
		jBetter = c0[i] > c0[j] || c1[i] > c1[j] || c2[i] > c2[j] || c3[i] > c3[j]
	default:
		for k := 0; k < mo; k++ {
			col := e.objCol[k]
			switch {
			case col[i] < col[j]:
				if jBetter {
					return 0
				}
				iBetter = true
			case col[i] > col[j]:
				if iBetter {
					return 0
				}
				jBetter = true
			}
		}
	}
	switch {
	case iBetter && !jBetter:
		return 1
	case jBetter && !iBetter:
		return -1
	}
	return 0
}

// ensureBatchScratch sizes the relationBatch flag and output buffers
// for blocks up to n. NewEngine pre-sizes them for 2*PopSize;
// hand-built test engines hit the lazy growth instead.
func (e *Engine) ensureBatchScratch(n int) {
	if len(e.batchIB) >= n {
		return
	}
	e.batchIB = make([]uint8, n)
	e.batchJB = make([]uint8, n)
	e.relOut = make([]int8, n)
}

// b2u8 converts a comparison result to a flag byte; the compiler turns
// it into a branch-free SETcc, keeping the column folds below tight.
func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// relationBatch computes relation(i, j) for a whole block of
// candidates j at once, writing one int8 per element of js into out
// (len(out) must be at least len(js)). Instead of finishing one pair
// before starting the next, it folds each objective COLUMN across the
// entire block — contiguous loads of col[js[t]] against one scalar
// col[i], with branch-free flag ORs the compiler can vectorize — and
// only then combines the flags with the packed violation words into
// the Deb verdicts. Per element the fold accumulates the same two
// better-than flags the scalar relation's unrolled OR folds produce
// (NaN included: every NaN comparison is false, so both flags stay
// clear), and the combine replays relation's feasibility/violation
// ladder exactly, so out[t] == relation(i, js[t]) bit-for-bit — the
// property tests pin this against the scalar kernel.
func (e *Engine) relationBatch(i int, js []int32, out []int8) {
	n := len(js)
	if n == 0 {
		return
	}
	e.relations += int64(n)
	e.ensureBatchScratch(n)
	iB, jB := e.batchIB[:n], e.batchJB[:n]
	for t := range iB {
		iB[t], jB[t] = 0, 0
	}
	for k := 0; k < e.nObj; k++ {
		col := e.objCol[k]
		a := col[i]
		for t, j := range js {
			b := col[j]
			iB[t] |= b2u8(a < b)
			jB[t] |= b2u8(a > b)
		}
	}
	wi := e.vfW[i]
	fi := feasWord(wi)
	vi := math.Float64frombits(wi)
	for t, j := range js {
		wj := e.vfW[j]
		fj := feasWord(wj)
		switch {
		case fi != fj:
			if fi {
				out[t] = 1
			} else {
				out[t] = -1
			}
		case !fi:
			vj := math.Float64frombits(wj)
			switch {
			case vi < vj:
				out[t] = 1
			case vj < vi:
				out[t] = -1
			default:
				out[t] = 0
			}
		default:
			out[t] = int8(iB[t]) - int8(jB[t])
		}
	}
}

// assignCrowdingScratch mirrors the reference assignCrowding on the
// engine's flat objective buffer with a preallocated index slice and
// an allocation-free stable sort.
func (e *Engine) assignCrowdingScratch(m []Individual, front []int) {
	if len(front) == 0 {
		return
	}
	for _, i := range front {
		m[i].Crowding = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			m[i].Crowding = math.Inf(1)
		}
		return
	}
	mo := e.nObj
	idx := e.crowdIdx[:len(front)]
	for obj := 0; obj < mo; obj++ {
		col := e.objCol[obj]
		copy(idx, front)
		e.oSort.idx, e.oSort.col = idx, col
		sort.Stable(&e.oSort)
		e.oSort.idx, e.oSort.col = nil, nil
		lo := col[idx[0]]
		hi := col[idx[len(idx)-1]]
		spread := hi - lo
		m[idx[0]].Crowding = math.Inf(1)
		m[idx[len(idx)-1]].Crowding = math.Inf(1)
		if spread <= 0 || math.IsInf(spread, 0) || math.IsNaN(spread) {
			// Degenerate axis (all equal, or infeasible front at
			// +Inf): contributes nothing.
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			d := (col[idx[k+1]] - col[idx[k-1]]) / spread
			if !math.IsInf(m[idx[k]].Crowding, 1) {
				m[idx[k]].Crowding += d
			}
		}
	}
}

// objSorter stable-sorts an index slice by one objective column —
// contiguous keyed loads, no stride arithmetic. A stable sort's output
// is uniquely determined by the comparator, so sort.Stable here
// reproduces the reference sort.SliceStable exactly — without the
// reflection swapper's allocations.
type objSorter struct {
	idx []int
	col []float64
}

func (s *objSorter) Len() int { return len(s.idx) }
func (s *objSorter) Less(a, b int) bool {
	return s.col[s.idx[a]] < s.col[s.idx[b]]
}
func (s *objSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// crowdSorter stable-sorts a front's index slice by descending
// crowding distance for the survival truncation.
type crowdSorter struct {
	ind []Individual
	idx []int
}

func (s *crowdSorter) Len() int { return len(s.idx) }
func (s *crowdSorter) Less(a, b int) bool {
	return s.ind[s.idx[a]].Crowding > s.ind[s.idx[b]].Crowding
}
func (s *crowdSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// lexSorter orders group ids so that any dominator sorts strictly
// before everything it dominates: feasible groups first, ascending by
// lexicographic objective vector, then infeasible groups ascending by
// violation; exact numeric ties fall back to first-seen group order,
// giving a deterministic total order. Correct only for NaN-free
// populations (rankAndCrowd guards).
type lexSorter struct {
	e   *Engine
	ids []int32
}

func (s *lexSorter) Len() int { return len(s.ids) }
func (s *lexSorter) Less(a, b int) bool {
	e := s.e
	ga, gb := s.ids[a], s.ids[b]
	ra, rb := int(e.gRep[ga]), int(e.gRep[gb])
	wa, wb := e.vfW[ra], e.vfW[rb]
	fa, fb := feasWord(wa), feasWord(wb)
	if fa != fb {
		return fa
	}
	if !fa {
		va, vb := math.Float64frombits(wa), math.Float64frombits(wb)
		if va != vb {
			return va < vb
		}
		return ga < gb
	}
	for k := 0; k < e.nObj; k++ {
		col := e.objCol[k]
		if col[ra] != col[rb] {
			return col[ra] < col[rb]
		}
	}
	return ga < gb
}
func (s *lexSorter) Swap(a, b int) { s.ids[a], s.ids[b] = s.ids[b], s.ids[a] }

// posSorter orders a front's group ids by descending final
// last-member position, the scan order of the next front's unlock-
// position search. Positions are distinct, so the order is strict.
type posSorter struct {
	e   *Engine
	ids []int32
}

func (s *posSorter) Len() int { return len(s.ids) }
func (s *posSorter) Less(a, b int) bool {
	return s.e.gLastPos[s.ids[a]] > s.e.gLastPos[s.ids[b]]
}
func (s *posSorter) Swap(a, b int) { s.ids[a], s.ids[b] = s.ids[b], s.ids[a] }

// frontSorter orders one front's individuals by (unlock position,
// index): the previous-front position after which the individual's
// domination count reaches zero, then ascending index within the
// batch — the reference append order.
type frontSorter struct {
	e   *Engine
	idx []int
}

func (s *frontSorter) Len() int { return len(s.idx) }
func (s *frontSorter) Less(a, b int) bool {
	e := s.e
	ia, ib := s.idx[a], s.idx[b]
	pa, pb := e.gP[e.groupOf[ia]], e.gP[e.groupOf[ib]]
	if pa != pb {
		return pa < pb
	}
	return ia < ib
}
func (s *frontSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// Stats is a snapshot of the engine's instrumentation counters: how
// evaluations were served (dedup cache, warm lookup, or the problem's
// kernels, split by path when the problem implements StatsProblem) and
// how many pairwise dominance relations the ranking compared. The
// counters observe the new incremental paths' engagement; they are NOT
// part of the reproducibility contract — kernel-path splits depend on
// worker scheduling and warm-cache state.
type Stats struct {
	// Evaluations and CacheHits mirror the run counters: total genome
	// evaluations requested, and how many were served by the dedup
	// cache without touching the problem.
	Evaluations int64
	CacheHits   int64
	// WarmHits counts cache misses short-circuited by Config.WarmLookup.
	WarmHits int64
	// RelationsCompared counts Deb-dominance pair comparisons across
	// both front builders.
	RelationsCompared int64
	// Eval is the problem-side kernel-path split, zero-valued when the
	// problem does not implement StatsProblem.
	Eval EvalStats
}

// Stats returns the engine's instrumentation counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Evaluations:       int64(e.evals),
		CacheHits:         e.cacheHits,
		WarmHits:          e.warmHits,
		RelationsCompared: e.relations,
	}
	if sp, ok := e.p.(StatsProblem); ok {
		s.Eval = sp.EvalStats()
	}
	return s
}

// Snapshot captures the engine's evolutionary state — the ranked
// population and the PRNG position — so Restore can rewind and replay
// from it bit-for-bit. The evaluation cache and its counters are NOT
// part of the snapshot: evaluation is deterministic, so a replayed
// generation reads identical results out of the cache, and the
// benchmark suite uses exactly that to measure a steady-state
// generation with every genome already cached.
type Snapshot struct {
	gen        int
	draws      uint64
	evals      int
	validEvals int
	genomes    []byte
	inds       []Individual
}

// Snapshot captures the current state. The copy is private to the
// snapshot; later Steps do not disturb it.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		gen:        e.gen,
		draws:      e.src.n,
		evals:      e.evals,
		validEvals: e.validEvals,
		genomes:    make([]byte, len(e.pop)*e.gl),
		inds:       make([]Individual, len(e.pop)),
	}
	copy(s.inds, e.pop)
	for i := range e.pop {
		copy(s.genomes[i*e.gl:(i+1)*e.gl], e.pop[i].Genome)
		s.inds[i].Genome = nil
	}
	return s
}

// Restore rewinds the engine to a snapshot taken from it: the
// population (including ranks and crowding) is copied back into the
// arena and the PRNG is rebuilt at the recorded draw position, so the
// following Steps replay the original trajectory exactly. Restore
// allocates (the PRNG rebuild); Step afterwards does not.
func (e *Engine) Restore(s *Snapshot) {
	e.gen, e.evals, e.validEvals = s.gen, s.evals, s.validEvals
	e.rng, e.src = newCountedRNG(e.cfg.Seed)
	for i := uint64(0); i < s.draws; i++ {
		e.src.src.Int63()
	}
	e.src.n = s.draws
	n := len(s.inds)
	copy(e.popBuf[:n], s.inds)
	for i := 0; i < n; i++ {
		row := e.curRow(i)
		copy(row, s.genomes[i*e.gl:(i+1)*e.gl])
		e.popBuf[i].Genome = row
	}
	e.pop = e.popBuf[:n]
}
