package nsga2

import (
	"math/rand"
	"testing"
)

// rankBenchPopulation builds a deterministic population for the
// ranking benches. Duplicate-heavy mirrors a real GA merge (a few
// archetype vectors, heavily repeated, so the duplicate-group layer
// collapses most of the population); all-distinct is the worst case
// for grouping and the best case for the sort-based builder's
// front-skip search.
func rankBenchPopulation(n, m int, dupHeavy bool) []Individual {
	rng := rand.New(rand.NewSource(11))
	pop := make([]Individual, n)
	if dupHeavy {
		archetypes := make([][]float64, 2+n/16)
		for a := range archetypes {
			objs := make([]float64, m)
			for k := range objs {
				objs[k] = float64(rng.Intn(8))
			}
			archetypes[a] = objs
		}
		for i := range pop {
			src := archetypes[rng.Intn(len(archetypes))]
			pop[i] = Individual{Objs: append([]float64(nil), src...)}
			if rng.Intn(4) == 0 {
				pop[i].Violation = float64(1 + rng.Intn(3))
			}
		}
		return pop
	}
	for i := range pop {
		objs := make([]float64, m)
		for k := range objs {
			objs[k] = rng.Float64()
		}
		pop[i] = Individual{Objs: objs}
		if rng.Intn(4) == 0 {
			pop[i].Violation = rng.Float64()
		}
	}
	return pop
}

// BenchmarkRankAndCrowd measures the non-dominated ranking plus
// crowding pass at the paper-scale merged-population size (2x400) for
// both front builders: the default ENS-style sort-based builder and
// the retained pair-relation oracle (forcePairwise). CI gates the
// sorted variants at 0 allocs/op and requires sorted < pairwise
// within the same run for both population shapes.
// BenchmarkRankAndCrowdSoA holds the engine's struct-of-arrays
// ranking pass (columnar objectives + packed violation words feeding
// the sort-based builder) against the retained array-of-structs
// reference (fastNonDominatedSort + assignCrowding walking
// per-individual slices) on the same dup-heavy merged population. CI
// requires engine < reference within the run: the SoA layout must pay
// for itself, not merely match.
func BenchmarkRankAndCrowdSoA(b *testing.B) {
	const n, m = 800, 3
	pop := rankBenchPopulation(n, m, true)
	b.Run("engine", func(b *testing.B) {
		e := scratchEngine(n/2, m)
		work := make([]Individual, n)
		copy(work, pop)
		e.rankAndCrowd(work) // warm-up: lazy scratch growth
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.rankAndCrowd(work)
		}
	})
	b.Run("reference", func(b *testing.B) {
		work := make([]Individual, n)
		copy(work, pop)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, front := range fastNonDominatedSort(work) {
				assignCrowding(work, front)
			}
		}
	})
}

func BenchmarkRankAndCrowd(b *testing.B) {
	const n, m = 800, 3
	for _, shape := range []struct {
		name     string
		dupHeavy bool
	}{{"dup", true}, {"distinct", false}} {
		pop := rankBenchPopulation(n, m, shape.dupHeavy)
		for _, builder := range []struct {
			name     string
			pairwise bool
		}{{"sorted", false}, {"pairwise", true}} {
			b.Run(builder.name+"-"+shape.name, func(b *testing.B) {
				e := scratchEngine(n/2, m)
				e.forcePairwise = builder.pairwise
				work := make([]Individual, n)
				copy(work, pop)
				e.rankAndCrowd(work) // warm-up: lazy scratch growth
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.rankAndCrowd(work)
				}
			})
		}
	}
}
