package nsga2

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// funcProblem adapts a closure to the Problem interface.
type funcProblem struct {
	n, m int
	eval func([]byte) ([]float64, float64)
}

func (p funcProblem) GenomeLen() int     { return p.n }
func (p funcProblem) NumObjectives() int { return p.m }
func (p funcProblem) Evaluate(g []byte) ([]float64, float64) {
	return p.eval(g)
}

func countOnes(g []byte) int {
	c := 0
	for _, b := range g {
		if b != 0 {
			c++
		}
	}
	return c
}

// twoMin is a simple bi-objective problem: minimize the ones in the
// first half and the zeros in the second half. The single optimum is
// 000...111; the trade-off front is wide on the way there.
func twoMin(n int) funcProblem {
	return funcProblem{n: n, m: 2, eval: func(g []byte) ([]float64, float64) {
		h := n / 2
		onesLo := countOnes(g[:h])
		zerosHi := h - countOnes(g[h:])
		return []float64{float64(onesLo), float64(zerosHi)}, 0
	}}
}

func TestRunFindsOptimum(t *testing.T) {
	res, err := Run(twoMin(16), Config{PopSize: 60, Generations: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := FeasibleFront(res.Final)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	best := math.Inf(1)
	for _, ind := range front {
		if s := ind.Objs[0] + ind.Objs[1]; s < best {
			best = s
		}
	}
	if best != 0 {
		t.Errorf("best objective sum = %v, want 0 (exact optimum)", best)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	run := func() *Result {
		res, err := Run(twoMin(12), Config{PopSize: 20, Generations: 10, Seed: 7, ArchiveAll: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Evaluations != b.Evaluations || a.DistinctEvaluated != b.DistinctEvaluated {
		t.Fatal("same seed must reproduce the run")
	}
	for i := range a.Final {
		if string(a.Final[i].Genome) != string(b.Final[i].Genome) {
			t.Fatal("final populations differ between identical runs")
		}
	}
	if len(a.Archive) != len(b.Archive) {
		t.Fatal("archives differ between identical runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Run(twoMin(12), Config{PopSize: 20, Generations: 5, Seed: 1})
	b, _ := Run(twoMin(12), Config{PopSize: 20, Generations: 5, Seed: 2})
	same := true
	for i := range a.Final {
		if string(a.Final[i].Genome) != string(b.Final[i].Genome) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should explore differently")
	}
}

func TestConstraintDominance(t *testing.T) {
	feas := Individual{Objs: []float64{5, 5}}
	infeas := Individual{Objs: []float64{math.Inf(1), math.Inf(1)}, Violation: 1}
	if !dominates(feas, infeas) {
		t.Error("feasible must dominate infeasible")
	}
	if dominates(infeas, feas) {
		t.Error("infeasible must not dominate feasible")
	}
	other := Individual{Objs: []float64{math.Inf(1), math.Inf(1)}, Violation: 1}
	if dominates(infeas, other) || dominates(other, infeas) {
		t.Error("equally infeasible individuals tie")
	}
	// Deb's rule: the less-broken infeasible individual dominates.
	worse := Individual{Objs: []float64{math.Inf(1), math.Inf(1)}, Violation: 5}
	if !dominates(infeas, worse) {
		t.Error("smaller violation must dominate larger violation")
	}
	if dominates(worse, infeas) {
		t.Error("larger violation must not dominate smaller")
	}
}

func TestRunWithConstraints(t *testing.T) {
	// Feasible only when at least a third of the genes are set;
	// objective pulls toward all-zero. The GA must settle on the
	// constraint boundary, never returning an infeasible front.
	n := 15
	p := funcProblem{n: n, m: 2, eval: func(g []byte) ([]float64, float64) {
		ones := countOnes(g)
		if ones < n/3 {
			// Graded violation: how many genes short of feasibility.
			return []float64{math.Inf(1), math.Inf(1)}, float64(n/3 - ones)
		}
		return []float64{float64(ones), float64(n - ones)}, 0
	}}
	res, err := Run(p, Config{PopSize: 40, Generations: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	front := FeasibleFront(res.Final)
	if len(front) == 0 {
		t.Fatal("no feasible solutions found")
	}
	for _, ind := range front {
		if countOnes(ind.Genome) < n/3 {
			t.Error("front contains an infeasible individual")
		}
	}
}

func TestFastNonDominatedSortKnownCase(t *testing.T) {
	pop := []Individual{
		{Objs: []float64{1, 4}}, // front 0
		{Objs: []float64{4, 1}}, // front 0
		{Objs: []float64{2, 5}}, // dominated by #0 only
		{Objs: []float64{5, 5}}, // dominated by all above
	}
	fronts := fastNonDominatedSort(pop)
	if len(fronts) != 3 {
		t.Fatalf("fronts = %v, want 3 levels", fronts)
	}
	if len(fronts[0]) != 2 || len(fronts[1]) != 1 || len(fronts[2]) != 1 {
		t.Errorf("front sizes = %v", fronts)
	}
}

func TestSortRanksRespectDominance(t *testing.T) {
	// Property: whenever a dominates b, rank(a) < rank(b).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pop := make([]Individual, 24)
		for i := range pop {
			pop[i] = Individual{
				Objs: []float64{float64(rng.Intn(6)), float64(rng.Intn(6))},
			}
			if rng.Intn(4) == 0 {
				pop[i].Violation = float64(1 + rng.Intn(3))
				pop[i].Objs = []float64{math.Inf(1), math.Inf(1)}
			}
		}
		sortPopulation(pop)
		for i := range pop {
			for j := range pop {
				if dominates(pop[i], pop[j]) && pop[i].Rank >= pop[j].Rank {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCrowdingBoundariesInfinite(t *testing.T) {
	pop := []Individual{
		{Objs: []float64{1, 5}},
		{Objs: []float64{2, 4}},
		{Objs: []float64{3, 3}},
		{Objs: []float64{4, 2}},
	}
	front := []int{0, 1, 2, 3}
	assignCrowding(pop, front)
	if !math.IsInf(pop[0].Crowding, 1) || !math.IsInf(pop[3].Crowding, 1) {
		t.Error("boundary individuals must carry infinite crowding")
	}
	if math.IsInf(pop[1].Crowding, 1) || pop[1].Crowding <= 0 {
		t.Errorf("interior crowding = %v, want finite positive", pop[1].Crowding)
	}
}

func TestCrowdingDegenerateFronts(t *testing.T) {
	// Single- and two-individual fronts are all boundary.
	pop := []Individual{
		{Objs: []float64{1, 1}},
		{Objs: []float64{2, 2}},
	}
	assignCrowding(pop, []int{0, 1})
	if !math.IsInf(pop[0].Crowding, 1) || !math.IsInf(pop[1].Crowding, 1) {
		t.Error("two-individual front must be all-infinite")
	}
	// An all-infeasible front (all +Inf objectives) must not produce
	// NaN crowding.
	inf := []Individual{
		{Objs: []float64{math.Inf(1), math.Inf(1)}},
		{Objs: []float64{math.Inf(1), math.Inf(1)}},
		{Objs: []float64{math.Inf(1), math.Inf(1)}},
	}
	assignCrowding(inf, []int{0, 1, 2})
	for i, ind := range inf {
		if math.IsNaN(ind.Crowding) {
			t.Errorf("individual %d has NaN crowding", i)
		}
	}
}

func TestSurviveKeepsBestFrontWhole(t *testing.T) {
	pop := []Individual{
		{Objs: []float64{1, 4}},
		{Objs: []float64{4, 1}},
		{Objs: []float64{2, 5}},
		{Objs: []float64{5, 5}},
	}
	next := survive(pop, 2)
	if len(next) != 2 {
		t.Fatalf("survivors = %d, want 2", len(next))
	}
	for _, ind := range next {
		if ind.Rank != 0 {
			t.Errorf("survivor from rank %d, want only rank 0", ind.Rank)
		}
	}
}

func TestSurviveTruncatesByCrowding(t *testing.T) {
	// Five-point front truncated to 4: the most crowded interior
	// point must be the one dropped.
	pop := []Individual{
		{Objs: []float64{0, 10}},
		{Objs: []float64{10, 0}},
		{Objs: []float64{5, 5}},
		{Objs: []float64{5.1, 4.9}}, // crowded pair
		{Objs: []float64{2, 8}},
	}
	next := survive(pop, 4)
	if len(next) != 4 {
		t.Fatalf("survivors = %d, want 4", len(next))
	}
	// The dropped one must be 2 or 3 (the crowded pair).
	for _, ind := range next {
		if ind.Objs[0] == 0 || ind.Objs[0] == 10 || ind.Objs[0] == 2 {
			continue
		}
	}
	count55 := 0
	for _, ind := range next {
		if ind.Objs[0] > 4.5 && ind.Objs[0] < 5.5 {
			count55++
		}
	}
	if count55 != 1 {
		t.Errorf("crowded pair should lose exactly one member, kept %d", count55)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(funcProblem{n: 0, m: 1, eval: nil}, Config{}); err == nil {
		t.Error("zero-length genome must fail")
	}
	if _, err := Run(funcProblem{n: 4, m: 0, eval: nil}, Config{}); err == nil {
		t.Error("zero objectives must fail")
	}
	if _, err := Run(twoMin(4), Config{CrossoverProb: 2}); err == nil {
		t.Error("crossover probability > 1 must fail")
	}
	if _, err := Run(twoMin(4), Config{MutationProb: -0.5}); err == nil {
		t.Error("negative mutation probability must fail")
	}
}

func TestOddPopulationRoundedUp(t *testing.T) {
	res, err := Run(twoMin(8), Config{PopSize: 7, Generations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != 8 {
		t.Errorf("population = %d, want rounded to 8", len(res.Final))
	}
}

func TestArchiveRecordsDistinctGenomes(t *testing.T) {
	res, err := Run(twoMin(10), Config{PopSize: 20, Generations: 10, Seed: 5, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archive) != res.DistinctEvaluated {
		t.Errorf("archive %d entries, distinct %d", len(res.Archive), res.DistinctEvaluated)
	}
	seen := map[string]bool{}
	for _, e := range res.Archive {
		k := string(e.Genome)
		if seen[k] {
			t.Fatal("duplicate genome in archive")
		}
		seen[k] = true
	}
	if res.DistinctValid != res.DistinctEvaluated {
		t.Errorf("unconstrained problem: all %d distinct should be valid, got %d",
			res.DistinctEvaluated, res.DistinctValid)
	}
	if res.Evaluations < res.DistinctEvaluated {
		t.Error("evaluation count cannot undercut distinct count")
	}
}

func TestPerBitMutationMode(t *testing.T) {
	res, err := Run(twoMin(16), Config{PopSize: 30, Generations: 30, Seed: 2, PerBitMutation: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	front := FeasibleFront(res.Final)
	if len(front) == 0 {
		t.Fatal("per-bit mutation run produced no front")
	}
}

func TestOnGenerationObserved(t *testing.T) {
	gens := 0
	_, err := Run(twoMin(8), Config{PopSize: 10, Generations: 7, Seed: 1,
		OnGeneration: func(gen int, pop []Individual) {
			gens++
			if len(pop) != 10 {
				t.Errorf("generation %d population size %d", gen, len(pop))
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if gens != 7 {
		t.Errorf("callback fired %d times, want 7", gens)
	}
}

func TestFeasibleFrontDedupes(t *testing.T) {
	pop := []Individual{
		{Genome: []byte{1, 0}, Objs: []float64{1, 1}, Rank: 0},
		{Genome: []byte{1, 0}, Objs: []float64{1, 1}, Rank: 0},
		{Genome: []byte{0, 1}, Objs: []float64{2, 0}, Rank: 0},
		{Genome: []byte{1, 1}, Objs: []float64{0, 3}, Rank: 1},
		{Genome: []byte{0, 0}, Objs: []float64{9, 9}, Violation: 2, Rank: 0},
	}
	front := FeasibleFront(pop)
	if len(front) != 2 {
		t.Fatalf("front = %d entries, want 2 (dedup + rank + feasibility)", len(front))
	}
}

func TestTwoPointCrossoverPreservesGenePool(t *testing.T) {
	e := &Engine{rng: rand.New(rand.NewSource(1)), cfg: Config{}.withDefaults()}
	a := []byte{1, 1, 1, 1, 1, 1, 1, 1}
	b := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	e.twoPointCrossover(a, b)
	for i := range a {
		if a[i]+b[i] != 1 {
			t.Fatalf("position %d lost material: %v %v", i, a, b)
		}
	}
}

func TestSingleFlipMutationChangesOneGene(t *testing.T) {
	e := &Engine{rng: rand.New(rand.NewSource(2)), cfg: Config{MutationProb: 1}.withDefaults()}
	g := []byte{0, 0, 0, 0, 0, 0}
	e.mutate(g)
	if countOnes(g) != 1 {
		t.Errorf("single-flip mutation changed %d genes", countOnes(g))
	}
}

func TestSeedsInjectedIntoInitialPopulation(t *testing.T) {
	seed := []byte{0, 0, 0, 0, 1, 1, 1, 1} // the exact optimum of twoMin(8)
	res, err := Run(twoMin(8), Config{PopSize: 10, Generations: 1, Seed: 4,
		ArchiveAll: true, Seeds: [][]byte{seed}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Archive {
		if string(e.Genome) == string(seed) {
			found = true
			break
		}
	}
	if !found {
		t.Error("seed genome never evaluated")
	}
	// With the optimum seeded, the front holds it from the start.
	best := math.Inf(1)
	for _, ind := range FeasibleFront(res.Final) {
		if s := ind.Objs[0] + ind.Objs[1]; s < best {
			best = s
		}
	}
	if best != 0 {
		t.Errorf("seeded optimum lost: best sum %v", best)
	}
}

func TestSeedValidation(t *testing.T) {
	if _, err := Run(twoMin(8), Config{PopSize: 4, Generations: 1,
		Seeds: [][]byte{{1, 0}}}); err == nil {
		t.Error("wrong-length seed must fail")
	}
	seeds := make([][]byte, 10)
	for i := range seeds {
		seeds[i] = make([]byte, 8)
	}
	if _, err := Run(twoMin(8), Config{PopSize: 4, Generations: 1,
		Seeds: seeds}); err == nil {
		t.Error("more seeds than population must fail")
	}
}

func TestSeedsAreCopiedNotAliased(t *testing.T) {
	seed := []byte{1, 1, 1, 1, 0, 0, 0, 0}
	orig := append([]byte(nil), seed...)
	if _, err := Run(twoMin(8), Config{PopSize: 6, Generations: 3, Seed: 2,
		Seeds: [][]byte{seed}}); err != nil {
		t.Fatal(err)
	}
	for i := range seed {
		if seed[i] != orig[i] {
			t.Fatal("engine mutated the caller's seed slice")
		}
	}
}

func TestParallelEvaluationIdenticalToSerial(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Run(twoMin(14), Config{PopSize: 24, Generations: 12, Seed: 6,
			ArchiveAll: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	parallel := run(4)
	if serial.Evaluations != parallel.Evaluations ||
		serial.ValidEvaluations != parallel.ValidEvaluations ||
		serial.DistinctEvaluated != parallel.DistinctEvaluated {
		t.Fatalf("counters diverge: serial %+v parallel %+v",
			[3]int{serial.Evaluations, serial.ValidEvaluations, serial.DistinctEvaluated},
			[3]int{parallel.Evaluations, parallel.ValidEvaluations, parallel.DistinctEvaluated})
	}
	for i := range serial.Final {
		if string(serial.Final[i].Genome) != string(parallel.Final[i].Genome) {
			t.Fatal("final populations diverge between serial and parallel runs")
		}
	}
	if len(serial.Archive) != len(parallel.Archive) {
		t.Fatal("archive sizes diverge")
	}
	for i := range serial.Archive {
		if string(serial.Archive[i].Genome) != string(parallel.Archive[i].Genome) {
			t.Fatal("archive order diverges: parallel evaluation must preserve insertion order")
		}
	}
}

// perWorkerProblem wraps twoMin with per-goroutine evaluation views,
// counting how they are built and used.
type perWorkerProblem struct {
	funcProblem
	mu         sync.Mutex
	workers    []*countingWorker
	parentUsed int // evaluations through the shared problem itself
}

type countingWorker struct {
	funcProblem
	evals int
}

func (p *perWorkerProblem) NewWorker() Problem {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := &countingWorker{funcProblem: p.funcProblem}
	p.workers = append(p.workers, w)
	return w
}

func (p *perWorkerProblem) Evaluate(g []byte) ([]float64, float64) {
	p.mu.Lock()
	p.parentUsed++
	p.mu.Unlock()
	return p.funcProblem.Evaluate(g)
}

func (w *countingWorker) Evaluate(g []byte) ([]float64, float64) {
	// No lock: the engine promises exclusive use; the race detector
	// polices the promise.
	w.evals++
	return w.funcProblem.Evaluate(g)
}

// TestPerWorkerProblemViewsAreUsed proves the engine builds one view
// per worker, routes the parallel evaluations through them, and still
// reproduces the serial run exactly.
func TestPerWorkerProblemViewsAreUsed(t *testing.T) {
	serial, err := Run(twoMin(14), Config{PopSize: 24, Generations: 12, Seed: 6, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	p := &perWorkerProblem{funcProblem: twoMin(14)}
	parallel, err := Run(p, Config{PopSize: 24, Generations: 12, Seed: 6, ArchiveAll: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.workers) != 4 {
		t.Fatalf("built %d worker views, want 4", len(p.workers))
	}
	workerEvals := 0
	for _, w := range p.workers {
		workerEvals += w.evals
	}
	// Every distinct genome is evaluated exactly once, through a
	// worker view for multi-job batches or through the shared problem
	// for single-job ones.
	if workerEvals == 0 {
		t.Fatal("no evaluations were routed through the worker views")
	}
	if workerEvals+p.parentUsed != parallel.DistinctEvaluated {
		t.Fatalf("workers saw %d evaluations + parent %d, engine reports %d distinct",
			workerEvals, p.parentUsed, parallel.DistinctEvaluated)
	}
	if serial.Evaluations != parallel.Evaluations || serial.DistinctEvaluated != parallel.DistinctEvaluated {
		t.Fatal("per-worker run diverges from serial")
	}
	for i := range serial.Final {
		if string(serial.Final[i].Genome) != string(parallel.Final[i].Genome) {
			t.Fatal("final populations diverge")
		}
	}
	for i := range serial.Archive {
		if string(serial.Archive[i].Genome) != string(parallel.Archive[i].Genome) {
			t.Fatal("archive order diverges")
		}
	}
}

// TestWorkersWithoutFactoryStillWork pins the legacy path: a plain
// concurrency-safe Problem parallelizes through the shared instance.
func TestWorkersWithoutFactoryStillWork(t *testing.T) {
	serial, err := Run(twoMin(10), Config{PopSize: 16, Generations: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(twoMin(10), Config{PopSize: 16, Generations: 8, Seed: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Final {
		if string(serial.Final[i].Genome) != string(parallel.Final[i].Genome) {
			t.Fatal("plain problem parallel run diverges")
		}
	}
}
