package nsga2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPopulation builds a mixed feasible/infeasible population with
// deliberate objective ties and duplicates, the shapes that stress
// dominance ranking and stable-sort order.
func randomPopulation(rng *rand.Rand, n, m int) []Individual {
	pop := make([]Individual, n)
	for i := range pop {
		objs := make([]float64, m)
		for k := range objs {
			objs[k] = float64(rng.Intn(6))
		}
		pop[i] = Individual{Objs: objs}
		if rng.Intn(4) == 0 {
			pop[i].Violation = float64(1 + rng.Intn(3))
			for k := range objs {
				objs[k] = math.Inf(1)
			}
		}
		if i > 0 && rng.Intn(5) == 0 {
			// Exact duplicate of an earlier individual.
			pop[i] = Individual{
				Objs:      append([]float64(nil), pop[rng.Intn(i)].Objs...),
				Violation: pop[rng.Intn(i)].Violation,
			}
		}
	}
	return pop
}

// scratchEngine builds an engine sized for populations of up to 2*half
// without running a problem, for driving the scratch machinery
// directly against the reference implementations.
func scratchEngine(half, m int) *Engine {
	gt := 1
	for gt < 4*half {
		gt *= 2
	}
	e := &Engine{
		nObj:     m,
		size:     half,
		vfW:      make([]uint64, 2*half),
		domCount: make([]int32, 2*half),
		groupOf:  make([]int32, 2*half),
		gRep:     make([]int32, 2*half),
		gSize:    make([]int32, 2*half),
		gCur:     make([]int32, 2*half),
		gHash:    make([]uint64, 2*half),
		gDom:     make([][]int32, 2*half),
		gTable:   make([]int32, gt),
		gMask:    uint64(gt - 1),
		gmStart:  make([]int32, 2*half+1),
		gMembers: make([]int32, 2*half),
		zbuf:     make([]int, 0, 2*half),
		frontBuf: make([]int, 0, 2*half),
		crowdIdx: make([]int, 2*half),
		rest:     make([]int, 0, 2*half),
		nextBuf:  make([]Individual, half),
		nextSlab: make([]byte, half),
		popBuf:   make([]Individual, half),
		curSlab:  make([]byte, half),
		gl:       1,
	}
	e.objCol = make([][]float64, m)
	e.objColBuf = make([]float64, 2*half*m)
	for k := 0; k < m; k++ {
		e.objCol[k] = e.objColBuf[k*2*half : (k+1)*2*half : (k+1)*2*half]
	}
	return e
}

// TestRankAndCrowdMatchesReference pins the scratch non-dominated
// sort and crowding pass to the allocating reference implementations
// on randomized populations.
func TestRankAndCrowdMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(3)
		ref := randomPopulation(rng, n, m)
		got := make([]Individual, n)
		copy(got, ref)

		refFronts := fastNonDominatedSort(ref)
		for rank, front := range refFronts {
			for _, i := range front {
				ref[i].Rank = rank
			}
			assignCrowding(ref, front)
		}

		// Both builders — the default sort-based one and the retained
		// pair-relation fallback — must reproduce the reference.
		for _, pairwise := range []bool{false, true} {
			copy(got, ref)
			for i := range got {
				got[i].Rank, got[i].Crowding = 0, 0
			}
			e := scratchEngine(n, m)
			e.forcePairwise = pairwise
			gotFronts := e.rankAndCrowd(got)

			if len(gotFronts) != len(refFronts) {
				return false
			}
			for fi := range refFronts {
				if len(gotFronts[fi]) != len(refFronts[fi]) {
					return false
				}
				for k := range refFronts[fi] {
					if gotFronts[fi][k] != refFronts[fi][k] {
						return false
					}
				}
			}
			for i := range ref {
				if got[i].Rank != ref[i].Rank {
					return false
				}
				if got[i].Crowding != ref[i].Crowding &&
					!(math.IsInf(got[i].Crowding, 1) && math.IsInf(ref[i].Crowding, 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGroupedDominanceDuplicateHeavy pins the grouped-dominance pass
// on populations dominated by duplicates — the shape real GA merges
// have (every infeasible individual of one violation grade shares one
// objective vector): fronts, member order, ranks and crowding must be
// bit-identical to the ungrouped reference sorter.
func TestGroupedDominanceDuplicateHeavy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(70)
		m := 1 + rng.Intn(3)
		// A handful of distinct vectors, heavily repeated: ~85% of
		// individuals duplicate one of ~n/8 archetypes.
		archetypes := randomPopulation(rng, 2+n/8, m)
		pop := make([]Individual, n)
		for i := range pop {
			if rng.Intn(8) == 0 {
				one := randomPopulation(rng, 1, m)
				pop[i] = one[0]
				continue
			}
			src := archetypes[rng.Intn(len(archetypes))]
			pop[i] = Individual{
				Objs:      append([]float64(nil), src.Objs...),
				Violation: src.Violation,
			}
		}
		ref := make([]Individual, n)
		copy(ref, pop)
		refFronts := fastNonDominatedSort(ref)
		for rank, front := range refFronts {
			for _, i := range front {
				ref[i].Rank = rank
			}
			assignCrowding(ref, front)
		}

		e := scratchEngine((n+1)/2+1, m)
		gotFronts := e.rankAndCrowd(pop)

		if len(gotFronts) != len(refFronts) {
			return false
		}
		for fi := range refFronts {
			if len(gotFronts[fi]) != len(refFronts[fi]) {
				return false
			}
			for k := range refFronts[fi] {
				if gotFronts[fi][k] != refFronts[fi][k] {
					return false
				}
			}
		}
		for i := range ref {
			if pop[i].Rank != ref[i].Rank {
				return false
			}
			if math.Float64bits(pop[i].Crowding) != math.Float64bits(ref[i].Crowding) {
				return false
			}
		}
		// Duplication must actually have been exploited: far fewer
		// groups than individuals.
		if g := e.groupIndividuals(n); g >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSurviveIntoMatchesReference pins the scratch survival selection
// (front fill plus crowding truncation) to the reference survive on
// randomized merged populations, genome bytes included.
func TestSurviveIntoMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		half := 1 + rng.Intn(20)
		m := 1 + rng.Intn(3)
		merged := randomPopulation(rng, 2*half, m)
		for i := range merged {
			merged[i].Genome = []byte{byte(i)}
		}
		refMerged := make([]Individual, len(merged))
		copy(refMerged, merged)

		ref := survive(refMerged, half)

		e := scratchEngine(half, m)
		got := e.surviveInto(merged)

		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i].Rank != ref[i].Rank || got[i].Violation != ref[i].Violation {
				return false
			}
			if got[i].Genome[0] != ref[i].Genome[0] {
				return false
			}
			if got[i].Crowding != ref[i].Crowding &&
				!(math.IsInf(got[i].Crowding, 1) && math.IsInf(ref[i].Crowding, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEngineStepMatchesRun pins the incremental API to Run: stepping
// an engine by hand is the same run.
func TestEngineStepMatchesRun(t *testing.T) {
	cfg := Config{PopSize: 20, Generations: 8, Seed: 11, ArchiveAll: true}
	want, err := Run(twoMin(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(twoMin(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		if e.Generation() != g {
			t.Fatalf("generation counter %d, want %d", e.Generation(), g)
		}
		e.Step()
	}
	got := e.Result()
	if got.Evaluations != want.Evaluations || got.DistinctEvaluated != want.DistinctEvaluated ||
		got.ValidEvaluations != want.ValidEvaluations || got.DistinctValid != want.DistinctValid {
		t.Fatalf("counters diverge: got %+v want %+v", got, want)
	}
	for i := range want.Final {
		if string(got.Final[i].Genome) != string(want.Final[i].Genome) {
			t.Fatal("final populations diverge between Run and manual stepping")
		}
	}
	for i := range want.Archive {
		if string(got.Archive[i].Genome) != string(want.Archive[i].Genome) {
			t.Fatal("archive order diverges between Run and manual stepping")
		}
	}
}

// TestResultDetachedFromScratch proves Result survives later Steps:
// the hot path reuses arena genomes, so Result must deep-copy what it
// hands out.
func TestResultDetachedFromScratch(t *testing.T) {
	e, err := NewEngine(twoMin(10), Config{PopSize: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		e.Step()
	}
	res := e.Result()
	frozen := make([]string, len(res.Final))
	for i, ind := range res.Final {
		frozen[i] = string(ind.Genome)
	}
	for g := 0; g < 6; g++ {
		e.Step()
	}
	for i, ind := range res.Final {
		if string(ind.Genome) != frozen[i] {
			t.Fatal("Result population mutated by later Steps")
		}
	}
}

// TestSnapshotRestoreReplaysExactly pins the replay contract: after
// Restore, the engine retraces the identical trajectory, including
// the PRNG, the populations and the evaluation counters.
func TestSnapshotRestoreReplaysExactly(t *testing.T) {
	e, err := NewEngine(twoMin(14), Config{PopSize: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	e.Step()
	snap := e.Snapshot()

	record := func() ([]string, int, int) {
		var genomes []string
		e.Step()
		e.Step()
		for _, ind := range e.Population() {
			genomes = append(genomes, string(ind.Genome))
		}
		return genomes, e.evals, e.Generation()
	}
	wantPop, wantEvals, wantGen := record()
	e.Restore(snap)
	if e.Generation() != 2 {
		t.Fatalf("restored generation %d, want 2", e.Generation())
	}
	gotPop, gotEvals, gotGen := record()
	if wantEvals != gotEvals || wantGen != gotGen {
		t.Fatalf("replay counters diverge: %d/%d vs %d/%d", gotEvals, gotGen, wantEvals, wantGen)
	}
	for i := range wantPop {
		if wantPop[i] != gotPop[i] {
			t.Fatal("replayed population diverges from the original trajectory")
		}
	}
}

// TestStepSteadyStateZeroAllocs drives the engine into a fully cached
// regime (a closed 2^8 genome universe is exhausted within a few
// generations) and demands allocation-free Steps: the tentpole
// contract of the scratch-arena rebuild.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	e, err := NewEngine(twoMin(8), Config{PopSize: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 60; g++ {
		e.Step()
	}
	before := len(e.cache.entries)
	allocs := testing.AllocsPerRun(20, func() { e.Step() })
	if after := len(e.cache.entries); after != before {
		// The universe was not exhausted; the measurement would be
		// charging legitimate cache growth to the machinery.
		t.Fatalf("cache still growing (%d -> %d); test setup broken", before, after)
	}
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f times per generation, want 0", allocs)
	}
}

// TestOffDisablesOperators covers the sentinel paths of the
// probability defaults: Off must truly disable an operator, while the
// zero value keeps the paper's defaults.
func TestOffDisablesOperators(t *testing.T) {
	d := Config{}.withDefaults()
	if d.CrossoverProb != 0.9 || d.MutationProb != 1.0 {
		t.Fatalf("zero-value defaults broken: crossover %v mutation %v", d.CrossoverProb, d.MutationProb)
	}
	d = Config{CrossoverProb: Off, MutationProb: Off}.withDefaults()
	if d.CrossoverProb != 0 || d.MutationProb != 0 {
		t.Fatalf("Off sentinel not mapped to 0: crossover %v mutation %v", d.CrossoverProb, d.MutationProb)
	}

	// With both operators off, offspring are verbatim parent copies:
	// no genome beyond the initial population is ever created.
	res, err := Run(twoMin(12), Config{PopSize: 20, Generations: 15, Seed: 8,
		CrossoverProb: Off, MutationProb: Off, ArchiveAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctEvaluated > 20 {
		t.Errorf("disabled operators still produced %d distinct genomes from a population of 20",
			res.DistinctEvaluated)
	}

	// Mutation alone disabled: crossover still recombines, so the
	// distinct count may grow, but every genome is a recombination of
	// initial material (sanity: the run completes and stays
	// deterministic).
	a, err := Run(twoMin(12), Config{PopSize: 20, Generations: 10, Seed: 8, MutationProb: Off})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(twoMin(12), Config{PopSize: 20, Generations: 10, Seed: 8, MutationProb: Off})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final {
		if string(a.Final[i].Genome) != string(b.Final[i].Genome) {
			t.Fatal("MutationProb: Off runs are not deterministic")
		}
	}

	// Other negative probabilities stay rejected.
	if _, err := Run(twoMin(8), Config{CrossoverProb: -0.5}); err == nil {
		t.Error("negative non-sentinel crossover probability must fail")
	}
	if _, err := Run(twoMin(8), Config{MutationProb: -0.5}); err == nil {
		t.Error("negative non-sentinel mutation probability must fail")
	}
}

// TestGenomeCacheBasics exercises the interned-key cache directly:
// lookups are exact, insertion order is preserved, growth keeps every
// entry reachable.
func TestGenomeCacheBasics(t *testing.T) {
	c := newGenomeCache()
	rng := rand.New(rand.NewSource(1))
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		g := make([]byte, 16)
		for j := range g {
			g[j] = byte(rng.Intn(2))
		}
		if _, ok := c.lookup(g); !ok {
			idx := c.insert(g)
			if idx != len(c.entries)-1 {
				t.Fatalf("insert returned %d, want %d", idx, len(c.entries)-1)
			}
			keys = append(keys, append([]byte(nil), g...))
		}
	}
	if len(keys) != len(c.entries) {
		t.Fatalf("%d inserts but %d entries", len(keys), len(c.entries))
	}
	for i, k := range keys {
		idx, ok := c.lookup(k)
		if !ok || idx != i {
			t.Fatalf("key %d lost after growth: ok=%v idx=%d", i, ok, idx)
		}
		if string(c.entries[i].key) != string(k) {
			t.Fatalf("entry %d insertion order broken", i)
		}
	}
	// Mutating the probe key must not affect the interned copy.
	k := append([]byte(nil), keys[0]...)
	if _, ok := c.lookup(k); !ok {
		t.Fatal("lookup of copied key failed")
	}
	k[0] ^= 1
	if string(c.entries[0].key) == string(k) {
		t.Fatal("cache aliased the caller's key slice")
	}
}
