// Package jsonx holds allocation-free appenders that reproduce
// encoding/json's output byte for byte for the scalar kinds the
// artifact and serving hot paths emit: floats (including the e-notation
// switchover and exponent cleanup), HTML-escaped strings, and
// integers. The artifact writers and the serve responder build compact
// documents from these appenders into reused buffers instead of
// reflecting over structs; golden tests in the consuming packages diff
// every composed document against the stdlib encoder.
package jsonx

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Finite reports whether f is representable in JSON. encoding/json
// rejects NaN and infinities with an UnsupportedValueError; callers
// that might see them must check and fall back to the stdlib encoder
// so the error (not silently different bytes) stays identical.
func Finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// AppendFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' notation inside [1e-6, 1e21) and 'e'
// notation outside, with the exponent's leading zero stripped
// (1e-09 -> 1e-9). f must be finite (see Finite).
func AppendFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, like the stdlib does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// AppendInt appends i in decimal, the form encoding/json gives every
// integer kind.
func AppendInt(b []byte, i int64) []byte {
	return strconv.AppendInt(b, i, 10)
}

const hexDigits = "0123456789abcdef"

// htmlSafe reports whether an ASCII byte passes through encoding/json's
// default (HTML-escaping) string encoder unescaped.
func htmlSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// AppendString appends s as a JSON string literal exactly as
// encoding/json's default encoder does: quotes around it, short
// escapes for \" \\ \b \f \n \r \t, \u00xx for other control bytes
// and for the HTML-sensitive < > &, the replacement rune for invalid
// UTF-8, and U+2028/U+2029 escaped for script-embedding safety.
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if htmlSafe(c) {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
