package jsonx

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAppendFloatMatchesStdlib pins the float appender to
// encoding/json on the layout's edge cases: the 1e-6/1e21 notation
// switchovers, negative zero, denormals, very small BERs, and
// integers-as-floats.
func TestAppendFloatMatchesStdlib(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 3.5, 1234.5678,
		1e-6, 9.999999e-7, 1e-7, 1e21, 9.99999e20, -1e21, -1e-7,
		1e-300, 5e-324, math.MaxFloat64, math.SmallestNonzeroFloat64,
		42, -42, 1e6, 123456789012345680, 0.1, 2.0 / 3.0,
		1.234e-10, 6.02214076e23, -273.15, 1e20, 1e-5,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got := AppendFloat(nil, f); string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %q, stdlib %q", f, got, want)
		}
	}
	if err := quick.Check(func(f float64) bool {
		if !Finite(f) {
			return true
		}
		want, _ := json.Marshal(f)
		return string(AppendFloat(nil, f)) == string(want)
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Bit-pattern sweep catches shapes quick's generator underweights.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if !Finite(f) {
			continue
		}
		want, _ := json.Marshal(f)
		if got := AppendFloat(nil, f); string(got) != string(want) {
			t.Fatalf("AppendFloat(%x) = %q, stdlib %q", math.Float64bits(f), got, want)
		}
	}
}

// TestAppendStringMatchesStdlib pins the string appender to
// encoding/json, HTML escaping included.
func TestAppendStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `quote"inside`, `back\slash`,
		"tab\there", "new\nline", "carriage\rreturn", "nul\x00byte",
		"ctrl\x1f", "<script>&amp;</script>", "café", "日本語",
		"bad\xffutf8", "\xc3\x28", "line sep", "para sep",
		"back\bspace", "form\ffeed", "emoji \U0001F600", " leading", "trailing ", "a;b;c",
		"genome 1000/0100/0010",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got := AppendString(nil, s); string(got) != string(want) {
			t.Errorf("AppendString(%q) = %q, stdlib %q", s, got, want)
		}
	}
	if err := quick.Check(func(s string) bool {
		want, _ := json.Marshal(s)
		return string(AppendString(nil, s)) == string(want)
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Random raw byte strings exercise the invalid-UTF-8 path, which
	// quick's valid-string generator never reaches.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		raw := make([]byte, rng.Intn(24))
		rng.Read(raw)
		s := string(raw)
		want, _ := json.Marshal(s)
		if got := AppendString(nil, s); string(got) != string(want) {
			t.Fatalf("AppendString(%x) = %q, stdlib %q", raw, got, want)
		}
	}
}

func TestAppendIntMatchesStdlib(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64, 1 << 40} {
		want, _ := json.Marshal(i)
		if got := AppendInt(nil, i); string(got) != string(want) {
			t.Errorf("AppendInt(%d) = %q, stdlib %q", i, got, want)
		}
	}
}

func TestFinite(t *testing.T) {
	if Finite(math.NaN()) || Finite(math.Inf(1)) || Finite(math.Inf(-1)) {
		t.Fatal("Finite accepts non-finite values")
	}
	if !Finite(0) || !Finite(-1e300) {
		t.Fatal("Finite rejects finite values")
	}
}
