package graph

import (
	"math/rand"
	"testing"
)

func TestFFTStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := FFT(rng, 8, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("FFT graph invalid: %v", err)
	}
	// 8 points: 1 input layer + 3 butterfly layers = 32 tasks; each
	// butterfly layer adds 2 edges per point = 48 edges.
	if g.NumTasks() != 32 {
		t.Errorf("tasks = %d, want 32", g.NumTasks())
	}
	if g.NumEdges() != 48 {
		t.Errorf("edges = %d, want 48", g.NumEdges())
	}
	// Every non-input task has exactly two inputs (a butterfly).
	preds := g.Preds()
	for ti := 8; ti < 32; ti++ {
		if len(preds[ti]) != 2 {
			t.Errorf("task %d has %d inputs, want 2", ti, len(preds[ti]))
		}
	}
	// Input layer has none.
	for ti := 0; ti < 8; ti++ {
		if len(preds[ti]) != 0 {
			t.Errorf("input task %d has %d inputs", ti, len(preds[ti]))
		}
	}
}

func TestFFTButterflyWiring(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := FFT(rng, 4, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 -> 1 with span 1: task 4+0 (layer1, i=0) consumes
	// layer0 tasks 0 and 1.
	preds := g.Preds()
	srcs := map[int]bool{}
	for _, ei := range preds[4] {
		srcs[g.Edges[ei].Src] = true
	}
	if !srcs[0] || !srcs[1] {
		t.Errorf("butterfly 1_0 consumes %v, want {0,1}", srcs)
	}
	// Layer 1 -> 2 with span 2: task 8 (layer2, i=0) consumes layer1
	// tasks 4 and 6.
	srcs = map[int]bool{}
	for _, ei := range preds[8] {
		srcs[g.Edges[ei].Src] = true
	}
	if !srcs[4] || !srcs[6] {
		t.Errorf("butterfly 2_0 consumes %v, want {4,6}", srcs)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := FFT(rng, n, DefaultGenConfig()); err == nil {
			t.Errorf("FFT(%d) must fail", n)
		}
	}
}

func TestGaussianEliminationStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := GaussianElimination(rng, 5, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("GE graph invalid: %v", err)
	}
	// n=5: pivots 4, updates 4+3+2+1 = 10, total 14 tasks.
	if g.NumTasks() != 14 {
		t.Errorf("tasks = %d, want 14", g.NumTasks())
	}
	// The elimination is inherently sequential across steps: the
	// critical path must span all pivots.
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, ti := range order {
		pos[g.Tasks[ti].Name] = i
	}
	if !(pos["piv0"] < pos["piv1"] && pos["piv1"] < pos["piv2"] && pos["piv2"] < pos["piv3"]) {
		t.Error("pivots must be totally ordered")
	}
}

func TestGaussianEliminationMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := GaussianElimination(rng, 1, DefaultGenConfig()); err == nil {
		t.Error("GE(1) must fail")
	}
	g, err := GaussianElimination(rng, 2, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	// n=2: one pivot, one update, one edge.
	if g.NumTasks() != 2 || g.NumEdges() != 1 {
		t.Errorf("GE(2) = %d tasks / %d edges, want 2/1", g.NumTasks(), g.NumEdges())
	}
}

func TestDiamondStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := Diamond(rng, 4, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	if g.NumTasks() != 16 {
		t.Errorf("tasks = %d, want 16", g.NumTasks())
	}
	// Edges: 2*n*(n-1) = 24.
	if g.NumEdges() != 24 {
		t.Errorf("edges = %d, want 24", g.NumEdges())
	}
	// Wavefront property: the only source is (0,0), the only sink
	// (n-1,n-1).
	preds, succs := g.Preds(), g.Succs()
	sources, sinks := 0, 0
	for ti := range g.Tasks {
		if len(preds[ti]) == 0 {
			sources++
		}
		if len(succs[ti]) == 0 {
			sinks++
		}
	}
	if sources != 1 || sinks != 1 {
		t.Errorf("sources/sinks = %d/%d, want 1/1", sources, sinks)
	}
	if _, err := Diamond(rng, 1, DefaultGenConfig()); err == nil {
		t.Error("diamond(1) must fail")
	}
}

func TestBenchmarkGraphsMapOntoLargerRings(t *testing.T) {
	// The structured benchmarks must place one-to-one on reasonably
	// sized platforms (the scaling example uses a 6x6 ring).
	rng := rand.New(rand.NewSource(6))
	g, err := FFT(rng, 8, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomMapping(rng, g, 36); err != nil {
		t.Errorf("FFT(8) on 36 cores: %v", err)
	}
	ge, err := GaussianElimination(rng, 5, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomMapping(rng, ge, 16); err != nil {
		t.Errorf("GE(5) on 16 cores: %v", err)
	}
}
