// Package graph implements the application model of the paper: task
// graphs (Definition 1), the architecture characterization graph
// (Definition 2), and the task mapping — both the paper's one-to-one
// form (Definition 3) and the relaxed shared-core form where several
// tasks serialize on one core — together with builders for the
// paper's virtual application and a family of random DAG generators
// for wider experiments.
package graph

import (
	"fmt"
)

// Task is one vertex of a task graph. Execution time is expressed in
// clock cycles; the paper assumes homogeneous cores, so the time does
// not depend on the core the task is mapped to.
type Task struct {
	Name       string
	ExecCycles float64
}

// Edge is one directed communication d(i,j) of a task graph, weighted
// by the exchanged volume in bits.
type Edge struct {
	Name       string
	Src, Dst   int
	VolumeBits float64
}

// TaskGraph is a directed acyclic application graph (Definition 1).
type TaskGraph struct {
	Tasks []Task
	Edges []Edge
}

// NumTasks returns the number of vertices.
func (g *TaskGraph) NumTasks() int { return len(g.Tasks) }

// NumEdges returns Nl, the number of communications.
func (g *TaskGraph) NumEdges() int { return len(g.Edges) }

// TotalVolumeBits sums the communication volume over all edges.
func (g *TaskGraph) TotalVolumeBits() float64 {
	var v float64
	for _, e := range g.Edges {
		v += e.VolumeBits
	}
	return v
}

// Preds returns, for every task, the indices of its incoming edges.
func (g *TaskGraph) Preds() [][]int {
	in := make([][]int, len(g.Tasks))
	for i, e := range g.Edges {
		in[e.Dst] = append(in[e.Dst], i)
	}
	return in
}

// Succs returns, for every task, the indices of its outgoing edges.
func (g *TaskGraph) Succs() [][]int {
	out := make([][]int, len(g.Tasks))
	for i, e := range g.Edges {
		out[e.Src] = append(out[e.Src], i)
	}
	return out
}

// Validate checks the structural invariants: non-empty, edge endpoints
// in range, no self loops, positive execution times, non-negative
// volumes, no duplicate directed edges, and acyclicity.
func (g *TaskGraph) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("graph: no tasks")
	}
	for i, t := range g.Tasks {
		if t.ExecCycles < 0 {
			return fmt.Errorf("graph: task %d (%s) has negative execution time", i, t.Name)
		}
	}
	seen := make(map[[2]int]bool, len(g.Edges))
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Tasks) || e.Dst < 0 || e.Dst >= len(g.Tasks) {
			return fmt.Errorf("graph: edge %d (%s) endpoints %d->%d out of range", i, e.Name, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("graph: edge %d (%s) is a self loop on task %d", i, e.Name, e.Src)
		}
		if e.VolumeBits < 0 {
			return fmt.Errorf("graph: edge %d (%s) has negative volume", i, e.Name)
		}
		k := [2]int{e.Src, e.Dst}
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge %d->%d", e.Src, e.Dst)
		}
		seen[k] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of the tasks, or an error
// if the graph has a cycle (Kahn's algorithm).
func (g *TaskGraph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Tasks))
	for _, e := range g.Edges {
		if e.Dst >= 0 && e.Dst < len(indeg) {
			indeg[e.Dst]++
		}
	}
	succ := g.Succs()
	queue := make([]int, 0, len(g.Tasks))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.Tasks))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, ei := range succ[n] {
			d := g.Edges[ei].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d tasks ordered)", len(order), len(g.Tasks))
	}
	return order, nil
}

// CriticalPathCycles returns the longest chain of task execution times
// ignoring all communication: the floor the paper calls the "minimal
// execution time" (20 k-cc for the virtual application), reached when
// bandwidth makes transfers negligible.
func (g *TaskGraph) CriticalPathCycles() (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	preds := g.Preds()
	end := make([]float64, len(g.Tasks))
	var best float64
	for _, ti := range order {
		start := 0.0
		for _, ei := range preds[ti] {
			if e := end[g.Edges[ei].Src]; e > start {
				start = e
			}
		}
		end[ti] = start + g.Tasks[ti].ExecCycles
		if end[ti] > best {
			best = end[ti]
		}
	}
	return best, nil
}

// Clone deep-copies the graph.
func (g *TaskGraph) Clone() *TaskGraph {
	ng := &TaskGraph{
		Tasks: make([]Task, len(g.Tasks)),
		Edges: make([]Edge, len(g.Edges)),
	}
	copy(ng.Tasks, g.Tasks)
	copy(ng.Edges, g.Edges)
	return ng
}
