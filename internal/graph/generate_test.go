package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestChainGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := Chain(rng, 5, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("chain invalid: %v", err)
	}
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Errorf("chain size = %d tasks / %d edges, want 5/4", g.NumTasks(), g.NumEdges())
	}
	if _, err := Chain(rng, 1, DefaultGenConfig()); err == nil {
		t.Error("chain of 1 must fail")
	}
}

func TestForkJoinGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := ForkJoin(rng, 4, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("fork-join invalid: %v", err)
	}
	if g.NumTasks() != 6 || g.NumEdges() != 8 {
		t.Errorf("fork-join size = %d/%d, want 6 tasks / 8 edges", g.NumTasks(), g.NumEdges())
	}
	// Source has no preds, sink has no succs.
	if len(g.Preds()[0]) != 0 || len(g.Succs()[5]) != 0 {
		t.Error("fork-join source/sink wiring broken")
	}
	if _, err := ForkJoin(rng, 0, DefaultGenConfig()); err == nil {
		t.Error("fork-join of width 0 must fail")
	}
}

func TestLayeredGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g, err := Layered(rng, 4, 3, 0.3, DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: layered invalid: %v", trial, err)
		}
		if g.NumTasks() != 12 {
			t.Fatalf("layered tasks = %d, want 12", g.NumTasks())
		}
		// Every non-first-layer task must have an incoming edge and
		// every non-last-layer task an outgoing one.
		preds, succs := g.Preds(), g.Succs()
		for ti := 3; ti < 12; ti++ {
			if len(preds[ti]) == 0 {
				t.Fatalf("trial %d: task %d unreachable", trial, ti)
			}
		}
		for ti := 0; ti < 9; ti++ {
			if len(succs[ti]) == 0 {
				t.Fatalf("trial %d: task %d is a dead end", trial, ti)
			}
		}
	}
	if _, err := Layered(rand.New(rand.NewSource(1)), 1, 3, 0.3, DefaultGenConfig()); err == nil {
		t.Error("single-layer graph must fail")
	}
	if _, err := Layered(rand.New(rand.NewSource(1)), 3, 3, 1.5, DefaultGenConfig()); err == nil {
		t.Error("probability > 1 must fail")
	}
}

func TestRandomDAGGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g, err := RandomDAG(rng, 10, 0.25, DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: random DAG invalid: %v", trial, err)
		}
	}
}

func TestSeriesParallelGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g, err := SeriesParallel(rng, 12, DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: series-parallel invalid: %v", trial, err)
		}
		if g.NumTasks() < 2 {
			t.Fatalf("trial %d: too few tasks", trial)
		}
	}
}

func TestGeneratorRangesRespected(t *testing.T) {
	cfg := GenConfig{ExecMin: 100, ExecMax: 200, VolMin: 10, VolMax: 20}
	rng := rand.New(rand.NewSource(6))
	g, err := RandomDAG(rng, 20, 0.3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		if task.ExecCycles < 100 || task.ExecCycles > 200 {
			t.Errorf("exec %v outside [100,200]", task.ExecCycles)
		}
	}
	for _, e := range g.Edges {
		if e.VolumeBits < 10 || e.VolumeBits > 20 {
			t.Errorf("volume %v outside [10,20]", e.VolumeBits)
		}
	}
}

func TestGenConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Chain(rng, 3, GenConfig{ExecMin: 10, ExecMax: 5}); err == nil {
		t.Error("inverted exec range must fail")
	}
	if _, err := Chain(rng, 3, GenConfig{VolMin: -1, VolMax: 5}); err == nil {
		t.Error("negative volume range must fail")
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a, _ := Layered(rand.New(rand.NewSource(42)), 3, 3, 0.4, DefaultGenConfig())
	b, _ := Layered(rand.New(rand.NewSource(42)), 3, 3, 0.4, DefaultGenConfig())
	if FormatString(a, nil) != FormatString(b, nil) {
		t.Error("same seed must reproduce the same graph")
	}
}

func TestTextFormatRoundTrip(t *testing.T) {
	g := PaperApp()
	m := PaperMapping()
	text := FormatString(g, m)
	g2, m2, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if FormatString(g2, m2) != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, FormatString(g2, m2))
	}
}

func TestTextFormatNoMapping(t *testing.T) {
	g := PaperApp()
	text := FormatString(g, nil)
	if strings.Contains(text, "map ") {
		t.Error("nil mapping must not emit map lines")
	}
	g2, m2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != nil {
		t.Errorf("mapping = %v, want nil", m2)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Error("parsed sizes differ")
	}
}

func TestParseComments(t *testing.T) {
	src := `
# a comment
task a 100

task b 200
edge e a b 50
`
	g, _, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 2 || g.NumEdges() != 1 {
		t.Errorf("parsed %d tasks / %d edges, want 2/1", g.NumTasks(), g.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown directive", "bogus x y"},
		{"task arity", "task a"},
		{"bad exec", "task a notanumber"},
		{"duplicate task", "task a 1\ntask a 2"},
		{"edge arity", "task a 1\ntask b 1\nedge e a b"},
		{"edge unknown task", "task a 1\nedge e a z 5"},
		{"bad volume", "task a 1\ntask b 1\nedge e a b x"},
		{"map arity", "task a 1\nmap a"},
		{"map unknown task", "task a 1\nmap z 0"},
		{"bad core", "task a 1\nmap a x"},
		{"double map", "task a 1\ntask b 1\nedge e a b 1\nmap a 0\nmap a 1"},
		{"incomplete map", "task a 1\ntask b 1\nedge e a b 1\nmap a 0"},
		{"cyclic", "task a 1\ntask b 1\nedge e a b 1\nedge f b a 1"},
		{"empty graph", "# nothing"},
	}
	for _, c := range cases {
		if _, _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}
