package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual task-graph format is line oriented:
//
//	# comment
//	task <name> <exec-cycles>
//	edge <name> <src-task> <dst-task> <volume-bits>
//	map  <task> <core>           (optional mapping block)
//
// Tasks are referred to by name in edge and map lines; declaration
// order fixes their indices. The format is what cmd/wagen emits and
// cmd/onocsim and cmd/wadate consume.

// Format writes the graph (and optional mapping, if non-nil) in the
// textual format.
func Format(w io.Writer, g *TaskGraph, m Mapping) error {
	for _, t := range g.Tasks {
		if _, err := fmt.Fprintf(w, "task %s %g\n", t.Name, t.ExecCycles); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "edge %s %s %s %g\n",
			e.Name, g.Tasks[e.Src].Name, g.Tasks[e.Dst].Name, e.VolumeBits); err != nil {
			return err
		}
	}
	for t, p := range m {
		if _, err := fmt.Fprintf(w, "map %s %d\n", g.Tasks[t].Name, p); err != nil {
			return err
		}
	}
	return nil
}

// FormatString renders Format into a string.
func FormatString(g *TaskGraph, m Mapping) string {
	var sb strings.Builder
	_ = Format(&sb, g, m) // strings.Builder never errors
	return sb.String()
}

// Parse reads a graph (and mapping, which may be empty) from the
// textual format.
func Parse(r io.Reader) (*TaskGraph, Mapping, error) {
	g := &TaskGraph{}
	index := make(map[string]int)
	mapped := make(map[int]int)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("graph: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "task":
			if len(fields) != 3 {
				return nil, nil, fail("want 'task <name> <cycles>'")
			}
			if _, dup := index[fields[1]]; dup {
				return nil, nil, fail("duplicate task name")
			}
			exec, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fail("bad execution time")
			}
			index[fields[1]] = len(g.Tasks)
			g.Tasks = append(g.Tasks, Task{Name: fields[1], ExecCycles: exec})
		case "edge":
			if len(fields) != 5 {
				return nil, nil, fail("want 'edge <name> <src> <dst> <bits>'")
			}
			src, okS := index[fields[2]]
			dst, okD := index[fields[3]]
			if !okS || !okD {
				return nil, nil, fail("edge references unknown task")
			}
			vol, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, nil, fail("bad volume")
			}
			g.Edges = append(g.Edges, Edge{Name: fields[1], Src: src, Dst: dst, VolumeBits: vol})
		case "map":
			if len(fields) != 3 {
				return nil, nil, fail("want 'map <task> <core>'")
			}
			t, ok := index[fields[1]]
			if !ok {
				return nil, nil, fail("map references unknown task")
			}
			core, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, nil, fail("bad core id")
			}
			if _, dup := mapped[t]; dup {
				return nil, nil, fail("task mapped twice")
			}
			mapped[t] = core
		default:
			return nil, nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	var m Mapping
	if len(mapped) > 0 {
		if len(mapped) != g.NumTasks() {
			missing := make([]string, 0)
			for t := range g.Tasks {
				if _, ok := mapped[t]; !ok {
					missing = append(missing, g.Tasks[t].Name)
				}
			}
			sort.Strings(missing)
			return nil, nil, fmt.Errorf("graph: mapping incomplete, missing %v", missing)
		}
		m = make(Mapping, g.NumTasks())
		for t, p := range mapped {
			m[t] = p
		}
	}
	return g, m, nil
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string) (*TaskGraph, Mapping, error) {
	return Parse(strings.NewReader(s))
}
