package graph

import (
	"math/rand"
	"testing"
)

func TestPaperAppStructure(t *testing.T) {
	g := PaperApp()
	if err := g.Validate(); err != nil {
		t.Fatalf("paper app must validate: %v", err)
	}
	if g.NumTasks() != 6 {
		t.Errorf("tasks = %d, want 6", g.NumTasks())
	}
	if g.NumEdges() != 6 {
		t.Errorf("edges (Nl) = %d, want 6", g.NumEdges())
	}
	for i, task := range g.Tasks {
		if task.ExecCycles != 5000 {
			t.Errorf("task %d exec = %v, want 5000 (5 k-cc)", i, task.ExecCycles)
		}
	}
	// Volumes preserved from the figure text.
	wantVol := map[string]float64{"c0": 6000, "c2": 4000, "c4": 8000, "c5": 4000}
	for _, e := range g.Edges {
		if want, ok := wantVol[e.Name]; ok && e.VolumeBits != want {
			t.Errorf("%s volume = %v, want %v", e.Name, e.VolumeBits, want)
		}
	}
}

func TestPaperAppCriticalPathIs20KCC(t *testing.T) {
	// The paper: "the optimized execution time will tend to the
	// minimal execution time (20 k-cc)".
	g := PaperApp()
	cp, err := g.CriticalPathCycles()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 20000 {
		t.Errorf("critical path = %v cycles, want 20000", cp)
	}
}

func TestPaperMappingValid(t *testing.T) {
	g := PaperApp()
	m := PaperMapping()
	if err := m.Validate(g, 16); err != nil {
		t.Fatalf("paper mapping must validate on 16 cores: %v", err)
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	base := func() *TaskGraph {
		return &TaskGraph{
			Tasks: []Task{{Name: "a", ExecCycles: 1}, {Name: "b", ExecCycles: 1}},
			Edges: []Edge{{Name: "e", Src: 0, Dst: 1, VolumeBits: 10}},
		}
	}
	cases := []struct {
		name string
		mut  func(*TaskGraph)
	}{
		{"empty", func(g *TaskGraph) { g.Tasks = nil; g.Edges = nil }},
		{"negative exec", func(g *TaskGraph) { g.Tasks[0].ExecCycles = -1 }},
		{"edge out of range", func(g *TaskGraph) { g.Edges[0].Dst = 9 }},
		{"negative edge", func(g *TaskGraph) { g.Edges[0].Src = -1 }},
		{"self loop", func(g *TaskGraph) { g.Edges[0].Dst = 0 }},
		{"negative volume", func(g *TaskGraph) { g.Edges[0].VolumeBits = -5 }},
		{"duplicate edge", func(g *TaskGraph) {
			g.Edges = append(g.Edges, Edge{Name: "e2", Src: 0, Dst: 1, VolumeBits: 1})
		}},
		{"cycle", func(g *TaskGraph) {
			g.Edges = append(g.Edges, Edge{Name: "back", Src: 1, Dst: 0, VolumeBits: 1})
		}},
	}
	for _, c := range cases {
		g := base()
		c.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base graph must validate: %v", err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := PaperApp()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(order))
	for i, task := range order {
		pos[task] = i
	}
	if len(pos) != g.NumTasks() {
		t.Fatalf("order %v does not cover all tasks", order)
	}
	for _, e := range g.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Errorf("edge %s violated: %d not before %d in %v", e.Name, e.Src, e.Dst, order)
		}
	}
}

func TestPredsSuccs(t *testing.T) {
	g := PaperApp()
	preds := g.Preds()
	succs := g.Succs()
	// T5 receives c0, c4, c5.
	if len(preds[5]) != 3 {
		t.Errorf("T5 preds = %v, want 3 incoming edges", preds[5])
	}
	// T2 emits c2 and c4.
	if len(succs[2]) != 2 {
		t.Errorf("T2 succs = %v, want 2 outgoing edges", succs[2])
	}
	// Edge lists are consistent with the edges themselves.
	for ti, es := range preds {
		for _, ei := range es {
			if g.Edges[ei].Dst != ti {
				t.Errorf("pred edge %d of task %d has Dst %d", ei, ti, g.Edges[ei].Dst)
			}
		}
	}
	for ti, es := range succs {
		for _, ei := range es {
			if g.Edges[ei].Src != ti {
				t.Errorf("succ edge %d of task %d has Src %d", ei, ti, g.Edges[ei].Src)
			}
		}
	}
}

func TestCriticalPathIgnoresVolumes(t *testing.T) {
	g := PaperApp()
	for i := range g.Edges {
		g.Edges[i].VolumeBits *= 100
	}
	cp, err := g.CriticalPathCycles()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 20000 {
		t.Errorf("critical path must ignore communication: %v", cp)
	}
}

func TestTotalVolume(t *testing.T) {
	g := PaperApp()
	if got := g.TotalVolumeBits(); got != 36000 {
		t.Errorf("total volume = %v, want 36000 bits", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := PaperApp()
	c := g.Clone()
	c.Tasks[0].ExecCycles = 1
	c.Edges[0].VolumeBits = 1
	if g.Tasks[0].ExecCycles == 1 || g.Edges[0].VolumeBits == 1 {
		t.Error("clone shares storage with original")
	}
}

func TestMappingValidate(t *testing.T) {
	g := PaperApp()
	if err := (Mapping{0, 1, 2, 3, 4, 5}).Validate(g, 16); err != nil {
		t.Errorf("identity-style mapping should validate: %v", err)
	}
	cases := []struct {
		name string
		m    Mapping
	}{
		{"too short", Mapping{0, 1, 2}},
		{"out of range", Mapping{0, 1, 2, 3, 4, 16}},
		{"negative", Mapping{0, 1, 2, 3, 4, -1}},
	}
	for _, c := range cases {
		if err := c.m.Validate(g, 16); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// The relaxed check accepts shared cores; the strict one (paper
	// mode, Definition 3) rejects them.
	shared := Mapping{0, 1, 2, 3, 4, 0}
	if err := shared.Validate(g, 16); err != nil {
		t.Errorf("shared-core mapping must pass the relaxed check: %v", err)
	}
	if err := shared.ValidateInjective(g, 16); err == nil {
		t.Error("shared-core mapping must fail the injective check")
	}
	if err := (Mapping{0, 1, 2, 3, 4, 5}).ValidateInjective(g, 16); err != nil {
		t.Errorf("injective mapping failed the strict check: %v", err)
	}
	if shared.Injective() {
		t.Error("Injective() must report the shared core")
	}
	if !(Mapping{0, 1, 2, 3, 4, 5}).Injective() {
		t.Error("Injective() must accept distinct cores")
	}
	loads := shared.CoreLoads(16)
	if loads[0] != 2 || loads[1] != 1 || loads[5] != 0 {
		t.Errorf("CoreLoads = %v", loads)
	}
}

func TestSharedRandomMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := Chain(rng, 40, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := SharedRandomMapping(rng, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g, 16); err != nil {
		t.Fatalf("shared mapping invalid: %v", err)
	}
	// Load balance: 40 tasks on 16 cores means every core carries
	// floor(40/16)=2 or ceil(40/16)=3 tasks.
	for c, l := range m.CoreLoads(16) {
		if l < 2 || l > 3 {
			t.Errorf("core %d carries %d tasks, want 2 or 3", c, l)
		}
	}
	// Small graphs stay injective.
	small := PaperApp()
	mi, err := SharedRandomMapping(rng, small, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := mi.ValidateInjective(small, 16); err != nil {
		t.Errorf("<=16-task shared mapping must be injective: %v", err)
	}
	// Determinism for a fixed source.
	a, _ := SharedRandomMapping(rand.New(rand.NewSource(3)), g, 16)
	b, _ := SharedRandomMapping(rand.New(rand.NewSource(3)), g, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shared mapping is not deterministic for a fixed seed")
		}
	}
	if _, err := SharedRandomMapping(rng, g, 0); err == nil {
		t.Error("zero cores must fail")
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping(6)
	if err := m.Validate(PaperApp(), 6); err != nil {
		t.Fatalf("identity mapping invalid: %v", err)
	}
	for i, p := range m {
		if p != i {
			t.Errorf("IdentityMapping[%d] = %d", i, p)
		}
	}
}

func TestRingACG(t *testing.T) {
	a := NewRingACG(16)
	if a.Cores != 16 || len(a.Links) != 16 {
		t.Fatalf("ring ACG = %d cores, %d links; want 16/16", a.Cores, len(a.Links))
	}
	for c := 0; c < 16; c++ {
		if d := a.Degree(c); d != 2 {
			t.Errorf("core %d degree = %d, want 2", c, d)
		}
	}
}

func TestRingDistance(t *testing.T) {
	cases := []struct{ n, s, d, want int }{
		{16, 0, 1, 1},
		{16, 1, 0, 15},
		{16, 14, 2, 4},
		{16, 5, 5, 0},
	}
	for _, c := range cases {
		if got := RingDistance(c.n, c.s, c.d); got != c.want {
			t.Errorf("RingDistance(%d,%d,%d) = %d, want %d", c.n, c.s, c.d, got, c.want)
		}
	}
}

func TestRandomMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := PaperApp()
	for trial := 0; trial < 50; trial++ {
		m, err := RandomMapping(rng, g, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(g, 16); err != nil {
			t.Fatalf("trial %d: random mapping invalid: %v", trial, err)
		}
	}
	if _, err := RandomMapping(rng, g, 4); err == nil {
		t.Error("mapping 6 tasks on 4 cores must fail")
	}
}
