package graph

import "fmt"

// Mapping assigns each task to a core: Mapping[task] = core ID
// (Definition 3). The paper requires the function to be injective —
// distinct tasks on distinct cores — but the repo also models the
// relaxed shared-core case (several tasks serialized on one core),
// the scenario of the larger mapping literature. Validate checks the
// relaxed shape/bounds contract; ValidateInjective adds the paper's
// strict one-to-one rule.
type Mapping []int

// Validate checks the shape/bounds contract shared by both mapping
// regimes: the mapping covers every task of g exactly once and stays
// inside the nCores cores of the platform. Several tasks may share a
// core — the time model serializes them (see internal/sched). Paper
// mode uses ValidateInjective on top.
func (m Mapping) Validate(g *TaskGraph, nCores int) error {
	if len(m) != g.NumTasks() {
		return fmt.Errorf("graph: mapping covers %d tasks, graph has %d", len(m), g.NumTasks())
	}
	for t, p := range m {
		if p < 0 || p >= nCores {
			return fmt.Errorf("graph: task %d mapped to core %d outside [0,%d)", t, p, nCores)
		}
	}
	return nil
}

// ValidateInjective checks Validate plus Definition 3's strict
// injectivity: distinct tasks must run on distinct cores.
func (m Mapping) ValidateInjective(g *TaskGraph, nCores int) error {
	if err := m.Validate(g, nCores); err != nil {
		return err
	}
	used := make(map[int]int, len(m))
	for t, p := range m {
		if prev, ok := used[p]; ok {
			return fmt.Errorf("graph: tasks %d and %d both mapped to core %d", prev, t, p)
		}
		used[p] = t
	}
	return nil
}

// Injective reports whether no core hosts more than one task — the
// paper's Definition 3 regime, under which the analytic time model
// needs no core serialization.
func (m Mapping) Injective() bool {
	seen := make(map[int]bool, len(m))
	for _, p := range m {
		if seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// CoreLoads returns how many tasks the mapping places on each of the
// nCores cores.
func (m Mapping) CoreLoads(nCores int) []int {
	loads := make([]int, nCores)
	for _, p := range m {
		if p >= 0 && p < nCores {
			loads[p]++
		}
	}
	return loads
}

// Clone copies the mapping.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	copy(c, m)
	return c
}

// IdentityMapping maps task i to core i.
func IdentityMapping(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// ACG is the Architecture Characterization Graph of Definition 2: an
// undirected graph of cores and physical links. For the ring platform
// the links mirror the waveguide hops; the type exists so mapping
// exploration can reason about core adjacency without importing the
// optical layer.
type ACG struct {
	Cores int
	Links [][2]int
}

// NewRingACG builds the ACG of an n-core ring: core i linked to core
// (i+1) mod n.
func NewRingACG(n int) *ACG {
	a := &ACG{Cores: n, Links: make([][2]int, 0, n)}
	for i := 0; i < n; i++ {
		a.Links = append(a.Links, [2]int{i, (i + 1) % n})
	}
	return a
}

// Degree returns the number of links incident to core c.
func (a *ACG) Degree(c int) int {
	d := 0
	for _, l := range a.Links {
		if l[0] == c || l[1] == c {
			d++
		}
	}
	return d
}

// RingDistance returns the directed hop count from src to dst on a
// unidirectional n-core ring.
func RingDistance(n, src, dst int) int {
	return ((dst-src)%n + n) % n
}
