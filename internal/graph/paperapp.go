package graph

// PaperApp returns the 6-task virtual application of Fig. 5(a).
//
// The PDF-to-text extraction of the paper preserves: six tasks of
// 5 k-cc each, six communications c0..c5, the volumes c0 = 6 kb,
// c2 = 4 kb, c4 = 8 kb, c5 = 4 kb, a 4-task critical chain (minimum
// execution time 20 k-cc), single-wavelength makespans in the upper
// 30s k-cc, and Pareto allocation vectors in which c1 consistently
// receives the most wavelengths and c0 the fewest. The volumes of c1
// and c3 and the exact wiring are reconstructed to honour all of those
// anchors (see DESIGN.md section 5):
//
//	c0: T0 -> T5, 6 kb   (always slack: 1-2 wavelengths suffice)
//	c1: T1 -> T2, 8 kb   (first hop of the critical chain)
//	c2: T2 -> T4, 4 kb   (critical chain)
//	c3: T3 -> T4, 6 kb   (semi-slack side feed)
//	c4: T2 -> T5, 8 kb   (slack side feed, volume from the figure)
//	c5: T4 -> T5, 4 kb   (critical chain tail)
//
// Critical chain T1-T2-T4-T5: 4 x 5 k-cc = 20 k-cc minimum, and with a
// single wavelength per communication the makespan is 36 k-cc.
func PaperApp() *TaskGraph {
	const kcc = 1000.0
	const kb = 1000.0
	g := &TaskGraph{
		Tasks: []Task{
			{Name: "T0", ExecCycles: 5 * kcc},
			{Name: "T1", ExecCycles: 5 * kcc},
			{Name: "T2", ExecCycles: 5 * kcc},
			{Name: "T3", ExecCycles: 5 * kcc},
			{Name: "T4", ExecCycles: 5 * kcc},
			{Name: "T5", ExecCycles: 5 * kcc},
		},
		Edges: []Edge{
			{Name: "c0", Src: 0, Dst: 5, VolumeBits: 6 * kb},
			{Name: "c1", Src: 1, Dst: 2, VolumeBits: 8 * kb},
			{Name: "c2", Src: 2, Dst: 4, VolumeBits: 4 * kb},
			{Name: "c3", Src: 3, Dst: 4, VolumeBits: 6 * kb},
			{Name: "c4", Src: 2, Dst: 5, VolumeBits: 8 * kb},
			{Name: "c5", Src: 4, Dst: 5, VolumeBits: 4 * kb},
		},
	}
	return g
}

// PaperMapping returns the design-time mapping of the six tasks onto
// the 16-core serpentine ring used by all paper-reproduction
// experiments: T0->p0, T1->p1, T2->p5, T3->p2, T4->p10, T5->p15.
// The placement gives the six communications medium ring distances
// with several overlapping paths, so the wavelength-sharing validity
// rule and inter-communication crosstalk both matter (the behaviour
// the paper's figure depends on; the exact placement in Fig. 5(b) is
// not recoverable from the text).
func PaperMapping() Mapping {
	return Mapping{0, 1, 5, 2, 10, 15}
}
