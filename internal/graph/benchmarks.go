package graph

import (
	"fmt"
	"math/rand"
)

// This file provides the classic structured task graphs of the
// multiprocessor-scheduling literature (FFT butterflies, Gaussian
// elimination, diamond/stencil DAGs). They are the standard workloads
// NoC mapping/allocation papers scale their methods on, and they give
// the examples realistic applications beyond the paper's 6-task
// virtual app.

// FFT builds the butterfly task graph of an n-point fast Fourier
// transform (n must be a power of two): an input layer of n tasks
// followed by log2(n) butterfly layers; task (l+1, i) consumes task
// (l, i) and task (l, i XOR 2^l). Volumes and execution times are
// drawn from cfg.
func FFT(rng *rand.Rand, n int, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("graph: FFT size %d is not a power of two >= 2", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stages := 0
	for s := n; s > 1; s >>= 1 {
		stages++
	}
	g := &TaskGraph{}
	id := func(layer, i int) int { return layer*n + i }
	for layer := 0; layer <= stages; layer++ {
		for i := 0; i < n; i++ {
			g.Tasks = append(g.Tasks, Task{
				Name:       fmt.Sprintf("f%d_%d", layer, i),
				ExecCycles: cfg.exec(rng),
			})
		}
	}
	for layer := 0; layer < stages; layer++ {
		span := 1 << layer
		for i := 0; i < n; i++ {
			g.Edges = append(g.Edges,
				Edge{Src: id(layer, i), Dst: id(layer+1, i), VolumeBits: cfg.vol(rng)},
				Edge{Src: id(layer, i^span), Dst: id(layer+1, i), VolumeBits: cfg.vol(rng)},
			)
		}
	}
	return named(g), nil
}

// GaussianElimination builds the task graph of unblocked Gaussian
// elimination on an n x n system: for each elimination step k there is
// one pivot task feeding n-k-1 update tasks, each of which feeds the
// next step's pivot and its own column's next update — the classic
// triangular DAG of the scheduling literature.
func GaussianElimination(rng *rand.Rand, n int, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Gaussian elimination needs n >= 2, got %d", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	pivot := make([]int, n-1)
	update := make(map[[2]int]int)
	newTask := func(name string) int {
		g.Tasks = append(g.Tasks, Task{Name: name, ExecCycles: cfg.exec(rng)})
		return len(g.Tasks) - 1
	}
	for k := 0; k < n-1; k++ {
		pivot[k] = newTask(fmt.Sprintf("piv%d", k))
		for j := k + 1; j < n; j++ {
			update[[2]int{k, j}] = newTask(fmt.Sprintf("upd%d_%d", k, j))
		}
	}
	addEdge := func(s, d int) {
		g.Edges = append(g.Edges, Edge{Src: s, Dst: d, VolumeBits: cfg.vol(rng)})
	}
	for k := 0; k < n-1; k++ {
		for j := k + 1; j < n; j++ {
			addEdge(pivot[k], update[[2]int{k, j}])
			if k+1 < n-1 && j > k+1 {
				// The updated column feeds the next step's update of
				// the same column.
				addEdge(update[[2]int{k, j}], update[[2]int{k + 1, j}])
			}
		}
		if k+1 < n-1 {
			// The next pivot consumes the first updated column.
			addEdge(update[[2]int{k, k + 1}], pivot[k+1])
		}
	}
	return named(g), nil
}

// Diamond builds the n x n wavefront (stencil) DAG: task (i, j)
// depends on (i-1, j) and (i, j-1), the dependence pattern of dynamic
// programming and stencil sweeps.
func Diamond(rng *rand.Rand, n int, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: diamond needs n >= 2, got %d", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Tasks = append(g.Tasks, Task{
				Name:       fmt.Sprintf("d%d_%d", i, j),
				ExecCycles: cfg.exec(rng),
			})
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				g.Edges = append(g.Edges, Edge{Src: id(i, j), Dst: id(i+1, j), VolumeBits: cfg.vol(rng)})
			}
			if j+1 < n {
				g.Edges = append(g.Edges, Edge{Src: id(i, j), Dst: id(i, j+1), VolumeBits: cfg.vol(rng)})
			}
		}
	}
	return named(g), nil
}
