package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// The paper's virtual application (Fig. 5) in the textual exchange
// format.
func ExamplePaperApp() {
	app := graph.PaperApp()
	floor, _ := app.CriticalPathCycles()
	fmt.Printf("%d tasks, %d communications, %.0f k-cc floor\n",
		app.NumTasks(), app.NumEdges(), floor/1000)
	// Output: 6 tasks, 6 communications, 20 k-cc floor
}

func ExampleParseString() {
	src := `
task producer 1000
task consumer 2000
edge stream producer consumer 4096
map producer 0
map consumer 5
`
	app, m, err := graph.ParseString(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s -> core %d\n", app.Tasks[1].Name, m[1])
	fmt.Printf("volume: %.0f bits\n", app.Edges[0].VolumeBits)
	// Output:
	// consumer -> core 5
	// volume: 4096 bits
}

func ExampleRingDistance() {
	// Directed hops on a 16-core unidirectional ring.
	fmt.Println(graph.RingDistance(16, 14, 2))
	fmt.Println(graph.RingDistance(16, 2, 14))
	// Output:
	// 4
	// 12
}
