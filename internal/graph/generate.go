package graph

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes the random task-graph generators. All
// generators draw execution times and volumes uniformly from the
// configured ranges, producing workloads of the same flavour as the
// paper's virtual application (k-cc tasks exchanging kb messages).
type GenConfig struct {
	// ExecMin and ExecMax bound task execution times in cycles.
	ExecMin, ExecMax float64
	// VolMin and VolMax bound edge volumes in bits.
	VolMin, VolMax float64
}

// DefaultGenConfig matches the scale of the paper's application:
// tasks of 2-8 k-cc exchanging 2-10 kb messages.
func DefaultGenConfig() GenConfig {
	return GenConfig{ExecMin: 2000, ExecMax: 8000, VolMin: 2000, VolMax: 10000}
}

func (c GenConfig) validate() error {
	if c.ExecMin < 0 || c.ExecMax < c.ExecMin {
		return fmt.Errorf("graph: bad exec range [%v,%v]", c.ExecMin, c.ExecMax)
	}
	if c.VolMin < 0 || c.VolMax < c.VolMin {
		return fmt.Errorf("graph: bad volume range [%v,%v]", c.VolMin, c.VolMax)
	}
	return nil
}

func (c GenConfig) exec(rng *rand.Rand) float64 {
	return c.ExecMin + rng.Float64()*(c.ExecMax-c.ExecMin)
}

func (c GenConfig) vol(rng *rand.Rand) float64 {
	return c.VolMin + rng.Float64()*(c.VolMax-c.VolMin)
}

func named(g *TaskGraph) *TaskGraph {
	for i := range g.Tasks {
		if g.Tasks[i].Name == "" {
			g.Tasks[i].Name = fmt.Sprintf("T%d", i)
		}
	}
	for i := range g.Edges {
		if g.Edges[i].Name == "" {
			g.Edges[i].Name = fmt.Sprintf("c%d", i)
		}
	}
	return g
}

// Chain generates a linear pipeline of n tasks: the worst case for
// communication serialization (every transfer is on the critical
// path).
func Chain(rng *rand.Rand, n int, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: chain needs >= 2 tasks, got %d", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	for i := 0; i < n; i++ {
		g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)})
	}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, VolumeBits: cfg.vol(rng)})
	}
	return named(g), nil
}

// ForkJoin generates a source task fanning out to width parallel
// workers that join into a sink: the best case for WDM parallelism
// (all transfers want bandwidth at the same time).
func ForkJoin(rng *rand.Rand, width int, cfg GenConfig) (*TaskGraph, error) {
	if width < 1 {
		return nil, fmt.Errorf("graph: fork-join needs >= 1 worker, got %d", width)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)}) // source
	for i := 0; i < width; i++ {
		g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)})
	}
	g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)}) // sink
	sink := width + 1
	for i := 1; i <= width; i++ {
		g.Edges = append(g.Edges, Edge{Src: 0, Dst: i, VolumeBits: cfg.vol(rng)})
		g.Edges = append(g.Edges, Edge{Src: i, Dst: sink, VolumeBits: cfg.vol(rng)})
	}
	return named(g), nil
}

// Layered generates a layered DAG: layers of the given width, each
// task wired to a random subset of the next layer (at least one
// outgoing edge per non-final task, at least one incoming per
// non-initial task). This is the classic synthetic-MPSoC workload
// shape (TGFF-style).
func Layered(rng *rand.Rand, layers, width int, edgeProb float64, cfg GenConfig) (*TaskGraph, error) {
	if layers < 2 || width < 1 {
		return nil, fmt.Errorf("graph: layered needs >= 2 layers and >= 1 width, got %dx%d", layers, width)
	}
	if edgeProb < 0 || edgeProb > 1 {
		return nil, fmt.Errorf("graph: edge probability %v outside [0,1]", edgeProb)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	id := func(layer, i int) int { return layer*width + i }
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)})
		}
	}
	hasIn := make([]bool, layers*width)
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			out := 0
			for j := 0; j < width; j++ {
				if rng.Float64() < edgeProb {
					g.Edges = append(g.Edges, Edge{Src: id(l, i), Dst: id(l+1, j), VolumeBits: cfg.vol(rng)})
					hasIn[id(l+1, j)] = true
					out++
				}
			}
			if out == 0 {
				j := rng.Intn(width)
				g.Edges = append(g.Edges, Edge{Src: id(l, i), Dst: id(l+1, j), VolumeBits: cfg.vol(rng)})
				hasIn[id(l+1, j)] = true
			}
		}
		// Guarantee every next-layer task is reachable.
		for j := 0; j < width; j++ {
			if !hasIn[id(l+1, j)] {
				i := rng.Intn(width)
				g.Edges = append(g.Edges, Edge{Src: id(l, i), Dst: id(l+1, j), VolumeBits: cfg.vol(rng)})
				hasIn[id(l+1, j)] = true
			}
		}
	}
	return named(g), dedupe(g)
}

// RandomDAG generates an n-task DAG where every forward pair (i, j>i)
// is an edge with probability edgeProb; task indices double as a
// topological order.
func RandomDAG(rng *rand.Rand, n int, edgeProb float64, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: random DAG needs >= 2 tasks, got %d", n)
	}
	if edgeProb < 0 || edgeProb > 1 {
		return nil, fmt.Errorf("graph: edge probability %v outside [0,1]", edgeProb)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	for i := 0; i < n; i++ {
		g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				g.Edges = append(g.Edges, Edge{Src: i, Dst: j, VolumeBits: cfg.vol(rng)})
			}
		}
	}
	return named(g), nil
}

// SeriesParallel generates a recursive series-parallel DAG with
// roughly n tasks, the structure of streaming/DSP applications.
func SeriesParallel(rng *rand.Rand, n int, cfg GenConfig) (*TaskGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: series-parallel needs >= 2 tasks, got %d", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &TaskGraph{}
	newTask := func() int {
		g.Tasks = append(g.Tasks, Task{ExecCycles: cfg.exec(rng)})
		return len(g.Tasks) - 1
	}
	addEdge := func(s, d int) {
		g.Edges = append(g.Edges, Edge{Src: s, Dst: d, VolumeBits: cfg.vol(rng)})
	}
	// grow recursively expands the block between entry s and exit d
	// with the given task budget.
	var grow func(s, d, budget int)
	grow = func(s, d, budget int) {
		if budget <= 0 {
			addEdge(s, d)
			return
		}
		if budget == 1 || rng.Float64() < 0.5 {
			// Series: s -> m -> d.
			m := newTask()
			grow(s, m, (budget-1)/2)
			grow(m, d, budget-1-(budget-1)/2)
			return
		}
		// Parallel: two branches between s and d.
		grow(s, d, budget/2)
		grow(s, d, budget-budget/2)
	}
	src, dst := newTask(), newTask()
	grow(src, dst, n-2)
	return named(g), dedupe(g)
}

// dedupe merges parallel duplicate edges (same src/dst) by summing
// their volumes, keeping Validate's no-duplicate invariant.
func dedupe(g *TaskGraph) error {
	seen := make(map[[2]int]int)
	out := g.Edges[:0]
	for _, e := range g.Edges {
		k := [2]int{e.Src, e.Dst}
		if i, ok := seen[k]; ok {
			out[i].VolumeBits += e.VolumeBits
			continue
		}
		seen[k] = len(out)
		out = append(out, e)
	}
	g.Edges = out
	for i := range g.Edges {
		g.Edges[i].Name = fmt.Sprintf("c%d", i)
	}
	return nil
}

// RandomMapping draws a uniformly random injective mapping of the
// graph's tasks onto nCores cores.
func RandomMapping(rng *rand.Rand, g *TaskGraph, nCores int) (Mapping, error) {
	if g.NumTasks() > nCores {
		return nil, fmt.Errorf("graph: %d tasks cannot map one-to-one onto %d cores", g.NumTasks(), nCores)
	}
	perm := rng.Perm(nCores)
	m := make(Mapping, g.NumTasks())
	copy(m, perm[:g.NumTasks()])
	return m, nil
}

// SharedRandomMapping draws a load-balanced random mapping that may
// place several tasks on one core: tasks are placed in index order,
// each on a uniformly random core among those currently carrying the
// fewest tasks. Graphs with at most nCores tasks therefore get an
// injective mapping; larger graphs spread ceil(tasks/cores) tasks per
// core — the relaxed regime the core-serialized time model handles.
func SharedRandomMapping(rng *rand.Rand, g *TaskGraph, nCores int) (Mapping, error) {
	if nCores < 1 {
		return nil, fmt.Errorf("graph: shared mapping needs >= 1 core, got %d", nCores)
	}
	if g.NumTasks() == 0 {
		return nil, fmt.Errorf("graph: cannot map an empty graph")
	}
	loads := make([]int, nCores)
	cands := make([]int, 0, nCores)
	m := make(Mapping, g.NumTasks())
	for t := range m {
		minLoad := loads[0]
		for _, l := range loads[1:] {
			if l < minLoad {
				minLoad = l
			}
		}
		cands = cands[:0]
		for c, l := range loads {
			if l == minLoad {
				cands = append(cands, c)
			}
		}
		core := cands[rng.Intn(len(cands))]
		m[t] = core
		loads[core]++
	}
	return m, nil
}
