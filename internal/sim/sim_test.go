package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/ring"
)

func mustInstance(t *testing.T, nw int) *alloc.Instance {
	t.Helper()
	in, err := alloc.DefaultInstance(nw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func spreadOnes(t *testing.T, in *alloc.Instance) alloc.Genome {
	t.Helper()
	sets := make([][]int, in.Edges())
	for e := range sets {
		sets[e] = []int{e % in.Channels()}
	}
	g, err := alloc.FromSets(sets, in.Channels())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimMatchesAnalyticOnIntegerSchedule(t *testing.T) {
	// All-ones allocation: every duration is integral, so the
	// simulator must agree with the analytic model exactly.
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanCycles != 36000 {
		t.Errorf("sim makespan = %d, want 36000", res.MakespanCycles)
	}
	ev := in.Evaluate(g)
	if float64(res.MakespanCycles) != ev.MakespanCycles {
		t.Errorf("sim %d vs analytic %v", res.MakespanCycles, ev.MakespanCycles)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations on a valid genome: %v", res.Violations)
	}
}

func TestSimBracketsAnalyticOnFractionalSchedule(t *testing.T) {
	// Counts like [1,4,2,3,2,3] yield fractional analytic durations;
	// the integer simulator may only round up, by less than one cycle
	// per communication in the chain.
	in := mustInstance(t, 12)
	g, err := alloc.Assign(in, []int{1, 4, 2, 3, 2, 3}, alloc.LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	simT := float64(res.MakespanCycles)
	if simT < ev.MakespanCycles-1e-9 {
		t.Errorf("simulated %v beats analytic %v: impossible", simT, ev.MakespanCycles)
	}
	if simT > ev.MakespanCycles+float64(in.Edges()) {
		t.Errorf("simulated %v exceeds analytic %v by more than ceiling slack", simT, ev.MakespanCycles)
	}
}

func TestSimRandomValidAllocationsAgree(t *testing.T) {
	// Property over random feasible allocations: the simulator
	// brackets the analytic makespan and reports no violations.
	in := mustInstance(t, 8)
	rng := rand.New(rand.NewSource(5))
	trials := 0
	for trials < 25 {
		counts := make([]int, in.Edges())
		for i := range counts {
			counts[i] = 1 + rng.Intn(3)
		}
		g, err := alloc.Assign(in, counts, alloc.RandomFit, rng)
		if err != nil {
			continue // infeasible counts: skip
		}
		trials++
		ev := in.Evaluate(g)
		if !ev.Valid {
			t.Fatalf("heuristic allocation invalid: %s", ev.Reason())
		}
		res, err := Run(in, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations for valid genome %v: %v", counts, res.Violations)
		}
		simT := float64(res.MakespanCycles)
		if simT < ev.MakespanCycles-1e-9 || simT > ev.MakespanCycles+float64(in.Edges()) {
			t.Fatalf("sim %v vs analytic %v out of bracket", simT, ev.MakespanCycles)
		}
	}
}

func TestSimRejectsInvalidGenome(t *testing.T) {
	in := mustInstance(t, 8)
	if _, err := Run(in, in.NewZeroGenome(), Options{}); err == nil {
		t.Error("invalid genome must be rejected in checked mode")
	}
}

func TestSimUncheckedDetectsConflict(t *testing.T) {
	// c2 and c4 overlap in time and share segments; putting both on
	// channel 2 must produce a detected double-booking in unchecked
	// mode.
	in := mustInstance(t, 8)
	sets := [][]int{{0}, {1}, {2}, {3}, {2}, {5}}
	g, err := alloc.FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, g, Options{Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("conflicting genome must trip the occupancy checker")
	}
	if !strings.Contains(res.Violations[0], "channel 2") {
		t.Errorf("violation = %q", res.Violations[0])
	}
}

func TestSimHopLatencyMonotone(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	base, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(in, g, Options{LatencyPerHopCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MakespanCycles <= base.MakespanCycles {
		t.Errorf("hop latency must slow the run: %d vs %d", slow.MakespanCycles, base.MakespanCycles)
	}
	if _, err := Run(in, g, Options{LatencyPerHopCycles: -1}); err == nil {
		t.Error("negative latency must be rejected")
	}
}

func TestSimEnergyTracksAnalytic(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	ev := in.Evaluate(g)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var analyticFJ float64
	for _, e := range ev.CommEnergyFJ {
		analyticFJ += e
	}
	if math.Abs(res.LaserFJ-analyticFJ) > 1e-6*analyticFJ {
		t.Errorf("sim energy %v vs analytic %v (integer windows are exact here)", res.LaserFJ, analyticFJ)
	}
}

func TestSimOccupancyTraces(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// c1 (edge 1) runs on channel 1 over path 1->5 (segments 1..4)
	// during [5000,13000).
	for _, seg := range in.Path(1).Resources() {
		ivs := res.SegmentChannel[[2]int{seg, 1}]
		if len(ivs) != 1 {
			t.Fatalf("segment %d channel 1 intervals = %v", seg, ivs)
		}
		if ivs[0].Start != 5000 || ivs[0].End != 13000 || ivs[0].Comm != 1 {
			t.Errorf("segment %d interval = %+v", seg, ivs[0])
		}
	}
	// Busy accounting: c1 holds 4 segments for 8000 cycles each.
	if got := res.ChannelBusyCycles(1); got != 4*8000 {
		t.Errorf("channel 1 busy = %d, want 32000", got)
	}
	if got := res.SegmentBusyCycles(1); got <= 0 {
		t.Errorf("segment 1 busy = %d, want positive", got)
	}
}

func TestSimZeroVolumeEdge(t *testing.T) {
	in := mustInstance(t, 8)
	app := in.App.Clone()
	app.Edges[0].VolumeBits = 0
	in2, err := alloc.NewInstance(in.Fabric(), app, in.Map, 1, in.Energy)
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int{{}, {1}, {2}, {3}, {4}, {5}}
	g, err := alloc.FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in2, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommEnd[0] != res.CommStart[0] {
		t.Error("zero-volume transfer must be instantaneous")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

// sharedInstance builds a >16-task chain mapped with shared cores
// onto the paper's 16-core ring.
func sharedInstance(t *testing.T, nTasks int, cfg graph.GenConfig, seed int64) *alloc.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	app, err := graph.Chain(rng, nTasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.SharedRandomMapping(rng, app, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.New(ring.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	in, err := alloc.NewInstance(r, app, m, 1, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSimSharedCoreMatchesAnalyticOnIntegerSchedule(t *testing.T) {
	// Constant integer execution times and volumes with one wavelength
	// per communication: every duration is integral, so the simulator
	// and the core-serialized analytic model must agree exactly —
	// including the per-core dispatch order.
	cfg := graph.GenConfig{ExecMin: 4000, ExecMax: 4000, VolMin: 4000, VolMax: 4000}
	in := sharedInstance(t, 24, cfg, 3)
	g, err := alloc.Assign(in, alloc.UniformCounts(in.Edges(), 1), alloc.LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		t.Fatalf("allocation invalid: %s", ev.Reason())
	}
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.MakespanCycles) != ev.MakespanCycles {
		t.Errorf("sim %d vs analytic %v on an integer schedule", res.MakespanCycles, ev.MakespanCycles)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations on a valid shared-core genome: %v", res.Violations)
	}
	for tsk := range res.TaskStart {
		if float64(res.TaskStart[tsk]) != ev.Schedule.TaskStart[tsk] {
			t.Errorf("task %d starts at %d, analytic %v", tsk, res.TaskStart[tsk], ev.Schedule.TaskStart[tsk])
		}
	}
}

func TestSimSharedCoreBracketsAnalytic(t *testing.T) {
	// Property over random fractional shared-core workloads: the
	// integer simulator reports no violations and lands within one
	// ceiling per task and communication — plus one task execution,
	// since an integer-rounding tie may reorder same-core dispatch
	// against the fractional model — of the core-serialized analytic
	// makespan.
	for seed := int64(1); seed <= 10; seed++ {
		in := sharedInstance(t, 20+int(seed), graph.DefaultGenConfig(), seed)
		rng := rand.New(rand.NewSource(seed * 7))
		counts := make([]int, in.Edges())
		for i := range counts {
			counts[i] = 1 + rng.Intn(3)
		}
		g, err := alloc.Assign(in, counts, alloc.LeastUsed, nil)
		if err != nil {
			continue // infeasible budget on this placement: skip
		}
		ev := in.Evaluate(g)
		if !ev.Valid {
			t.Fatalf("seed %d: heuristic allocation invalid: %s", seed, ev.Reason())
		}
		res, err := Run(in, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
		var maxExec float64
		for _, tsk := range in.App.Tasks {
			if tsk.ExecCycles > maxExec {
				maxExec = tsk.ExecCycles
			}
		}
		simT := float64(res.MakespanCycles)
		slack := float64(in.App.NumTasks()+in.Edges()+1) + maxExec
		if simT < ev.MakespanCycles-maxExec-1e-9 || simT > ev.MakespanCycles+slack {
			t.Fatalf("seed %d: sim %v vs analytic %v out of bracket (slack %v)",
				seed, simT, ev.MakespanCycles, slack)
		}
	}
}

func TestSimCoreOccupancyTraces(t *testing.T) {
	cfg := graph.GenConfig{ExecMin: 1000, ExecMax: 1000, VolMin: 2000, VolMax: 2000}
	in := sharedInstance(t, 32, cfg, 9)
	g, err := alloc.Assign(in, alloc.UniformCounts(in.Edges(), 1), alloc.FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every task appears in exactly one core interval, on its mapped
	// core, and per-core busy cycles add up to its tasks' work.
	seen := make(map[int]bool)
	for core, ivs := range res.CoreBusy {
		var want int64
		for tsk, c := range in.Map {
			if c == core {
				want += int64(in.App.Tasks[tsk].ExecCycles)
			}
		}
		if got := res.CoreBusyCycles(core); got != want {
			t.Errorf("core %d busy %d cycles, tasks need %d", core, got, want)
		}
		for _, iv := range ivs {
			if in.Map[iv.Comm] != core {
				t.Errorf("task %d recorded on core %d, mapped to %d", iv.Comm, core, in.Map[iv.Comm])
			}
			if seen[iv.Comm] {
				t.Errorf("task %d booked twice", iv.Comm)
			}
			seen[iv.Comm] = true
		}
	}
	if len(seen) != in.App.NumTasks() {
		t.Errorf("%d of %d tasks booked a core", len(seen), in.App.NumTasks())
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestSimUncheckedInvalidLaserIsNaN(t *testing.T) {
	// An analytically invalid genome carries no energy windows: the
	// unchecked run must say NaN, not a silent 0.
	in := mustInstance(t, 8)
	res, err := Run(in, in.NewZeroGenome(), Options{Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.LaserFJ) {
		t.Errorf("LaserFJ = %v for an invalid unchecked run, want NaN", res.LaserFJ)
	}
}

func TestGanttRendering(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chart := Gantt(in, res, 60)
	for _, name := range []string{"T0", "T5", "c0", "c5"} {
		if !strings.Contains(chart, name) {
			t.Errorf("gantt missing row %s:\n%s", name, chart)
		}
	}
	if !strings.Contains(chart, "#") || !strings.Contains(chart, "=") {
		t.Error("gantt must draw execution and transfer bars")
	}
	// Tiny width is clamped, not panicking.
	_ = Gantt(in, res, 1)
}

func TestCeil64(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{8000, 8000},
		{2666.6666666, 2667},
		{0.1, 1},
		{0, 0},
		// Guard against float noise pushing integers up.
		{3999.9999999999995, 4000},
	}
	for _, c := range cases {
		if got := ceil64(c.in); got != c.want {
			t.Errorf("ceil64(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
