package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alloc"
)

func mustInstance(t *testing.T, nw int) *alloc.Instance {
	t.Helper()
	in, err := alloc.DefaultInstance(nw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func spreadOnes(t *testing.T, in *alloc.Instance) alloc.Genome {
	t.Helper()
	sets := make([][]int, in.Edges())
	for e := range sets {
		sets[e] = []int{e % in.Channels()}
	}
	g, err := alloc.FromSets(sets, in.Channels())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimMatchesAnalyticOnIntegerSchedule(t *testing.T) {
	// All-ones allocation: every duration is integral, so the
	// simulator must agree with the analytic model exactly.
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanCycles != 36000 {
		t.Errorf("sim makespan = %d, want 36000", res.MakespanCycles)
	}
	ev := in.Evaluate(g)
	if float64(res.MakespanCycles) != ev.MakespanCycles {
		t.Errorf("sim %d vs analytic %v", res.MakespanCycles, ev.MakespanCycles)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations on a valid genome: %v", res.Violations)
	}
}

func TestSimBracketsAnalyticOnFractionalSchedule(t *testing.T) {
	// Counts like [1,4,2,3,2,3] yield fractional analytic durations;
	// the integer simulator may only round up, by less than one cycle
	// per communication in the chain.
	in := mustInstance(t, 12)
	g, err := alloc.Assign(in, []int{1, 4, 2, 3, 2, 3}, alloc.LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := in.Evaluate(g)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	simT := float64(res.MakespanCycles)
	if simT < ev.MakespanCycles-1e-9 {
		t.Errorf("simulated %v beats analytic %v: impossible", simT, ev.MakespanCycles)
	}
	if simT > ev.MakespanCycles+float64(in.Edges()) {
		t.Errorf("simulated %v exceeds analytic %v by more than ceiling slack", simT, ev.MakespanCycles)
	}
}

func TestSimRandomValidAllocationsAgree(t *testing.T) {
	// Property over random feasible allocations: the simulator
	// brackets the analytic makespan and reports no violations.
	in := mustInstance(t, 8)
	rng := rand.New(rand.NewSource(5))
	trials := 0
	for trials < 25 {
		counts := make([]int, in.Edges())
		for i := range counts {
			counts[i] = 1 + rng.Intn(3)
		}
		g, err := alloc.Assign(in, counts, alloc.RandomFit, rng)
		if err != nil {
			continue // infeasible counts: skip
		}
		trials++
		ev := in.Evaluate(g)
		if !ev.Valid {
			t.Fatalf("heuristic allocation invalid: %s", ev.Reason)
		}
		res, err := Run(in, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations for valid genome %v: %v", counts, res.Violations)
		}
		simT := float64(res.MakespanCycles)
		if simT < ev.MakespanCycles-1e-9 || simT > ev.MakespanCycles+float64(in.Edges()) {
			t.Fatalf("sim %v vs analytic %v out of bracket", simT, ev.MakespanCycles)
		}
	}
}

func TestSimRejectsInvalidGenome(t *testing.T) {
	in := mustInstance(t, 8)
	if _, err := Run(in, in.NewZeroGenome(), Options{}); err == nil {
		t.Error("invalid genome must be rejected in checked mode")
	}
}

func TestSimUncheckedDetectsConflict(t *testing.T) {
	// c2 and c4 overlap in time and share segments; putting both on
	// channel 2 must produce a detected double-booking in unchecked
	// mode.
	in := mustInstance(t, 8)
	sets := [][]int{{0}, {1}, {2}, {3}, {2}, {5}}
	g, err := alloc.FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, g, Options{Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("conflicting genome must trip the occupancy checker")
	}
	if !strings.Contains(res.Violations[0], "channel 2") {
		t.Errorf("violation = %q", res.Violations[0])
	}
}

func TestSimHopLatencyMonotone(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	base, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(in, g, Options{LatencyPerHopCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MakespanCycles <= base.MakespanCycles {
		t.Errorf("hop latency must slow the run: %d vs %d", slow.MakespanCycles, base.MakespanCycles)
	}
	if _, err := Run(in, g, Options{LatencyPerHopCycles: -1}); err == nil {
		t.Error("negative latency must be rejected")
	}
}

func TestSimEnergyTracksAnalytic(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	ev := in.Evaluate(g)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var analyticFJ float64
	for _, e := range ev.CommEnergyFJ {
		analyticFJ += e
	}
	if math.Abs(res.LaserFJ-analyticFJ) > 1e-6*analyticFJ {
		t.Errorf("sim energy %v vs analytic %v (integer windows are exact here)", res.LaserFJ, analyticFJ)
	}
}

func TestSimOccupancyTraces(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// c1 (edge 1) runs on channel 1 over path 1->5 (segments 1..4)
	// during [5000,13000).
	for _, seg := range in.Path(1).Segments() {
		ivs := res.SegmentChannel[[2]int{seg, 1}]
		if len(ivs) != 1 {
			t.Fatalf("segment %d channel 1 intervals = %v", seg, ivs)
		}
		if ivs[0].Start != 5000 || ivs[0].End != 13000 || ivs[0].Comm != 1 {
			t.Errorf("segment %d interval = %+v", seg, ivs[0])
		}
	}
	// Busy accounting: c1 holds 4 segments for 8000 cycles each.
	if got := res.ChannelBusyCycles(1); got != 4*8000 {
		t.Errorf("channel 1 busy = %d, want 32000", got)
	}
	if got := res.SegmentBusyCycles(1); got <= 0 {
		t.Errorf("segment 1 busy = %d, want positive", got)
	}
}

func TestSimZeroVolumeEdge(t *testing.T) {
	in := mustInstance(t, 8)
	app := in.App.Clone()
	app.Edges[0].VolumeBits = 0
	in2, err := alloc.NewInstance(in.Ring, app, in.Map, 1, in.Energy)
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int{{}, {1}, {2}, {3}, {4}, {5}}
	g, err := alloc.FromSets(sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in2, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommEnd[0] != res.CommStart[0] {
		t.Error("zero-volume transfer must be instantaneous")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestGanttRendering(t *testing.T) {
	in := mustInstance(t, 8)
	g := spreadOnes(t, in)
	res, err := Run(in, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chart := Gantt(in, res, 60)
	for _, name := range []string{"T0", "T5", "c0", "c5"} {
		if !strings.Contains(chart, name) {
			t.Errorf("gantt missing row %s:\n%s", name, chart)
		}
	}
	if !strings.Contains(chart, "#") || !strings.Contains(chart, "=") {
		t.Error("gantt must draw execution and transfer bars")
	}
	// Tiny width is clamped, not panicking.
	_ = Gantt(in, res, 1)
}

func TestCeil64(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{8000, 8000},
		{2666.6666666, 2667},
		{0.1, 1},
		{0, 0},
		// Guard against float noise pushing integers up.
		{3999.9999999999995, 4000},
	}
	for _, c := range cases {
		if got := ceil64(c.in); got != c.want {
			t.Errorf("ceil64(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
