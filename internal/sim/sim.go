// Package sim is a cycle-resolution, event-driven simulator of the
// mapped ring WDM ONoC. It executes the task graph on the cores and
// serializes every communication bit-by-bit over its reserved
// wavelengths, reserving waveguide segments per (segment, channel),
// receiver micro-rings per (ONI, channel) and — since shared-core
// mappings became first-class — core occupancy per core as it goes.
//
// The simulator exists because no off-the-shelf optical-NoC simulation
// ecosystem exists in Go (see DESIGN.md): it independently
// cross-validates the paper's analytic time model (internal/sched) —
// integer-cycle makespans must bracket the analytic ones within
// ceiling error, including the core-serialized model for shared-core
// mappings — and it double-checks the chromosome validity rule by
// construction: any double-booking of a (segment, channel) during
// overlapping cycles, or of a core by two concurrent tasks, is
// reported as a violation.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/alloc"
)

// Options tune a simulation run.
type Options struct {
	// LatencyPerHopCycles adds a fixed pipeline latency per waveguide
	// hop to every communication (0 in the paper's model: light
	// transit is negligible against k-cc transfers).
	LatencyPerHopCycles int64
	// Unchecked skips the analytic validity gate, letting invalid
	// allocations run so the occupancy checker can demonstrate the
	// physical conflict. Checked runs refuse invalid genomes.
	Unchecked bool
}

// Interval is a half-open busy interval in integer cycles.
type Interval struct {
	Start, End int64
	// Comm is the index of the holder: the communication (edge index)
	// for SegmentChannel entries, the task index for CoreBusy entries.
	Comm int
}

// Result carries the simulated timeline and resource traces.
type Result struct {
	// MakespanCycles is the simulated global execution time.
	MakespanCycles int64
	// TaskStart and TaskEnd are per-task integer times.
	TaskStart, TaskEnd []int64
	// CommStart and CommEnd are per-edge integer windows (zero-volume
	// edges and same-core self edges collapse to a point).
	CommStart, CommEnd []int64
	// SegmentChannel maps (segment, channel) to its busy intervals,
	// sorted by start. Keys only exist for used pairs.
	SegmentChannel map[[2]int][]Interval
	// CoreBusy maps a core to its execution intervals (Interval.Comm
	// holds the task index), sorted by start. Keys only exist for
	// cores that ran tasks. The simulator serializes same-core tasks
	// itself, so overlapping intervals here mean the dispatcher is
	// broken — they are reported as violations, mirroring the
	// (segment, channel) cross-check.
	CoreBusy map[int][]Interval
	// Violations lists every double-booking detected — (segment,
	// channel) or core — empty for any genome the analytic validity
	// rule accepts.
	Violations []string
	// LaserFJ is the integrated laser energy: the analytic per-window
	// energies re-integrated over the simulated integer windows. For
	// Unchecked runs of analytically invalid genomes it is NaN — the
	// analytic model produced no energy windows to integrate.
	LaserFJ float64
}

// event is a scheduled simulator wake-up.
type event struct {
	time int64
	kind int // 0 = task completion, 1 = communication completion
	id   int
	seq  int // tie-breaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run simulates the allocation g on instance in. Cores are a
// simulated resource: a core executes one task at a time, picking
// among its data-ready tasks the one with the earliest (ready time,
// task index) — the same deterministic policy as the analytic
// core-serialized model, so the two stay bracketed within ceiling
// error.
func Run(in *alloc.Instance, g alloc.Genome, opt Options) (*Result, error) {
	ev := in.Evaluate(g)
	if !ev.Valid && !opt.Unchecked {
		return nil, fmt.Errorf("sim: allocation invalid: %s", ev.Reason())
	}
	if opt.LatencyPerHopCycles < 0 {
		return nil, fmt.Errorf("sim: negative hop latency")
	}
	app := in.App
	counts := g.Counts()
	for e := range app.Edges {
		if app.Edges[e].VolumeBits > 0 && counts[e] == 0 && !in.SelfEdge(e) && !opt.Unchecked {
			return nil, fmt.Errorf("sim: communication %s has no wavelengths", app.Edges[e].Name)
		}
	}

	res := &Result{
		TaskStart:      make([]int64, app.NumTasks()),
		TaskEnd:        make([]int64, app.NumTasks()),
		CommStart:      make([]int64, app.NumEdges()),
		CommEnd:        make([]int64, app.NumEdges()),
		SegmentChannel: make(map[[2]int][]Interval),
		CoreBusy:       make(map[int][]Interval),
	}
	for i := range res.TaskStart {
		res.TaskStart[i] = -1
		res.TaskEnd[i] = -1
	}

	preds := app.Preds()
	succs := app.Succs()
	pending := make([]int, app.NumTasks()) // unreceived inputs per task
	for t := range pending {
		pending[t] = len(preds[t])
	}

	nCores := in.Fabric().Size()
	coreFree := make([]int64, nCores) // next instant the core is idle
	waiting := make([][]int, nCores)  // data-ready tasks queued per core
	readyAt := make([]int64, app.NumTasks())

	var q eventQueue
	seq := 0
	push := func(time int64, kind, id int) {
		heap.Push(&q, event{time: time, kind: kind, id: id, seq: seq})
		seq++
	}
	// startTask books the core and schedules the completion. The
	// CoreBusy overlap scan is the occupancy cross-check: the
	// dispatcher below serializes same-core tasks, so a hit means the
	// simulator itself is broken.
	startTask := func(t int, now int64) {
		res.TaskStart[t] = now
		end := now + ceil64(app.Tasks[t].ExecCycles)
		core := in.Map[t]
		for _, iv := range res.CoreBusy[core] {
			if now < iv.End && iv.Start < end {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"core %d double-booked: task %d [%d,%d) vs task %d [%d,%d)",
					core, iv.Comm, iv.Start, iv.End, t, now, end))
			}
		}
		res.CoreBusy[core] = append(res.CoreBusy[core], Interval{Start: now, End: end, Comm: t})
		coreFree[core] = end
		push(end, 0, t)
	}
	// dispatch starts the waiting task with the earliest (ready, index)
	// on core if the core is idle at now.
	dispatch := func(core int, now int64) {
		if coreFree[core] > now || len(waiting[core]) == 0 {
			return
		}
		best, bestPos := -1, -1
		for pos, t := range waiting[core] {
			if best == -1 || readyAt[t] < readyAt[best] ||
				(readyAt[t] == readyAt[best] && t < best) {
				best, bestPos = t, pos
			}
		}
		waiting[core] = append(waiting[core][:bestPos], waiting[core][bestPos+1:]...)
		startTask(best, now)
	}
	for t := range pending {
		if pending[t] == 0 {
			readyAt[t] = 0
			waiting[in.Map[t]] = append(waiting[in.Map[t]], t)
		}
	}
	for core := 0; core < nCores; core++ {
		dispatch(core, 0)
	}

	for q.Len() > 0 {
		// Drain every event at this timestamp before dispatching, so
		// a core choosing its next task sees all tasks that became
		// ready at this instant — matching the analytic model's
		// global (start, ready, index) commitment order.
		now := q[0].time
		for q.Len() > 0 && q[0].time == now {
			e := heap.Pop(&q).(event)
			switch e.kind {
			case 0: // task finished: launch its outgoing communications
				t := e.id
				res.TaskEnd[t] = e.time
				if e.time > res.MakespanCycles {
					res.MakespanCycles = e.time
				}
				for _, ei := range succs[t] {
					// Self edges have zero-hop paths, so they pick up
					// no hop latency either.
					dur := commDuration(in, counts, ei)
					dur += opt.LatencyPerHopCycles * int64(in.Path(ei).Hops())
					res.CommStart[ei] = e.time
					res.CommEnd[ei] = e.time + dur
					if dur > 0 {
						reserve(in, g, res, ei, e.time, e.time+dur)
					}
					push(e.time+dur, 1, ei)
				}
			case 1: // communication delivered: maybe queue its consumer
				ei := e.id
				dst := app.Edges[ei].Dst
				pending[dst]--
				if pending[dst] == 0 {
					readyAt[dst] = e.time
					waiting[in.Map[dst]] = append(waiting[in.Map[dst]], dst)
				}
			}
		}
		for core := 0; core < nCores; core++ {
			dispatch(core, now)
		}
	}

	for t := range res.TaskEnd {
		if res.TaskEnd[t] < 0 {
			return nil, fmt.Errorf("sim: task %d never completed (broken dependency graph)", t)
		}
	}
	res.LaserFJ = integrateLaser(in, &ev, counts, res)
	sortIntervals(res)
	return res, nil
}

// commDuration is the integer transfer time of edge ei. Self edges of
// shared-core mappings stay in the core's memory: zero cycles.
func commDuration(in *alloc.Instance, counts []int, ei int) int64 {
	vol := in.App.Edges[ei].VolumeBits
	if vol <= 0 || in.SelfEdge(ei) {
		return 0
	}
	n := counts[ei]
	if n == 0 {
		// Only reachable in unchecked mode; model an unserviced
		// transfer as a single-wavelength one so the run completes.
		n = 1
	}
	bitsPerCycle := float64(n) * in.BitsPerCycle
	return ceil64(vol / bitsPerCycle)
}

// reserve books every (resource, channel) of communication ei for
// [start, end), recording violations on overlap. The violation wording
// names the backend's shared-medium unit (ring: "segment", crossbar:
// "hop") so diagnostics read in the fabric's own vocabulary.
func reserve(in *alloc.Instance, g alloc.Genome, res *Result, ei int, start, end int64) {
	set := g.ChannelSet(ei)
	resource := in.Fabric().ResourceName()
	for _, seg := range in.Path(ei).Resources() {
		for _, ch := range set {
			key := [2]int{seg, ch}
			for _, iv := range res.SegmentChannel[key] {
				if start < iv.End && iv.Start < end {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"%s %d channel %d double-booked: %s [%d,%d) vs %s [%d,%d)",
						resource, seg, ch, in.App.Edges[iv.Comm].Name, iv.Start, iv.End,
						in.App.Edges[ei].Name, start, end))
				}
			}
			res.SegmentChannel[key] = append(res.SegmentChannel[key], Interval{Start: start, End: end, Comm: ei})
		}
	}
}

// integrateLaser re-integrates the analytic per-wavelength laser power
// over the simulated integer windows, reusing the evaluation Run
// already computed. An invalid evaluation (only reachable in unchecked
// mode) carries no energy windows: the result is NaN, not a silent 0.
func integrateLaser(in *alloc.Instance, ev *alloc.Eval, counts []int, res *Result) float64 {
	if !ev.Valid {
		return math.NaN()
	}
	var fj float64
	for e := 0; e < in.Edges(); e++ {
		if in.App.Edges[e].VolumeBits <= 0 || counts[e] == 0 || in.SelfEdge(e) {
			continue
		}
		dur := float64(res.CommEnd[e] - res.CommStart[e])
		if ev.CommEnergyFJ[e] > 0 && ev.Schedule.Comm[e].Duration() > 0 {
			// Same powers, integer instead of fractional duration.
			fj += ev.CommEnergyFJ[e] * dur / ev.Schedule.Comm[e].Duration()
		}
	}
	return fj
}

func sortIntervals(res *Result) {
	for k := range res.SegmentChannel {
		ivs := res.SegmentChannel[k]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	}
	for k := range res.CoreBusy {
		ivs := res.CoreBusy[k]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	}
}

func ceil64(x float64) int64 { return int64(math.Ceil(x - 1e-9)) }

// SegmentBusyCycles sums the busy cycles of one waveguide segment
// across all channels (overlaps across channels accumulate: WDM
// parallelism counts per wavelength).
func (r *Result) SegmentBusyCycles(seg int) int64 {
	var busy int64
	for k, ivs := range r.SegmentChannel {
		if k[0] != seg {
			continue
		}
		for _, iv := range ivs {
			busy += iv.End - iv.Start
		}
	}
	return busy
}

// ChannelBusyCycles sums the busy cycles of one wavelength channel
// across all segments.
func (r *Result) ChannelBusyCycles(ch int) int64 {
	var busy int64
	for k, ivs := range r.SegmentChannel {
		if k[1] != ch {
			continue
		}
		for _, iv := range ivs {
			busy += iv.End - iv.Start
		}
	}
	return busy
}

// CoreBusyCycles sums the execution cycles one core spends running
// tasks.
func (r *Result) CoreBusyCycles(core int) int64 {
	var busy int64
	for _, iv := range r.CoreBusy[core] {
		busy += iv.End - iv.Start
	}
	return busy
}
