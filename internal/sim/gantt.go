package sim

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
)

// Gantt renders the simulated timeline as a fixed-width text chart:
// one row per task (execution on its core) and one per communication
// (occupancy of its wavelengths), the format cmd/onocsim prints.
func Gantt(in *alloc.Instance, res *Result, width int) string {
	if width < 20 {
		width = 20
	}
	span := res.MakespanCycles
	if span == 0 {
		span = 1
	}
	scale := func(t int64) int {
		c := int(float64(t) / float64(span) * float64(width))
		if c > width {
			c = width
		}
		return c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles 0..%d, one column = %.1f cycles\n", res.MakespanCycles,
		float64(span)/float64(width))
	for t := range in.App.Tasks {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for i := scale(res.TaskStart[t]); i < scale(res.TaskEnd[t]) && i < width; i++ {
			row[i] = '#'
		}
		fmt.Fprintf(&sb, "%-6s|%s| core %2d [%d,%d)\n", in.App.Tasks[t].Name, row,
			in.Map[t], res.TaskStart[t], res.TaskEnd[t])
	}
	for e := range in.App.Edges {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for i := scale(res.CommStart[e]); i < scale(res.CommEnd[e]) && i < width; i++ {
			row[i] = '='
		}
		fmt.Fprintf(&sb, "%-6s|%s| %2d->%-2d  [%d,%d)\n", in.App.Edges[e].Name, row,
			in.SrcCore(e), in.DstCore(e), res.CommStart[e], res.CommEnd[e])
	}
	return sb.String()
}
