// Package fabric defines the optical-backend contract of the
// evaluation stack: the minimal interface a photonic interconnect must
// implement for the wavelength-allocation machinery (internal/alloc,
// internal/core, internal/expt) to search it. The paper's serpentine
// ring (internal/ring) is the reference implementation; the
// multi-layer deposited-silicon crossbar (internal/crossbar, after Li
// et al., arXiv 1512.07493 / 1512.07492) is the second. Topologies
// become backend instances instead of evaluator forks.
//
// The contract splits cleanly into four concerns:
//
//   - route construction: PathBetween/SelfPath produce immutable Path
//     values whose resource IDs drive the conflict structure;
//   - per-hop optics: TransitLossDB/SignalArrivalDB/ArrivalAlongDB/
//     DetectorArrivalDB walk the loss and crosstalk budget of a
//     wavelength against the BankState supplied by the allocation
//     layer;
//   - conflict structure: Path.Overlaps (resource intersection within
//     a lane) feeds the CSR neighbor lists and MaskWords sizes the
//     per-edge wavelength bitmasks;
//   - accounting: Area summarizes the photonic footprint.
//
// See DESIGN.md "Optical fabric contract" for the invariants a third
// backend must keep for the delta kernels to stay valid.
package fabric

import "repro/internal/phys"

// Fabric is one optical interconnect backend. Implementations are
// immutable after construction and safe for concurrent read-only use;
// every method must be deterministic (the evaluation kernels rely on
// bit-identical replay) and allocation-free on the hot paths
// (TransitLossDB, SignalArrivalDB, ArrivalAlongDB).
type Fabric interface {
	// Name identifies the backend ("ring", "crossbar") for reports,
	// campaign artifacts and checkpoint identities.
	Name() string
	// ResourceName is the human word for one unit of the shared
	// optical medium ("segment" for the ring's waveguide hops), used
	// by diagnostics that name a double-booked resource.
	ResourceName() string
	// Size is the number of optical network interfaces (== cores).
	Size() int
	// Channels is NW, the number of wavelengths of the comb.
	Channels() int
	// Grid is the WDM wavelength comb.
	Grid() phys.Grid
	// Params are the device power parameters.
	Params() phys.Params
	// PathBetween returns the backend's route from ONI src to ONI dst
	// (src != dst). The same (src, dst) must always yield the same
	// path.
	PathBetween(src, dst int) (Path, error)
	// TransitLossDB is the loss channel ch accumulates travelling the
	// whole path p up to (but not into) the receiver bank of p.Dst,
	// under the given micro-ring states.
	TransitLossDB(p Path, ch int, bank BankState) phys.DB
	// SignalArrivalDB is the power change with which channel ch,
	// travelling its own path, arrives at its own detector at p.Dst:
	// transit plus the partial receiver-bank walk and the final drop.
	SignalArrivalDB(p Path, ch int, bank BankState) phys.DB
	// ArrivalAlongDB is the power change with which channel ch,
	// travelling path p, arrives at the photodetector behind the
	// micro-ring tuned to detCh at ONI det. det is either p.Dst or an
	// ONI the path crosses; an ONI the signal never reaches is an
	// error (the caller's crosstalk scan treats it as "no coupling").
	ArrivalAlongDB(p Path, det, ch, detCh int, bank BankState) (phys.DB, error)
	// DetectorArrivalDB composes PathBetween(src, det) with
	// ArrivalAlongDB.
	DetectorArrivalDB(src, det, ch, detCh int, bank BankState) (phys.DB, error)
	// Area evaluates the footprint model on this fabric.
	Area(m AreaModel) Area
}

// BankWalkDB accumulates the through-losses of channel ch crossing the
// MRs [0, upto) of the receiver bank at ONI oni. MRs are assumed to be
// ordered by grid channel along the waveguide, so a signal headed for
// the detector of channel detCh only crosses the rings before it; pass
// upto = Channels() for a full transit. Both backends share this walk
// so the MR-state semantics (ON drops the resonant channel, OFF passes
// with Lp0) are identical everywhere.
func BankWalkDB(par phys.Params, oni, ch, upto int, bank BankState) phys.DB {
	var loss phys.DB
	for idx := 0; idx < upto; idx++ {
		state := phys.MRState(bank.On(oni, idx))
		loss += phys.ThroughLossDB(par, state, idx == ch)
	}
	return loss
}
