package fabric

import "fmt"

// BankState answers whether the micro-ring tuned to grid channel ch in
// the receiver bank of ONI oni is in the ON (dropping) state during
// the time window under analysis. The allocation/schedule layer
// implements this per communication window; the fabric layer only
// walks the optics.
type BankState interface {
	On(oni, ch int) bool
}

// BankStateFunc adapts a function to the BankState interface.
type BankStateFunc func(oni, ch int) bool

// On implements BankState.
func (f BankStateFunc) On(oni, ch int) bool { return f(oni, ch) }

// AllOff is the quiescent network: every micro-ring detuned.
var AllOff BankState = BankStateFunc(func(int, int) bool { return false })

// Bank is a concrete mutable BankState, convenient for tests and for
// the simulator's time-evolving receiver state. Internally it packs
// each ONI's micro-ring states into 64-bit words, so the evaluation
// kernel can install a communication's whole wavelength set with one
// word-wise OR (OrRow) instead of per-channel Set calls.
type Bank struct {
	channels int
	words    int // 64-bit words per ONI row: MaskWords(channels)
	on       []uint64
}

// MaskWords returns the number of 64-bit words of a wavelength bitmask
// covering channels comb channels — the row stride shared by Bank and
// the allocation layer's per-communication masks.
func MaskWords(channels int) int { return (channels + 63) / 64 }

// NewBank returns an all-OFF bank matrix for onis x channels rings.
func NewBank(onis, channels int) *Bank {
	w := MaskWords(channels)
	return &Bank{channels: channels, words: w, on: make([]uint64, onis*w)}
}

// Set switches the MR for channel ch at ONI oni.
func (b *Bank) Set(oni, ch int, state bool) {
	if uint(ch) >= uint(b.channels) {
		panic(fmt.Sprintf("fabric: bank channel %d outside [0,%d)", ch, b.channels))
	}
	bit := uint64(1) << (uint(ch) & 63)
	i := oni*b.words + ch>>6
	if state {
		b.on[i] |= bit
	} else {
		b.on[i] &^= bit
	}
}

// OrRow switches ON every micro-ring of ONI oni whose bit is set in
// the wavelength mask (laid out as by MaskWords: bit ch of word ch/64
// means comb channel ch). Bits beyond the comb size must be zero.
func (b *Bank) OrRow(oni int, mask []uint64) {
	row := b.on[oni*b.words : (oni+1)*b.words]
	if len(mask) > len(row) {
		panic(fmt.Sprintf("fabric: %d-word mask for a %d-word bank row", len(mask), len(row)))
	}
	for w := range mask {
		row[w] |= mask[w]
	}
}

// Reset detunes every micro-ring, returning the bank to the all-OFF
// state without reallocating. Evaluation kernels reuse one bank per
// worker this way.
func (b *Bank) Reset() {
	for i := range b.on {
		b.on[i] = 0
	}
}

// On implements BankState.
func (b *Bank) On(oni, ch int) bool {
	if uint(ch) >= uint(b.channels) {
		panic(fmt.Sprintf("fabric: bank channel %d outside [0,%d)", ch, b.channels))
	}
	return b.on[oni*b.words+ch>>6]&(1<<(uint(ch)&63)) != 0
}
