package fabric

import "fmt"

// Path is a directed route through one fabric from a source ONI to a
// destination ONI. Paths are immutable values built by a backend's
// PathBetween (or SelfPath) and consumed by the allocation layer's
// conflict and optics machinery; the backend encodes its topology
// entirely in the ONI sequence, the resource IDs and the lane.
type Path struct {
	Src, Dst int
	// Lane separates physically disjoint copies of the medium:
	// paths on different lanes never share resources, never conflict
	// and never couple crosstalk (the ring backend uses lanes for its
	// counter-propagating waveguides; single-medium backends put
	// everything on lane 0). Resource IDs must not collide across
	// lanes.
	Lane int
	// onis is the visited ONI sequence, source first, destination
	// last.
	onis []int
	// resources holds one shared-medium resource ID per hop, in
	// travel order.
	resources []int
}

// NewPath assembles a path from a backend's route construction. onis
// must start at src and end at dst; resources holds one ID per hop
// (len(onis)-1 of them for a linear route). The slices are retained,
// not copied: backends must not mutate them afterwards.
func NewPath(src, dst, lane int, onis, resources []int) Path {
	return Path{Src: src, Dst: dst, Lane: lane, onis: onis, resources: resources}
}

// SelfPath returns the degenerate zero-hop path of a communication
// whose endpoint cores coincide — the shared-core mapping case where
// producer and consumer run on the same core and the transfer never
// enters the optical layer. It traverses no resource, overlaps nothing
// and crosses no receiver bank. It is backend-independent.
func SelfPath(oni int) Path {
	return Path{Src: oni, Dst: oni, onis: []int{oni}}
}

// Hops returns the number of traversed resources.
func (p Path) Hops() int { return len(p.resources) }

// Resources returns the traversed shared-medium resource IDs in travel
// order. The returned slice is shared; callers must not mutate it.
func (p Path) Resources() []int { return p.resources }

// ONIs returns the visited ONI sequence, source first. The returned
// slice is shared; callers must not mutate it.
func (p Path) ONIs() []int { return p.onis }

// UsesResource reports whether the path traverses resource r.
func (p Path) UsesResource(r int) bool {
	for _, i := range p.resources {
		if i == r {
			return true
		}
	}
	return false
}

// Overlaps reports whether two paths share at least one resource.
// Paths on different lanes never overlap (physically separate media);
// two same-lane paths overlap when their resource runs intersect.
// Overlapping simultaneous transmissions must use disjoint wavelength
// sets (the validity rule) and mutually inject inter-communication
// crosstalk.
func (p Path) Overlaps(q Path) bool {
	if p.Lane != q.Lane {
		return false
	}
	// Paths carry few resources, so the quadratic scan beats a hash
	// set at these sizes and never allocates — this sits on the
	// evaluation kernel's validity path.
	for _, i := range p.resources {
		for _, j := range q.resources {
			if i == j {
				return true
			}
		}
	}
	return false
}

// Interior returns the ONIs strictly between source and destination,
// in travel order. Signals pass the full receiver MR bank of each
// interior ONI.
func (p Path) Interior() []int {
	if len(p.onis) <= 2 {
		return nil
	}
	return p.onis[1 : len(p.onis)-1]
}

// Through reports whether the path's optical signal crosses the
// receiver MR bank of ONI o: true when o is an interior ONI or the
// destination. The source's own bank is not crossed because the ONI
// transmitter injects downstream of its receiver.
func (p Path) Through(o int) bool {
	for _, oni := range p.onis[1:] {
		if oni == o {
			return true
		}
	}
	return false
}

// Prefix returns the sub-path from the source up to ONI det, which
// must lie on the path past the source. Noise analyses use it to walk
// an interferer's light only as far as the victim's receiver.
func (p Path) Prefix(det int) (Path, error) {
	for i, oni := range p.onis {
		if oni != det || i == 0 {
			continue
		}
		return Path{
			Src:       p.Src,
			Dst:       det,
			Lane:      p.Lane,
			onis:      p.onis[:i+1],
			resources: p.resources[:i],
		}, nil
	}
	return Path{}, fmt.Errorf("fabric: ONI %d not downstream on path %d->%d (lane %d)", det, p.Src, p.Dst, p.Lane)
}
