package fabric

// AreaModel holds per-device footprints in square micrometres, shared
// by every backend's area accounting.
type AreaModel struct {
	// MRUM2 is one micro-ring resonator's footprint (a ~10 um ring
	// with its tuning pad).
	MRUM2 float64
	// LaserUM2 is one on-chip VCSEL.
	LaserUM2 float64
	// PhotodetectorUM2 is one germanium photodetector.
	PhotodetectorUM2 float64
	// WaveguideWidthUM is the waveguide trace width, multiplied by
	// the routed length.
	WaveguideWidthUM float64
}

// DefaultAreaModel returns typical silicon-photonics footprints.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		MRUM2:            150,
		LaserUM2:         400,
		PhotodetectorUM2: 100,
		WaveguideWidthUM: 0.5,
	}
}

// Area summarizes an optical layer's footprint.
type Area struct {
	// MRs, Lasers and Photodetectors count devices over the whole
	// fabric.
	MRs, Lasers, Photodetectors int
	// WaveguideCM is the total routed waveguide length.
	WaveguideCM float64
	// TotalMM2 is the summed footprint in square millimetres.
	TotalMM2 float64
}

// Total evaluates the model over already-counted devices: the shared
// footprint arithmetic of every backend's Area method.
func (a *Area) Total(m AreaModel) {
	deviceUM2 := float64(a.MRs)*m.MRUM2 +
		float64(a.Lasers)*m.LaserUM2 +
		float64(a.Photodetectors)*m.PhotodetectorUM2
	waveguideUM2 := a.WaveguideCM * 1e4 * m.WaveguideWidthUM
	a.TotalMM2 = (deviceUM2 + waveguideUM2) / 1e6
}
