package crossbar

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/phys"
)

// smallConfig is the hand-checkable 4-core crossbar used by the
// closed-form oracle tests: every loss term is small enough to verify
// on paper.
func smallConfig(channels int) Config {
	cfg := DefaultConfig(channels)
	cfg.Cores = 4
	return cfg
}

// TestTransitLossOracle pins the crossbar loss model against an
// independent closed-form hand computation for the 4-core, 4-channel,
// 2-layer instance with the default device parameters:
//
//	L(s,d) = (4-s) * 0.2 cm * (-0.274 dB/cm)     propagation
//	       + (3-s) * 4 * (-0.005 dB)             OFF-modulator pass-bys
//	       + floor((3-d)/2) * (-0.04 dB)         in-plane crossings
//	       + 2 * (d mod 2) * (-0.1 dB)           vertical couplers
//
// The worst case is s=0 -> d=1 (longest travel, a crossing AND a
// layer change): -0.2192 - 0.06 - 0.04 - 0.2 = -0.5192 dB.
func TestTransitLossOracle(t *testing.T) {
	x, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	closedForm := func(s, d int) float64 {
		return float64(4-s)*0.2*(-0.274) +
			float64((3-s)*4)*(-0.005) +
			float64((3-d)/2)*(-0.04) +
			float64(2*(d%2))*(-0.1)
	}
	worst := 0.0
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			p, err := x.PathBetween(s, d)
			if err != nil {
				t.Fatal(err)
			}
			got := float64(x.TransitLossDB(p, 0, fabric.AllOff))
			want := closedForm(s, d)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("TransitLossDB(%d->%d) = %.6f dB, closed form %.6f dB", s, d, got, want)
			}
			if got < worst {
				worst = got
			}
		}
	}
	if math.Abs(worst-(-0.5192)) > 1e-12 {
		t.Errorf("worst-case transit loss %.6f dB, hand computation says -0.5192 dB", worst)
	}
}

// TestTransitLossLayerScaling pins the multi-layer advantage: going
// from 1 to 2 layers strictly reduces in-plane crossings for at least
// one destination, and a transit never gets cheaper by removing
// layers when the destination needs a layer change.
func TestTransitLossLayerScaling(t *testing.T) {
	mk := func(layers int) *Crossbar {
		cfg := smallConfig(4)
		cfg.Layers = layers
		x, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	single, double := mk(1), mk(2)
	// Destination 0 on one layer crosses all 3 higher waveguides; on
	// two layers only waveguide 2 shares its layer.
	if got := single.crossings(0); got != 3 {
		t.Errorf("1-layer crossings(0) = %d, want 3", got)
	}
	if got := double.crossings(0); got != 1 {
		t.Errorf("2-layer crossings(0) = %d, want 1", got)
	}
	// On a single layer no path pays coupler loss.
	for d := 0; d < 4; d++ {
		if got := single.layerOf(d); got != 0 {
			t.Errorf("1-layer layerOf(%d) = %d, want 0", d, got)
		}
	}
}

// TestPathStructure pins the MWSR conflict structure: paths overlap
// exactly when they target the same destination, independently of the
// sources.
func TestPathStructure(t *testing.T) {
	x, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	path := func(s, d int) fabric.Path {
		p, err := x.PathBetween(s, d)
		if err != nil {
			t.Fatalf("PathBetween(%d,%d): %v", s, d, err)
		}
		return p
	}
	for s1 := 0; s1 < 4; s1++ {
		for d1 := 0; d1 < 4; d1++ {
			if s1 == d1 {
				continue
			}
			for s2 := 0; s2 < 4; s2++ {
				for d2 := 0; d2 < 4; d2++ {
					if s2 == d2 {
						continue
					}
					got := path(s1, d1).Overlaps(path(s2, d2))
					want := d1 == d2
					if got != want {
						t.Errorf("Overlaps(%d->%d, %d->%d) = %v, want %v", s1, d1, s2, d2, got, want)
					}
				}
			}
		}
	}
	// Path geometry: hops count N - src, the ONI list is {src, dst}
	// (no interior receiver banks).
	p := path(1, 2)
	if p.Hops() != 3 {
		t.Errorf("path 1->2 hops = %d, want 3", p.Hops())
	}
	if len(p.Interior()) != 0 {
		t.Errorf("crossbar path has interior ONIs %v", p.Interior())
	}
	if got := p.ONIs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("path ONIs = %v, want [1 2]", got)
	}
	// Self paths never enter the optical layer.
	self := fabric.SelfPath(2)
	if x.TransitLossDB(self, 0, fabric.AllOff) != 0 {
		t.Error("self path accrues transit loss")
	}
}

// TestSignalArrivalComposition checks that the dynamic receiver-bank
// terms compose on top of the static transit exactly like the ring:
// all-off bank pays the Kp0 off-state walk before the detector ring,
// and turning the detector ring ON swaps the final drop term.
func TestSignalArrivalComposition(t *testing.T) {
	x, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	par := x.Config().Params
	p, err := x.PathBetween(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch := 2
	transit := x.TransitLossDB(p, ch, fabric.AllOff)

	// All-off: walk rings 0..ch-1 in OFF state, then the off-state
	// drop into the detuned detector ring.
	wantOff := transit +
		phys.DB(ch)*par.LossOffMR +
		phys.DropLossDB(par, phys.MROff)
	if got := x.SignalArrivalDB(p, ch, fabric.AllOff); math.Abs(float64(got-wantOff)) > 1e-12 {
		t.Errorf("all-off arrival %.6f, want %.6f", got, wantOff)
	}

	// Detector ring ON: same walk, resonant drop at the end.
	bank := fabric.NewBank(4, 4)
	bank.Set(1, ch, true)
	wantOn := transit +
		phys.DB(ch)*par.LossOffMR +
		phys.DropLossDB(par, phys.MROn)
	if got := x.SignalArrivalDB(p, ch, bank); math.Abs(float64(got-wantOn)) > 1e-12 {
		t.Errorf("detector-on arrival %.6f, want %.6f", got, wantOn)
	}

	// DetectorArrivalDB composes PathBetween + ArrivalAlongDB; the
	// crosstalk leak of a neighbouring channel uses the Lorentzian
	// grid term.
	leak, err := x.DetectorArrivalDB(0, 1, ch, ch+1, fabric.AllOff)
	if err != nil {
		t.Fatal(err)
	}
	wantLeak := transit +
		phys.DB(ch+1)*par.LossOffMR +
		x.Config().Grid.CrosstalkDB(ch+1, ch)
	if math.Abs(float64(leak-wantLeak)) > 1e-12 {
		t.Errorf("crosstalk arrival %.6f, want %.6f", leak, wantLeak)
	}

	// A detector the path never reaches is the "not downstream" error
	// — the crosstalk scans treat it as no coupling.
	if _, err := x.ArrivalAlongDB(p, 3, ch, ch, fabric.AllOff); err == nil {
		t.Error("ArrivalAlongDB to an off-path detector must error")
	}
}

// TestAreaBillOfMaterials pins the area model against the explicit
// device counts of the 4-core, 4-channel instance.
func TestAreaBillOfMaterials(t *testing.T) {
	x, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	a := x.Area(fabric.DefaultAreaModel())
	if a.MRs != 4*3*4+4*4 {
		t.Errorf("MRs = %d, want %d", a.MRs, 4*3*4+4*4)
	}
	if a.Lasers != 16 || a.Photodetectors != 16 {
		t.Errorf("lasers/photodetectors = %d/%d, want 16/16", a.Lasers, a.Photodetectors)
	}
	if want := 16 * 0.2; math.Abs(a.WaveguideCM-want) > 1e-12 {
		t.Errorf("waveguide = %.3f cm, want %.3f", a.WaveguideCM, want)
	}
	if a.TotalMM2 <= 0 {
		t.Error("total area must be positive")
	}
}

// TestConfigValidation exercises every New rejection.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"one core", func(c *Config) { c.Cores = 1 }, "at least 2 cores"},
		{"zero pitch", func(c *Config) { c.TilePitchCM = 0 }, "tile pitch"},
		{"zero layers", func(c *Config) { c.Layers = 0 }, "at least 1 layer"},
		{"positive crossing", func(c *Config) { c.CrossingDB = 0.1 }, "must be <= 0"},
		{"positive coupler", func(c *Config) { c.CouplerDB = 0.1 }, "must be <= 0"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(4)
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(DefaultConfig(4)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	x, _ := New(DefaultConfig(4))
	if _, err := x.PathBetween(0, 0); err == nil {
		t.Error("degenerate path accepted")
	}
	if _, err := x.PathBetween(-1, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if x.Name() != "crossbar" || x.ResourceName() != "hop" {
		t.Errorf("identity = %s/%s", x.Name(), x.ResourceName())
	}
}
