// Package crossbar implements the multi-layer deposited-silicon
// optical crossbar backend after Li et al. ("Multilayer 3D photonics
// on bulk silicon" line of work, arXiv 1512.07493, with the
// worst-case-loss structure of their comparative study 1512.07492).
//
// Topology: a multiple-writer single-reader (MWSR) crossbar. Every
// destination ONI owns one dedicated waveguide that runs past the
// modulator banks of all N sources in index order and terminates in
// the destination's receiver bank; a source transmits to d by
// modulating its comb channels onto waveguide d. Two transmissions
// conflict exactly when they target the same destination (they share
// that destination's waveguide), so same-destination communications
// with overlapping activity windows must use disjoint wavelength sets
// — the same validity rule as the ring, induced purely by the path
// resource structure.
//
// The loss model is the first-order worst-case budget of the
// comparative study, per (src, dst) pair:
//
//   - propagation over the (N - src) tap pitches from the source's
//     modulator bank to the receiver,
//   - the OFF-state through loss of the (N - 1 - src) downstream
//     modulator banks the signal passes (NW micro-rings each),
//   - in-plane waveguide crossings: with the N waveguides deposited
//     round-robin onto Layers silicon layers, waveguide d crosses
//     only the floor((N-1-d)/Layers) same-layer waveguides of higher
//     index — the multi-layer advantage: more layers, fewer
//     crossings,
//   - two vertical coupler traversals per layer step: sources and
//     receivers sit on the device layer, so light on waveguide d
//     (layer d mod Layers) couples up at injection and down at the
//     receiver.
//
// The receiver bank at the destination is walked dynamically against
// the allocation layer's BankState, exactly like the ring (shared
// fabric.BankWalkDB), so intra- and inter-communication crosstalk at
// the victim receiver use identical MR-state semantics.
package crossbar

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/phys"
)

// Config describes a crossbar instance.
type Config struct {
	// Cores is N, the number of ONIs (16 in the default platform).
	Cores int
	// TilePitchCM is the modulator-tap pitch along each waveguide in
	// centimetres; it scales the propagation-loss term.
	TilePitchCM float64
	// Layers is the number of deposited silicon layers the N
	// waveguides are distributed over (round-robin by destination
	// index). 1 recovers a single-layer crossbar with all crossings
	// in-plane.
	Layers int
	// CrossingDB is the insertion loss of one in-plane waveguide
	// crossing (negative dB).
	CrossingDB phys.DB
	// CouplerDB is the insertion loss of one vertical inter-layer
	// coupler traversal (negative dB).
	CouplerDB phys.DB
	// Grid is the WDM wavelength comb.
	Grid phys.Grid
	// Params are the device power parameters, shared with the ring
	// backend.
	Params phys.Params
}

// DefaultConfig returns the default 16-core crossbar with the Table I
// device parameters, an NW-channel comb, two deposited layers and
// representative crossing/coupler losses from the comparative study
// (-0.04 dB per crossing, -0.1 dB per vertical coupler traversal).
func DefaultConfig(channels int) Config {
	return Config{
		Cores:       16,
		TilePitchCM: 0.2,
		Layers:      2,
		CrossingDB:  -0.04,
		CouplerDB:   -0.1,
		Grid:        phys.DefaultGrid(channels),
		Params:      phys.DefaultParams(),
	}
}

// Crossbar is an immutable crossbar instance implementing
// fabric.Fabric.
type Crossbar struct {
	cfg Config
}

var _ fabric.Fabric = (*Crossbar)(nil)

// New validates the configuration and builds the crossbar.
func New(cfg Config) (*Crossbar, error) {
	if cfg.Cores < 2 {
		return nil, fmt.Errorf("crossbar: need at least 2 cores, got %d", cfg.Cores)
	}
	if cfg.TilePitchCM <= 0 {
		return nil, fmt.Errorf("crossbar: tile pitch must be positive, got %v", cfg.TilePitchCM)
	}
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("crossbar: need at least 1 layer, got %d", cfg.Layers)
	}
	if cfg.CrossingDB > 0 || cfg.CouplerDB > 0 {
		return nil, fmt.Errorf("crossbar: crossing/coupler losses must be <= 0 dB, got %v/%v",
			cfg.CrossingDB, cfg.CouplerDB)
	}
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	return &Crossbar{cfg: cfg}, nil
}

// Config returns the configuration the crossbar was built from.
func (x *Crossbar) Config() Config { return x.cfg }

// Name implements fabric.Fabric.
func (x *Crossbar) Name() string { return "crossbar" }

// ResourceName implements fabric.Fabric: the shared-medium unit is a
// span ("hop") of a destination's dedicated waveguide.
func (x *Crossbar) ResourceName() string { return "hop" }

// Size implements fabric.Fabric.
func (x *Crossbar) Size() int { return x.cfg.Cores }

// Channels implements fabric.Fabric.
func (x *Crossbar) Channels() int { return x.cfg.Grid.Channels }

// Grid implements fabric.Fabric.
func (x *Crossbar) Grid() phys.Grid { return x.cfg.Grid }

// Params implements fabric.Fabric.
func (x *Crossbar) Params() phys.Params { return x.cfg.Params }

// PathBetween implements fabric.Fabric. The route from src to dst
// rides destination dst's dedicated waveguide: hop j of waveguide d
// (resource ID d*N + j) is the span from tap j toward tap j+1 (hop
// N-1 ends in the receiver), so light injected at src occupies hops
// src..N-1. Two paths overlap iff they target the same destination;
// all paths share lane 0 — there are no counter-propagating media.
// The ONI sequence is just {src, dst}: the signal passes no
// intermediate receiver bank, only modulator banks accounted
// statically by the loss model.
func (x *Crossbar) PathBetween(src, dst int) (fabric.Path, error) {
	n := x.cfg.Cores
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fabric.Path{}, fmt.Errorf("crossbar: path endpoints %d->%d outside [0,%d)", src, dst, n)
	}
	if src == dst {
		return fabric.Path{}, fmt.Errorf("crossbar: degenerate path %d->%d", src, dst)
	}
	hops := make([]int, 0, n-src)
	for j := src; j < n; j++ {
		hops = append(hops, dst*n+j)
	}
	return fabric.NewPath(src, dst, 0, []int{src, dst}, hops), nil
}

// TransitLossDB implements fabric.Fabric: the static worst-case
// budget from the path's source tap to (but not into) the receiver
// bank. The crossbar has no interior receiver banks, so the transit
// is independent of the channel and the bank state; pass-by modulator
// banks are modelled in their OFF through state (first order — an ON
// modulator belongs to a transmission on a disjoint wavelength set,
// whose through-loss difference is second order).
func (x *Crossbar) TransitLossDB(p fabric.Path, ch int, bank fabric.BankState) phys.DB {
	par := x.cfg.Params
	hops := p.Hops() // N - src
	if hops == 0 {
		return 0 // self path: never enters the optical layer
	}
	loss := phys.DB(float64(hops)*x.cfg.TilePitchCM) * par.PropagationDBPerCM
	loss += phys.DB((hops-1)*x.Channels()) * par.LossOffMR
	loss += phys.DB(x.crossings(p.Dst)) * x.cfg.CrossingDB
	loss += phys.DB(2*x.layerOf(p.Dst)) * x.cfg.CouplerDB
	return loss
}

// crossings counts the in-plane waveguide crossings of destination
// d's waveguide: only the same-layer waveguides of higher index cross
// it (lower-index same-layer waveguides are routed on the other
// side), so distributing the N waveguides round-robin over Layers
// layers divides the crossing count by the layer count.
func (x *Crossbar) crossings(d int) int {
	return (x.cfg.Cores - 1 - d) / x.cfg.Layers
}

// layerOf returns the deposited layer carrying destination d's
// waveguide (round-robin assignment).
func (x *Crossbar) layerOf(d int) int { return d % x.cfg.Layers }

// SignalArrivalDB implements fabric.Fabric: static transit plus the
// dynamic receiver-bank walk at the destination and the final drop
// into the resonant micro-ring.
func (x *Crossbar) SignalArrivalDB(p fabric.Path, ch int, bank fabric.BankState) phys.DB {
	loss := x.TransitLossDB(p, ch, bank)
	loss += fabric.BankWalkDB(x.cfg.Params, p.Dst, ch, ch, bank)
	loss += phys.DropLossDB(x.cfg.Params, phys.MRState(bank.On(p.Dst, ch)))
	return loss
}

// ArrivalAlongDB implements fabric.Fabric. On the crossbar a signal
// only ever reaches its own destination's receiver (the path crosses
// no other bank), so det must be p.Dst; any other det is the "not
// downstream" error, which crosstalk scans treat as no coupling.
func (x *Crossbar) ArrivalAlongDB(p fabric.Path, det, ch, detCh int, bank fabric.BankState) (phys.DB, error) {
	prefix := p
	if det != p.Dst {
		var err error
		prefix, err = p.Prefix(det)
		if err != nil {
			return 0, err
		}
	}
	loss := x.TransitLossDB(prefix, ch, bank)
	loss += fabric.BankWalkDB(x.cfg.Params, det, ch, detCh, bank)
	if ch == detCh {
		loss += phys.DropLossDB(x.cfg.Params, phys.MRState(bank.On(det, detCh)))
	} else {
		loss += x.cfg.Grid.CrosstalkDB(detCh, ch)
	}
	return loss, nil
}

// DetectorArrivalDB implements fabric.Fabric.
func (x *Crossbar) DetectorArrivalDB(src, det, ch, detCh int, bank fabric.BankState) (phys.DB, error) {
	p, err := x.PathBetween(src, det)
	if err != nil {
		return 0, err
	}
	return x.ArrivalAlongDB(p, det, ch, detCh, bank)
}

// Area implements fabric.Fabric with the first-order crossbar bill of
// materials: every source carries NW modulator micro-rings on each of
// the N-1 foreign waveguides plus NW lasers; every destination a
// NW-ring receiver bank with its photodetectors; each of the N
// waveguides runs N tap pitches. Vertical couplers are not counted
// (negligible footprint against N^2*NW modulators).
func (x *Crossbar) Area(m fabric.AreaModel) fabric.Area {
	n, nw := x.cfg.Cores, x.Channels()
	a := fabric.Area{
		MRs:            n*(n-1)*nw + n*nw,
		Lasers:         n * nw,
		Photodetectors: n * nw,
		WaveguideCM:    float64(n*n) * x.cfg.TilePitchCM,
	}
	a.Total(m)
	return a
}
