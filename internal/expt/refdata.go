package expt

// Reference anchors transcribed from the paper's Section IV, used by
// the Summary report and the reproduction tests in EXPERIMENTS.md.
// Absolute agreement is not expected (the physical calibration of the
// substrate differs, see DESIGN.md section 5); the *shape* assertions
// in the test suite are:
//
//   - best execution time decreases with NW with diminishing returns
//     (large 4->8 gain, small 8->12 gain), approaching the 20 k-cc
//     floor from above;
//   - the minimum-energy solution is the all-ones allocation near the
//     bottom of the paper's 3.5-8 fJ/bit band;
//   - front sizes and valid-solution counts grow with NW.
var (
	// PaperBestTimeKCC holds the optimized execution times quoted in
	// Section IV: "28.3 k-cc for 4 lambda and 23.8 k-cc for 8
	// lambda... 22.96 k-cc for 12 lambda".
	PaperBestTimeKCC = map[int]float64{4: 28.3, 8: 23.8, 12: 22.96}

	// PaperMinTimeKCC is the infinite-bandwidth floor shown in
	// Fig. 6: 20 k-cc.
	PaperMinTimeKCC = 20.0

	// PaperFrontSize holds Table II's "Number of solutions on Pareto
	// front".
	PaperFrontSize = map[int]int{4: 10, 8: 29, 12: 51}

	// PaperValidCount holds Table II's "Number of valid solutions".
	PaperValidCount = map[int]int{4: 28284, 8: 86525, 12: 100578}

	// PaperEnergyRangeFJ brackets Fig. 6(a)'s y axis: ~3.5 to ~8
	// fJ/bit.
	PaperEnergyRangeFJ = [2]float64{3.5, 8.0}

	// PaperLogBERRange brackets Fig. 6(b)'s y axis: log10(BER) in
	// [-3.7, -3.0]. The faithful Eq. 1-9 implementation with Table I
	// constants produces lower (better) absolute BER; the range is
	// recorded for the EXPERIMENTS.md comparison, not asserted.
	PaperLogBERRange = [2]float64{-3.7, -3.0}

	// PaperGAPopulation and PaperGAGenerations are the GA settings of
	// Section IV.
	PaperGAPopulation  = 400
	PaperGAGenerations = 300
)
