package expt

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/phys"
	"repro/internal/ring"
	"repro/internal/stats"
)

// SeedStats aggregates one comb size's exploration over several GA
// seeds — the statistically honest form of the paper's single-run
// numbers.
type SeedStats struct {
	NW        int
	BestTime  stats.Summary // k-cc
	MinEnergy stats.Summary // fJ/bit
	FrontSize stats.Summary // (time, BER) front cardinality
	Valid     stats.Summary // distinct valid genomes
}

// MultiSeed reruns the exploration for nw with `seeds` different GA
// seeds derived from cfg.Seed.
func MultiSeed(cfg Config, nw, seeds int) (SeedStats, error) {
	cfg = cfg.withDefaults()
	if seeds < 1 {
		return SeedStats{}, fmt.Errorf("expt: need at least one seed, got %d", seeds)
	}
	var bt, me, fs, vd []float64
	for s := 0; s < seeds; s++ {
		run := cfg
		run.Seed = cfg.Seed + int64(s)*7919 // distinct, deterministic
		res, err := RunNW(run, nw)
		if err != nil {
			return SeedStats{}, err
		}
		bt = append(bt, res.BestTimeKCC())
		if sol, ok := res.MinEnergySolution(); ok {
			me = append(me, sol.BitEnergyFJ)
		}
		fs = append(fs, float64(len(res.FrontTimeBER)))
		vd = append(vd, float64(res.DistinctValid))
	}
	return SeedStats{
		NW:        nw,
		BestTime:  stats.Describe(bt),
		MinEnergy: stats.Describe(me),
		FrontSize: stats.Describe(fs),
		Valid:     stats.Describe(vd),
	}, nil
}

// MultiSeedReport renders the per-NW distributions.
func MultiSeedReport(cfg Config, seeds int) (string, error) {
	cfg = cfg.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Multi-seed robustness (%d seeds per comb size)\n\n", seeds)
	rows := make([][]string, 0, len(cfg.NWs))
	for _, nw := range cfg.NWs {
		ss, err := MultiSeed(cfg, nw, seeds)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", nw),
			ss.BestTime.String(),
			ss.MinEnergy.String(),
			ss.FrontSize.String(),
			ss.Valid.String(),
		})
	}
	sb.WriteString(Table([]string{
		"NW", "best time k-cc", "min energy fJ/bit", "front size", "valid distinct",
	}, rows))
	return sb.String(), nil
}

// Sensitivity sweeps the micro-ring quality factor against the comb
// density and reports the mean BER of a fixed reference allocation
// (two wavelengths per communication, least-used assignment): the
// device-level sensitivity analysis behind the paper's fixed
// Q = 9600 / FSR = 12.8 nm choice.
func Sensitivity() (string, error) {
	qs := []float64{2400, 4800, 9600, 19200}
	nws := []int{4, 8, 12}
	var sb strings.Builder
	sb.WriteString("BER sensitivity to micro-ring quality factor (mean BER, uniform 2-wavelength reference allocation)\n\n")
	rows := make([][]string, 0, len(qs))
	for _, q := range qs {
		row := []string{fmt.Sprintf("%g", q)}
		for _, nw := range nws {
			rcfg := ring.DefaultConfig(nw)
			rcfg.Grid.Q = q
			r, err := ring.New(rcfg)
			if err != nil {
				return "", err
			}
			in, err := alloc.NewInstance(r, graph.PaperApp(), graph.PaperMapping(), 1, energy.Default())
			if err != nil {
				return "", err
			}
			g, err := alloc.Assign(in, alloc.UniformCounts(in.Edges(), 2), alloc.LeastUsed, nil)
			if err != nil {
				row = append(row, "infeasible")
				continue
			}
			ev := in.Evaluate(g)
			if !ev.Valid {
				row = append(row, "invalid")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", phys.Log10BER(ev.MeanBER)))
		}
		rows = append(rows, row)
	}
	header := []string{"Q"}
	for _, nw := range nws {
		header = append(header, fmt.Sprintf("log10 BER @ NW=%d", nw))
	}
	sb.WriteString(Table(header, rows))
	sb.WriteString("\n(lower Q widens the Lorentzian: more inter-channel leakage, worse BER;\ndenser combs shrink the spacing with the same effect)\n")

	// Area cost alongside, the paper's closing remark on Fig. 6(a).
	sb.WriteString("\nOptical-layer area (default device footprints):\n")
	arows := make([][]string, 0, len(nws))
	for _, nw := range nws {
		r, err := ring.New(ring.DefaultConfig(nw))
		if err != nil {
			return "", err
		}
		a := r.Area(ring.DefaultAreaModel())
		arows = append(arows, []string{
			fmt.Sprintf("%d", nw),
			fmt.Sprintf("%d", a.MRs),
			fmt.Sprintf("%d", a.Lasers),
			fmt.Sprintf("%.2f", a.WaveguideCM),
			fmt.Sprintf("%.3f", a.TotalMM2),
		})
	}
	sb.WriteString(Table([]string{"NW", "MRs", "lasers", "waveguide cm", "total mm^2"}, arows))
	return sb.String(), nil
}
