package expt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
)

// This file is the campaign's remote-execution seam: the exported
// operations a distributed coordinator/worker pair (internal/dist)
// composes into a multi-process campaign. The checkpoint formats
// double as the wire formats — a worker streams back the exact
// cell-<N>.ckpt and cell-<N>.json bytes the in-process checkpoint
// manager writes, the coordinator stores them verbatim, and the
// campaign's artifact directory comes out byte-identical to a
// single-process run's. Everything here is a thin recombination of
// the in-process pieces (runCell, the checkpoint manager, the island
// driver), so there is no second execution path to diverge.

// encodeCellCkpt renders a cell's in-flight snapshot file: the
// WACELL header followed by the engine checkpoint stream — the exact
// bytes writeCellCheckpoint persists.
func encodeCellCkpt(c Cell, x *core.Explorer) ([]byte, error) {
	var buf bytes.Buffer
	var hdr [16]byte
	off := copy(hdr[:], cellCkptMagic[:])
	binary.LittleEndian.PutUint16(hdr[off:], cellCkptVersion)
	binary.LittleEndian.PutUint32(hdr[off+2:], uint32(c.Index))
	binary.LittleEndian.PutUint32(hdr[off+6:], uint32(c.NW))
	buf.Write(hdr[:off+10])
	if err := x.WriteCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeCellCkpt validates a cell snapshot file's header against the
// cell identity and returns the embedded engine checkpoint stream.
func decodeCellCkpt(c Cell, raw []byte) ([]byte, error) {
	hdrLen := len(cellCkptMagic) + 2 + 4 + 4
	if len(raw) < hdrLen || !bytes.Equal(raw[:len(cellCkptMagic)], cellCkptMagic[:]) {
		return nil, fmt.Errorf("expt: cell %d: not a cell checkpoint", c.Index)
	}
	off := len(cellCkptMagic)
	if v := binary.LittleEndian.Uint16(raw[off:]); v != cellCkptVersion {
		return nil, fmt.Errorf("expt: cell %d: cell checkpoint version %d, this build reads %d", c.Index, v, cellCkptVersion)
	}
	off += 2
	if idx := binary.LittleEndian.Uint32(raw[off:]); int(idx) != c.Index {
		return nil, fmt.Errorf("expt: cell %d: checkpoint belongs to cell %d", c.Index, idx)
	}
	off += 4
	if nw := binary.LittleEndian.Uint32(raw[off:]); int(nw) != c.NW {
		return nil, fmt.Errorf("expt: cell %d: checkpoint comb size %d, cell wants %d", c.Index, nw, c.NW)
	}
	off += 4
	return raw[off:], nil
}

// encodeCellDone renders a cell's completion record — the exact
// bytes writeDone persists as cell-<N>.json.
func encodeCellDone(c Cell, art cellArtifact) ([]byte, error) {
	done := cellDoneJSON{Schema: cellDoneSchema, Cell: manifestCellOf(c), cellArtifact: art}
	e := getEnc()
	if e.cellDoneDoc(&done); e.bad {
		// Non-finite floats: delegate to the stdlib encoder for the
		// identical UnsupportedValueError.
		putEnc(e)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(done); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	out, err := indentDoc(e.b)
	putEnc(e)
	return out, err
}

// decodeCellDone validates a completion record's schema and identity
// against the cell and returns its artifact view.
func decodeCellDone(c Cell, raw []byte) (*cellArtifact, error) {
	var done cellDoneJSON
	if err := json.Unmarshal(raw, &done); err != nil {
		return nil, fmt.Errorf("expt: cell %d: corrupt completion record: %w", c.Index, err)
	}
	if done.Schema != cellDoneSchema {
		return nil, fmt.Errorf("expt: cell %d: completion schema %q, this build reads %q", c.Index, done.Schema, cellDoneSchema)
	}
	if done.Cell != manifestCellOf(c) {
		return nil, fmt.Errorf("expt: cell %d: completion record identifies %+v, campaign expects %+v", c.Index, done.Cell, manifestCellOf(c))
	}
	return &done.cellArtifact, nil
}

// ManifestBytes renders the campaign's identity record: the exact
// bytes the checkpoint manager writes to manifest.json. A
// distributed worker renders its own view from the configuration it
// received over the wire and byte-compares against the
// coordinator's, so any divergence — axes, seeds, schema version,
// even encoding — is caught before a single cell runs.
func ManifestBytes(cfg CampaignConfig) ([]byte, error) {
	cfg = cfg.withDefaults()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildManifest(cfg, cfg.Cells())); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BuildCellInstance builds the shared evaluation instance of one
// cell's (backend, workload, NW) triple — what RunCampaign prebuilds
// per triple, exposed for worker processes that receive cells one at
// a time.
func BuildCellInstance(cell Cell, wl Workload) (*alloc.Instance, error) {
	return core.NewSharedInstance(core.Config{NW: cell.NW, Backend: cell.Backend, App: wl.App, Mapping: wl.Mapping})
}

// ExecuteCell runs one campaign cell to completion in this process
// and returns its completion-record bytes (the cell-<N>.json
// contents). resume, when non-nil, is a cell snapshot file (the
// cell-<N>.ckpt contents) to continue from; emit, when non-nil, is
// called with a fresh snapshot file every cfg.CheckpointEvery
// generations — the durability stream a distributed worker forwards
// to its coordinator. The execution is identical to the in-process
// runCell: same problem construction, same step loop, same sim
// cross-check, same record encoding.
func ExecuteCell(cfg CampaignConfig, cell Cell, in *alloc.Instance, resume []byte, emit func(ckpt []byte) error) ([]byte, error) {
	cfg = cfg.withDefaults()
	t0 := time.Now()
	if cfg.Islands > 1 {
		cr := runIslandCell(cfg, in, cell, nil, t0)
		if cr.Err != nil {
			return nil, cr.Err
		}
		return encodeCellDone(cell, cr.artifact())
	}
	p, err := cellProblem(cfg, cell, in, nil)
	if err != nil {
		return nil, err
	}
	var x *core.Explorer
	if resume != nil {
		payload, err := decodeCellCkpt(cell, resume)
		if err != nil {
			return nil, err
		}
		if x, err = p.ResumeExplorer(bytes.NewReader(payload)); err != nil {
			return nil, fmt.Errorf("expt: resume cell %d: %w", cell.Index, err)
		}
	} else {
		if x, err = p.NewExplorer(); err != nil {
			return nil, err
		}
	}
	for !x.Done() {
		x.Step()
		if emit != nil && cfg.CheckpointEvery > 0 && !x.Done() && x.Generation()%cfg.CheckpointEvery == 0 {
			ck, err := encodeCellCkpt(cell, x)
			if err != nil {
				return nil, err
			}
			if err := emit(ck); err != nil {
				return nil, err
			}
		}
	}
	res, err := x.Finish()
	cr := CellResult{Cell: cell, Result: res, Err: err}
	if cfg.Stats && err == nil {
		cr.stats = cellStatsOf(x.Stats())
	}
	if err == nil && res != nil {
		cr.SimChecked, cr.SimViolations, cr.SimBracketMisses, cr.Err = simCheck(p.Instance(), res)
	}
	if cr.Err != nil {
		return nil, cr.Err
	}
	return encodeCellDone(cell, cr.artifact())
}

// RunCellSegment executes one island segment of a cell — the unit of
// work a distributed island-model run ships to workers. The segment
// is a pure function of (campaign configuration, cell, segment), so
// any worker computes the same bytes.
func RunCellSegment(cfg CampaignConfig, cell Cell, in *alloc.Instance, seg core.IslandSegment) (core.IslandSegmentResult, error) {
	cfg = cfg.withDefaults()
	p, err := cellProblem(cfg, cell, in, nil)
	if err != nil {
		return core.IslandSegmentResult{}, err
	}
	return p.RunIslandSegment(seg)
}

// DriveIslandCell runs one island-model cell through an arbitrary
// round runner (nil = local serial execution) and returns its
// completion-record bytes. The distributed coordinator passes a
// runner that ships each round's segments to workers; because
// segments communicate only through checkpoint bytes, the record
// comes out identical to a local run's.
func DriveIslandCell(cfg CampaignConfig, cell Cell, in *alloc.Instance, runner core.RoundRunner) ([]byte, error) {
	cfg = cfg.withDefaults()
	if cfg.Islands <= 1 {
		return nil, fmt.Errorf("expt: cell %d: DriveIslandCell needs Islands > 1", cell.Index)
	}
	p, err := cellProblem(cfg, cell, in, nil)
	if err != nil {
		return nil, err
	}
	res, stats, err := p.RunIslands(cfg.islandSpec(), runner)
	cr := CellResult{Cell: cell, Result: res, Err: err}
	if cfg.Stats && err == nil {
		cr.stats = cellStatsOf(stats)
	}
	if err == nil && res != nil {
		cr.SimChecked, cr.SimViolations, cr.SimBracketMisses, cr.Err = simCheck(p.Instance(), res)
	}
	if cr.Err != nil {
		return nil, cr.Err
	}
	return encodeCellDone(cell, cr.artifact())
}

// CampaignDir is a coordinator's handle on a campaign checkpoint
// directory: the same manifest handling, identity validation and
// atomic write discipline as the in-process checkpoint manager, plus
// verbatim put/get of the raw record bytes workers stream back.
type CampaignDir struct {
	mgr   *checkpointManager
	cells []Cell
}

// OpenCampaignDir initializes (or, with cfg.Resume, validates) a
// campaign checkpoint directory. cfg.CheckpointDir is required.
func OpenCampaignDir(cfg CampaignConfig) (*CampaignDir, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("expt: OpenCampaignDir needs CheckpointDir")
	}
	cells := cfg.Cells()
	mgr, err := newCheckpointManager(cfg, cells)
	if err != nil {
		return nil, err
	}
	return &CampaignDir{mgr: mgr, cells: cells}, nil
}

// Cells returns the campaign's deterministic cell enumeration.
func (d *CampaignDir) Cells() []Cell { return d.cells }

// HasDone reports whether cell c already has a valid completion
// record (validating schema and identity, like a resume would).
func (d *CampaignDir) HasDone(c Cell) (bool, error) {
	_, ok, err := d.mgr.loadDone(c)
	return ok, err
}

// LoadCkptRaw returns cell c's in-flight snapshot file verbatim, if
// one exists — the resume payload for reassigning an interrupted
// cell to a (possibly different) worker.
func (d *CampaignDir) LoadCkptRaw(c Cell) ([]byte, bool, error) {
	raw, err := readFileIfExists(d.mgr.ckptPath(c))
	if err != nil || raw == nil {
		return nil, false, err
	}
	if _, err := decodeCellCkpt(c, raw); err != nil {
		return nil, false, err
	}
	return raw, true, nil
}

// PutCkptRaw durably stores a snapshot file streamed back by a
// worker, verbatim, after validating its header against the cell
// identity.
func (d *CampaignDir) PutCkptRaw(c Cell, raw []byte) error {
	if _, err := decodeCellCkpt(c, raw); err != nil {
		return err
	}
	if err := atomicWriteFile(d.mgr.ckptPath(c), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("expt: checkpoint cell %d: %w", c.Index, err)
	}
	return nil
}

// PutDoneRaw durably stores a completion record streamed back by a
// worker, verbatim, after validating its schema and identity, and
// drops the cell's in-flight snapshot — the same commit sequence as
// the in-process writeDone.
func (d *CampaignDir) PutDoneRaw(c Cell, raw []byte) error {
	if _, err := decodeCellDone(c, raw); err != nil {
		return err
	}
	if err := atomicWriteFile(d.mgr.donePath(c), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("expt: record cell %d completion: %w", c.Index, err)
	}
	os.Remove(d.mgr.ckptPath(c)) // best effort; superseded either way
	return nil
}

// readFileIfExists returns the file's contents, nil when it does not
// exist.
func readFileIfExists(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return raw, err
}
