package expt

import (
	"bytes"
	"encoding/csv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func quickCampaignConfig(cellWorkers int) CampaignConfig {
	return CampaignConfig{
		NWs:           []int{4, 8},
		ObjectiveSets: []core.ObjectiveSet{core.TimeEnergyBER, core.TimeEnergy},
		Replicates:    2,
		Pop:           20,
		Generations:   8,
		Seed:          7,
		CellWorkers:   cellWorkers,
	}
}

func TestCampaignCellEnumeration(t *testing.T) {
	cells := quickCampaignConfig(1).Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("enumerated %d cells, want 8", len(cells))
	}
	seeds := make(map[int64]Cell, len(cells))
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if prev, dup := seeds[c.Seed]; dup {
			t.Errorf("cells %v and %v share seed %d", prev, c, c.Seed)
		}
		seeds[c.Seed] = c
	}
	// Identity-derived seeds: the same cell must get the same seed in
	// a differently-shaped campaign.
	other := quickCampaignConfig(1)
	other.NWs = []int{8}
	other.ObjectiveSets = []core.ObjectiveSet{core.TimeEnergy}
	for _, oc := range other.Cells() {
		want := cellSeed(7, oc.Backend, oc.NW, oc.Objectives, oc.Workload, oc.Replicate)
		if oc.Seed != want {
			t.Errorf("cell %v seed %d, want identity-derived %d", oc, oc.Seed, want)
		}
	}
}

// TestCampaignParallelBitIdenticalToSerial is the campaign-level
// determinism guarantee: the JSON and CSV artifacts are byte-equal
// for any cell worker count.
func TestCampaignParallelBitIdenticalToSerial(t *testing.T) {
	artifacts := func(workers int) (string, string) {
		camp, err := RunCampaign(quickCampaignConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteCampaignJSON(&j, camp); err != nil {
			t.Fatal(err)
		}
		if err := WriteCampaignCSV(&c, camp); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	serialJSON, serialCSV := artifacts(1)
	parallelJSON, parallelCSV := artifacts(4)
	if serialJSON != parallelJSON {
		t.Error("campaign JSON artifact differs between serial and parallel runs")
	}
	if serialCSV != parallelCSV {
		t.Error("campaign CSV artifact differs between serial and parallel runs")
	}
	if !strings.Contains(serialJSON, "wadate-campaign/v1") {
		t.Error("JSON artifact missing schema marker")
	}
}

func TestCampaignProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var started, done, lastCompleted int
	cfg := quickCampaignConfig(3)
	cfg.Progress = func(ev CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Total != 8 {
			t.Errorf("event total %d, want 8", ev.Total)
		}
		if ev.Completed < lastCompleted {
			t.Errorf("completed count went backwards: %d after %d", ev.Completed, lastCompleted)
		}
		lastCompleted = ev.Completed
		if ev.Done {
			done++
			if ev.Completed != done {
				t.Errorf("done event %d carries completed %d", done, ev.Completed)
			}
			if ev.Err != nil {
				t.Errorf("cell %v failed: %v", ev.Cell, ev.Err)
			}
			if ev.Elapsed < 0 {
				t.Error("negative elapsed")
			}
		} else {
			started++
		}
	}
	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if started != 8 || done != 8 {
		t.Fatalf("saw %d starts and %d completions, want 8/8", started, done)
	}
	if camp.Failed() != 0 {
		t.Fatalf("%d cells failed", camp.Failed())
	}
	for _, cr := range camp.Cells {
		if cr.Result == nil || len(cr.Result.Valid) == 0 {
			t.Fatalf("cell %v produced no valid solutions", cr.Cell)
		}
	}
}

func TestCampaignCSVParses(t *testing.T) {
	camp, err := RunCampaign(quickCampaignConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, camp); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("campaign CSV has no data rows")
	}
	if len(rows[0]) != 13 {
		t.Fatalf("campaign CSV header has %d columns, want 13", len(rows[0]))
	}
	out := CampaignSummary(camp)
	for _, want := range []string{"Campaign: 8 cells", "paper", "time+energy", "best t (k-cc)"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestNamedWorkloads(t *testing.T) {
	for _, spec := range []string{"paper", "chain6", "forkjoin4", "fft4", "gauss4", "diamond3"} {
		wl, err := NamedWorkload(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if wl.Name != spec {
			t.Errorf("%s: name %q", spec, wl.Name)
		}
		if spec == "paper" {
			if wl.App != nil || wl.Mapping != nil {
				t.Error("paper workload must use the built-in app")
			}
			continue
		}
		if wl.App == nil || wl.Mapping == nil {
			t.Errorf("%s: missing app or mapping", spec)
			continue
		}
		if err := wl.Mapping.Validate(wl.App, PlatformCores); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
		// Determinism: the same spec resolves to the same workload.
		again, err := NamedWorkload(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.App.Edges) != len(wl.App.Edges) || again.Mapping[0] != wl.Mapping[0] {
			t.Errorf("%s: workload not deterministic", spec)
		}
		for ei := range wl.App.Edges {
			if wl.App.Edges[ei].VolumeBits != again.App.Edges[ei].VolumeBits {
				t.Errorf("%s: edge volumes not deterministic", spec)
				break
			}
		}
	}
	for _, bad := range []string{"", "paper2x", "fft", "fft0", "mesh4", "chain0"} {
		if _, err := NamedWorkload(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
	// Out-of-range sizes fail with an actionable message, not a raw
	// internal error.
	if _, err := NamedWorkload("chain0"); err == nil ||
		!strings.Contains(err.Error(), "size must be >= 1") ||
		!strings.Contains(err.Error(), "shared-core") {
		t.Errorf("chain0 error = %v, want the size/shared-core message", err)
	}
}

// TestNamedWorkloadsBeyondPlatform pins the tentpole: specs larger
// than the 16-core platform resolve through load-balanced shared-core
// mappings instead of failing.
func TestNamedWorkloadsBeyondPlatform(t *testing.T) {
	for _, spec := range []string{"chain32", "chain64", "fft64", "gauss8", "diamond6"} {
		wl, err := NamedWorkload(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		n := wl.App.NumTasks()
		if n <= PlatformCores {
			t.Errorf("%s: only %d tasks, expected a >%d-task workload", spec, n, PlatformCores)
		}
		if err := wl.Mapping.Validate(wl.App, PlatformCores); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
		if wl.Mapping.Injective() {
			t.Errorf("%s: %d tasks on %d cores cannot be injective", spec, n, PlatformCores)
		}
		// Load-balanced: no core idles while another is overloaded by
		// more than one task.
		loads := wl.Mapping.CoreLoads(PlatformCores)
		min, max := loads[0], loads[0]
		for _, l := range loads[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Errorf("%s: core loads spread %d..%d, want load-balanced", spec, min, max)
		}
		// Determinism, as for the small specs.
		again, err := NamedWorkload(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wl.Mapping {
			if wl.Mapping[i] != again.Mapping[i] {
				t.Errorf("%s: mapping not deterministic", spec)
				break
			}
		}
	}
}

// TestCampaignSharedCoreDeterminism is the shared-core arm of the
// campaign determinism guarantee: a workload larger than the 16-core
// platform produces byte-identical artifacts for any worker counts,
// and its projected-front genomes pass the simulator cross-check with
// zero violations. CI runs this under -race.
func TestCampaignSharedCoreDeterminism(t *testing.T) {
	wl, err := NamedWorkload("chain20")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Mapping.Injective() {
		t.Fatal("chain20 must need a shared-core mapping")
	}
	artifacts := func(cellWorkers, evalWorkers int) string {
		camp, err := RunCampaign(CampaignConfig{
			NWs:           []int{4, 8},
			ObjectiveSets: []core.ObjectiveSet{core.TimeEnergy},
			Workloads:     []Workload{wl},
			Pop:           16,
			Generations:   6,
			Seed:          5,
			CellWorkers:   cellWorkers,
			EvalWorkers:   evalWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, cr := range camp.Cells {
			if cr.SimChecked == 0 {
				t.Fatalf("cell %v: no genomes cross-checked on the simulator", cr.Cell)
			}
			if cr.SimViolations != 0 {
				t.Fatalf("cell %v: %d simulator violations", cr.Cell, cr.SimViolations)
			}
			if cr.SimBracketMisses != 0 {
				t.Fatalf("cell %v: %d makespan bracket misses", cr.Cell, cr.SimBracketMisses)
			}
		}
		var j bytes.Buffer
		if err := WriteCampaignJSON(&j, camp); err != nil {
			t.Fatal(err)
		}
		return j.String()
	}
	serial := artifacts(1, 0)
	parallel := artifacts(2, 2)
	if serial != parallel {
		t.Error("shared-core campaign artifact differs between serial and parallel runs")
	}
	if !strings.Contains(serial, `"sim_violations": 0`) {
		t.Error("JSON artifact missing the sim cross-check fields")
	}
}

// TestCampaignGeneratedWorkloadCell runs one small non-paper cell end
// to end.
func TestCampaignGeneratedWorkloadCell(t *testing.T) {
	wl, err := NamedWorkload("chain5")
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCampaign(CampaignConfig{
		NWs:           []int{4},
		ObjectiveSets: []core.ObjectiveSet{core.TimeEnergy},
		Workloads:     []Workload{wl},
		Pop:           16,
		Generations:   6,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := camp.Cells[0].Result
	if res == nil || len(res.Valid) == 0 {
		t.Fatal("chain workload cell found no valid allocations")
	}
}

func TestCampaignRejectsBadWorkloadLists(t *testing.T) {
	cfg := quickCampaignConfig(1)
	cfg.Workloads = []Workload{{Name: "dup"}, {Name: "dup"}}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("duplicate workload names must fail")
	}
	cfg.Workloads = []Workload{{}}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("empty workload name must fail")
	}
}

func TestCampaignRejectsDuplicateAxes(t *testing.T) {
	cfg := quickCampaignConfig(1)
	cfg.NWs = []int{8, 8}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("duplicate comb sizes must fail")
	}
	cfg = quickCampaignConfig(1)
	cfg.ObjectiveSets = []core.ObjectiveSet{core.TimeEnergy, core.TimeEnergy}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("duplicate objective sets must fail")
	}
}

// TestCampaignCSVHeaderAlwaysPresent pins the artifact contract: even
// a campaign with no successful cells yields a well-formed table.
func TestCampaignCSVHeaderAlwaysPresent(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, &Campaign{}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "cell" {
		t.Fatalf("empty campaign CSV = %q, want header-only table", buf.String())
	}
}
