package expt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nsga2"
)

// This file implements the campaign checkpoint manager: the durable
// state that lets a killed campaign resume where it stopped — mid-
// cell, not just at cell granularity. The on-disk layout of a
// checkpoint directory is
//
//	manifest.json   campaign identity: config axes, the deterministic
//	                cell enumeration and the identity-derived seeds.
//	                Written once at campaign start, immutable after;
//	                resume validates it against the current config and
//	                fails loudly on any mismatch.
//	cell-<N>.json   completed cell N's artifact view (fronts with
//	                genomes, counters, sim cross-check). Its presence
//	                IS the completion record — no manifest rewrite,
//	                so completion commits with one atomic rename.
//	cell-<N>.ckpt   in-flight cell N's engine checkpoint (a small
//	                cell header followed by the nsga2 checkpoint
//	                stream), rewritten every CheckpointEvery
//	                generations and removed when the cell completes.
//
// Every file is written to <name>.tmp, fsynced and renamed into
// place, so a kill at any instant leaves either the previous or the
// next consistent state — never a torn file. Artifacts of a resumed
// campaign are byte-identical to an uninterrupted run's: the engine
// checkpoint replays the GA bit-for-bit, and completed cells are
// re-rendered from artifact views whose floats round-trip exactly
// through JSON.

// ErrCampaignStopped reports that a campaign was stopped on purpose
// after StopAfterCheckpoints checkpoint writes — the preemption
// crash-test aid behind the CI resume-equivalence job.
var ErrCampaignStopped = errors.New("expt: campaign stopped after requested checkpoint count (crash test)")

const (
	// manifestSchema v2 added the backend dimension to the campaign
	// identity (manifest Backends list and per-cell Backend fields,
	// both always populated). v1 directories predate the dimension and
	// cannot prove which fabric produced them, so resume rejects them
	// fail-loud instead of assuming "ring".
	manifestSchema = "wadate-checkpoint/v2"
	cellDoneSchema = "wadate-cell/v2"

	// DefaultCheckpointEvery is the in-flight snapshot cadence (in
	// generations) used when CheckpointDir is set but CheckpointEvery
	// is not.
	DefaultCheckpointEvery = 25
)

// cellCkptMagic and cellCkptVersion head every cell-<N>.ckpt file,
// in front of the embedded nsga2 checkpoint (which carries its own
// magic, version, genome geometry and seed):
//
//	magic   [6]byte "WACELL"
//	version uint16
//	index   uint32  cell index in the campaign enumeration
//	nw      uint32  comb size of the cell
var cellCkptMagic = [6]byte{'W', 'A', 'C', 'E', 'L', 'L'}

const cellCkptVersion = 1

// manifestJSON is the campaign identity record. Every field
// influences results; a resume whose configuration disagrees on any
// of them would silently compute different numbers, so the manager
// refuses it instead.
type manifestJSON struct {
	Schema string `json:"schema"`
	// Backends is always populated (["ring"] for a default campaign):
	// unlike the byte-stable JSON/CSV artifacts, the manifest is an
	// identity record, and an explicit backend list is what lets
	// resume refuse a directory produced by a different fabric sweep.
	Backends      []string `json:"backends"`
	NWs           []int    `json:"nws"`
	ObjectiveSets []string `json:"objective_sets"`
	Workloads     []string `json:"workloads"`
	Replicates    int      `json:"replicates"`
	Pop           int      `json:"pop"`
	Generations   int      `json:"generations"`
	Seed          int64    `json:"seed"`
	WarmStart     bool     `json:"warm_start"`
	// Stats is part of the identity because it changes the artifact
	// bytes: a campaign completed without instrumentation cannot be
	// resumed into one that expects stats on every restored cell.
	Stats bool `json:"stats,omitempty"`
	// The island-model parameters change every cell's trajectory, so
	// they join the identity; single-engine campaigns omit them and
	// keep their historical manifest bytes.
	Islands        int            `json:"islands,omitempty"`
	MigrationEvery int            `json:"migration_every,omitempty"`
	MigrationK     int            `json:"migration_k,omitempty"`
	Cells          []manifestCell `json:"cells"`
}

type manifestCell struct {
	Index      int    `json:"index"`
	Backend    string `json:"backend"`
	NW         int    `json:"nw"`
	Objectives string `json:"objectives"`
	Workload   string `json:"workload"`
	Replicate  int    `json:"replicate"`
	Seed       int64  `json:"seed"`
}

// cellDoneJSON is a completed cell's durable record: identity (to
// catch files shuffled between directories) plus the artifact view
// the campaign writers consume.
type cellDoneJSON struct {
	Schema string       `json:"schema"`
	Cell   manifestCell `json:"cell"`
	cellArtifact
}

// checkpointManager owns a campaign's checkpoint directory.
type checkpointManager struct {
	dir   string
	every int
	// cells is the campaign's deterministic enumeration; keepCkpt
	// retains completed cells' snapshots (the sibling warm-cache
	// medium) instead of dropping them at completion.
	cells    []Cell
	keepCkpt bool

	// crashAfter > 0 stops the campaign after that many checkpoint
	// writes; mu guards the write counter across cell workers.
	crashAfter int
	mu         sync.Mutex
	written    int
	stopped    bool

	// warmMu guards warmMaps: the per-identity warm maps decoded from
	// completed siblings' checkpoints, shared read-only by every cell
	// of one (workload, NW, objective-set) group.
	warmMu   sync.Mutex
	warmMaps map[string]map[string]warmRec
}

// warmHitsTotal counts warm-cache lookups that short-circuited an
// evaluation, across all campaigns in this process (test
// observability: the warm cache must not be able to silently never
// engage). warmFeasibleHitsTotal counts the subset that served a
// feasible genotype with its persisted metric triple — the hits that
// only became possible once checkpoints carried the triple.
var (
	warmHitsTotal         atomic.Int64
	warmFeasibleHitsTotal atomic.Int64
)

func buildManifest(cfg CampaignConfig, cells []Cell) manifestJSON {
	m := manifestJSON{
		Schema:      manifestSchema,
		Backends:    cfg.Backends,
		NWs:         cfg.NWs,
		Replicates:  cfg.Replicates,
		Pop:         cfg.Pop,
		Generations: cfg.Generations,
		Seed:        cfg.Seed,
		WarmStart:   cfg.WarmStart,
		Stats:       cfg.Stats,
	}
	if cfg.Islands > 1 {
		m.Islands = cfg.Islands
		m.MigrationEvery = cfg.MigrationEvery
		m.MigrationK = cfg.MigrationK
	}
	for _, os := range cfg.ObjectiveSets {
		m.ObjectiveSets = append(m.ObjectiveSets, os.String())
	}
	for _, wl := range cfg.Workloads {
		m.Workloads = append(m.Workloads, wl.Name)
	}
	for _, c := range cells {
		m.Cells = append(m.Cells, manifestCellOf(c))
	}
	return m
}

func manifestCellOf(c Cell) manifestCell {
	return manifestCell{
		Index:      c.Index,
		Backend:    c.Backend,
		NW:         c.NW,
		Objectives: c.Objectives.String(),
		Workload:   c.Workload,
		Replicate:  c.Replicate,
		Seed:       c.Seed,
	}
}

// newCheckpointManager initializes (or, with resume, validates) the
// checkpoint directory for a campaign. cfg must already have its
// defaults applied.
func newCheckpointManager(cfg CampaignConfig, cells []Cell) (*checkpointManager, error) {
	m := &checkpointManager{
		dir:        cfg.CheckpointDir,
		every:      cfg.CheckpointEvery,
		cells:      cells,
		keepCkpt:   cfg.WarmCacheSiblings,
		crashAfter: cfg.StopAfterCheckpoints,
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return nil, fmt.Errorf("expt: checkpoint dir: %w", err)
	}
	want := buildManifest(cfg, cells)
	path := filepath.Join(m.dir, "manifest.json")
	raw, err := os.ReadFile(path)
	switch {
	case cfg.Resume:
		if err != nil {
			return nil, fmt.Errorf("expt: resume: cannot read campaign manifest: %w", err)
		}
		var have manifestJSON
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("expt: resume: corrupt campaign manifest %s: %w", path, err)
		}
		if have.Schema != manifestSchema {
			return nil, fmt.Errorf("expt: resume: manifest schema %q, this build reads %q", have.Schema, manifestSchema)
		}
		if !reflect.DeepEqual(have, want) {
			return nil, fmt.Errorf("expt: resume: checkpoint directory %s was written by a different campaign configuration (axes, seeds, pop, generations or warm start differ) — resuming would silently change results", m.dir)
		}
	case err == nil:
		return nil, fmt.Errorf("expt: checkpoint dir %s already holds a campaign manifest: pass Resume to continue it, or use a fresh directory", m.dir)
	case !errors.Is(err, os.ErrNotExist):
		return nil, fmt.Errorf("expt: checkpoint dir: %w", err)
	default:
		if err := atomicWriteFile(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(want)
		}); err != nil {
			return nil, fmt.Errorf("expt: write campaign manifest: %w", err)
		}
	}
	return m, nil
}

func (m *checkpointManager) donePath(c Cell) string {
	return filepath.Join(m.dir, fmt.Sprintf("cell-%d.json", c.Index))
}

func (m *checkpointManager) ckptPath(c Cell) string {
	return filepath.Join(m.dir, fmt.Sprintf("cell-%d.ckpt", c.Index))
}

// loadDone returns the completed-cell record of c, if one exists.
func (m *checkpointManager) loadDone(c Cell) (*cellArtifact, bool, error) {
	raw, err := os.ReadFile(m.donePath(c))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("expt: resume cell %d: %w", c.Index, err)
	}
	art, err := decodeCellDone(c, raw)
	if err != nil {
		return nil, false, fmt.Errorf("expt: resume: %w", err)
	}
	return art, true, nil
}

// writeDone atomically records c's completion and drops its in-flight
// snapshot. A kill between the two operations leaves both files; the
// completion record wins on resume. The record bytes come from
// encodeCellDone — the same encoder a distributed worker streams
// records through, so both paths write identical files.
func (m *checkpointManager) writeDone(c Cell, art cellArtifact) error {
	raw, err := encodeCellDone(c, art)
	if err != nil {
		return fmt.Errorf("expt: record cell %d completion: %w", c.Index, err)
	}
	if err := atomicWriteFile(m.donePath(c), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("expt: record cell %d completion: %w", c.Index, err)
	}
	if !m.keepCkpt {
		os.Remove(m.ckptPath(c)) // best effort; superseded either way
	}
	return nil
}

// scheduleOrder returns the cell indices in resume-scheduling order:
// in-flight cells (an engine snapshot exists but no completion
// record) first, then everything else, each group in enumeration
// order. In-flight cells carry the most sunk cost — finishing them
// first converts partial GA work into durable completion records
// before any fresh cell starts.
func (m *checkpointManager) scheduleOrder(cells []Cell) []int {
	order := make([]int, 0, len(cells))
	var rest []int
	for i, c := range cells {
		_, ckptErr := os.Stat(m.ckptPath(c))
		_, doneErr := os.Stat(m.donePath(c))
		if ckptErr == nil && doneErr != nil {
			order = append(order, i)
		} else {
			rest = append(rest, i)
		}
	}
	return append(order, rest...)
}

// warmRec is one warm-cache entry: the objective vector and graded
// violation of a genotype evaluated by a sibling cell, plus — for
// feasible genotypes — the metric triple persisted as the sibling
// checkpoint's aux payload (nil for infeasible entries, which have no
// metrics to carry).
type warmRec struct {
	objs      []float64
	violation float64
	aux       []float64
}

// warmIdentity keys the warm-map cache: replicate siblings share
// (backend, workload, NW, objective set) and nothing else.
func warmIdentity(c Cell) string {
	return c.Backend + "|" + c.Workload + "|" + fmt.Sprint(c.NW) + "|" + c.Objectives.String()
}

// siblingWarmSource returns a cell's warm-cache lookup (the
// core.Config.WarmSource shape). The sibling discovery is LAZY:
// replicate siblings of one identity are often claimed by cell
// workers simultaneously (replicates are the innermost enumeration
// dimension), so no sibling is completed when the cell starts — the
// lookup keeps re-scanning (throttled) until one completes mid-run,
// then serves its archive for the rest of the run. Infeasible
// genotypes are served as (objs, violation); feasible ones
// additionally carry the metric triple decoded from the sibling
// checkpoint's aux section, so result assembly resolves them without
// re-evaluating. Evaluation is deterministic and the triples
// round-trip as IEEE-754 bit patterns, which is what keeps every
// artifact byte-identical. Any read or decode problem just skips that
// sibling — the warm cache is an optimization, never a correctness
// dependency.
func (m *checkpointManager) siblingWarmSource(cell Cell) func([]byte) ([]float64, float64, []float64, bool) {
	var warm map[string]warmRec
	misses := 0
	return func(genome []byte) ([]float64, float64, []float64, bool) {
		if warm == nil {
			// Rescan every 256th miss: a handful of os.Stat calls,
			// amortized to nothing, until a sibling completes (after
			// which the scan never runs again).
			if misses%256 == 0 {
				warm = m.warmMapFor(cell)
			}
			misses++
			if warm == nil {
				return nil, 0, nil, false
			}
		}
		rec, ok := warm[string(genome)]
		if !ok {
			return nil, 0, nil, false
		}
		warmHitsTotal.Add(1)
		if rec.violation == 0 {
			warmFeasibleHitsTotal.Add(1)
		}
		// The engine and the problem layer intern what they retain
		// (the objs vector into the engine's arena, the aux triple into
		// a Metrics value), so the shared decoded map can be served by
		// reference — no per-hit detach copies, and cells warming from
		// one sibling still stay independent.
		return rec.objs, rec.violation, rec.aux, true
	}
}

// warmMapFor returns the warm map of cell's identity group, decoding
// the first completed sibling's retained checkpoint at most once per
// identity across the whole campaign (cells of one group share the
// decoded map read-only). Returns nil when no usable sibling exists
// yet.
func (m *checkpointManager) warmMapFor(cell Cell) map[string]warmRec {
	key := warmIdentity(cell)
	m.warmMu.Lock()
	if w, ok := m.warmMaps[key]; ok {
		m.warmMu.Unlock()
		return w
	}
	m.warmMu.Unlock()
	for _, sib := range m.cells {
		if sib.Index == cell.Index || warmIdentity(sib) != key {
			continue
		}
		if _, err := os.Stat(m.donePath(sib)); err != nil {
			continue
		}
		payload, ok, err := m.loadCellCheckpoint(sib)
		if err != nil || !ok {
			continue
		}
		arch, err := nsga2.ReadCheckpointArchive(bytes.NewReader(payload))
		if err != nil {
			continue
		}
		warm := make(map[string]warmRec, len(arch.Entries))
		for _, ent := range arch.Entries {
			switch {
			case ent.Violation > 0:
				warm[string(ent.Genome)] = warmRec{objs: ent.Objs, violation: ent.Violation}
			case len(ent.Aux) == arch.AuxDim && arch.AuxDim > 0 && !anyNaNAux(ent.Aux):
				// Feasible entries are only useful with their complete
				// metric triple: the problem layer rejects a feasible
				// warm answer without one, so an incomplete entry
				// (possible only in a hand-built stream) is dropped
				// here and evaluated normally.
				warm[string(ent.Genome)] = warmRec{objs: ent.Objs, violation: ent.Violation, aux: ent.Aux}
			}
		}
		if len(warm) == 0 {
			continue
		}
		// First decode stored wins; a racing worker that decoded a
		// different sibling adopts the stored one (results are
		// identical either way — the warm cache only changes speed).
		m.warmMu.Lock()
		if m.warmMaps == nil {
			m.warmMaps = make(map[string]map[string]warmRec)
		}
		if w, ok := m.warmMaps[key]; ok {
			warm = w
		} else {
			m.warmMaps[key] = warm
		}
		m.warmMu.Unlock()
		return warm
	}
	return nil
}

// anyNaNAux reports whether an aux payload is incomplete (NaN marks a
// value the writing run never filled in).
func anyNaNAux(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// loadCellCheckpoint returns the embedded engine checkpoint of c's
// in-flight snapshot, if one exists.
func (m *checkpointManager) loadCellCheckpoint(c Cell) ([]byte, bool, error) {
	raw, err := os.ReadFile(m.ckptPath(c))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("expt: resume cell %d: %w", c.Index, err)
	}
	payload, err := decodeCellCkpt(c, raw)
	if err != nil {
		return nil, false, fmt.Errorf("expt: resume: %w", err)
	}
	return payload, true, nil
}

// writeCellCheckpoint atomically snapshots an in-flight cell and
// accounts the write toward the crash-test stop. The snapshot bytes
// come from encodeCellCkpt — the same encoder a distributed worker
// streams snapshots through.
func (m *checkpointManager) writeCellCheckpoint(c Cell, x *core.Explorer) error {
	raw, err := encodeCellCkpt(c, x)
	if err != nil {
		return fmt.Errorf("expt: checkpoint cell %d: %w", c.Index, err)
	}
	if err := atomicWriteFile(m.ckptPath(c), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("expt: checkpoint cell %d: %w", c.Index, err)
	}
	m.mu.Lock()
	m.written++
	if m.crashAfter > 0 && m.written >= m.crashAfter {
		m.stopped = true
	}
	m.mu.Unlock()
	return nil
}

// stopRequested reports whether the crash-test stop has tripped.
func (m *checkpointManager) stopRequested() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stopped
}

// atomicWriteFile writes via tmp+fsync+rename, so the destination
// path only ever holds a complete file.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is only durable once the directory entry itself is
	// flushed: sync the parent, or a machine-level stop (the exact
	// event checkpoints exist for) could roll the directory back to a
	// state without the file despite the data blocks being on disk.
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
