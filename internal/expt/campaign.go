package expt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nsga2"
	"repro/internal/sim"
)

// This file implements the campaign layer: large multi-cell
// experiment sweeps over (comb size x objective set x workload x
// replicate seed), fanned out across a bounded pool of cell workers.
// Cells are completely independent GA runs, so the fan-out scales
// near-linearly with worker count; per-cell seeds derive from the
// cell's identity (not from execution order), so a parallel campaign
// is bit-for-bit identical to a serial one and the JSON/CSV artifacts
// are byte-stable.

// Workload names an application/mapping pair a campaign cell runs
// on. The zero App/Mapping means the paper's virtual application with
// its design-time mapping.
type Workload struct {
	Name    string
	App     *graph.TaskGraph
	Mapping graph.Mapping
}

// PaperWorkload is the paper's 6-task virtual application.
func PaperWorkload() Workload { return Workload{Name: "paper"} }

// NamedWorkload resolves a workload spec into a deterministic
// workload mapped onto the 16-core platform: "paper", "chain<N>",
// "forkjoin<W>", "fft<N>", "gauss<N>" or "diamond<N>". Generated
// graphs draw volumes and execution times from the default generator
// configuration with a PRNG seeded by the spec string, so the same
// name always denotes the same workload.
//
// Workloads with at most 16 tasks keep the paper's injective random
// mapping; larger ones (chain64, fft64, gauss8, ...) get a
// load-balanced shared-core mapping, which the core-serialized time
// model and the simulator handle end to end.
func NamedWorkload(spec string) (Workload, error) {
	if spec == "paper" {
		return PaperWorkload(), nil
	}
	kind := strings.TrimRight(spec, "0123456789")
	if kind == spec || kind == "" {
		return Workload{}, fmt.Errorf("expt: unknown workload %q (want paper, chain<N>, forkjoin<W>, fft<N>, gauss<N> or diamond<N>)", spec)
	}
	n, err := strconv.Atoi(spec[len(kind):])
	if err != nil || n < 1 {
		return Workload{}, fmt.Errorf("expt: workload %q: size must be >= 1 (shared-core mappings support more than %d tasks)", spec, PlatformCores)
	}
	h := fnv.New64a()
	io.WriteString(h, spec)
	rng := rand.New(rand.NewSource(int64(h.Sum64() & math.MaxInt64)))
	cfg := graph.DefaultGenConfig()
	var g *graph.TaskGraph
	switch kind {
	case "chain":
		g, err = graph.Chain(rng, n, cfg)
	case "forkjoin":
		g, err = graph.ForkJoin(rng, n, cfg)
	case "fft":
		g, err = graph.FFT(rng, n, cfg)
	case "gauss":
		g, err = graph.GaussianElimination(rng, n, cfg)
	case "diamond":
		g, err = graph.Diamond(rng, n, cfg)
	default:
		return Workload{}, fmt.Errorf("expt: unknown workload kind %q in %q", kind, spec)
	}
	if err != nil {
		return Workload{}, fmt.Errorf("expt: workload %q: %w", spec, err)
	}
	// Small graphs keep the historical injective mapping (existing
	// specs stay bit-identical); larger graphs share cores.
	var m graph.Mapping
	if g.NumTasks() <= PlatformCores {
		m, err = graph.RandomMapping(rng, g, PlatformCores)
	} else {
		m, err = graph.SharedRandomMapping(rng, g, PlatformCores)
	}
	if err != nil {
		return Workload{}, fmt.Errorf("expt: workload %q: %w", spec, err)
	}
	return Workload{Name: spec, App: g, Mapping: m}, nil
}

// PlatformCores is the ONI count of the paper's 4x4 platform, the
// target of generated workload mappings.
const PlatformCores = 16

// CampaignConfig spans one experiment campaign. Zero fields default
// to the paper's evaluation setup with one replicate of the paper
// workload per comb size.
type CampaignConfig struct {
	// NWs lists the comb sizes to sweep (default 4, 8, 12).
	NWs []int
	// ObjectiveSets lists the GA criteria combinations (default the
	// 3-objective paper run).
	ObjectiveSets []core.ObjectiveSet
	// Workloads lists the applications (default the paper's).
	Workloads []Workload
	// Replicates is the number of independent GA seeds per
	// (NW, objectives, workload) combination (default 1).
	Replicates int
	// Pop and Generations configure the GA of every cell.
	Pop, Generations int
	// Seed is the campaign master seed; each cell derives its own
	// seed from (Seed, cell identity) so results do not depend on
	// execution order.
	Seed int64
	// WarmStart seeds every cell's GA with the heuristic allocations.
	WarmStart bool
	// CellWorkers bounds the number of cells in flight (default 1 =
	// serial). Cells are independent, so throughput scales
	// near-linearly until the machine is saturated.
	CellWorkers int
	// EvalWorkers parallelizes chromosome evaluation inside each cell
	// (nsga2.Config.Workers). Prefer CellWorkers for big campaigns:
	// whole-cell parallelism has no sequential remainder.
	EvalWorkers int
	// Progress, when non-nil, observes cell starts and completions.
	// Events are delivered serially.
	Progress func(CellEvent)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.NWs) == 0 {
		c.NWs = []int{4, 8, 12}
	}
	if len(c.ObjectiveSets) == 0 {
		c.ObjectiveSets = []core.ObjectiveSet{core.TimeEnergyBER}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []Workload{PaperWorkload()}
	}
	if c.Replicates <= 0 {
		c.Replicates = 1
	}
	if c.Pop == 0 {
		c.Pop = PaperGAPopulation
	}
	if c.Generations == 0 {
		c.Generations = PaperGAGenerations
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.CellWorkers <= 0 {
		c.CellWorkers = 1
	}
	return c
}

// Cell identifies one campaign experiment.
type Cell struct {
	// Index is the cell's position in the campaign's deterministic
	// enumeration order.
	Index int
	// NW is the comb size.
	NW int
	// Objectives selects the GA criteria.
	Objectives core.ObjectiveSet
	// Workload names the application (resolved through the campaign's
	// workload list).
	Workload string
	// Replicate numbers the independent repetition (0-based).
	Replicate int
	// Seed is the cell's derived GA seed.
	Seed int64
}

// String renders the cell for progress lines.
func (c Cell) String() string {
	return fmt.Sprintf("NW=%d obj=%s workload=%s rep=%d", c.NW, c.Objectives, c.Workload, c.Replicate)
}

// cellSeed derives a cell's GA seed from the campaign seed and the
// cell's identity alone. FNV-1a keeps nearby cells decorrelated; the
// sign bit is cleared so seeds read naturally in reports.
func cellSeed(base int64, nw int, objs core.ObjectiveSet, workload string, replicate int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%s|%d", base, nw, int(objs), workload, replicate)
	return int64(h.Sum64() & math.MaxInt64)
}

// Cells enumerates the campaign's cells in deterministic order:
// workload-major, then objective set, then NW, then replicate.
func (c CampaignConfig) Cells() []Cell {
	c = c.withDefaults()
	var cells []Cell
	for _, wl := range c.Workloads {
		for _, objs := range c.ObjectiveSets {
			for _, nw := range c.NWs {
				for rep := 0; rep < c.Replicates; rep++ {
					cells = append(cells, Cell{
						Index:      len(cells),
						NW:         nw,
						Objectives: objs,
						Workload:   wl.Name,
						Replicate:  rep,
						Seed:       cellSeed(c.Seed, nw, objs, wl.Name, rep),
					})
				}
			}
		}
	}
	return cells
}

// CellEvent is one structured progress notification.
type CellEvent struct {
	Cell Cell
	// Done is false for the start notification, true on completion.
	Done bool
	// Err is the cell's failure, if any (only with Done).
	Err error
	// Elapsed is the cell's wall time (only with Done).
	Elapsed time.Duration
	// Completed and Total count finished cells and the campaign size.
	Completed, Total int
}

// CellResult pairs a cell with its exploration outcome. Elapsed is
// informational and excluded from the serialized artifacts, which
// must be byte-identical across serial and parallel runs.
type CellResult struct {
	Cell    Cell
	Result  *core.Result
	Err     error
	Elapsed time.Duration
	// SimChecked counts the distinct projected-front genomes that were
	// cross-run on the cycle-resolution simulator; SimViolations sums
	// their occupancy double-bookings ((segment, channel) and core).
	// Any nonzero SimViolations means the analytic validity rule and
	// the simulator disagree — a model bug, not a workload property.
	SimChecked    int
	SimViolations int
	// SimBracketMisses counts genomes whose integer makespan fell
	// outside the expected analytic bracket. The bracket allows one
	// ceiling per task and communication plus one task execution (an
	// integer-rounding tie on a shared core may dispatch same-core
	// tasks in a different order than the fractional model), so a miss
	// flags a scheduling disagreement worth investigating rather than
	// a hard invariant breach.
	SimBracketMisses int
}

// Campaign is the outcome of one campaign run.
type Campaign struct {
	Cfg   CampaignConfig
	Cells []CellResult
	// Elapsed is the campaign wall time (informational).
	Elapsed time.Duration
}

// Failed counts cells that ended in error.
func (c *Campaign) Failed() int {
	n := 0
	for _, cr := range c.Cells {
		if cr.Err != nil {
			n++
		}
	}
	return n
}

// RunCampaign executes every cell across a bounded worker pool. The
// result (and its JSON/CSV artifacts) is bit-for-bit independent of
// CellWorkers; only the wall time changes. Individual cell failures
// do not abort the campaign — they are recorded on the cell and
// summarized in the returned error.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg = cfg.withDefaults()
	byName := make(map[string]Workload, len(cfg.Workloads))
	for _, wl := range cfg.Workloads {
		if wl.Name == "" {
			return nil, fmt.Errorf("expt: campaign workload with empty name")
		}
		if _, dup := byName[wl.Name]; dup {
			return nil, fmt.Errorf("expt: duplicate campaign workload %q", wl.Name)
		}
		byName[wl.Name] = wl
	}
	// Duplicate axis entries would enumerate bit-identical cells
	// (identical identity tuples, therefore identical seeds) counted
	// as independent results — reject them like duplicate workloads.
	seenNW := make(map[int]bool, len(cfg.NWs))
	for _, nw := range cfg.NWs {
		if seenNW[nw] {
			return nil, fmt.Errorf("expt: duplicate campaign comb size %d", nw)
		}
		seenNW[nw] = true
	}
	seenObjs := make(map[core.ObjectiveSet]bool, len(cfg.ObjectiveSets))
	for _, objs := range cfg.ObjectiveSets {
		if seenObjs[objs] {
			return nil, fmt.Errorf("expt: duplicate campaign objective set %s", objs)
		}
		seenObjs[objs] = true
	}
	cells := cfg.Cells()
	results := make([]CellResult, len(cells))

	// Build one shared evaluation instance per (workload, NW) pair up
	// front: instances are read-only during evaluation, so every
	// replicate and objective-set cell of a pair reuses the same
	// precomputed routes, overlap matrix and conflict-neighbor lists.
	// A failed build surfaces as the owning cells' error, exactly as
	// a per-cell core.New failure used to.
	instances := make(map[string]sharedInstance, len(cfg.Workloads)*len(cfg.NWs))
	for _, wl := range cfg.Workloads {
		for _, nw := range cfg.NWs {
			in, err := core.NewSharedInstance(core.Config{NW: nw, App: wl.App, Mapping: wl.Mapping})
			instances[instanceKey(wl.Name, nw)] = sharedInstance{in: in, err: err}
		}
	}

	// progressMu serializes event delivery AND the completed counter,
	// so the Completed values seen by the consumer are monotone in
	// delivery order.
	var progressMu sync.Mutex
	completed := 0
	notifyStart := func(cell Cell) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		cfg.Progress(CellEvent{Cell: cell, Completed: completed, Total: len(cells)})
		progressMu.Unlock()
	}
	notifyDone := func(cell Cell, r CellResult) {
		progressMu.Lock()
		completed++
		if cfg.Progress != nil {
			cfg.Progress(CellEvent{Cell: cell, Done: true, Err: r.Err,
				Elapsed: r.Elapsed, Completed: completed, Total: len(cells)})
		}
		progressMu.Unlock()
	}

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := cfg.CellWorkers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				cell := cells[i]
				notifyStart(cell)
				results[i] = runCell(cfg, instances[instanceKey(cell.Workload, cell.NW)], cell)
				notifyDone(cell, results[i])
			}
		}()
	}
	wg.Wait()

	camp := &Campaign{Cfg: cfg, Cells: results, Elapsed: time.Since(start)}
	if n := camp.Failed(); n > 0 {
		return camp, fmt.Errorf("expt: %d of %d campaign cells failed (first: %v)", n, len(cells), firstErr(results))
	}
	return camp, nil
}

func firstErr(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("cell %d (%s): %w", r.Cell.Index, r.Cell, r.Err)
		}
	}
	return nil
}

// sharedInstance pairs a prebuilt per-(workload, NW) evaluation
// instance with its construction error, if any.
type sharedInstance struct {
	in  *alloc.Instance
	err error
}

func instanceKey(workload string, nw int) string {
	return workload + "|" + strconv.Itoa(nw)
}

// runCell executes one exploration with the cell's derived seed on
// the pair's shared read-only instance, then cross-checks the
// projected fronts on the simulator.
func runCell(cfg CampaignConfig, si sharedInstance, cell Cell) CellResult {
	t0 := time.Now()
	if si.err != nil {
		return CellResult{Cell: cell, Err: si.err, Elapsed: time.Since(t0)}
	}
	p, err := core.New(core.Config{
		NW:         cell.NW,
		Instance:   si.in,
		Objectives: cell.Objectives,
		WarmStart:  cfg.WarmStart,
		GA: nsga2.Config{
			PopSize:     cfg.Pop,
			Generations: cfg.Generations,
			Seed:        cell.Seed,
			Workers:     cfg.EvalWorkers,
		},
	})
	if err != nil {
		return CellResult{Cell: cell, Err: err, Elapsed: time.Since(t0)}
	}
	res, err := p.Optimize()
	cr := CellResult{Cell: cell, Result: res, Err: err}
	if err == nil && res != nil {
		cr.SimChecked, cr.SimViolations, cr.SimBracketMisses, cr.Err = simCheck(p.Instance(), res)
	}
	cr.Elapsed = time.Since(t0)
	return cr
}

// simCheck runs every distinct projected-front genome of a cell
// through the cycle-resolution simulator. Occupancy double-bookings
// ((segment, channel) and core) are violations — the hard invariant.
// An integer makespan outside [analytic − ε, analytic + one ceiling
// per task and communication + one maximal task execution] counts
// separately as a bracket miss: on shared cores an integer-rounding
// tie can reorder same-core dispatch against the fractional model, so
// the looser bound keeps a correct model/simulator pair at zero.
func simCheck(in *alloc.Instance, res *core.Result) (checked, violations, bracketMisses int, err error) {
	var maxExec float64
	for _, t := range in.App.Tasks {
		if t.ExecCycles > maxExec {
			maxExec = t.ExecCycles
		}
	}
	slack := float64(in.App.NumTasks()+in.Edges()+1) + maxExec
	seen := make(map[string]bool)
	for _, front := range [][]core.Solution{res.FrontTimeEnergy, res.FrontTimeBER} {
		for _, sol := range front {
			key := sol.Genome.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			r, serr := sim.Run(in, sol.Genome, sim.Options{})
			if serr != nil {
				return checked, violations, bracketMisses, fmt.Errorf("sim cross-check: %w", serr)
			}
			checked++
			violations += len(r.Violations)
			simT := float64(r.MakespanCycles)
			analytic := sol.TimeKCC * 1000
			if simT < analytic-maxExec-1e-6 || simT > analytic+slack {
				bracketMisses++
			}
		}
	}
	return checked, violations, bracketMisses, nil
}

// ---- artifacts ----

// campaignJSON is the stable JSON artifact schema. It holds only
// deterministic data (no timestamps, no durations), so the same
// campaign configuration always produces byte-identical artifacts —
// diffable and cacheable.
type campaignJSON struct {
	Schema        string     `json:"schema"`
	NWs           []int      `json:"nws"`
	ObjectiveSets []string   `json:"objective_sets"`
	Workloads     []string   `json:"workloads"`
	Replicates    int        `json:"replicates"`
	Pop           int        `json:"pop"`
	Generations   int        `json:"generations"`
	Seed          int64      `json:"seed"`
	WarmStart     bool       `json:"warm_start,omitempty"`
	Cells         []cellJSON `json:"cells"`
}

type cellJSON struct {
	Index             int         `json:"index"`
	NW                int         `json:"nw"`
	Objectives        string      `json:"objectives"`
	Workload          string      `json:"workload"`
	Replicate         int         `json:"replicate"`
	Seed              int64       `json:"seed"`
	Error             string      `json:"error,omitempty"`
	Evaluations       int         `json:"evaluations"`
	ValidEvaluations  int         `json:"valid_evaluations"`
	DistinctEvaluated int         `json:"distinct_evaluated"`
	DistinctValid     int         `json:"distinct_valid"`
	SimChecked        int         `json:"sim_checked"`
	SimViolations     int         `json:"sim_violations"`
	SimBracketMisses  int         `json:"sim_bracket_misses"`
	BestTimeKCC       *float64    `json:"best_time_kcc,omitempty"`
	MinEnergyFJ       *float64    `json:"min_energy_fj,omitempty"`
	FrontTimeEnergy   []pointJSON `json:"front_time_energy,omitempty"`
	FrontTimeBER      []pointJSON `json:"front_time_ber,omitempty"`
}

type pointJSON struct {
	TimeKCC     float64 `json:"time_kcc"`
	BitEnergyFJ float64 `json:"bit_energy_fj"`
	MeanBER     float64 `json:"mean_ber"`
	Counts      []int   `json:"counts"`
}

func points(sols []core.Solution) []pointJSON {
	out := make([]pointJSON, 0, len(sols))
	for _, s := range sols {
		out = append(out, pointJSON{
			TimeKCC:     s.TimeKCC,
			BitEnergyFJ: s.BitEnergyFJ,
			MeanBER:     s.MeanBER,
			Counts:      s.Counts,
		})
	}
	return out
}

// WriteCampaignJSON serializes the campaign artifact. The bytes are
// deterministic: independent of CellWorkers, EvalWorkers and wall
// time.
func WriteCampaignJSON(w io.Writer, c *Campaign) error {
	cfg := c.Cfg.withDefaults()
	doc := campaignJSON{
		Schema:      "wadate-campaign/v1",
		NWs:         cfg.NWs,
		Replicates:  cfg.Replicates,
		Pop:         cfg.Pop,
		Generations: cfg.Generations,
		Seed:        cfg.Seed,
		WarmStart:   cfg.WarmStart,
	}
	for _, os := range cfg.ObjectiveSets {
		doc.ObjectiveSets = append(doc.ObjectiveSets, os.String())
	}
	for _, wl := range cfg.Workloads {
		doc.Workloads = append(doc.Workloads, wl.Name)
	}
	for _, cr := range c.Cells {
		cj := cellJSON{
			Index:      cr.Cell.Index,
			NW:         cr.Cell.NW,
			Objectives: cr.Cell.Objectives.String(),
			Workload:   cr.Cell.Workload,
			Replicate:  cr.Cell.Replicate,
			Seed:       cr.Cell.Seed,
		}
		if cr.Err != nil {
			cj.Error = cr.Err.Error()
		}
		cj.SimChecked = cr.SimChecked
		cj.SimViolations = cr.SimViolations
		cj.SimBracketMisses = cr.SimBracketMisses
		if res := cr.Result; res != nil {
			cj.Evaluations = res.Evaluations
			cj.ValidEvaluations = res.ValidEvaluations
			cj.DistinctEvaluated = res.DistinctEvaluated
			cj.DistinctValid = res.DistinctValid
			if best := res.BestTimeKCC(); !math.IsInf(best, 1) {
				cj.BestTimeKCC = &best
			}
			if sol, ok := res.MinEnergySolution(); ok {
				cj.MinEnergyFJ = &sol.BitEnergyFJ
			}
			cj.FrontTimeEnergy = points(res.FrontTimeEnergy)
			cj.FrontTimeBER = points(res.FrontTimeBER)
		}
		doc.Cells = append(doc.Cells, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCampaignCSV emits one row per front point per cell, a flat
// table external plotting tools slice by (workload, objectives, nw).
// Like the JSON artifact, the bytes are deterministic.
func WriteCampaignCSV(w io.Writer, c *Campaign) error {
	cw := newCampaignCSV(w)
	for _, cr := range c.Cells {
		if cr.Result == nil {
			continue
		}
		if err := cw.writeFront(cr.Cell, "front_time_energy", cr.Result.FrontTimeEnergy); err != nil {
			return err
		}
		if err := cw.writeFront(cr.Cell, "front_time_ber", cr.Result.FrontTimeBER); err != nil {
			return err
		}
	}
	return cw.flush()
}

// CampaignSummary renders the per-cell outcome table for the
// terminal.
func CampaignSummary(c *Campaign) string {
	headers := []string{"cell", "workload", "objectives", "NW", "rep", "evals", "valid", "best t (k-cc)", "min E (fJ/bit)", "|front TE|", "|front TB|", "sim viol", "wall"}
	var rows [][]string
	for _, cr := range c.Cells {
		row := []string{
			strconv.Itoa(cr.Cell.Index),
			cr.Cell.Workload,
			cr.Cell.Objectives.String(),
			strconv.Itoa(cr.Cell.NW),
			strconv.Itoa(cr.Cell.Replicate),
		}
		if cr.Err != nil {
			row = append(row, "error: "+cr.Err.Error(), "", "", "", "", "", "", cr.Elapsed.Round(time.Millisecond).String())
		} else if cr.Result != nil {
			best := "-"
			if bt := cr.Result.BestTimeKCC(); !math.IsInf(bt, 1) {
				best = fmt.Sprintf("%.2f", bt)
			}
			minE := "-"
			if sol, ok := cr.Result.MinEnergySolution(); ok {
				minE = fmt.Sprintf("%.2f", sol.BitEnergyFJ)
			}
			row = append(row,
				strconv.Itoa(cr.Result.Evaluations),
				strconv.Itoa(cr.Result.ValidEvaluations),
				best,
				minE,
				strconv.Itoa(len(cr.Result.FrontTimeEnergy)),
				strconv.Itoa(len(cr.Result.FrontTimeBER)),
				fmt.Sprintf("%d/%d", cr.SimViolations, cr.SimChecked),
				cr.Elapsed.Round(time.Millisecond).String(),
			)
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign: %d cells, %d failed, wall %s\n\n",
		len(c.Cells), c.Failed(), c.Elapsed.Round(time.Millisecond))
	sb.WriteString(Table(headers, rows))
	return sb.String()
}
