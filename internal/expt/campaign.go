package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nsga2"
	"repro/internal/sim"
)

// This file implements the campaign layer: large multi-cell
// experiment sweeps over (backend x comb size x objective set x
// workload x replicate seed), fanned out across a bounded pool of
// cell workers.
// Cells are completely independent GA runs, so the fan-out scales
// near-linearly with worker count; per-cell seeds derive from the
// cell's identity (not from execution order), so a parallel campaign
// is bit-for-bit identical to a serial one and the JSON/CSV artifacts
// are byte-stable.

// Workload names an application/mapping pair a campaign cell runs
// on. The zero App/Mapping means the paper's virtual application with
// its design-time mapping.
type Workload struct {
	Name    string
	App     *graph.TaskGraph
	Mapping graph.Mapping
}

// PaperWorkload is the paper's 6-task virtual application.
func PaperWorkload() Workload { return Workload{Name: "paper"} }

// NamedWorkload resolves a workload spec into a deterministic
// workload mapped onto the 16-core platform: "paper", "chain<N>",
// "forkjoin<W>", "fft<N>", "gauss<N>" or "diamond<N>". Generated
// graphs draw volumes and execution times from the default generator
// configuration with a PRNG seeded by the spec string, so the same
// name always denotes the same workload.
//
// Workloads with at most 16 tasks keep the paper's injective random
// mapping; larger ones (chain64, fft64, gauss8, ...) get a
// load-balanced shared-core mapping, which the core-serialized time
// model and the simulator handle end to end.
func NamedWorkload(spec string) (Workload, error) {
	if spec == "paper" {
		return PaperWorkload(), nil
	}
	kind := strings.TrimRight(spec, "0123456789")
	if kind == spec || kind == "" {
		return Workload{}, fmt.Errorf("expt: unknown workload %q (want paper, chain<N>, forkjoin<W>, fft<N>, gauss<N> or diamond<N>)", spec)
	}
	n, err := strconv.Atoi(spec[len(kind):])
	if err != nil || n < 1 {
		return Workload{}, fmt.Errorf("expt: workload %q: size must be >= 1 (shared-core mappings support more than %d tasks)", spec, PlatformCores)
	}
	h := fnv.New64a()
	io.WriteString(h, spec)
	rng := rand.New(rand.NewSource(int64(h.Sum64() & math.MaxInt64)))
	cfg := graph.DefaultGenConfig()
	var g *graph.TaskGraph
	switch kind {
	case "chain":
		g, err = graph.Chain(rng, n, cfg)
	case "forkjoin":
		g, err = graph.ForkJoin(rng, n, cfg)
	case "fft":
		g, err = graph.FFT(rng, n, cfg)
	case "gauss":
		g, err = graph.GaussianElimination(rng, n, cfg)
	case "diamond":
		g, err = graph.Diamond(rng, n, cfg)
	default:
		return Workload{}, fmt.Errorf("expt: unknown workload kind %q in %q", kind, spec)
	}
	if err != nil {
		return Workload{}, fmt.Errorf("expt: workload %q: %w", spec, err)
	}
	// Small graphs keep the historical injective mapping (existing
	// specs stay bit-identical); larger graphs share cores.
	var m graph.Mapping
	if g.NumTasks() <= PlatformCores {
		m, err = graph.RandomMapping(rng, g, PlatformCores)
	} else {
		m, err = graph.SharedRandomMapping(rng, g, PlatformCores)
	}
	if err != nil {
		return Workload{}, fmt.Errorf("expt: workload %q: %w", spec, err)
	}
	return Workload{Name: spec, App: g, Mapping: m}, nil
}

// PlatformCores is the ONI count of the paper's 4x4 platform, the
// target of generated workload mappings.
const PlatformCores = 16

// CampaignConfig spans one experiment campaign. Zero fields default
// to the paper's evaluation setup with one replicate of the paper
// workload per comb size.
type CampaignConfig struct {
	// Backends lists the optical fabric backends to sweep (default
	// just "ring", the paper's platform). Adding "crossbar" makes the
	// campaign compare ring and multi-layer crossbar Pareto fronts on
	// otherwise identical cells. Ring-only campaigns keep their
	// historical artifacts and seeds byte-for-byte.
	Backends []string
	// NWs lists the comb sizes to sweep (default 4, 8, 12).
	NWs []int
	// ObjectiveSets lists the GA criteria combinations (default the
	// 3-objective paper run).
	ObjectiveSets []core.ObjectiveSet
	// Workloads lists the applications (default the paper's).
	Workloads []Workload
	// Replicates is the number of independent GA seeds per
	// (NW, objectives, workload) combination (default 1).
	Replicates int
	// Pop and Generations configure the GA of every cell.
	Pop, Generations int
	// Seed is the campaign master seed; each cell derives its own
	// seed from (Seed, cell identity) so results do not depend on
	// execution order.
	Seed int64
	// WarmStart seeds every cell's GA with the heuristic allocations.
	WarmStart bool
	// CellWorkers bounds the number of cells in flight (default 1 =
	// serial). Cells are independent, so throughput scales
	// near-linearly until the machine is saturated.
	CellWorkers int
	// EvalWorkers parallelizes chromosome evaluation inside each cell
	// (nsga2.Config.Workers). Prefer CellWorkers for big campaigns:
	// whole-cell parallelism has no sequential remainder.
	EvalWorkers int
	// Progress, when non-nil, observes cell starts and completions.
	// Events are delivered serially.
	Progress func(CellEvent)

	// CheckpointDir, when set, makes the campaign durable: a manifest
	// plus per-cell completion records and in-flight engine snapshots
	// are maintained in the directory (atomic tmp+rename writes), so a
	// killed campaign resumes where it stopped — mid-cell, not just at
	// cell granularity. See checkpoint.go for the on-disk layout.
	CheckpointDir string
	// CheckpointEvery is the in-flight snapshot cadence in
	// generations (default DefaultCheckpointEvery when checkpointing).
	CheckpointEvery int
	// Resume continues the campaign recorded in CheckpointDir:
	// completed cells are restored from their records, in-flight cells
	// resume their GA mid-run, untouched cells run from scratch. The
	// resumed campaign's JSON/CSV artifacts are byte-identical to an
	// uninterrupted run's. The directory's manifest must match this
	// configuration exactly; a mismatch is an error.
	Resume bool
	// StopAfterCheckpoints > 0 stops the campaign ungracefully after
	// that many checkpoint writes (RunCampaign returns
	// ErrCampaignStopped): the deterministic preemption simulator
	// behind the CI resume-equivalence job. Requires CheckpointDir.
	StopAfterCheckpoints int
	// WarmCacheSiblings (requires CheckpointDir) retains each
	// completed cell's final .ckpt and seeds later cells of the same
	// (workload, NW, objective-set) identity — the replicate siblings
	// — with the sibling's evaluated genotypes, decoded from the
	// checkpoint's cache section. Evaluation is deterministic, so a
	// warm hit returns exactly what re-evaluating would; feasible
	// genotypes carry their metric triple in the checkpoint's aux
	// section, so result assembly resolves them without re-running the
	// kernel either, and every artifact stays byte-identical. The flag
	// is not part of the campaign identity: a checkpoint directory can
	// be resumed with it on or off.
	WarmCacheSiblings bool
	// Stats records each cell's engine instrumentation (evaluation-
	// path split, cache/warm hits, dominance comparisons) in the JSON
	// artifact and completion records. Opt-in because the counters
	// depend on worker scheduling and warm-cache timing: with Stats
	// on, artifacts are no longer byte-identical across runs — only
	// the result data still is. Part of the campaign identity when
	// checkpointing (restored cells must carry the same fields).
	Stats bool
	// Islands > 1 runs every cell's GA as an island model: the
	// population splits into that many independent engines that
	// exchange their best genomes on a ring every MigrationEvery
	// generations (see core.IslandSpec). Results differ from the
	// single-engine run but are reproducible for a given (seed,
	// islands, interval, top-k) — the fields join the campaign
	// identity when checkpointing. Island cells carry no mid-cell
	// snapshots: a resume re-runs an interrupted island cell from
	// scratch (completed cells still restore from their records).
	Islands int
	// MigrationEvery is the island migration period in generations
	// (default core.DefaultMigrationInterval). Requires Islands > 1.
	MigrationEvery int
	// MigrationK is the number of emigrant genomes per island per
	// migration (default core.DefaultMigrationTopK). Requires
	// Islands > 1.
	MigrationK int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Backends) == 0 {
		c.Backends = []string{core.DefaultBackend}
	}
	if len(c.NWs) == 0 {
		c.NWs = []int{4, 8, 12}
	}
	if len(c.ObjectiveSets) == 0 {
		c.ObjectiveSets = []core.ObjectiveSet{core.TimeEnergyBER}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []Workload{PaperWorkload()}
	}
	if c.Replicates <= 0 {
		c.Replicates = 1
	}
	if c.Pop == 0 {
		c.Pop = PaperGAPopulation
	}
	if c.Generations == 0 {
		c.Generations = PaperGAGenerations
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.CellWorkers <= 0 {
		c.CellWorkers = 1
	}
	if c.CheckpointDir != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.Islands > 1 {
		if c.MigrationEvery <= 0 {
			c.MigrationEvery = core.DefaultMigrationInterval
		}
		if c.MigrationK <= 0 {
			c.MigrationK = core.DefaultMigrationTopK
		}
	}
	return c
}

// islandSpec renders the campaign's island parameters for the core
// driver; the zero value (no island mode) maps to a 1-island spec.
func (c CampaignConfig) islandSpec() core.IslandSpec {
	n := c.Islands
	if n < 1 {
		n = 1
	}
	return core.IslandSpec{Islands: n, Interval: c.MigrationEvery, TopK: c.MigrationK}
}

// Cell identifies one campaign experiment.
type Cell struct {
	// Index is the cell's position in the campaign's deterministic
	// enumeration order.
	Index int
	// Backend names the optical fabric the cell runs on ("ring",
	// "crossbar").
	Backend string
	// NW is the comb size.
	NW int
	// Objectives selects the GA criteria.
	Objectives core.ObjectiveSet
	// Workload names the application (resolved through the campaign's
	// workload list).
	Workload string
	// Replicate numbers the independent repetition (0-based).
	Replicate int
	// Seed is the cell's derived GA seed.
	Seed int64
}

// String renders the cell for progress lines. The default ring
// backend keeps the historical wording; other backends are named
// explicitly.
func (c Cell) String() string {
	if c.Backend != "" && c.Backend != core.DefaultBackend {
		return fmt.Sprintf("backend=%s NW=%d obj=%s workload=%s rep=%d", c.Backend, c.NW, c.Objectives, c.Workload, c.Replicate)
	}
	return fmt.Sprintf("NW=%d obj=%s workload=%s rep=%d", c.NW, c.Objectives, c.Workload, c.Replicate)
}

// cellSeed derives a cell's GA seed from the campaign seed and the
// cell's identity alone. FNV-1a keeps nearby cells decorrelated; the
// sign bit is cleared so seeds read naturally in reports. Ring cells
// keep the historical backend-free derivation, so every pre-existing
// ring campaign reproduces bit-for-bit; other backends extend the
// identity tuple.
func cellSeed(base int64, backend string, nw int, objs core.ObjectiveSet, workload string, replicate int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%s|%d", base, nw, int(objs), workload, replicate)
	if backend != core.DefaultBackend {
		fmt.Fprintf(h, "|%s", backend)
	}
	return int64(h.Sum64() & math.MaxInt64)
}

// Cells enumerates the campaign's cells in deterministic order:
// backend-major, then workload, then objective set, then NW, then
// replicate. Backend outermost keeps a ring-only campaign's cell
// indices identical to the historical (backend-free) enumeration.
func (c CampaignConfig) Cells() []Cell {
	c = c.withDefaults()
	var cells []Cell
	for _, backend := range c.Backends {
		for _, wl := range c.Workloads {
			for _, objs := range c.ObjectiveSets {
				for _, nw := range c.NWs {
					for rep := 0; rep < c.Replicates; rep++ {
						cells = append(cells, Cell{
							Index:      len(cells),
							Backend:    backend,
							NW:         nw,
							Objectives: objs,
							Workload:   wl.Name,
							Replicate:  rep,
							Seed:       cellSeed(c.Seed, backend, nw, objs, wl.Name, rep),
						})
					}
				}
			}
		}
	}
	return cells
}

// CellEvent is one structured progress notification.
type CellEvent struct {
	Cell Cell
	// Done is false for the start notification, true on completion.
	Done bool
	// Err is the cell's failure, if any (only with Done).
	Err error
	// Elapsed is the cell's wall time (only with Done).
	Elapsed time.Duration
	// Completed and Total count finished cells and the campaign size.
	Completed, Total int
	// Restored marks a cell replayed from a checkpoint directory's
	// completion record instead of being re-explored.
	Restored bool
}

// CellResult pairs a cell with its exploration outcome. Elapsed is
// informational and excluded from the serialized artifacts, which
// must be byte-identical across serial and parallel runs.
type CellResult struct {
	Cell    Cell
	Result  *core.Result
	Err     error
	Elapsed time.Duration
	// SimChecked counts the distinct projected-front genomes that were
	// cross-run on the cycle-resolution simulator; SimViolations sums
	// their occupancy double-bookings ((segment, channel) and core).
	// Any nonzero SimViolations means the analytic validity rule and
	// the simulator disagree — a model bug, not a workload property.
	SimChecked    int
	SimViolations int
	// SimBracketMisses counts genomes whose integer makespan fell
	// outside the expected analytic bracket. The bracket allows one
	// ceiling per task and communication plus one task execution (an
	// integer-rounding tie on a shared core may dispatch same-core
	// tasks in a different order than the fractional model), so a miss
	// flags a scheduling disagreement worth investigating rather than
	// a hard invariant breach.
	SimBracketMisses int
	// restored holds a completed cell's artifact view loaded from a
	// checkpoint directory; the artifact writers consume it in place
	// of a live Result.
	restored *cellArtifact
	// stats holds the cell's instrumentation record when the campaign
	// ran with CampaignConfig.Stats.
	stats *CellStats
}

// CellStats is one cell's engine instrumentation record (see
// CampaignConfig.Stats): how each evaluation was served and how much
// dominance work ranking did.
type CellStats struct {
	// Evaluations counts genome evaluations the engine requested;
	// CacheHits the subset served by the dedup cache, WarmHits the
	// subset served by the sibling warm cache.
	Evaluations int64 `json:"evaluations"`
	CacheHits   int64 `json:"cache_hits"`
	WarmHits    int64 `json:"warm_hits"`
	// FullEvals, GeneDeltaEvals, NearDeltaEvals and CrossDeltaEvals
	// split the kernel invocations by path: full decode, single-gene
	// delta, single-parent near-delta replay, two-parent crossover
	// replay.
	FullEvals       int64 `json:"full_evals"`
	GeneDeltaEvals  int64 `json:"gene_delta_evals"`
	NearDeltaEvals  int64 `json:"near_delta_evals"`
	CrossDeltaEvals int64 `json:"cross_delta_evals"`
	// RelationsCompared counts Deb-dominance pair comparisons across
	// the run's ranking passes.
	RelationsCompared int64 `json:"relations_compared"`
}

// cellStatsOf flattens the engine's counter view into the artifact
// record.
func cellStatsOf(s nsga2.Stats) *CellStats {
	return &CellStats{
		Evaluations:       s.Evaluations,
		CacheHits:         s.CacheHits,
		WarmHits:          s.WarmHits,
		FullEvals:         s.Eval.Full,
		GeneDeltaEvals:    s.Eval.GeneDelta,
		NearDeltaEvals:    s.Eval.NearDelta,
		CrossDeltaEvals:   s.Eval.CrossDelta,
		RelationsCompared: s.RelationsCompared,
	}
}

// Stats returns the cell's instrumentation record, nil unless the
// campaign ran with CampaignConfig.Stats.
func (cr *CellResult) Stats() *CellStats {
	if cr.restored != nil {
		return cr.restored.Stats
	}
	return cr.stats
}

// Restored reports whether the cell was replayed from a checkpoint
// completion record rather than explored in this run.
func (cr *CellResult) Restored() bool { return cr.restored != nil }

// artifact renders the cell's serializable outcome view — the single
// source the JSON artifact, the CSV table, the summary table and the
// checkpoint completion record all derive from, so a restored cell is
// indistinguishable from a freshly explored one in every artifact.
func (cr *CellResult) artifact() cellArtifact {
	if cr.restored != nil {
		return *cr.restored
	}
	a := cellArtifact{
		SimChecked:       cr.SimChecked,
		SimViolations:    cr.SimViolations,
		SimBracketMisses: cr.SimBracketMisses,
	}
	a.Stats = cr.stats
	if cr.Err != nil {
		a.Error = cr.Err.Error()
	}
	if res := cr.Result; res != nil {
		a.HasResult = true
		a.Evaluations = res.Evaluations
		a.ValidEvaluations = res.ValidEvaluations
		a.DistinctEvaluated = res.DistinctEvaluated
		a.DistinctValid = res.DistinctValid
		if best := res.BestTimeKCC(); !math.IsInf(best, 1) {
			a.BestTimeKCC = &best
		}
		if sol, ok := res.MinEnergySolution(); ok {
			v := sol.BitEnergyFJ
			a.MinEnergyFJ = &v
		}
		a.FrontTimeEnergy = solutionRecs(res.FrontTimeEnergy)
		a.FrontTimeBER = solutionRecs(res.FrontTimeBER)
	}
	return a
}

// cellArtifact is the artifact-facing view of one cell's outcome:
// plain values whose floats round-trip exactly through JSON (Go
// encodes float64 at shortest-round-trip precision), which is what
// makes restored-cell artifacts byte-identical to live ones.
type cellArtifact struct {
	Error             string        `json:"error,omitempty"`
	HasResult         bool          `json:"has_result"`
	Evaluations       int           `json:"evaluations"`
	ValidEvaluations  int           `json:"valid_evaluations"`
	DistinctEvaluated int           `json:"distinct_evaluated"`
	DistinctValid     int           `json:"distinct_valid"`
	SimChecked        int           `json:"sim_checked"`
	SimViolations     int           `json:"sim_violations"`
	SimBracketMisses  int           `json:"sim_bracket_misses"`
	BestTimeKCC       *float64      `json:"best_time_kcc,omitempty"`
	MinEnergyFJ       *float64      `json:"min_energy_fj,omitempty"`
	FrontTimeEnergy   []solutionRec `json:"front_time_energy,omitempty"`
	FrontTimeBER      []solutionRec `json:"front_time_ber,omitempty"`
	Stats             *CellStats    `json:"stats,omitempty"`
}

// solutionRec is one front solution in artifact form. Unlike the JSON
// artifact's point records it carries the genome, which the CSV table
// needs and which makes completion records self-contained.
type solutionRec struct {
	TimeKCC     float64 `json:"time_kcc"`
	BitEnergyFJ float64 `json:"bit_energy_fj"`
	MeanBER     float64 `json:"mean_ber"`
	Counts      []int   `json:"counts"`
	Genome      string  `json:"genome"`
}

func solutionRecs(sols []core.Solution) []solutionRec {
	out := make([]solutionRec, 0, len(sols))
	for _, s := range sols {
		out = append(out, solutionRec{
			TimeKCC:     s.TimeKCC,
			BitEnergyFJ: s.BitEnergyFJ,
			MeanBER:     s.MeanBER,
			Counts:      s.Counts,
			Genome:      s.Genome.String(),
		})
	}
	return out
}

// Campaign is the outcome of one campaign run.
type Campaign struct {
	Cfg   CampaignConfig
	Cells []CellResult
	// Elapsed is the campaign wall time (informational).
	Elapsed time.Duration
}

// Failed counts cells that ended in error.
func (c *Campaign) Failed() int {
	n := 0
	for _, cr := range c.Cells {
		if cr.Err != nil {
			n++
		}
	}
	return n
}

// RunCampaign executes every cell across a bounded worker pool. The
// result (and its JSON/CSV artifacts) is bit-for-bit independent of
// CellWorkers; only the wall time changes. Individual cell failures
// do not abort the campaign — they are recorded on the cell and
// summarized in the returned error.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg = cfg.withDefaults()
	byName := make(map[string]Workload, len(cfg.Workloads))
	for _, wl := range cfg.Workloads {
		if wl.Name == "" {
			return nil, fmt.Errorf("expt: campaign workload with empty name")
		}
		if _, dup := byName[wl.Name]; dup {
			return nil, fmt.Errorf("expt: duplicate campaign workload %q", wl.Name)
		}
		byName[wl.Name] = wl
	}
	// Backend names must be known up front: a typo'd backend would
	// otherwise surface as every owning cell failing individually.
	known := make(map[string]bool, len(core.Backends()))
	for _, b := range core.Backends() {
		known[b] = true
	}
	seenBackend := make(map[string]bool, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if !known[b] {
			return nil, fmt.Errorf("expt: unknown campaign backend %q (known: %v)", b, core.Backends())
		}
		if seenBackend[b] {
			return nil, fmt.Errorf("expt: duplicate campaign backend %q", b)
		}
		seenBackend[b] = true
	}
	// Duplicate axis entries would enumerate bit-identical cells
	// (identical identity tuples, therefore identical seeds) counted
	// as independent results — reject them like duplicate workloads.
	seenNW := make(map[int]bool, len(cfg.NWs))
	for _, nw := range cfg.NWs {
		if seenNW[nw] {
			return nil, fmt.Errorf("expt: duplicate campaign comb size %d", nw)
		}
		seenNW[nw] = true
	}
	seenObjs := make(map[core.ObjectiveSet]bool, len(cfg.ObjectiveSets))
	for _, objs := range cfg.ObjectiveSets {
		if seenObjs[objs] {
			return nil, fmt.Errorf("expt: duplicate campaign objective set %s", objs)
		}
		seenObjs[objs] = true
	}
	if cfg.CheckpointDir == "" {
		if cfg.Resume {
			return nil, fmt.Errorf("expt: Resume needs CheckpointDir")
		}
		if cfg.StopAfterCheckpoints > 0 {
			return nil, fmt.Errorf("expt: StopAfterCheckpoints needs CheckpointDir")
		}
		if cfg.CheckpointEvery > 0 {
			// Silently ignoring the cadence would let a user believe
			// snapshots are being written when nothing is durable.
			return nil, fmt.Errorf("expt: CheckpointEvery needs CheckpointDir")
		}
		if cfg.WarmCacheSiblings {
			return nil, fmt.Errorf("expt: WarmCacheSiblings needs CheckpointDir (the warm cache is read from sibling checkpoints)")
		}
	}
	if cfg.Islands > 1 {
		// Island cells split their population across engines and keep
		// no single mid-cell snapshot, so the snapshot-dependent
		// features cannot compose with them.
		if cfg.WarmCacheSiblings {
			return nil, fmt.Errorf("expt: WarmCacheSiblings is incompatible with Islands (island cells keep no retained single-engine checkpoint)")
		}
		if cfg.StopAfterCheckpoints > 0 {
			return nil, fmt.Errorf("expt: StopAfterCheckpoints is incompatible with Islands (island cells write no mid-cell snapshots)")
		}
		if cfg.Pop < 2*cfg.Islands {
			return nil, fmt.Errorf("expt: population %d cannot split into %d islands (need >= 2 per island)", cfg.Pop, cfg.Islands)
		}
	} else if cfg.MigrationEvery > 0 || cfg.MigrationK > 0 {
		return nil, fmt.Errorf("expt: MigrationEvery/MigrationK need Islands > 1")
	}
	cells := cfg.Cells()
	results := make([]CellResult, len(cells))

	var mgr *checkpointManager
	if cfg.CheckpointDir != "" {
		var err error
		if mgr, err = newCheckpointManager(cfg, cells); err != nil {
			return nil, err
		}
	}

	// Build one shared evaluation instance per (backend, workload, NW)
	// triple up front: instances are read-only during evaluation, so
	// every replicate and objective-set cell of a triple reuses the
	// same precomputed routes, overlap matrix and conflict-neighbor
	// lists. A failed build surfaces as the owning cells' error,
	// exactly as a per-cell core.New failure used to.
	instances := make(map[string]sharedInstance, len(cfg.Backends)*len(cfg.Workloads)*len(cfg.NWs))
	for _, backend := range cfg.Backends {
		for _, wl := range cfg.Workloads {
			for _, nw := range cfg.NWs {
				in, err := core.NewSharedInstance(core.Config{NW: nw, Backend: backend, App: wl.App, Mapping: wl.Mapping})
				instances[instanceKey(backend, wl.Name, nw)] = sharedInstance{in: in, err: err}
			}
		}
	}

	// progressMu serializes event delivery AND the completed counter,
	// so the Completed values seen by the consumer are monotone in
	// delivery order.
	var progressMu sync.Mutex
	completed := 0
	notifyStart := func(cell Cell, restored bool) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		cfg.Progress(CellEvent{Cell: cell, Completed: completed, Total: len(cells), Restored: restored})
		progressMu.Unlock()
	}
	notifyDone := func(cell Cell, r CellResult) {
		progressMu.Lock()
		completed++
		if cfg.Progress != nil {
			cfg.Progress(CellEvent{Cell: cell, Done: true, Err: r.Err,
				Elapsed: r.Elapsed, Completed: completed, Total: len(cells), Restored: r.Restored()})
		}
		progressMu.Unlock()
	}

	// Scheduling order: normally the deterministic enumeration. On
	// resume, cells with an in-flight snapshot are scheduled first —
	// they carry the most sunk cost, so finishing them converts
	// partial work into durable completion records soonest. Results
	// are indexed by cell, so the order only affects wall-clock shape.
	order := make([]int, 0, len(cells))
	if mgr != nil && cfg.Resume {
		order = mgr.scheduleOrder(cells)
	} else {
		for i := range cells {
			order = append(order, i)
		}
	}

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := cfg.CellWorkers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				oi := int(next.Add(1)) - 1
				if oi >= len(cells) {
					return
				}
				i := order[oi]
				cell := cells[i]
				if mgr.stopRequested() {
					results[i] = CellResult{Cell: cell, Err: ErrCampaignStopped}
					notifyDone(cell, results[i])
					continue
				}
				if mgr != nil {
					if art, ok, err := mgr.loadDone(cell); err != nil {
						results[i] = CellResult{Cell: cell, Err: err}
						notifyDone(cell, results[i])
						continue
					} else if ok {
						results[i] = CellResult{Cell: cell, restored: art}
						results[i].SimChecked = art.SimChecked
						results[i].SimViolations = art.SimViolations
						results[i].SimBracketMisses = art.SimBracketMisses
						notifyStart(cell, true)
						notifyDone(cell, results[i])
						continue
					}
				}
				notifyStart(cell, false)
				results[i] = runCell(cfg, instances[instanceKey(cell.Backend, cell.Workload, cell.NW)], cell, mgr)
				notifyDone(cell, results[i])
			}
		}()
	}
	wg.Wait()

	camp := &Campaign{Cfg: cfg, Cells: results, Elapsed: time.Since(start)}
	if mgr.stopRequested() {
		return camp, fmt.Errorf("expt: campaign interrupted mid-cell with durable checkpoints in %s: %w", cfg.CheckpointDir, ErrCampaignStopped)
	}
	if n := camp.Failed(); n > 0 {
		return camp, fmt.Errorf("expt: %d of %d campaign cells failed (first: %v)", n, len(cells), firstErr(results))
	}
	return camp, nil
}

func firstErr(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("cell %d (%s): %w", r.Cell.Index, r.Cell, r.Err)
		}
	}
	return nil
}

// sharedInstance pairs a prebuilt per-(workload, NW) evaluation
// instance with its construction error, if any.
type sharedInstance struct {
	in  *alloc.Instance
	err error
}

func instanceKey(backend, workload string, nw int) string {
	return backend + "|" + workload + "|" + strconv.Itoa(nw)
}

// runCell executes one exploration with the cell's derived seed on
// the pair's shared read-only instance, then cross-checks the
// projected fronts on the simulator. With a checkpoint manager, the
// GA runs Step by Step: an existing in-flight snapshot is resumed
// mid-cell, a fresh snapshot is written every CheckpointEvery
// generations, and completion is recorded durably — all without
// perturbing the run (the stepped explorer is bit-identical to the
// monolithic Optimize).
func runCell(cfg CampaignConfig, si sharedInstance, cell Cell, mgr *checkpointManager) CellResult {
	t0 := time.Now()
	fail := func(err error) CellResult {
		return CellResult{Cell: cell, Err: err, Elapsed: time.Since(t0)}
	}
	if si.err != nil {
		return fail(si.err)
	}
	if cfg.Islands > 1 {
		return runIslandCell(cfg, si.in, cell, mgr, t0)
	}
	var warmSrc func([]byte) ([]float64, float64, []float64, bool)
	if cfg.WarmCacheSiblings && mgr != nil {
		// Best effort and lazy: the lookup starts serving once any
		// replicate sibling completes (possibly mid-run, when siblings
		// started concurrently); a missing or damaged sibling
		// checkpoint only costs the warm start, never the cell.
		warmSrc = mgr.siblingWarmSource(cell)
	}
	p, err := cellProblem(cfg, cell, si.in, warmSrc)
	if err != nil {
		return fail(err)
	}
	var x *core.Explorer
	if mgr != nil {
		payload, ok, err := mgr.loadCellCheckpoint(cell)
		if err != nil {
			return fail(err)
		}
		if ok {
			if x, err = p.ResumeExplorer(bytes.NewReader(payload)); err != nil {
				return fail(fmt.Errorf("resume cell %d from %s: %w", cell.Index, mgr.ckptPath(cell), err))
			}
		}
	}
	if x == nil {
		if x, err = p.NewExplorer(); err != nil {
			return fail(err)
		}
	}
	for !x.Done() {
		x.Step()
		if mgr != nil && !x.Done() && x.Generation()%mgr.every == 0 {
			if err := mgr.writeCellCheckpoint(cell, x); err != nil {
				return fail(err)
			}
			if mgr.stopRequested() {
				return fail(ErrCampaignStopped)
			}
		}
	}
	res, err := x.Finish()
	cr := CellResult{Cell: cell, Result: res, Err: err}
	if cfg.Stats && err == nil {
		cr.stats = cellStatsOf(x.Stats())
	}
	if err == nil && res != nil {
		cr.SimChecked, cr.SimViolations, cr.SimBracketMisses, cr.Err = simCheck(p.Instance(), res)
	}
	cr.Elapsed = time.Since(t0)
	if mgr != nil && cr.Err == nil {
		// With sibling warm caching, the retained .ckpt is the medium
		// later replicates read the cell's full evaluation cache from:
		// write a final snapshot so it covers the whole run, not just
		// the last CheckpointEvery boundary.
		if cfg.WarmCacheSiblings {
			if err := mgr.writeCellCheckpoint(cell, x); err != nil {
				cr.Err = err
				return cr
			}
		}
		// Failures are not recorded: they are deterministic, so a
		// resume re-runs the cell and reports the same error, while a
		// fixed environment gets a fresh chance.
		if err := mgr.writeDone(cell, cr.artifact()); err != nil {
			cr.Err = err
		}
	}
	return cr
}

// cellProblem builds one cell's exploration problem on the pair's
// shared read-only instance — the construction runCell, the island
// path and the distributed worker all share, so a cell means exactly
// the same GA wherever it executes.
func cellProblem(cfg CampaignConfig, cell Cell, in *alloc.Instance,
	warmSrc func([]byte) ([]float64, float64, []float64, bool)) (*core.Problem, error) {
	return core.New(core.Config{
		NW:         cell.NW,
		Instance:   in,
		Objectives: cell.Objectives,
		WarmStart:  cfg.WarmStart,
		WarmSource: warmSrc,
		GA: nsga2.Config{
			PopSize:     cfg.Pop,
			Generations: cfg.Generations,
			Seed:        cell.Seed,
			Workers:     cfg.EvalWorkers,
		},
	})
}

// runIslandCell executes one cell as an island model (see
// CampaignConfig.Islands). Island cells write no mid-cell snapshots —
// their state is a set of per-island checkpoints, not one engine
// stream — so an interrupted island cell re-runs from scratch on
// resume; completion records work exactly like the single-engine
// path's.
func runIslandCell(cfg CampaignConfig, in *alloc.Instance, cell Cell, mgr *checkpointManager, t0 time.Time) CellResult {
	p, err := cellProblem(cfg, cell, in, nil)
	if err != nil {
		return CellResult{Cell: cell, Err: err, Elapsed: time.Since(t0)}
	}
	res, stats, err := p.RunIslands(cfg.islandSpec(), nil)
	cr := CellResult{Cell: cell, Result: res, Err: err}
	if cfg.Stats && err == nil {
		cr.stats = cellStatsOf(stats)
	}
	if err == nil && res != nil {
		cr.SimChecked, cr.SimViolations, cr.SimBracketMisses, cr.Err = simCheck(p.Instance(), res)
	}
	cr.Elapsed = time.Since(t0)
	if mgr != nil && cr.Err == nil {
		if err := mgr.writeDone(cell, cr.artifact()); err != nil {
			cr.Err = err
		}
	}
	return cr
}

// simCheck runs every distinct projected-front genome of a cell
// through the cycle-resolution simulator. Occupancy double-bookings
// ((segment, channel) and core) are violations — the hard invariant.
// An integer makespan outside [analytic − ε, analytic + one ceiling
// per task and communication + one maximal task execution] counts
// separately as a bracket miss: on shared cores an integer-rounding
// tie can reorder same-core dispatch against the fractional model, so
// the looser bound keeps a correct model/simulator pair at zero.
func simCheck(in *alloc.Instance, res *core.Result) (checked, violations, bracketMisses int, err error) {
	var maxExec float64
	for _, t := range in.App.Tasks {
		if t.ExecCycles > maxExec {
			maxExec = t.ExecCycles
		}
	}
	slack := float64(in.App.NumTasks()+in.Edges()+1) + maxExec
	seen := make(map[string]bool)
	for _, front := range [][]core.Solution{res.FrontTimeEnergy, res.FrontTimeBER} {
		for _, sol := range front {
			key := sol.Genome.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			r, serr := sim.Run(in, sol.Genome, sim.Options{})
			if serr != nil {
				return checked, violations, bracketMisses, fmt.Errorf("sim cross-check: %w", serr)
			}
			checked++
			violations += len(r.Violations)
			simT := float64(r.MakespanCycles)
			analytic := sol.TimeKCC * 1000
			if simT < analytic-maxExec-1e-6 || simT > analytic+slack {
				bracketMisses++
			}
		}
	}
	return checked, violations, bracketMisses, nil
}

// ---- artifacts ----

// campaignJSON is the stable JSON artifact schema. It holds only
// deterministic data (no timestamps, no durations), so the same
// campaign configuration always produces byte-identical artifacts —
// diffable and cacheable.
type campaignJSON struct {
	Schema string `json:"schema"`
	// Backends is only emitted when the campaign sweeps a non-default
	// backend: ring-only campaigns keep the historical artifact bytes.
	Backends      []string   `json:"backends,omitempty"`
	NWs           []int      `json:"nws"`
	ObjectiveSets []string   `json:"objective_sets"`
	Workloads     []string   `json:"workloads"`
	Replicates    int        `json:"replicates"`
	Pop           int        `json:"pop"`
	Generations   int        `json:"generations"`
	Seed          int64      `json:"seed"`
	WarmStart     bool       `json:"warm_start,omitempty"`
	Cells         []cellJSON `json:"cells"`
}

type cellJSON struct {
	Index int `json:"index"`
	// Backend is emitted (on every cell) exactly when the campaign
	// sweeps a non-default backend.
	Backend           string      `json:"backend,omitempty"`
	NW                int         `json:"nw"`
	Objectives        string      `json:"objectives"`
	Workload          string      `json:"workload"`
	Replicate         int         `json:"replicate"`
	Seed              int64       `json:"seed"`
	Error             string      `json:"error,omitempty"`
	Evaluations       int         `json:"evaluations"`
	ValidEvaluations  int         `json:"valid_evaluations"`
	DistinctEvaluated int         `json:"distinct_evaluated"`
	DistinctValid     int         `json:"distinct_valid"`
	SimChecked        int         `json:"sim_checked"`
	SimViolations     int         `json:"sim_violations"`
	SimBracketMisses  int         `json:"sim_bracket_misses"`
	BestTimeKCC       *float64    `json:"best_time_kcc,omitempty"`
	MinEnergyFJ       *float64    `json:"min_energy_fj,omitempty"`
	FrontTimeEnergy   []pointJSON `json:"front_time_energy,omitempty"`
	FrontTimeBER      []pointJSON `json:"front_time_ber,omitempty"`
	Stats             *CellStats  `json:"stats,omitempty"`
}

type pointJSON struct {
	TimeKCC     float64 `json:"time_kcc"`
	BitEnergyFJ float64 `json:"bit_energy_fj"`
	MeanBER     float64 `json:"mean_ber"`
	Counts      []int   `json:"counts"`
}

func points(recs []solutionRec) []pointJSON {
	out := make([]pointJSON, 0, len(recs))
	for _, r := range recs {
		out = append(out, pointJSON{
			TimeKCC:     r.TimeKCC,
			BitEnergyFJ: r.BitEnergyFJ,
			MeanBER:     r.MeanBER,
			Counts:      r.Counts,
		})
	}
	return out
}

// WriteCampaignJSON serializes the campaign artifact. The bytes are
// deterministic: independent of CellWorkers, EvalWorkers and wall
// time.
func WriteCampaignJSON(w io.Writer, c *Campaign) error {
	cfg := c.Cfg.withDefaults()
	doc := campaignJSON{
		Schema:      "wadate-campaign/v1",
		NWs:         cfg.NWs,
		Replicates:  cfg.Replicates,
		Pop:         cfg.Pop,
		Generations: cfg.Generations,
		Seed:        cfg.Seed,
		WarmStart:   cfg.WarmStart,
	}
	multi := sweepsBackends(cfg)
	if multi {
		doc.Backends = cfg.Backends
	}
	for _, os := range cfg.ObjectiveSets {
		doc.ObjectiveSets = append(doc.ObjectiveSets, os.String())
	}
	for _, wl := range cfg.Workloads {
		doc.Workloads = append(doc.Workloads, wl.Name)
	}
	for i := range c.Cells {
		cr := &c.Cells[i]
		a := cr.artifact()
		cj := cellJSON{
			Index:      cr.Cell.Index,
			NW:         cr.Cell.NW,
			Objectives: cr.Cell.Objectives.String(),
			Workload:   cr.Cell.Workload,
			Replicate:  cr.Cell.Replicate,
			Seed:       cr.Cell.Seed,
			Error:      a.Error,
		}
		if multi {
			cj.Backend = cr.Cell.Backend
		}
		cj.SimChecked = a.SimChecked
		cj.SimViolations = a.SimViolations
		cj.SimBracketMisses = a.SimBracketMisses
		if a.HasResult {
			cj.Evaluations = a.Evaluations
			cj.ValidEvaluations = a.ValidEvaluations
			cj.DistinctEvaluated = a.DistinctEvaluated
			cj.DistinctValid = a.DistinctValid
			cj.BestTimeKCC = a.BestTimeKCC
			cj.MinEnergyFJ = a.MinEnergyFJ
			cj.FrontTimeEnergy = points(a.FrontTimeEnergy)
			cj.FrontTimeBER = points(a.FrontTimeBER)
		}
		cj.Stats = a.Stats
		doc.Cells = append(doc.Cells, cj)
	}
	e := getEnc()
	e.campaignDoc(&doc)
	if e.bad {
		// Non-finite floats cannot be rendered; delegate to the
		// stdlib encoder for the identical UnsupportedValueError.
		putEnc(e)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	out, err := indentDoc(e.b)
	putEnc(e)
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// WriteCampaignCSV emits one row per front point per cell, a flat
// table external plotting tools slice by (workload, objectives, nw).
// Like the JSON artifact, the bytes are deterministic.
func WriteCampaignCSV(w io.Writer, c *Campaign) error {
	cw := newCampaignCSV(w, sweepsBackends(c.Cfg.withDefaults()))
	for i := range c.Cells {
		cr := &c.Cells[i]
		a := cr.artifact()
		if !a.HasResult {
			continue
		}
		if err := cw.writeFront(cr.Cell, "front_time_energy", a.FrontTimeEnergy); err != nil {
			return err
		}
		if err := cw.writeFront(cr.Cell, "front_time_ber", a.FrontTimeBER); err != nil {
			return err
		}
	}
	return cw.flush()
}

// campaignStatsLine is one cell's engine instrumentation as a JSON
// line: cell identity plus the CellStats counters.
type campaignStatsLine struct {
	Cell       int        `json:"cell"`
	Backend    string     `json:"backend,omitempty"`
	Workload   string     `json:"workload"`
	Objectives string     `json:"objectives"`
	NW         int        `json:"nw"`
	Replicate  int        `json:"replicate"`
	Stats      *CellStats `json:"stats"`
}

// WriteCampaignStats emits one JSON line per cell carrying the
// cell's engine instrumentation (cells without recorded stats are
// skipped). The backend column appears exactly when the campaign
// sweeps a non-default backend — the same rule as every other
// artifact. Restored cells carry the stats from their completion
// records, so the lines are identical whether the campaign ran
// in-process or was distributed across workers.
func WriteCampaignStats(w io.Writer, c *Campaign) error {
	multi := sweepsBackends(c.Cfg.withDefaults())
	e := getEnc()
	defer putEnc(e)
	for i := range c.Cells {
		cr := &c.Cells[i]
		s := cr.Stats()
		if s == nil {
			continue
		}
		line := campaignStatsLine{
			Cell:       cr.Cell.Index,
			Workload:   cr.Cell.Workload,
			Objectives: cr.Cell.Objectives.String(),
			NW:         cr.Cell.NW,
			Replicate:  cr.Cell.Replicate,
			Stats:      s,
		}
		if multi {
			line.Backend = cr.Cell.Backend
		}
		e.b, e.bad = e.b[:0], false
		e.statsLine(&line)
		e.b = append(e.b, '\n')
		if _, err := w.Write(e.b); err != nil {
			return err
		}
	}
	return nil
}

// sweepsBackends reports whether the campaign sweeps any non-default
// backend — the condition under which the backend column appears in
// every artifact (ring-only campaigns keep their historical bytes).
func sweepsBackends(cfg CampaignConfig) bool {
	for _, b := range cfg.Backends {
		if b != core.DefaultBackend {
			return true
		}
	}
	return false
}

// CampaignSummary renders the per-cell outcome table for the
// terminal.
func CampaignSummary(c *Campaign) string {
	multi := sweepsBackends(c.Cfg.withDefaults())
	headers := []string{"cell", "workload", "objectives", "NW", "rep", "evals", "valid", "best t (k-cc)", "min E (fJ/bit)", "|front TE|", "|front TB|", "sim viol", "wall"}
	if multi {
		headers = append([]string{"cell", "backend"}, headers[1:]...)
	}
	var rows [][]string
	for i := range c.Cells {
		cr := &c.Cells[i]
		a := cr.artifact()
		row := []string{
			strconv.Itoa(cr.Cell.Index),
		}
		if multi {
			row = append(row, cr.Cell.Backend)
		}
		row = append(row,
			cr.Cell.Workload,
			cr.Cell.Objectives.String(),
			strconv.Itoa(cr.Cell.NW),
			strconv.Itoa(cr.Cell.Replicate),
		)
		wall := cr.Elapsed.Round(time.Millisecond).String()
		if cr.Restored() {
			wall = "restored"
		}
		if a.Error != "" {
			row = append(row, "error: "+a.Error, "", "", "", "", "", "", wall)
		} else if a.HasResult {
			best := "-"
			if a.BestTimeKCC != nil {
				best = fmt.Sprintf("%.2f", *a.BestTimeKCC)
			}
			minE := "-"
			if a.MinEnergyFJ != nil {
				minE = fmt.Sprintf("%.2f", *a.MinEnergyFJ)
			}
			row = append(row,
				strconv.Itoa(a.Evaluations),
				strconv.Itoa(a.ValidEvaluations),
				best,
				minE,
				strconv.Itoa(len(a.FrontTimeEnergy)),
				strconv.Itoa(len(a.FrontTimeBER)),
				fmt.Sprintf("%d/%d", a.SimViolations, a.SimChecked),
				wall,
			)
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign: %d cells, %d failed, wall %s\n\n",
		len(c.Cells), c.Failed(), c.Elapsed.Round(time.Millisecond))
	sb.WriteString(Table(headers, rows))
	return sb.String()
}
