package expt

import (
	"bytes"
	"encoding/json"
	"sync"
	"unicode"
	"unicode/utf8"

	"repro/internal/jsonx"
)

// This file is the campaign assembly fast path: hand-rolled compact
// encoders for the artifact documents the reflection-based
// encoding/json marshaller used to render. Every composed document is
// byte-identical to the stdlib's output — golden diff tests in
// encode_test.go enforce it field order, omitempty rules, float
// notation and HTML escaping included — and builds append-only into a
// reused buffer, so a campaign's result assembly stops allocating per
// cell. Non-finite floats (which encoding/json rejects with an error)
// flip the encoder's bad flag and the callers fall back to the stdlib
// path, keeping even the failure mode identical.

// enc composes compact JSON into an append-only buffer.
type enc struct {
	b []byte
	// bad records a non-finite float: the document cannot legally be
	// rendered, so the caller must discard b and delegate to
	// encoding/json for the identical error.
	bad bool
}

func (e *enc) raw(s string) { e.b = append(e.b, s...) }
func (e *enc) str(s string) { e.b = jsonx.AppendString(e.b, s) }
func (e *enc) i64(i int64)  { e.b = jsonx.AppendInt(e.b, i) }
func (e *enc) num(i int)    { e.b = jsonx.AppendInt(e.b, int64(i)) }
func (e *enc) boolv(v bool) {
	if v {
		e.raw("true")
	} else {
		e.raw("false")
	}
}
func (e *enc) f64(f float64) {
	if !jsonx.Finite(f) {
		e.bad = true
		e.b = append(e.b, '0')
		return
	}
	e.b = jsonx.AppendFloat(e.b, f)
}

// ints renders an []int exactly like encoding/json: null when nil,
// [] when empty.
func (e *enc) ints(xs []int) {
	if xs == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i, x := range xs {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.num(x)
	}
	e.b = append(e.b, ']')
}

func (e *enc) strs(xs []string) {
	if xs == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i, x := range xs {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.str(x)
	}
	e.b = append(e.b, ']')
}

func (e *enc) cellStats(s *CellStats) {
	e.raw(`{"evaluations":`)
	e.i64(s.Evaluations)
	e.raw(`,"cache_hits":`)
	e.i64(s.CacheHits)
	e.raw(`,"warm_hits":`)
	e.i64(s.WarmHits)
	e.raw(`,"full_evals":`)
	e.i64(s.FullEvals)
	e.raw(`,"gene_delta_evals":`)
	e.i64(s.GeneDeltaEvals)
	e.raw(`,"near_delta_evals":`)
	e.i64(s.NearDeltaEvals)
	e.raw(`,"cross_delta_evals":`)
	e.i64(s.CrossDeltaEvals)
	e.raw(`,"relations_compared":`)
	e.i64(s.RelationsCompared)
	e.raw("}")
}

func (e *enc) solutionRec(r *solutionRec) {
	e.raw(`{"time_kcc":`)
	e.f64(r.TimeKCC)
	e.raw(`,"bit_energy_fj":`)
	e.f64(r.BitEnergyFJ)
	e.raw(`,"mean_ber":`)
	e.f64(r.MeanBER)
	e.raw(`,"counts":`)
	e.ints(r.Counts)
	e.raw(`,"genome":`)
	e.str(r.Genome)
	e.raw("}")
}

func (e *enc) solutionRecs(rs []solutionRec) {
	if rs == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i := range rs {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.solutionRec(&rs[i])
	}
	e.b = append(e.b, ']')
}

func (e *enc) point(p *pointJSON) {
	e.raw(`{"time_kcc":`)
	e.f64(p.TimeKCC)
	e.raw(`,"bit_energy_fj":`)
	e.f64(p.BitEnergyFJ)
	e.raw(`,"mean_ber":`)
	e.f64(p.MeanBER)
	e.raw(`,"counts":`)
	e.ints(p.Counts)
	e.raw("}")
}

func (e *enc) points(ps []pointJSON) {
	if ps == nil {
		e.raw("null")
		return
	}
	e.b = append(e.b, '[')
	for i := range ps {
		if i > 0 {
			e.b = append(e.b, ',')
		}
		e.point(&ps[i])
	}
	e.b = append(e.b, ']')
}

func (e *enc) cellJSON(c *cellJSON) {
	e.raw(`{"index":`)
	e.num(c.Index)
	if c.Backend != "" {
		e.raw(`,"backend":`)
		e.str(c.Backend)
	}
	e.raw(`,"nw":`)
	e.num(c.NW)
	e.raw(`,"objectives":`)
	e.str(c.Objectives)
	e.raw(`,"workload":`)
	e.str(c.Workload)
	e.raw(`,"replicate":`)
	e.num(c.Replicate)
	e.raw(`,"seed":`)
	e.i64(c.Seed)
	if c.Error != "" {
		e.raw(`,"error":`)
		e.str(c.Error)
	}
	e.raw(`,"evaluations":`)
	e.num(c.Evaluations)
	e.raw(`,"valid_evaluations":`)
	e.num(c.ValidEvaluations)
	e.raw(`,"distinct_evaluated":`)
	e.num(c.DistinctEvaluated)
	e.raw(`,"distinct_valid":`)
	e.num(c.DistinctValid)
	e.raw(`,"sim_checked":`)
	e.num(c.SimChecked)
	e.raw(`,"sim_violations":`)
	e.num(c.SimViolations)
	e.raw(`,"sim_bracket_misses":`)
	e.num(c.SimBracketMisses)
	if c.BestTimeKCC != nil {
		e.raw(`,"best_time_kcc":`)
		e.f64(*c.BestTimeKCC)
	}
	if c.MinEnergyFJ != nil {
		e.raw(`,"min_energy_fj":`)
		e.f64(*c.MinEnergyFJ)
	}
	if len(c.FrontTimeEnergy) > 0 {
		e.raw(`,"front_time_energy":`)
		e.points(c.FrontTimeEnergy)
	}
	if len(c.FrontTimeBER) > 0 {
		e.raw(`,"front_time_ber":`)
		e.points(c.FrontTimeBER)
	}
	if c.Stats != nil {
		e.raw(`,"stats":`)
		e.cellStats(c.Stats)
	}
	e.raw("}")
}

// campaignDoc renders the compact form of the campaign artifact
// document; WriteCampaignJSON re-indents it (the exact transformation
// json.Encoder applies under SetIndent).
func (e *enc) campaignDoc(doc *campaignJSON) {
	e.raw(`{"schema":`)
	e.str(doc.Schema)
	if len(doc.Backends) > 0 {
		e.raw(`,"backends":`)
		e.strs(doc.Backends)
	}
	e.raw(`,"nws":`)
	e.ints(doc.NWs)
	e.raw(`,"objective_sets":`)
	e.strs(doc.ObjectiveSets)
	e.raw(`,"workloads":`)
	e.strs(doc.Workloads)
	e.raw(`,"replicates":`)
	e.num(doc.Replicates)
	e.raw(`,"pop":`)
	e.num(doc.Pop)
	e.raw(`,"generations":`)
	e.num(doc.Generations)
	e.raw(`,"seed":`)
	e.i64(doc.Seed)
	if doc.WarmStart {
		e.raw(`,"warm_start":true`)
	}
	e.raw(`,"cells":`)
	if doc.Cells == nil {
		e.raw("null")
	} else {
		e.b = append(e.b, '[')
		for i := range doc.Cells {
			if i > 0 {
				e.b = append(e.b, ',')
			}
			e.cellJSON(&doc.Cells[i])
		}
		e.b = append(e.b, ']')
	}
	e.raw("}")
}

// artifactFields appends cellArtifact's fields without the enclosing
// braces (the shape the embedded struct contributes to cellDoneJSON).
// The caller has just written a '{' or a field followed by ','.
func (e *enc) artifactFields(a *cellArtifact) {
	if a.Error != "" {
		e.raw(`"error":`)
		e.str(a.Error)
		e.b = append(e.b, ',')
	}
	e.raw(`"has_result":`)
	e.boolv(a.HasResult)
	e.raw(`,"evaluations":`)
	e.num(a.Evaluations)
	e.raw(`,"valid_evaluations":`)
	e.num(a.ValidEvaluations)
	e.raw(`,"distinct_evaluated":`)
	e.num(a.DistinctEvaluated)
	e.raw(`,"distinct_valid":`)
	e.num(a.DistinctValid)
	e.raw(`,"sim_checked":`)
	e.num(a.SimChecked)
	e.raw(`,"sim_violations":`)
	e.num(a.SimViolations)
	e.raw(`,"sim_bracket_misses":`)
	e.num(a.SimBracketMisses)
	if a.BestTimeKCC != nil {
		e.raw(`,"best_time_kcc":`)
		e.f64(*a.BestTimeKCC)
	}
	if a.MinEnergyFJ != nil {
		e.raw(`,"min_energy_fj":`)
		e.f64(*a.MinEnergyFJ)
	}
	if len(a.FrontTimeEnergy) > 0 {
		e.raw(`,"front_time_energy":`)
		e.solutionRecs(a.FrontTimeEnergy)
	}
	if len(a.FrontTimeBER) > 0 {
		e.raw(`,"front_time_ber":`)
		e.solutionRecs(a.FrontTimeBER)
	}
	if a.Stats != nil {
		e.raw(`,"stats":`)
		e.cellStats(a.Stats)
	}
}

func (e *enc) manifestCell(c *manifestCell) {
	e.raw(`{"index":`)
	e.num(c.Index)
	e.raw(`,"backend":`)
	e.str(c.Backend)
	e.raw(`,"nw":`)
	e.num(c.NW)
	e.raw(`,"objectives":`)
	e.str(c.Objectives)
	e.raw(`,"workload":`)
	e.str(c.Workload)
	e.raw(`,"replicate":`)
	e.num(c.Replicate)
	e.raw(`,"seed":`)
	e.i64(c.Seed)
	e.raw("}")
}

// cellDoneDoc renders the compact form of a completion record;
// encodeCellDone re-indents it.
func (e *enc) cellDoneDoc(d *cellDoneJSON) {
	e.raw(`{"schema":`)
	e.str(d.Schema)
	e.raw(`,"cell":`)
	e.manifestCell(&d.Cell)
	e.b = append(e.b, ',')
	e.artifactFields(&d.cellArtifact)
	e.raw("}")
}

func (e *enc) statsLine(l *campaignStatsLine) {
	e.raw(`{"cell":`)
	e.num(l.Cell)
	if l.Backend != "" {
		e.raw(`,"backend":`)
		e.str(l.Backend)
	}
	e.raw(`,"workload":`)
	e.str(l.Workload)
	e.raw(`,"objectives":`)
	e.str(l.Objectives)
	e.raw(`,"nw":`)
	e.num(l.NW)
	e.raw(`,"replicate":`)
	e.num(l.Replicate)
	e.raw(`,"stats":`)
	if l.Stats == nil {
		e.raw("null")
	} else {
		e.cellStats(l.Stats)
	}
	e.raw("}")
}

func (e *enc) cellEvent(ej *cellEventJSON) {
	e.raw(`{"type":`)
	e.str(ej.Type)
	e.raw(`,"cell":`)
	e.num(ej.Cell)
	e.raw(`,"backend":`)
	e.str(ej.Backend)
	e.raw(`,"workload":`)
	e.str(ej.Workload)
	e.raw(`,"objectives":`)
	e.str(ej.Objectives)
	e.raw(`,"nw":`)
	e.num(ej.NW)
	e.raw(`,"replicate":`)
	e.num(ej.Replicate)
	e.raw(`,"seed":`)
	e.i64(ej.Seed)
	e.raw(`,"completed":`)
	e.num(ej.Completed)
	e.raw(`,"total":`)
	e.num(ej.Total)
	if ej.Restored {
		e.raw(`,"restored":true`)
	}
	if ej.Error != "" {
		e.raw(`,"error":`)
		e.str(ej.Error)
	}
	if ej.ElapsedMS != 0 {
		e.raw(`,"elapsed_ms":`)
		e.f64(ej.ElapsedMS)
	}
	e.raw("}")
}

// encPool recycles assembly buffers across campaign writes and stats
// lines; indentPool recycles the re-indentation scratch.
var (
	encPool    = sync.Pool{New: func() any { return &enc{b: make([]byte, 0, 4096)} }}
	indentPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

func getEnc() *enc {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	e.bad = false
	return e
}

func putEnc(e *enc) { encPool.Put(e) }

// indentDoc applies the campaign artifacts' historical two-space
// indentation to a compact document — the same json.Indent transform
// json.Encoder performs under SetIndent — and returns the indented
// bytes with the Encoder's trailing newline.
func indentDoc(compact []byte) ([]byte, error) {
	buf := indentPool.Get().(*bytes.Buffer)
	defer indentPool.Put(buf)
	buf.Reset()
	if err := json.Indent(buf, compact, "", "  "); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return append([]byte(nil), buf.Bytes()...), nil
}

// csvFieldNeedsQuotes mirrors encoding/csv's quoting decision for a
// comma-separated writer.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '\n' || c == '\r' || c == '"' || c == ',' {
			return true
		}
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// appendCSVField appends one field with encoding/csv's exact quoting
// (Comma ',', UseCRLF false): quoted iff required, '"' doubled, \r
// and \n preserved.
func appendCSVField(b []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(b, field...)
	}
	b = append(b, '"')
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '"' {
			b = append(b, '"', '"')
			continue
		}
		b = append(b, c)
	}
	return append(b, '"')
}
