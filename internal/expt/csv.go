package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteSolutionsCSV emits one row per solution with the full metric
// triple and the allocation, the format external plotting tools
// consume to regenerate the paper's matplotlib figures.
func WriteSolutionsCSV(w io.Writer, nw int, kind string, sols []core.Solution) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"nw", "kind", "time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome"}); err != nil {
		return err
	}
	for _, s := range sols {
		counts := make([]string, len(s.Counts))
		for i, c := range s.Counts {
			counts[i] = strconv.Itoa(c)
		}
		if err := cw.Write([]string{
			strconv.Itoa(nw),
			kind,
			fmt.Sprintf("%.6f", s.TimeKCC),
			fmt.Sprintf("%.6f", s.BitEnergyFJ),
			fmt.Sprintf("%.6e", s.MeanBER),
			fmt.Sprintf("%.4f", s.Log10BER()),
			strings.Join(counts, ";"),
			s.Genome.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// campaignCSVWriter streams the flat campaign table: cell identity
// columns ahead of the per-solution metric columns. The header is
// written up front, so even an all-failed campaign yields a
// well-formed (header-only) table. The backend column appears exactly
// when the campaign sweeps a non-default backend, keeping ring-only
// tables byte-identical to their historical format.
type campaignCSVWriter struct {
	cw      *csv.Writer
	backend bool
	err     error
}

func newCampaignCSV(w io.Writer, backend bool) *campaignCSVWriter {
	c := &campaignCSVWriter{cw: csv.NewWriter(w), backend: backend}
	header := []string{"cell", "workload", "objectives", "nw", "replicate", "seed", "kind",
		"time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome"}
	if backend {
		header = append([]string{"cell", "backend"}, header[1:]...)
	}
	c.err = c.cw.Write(header)
	return c
}

func (c *campaignCSVWriter) writeFront(cell Cell, kind string, recs []solutionRec) error {
	if c.err != nil {
		return c.err
	}
	for _, r := range recs {
		counts := make([]string, len(r.Counts))
		for i, n := range r.Counts {
			counts[i] = strconv.Itoa(n)
		}
		row := []string{strconv.Itoa(cell.Index)}
		if c.backend {
			row = append(row, cell.Backend)
		}
		if err := c.cw.Write(append(row,
			cell.Workload,
			cell.Objectives.String(),
			strconv.Itoa(cell.NW),
			strconv.Itoa(cell.Replicate),
			strconv.FormatInt(cell.Seed, 10),
			kind,
			fmt.Sprintf("%.6f", r.TimeKCC),
			fmt.Sprintf("%.6f", r.BitEnergyFJ),
			fmt.Sprintf("%.6e", r.MeanBER),
			fmt.Sprintf("%.4f", core.Metrics{MeanBER: r.MeanBER}.Log10BER()),
			strings.Join(counts, ";"),
			r.Genome,
		)); err != nil {
			return err
		}
	}
	return nil
}

func (c *campaignCSVWriter) flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

// WriteSuiteCSV dumps every projected front (and the valid cloud for
// NW = 8, Fig. 7's data) of a suite to the writer.
func WriteSuiteCSV(w io.Writer, s *Suite) error {
	for _, nw := range s.NWs() {
		res := s.Results[nw]
		if err := WriteSolutionsCSV(w, nw, "front_time_energy", res.FrontTimeEnergy); err != nil {
			return err
		}
		if err := WriteSolutionsCSV(w, nw, "front_time_ber", res.FrontTimeBER); err != nil {
			return err
		}
		if nw == 8 {
			if err := WriteSolutionsCSV(w, nw, "valid", res.Valid); err != nil {
				return err
			}
		}
	}
	return nil
}
