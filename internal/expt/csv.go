package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteSolutionsCSV emits one row per solution with the full metric
// triple and the allocation, the format external plotting tools
// consume to regenerate the paper's matplotlib figures.
func WriteSolutionsCSV(w io.Writer, nw int, kind string, sols []core.Solution) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"nw", "kind", "time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome"}); err != nil {
		return err
	}
	for _, s := range sols {
		counts := make([]string, len(s.Counts))
		for i, c := range s.Counts {
			counts[i] = strconv.Itoa(c)
		}
		if err := cw.Write([]string{
			strconv.Itoa(nw),
			kind,
			fmt.Sprintf("%.6f", s.TimeKCC),
			fmt.Sprintf("%.6f", s.BitEnergyFJ),
			fmt.Sprintf("%.6e", s.MeanBER),
			fmt.Sprintf("%.4f", s.Log10BER()),
			strings.Join(counts, ";"),
			s.Genome.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSuiteCSV dumps every projected front (and the valid cloud for
// NW = 8, Fig. 7's data) of a suite to the writer.
func WriteSuiteCSV(w io.Writer, s *Suite) error {
	for _, nw := range s.NWs() {
		res := s.Results[nw]
		if err := WriteSolutionsCSV(w, nw, "front_time_energy", res.FrontTimeEnergy); err != nil {
			return err
		}
		if err := WriteSolutionsCSV(w, nw, "front_time_ber", res.FrontTimeBER); err != nil {
			return err
		}
		if nw == 8 {
			if err := WriteSolutionsCSV(w, nw, "valid", res.Valid); err != nil {
				return err
			}
		}
	}
	return nil
}
