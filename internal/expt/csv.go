package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteSolutionsCSV emits one row per solution with the full metric
// triple and the allocation, the format external plotting tools
// consume to regenerate the paper's matplotlib figures.
func WriteSolutionsCSV(w io.Writer, nw int, kind string, sols []core.Solution) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"nw", "kind", "time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome"}); err != nil {
		return err
	}
	for _, s := range sols {
		counts := make([]string, len(s.Counts))
		for i, c := range s.Counts {
			counts[i] = strconv.Itoa(c)
		}
		if err := cw.Write([]string{
			strconv.Itoa(nw),
			kind,
			fmt.Sprintf("%.6f", s.TimeKCC),
			fmt.Sprintf("%.6f", s.BitEnergyFJ),
			fmt.Sprintf("%.6e", s.MeanBER),
			fmt.Sprintf("%.4f", s.Log10BER()),
			strings.Join(counts, ";"),
			s.Genome.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// campaignCSVWriter streams the flat campaign table: cell identity
// columns ahead of the per-solution metric columns. The header is
// written up front, so even an all-failed campaign yields a
// well-formed (header-only) table. The backend column appears exactly
// when the campaign sweeps a non-default backend, keeping ring-only
// tables byte-identical to their historical format.
//
// Rows are composed with strconv appenders into one reused buffer —
// no fmt, no per-field string boxing — while reproducing
// encoding/csv's quoting and "%.6f"/"%.6e"/"%.4f" formatting byte for
// byte (the golden diff in encode_test.go holds the old row renderer
// against this one).
type campaignCSVWriter struct {
	w       io.Writer
	buf     []byte
	sep     bool
	backend bool
	err     error
}

// field appends one string field with encoding/csv quoting.
func (c *campaignCSVWriter) field(s string) {
	if c.sep {
		c.buf = append(c.buf, ',')
	}
	c.sep = true
	c.buf = appendCSVField(c.buf, s)
}

// intField and floatField append numeric fields directly: their
// renderings never contain a character that triggers quoting.
func (c *campaignCSVWriter) intField(v int64) {
	if c.sep {
		c.buf = append(c.buf, ',')
	}
	c.sep = true
	c.buf = strconv.AppendInt(c.buf, v, 10)
}

func (c *campaignCSVWriter) floatField(v float64, format byte, prec int) {
	if c.sep {
		c.buf = append(c.buf, ',')
	}
	c.sep = true
	c.buf = strconv.AppendFloat(c.buf, v, format, prec, 64)
}

// countsField renders the per-communication wavelength counts joined
// by ';', the historical strings.Join form.
func (c *campaignCSVWriter) countsField(counts []int) {
	if c.sep {
		c.buf = append(c.buf, ',')
	}
	c.sep = true
	for i, n := range counts {
		if i > 0 {
			c.buf = append(c.buf, ';')
		}
		c.buf = strconv.AppendInt(c.buf, int64(n), 10)
	}
}

func (c *campaignCSVWriter) endRecord() {
	c.buf = append(c.buf, '\n')
	c.sep = false
}

func newCampaignCSV(w io.Writer, backend bool) *campaignCSVWriter {
	c := &campaignCSVWriter{w: w, backend: backend, buf: make([]byte, 0, 4096)}
	c.field("cell")
	if backend {
		c.field("backend")
	}
	for _, h := range []string{"workload", "objectives", "nw", "replicate", "seed", "kind",
		"time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome"} {
		c.field(h)
	}
	c.endRecord()
	return c
}

func (c *campaignCSVWriter) writeFront(cell Cell, kind string, recs []solutionRec) error {
	if c.err != nil {
		return c.err
	}
	for i := range recs {
		r := &recs[i]
		c.intField(int64(cell.Index))
		if c.backend {
			c.field(cell.Backend)
		}
		c.field(cell.Workload)
		c.field(cell.Objectives.String())
		c.intField(int64(cell.NW))
		c.intField(int64(cell.Replicate))
		c.intField(cell.Seed)
		c.field(kind)
		c.floatField(r.TimeKCC, 'f', 6)
		c.floatField(r.BitEnergyFJ, 'f', 6)
		c.floatField(r.MeanBER, 'e', 6)
		c.floatField(core.Metrics{MeanBER: r.MeanBER}.Log10BER(), 'f', 4)
		c.countsField(r.Counts)
		c.field(r.Genome)
		c.endRecord()
	}
	return nil
}

func (c *campaignCSVWriter) flush() error {
	if c.err != nil {
		return c.err
	}
	_, c.err = c.w.Write(c.buf)
	return c.err
}

// WriteSuiteCSV dumps every projected front (and the valid cloud for
// NW = 8, Fig. 7's data) of a suite to the writer.
func WriteSuiteCSV(w io.Writer, s *Suite) error {
	for _, nw := range s.NWs() {
		res := s.Results[nw]
		if err := WriteSolutionsCSV(w, nw, "front_time_energy", res.FrontTimeEnergy); err != nil {
			return err
		}
		if err := WriteSolutionsCSV(w, nw, "front_time_ber", res.FrontTimeBER); err != nil {
			return err
		}
		if nw == 8 {
			if err := WriteSolutionsCSV(w, nw, "valid", res.Valid); err != nil {
				return err
			}
		}
	}
	return nil
}
