package expt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nsga2"
)

// TestSharedInstanceCellsMatchStandalone proves the campaign's
// per-(workload, NW) instance sharing is invisible in the results:
// every cell of a shared-instance campaign reproduces, bit for bit,
// a standalone exploration that builds its own instance.
func TestSharedInstanceCellsMatchStandalone(t *testing.T) {
	cfg := CampaignConfig{
		NWs:         []int{4},
		Replicates:  3,
		Pop:         20,
		Generations: 8,
		Seed:        7,
		CellWorkers: 2,
	}
	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range camp.Cells {
		p, err := core.New(core.Config{
			NW:         cr.Cell.NW,
			Objectives: cr.Cell.Objectives,
			GA: nsga2.Config{
				PopSize:     cfg.Pop,
				Generations: cfg.Generations,
				Seed:        cr.Cell.Seed,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		got := cr.Result
		if got.Evaluations != want.Evaluations || got.ValidEvaluations != want.ValidEvaluations ||
			got.DistinctEvaluated != want.DistinctEvaluated || got.DistinctValid != want.DistinctValid {
			t.Fatalf("cell %s: counters diverge from standalone run", cr.Cell)
		}
		if len(got.FrontTimeEnergy) != len(want.FrontTimeEnergy) {
			t.Fatalf("cell %s: time/energy front sizes diverge", cr.Cell)
		}
		for i := range want.FrontTimeEnergy {
			if got.FrontTimeEnergy[i].Genome.Key() != want.FrontTimeEnergy[i].Genome.Key() {
				t.Fatalf("cell %s: time/energy front genome %d diverges", cr.Cell, i)
			}
		}
	}
}

// TestCampaignInstanceBuildFailureScopedToCells proves a workload
// whose shared instance cannot be built fails its own cells without
// aborting the rest of the campaign.
func TestCampaignInstanceBuildFailureScopedToCells(t *testing.T) {
	good := PaperWorkload()
	bad, err := NamedWorkload("chain4")
	if err != nil {
		t.Fatal(err)
	}
	bad.Mapping = bad.Mapping[:2] // wrong shape: instance build must fail
	camp, err := RunCampaign(CampaignConfig{
		NWs:         []int{4},
		Workloads:   []Workload{good, bad},
		Pop:         12,
		Generations: 4,
		Seed:        3,
	})
	if err == nil {
		t.Fatal("campaign with a broken workload must report an error")
	}
	if camp == nil || camp.Failed() != 1 {
		t.Fatalf("want exactly the broken workload's cell to fail, got %d failures", camp.Failed())
	}
	for _, cr := range camp.Cells {
		broken := cr.Cell.Workload == bad.Name
		if broken && cr.Err == nil {
			t.Error("broken workload cell carries no error")
		}
		if !broken && cr.Err != nil {
			t.Errorf("healthy cell %s failed: %v", cr.Cell, cr.Err)
		}
	}
}
