package expt

import (
	"encoding/json"
	"time"
)

// This file is the campaign event tap: the JSON wire form of the
// CellEvent stream CampaignConfig.Progress delivers. The waserve
// /v1/campaign endpoint streams these lines to its clients; keeping
// the rendering here means the daemon, the CLI and any future consumer
// agree on one schema for campaign telemetry.

// cellEventJSON is the wire form of one progress notification. Unlike
// the campaign artifacts, the stream is telemetry: elapsed_ms is wall
// time and therefore not byte-stable across runs, so it is confined to
// events and never enters an artifact.
type cellEventJSON struct {
	// Type is "cell_start" or "cell_done".
	Type       string `json:"type"`
	Cell       int    `json:"cell"`
	Backend    string `json:"backend"`
	Workload   string `json:"workload"`
	Objectives string `json:"objectives"`
	NW         int    `json:"nw"`
	Replicate  int    `json:"replicate"`
	Seed       int64  `json:"seed"`
	// Completed counts finished cells at the time of the event; Total
	// is the campaign size.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Restored marks a cell replayed from a checkpoint record.
	Restored bool `json:"restored,omitempty"`
	// Error carries a failed cell's message (done events only).
	Error string `json:"error,omitempty"`
	// ElapsedMS is the cell's wall time (done events only).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// CellEventJSON renders one CellEvent as a single JSON line (no
// trailing newline) for streaming consumers.
func CellEventJSON(ev CellEvent) ([]byte, error) {
	ej := cellEventJSON{
		Type:       "cell_start",
		Cell:       ev.Cell.Index,
		Backend:    ev.Cell.Backend,
		Workload:   ev.Cell.Workload,
		Objectives: ev.Cell.Objectives.String(),
		NW:         ev.Cell.NW,
		Replicate:  ev.Cell.Replicate,
		Seed:       ev.Cell.Seed,
		Completed:  ev.Completed,
		Total:      ev.Total,
		Restored:   ev.Restored,
	}
	if ev.Done {
		ej.Type = "cell_done"
		ej.ElapsedMS = float64(ev.Elapsed) / float64(time.Millisecond)
		if ev.Err != nil {
			ej.Error = ev.Err.Error()
		}
	}
	e := enc{b: make([]byte, 0, 224)}
	e.cellEvent(&ej)
	if e.bad {
		return json.Marshal(ej)
	}
	return e.b, nil
}
