package expt

import (
	"fmt"
	"math"
	"strings"
)

// Point is one 2D sample of a plot series.
type Point struct {
	X, Y float64
}

// Series is a named, single-glyph scatter series.
type Series struct {
	Name   string
	Glyph  byte
	Points []Point
}

// Scatter renders series into a width x height ASCII plot with axis
// ranges in the margins — the terminal stand-in for the paper's
// matplotlib figures. Later series overdraw earlier ones, so put the
// highlighted set (e.g. the Pareto front) last.
func Scatter(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			total++
		}
	}
	var sb strings.Builder
	if total == 0 {
		sb.WriteString("(no points)\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for _, p := range s.Points {
			c := int((p.X - minX) / (maxX - minX) * float64(width-1))
			r := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			// Y grows upward in the plot, downward in the grid.
			grid[height-1-r][c] = s.Glyph
		}
	}
	fmt.Fprintf(&sb, "%12.4g +%s\n", maxY, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 12)
		fmt.Fprintf(&sb, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&sb, "%12.4g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%14s%-10.4g%*s%10.4g\n", "", minX, width-18, "", maxX)
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s(%d)", s.Glyph, s.Name, len(s.Points)))
	}
	fmt.Fprintf(&sb, "%14s%s\n", "", strings.Join(legend, "  "))
	return sb.String()
}

// Table renders rows as a fixed-width text table with a header rule.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
