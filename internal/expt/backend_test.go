package expt

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// backendCampaignConfig is a small ring-vs-crossbar comparison sweep.
func backendCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Backends:      []string{"ring", "crossbar"},
		NWs:           []int{4, 8},
		ObjectiveSets: []core.ObjectiveSet{core.TimeEnergyBER},
		Replicates:    1,
		Pop:           20,
		Generations:   8,
		Seed:          7,
		CellWorkers:   2,
	}
}

// TestCampaignBackendSweep runs a full ring-vs-crossbar campaign and
// checks the comparative artifacts: cells enumerate backend-major,
// both backends produce Pareto fronts, and the backend column appears
// in the JSON document, the CSV table and the summary.
func TestCampaignBackendSweep(t *testing.T) {
	cfg := backendCampaignConfig()
	cells := cfg.Cells()
	if len(cells) != 4 {
		t.Fatalf("enumerated %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		wantBackend := "ring"
		if i >= 2 {
			wantBackend = "crossbar"
		}
		if c.Backend != wantBackend {
			t.Errorf("cell %d backend %q, want %q (backend-major enumeration)", i, c.Backend, wantBackend)
		}
	}
	// Ring cells keep the historical backend-free seed; crossbar cells
	// derive a distinct one from the extended identity.
	if cells[0].Seed != cellSeed(7, "ring", 4, core.TimeEnergyBER, "paper", 0) {
		t.Error("ring cell seed not the historical derivation")
	}
	if cells[0].Seed == cells[2].Seed {
		t.Error("ring and crossbar cells of the same (NW, objs, workload, rep) share a seed")
	}

	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range camp.Cells {
		if cr.Err != nil {
			t.Fatalf("cell %v failed: %v", cr.Cell, cr.Err)
		}
		if cr.Result == nil || len(cr.Result.FrontTimeEnergy) == 0 {
			t.Fatalf("cell %v produced no time-energy front", cr.Cell)
		}
		if cr.SimViolations != 0 {
			t.Fatalf("cell %v: %d simulator violations", cr.Cell, cr.SimViolations)
		}
	}

	var j bytes.Buffer
	if err := WriteCampaignJSON(&j, camp); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Backends []string `json:"backends"`
		Cells    []struct {
			Backend string `json:"backend"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(j.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Backends) != 2 || doc.Backends[0] != "ring" || doc.Backends[1] != "crossbar" {
		t.Errorf("JSON backends = %v", doc.Backends)
	}
	for i, c := range doc.Cells {
		if c.Backend == "" {
			t.Errorf("JSON cell %d missing backend column", i)
		}
	}

	var cbuf bytes.Buffer
	if err := WriteCampaignCSV(&cbuf, camp); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 14 || rows[0][1] != "backend" {
		t.Fatalf("CSV header %v, want a backend column at index 1", rows[0])
	}
	seen := map[string]bool{}
	for _, row := range rows[1:] {
		seen[row[1]] = true
	}
	if !seen["ring"] || !seen["crossbar"] {
		t.Errorf("CSV rows cover backends %v, want both ring and crossbar", seen)
	}

	summary := CampaignSummary(camp)
	if !strings.Contains(summary, "backend") || !strings.Contains(summary, "crossbar") {
		t.Errorf("summary missing backend column:\n%s", summary)
	}
}

// TestRingOnlyCampaignArtifactsUnchanged pins artifact byte-stability
// for historical campaigns: without a non-default backend, neither
// artifact may mention backends at all and the CSV keeps its exact
// pre-backend header.
func TestRingOnlyCampaignArtifactsUnchanged(t *testing.T) {
	camp, err := RunCampaign(quickCampaignConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := WriteCampaignJSON(&j, camp); err != nil {
		t.Fatal(err)
	}
	if err := WriteCampaignCSV(&c, camp); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"JSON": &j, "CSV": &c} {
		if strings.Contains(buf.String(), "backend") {
			t.Errorf("ring-only %s artifact mentions backend", name)
		}
	}
	rows, err := csv.NewReader(bytes.NewReader(c.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := "cell,workload,objectives,nw,replicate,seed,kind,time_kcc,bit_energy_fj,mean_ber,log10_ber,counts,genome"
	if got := strings.Join(rows[0], ","); got != want {
		t.Errorf("ring-only CSV header\n got %s\nwant %s", got, want)
	}
	if strings.Contains(CampaignSummary(camp), "backend") {
		t.Error("ring-only summary mentions backend")
	}
}

// TestCampaignRejectsUnknownBackend pins the up-front axis check: a
// typo'd backend fails before any cell runs.
func TestCampaignRejectsUnknownBackend(t *testing.T) {
	cfg := quickCampaignConfig(1)
	cfg.Backends = []string{"ring", "torus"}
	if _, err := RunCampaign(cfg); err == nil || !strings.Contains(err.Error(), `unknown campaign backend "torus"`) {
		t.Fatalf("err = %v, want unknown-backend rejection", err)
	}
	cfg.Backends = []string{"ring", "ring"}
	if _, err := RunCampaign(cfg); err == nil || !strings.Contains(err.Error(), "duplicate campaign backend") {
		t.Fatalf("err = %v, want duplicate-backend rejection", err)
	}
}

// TestResumeRejectsPreBackendManifest proves fail-loud resume against
// directories written before the backend dimension existed: a
// hand-built v1 manifest (no backends, v1 schema tag) must be refused
// with the schema message, never silently assumed to be a ring
// campaign.
func TestResumeRejectsPreBackendManifest(t *testing.T) {
	dir := t.TempDir()
	v1 := map[string]any{
		"schema":         "wadate-checkpoint/v1",
		"nws":            []int{4, 8},
		"objective_sets": []string{"time+energy+BER", "time+energy"},
		"workloads":      []string{"paper"},
		"replicates":     2,
		"pop":            20,
		"generations":    8,
		"seed":           7,
		"warm_start":     false,
		"cells":          []any{},
	}
	raw, err := json.MarshalIndent(v1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := quickCampaignConfig(1)
	cfg.CheckpointDir = dir
	cfg.Resume = true
	_, err = RunCampaign(cfg)
	if err == nil {
		t.Fatal("resume accepted a pre-backend (v1) manifest")
	}
	if !strings.Contains(err.Error(), `schema "wadate-checkpoint/v1"`) || !strings.Contains(err.Error(), "wadate-checkpoint/v2") {
		t.Fatalf("err = %v, want the v1-vs-v2 schema message", err)
	}
}

// TestManifestCarriesBackendIdentity checks a fresh checkpoint
// directory records the backend axis: the manifest always names its
// backends (even a ring-only sweep) and every cell carries its own.
func TestManifestCarriesBackendIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCampaignConfig(1)
	cfg.NWs = []int{4}
	cfg.ObjectiveSets = []core.ObjectiveSet{core.TimeEnergyBER}
	cfg.Replicates = 1
	cfg.CheckpointDir = dir
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Schema != manifestSchema {
		t.Errorf("manifest schema %q, want %q", m.Schema, manifestSchema)
	}
	if len(m.Backends) != 1 || m.Backends[0] != "ring" {
		t.Errorf("manifest backends = %v, want [ring]", m.Backends)
	}
	for _, c := range m.Cells {
		if c.Backend != "ring" {
			t.Errorf("manifest cell %d backend %q, want ring", c.Index, c.Backend)
		}
	}
	// A crossbar resume against the ring directory must be refused:
	// the backend axis is part of the identity.
	cross := cfg
	cross.Backends = []string{"crossbar"}
	cross.Resume = true
	if _, err := RunCampaign(cross); err == nil || !strings.Contains(err.Error(), "different campaign configuration") {
		t.Fatalf("err = %v, want identity-mismatch rejection", err)
	}
}
