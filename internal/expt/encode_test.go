package expt

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// These are the golden diffs the assembly fast path answers to: every
// hand-rolled document renderer in encode.go is held byte-for-byte
// against the encoding/json output it replaced. The fixtures lean on
// the float edges where a bespoke encoder would drift — negative
// zero, denormals, BER magnitudes around the 1e-6/1e21 notation
// switch, integers stored in float fields — plus omitempty boundaries
// and strings that trip HTML escaping.

func fptr(v float64) *float64 { return &v }

// edgeFloats are the values most likely to expose a formatting
// divergence between strconv-based rendering and encoding/json.
var edgeFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 42, 1e6,
	1e-6, 9.999999e-7, 1e-7, 1e21, 9.99999e20,
	1e-300, 5e-324, math.MaxFloat64, math.SmallestNonzeroFloat64,
	0.1, 2.718281828459045, 1.2345678901234567e-15, 123456.789,
}

// edgeStrings exercise escaping: HTML-significant bytes, controls,
// quotes, backslashes and multibyte runes.
var edgeStrings = []string{
	"", "plain", "a<b&c>d", `quo"te`, `back\slash`,
	"tab\there", "new\nline", "ctrl\x01", "\b\f",
	"uniécode", "sep arate",
}

func stdlibIndented(t *testing.T, doc any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatalf("stdlib encode: %v", err)
	}
	return buf.Bytes()
}

func diffBytes(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	lo := at - 40
	if lo < 0 {
		lo = 0
	}
	g, w := got, want
	if at+40 < len(g) {
		g = g[:at+40]
	}
	if at+40 < len(w) {
		w = w[:at+40]
	}
	t.Fatalf("%s: first divergence at byte %d\n got: %q\nwant: %q", label, at, g[lo:], w[lo:])
}

// edgeArtifact builds a cellArtifact stressing every omitempty branch
// and the edge floats.
func edgeArtifact(variant int) cellArtifact {
	a := cellArtifact{
		HasResult:         true,
		Evaluations:       4800,
		ValidEvaluations:  3213,
		DistinctEvaluated: 2101,
		DistinctValid:     1444,
		SimChecked:        10,
		SimViolations:     1,
		SimBracketMisses:  2,
		BestTimeKCC:       fptr(edgeFloats[variant%len(edgeFloats)]),
		MinEnergyFJ:       fptr(edgeFloats[(variant+7)%len(edgeFloats)]),
		FrontTimeEnergy: []solutionRec{
			{TimeKCC: 42, BitEnergyFJ: 1e-6, MeanBER: 1e-300, Counts: []int{1, 2, 3, 4}, Genome: "1000/0100"},
			{TimeKCC: math.Copysign(0, -1), BitEnergyFJ: 9.999999e-7, MeanBER: 5e-324, Counts: []int{}, Genome: ""},
		},
		FrontTimeBER: []solutionRec{
			{TimeKCC: 1e21, BitEnergyFJ: 9.99999e20, MeanBER: 2.5e-13, Counts: nil, Genome: edgeStrings[variant%len(edgeStrings)]},
		},
		Stats: &CellStats{Evaluations: 4800, CacheHits: 1200, WarmHits: 17, FullEvals: 900,
			GeneDeltaEvals: 1800, NearDeltaEvals: 600, CrossDeltaEvals: 283, RelationsCompared: 1 << 40},
	}
	switch variant % 4 {
	case 1:
		a.Error = "engine exploded: " + edgeStrings[variant%len(edgeStrings)]
		a.HasResult = false
		a.BestTimeKCC = nil
		a.MinEnergyFJ = nil
		a.FrontTimeEnergy = nil
		a.FrontTimeBER = nil
		a.Stats = nil
	case 2:
		a.FrontTimeBER = []solutionRec{}
		a.Stats = nil
	case 3:
		a.BestTimeKCC = nil
	}
	return a
}

func edgeCampaignDoc(multi bool) campaignJSON {
	doc := campaignJSON{
		Schema:        "wadate-campaign/v1",
		NWs:           []int{2, 4, 8},
		ObjectiveSets: []string{"teb", "te"},
		Workloads:     []string{"paper", "hot<spot>"},
		Replicates:    3,
		Pop:           80,
		Generations:   60,
		Seed:          42,
		WarmStart:     multi,
	}
	if multi {
		doc.Backends = []string{"ring", "crossbar"}
	}
	for i := 0; i < 6; i++ {
		a := edgeArtifact(i)
		cj := cellJSON{
			Index:      i,
			NW:         2 << (i % 3),
			Objectives: "teb",
			Workload:   doc.Workloads[i%2],
			Replicate:  i % 3,
			Seed:       int64(i) * 7777777,
			Error:      a.Error,
		}
		if multi {
			cj.Backend = doc.Backends[i%2]
		}
		cj.SimChecked = a.SimChecked
		cj.SimViolations = a.SimViolations
		cj.SimBracketMisses = a.SimBracketMisses
		if a.HasResult {
			cj.Evaluations = a.Evaluations
			cj.ValidEvaluations = a.ValidEvaluations
			cj.DistinctEvaluated = a.DistinctEvaluated
			cj.DistinctValid = a.DistinctValid
			cj.BestTimeKCC = a.BestTimeKCC
			cj.MinEnergyFJ = a.MinEnergyFJ
			cj.FrontTimeEnergy = points(a.FrontTimeEnergy)
			cj.FrontTimeBER = points(a.FrontTimeBER)
		}
		cj.Stats = a.Stats
		doc.Cells = append(doc.Cells, cj)
	}
	return doc
}

func TestCampaignDocGolden(t *testing.T) {
	for _, multi := range []bool{false, true} {
		doc := edgeCampaignDoc(multi)
		e := getEnc()
		e.campaignDoc(&doc)
		if e.bad {
			t.Fatalf("multi=%v: encoder flagged bad on finite doc", multi)
		}
		got, err := indentDoc(e.b)
		putEnc(e)
		if err != nil {
			t.Fatalf("indentDoc: %v", err)
		}
		diffBytes(t, fmt.Sprintf("campaign doc multi=%v", multi), got, stdlibIndented(t, doc))
	}

	// Empty campaign: nil cell list must render as null, like the
	// stdlib.
	empty := campaignJSON{Schema: "wadate-campaign/v1"}
	e := getEnc()
	e.campaignDoc(&empty)
	got, err := indentDoc(e.b)
	putEnc(e)
	if err != nil {
		t.Fatalf("indentDoc: %v", err)
	}
	diffBytes(t, "empty campaign doc", got, stdlibIndented(t, empty))
}

func TestCampaignDocGoldenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1007))
	rf := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return edgeFloats[rng.Intn(len(edgeFloats))]
		case 1:
			return float64(rng.Intn(1000)) // integer-valued float
		case 2:
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		default:
			return rng.Float64()
		}
	}
	for iter := 0; iter < 200; iter++ {
		doc := campaignJSON{
			Schema:        "wadate-campaign/v1",
			NWs:           []int{2, 4},
			ObjectiveSets: []string{"teb"},
			Workloads:     []string{edgeStrings[rng.Intn(len(edgeStrings))]},
			Replicates:    rng.Intn(4),
			Pop:           rng.Intn(200),
			Generations:   rng.Intn(100),
			Seed:          rng.Int63() - rng.Int63(),
			WarmStart:     rng.Intn(2) == 0,
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			cj := cellJSON{
				Index:      i,
				NW:         4,
				Objectives: "teb",
				Workload:   doc.Workloads[0],
				Replicate:  i,
				Seed:       rng.Int63(),
			}
			if rng.Intn(2) == 0 {
				cj.BestTimeKCC = fptr(rf())
			}
			if rng.Intn(2) == 0 {
				cj.MinEnergyFJ = fptr(rf())
			}
			if k := rng.Intn(3); k > 0 {
				for j := 0; j < k; j++ {
					cj.FrontTimeEnergy = append(cj.FrontTimeEnergy, pointJSON{
						TimeKCC: rf(), BitEnergyFJ: rf(), MeanBER: rf(),
						Counts: []int{rng.Intn(8), rng.Intn(8)},
					})
				}
			}
			doc.Cells = append(doc.Cells, cj)
		}
		e := getEnc()
		e.campaignDoc(&doc)
		got, err := indentDoc(e.b)
		putEnc(e)
		if err != nil {
			t.Fatalf("iter %d: indentDoc: %v", iter, err)
		}
		diffBytes(t, fmt.Sprintf("random campaign doc iter %d", iter), got, stdlibIndented(t, doc))
	}
}

func TestCellDoneDocGolden(t *testing.T) {
	for i := 0; i < 6; i++ {
		done := cellDoneJSON{
			Schema: cellDoneSchema,
			Cell: manifestCell{Index: i, Backend: "ring", NW: 8, Objectives: "teb",
				Workload: edgeStrings[i%len(edgeStrings)], Replicate: i, Seed: 987654321},
			cellArtifact: edgeArtifact(i),
		}
		e := getEnc()
		e.cellDoneDoc(&done)
		if e.bad {
			t.Fatalf("variant %d: encoder flagged bad on finite doc", i)
		}
		got, err := indentDoc(e.b)
		putEnc(e)
		if err != nil {
			t.Fatalf("indentDoc: %v", err)
		}
		diffBytes(t, fmt.Sprintf("cell done variant %d", i), got, stdlibIndented(t, done))
	}
}

// TestEncodeCellDoneNonFinite pins the fallback contract: a
// completion record carrying a non-finite float produces the exact
// stdlib error, not corrupt bytes.
func TestEncodeCellDoneNonFinite(t *testing.T) {
	art := edgeArtifact(0)
	art.BestTimeKCC = fptr(math.NaN())
	_, err := encodeCellDone(Cell{Index: 0, Backend: "ring", NW: 8, Workload: "paper"}, art)
	if err == nil {
		t.Fatal("expected an encoding error for NaN best_time_kcc")
	}
	var ue *json.UnsupportedValueError
	if !errors.As(err, &ue) {
		t.Fatalf("want *json.UnsupportedValueError, got %T: %v", err, err)
	}
}

func TestStatsLineGolden(t *testing.T) {
	lines := []campaignStatsLine{
		{Cell: 0, Workload: "paper", Objectives: "teb", NW: 8, Replicate: 0,
			Stats: &CellStats{Evaluations: 4800, CacheHits: 1, RelationsCompared: math.MaxInt64}},
		{Cell: 3, Backend: "crossbar", Workload: "hot<spot>", Objectives: "te", NW: 16, Replicate: 2,
			Stats: &CellStats{}},
		{Cell: 7, Workload: "w\"q", Objectives: "tb", NW: 2, Replicate: 1, Stats: nil},
	}
	e := getEnc()
	defer putEnc(e)
	for i, line := range lines {
		want, err := json.Marshal(line)
		if err != nil {
			t.Fatalf("stdlib marshal: %v", err)
		}
		e.b, e.bad = e.b[:0], false
		e.statsLine(&line)
		diffBytes(t, fmt.Sprintf("stats line %d", i), e.b, want)
	}
}

func TestCellEventGolden(t *testing.T) {
	cell := Cell{Index: 5, Backend: "crossbar", NW: 8, Objectives: core.TimeEnergyBER,
		Workload: "hot<spot>", Replicate: 1, Seed: 123456789}
	events := []CellEvent{
		{Cell: cell, Completed: 0, Total: 12},
		{Cell: cell, Done: true, Completed: 1, Total: 12, Elapsed: 1234567 * time.Microsecond},
		{Cell: cell, Done: true, Completed: 2, Total: 12, Err: errors.New(`cell failed: "conflict" <here>`), Elapsed: time.Millisecond / 4},
		{Cell: cell, Restored: true, Completed: 3, Total: 12},
		{Cell: Cell{Index: 0, Workload: "paper"}, Done: true, Completed: 4, Total: 12},
	}
	for i, ev := range events {
		got, err := CellEventJSON(ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		// Rebuild the wire struct the way CellEventJSON does and
		// marshal it with the stdlib.
		ej := cellEventJSON{
			Type: "cell_start", Cell: ev.Cell.Index, Backend: ev.Cell.Backend,
			Workload: ev.Cell.Workload, Objectives: ev.Cell.Objectives.String(),
			NW: ev.Cell.NW, Replicate: ev.Cell.Replicate, Seed: ev.Cell.Seed,
			Completed: ev.Completed, Total: ev.Total, Restored: ev.Restored,
		}
		if ev.Done {
			ej.Type = "cell_done"
			ej.ElapsedMS = float64(ev.Elapsed) / float64(time.Millisecond)
			if ev.Err != nil {
				ej.Error = ev.Err.Error()
			}
		}
		want, err := json.Marshal(ej)
		if err != nil {
			t.Fatalf("stdlib marshal: %v", err)
		}
		diffBytes(t, fmt.Sprintf("cell event %d", i), got, want)
	}
}

// referenceCampaignCSV is the renderer the strconv-based
// campaignCSVWriter replaced: encoding/csv plus fmt verbs. The golden
// diff holds the two byte-for-byte.
func referenceCampaignCSV(w *bytes.Buffer, backend bool, rows []struct {
	cell Cell
	kind string
	rec  solutionRec
}) {
	cw := csv.NewWriter(w)
	header := []string{"cell"}
	if backend {
		header = append(header, "backend")
	}
	header = append(header, "workload", "objectives", "nw", "replicate", "seed", "kind",
		"time_kcc", "bit_energy_fj", "mean_ber", "log10_ber", "counts", "genome")
	cw.Write(header)
	for _, row := range rows {
		counts := make([]string, len(row.rec.Counts))
		for i, c := range row.rec.Counts {
			counts[i] = strconv.Itoa(c)
		}
		fields := []string{strconv.Itoa(row.cell.Index)}
		if backend {
			fields = append(fields, row.cell.Backend)
		}
		fields = append(fields,
			row.cell.Workload,
			row.cell.Objectives.String(),
			strconv.Itoa(row.cell.NW),
			strconv.Itoa(row.cell.Replicate),
			strconv.FormatInt(row.cell.Seed, 10),
			row.kind,
			fmt.Sprintf("%.6f", row.rec.TimeKCC),
			fmt.Sprintf("%.6f", row.rec.BitEnergyFJ),
			fmt.Sprintf("%.6e", row.rec.MeanBER),
			fmt.Sprintf("%.4f", core.Metrics{MeanBER: row.rec.MeanBER}.Log10BER()),
			strings.Join(counts, ";"),
			row.rec.Genome,
		)
		cw.Write(fields)
	}
	cw.Flush()
}

func TestCampaignCSVGolden(t *testing.T) {
	cells := []Cell{
		{Index: 0, Backend: "ring", NW: 4, Objectives: core.TimeEnergyBER, Workload: "paper", Replicate: 0, Seed: 42},
		{Index: 1, Backend: "crossbar", NW: 8, Objectives: core.TimeEnergy, Workload: "work,load", Replicate: 1, Seed: -7},
		{Index: 2, Backend: "ring", NW: 16, Objectives: core.TimeBER, Workload: ` leading`, Replicate: 2, Seed: math.MaxInt64},
	}
	recs := [][]solutionRec{
		{
			{TimeKCC: 42, BitEnergyFJ: 1e-6, MeanBER: 1e-300, Counts: []int{1, 2, 3}, Genome: "1000/0100"},
			{TimeKCC: math.Copysign(0, -1), BitEnergyFJ: 123456.789, MeanBER: 0, Counts: []int{}, Genome: `ge"nome`},
		},
		{
			{TimeKCC: 9.999999e-7, BitEnergyFJ: 5e-324, MeanBER: 2.5e-13, Counts: []int{7}, Genome: "multi\nline"},
		},
		{
			{TimeKCC: 1e9, BitEnergyFJ: 0.125, MeanBER: 1e-21, Counts: nil, Genome: "has,comma"},
		},
	}
	for _, backend := range []bool{false, true} {
		var got, want bytes.Buffer
		cw := newCampaignCSV(&got, backend)
		var rows []struct {
			cell Cell
			kind string
			rec  solutionRec
		}
		for i, cell := range cells {
			kind := "front_time_energy"
			if i%2 == 1 {
				kind = "front_time_ber"
			}
			if err := cw.writeFront(cell, kind, recs[i]); err != nil {
				t.Fatalf("writeFront: %v", err)
			}
			for _, r := range recs[i] {
				rows = append(rows, struct {
					cell Cell
					kind string
					rec  solutionRec
				}{cell, kind, r})
			}
		}
		if err := cw.flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		referenceCampaignCSV(&want, backend, rows)
		diffBytes(t, fmt.Sprintf("campaign csv backend=%v", backend), got.Bytes(), want.Bytes())
	}
}

// TestAppendCSVFieldMatchesStdlib drives the field-level quoting
// decision against encoding/csv across the escape-relevant corpus.
func TestAppendCSVFieldMatchesStdlib(t *testing.T) {
	fields := append([]string{}, edgeStrings...)
	fields = append(fields, `\.`, " lead", "\ttab-lead", "trail ", "com,ma", "cr\rhere", "q\"q", " nbsp")
	rng := rand.New(rand.NewSource(33))
	alphabet := []byte("a,\"\n\r \t<&\\.x")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		fields = append(fields, string(b))
	}
	for _, f := range fields {
		var buf bytes.Buffer
		cw := csv.NewWriter(&buf)
		cw.Write([]string{f, f})
		cw.Flush()
		want := buf.Bytes()
		got := appendCSVField(nil, f)
		got = append(got, ',')
		got = appendCSVField(got, f)
		got = append(got, '\n')
		if !bytes.Equal(got, want) {
			t.Fatalf("field %q: got %q want %q", f, got, want)
		}
	}
}

// BenchmarkCampaignAssembly measures the artifact assembly encoders on
// a fixed mid-size campaign document. json-fast vs json-stdlib is the
// gated pair (fast must win within the run); the pure encode
// sub-benches (csv-encode, stats-encode, event-encode) compose into
// reused buffers and are gated at 0 allocs/op.
func BenchmarkCampaignAssembly(b *testing.B) {
	doc := edgeCampaignDoc(true)

	b.Run("json-fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := getEnc()
			e.campaignDoc(&doc)
			out, err := indentDoc(e.b)
			putEnc(e)
			if err != nil || len(out) == 0 {
				b.Fatal("encode failed")
			}
		}
	})
	b.Run("json-stdlib", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(&doc); err != nil {
				b.Fatal(err)
			}
		}
	})

	cell := Cell{Index: 3, Backend: "crossbar", NW: 8, Objectives: core.TimeEnergyBER,
		Workload: "paper", Replicate: 1, Seed: 987654321}
	recs := edgeArtifact(0).FrontTimeEnergy
	b.Run("csv-encode", func(b *testing.B) {
		cw := newCampaignCSV(io.Discard, true)
		if err := cw.writeFront(cell, "front_time_energy", recs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cw.buf = cw.buf[:0]
			if err := cw.writeFront(cell, "front_time_energy", recs); err != nil {
				b.Fatal(err)
			}
		}
	})

	line := campaignStatsLine{Cell: 3, Backend: "crossbar", Workload: "paper", Objectives: "teb",
		NW: 8, Replicate: 1,
		Stats: &CellStats{Evaluations: 4800, CacheHits: 1200, WarmHits: 17, FullEvals: 900,
			GeneDeltaEvals: 1800, NearDeltaEvals: 600, CrossDeltaEvals: 283, RelationsCompared: 123456789}}
	b.Run("stats-encode", func(b *testing.B) {
		e := getEnc()
		defer putEnc(e)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.b, e.bad = e.b[:0], false
			e.statsLine(&line)
		}
	})

	ej := cellEventJSON{Type: "cell_done", Cell: 3, Backend: "crossbar", Workload: "paper",
		Objectives: "teb", NW: 8, Replicate: 1, Seed: 987654321,
		Completed: 4, Total: 12, ElapsedMS: 1234.5625}
	b.Run("event-encode", func(b *testing.B) {
		e := getEnc()
		defer putEnc(e)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.b, e.bad = e.b[:0], false
			e.cellEvent(&ej)
		}
	})
}
