package expt

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/nsga2"
	"repro/internal/pareto"
)

// ConvergencePoint snapshots the GA's state after one generation.
type ConvergencePoint struct {
	Generation int
	// FeasibleFraction is the share of the population satisfying the
	// validity rules — how fast constraint domination pulls the
	// search into the feasible region.
	FeasibleFraction float64
	// BestTimeKCC is the fastest feasible makespan in the population.
	BestTimeKCC float64
	// Hypervolume is the (time k-cc, fJ/bit) dominated volume of the
	// feasible first front against the reference box (40, 10).
	Hypervolume float64
}

// Convergence runs one exploration and records the per-generation
// trajectory. warmStart seeds the initial population with the
// heuristic allocations.
func Convergence(cfg Config, nw int, warmStart bool) ([]ConvergencePoint, error) {
	cfg = cfg.withDefaults()
	var points []ConvergencePoint
	observe := func(gen int, pop []nsga2.Individual) {
		p := ConvergencePoint{Generation: gen, BestTimeKCC: math.Inf(1)}
		var front [][]float64
		for _, ind := range pop {
			if !ind.Feasible() {
				continue
			}
			p.FeasibleFraction++
			t := ind.Objs[0] / 1000 // objective 0 is time in cycles
			if t < p.BestTimeKCC {
				p.BestTimeKCC = t
			}
			if ind.Rank == 0 {
				front = append(front, []float64{t, ind.Objs[1]})
			}
		}
		p.FeasibleFraction /= float64(len(pop))
		p.Hypervolume = pareto.Hypervolume2D(front, [2]float64{40, 10})
		points = append(points, p)
	}
	problem, err := core.New(core.Config{
		NW:        nw,
		WarmStart: warmStart,
		GA: nsga2.Config{
			PopSize:      cfg.Pop,
			Generations:  cfg.Generations,
			Seed:         cfg.Seed + int64(nw)*1000,
			OnGeneration: observe,
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := problem.Optimize(); err != nil {
		return nil, err
	}
	return points, nil
}

// ConvergenceReport renders cold- vs warm-start trajectories side by
// side: the ablation behind the WarmStart option.
func ConvergenceReport(cfg Config, nw int) (string, error) {
	cold, err := Convergence(cfg, nw, false)
	if err != nil {
		return "", err
	}
	warm, err := Convergence(cfg, nw, true)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "GA convergence, NW = %d (cold vs heuristic warm start)\n\n", nw)
	rows := make([][]string, 0)
	marks := milestones(len(cold))
	for _, gen := range marks {
		rows = append(rows, []string{
			fmt.Sprintf("%d", gen),
			fmt.Sprintf("%.0f%%", 100*cold[gen].FeasibleFraction),
			fmt.Sprintf("%.2f", cold[gen].BestTimeKCC),
			fmt.Sprintf("%.1f", cold[gen].Hypervolume),
			fmt.Sprintf("%.0f%%", 100*warm[gen].FeasibleFraction),
			fmt.Sprintf("%.2f", warm[gen].BestTimeKCC),
			fmt.Sprintf("%.1f", warm[gen].Hypervolume),
		})
	}
	sb.WriteString(Table([]string{
		"gen", "cold feas", "cold best t", "cold hv", "warm feas", "warm best t", "warm hv",
	}, rows))
	sb.WriteByte('\n')
	coldPts := make([]Point, len(cold))
	warmPts := make([]Point, len(warm))
	for i := range cold {
		coldPts[i] = Point{X: float64(i), Y: cold[i].Hypervolume}
		warmPts[i] = Point{X: float64(i), Y: warm[i].Hypervolume}
	}
	sb.WriteString("front hypervolume vs generation:\n")
	sb.WriteString(Scatter([]Series{
		{Name: "cold", Glyph: 'c', Points: coldPts},
		{Name: "warm", Glyph: 'w', Points: warmPts},
	}, 64, 12))
	return sb.String(), nil
}

// milestones picks representative generation indices for the table.
func milestones(n int) []int {
	if n == 0 {
		return nil
	}
	idx := map[int]bool{0: true, n - 1: true}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75} {
		idx[int(f*float64(n-1))] = true
	}
	out := make([]int, 0, len(idx))
	for i := 0; i < n; i++ {
		if idx[i] {
			out = append(out, i)
		}
	}
	return out
}
