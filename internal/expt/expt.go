// Package expt is the benchmark harness that regenerates every table
// and figure of the paper's evaluation section (Section IV): the
// Table I parameter listing, the Fig. 6(a) bit-energy/time and
// Fig. 6(b) BER/time Pareto fronts for NW = 4/8/12, the Fig. 7 valid
// solution cloud for NW = 8, and the Table II solution counts. All
// runs are seeded and deterministic; reports render as text tables
// and ASCII scatter plots, with CSV export for external plotting.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/nsga2"
)

// Config fixes one harness run.
type Config struct {
	// NWs lists the comb sizes to explore (default 4, 8, 12 — the
	// paper's sweep).
	NWs []int
	// Pop and Generations configure the GA (defaults 400 and 300, the
	// paper's settings).
	Pop, Generations int
	// Seed makes the whole suite reproducible.
	Seed int64
	// Workers parallelizes chromosome evaluation without changing any
	// result (see nsga2.Config.Workers). 0 runs serially.
	Workers int
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{NWs: []int{4, 8, 12}, Pop: 400, Generations: 300, Seed: 42}
}

// QuickConfig is a reduced configuration for unit tests and smoke
// runs: same structure, a fraction of the evaluations.
func QuickConfig() Config {
	return Config{NWs: []int{4, 8}, Pop: 80, Generations: 60, Seed: 42}
}

func (c Config) withDefaults() Config {
	if len(c.NWs) == 0 {
		c.NWs = []int{4, 8, 12}
	}
	if c.Pop == 0 {
		c.Pop = 400
	}
	if c.Generations == 0 {
		c.Generations = 300
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Suite holds the per-NW exploration results of one harness run.
type Suite struct {
	Cfg     Config
	Results map[int]*core.Result
}

// RunNW executes the paper's exploration for one comb size.
func RunNW(cfg Config, nw int) (*core.Result, error) {
	cfg = cfg.withDefaults()
	p, err := core.New(core.Config{
		NW: nw,
		GA: nsga2.Config{
			PopSize:     cfg.Pop,
			Generations: cfg.Generations,
			Workers:     cfg.Workers,
			// Decorrelate the comb sizes while keeping determinism.
			Seed: cfg.Seed + int64(nw)*1000,
		},
	})
	if err != nil {
		return nil, err
	}
	return p.Optimize()
}

// Run executes the full suite.
func Run(cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	s := &Suite{Cfg: cfg, Results: make(map[int]*core.Result, len(cfg.NWs))}
	for _, nw := range cfg.NWs {
		res, err := RunNW(cfg, nw)
		if err != nil {
			return nil, fmt.Errorf("expt: NW=%d: %w", nw, err)
		}
		s.Results[nw] = res
	}
	return s, nil
}

// NWs returns the suite's comb sizes in ascending order.
func (s *Suite) NWs() []int {
	nws := make([]int, 0, len(s.Results))
	for nw := range s.Results {
		nws = append(nws, nw)
	}
	sort.Ints(nws)
	return nws
}
