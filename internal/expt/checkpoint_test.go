package expt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func ckptCampaignConfig() CampaignConfig {
	return CampaignConfig{
		NWs:         []int{4, 8},
		Pop:         24,
		Generations: 10,
		Seed:        5,
	}
}

func campaignArtifacts(t *testing.T, c *Campaign) (jsonBytes, csvBytes []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := WriteCampaignJSON(&jb, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteCampaignCSV(&cb, c); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestCampaignCheckpointResumeByteIdentical is the acceptance pin of
// the tentpole: a campaign stopped mid-cell (after its 4th checkpoint
// write — one cell completed, the next interrupted inside its GA) and
// resumed in a fresh RunCampaign produces JSON and CSV artifacts
// byte-identical to an uninterrupted run of the same configuration.
func TestCampaignCheckpointResumeByteIdentical(t *testing.T) {
	ref, err := RunCampaign(ckptCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := campaignArtifacts(t, ref)

	dir := t.TempDir()
	interrupted := ckptCampaignConfig()
	interrupted.CheckpointDir = dir
	interrupted.CheckpointEvery = 3
	// Cell 0 snapshots at generations 3, 6 and 9 then completes; the
	// 4th write is cell 1's generation-3 snapshot, so the stop lands
	// mid-cell 1.
	interrupted.StopAfterCheckpoints = 4
	camp, err := RunCampaign(interrupted)
	if !errors.Is(err, ErrCampaignStopped) {
		t.Fatalf("interrupted campaign returned %v, want ErrCampaignStopped", err)
	}
	if camp == nil {
		t.Fatal("interrupted campaign returned no partial state")
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-0.json")); err != nil {
		t.Fatalf("cell 0 completion record missing after stop: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-1.ckpt")); err != nil {
		t.Fatalf("cell 1 in-flight snapshot missing after stop: %v", err)
	}

	resumeCfg := ckptCampaignConfig()
	resumeCfg.CheckpointDir = dir
	resumeCfg.CheckpointEvery = 3
	resumeCfg.Resume = true
	var mu sync.Mutex
	restored := map[int]bool{}
	resumeCfg.Progress = func(ev CellEvent) {
		if ev.Restored {
			mu.Lock()
			restored[ev.Cell.Index] = true
			mu.Unlock()
		}
	}
	resumed, err := RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !restored[0] {
		t.Error("cell 0 was re-explored instead of restored from its completion record")
	}
	if restored[1] {
		t.Error("cell 1 reported restored; it should have resumed its GA mid-cell")
	}
	resJSON, resCSV := campaignArtifacts(t, resumed)
	if !bytes.Equal(refJSON, resJSON) {
		t.Errorf("resumed JSON artifact differs from uninterrupted run (%d vs %d bytes)", len(resJSON), len(refJSON))
	}
	if !bytes.Equal(refCSV, resCSV) {
		t.Errorf("resumed CSV artifact differs from uninterrupted run (%d vs %d bytes)", len(resCSV), len(refCSV))
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-1.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("cell 1 in-flight snapshot not cleaned up after completion: %v", err)
	}

	// A second resume of the fully completed campaign restores every
	// cell and still renders the same bytes.
	again, err := RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Cells {
		if !again.Cells[i].Restored() {
			t.Errorf("fully completed campaign re-explored cell %d", i)
		}
	}
	agJSON, agCSV := campaignArtifacts(t, again)
	if !bytes.Equal(refJSON, agJSON) || !bytes.Equal(refCSV, agCSV) {
		t.Error("fully restored campaign artifacts differ from uninterrupted run")
	}
}

// TestCampaignCheckpointConfigGuards pins the fail-loud rules around
// the checkpoint directory: no silent reuse, no mismatched resume, no
// resume without a directory.
func TestCampaignCheckpointConfigGuards(t *testing.T) {
	t.Run("resume-needs-dir", func(t *testing.T) {
		cfg := ckptCampaignConfig()
		cfg.Resume = true
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("Resume without CheckpointDir accepted")
		}
	})
	t.Run("stop-needs-dir", func(t *testing.T) {
		cfg := ckptCampaignConfig()
		cfg.StopAfterCheckpoints = 1
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("StopAfterCheckpoints without CheckpointDir accepted")
		}
	})

	dir := t.TempDir()
	cfg := ckptCampaignConfig()
	cfg.Generations = 4
	cfg.CheckpointDir = dir
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}

	t.Run("no-silent-reuse", func(t *testing.T) {
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("re-initializing an existing checkpoint dir without Resume accepted")
		}
	})
	t.Run("mismatched-resume", func(t *testing.T) {
		bad := cfg
		bad.Seed = 6
		bad.Resume = true
		if _, err := RunCampaign(bad); err == nil {
			t.Fatal("resume with a different campaign seed accepted")
		}
	})
	t.Run("matching-resume", func(t *testing.T) {
		ok := cfg
		ok.Resume = true
		if _, err := RunCampaign(ok); err != nil {
			t.Fatalf("matching resume rejected: %v", err)
		}
	})
}

// TestCampaignResumeRejectsCorruptCellCheckpoint pins mid-cell
// robustness: a damaged in-flight snapshot fails that cell loudly
// instead of silently diverging or panicking.
func TestCampaignResumeRejectsCorruptCellCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCampaignConfig()
	cfg.NWs = []int{4}
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 3
	cfg.StopAfterCheckpoints = 1
	if _, err := RunCampaign(cfg); !errors.Is(err, ErrCampaignStopped) {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cell-0.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	res := cfg
	res.StopAfterCheckpoints = 0
	res.Resume = true
	camp, err := RunCampaign(res)
	if err == nil {
		t.Fatal("campaign with a corrupt cell checkpoint reported success")
	}
	if camp == nil || camp.Cells[0].Err == nil {
		t.Fatal("corrupt checkpoint did not surface as the cell's error")
	}
}
