package expt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

func ckptCampaignConfig() CampaignConfig {
	return CampaignConfig{
		NWs:         []int{4, 8},
		Pop:         24,
		Generations: 10,
		Seed:        5,
	}
}

func campaignArtifacts(t *testing.T, c *Campaign) (jsonBytes, csvBytes []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := WriteCampaignJSON(&jb, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteCampaignCSV(&cb, c); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestCampaignCheckpointResumeByteIdentical is the acceptance pin of
// the tentpole: a campaign stopped mid-cell (after its 4th checkpoint
// write — one cell completed, the next interrupted inside its GA) and
// resumed in a fresh RunCampaign produces JSON and CSV artifacts
// byte-identical to an uninterrupted run of the same configuration.
func TestCampaignCheckpointResumeByteIdentical(t *testing.T) {
	ref, err := RunCampaign(ckptCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := campaignArtifacts(t, ref)

	dir := t.TempDir()
	interrupted := ckptCampaignConfig()
	interrupted.CheckpointDir = dir
	interrupted.CheckpointEvery = 3
	// Cell 0 snapshots at generations 3, 6 and 9 then completes; the
	// 4th write is cell 1's generation-3 snapshot, so the stop lands
	// mid-cell 1.
	interrupted.StopAfterCheckpoints = 4
	camp, err := RunCampaign(interrupted)
	if !errors.Is(err, ErrCampaignStopped) {
		t.Fatalf("interrupted campaign returned %v, want ErrCampaignStopped", err)
	}
	if camp == nil {
		t.Fatal("interrupted campaign returned no partial state")
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-0.json")); err != nil {
		t.Fatalf("cell 0 completion record missing after stop: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-1.ckpt")); err != nil {
		t.Fatalf("cell 1 in-flight snapshot missing after stop: %v", err)
	}

	resumeCfg := ckptCampaignConfig()
	resumeCfg.CheckpointDir = dir
	resumeCfg.CheckpointEvery = 3
	resumeCfg.Resume = true
	var mu sync.Mutex
	restored := map[int]bool{}
	resumeCfg.Progress = func(ev CellEvent) {
		if ev.Restored {
			mu.Lock()
			restored[ev.Cell.Index] = true
			mu.Unlock()
		}
	}
	resumed, err := RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !restored[0] {
		t.Error("cell 0 was re-explored instead of restored from its completion record")
	}
	if restored[1] {
		t.Error("cell 1 reported restored; it should have resumed its GA mid-cell")
	}
	resJSON, resCSV := campaignArtifacts(t, resumed)
	if !bytes.Equal(refJSON, resJSON) {
		t.Errorf("resumed JSON artifact differs from uninterrupted run (%d vs %d bytes)", len(resJSON), len(refJSON))
	}
	if !bytes.Equal(refCSV, resCSV) {
		t.Errorf("resumed CSV artifact differs from uninterrupted run (%d vs %d bytes)", len(resCSV), len(refCSV))
	}
	if _, err := os.Stat(filepath.Join(dir, "cell-1.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("cell 1 in-flight snapshot not cleaned up after completion: %v", err)
	}

	// A second resume of the fully completed campaign restores every
	// cell and still renders the same bytes.
	again, err := RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Cells {
		if !again.Cells[i].Restored() {
			t.Errorf("fully completed campaign re-explored cell %d", i)
		}
	}
	agJSON, agCSV := campaignArtifacts(t, again)
	if !bytes.Equal(refJSON, agJSON) || !bytes.Equal(refCSV, agCSV) {
		t.Error("fully restored campaign artifacts differ from uninterrupted run")
	}
}

// TestCampaignCheckpointConfigGuards pins the fail-loud rules around
// the checkpoint directory: no silent reuse, no mismatched resume, no
// resume without a directory.
func TestCampaignCheckpointConfigGuards(t *testing.T) {
	t.Run("resume-needs-dir", func(t *testing.T) {
		cfg := ckptCampaignConfig()
		cfg.Resume = true
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("Resume without CheckpointDir accepted")
		}
	})
	t.Run("stop-needs-dir", func(t *testing.T) {
		cfg := ckptCampaignConfig()
		cfg.StopAfterCheckpoints = 1
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("StopAfterCheckpoints without CheckpointDir accepted")
		}
	})

	dir := t.TempDir()
	cfg := ckptCampaignConfig()
	cfg.Generations = 4
	cfg.CheckpointDir = dir
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}

	t.Run("no-silent-reuse", func(t *testing.T) {
		if _, err := RunCampaign(cfg); err == nil {
			t.Fatal("re-initializing an existing checkpoint dir without Resume accepted")
		}
	})
	t.Run("mismatched-resume", func(t *testing.T) {
		bad := cfg
		bad.Seed = 6
		bad.Resume = true
		if _, err := RunCampaign(bad); err == nil {
			t.Fatal("resume with a different campaign seed accepted")
		}
	})
	t.Run("matching-resume", func(t *testing.T) {
		ok := cfg
		ok.Resume = true
		if _, err := RunCampaign(ok); err != nil {
			t.Fatalf("matching resume rejected: %v", err)
		}
	})
}

// TestCampaignResumeRejectsCorruptCellCheckpoint pins mid-cell
// robustness: a damaged in-flight snapshot fails that cell loudly
// instead of silently diverging or panicking.
func TestCampaignResumeRejectsCorruptCellCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCampaignConfig()
	cfg.NWs = []int{4}
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 3
	cfg.StopAfterCheckpoints = 1
	if _, err := RunCampaign(cfg); !errors.Is(err, ErrCampaignStopped) {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cell-0.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	res := cfg
	res.StopAfterCheckpoints = 0
	res.Resume = true
	camp, err := RunCampaign(res)
	if err == nil {
		t.Fatal("campaign with a corrupt cell checkpoint reported success")
	}
	if camp == nil || camp.Cells[0].Err == nil {
		t.Fatal("corrupt checkpoint did not surface as the cell's error")
	}
}

// TestScheduleOrderInflightFirst pins the resume scheduling rule: a
// cell with an in-flight snapshot (and no completion record) is
// scheduled before untouched cells; completed cells keep their
// enumeration position among the rest.
func TestScheduleOrderInflightFirst(t *testing.T) {
	cfg := ckptCampaignConfig().withDefaults()
	cfg.CheckpointDir = t.TempDir()
	cfg.NWs = []int{4, 8, 12}
	cells := cfg.Cells()
	mgr, err := newCheckpointManager(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Cell 2 is in-flight (snapshot, no completion record); cell 0 is
	// completed (record present — its stale snapshot must not promote
	// it, mirroring a kill between writeDone and the ckpt removal).
	for _, p := range []string{mgr.ckptPath(cells[2]), mgr.ckptPath(cells[0]), mgr.donePath(cells[0])} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := mgr.scheduleOrder(cells)
	want := []int{2, 0, 1}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("scheduleOrder = %v, want %v", got, want)
		}
	}
}

// TestCampaignResumeRunsInflightCellFirst drives the rule end to end:
// after a mid-cell kill (cell 0 completed, cell 1 interrupted), the
// resumed campaign's first event concerns the interrupted cell — its
// sunk generations complete before any untouched cell starts — and
// the artifacts stay byte-identical to an uninterrupted run.
func TestCampaignResumeRunsInflightCellFirst(t *testing.T) {
	ref, err := RunCampaign(ckptCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := campaignArtifacts(t, ref)

	dir := t.TempDir()
	interrupted := ckptCampaignConfig()
	interrupted.CheckpointDir = dir
	interrupted.CheckpointEvery = 3
	interrupted.StopAfterCheckpoints = 4 // cell 0 completes, cell 1 dies mid-GA
	if _, err := RunCampaign(interrupted); !errors.Is(err, ErrCampaignStopped) {
		t.Fatalf("interrupted campaign returned %v, want ErrCampaignStopped", err)
	}

	resumed := ckptCampaignConfig()
	resumed.CheckpointDir = dir
	resumed.CheckpointEvery = 3
	resumed.Resume = true
	var first *CellEvent
	resumed.Progress = func(ev CellEvent) {
		if first == nil {
			e := ev
			first = &e
		}
	}
	camp, err := RunCampaign(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no progress events delivered")
	}
	if first.Cell.Index != 1 || first.Restored {
		t.Fatalf("first resumed event is cell %d (restored=%v), want the in-flight cell 1 scheduled first",
			first.Cell.Index, first.Restored)
	}
	gotJSON, _ := campaignArtifacts(t, camp)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("reordered resume changed the JSON artifact")
	}
}

// TestCampaignWarmCacheSiblingsByteIdentical pins the opt-in
// cross-replicate warm cache: replicate cells seeded from a completed
// sibling's checkpointed evaluation cache produce artifacts
// byte-identical to a cold campaign, the warm path demonstrably
// engages, and completed cells retain their snapshots as the warm
// medium.
func TestCampaignWarmCacheSiblingsByteIdentical(t *testing.T) {
	// Large enough (and heuristic-seeded, so both replicates start
	// from identical warm-start genomes) that the replicates' search
	// trajectories overlap on rediscovered infeasible genotypes.
	cfg := CampaignConfig{
		NWs:         []int{8},
		Replicates:  2,
		Pop:         48,
		Generations: 25,
		Seed:        5,
		WarmStart:   true,
	}
	ref, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := campaignArtifacts(t, ref)

	warm := cfg
	warm.CheckpointDir = t.TempDir()
	warm.WarmCacheSiblings = true
	before := warmHitsTotal.Load()
	beforeFeasible := warmFeasibleHitsTotal.Load()
	camp, err := RunCampaign(warm)
	if err != nil {
		t.Fatal(err)
	}
	if hits := warmHitsTotal.Load() - before; hits == 0 {
		t.Fatal("warm cache never engaged: no evaluation was short-circuited")
	}
	// Both replicates warm-start from the same heuristic seeds, which
	// are feasible — the second replicate MUST resolve them from the
	// first's persisted metric triples rather than re-evaluating.
	if hits := warmFeasibleHitsTotal.Load() - beforeFeasible; hits == 0 {
		t.Fatal("no feasible genotype was served from the sibling warm cache")
	}
	gotJSON, gotCSV := campaignArtifacts(t, camp)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("warm-cached campaign changed the JSON artifact")
	}
	if !bytes.Equal(refCSV, gotCSV) {
		t.Fatal("warm-cached campaign changed the CSV artifact")
	}
	// Completed cells keep their checkpoints (the warm medium).
	for _, cell := range warm.withDefaults().Cells() {
		if _, err := os.Stat(filepath.Join(warm.CheckpointDir, "cell-"+itoa(cell.Index)+".ckpt")); err != nil {
			t.Fatalf("completed cell %d checkpoint not retained: %v", cell.Index, err)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestCampaignStatsRecorded pins the opt-in instrumentation: with
// Stats on, every successful cell carries a consistent counter block
// that lands in the JSON artifact, restored cells replay the block
// from their completion records, and a resume that disagrees on the
// Stats setting is refused (restored and fresh cells would otherwise
// disagree on artifact fields).
func TestCampaignStatsRecorded(t *testing.T) {
	cfg := ckptCampaignConfig()
	cfg.Stats = true
	cfg.CheckpointDir = t.TempDir()
	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range camp.Cells {
		s := camp.Cells[i].Stats()
		if s == nil {
			t.Fatalf("cell %d: no stats recorded", i)
		}
		if s.Evaluations <= 0 || s.FullEvals <= 0 || s.RelationsCompared <= 0 {
			t.Fatalf("cell %d: implausible stats %+v", i, *s)
		}
		kernel := s.FullEvals + s.GeneDeltaEvals + s.NearDeltaEvals + s.CrossDeltaEvals
		if kernel != s.Evaluations-s.CacheHits-s.WarmHits {
			t.Fatalf("cell %d: kernel paths sum to %d, engine served %d evaluations (%d cache, %d warm)",
				i, kernel, s.Evaluations, s.CacheHits, s.WarmHits)
		}
	}
	gotJSON, _ := campaignArtifacts(t, camp)
	if !bytes.Contains(gotJSON, []byte(`"gene_delta_evals"`)) {
		t.Fatal("stats block missing from JSON artifact")
	}

	resumeCfg := cfg
	resumeCfg.Resume = true
	resumed, err := RunCampaign(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed.Cells {
		if !resumed.Cells[i].Restored() {
			t.Fatalf("cell %d: expected restore from completion record", i)
		}
		got, want := resumed.Cells[i].Stats(), camp.Cells[i].Stats()
		if got == nil || *got != *want {
			t.Fatalf("cell %d: restored stats %+v, want %+v", i, got, want)
		}
	}

	off := cfg
	off.Stats = false
	off.Resume = true
	if _, err := RunCampaign(off); err == nil {
		t.Fatal("resume with a different Stats setting must be refused")
	}
}

// TestWarmCacheNeedsCheckpointDir pins the flag guard.
func TestWarmCacheNeedsCheckpointDir(t *testing.T) {
	cfg := ckptCampaignConfig()
	cfg.WarmCacheSiblings = true
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("WarmCacheSiblings without CheckpointDir must fail")
	}
}

// TestCampaignWarmCacheParallelReplicates pins the lazy warm binding:
// replicate siblings claimed concurrently (no sibling completed at
// cell start) still produce byte-identical artifacts, with the warm
// source engaging mid-run if and when a sibling finishes first.
func TestCampaignWarmCacheParallelReplicates(t *testing.T) {
	cfg := CampaignConfig{
		NWs:         []int{8},
		Replicates:  2,
		Pop:         48,
		Generations: 25,
		Seed:        5,
		WarmStart:   true,
	}
	ref, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := campaignArtifacts(t, ref)

	warm := cfg
	warm.CheckpointDir = t.TempDir()
	warm.WarmCacheSiblings = true
	warm.CellWorkers = 2 // both replicates start together
	camp, err := RunCampaign(warm)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := campaignArtifacts(t, camp)
	if !bytes.Equal(refJSON, gotJSON) || !bytes.Equal(refCSV, gotCSV) {
		t.Fatal("parallel warm-cached campaign changed the artifacts")
	}
}
