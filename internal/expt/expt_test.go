package expt

import (
	"encoding/csv"
	"fmt"
	"math"
	"strings"
	"testing"
)

// suite runs one quick suite per test binary; the GA is deterministic
// so sharing is safe.
var cachedSuite *Suite

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := Run(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

func TestRunQuickSuite(t *testing.T) {
	s := quickSuite(t)
	nws := s.NWs()
	if len(nws) != 2 || nws[0] != 4 || nws[1] != 8 {
		t.Fatalf("NWs = %v, want [4 8]", nws)
	}
	for _, nw := range nws {
		res := s.Results[nw]
		if res.NW != nw {
			t.Errorf("result NW = %d under key %d", res.NW, nw)
		}
		if len(res.Valid) == 0 || len(res.FrontTimeEnergy) == 0 || len(res.FrontTimeBER) == 0 {
			t.Errorf("NW=%d: empty results", nw)
		}
	}
}

func TestShapeAnchorBestTimeImprovesWithNW(t *testing.T) {
	// The paper's central trend: more wavelengths, faster execution,
	// never beating the 20 k-cc floor.
	s := quickSuite(t)
	t4 := s.Results[4].BestTimeKCC()
	t8 := s.Results[8].BestTimeKCC()
	if t8 >= t4 {
		t.Errorf("best time must improve 4->8 wavelengths: %v vs %v", t4, t8)
	}
	for nw, res := range s.Results {
		if res.BestTimeKCC() < 20 {
			t.Errorf("NW=%d: best time %v beats the 20 k-cc floor", nw, res.BestTimeKCC())
		}
	}
}

func TestShapeAnchorMinEnergyIsAllOnes(t *testing.T) {
	s := quickSuite(t)
	for nw, res := range s.Results {
		sol, ok := res.MinEnergySolution()
		if !ok {
			t.Fatalf("NW=%d: no valid solutions", nw)
		}
		// The quick GA may stop one mutation short of the exact
		// all-ones optimum; it must still land on a lean allocation
		// (the full-scale benchmark asserts exact all-ones).
		total := 0
		for _, c := range sol.Counts {
			total += c
			if c > 2 {
				t.Errorf("NW=%d: min-energy allocation %v not lean", nw, sol.Counts)
				break
			}
		}
		if total > len(sol.Counts)+1 {
			t.Errorf("NW=%d: min-energy allocation %v reserves %d wavelengths, want near %d",
				nw, sol.Counts, total, len(sol.Counts))
		}
		lo, hi := PaperEnergyRangeFJ[0], PaperEnergyRangeFJ[1]
		if sol.BitEnergyFJ < lo-1.5 || sol.BitEnergyFJ > hi {
			t.Errorf("NW=%d: min energy %v fJ/bit far from the paper band [%v,%v]",
				nw, sol.BitEnergyFJ, lo, hi)
		}
	}
}

func TestShapeAnchorCountsGrowWithNW(t *testing.T) {
	s := quickSuite(t)
	if s.Results[8].DistinctValid <= s.Results[4].DistinctValid {
		t.Errorf("distinct valid solutions must grow with NW: %d vs %d",
			s.Results[4].DistinctValid, s.Results[8].DistinctValid)
	}
	if len(s.Results[8].FrontTimeBER) < len(s.Results[4].FrontTimeBER) {
		t.Errorf("front size should not shrink with NW: %d vs %d",
			len(s.Results[4].FrontTimeBER), len(s.Results[8].FrontTimeBER))
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Lp", "-0.274", "Lp0", "-0.005", "Lp1", "-0.5", "Kp0", "-20", "Kp1", "-25", "Pv", "-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFig6aReport(t *testing.T) {
	out := Fig6a(quickSuite(t))
	for _, want := range []string{"Fig. 6(a)", "NW = 4", "NW = 8", "bit energy", "allocation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6a missing %q", want)
		}
	}
	// The all-ones minimum-energy vector must appear somewhere.
	if !strings.Contains(out, "[1 1 1 1 1 1]") {
		t.Error("Fig6a should show the all-ones allocation")
	}
}

func TestFig6bReport(t *testing.T) {
	out := Fig6b(quickSuite(t))
	for _, want := range []string{"Fig. 6(b)", "log10(BER)", "NW = 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6b missing %q", want)
		}
	}
}

func TestFig7Report(t *testing.T) {
	out := Fig7(quickSuite(t))
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "Pareto front") {
		t.Errorf("Fig7 report malformed:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, ".") {
		t.Error("Fig7 scatter must draw both the cloud and the front")
	}
}

func TestFig7NeedsNW8(t *testing.T) {
	s, err := Run(Config{NWs: []int{4}, Pop: 20, Generations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Fig7(s), "needs an NW = 8 run") {
		t.Error("Fig7 without NW=8 must say so")
	}
}

func TestTable2Report(t *testing.T) {
	out := Table2(quickSuite(t))
	for _, want := range []string{"Table II", "front(time,BER)", "valid generated", "valid distinct"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryReport(t *testing.T) {
	out := Summary(quickSuite(t))
	for _, want := range []string{"Reproduction summary", "28.30", "20.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutputParses(t *testing.T) {
	s := quickSuite(t)
	var sb strings.Builder
	if err := WriteSuiteCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	// Each front emits its own header; validate each block parses.
	blocks := strings.Split(strings.TrimSpace(sb.String()), "nw,kind,")
	if len(blocks) < 4 {
		t.Fatalf("expected >= 4 CSV blocks, got %d", len(blocks)-1)
	}
	for _, block := range blocks[1:] {
		r := csv.NewReader(strings.NewReader("nw,kind," + block))
		rows, err := r.ReadAll()
		if err != nil {
			t.Fatalf("CSV parse: %v", err)
		}
		if len(rows) < 2 {
			t.Fatal("CSV block has no data rows")
		}
		if len(rows[0]) != 8 {
			t.Fatalf("CSV header has %d columns, want 8", len(rows[0]))
		}
	}
}

func TestScatterRendering(t *testing.T) {
	out := Scatter([]Series{
		{Name: "a", Glyph: 'a', Points: []Point{{0, 0}, {1, 1}}},
		{Name: "b", Glyph: 'b', Points: []Point{{0.5, 0.5}}},
	}, 20, 8)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("scatter lost glyphs:\n%s", out)
	}
	if !strings.Contains(out, "a=a(2)") {
		t.Errorf("scatter legend malformed:\n%s", out)
	}
	if got := Scatter(nil, 20, 8); !strings.Contains(got, "no points") {
		t.Error("empty scatter must degrade gracefully")
	}
	// Degenerate single point must not divide by zero.
	one := Scatter([]Series{{Name: "p", Glyph: 'p', Points: []Point{{3, 7}}}}, 20, 8)
	if !strings.Contains(one, "p") {
		t.Error("single-point scatter lost its point")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "long header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing header rule")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Pop != PaperGAPopulation || c.Generations != PaperGAGenerations {
		t.Errorf("defaults %d/%d, want the paper's %d/%d",
			c.Pop, c.Generations, PaperGAPopulation, PaperGAGenerations)
	}
	if len(c.NWs) != 3 {
		t.Errorf("default NWs = %v", c.NWs)
	}
}

func TestConvergenceTrajectory(t *testing.T) {
	cfg := Config{NWs: []int{8}, Pop: 40, Generations: 30, Seed: 5}
	points, err := Convergence(cfg, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 30 {
		t.Fatalf("recorded %d generations, want 30", len(points))
	}
	// Feasible fraction and hypervolume must both improve from the
	// random start to the end.
	first, last := points[0], points[len(points)-1]
	if last.FeasibleFraction < first.FeasibleFraction {
		t.Errorf("feasible fraction regressed: %v -> %v", first.FeasibleFraction, last.FeasibleFraction)
	}
	if last.Hypervolume <= first.Hypervolume {
		t.Errorf("hypervolume did not grow: %v -> %v", first.Hypervolume, last.Hypervolume)
	}
	for i, p := range points {
		if p.FeasibleFraction < 0 || p.FeasibleFraction > 1 {
			t.Fatalf("gen %d: feasible fraction %v", i, p.FeasibleFraction)
		}
	}
}

func TestConvergenceWarmStartsFeasible(t *testing.T) {
	cfg := Config{NWs: []int{8}, Pop: 40, Generations: 10, Seed: 5}
	warm, err := Convergence(cfg, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	// Heuristic seeds guarantee feasible individuals from the first
	// generation.
	if warm[0].FeasibleFraction == 0 {
		t.Error("warm start produced no feasible individuals in generation 0")
	}
	if math.IsInf(warm[0].BestTimeKCC, 1) {
		t.Error("warm start has no best time in generation 0")
	}
}

func TestConvergenceReportRenders(t *testing.T) {
	cfg := Config{NWs: []int{8}, Pop: 30, Generations: 12, Seed: 3}
	out, err := ConvergenceReport(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GA convergence", "cold", "warm", "hypervolume vs generation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMilestones(t *testing.T) {
	ms := milestones(100)
	if ms[0] != 0 || ms[len(ms)-1] != 99 {
		t.Errorf("milestones must include endpoints: %v", ms)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			t.Errorf("milestones not increasing: %v", ms)
		}
	}
	if got := milestones(0); got != nil {
		t.Errorf("milestones(0) = %v", got)
	}
	if got := milestones(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("milestones(1) = %v", got)
	}
}

func TestMultiSeedStats(t *testing.T) {
	cfg := Config{NWs: []int{8}, Pop: 30, Generations: 15, Seed: 2}
	ss, err := MultiSeed(cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NW != 8 || ss.BestTime.N != 3 {
		t.Fatalf("stats = %+v", ss)
	}
	if ss.BestTime.Min < 20 {
		t.Errorf("a seed beat the 20 k-cc floor: %+v", ss.BestTime)
	}
	if ss.BestTime.Max >= 36 {
		t.Errorf("a seed failed to improve on all-ones: %+v", ss.BestTime)
	}
	if _, err := MultiSeed(cfg, 8, 0); err == nil {
		t.Error("zero seeds must fail")
	}
}

func TestMultiSeedReportRenders(t *testing.T) {
	cfg := Config{NWs: []int{4}, Pop: 20, Generations: 10, Seed: 2}
	out, err := MultiSeedReport(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Multi-seed robustness", "best time", "n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityReport(t *testing.T) {
	out, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quality factor", "Q", "9600", "area", "mm^2"} {
		if !strings.Contains(out, want) {
			t.Errorf("sensitivity report missing %q", want)
		}
	}
	// The Q=9600/NW=8 cell must be present and parse as a negative
	// log10 BER; spot-check monotonicity: the Q=2400 row must be
	// worse (higher log BER) than Q=19200 at NW=8.
	lines := strings.Split(out, "\n")
	var low, high float64
	var lowSet, highSet bool
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "2400" {
			fmt.Sscanf(fields[2], "%f", &low)
			lowSet = true
		}
		if len(fields) >= 3 && fields[0] == "19200" {
			fmt.Sscanf(fields[2], "%f", &high)
			highSet = true
		}
	}
	if !lowSet || !highSet {
		t.Fatalf("could not locate Q rows in:\n%s", out)
	}
	if low <= high {
		t.Errorf("low-Q BER (log %v) must be worse than high-Q (log %v)", low, high)
	}
}
