package ring

import "fmt"

// Direction selects one of the ring's counter-propagating waveguides.
// The paper's platform is a single clockwise waveguide; the
// Bidirectional configuration adds the ORNoC-style counter-clockwise
// twin (Le Beux et al., the paper's reference [9]), halving worst-case
// hop counts. The two directions are physically separate waveguides:
// they never share segments, conflict or interfere.
type Direction int

const (
	// CW travels in increasing ring order (the paper's default).
	CW Direction = iota
	// CCW travels in decreasing ring order on the twin waveguide.
	CCW
)

// String names the direction.
func (d Direction) String() string {
	if d == CCW {
		return "ccw"
	}
	return "cw"
}

// Path is a directed route along one waveguide from a source ONI to a
// destination ONI.
type Path struct {
	Src, Dst int
	Dir      Direction
	// onis is the visited ONI sequence, source first, destination
	// last.
	onis []int
	// segIdx holds one waveguide resource ID per hop: CW hop j->j+1
	// is resource j; CCW hop j->j-1 is resource N+j. Resource IDs
	// never collide across directions.
	segIdx []int
}

// PathBetween returns the route from src to dst: the unique clockwise
// route on a unidirectional ring, or the hop-shorter of the two
// directions (ties clockwise) when the ring is bidirectional.
// src == dst is rejected: mapped communications always cross the
// optical layer (Definition 3 places communicating tasks on distinct
// cores).
func (r *Ring) PathBetween(src, dst int) (Path, error) {
	if !r.cfg.Bidirectional {
		return r.DirectedPath(src, dst, CW)
	}
	n := r.Size()
	cw := ((dst-src)%n + n) % n
	ccw := n - cw
	if ccw < cw {
		return r.DirectedPath(src, dst, CCW)
	}
	return r.DirectedPath(src, dst, CW)
}

// DirectedPath returns the route from src to dst along the requested
// waveguide. Requesting CCW on a unidirectional ring is an error.
func (r *Ring) DirectedPath(src, dst int, dir Direction) (Path, error) {
	n := r.Size()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Path{}, fmt.Errorf("ring: path endpoints %d->%d outside [0,%d)", src, dst, n)
	}
	if src == dst {
		return Path{}, fmt.Errorf("ring: degenerate path %d->%d", src, dst)
	}
	if dir == CCW && !r.cfg.Bidirectional {
		return Path{}, fmt.Errorf("ring: counter-clockwise waveguide not configured")
	}
	p := Path{Src: src, Dst: dst, Dir: dir}
	switch dir {
	case CW:
		hops := ((dst-src)%n + n) % n
		p.onis = make([]int, 0, hops+1)
		p.segIdx = make([]int, 0, hops)
		for h := 0; h <= hops; h++ {
			p.onis = append(p.onis, (src+h)%n)
			if h < hops {
				p.segIdx = append(p.segIdx, (src+h)%n)
			}
		}
	case CCW:
		hops := ((src-dst)%n + n) % n
		p.onis = make([]int, 0, hops+1)
		p.segIdx = make([]int, 0, hops)
		for h := 0; h <= hops; h++ {
			oni := ((src-h)%n + n) % n
			p.onis = append(p.onis, oni)
			if h < hops {
				p.segIdx = append(p.segIdx, n+oni)
			}
		}
	default:
		return Path{}, fmt.Errorf("ring: unknown direction %d", int(dir))
	}
	return p, nil
}

// SelfPath returns the degenerate zero-hop path of a communication
// whose endpoint cores coincide — the shared-core mapping case where
// producer and consumer run on the same core and the transfer never
// enters the optical layer. It traverses no waveguide segment,
// overlaps nothing and crosses no receiver bank.
func SelfPath(oni int) Path {
	return Path{Src: oni, Dst: oni, Dir: CW, onis: []int{oni}}
}

// Hops returns the number of traversed segments.
func (p Path) Hops() int { return len(p.segIdx) }

// Segments returns the traversed waveguide resource IDs in travel
// order; IDs are direction-qualified, so CW and CCW paths never
// share one. The returned slice is shared; callers must not mutate
// it.
func (p Path) Segments() []int { return p.segIdx }

// ONIs returns the visited ONI sequence, source first. The returned
// slice is shared; callers must not mutate it.
func (p Path) ONIs() []int { return p.onis }

// UsesSegment reports whether the path traverses waveguide resource
// s.
func (p Path) UsesSegment(s int) bool {
	for _, i := range p.segIdx {
		if i == s {
			return true
		}
	}
	return false
}

// Overlaps reports whether two paths share at least one waveguide
// resource. Counter-propagating paths never overlap (separate
// waveguides); two same-direction paths overlap when their segment
// runs intersect. Overlapping simultaneous transmissions must use
// disjoint wavelength sets (the paper's validity rule) and mutually
// inject inter-communication crosstalk.
func (p Path) Overlaps(q Path) bool {
	if p.Dir != q.Dir {
		return false
	}
	// Paths carry at most one segment per ring hop, so the quadratic
	// scan beats a hash set at these sizes and never allocates — this
	// sits on the evaluation kernel's validity path.
	for _, i := range p.segIdx {
		for _, j := range q.segIdx {
			if i == j {
				return true
			}
		}
	}
	return false
}

// Interior returns the ONIs strictly between source and destination,
// in travel order. Signals pass the full receiver MR bank of each
// interior ONI.
func (p Path) Interior() []int {
	if len(p.onis) <= 2 {
		return nil
	}
	return p.onis[1 : len(p.onis)-1]
}

// Through reports whether the path's optical signal crosses the
// receiver MR bank of ONI o: true when o is an interior ONI or the
// destination. The source's own bank is not crossed because the ONI
// transmitter injects downstream of its receiver (Fig. 1(b): the
// receiver block precedes the transmitter along the waveguide).
func (p Path) Through(o int) bool {
	for _, oni := range p.onis[1:] {
		if oni == o {
			return true
		}
	}
	return false
}

// Prefix returns the sub-path from the source up to ONI det, which
// must lie on the path past the source. Noise analyses use it to walk
// an interferer's light only as far as the victim's receiver.
func (p Path) Prefix(det int) (Path, error) {
	for i, oni := range p.onis {
		if oni != det || i == 0 {
			continue
		}
		return Path{
			Src:    p.Src,
			Dst:    det,
			Dir:    p.Dir,
			onis:   p.onis[:i+1],
			segIdx: p.segIdx[:i],
		}, nil
	}
	return Path{}, fmt.Errorf("ring: ONI %d not downstream on path %d->%d (%s)", det, p.Src, p.Dst, p.Dir)
}

// physSegment maps a direction-qualified resource ID to the physical
// hop geometry: the CCW hop j -> j-1 runs along the same layout trace
// as the CW hop (j-1) -> j.
func (r *Ring) physSegment(rid int) Segment {
	n := r.Size()
	if rid < n {
		return r.segments[rid]
	}
	j := rid - n
	return r.segments[((j-1)%n+n)%n]
}

// LengthCM sums the waveguide length of a path on ring r.
func (r *Ring) LengthCM(p Path) float64 {
	var l float64
	for _, i := range p.segIdx {
		l += r.physSegment(i).LengthCM
	}
	return l
}

// BendCount sums the 90-degree bends along a path on ring r.
func (r *Ring) BendCount(p Path) int {
	var b int
	for _, i := range p.segIdx {
		b += r.physSegment(i).Bends
	}
	return b
}
