package ring

import (
	"fmt"

	"repro/internal/fabric"
)

// Direction selects one of the ring's counter-propagating waveguides.
// The paper's platform is a single clockwise waveguide; the
// Bidirectional configuration adds the ORNoC-style counter-clockwise
// twin (Le Beux et al., the paper's reference [9]), halving worst-case
// hop counts. The two directions are physically separate waveguides:
// they never share segments, conflict or interfere — they map onto
// fabric path lanes.
type Direction int

const (
	// CW travels in increasing ring order (the paper's default).
	CW Direction = iota
	// CCW travels in decreasing ring order on the twin waveguide.
	CCW
)

// String names the direction.
func (d Direction) String() string {
	if d == CCW {
		return "ccw"
	}
	return "cw"
}

// Path is the fabric path type; the ring encodes its waveguide
// direction as the path lane (lane 0 = CW, lane 1 = CCW) and one
// waveguide resource ID per hop: CW hop j->j+1 is resource j; CCW hop
// j->j-1 is resource N+j. Resource IDs never collide across
// directions.
type Path = fabric.Path

// PathDirection reports which waveguide a ring path travels.
func PathDirection(p Path) Direction { return Direction(p.Lane) }

// PathBetween returns the route from src to dst: the unique clockwise
// route on a unidirectional ring, or the hop-shorter of the two
// directions (ties clockwise) when the ring is bidirectional.
// src == dst is rejected: mapped communications always cross the
// optical layer (Definition 3 places communicating tasks on distinct
// cores).
func (r *Ring) PathBetween(src, dst int) (Path, error) {
	if !r.cfg.Bidirectional {
		return r.DirectedPath(src, dst, CW)
	}
	n := r.Size()
	cw := ((dst-src)%n + n) % n
	ccw := n - cw
	if ccw < cw {
		return r.DirectedPath(src, dst, CCW)
	}
	return r.DirectedPath(src, dst, CW)
}

// DirectedPath returns the route from src to dst along the requested
// waveguide. Requesting CCW on a unidirectional ring is an error.
func (r *Ring) DirectedPath(src, dst int, dir Direction) (Path, error) {
	n := r.Size()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Path{}, fmt.Errorf("ring: path endpoints %d->%d outside [0,%d)", src, dst, n)
	}
	if src == dst {
		return Path{}, fmt.Errorf("ring: degenerate path %d->%d", src, dst)
	}
	if dir == CCW && !r.cfg.Bidirectional {
		return Path{}, fmt.Errorf("ring: counter-clockwise waveguide not configured")
	}
	var onis, segIdx []int
	switch dir {
	case CW:
		hops := ((dst-src)%n + n) % n
		onis = make([]int, 0, hops+1)
		segIdx = make([]int, 0, hops)
		for h := 0; h <= hops; h++ {
			onis = append(onis, (src+h)%n)
			if h < hops {
				segIdx = append(segIdx, (src+h)%n)
			}
		}
	case CCW:
		hops := ((src-dst)%n + n) % n
		onis = make([]int, 0, hops+1)
		segIdx = make([]int, 0, hops)
		for h := 0; h <= hops; h++ {
			oni := ((src-h)%n + n) % n
			onis = append(onis, oni)
			if h < hops {
				segIdx = append(segIdx, n+oni)
			}
		}
	default:
		return Path{}, fmt.Errorf("ring: unknown direction %d", int(dir))
	}
	return fabric.NewPath(src, dst, int(dir), onis, segIdx), nil
}

// SelfPath returns the degenerate zero-hop path of a same-core
// communication (see fabric.SelfPath).
func SelfPath(oni int) Path { return fabric.SelfPath(oni) }

// physSegment maps a direction-qualified resource ID to the physical
// hop geometry: the CCW hop j -> j-1 runs along the same layout trace
// as the CW hop (j-1) -> j.
func (r *Ring) physSegment(rid int) Segment {
	n := r.Size()
	if rid < n {
		return r.segments[rid]
	}
	j := rid - n
	return r.segments[((j-1)%n+n)%n]
}

// LengthCM sums the waveguide length of a path on ring r.
func (r *Ring) LengthCM(p Path) float64 {
	var l float64
	for _, i := range p.Resources() {
		l += r.physSegment(i).LengthCM
	}
	return l
}

// BendCount sums the 90-degree bends along a path on ring r.
func (r *Ring) BendCount(p Path) int {
	var b int
	for _, i := range p.Resources() {
		b += r.physSegment(i).Bends
	}
	return b
}
