package ring

import (
	"fmt"

	"repro/internal/phys"
)

// BankState answers whether the micro-ring tuned to grid channel ch in
// the receiver bank of ONI oni is in the ON (dropping) state during
// the time window under analysis. The allocation/schedule layer
// implements this per communication window; the ring layer only walks
// the optics.
type BankState interface {
	On(oni, ch int) bool
}

// BankStateFunc adapts a function to the BankState interface.
type BankStateFunc func(oni, ch int) bool

// On implements BankState.
func (f BankStateFunc) On(oni, ch int) bool { return f(oni, ch) }

// AllOff is the quiescent network: every micro-ring detuned.
var AllOff BankState = BankStateFunc(func(int, int) bool { return false })

// Bank is a concrete mutable BankState, convenient for tests and for
// the simulator's time-evolving receiver state. Internally it packs
// each ONI's micro-ring states into 64-bit words, so the evaluation
// kernel can install a communication's whole wavelength set with one
// word-wise OR (OrRow) instead of per-channel Set calls.
type Bank struct {
	channels int
	words    int // 64-bit words per ONI row: MaskWords(channels)
	on       []uint64
}

// MaskWords returns the number of 64-bit words of a wavelength bitmask
// covering channels comb channels — the row stride shared by Bank and
// the allocation layer's per-communication masks.
func MaskWords(channels int) int { return (channels + 63) / 64 }

// NewBank returns an all-OFF bank matrix for onis x channels rings.
func NewBank(onis, channels int) *Bank {
	w := MaskWords(channels)
	return &Bank{channels: channels, words: w, on: make([]uint64, onis*w)}
}

// Set switches the MR for channel ch at ONI oni.
func (b *Bank) Set(oni, ch int, state bool) {
	if uint(ch) >= uint(b.channels) {
		panic(fmt.Sprintf("ring: bank channel %d outside [0,%d)", ch, b.channels))
	}
	bit := uint64(1) << (uint(ch) & 63)
	i := oni*b.words + ch>>6
	if state {
		b.on[i] |= bit
	} else {
		b.on[i] &^= bit
	}
}

// OrRow switches ON every micro-ring of ONI oni whose bit is set in
// the wavelength mask (laid out as by MaskWords: bit ch of word ch/64
// means comb channel ch). Bits beyond the comb size must be zero.
func (b *Bank) OrRow(oni int, mask []uint64) {
	row := b.on[oni*b.words : (oni+1)*b.words]
	if len(mask) > len(row) {
		panic(fmt.Sprintf("ring: %d-word mask for a %d-word bank row", len(mask), len(row)))
	}
	for w := range mask {
		row[w] |= mask[w]
	}
}

// Reset detunes every micro-ring, returning the bank to the all-OFF
// state without reallocating. Evaluation kernels reuse one bank per
// worker this way.
func (b *Bank) Reset() {
	for i := range b.on {
		b.on[i] = 0
	}
}

// On implements BankState.
func (b *Bank) On(oni, ch int) bool {
	if uint(ch) >= uint(b.channels) {
		panic(fmt.Sprintf("ring: bank channel %d outside [0,%d)", ch, b.channels))
	}
	return b.on[oni*b.words+ch>>6]&(1<<(uint(ch)&63)) != 0
}

// PropagationLossDB returns the waveguide propagation plus bending
// loss (LP + LB of Eq. 6) accumulated along a path.
func (r *Ring) PropagationLossDB(p Path) phys.DB {
	par := r.cfg.Params
	return phys.DB(r.LengthCM(p))*par.PropagationDBPerCM +
		phys.DB(r.BendCount(p))*par.BendingDBPer90
}

// bankWalkDB accumulates the through-losses of channel ch crossing the
// MRs [0, upto) of the receiver bank at ONI oni (Eqs. 2 and 4). MRs
// are assumed to be ordered by grid channel along the waveguide, so a
// signal headed for the detector of channel detCh only crosses the
// rings before it; pass upto = r.Channels() for a full transit.
func (r *Ring) bankWalkDB(oni, ch, upto int, bank BankState) phys.DB {
	par := r.cfg.Params
	var loss phys.DB
	for idx := 0; idx < upto; idx++ {
		state := phys.MRState(bank.On(oni, idx))
		loss += phys.ThroughLossDB(par, state, idx == ch)
	}
	return loss
}

// TransitLossDB returns the loss channel ch accumulates travelling the
// whole path p up to (but not into) the receiver bank of p.Dst:
// propagation and bending along the waveguide plus a full bank walk at
// every interior ONI. If an interior bank has an ON micro-ring at ch
// itself, the signal is (almost entirely) dropped there and only the
// Kp1 residue continues — the situation the allocation validity rule
// exists to prevent, but the optics model it faithfully.
func (r *Ring) TransitLossDB(p Path, ch int, bank BankState) phys.DB {
	loss := r.PropagationLossDB(p)
	for _, oni := range p.Interior() {
		loss += r.bankWalkDB(oni, ch, r.Channels(), bank)
	}
	return loss
}

// ArrivalAlongDB returns the power change with which grid channel ch,
// travelling path p, arrives at the photodetector behind the
// micro-ring tuned to channel detCh at ONI det. det is either the
// path's destination or an ONI the path crosses (the noise analyses
// walk an interferer's light only as far as the victim's receiver).
// It composes the same terms as DetectorArrivalDB but follows the
// caller's path — which matters on bidirectional rings, where the
// shortest route between two ONIs is not necessarily the route the
// interferer took.
func (r *Ring) ArrivalAlongDB(p Path, det, ch, detCh int, bank BankState) (phys.DB, error) {
	prefix := p
	if det != p.Dst {
		var err error
		prefix, err = p.Prefix(det)
		if err != nil {
			return 0, err
		}
	}
	loss := r.TransitLossDB(prefix, ch, bank)
	loss += r.bankWalkDB(det, ch, detCh, bank)
	if ch == detCh {
		loss += phys.DropLossDB(r.cfg.Params, phys.MRState(bank.On(det, detCh)))
	} else {
		loss += r.cfg.Grid.CrosstalkDB(detCh, ch)
	}
	return loss, nil
}

// DetectorArrivalDB returns the power change, relative to the injected
// power at src, with which grid channel ch arrives at the
// photodetector behind the micro-ring tuned to channel detCh at ONI
// det, routed by PathBetween. It composes Eqs. 2-6:
//
//   - waveguide propagation and bending along src -> det,
//   - full receiver-bank transits at every interior ONI,
//   - the partial bank walk at det across the rings ordered before
//     detCh,
//   - and the final coupling into detCh's ring: the drop loss Lp1 for
//     the resonant channel (ch == detCh), or the Lorentzian
//     inter-channel leak Phi(detCh, ch) of Eq. 1 for any other channel
//     — the first-order crosstalk term summed by Eq. 7.
//
// det does not need to be p.Dst for the ch != detCh case: crosstalk
// enters every receiver the signal passes, so callers evaluate noise
// at intermediate receivers with the prefix path src -> det.
func (r *Ring) DetectorArrivalDB(src, det, ch, detCh int, bank BankState) (phys.DB, error) {
	p, err := r.PathBetween(src, det)
	if err != nil {
		return 0, err
	}
	return r.ArrivalAlongDB(p, det, ch, detCh, bank)
}

// SignalArrivalDB is the common case of DetectorArrivalDB for the
// wanted signal itself: channel ch travelling its own path into its
// own detector at p.Dst.
func (r *Ring) SignalArrivalDB(p Path, ch int, bank BankState) phys.DB {
	loss := r.TransitLossDB(p, ch, bank)
	loss += r.bankWalkDB(p.Dst, ch, ch, bank)
	loss += phys.DropLossDB(r.cfg.Params, phys.MRState(bank.On(p.Dst, ch)))
	return loss
}
