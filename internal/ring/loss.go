package ring

import (
	"repro/internal/fabric"
	"repro/internal/phys"
)

// The micro-ring bank state machinery lives in the fabric package
// (shared by every backend); the ring re-exports it so existing
// callers keep compiling.

var _ fabric.Fabric = (*Ring)(nil)

// BankState is the fabric bank-state interface.
type BankState = fabric.BankState

// BankStateFunc adapts a function to the BankState interface.
type BankStateFunc = fabric.BankStateFunc

// AllOff is the quiescent network: every micro-ring detuned.
var AllOff BankState = fabric.AllOff

// Bank is the fabric's concrete mutable BankState.
type Bank = fabric.Bank

// MaskWords returns the wavelength-bitmask word stride (see
// fabric.MaskWords).
func MaskWords(channels int) int { return fabric.MaskWords(channels) }

// NewBank returns an all-OFF bank matrix for onis x channels rings.
func NewBank(onis, channels int) *Bank { return fabric.NewBank(onis, channels) }

// PropagationLossDB returns the waveguide propagation plus bending
// loss (LP + LB of Eq. 6) accumulated along a path.
func (r *Ring) PropagationLossDB(p Path) phys.DB {
	par := r.cfg.Params
	return phys.DB(r.LengthCM(p))*par.PropagationDBPerCM +
		phys.DB(r.BendCount(p))*par.BendingDBPer90
}

// TransitLossDB returns the loss channel ch accumulates travelling the
// whole path p up to (but not into) the receiver bank of p.Dst:
// propagation and bending along the waveguide plus a full bank walk at
// every interior ONI (Eqs. 2 and 4, via fabric.BankWalkDB). If an
// interior bank has an ON micro-ring at ch itself, the signal is
// (almost entirely) dropped there and only the Kp1 residue continues —
// the situation the allocation validity rule exists to prevent, but
// the optics model it faithfully.
func (r *Ring) TransitLossDB(p Path, ch int, bank BankState) phys.DB {
	loss := r.PropagationLossDB(p)
	for _, oni := range p.Interior() {
		loss += fabric.BankWalkDB(r.cfg.Params, oni, ch, r.Channels(), bank)
	}
	return loss
}

// ArrivalAlongDB returns the power change with which grid channel ch,
// travelling path p, arrives at the photodetector behind the
// micro-ring tuned to channel detCh at ONI det. det is either the
// path's destination or an ONI the path crosses (the noise analyses
// walk an interferer's light only as far as the victim's receiver).
// It composes the same terms as DetectorArrivalDB but follows the
// caller's path — which matters on bidirectional rings, where the
// shortest route between two ONIs is not necessarily the route the
// interferer took.
func (r *Ring) ArrivalAlongDB(p Path, det, ch, detCh int, bank BankState) (phys.DB, error) {
	prefix := p
	if det != p.Dst {
		var err error
		prefix, err = p.Prefix(det)
		if err != nil {
			return 0, err
		}
	}
	loss := r.TransitLossDB(prefix, ch, bank)
	loss += fabric.BankWalkDB(r.cfg.Params, det, ch, detCh, bank)
	if ch == detCh {
		loss += phys.DropLossDB(r.cfg.Params, phys.MRState(bank.On(det, detCh)))
	} else {
		loss += r.cfg.Grid.CrosstalkDB(detCh, ch)
	}
	return loss, nil
}

// DetectorArrivalDB returns the power change, relative to the injected
// power at src, with which grid channel ch arrives at the
// photodetector behind the micro-ring tuned to channel detCh at ONI
// det, routed by PathBetween. It composes Eqs. 2-6:
//
//   - waveguide propagation and bending along src -> det,
//   - full receiver-bank transits at every interior ONI,
//   - the partial bank walk at det across the rings ordered before
//     detCh,
//   - and the final coupling into detCh's ring: the drop loss Lp1 for
//     the resonant channel (ch == detCh), or the Lorentzian
//     inter-channel leak Phi(detCh, ch) of Eq. 1 for any other channel
//     — the first-order crosstalk term summed by Eq. 7.
//
// det does not need to be p.Dst for the ch != detCh case: crosstalk
// enters every receiver the signal passes, so callers evaluate noise
// at intermediate receivers with the prefix path src -> det.
func (r *Ring) DetectorArrivalDB(src, det, ch, detCh int, bank BankState) (phys.DB, error) {
	p, err := r.PathBetween(src, det)
	if err != nil {
		return 0, err
	}
	return r.ArrivalAlongDB(p, det, ch, detCh, bank)
}

// SignalArrivalDB is the common case of DetectorArrivalDB for the
// wanted signal itself: channel ch travelling its own path into its
// own detector at p.Dst.
func (r *Ring) SignalArrivalDB(p Path, ch int, bank BankState) phys.DB {
	loss := r.TransitLossDB(p, ch, bank)
	loss += fabric.BankWalkDB(r.cfg.Params, p.Dst, ch, ch, bank)
	loss += phys.DropLossDB(r.cfg.Params, phys.MRState(bank.On(p.Dst, ch)))
	return loss
}
