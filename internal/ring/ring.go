// Package ring models the ring-based WDM 3D optical NoC architecture
// of the paper: a rows x cols grid of IP cores on the electrical layer,
// each connected through a TSV to an Optical Network Interface (ONI) on
// the optical layer, all ONIs threaded by a single unidirectional
// serpentine waveguide closed into a ring (Fig. 1 and Fig. 5(b)).
//
// The package provides the geometry (waveguide lengths and bend counts
// per hop), directed path enumeration, and the per-wavelength optical
// loss budget of Eqs. 2-6 together with the first-order crosstalk
// arrival model feeding Eq. 7. It is purely structural: which micro
// rings are ON at a given instant is supplied by the caller through
// the BankState interface, because that state is decided by the
// wavelength allocation and the application schedule.
package ring

import (
	"fmt"

	"repro/internal/phys"
)

// Config describes a ring ONoC instance.
type Config struct {
	// Rows and Cols give the core grid (4x4 = 16 cores in the paper).
	Rows, Cols int
	// TilePitchCM is the centre-to-centre tile distance in
	// centimetres; it scales the propagation-loss term. The default
	// 0.2 cm (2 mm tiles) is a typical MPSoC tile pitch.
	TilePitchCM float64
	// Grid is the WDM wavelength comb.
	Grid phys.Grid
	// Params are the device power parameters (Table I).
	Params phys.Params
	// Bidirectional adds the ORNoC-style counter-clockwise twin
	// waveguide (the paper's reference [9]); routes then take the
	// hop-shorter direction. The paper's own evaluation platform is
	// unidirectional (false).
	Bidirectional bool
}

// DefaultConfig returns the paper's evaluation platform: a 4x4 core
// grid with the Table I device parameters and an NW-channel comb.
func DefaultConfig(channels int) Config {
	return Config{
		Rows:        4,
		Cols:        4,
		TilePitchCM: 0.2,
		Grid:        phys.DefaultGrid(channels),
		Params:      phys.DefaultParams(),
	}
}

// Segment is one directed hop of the waveguide between consecutive
// ONIs in ring order.
type Segment struct {
	// From and To are ring positions (equal to core IDs in the
	// serpentine numbering of Fig. 5(b)).
	From, To int
	// LengthCM is the waveguide length of the hop.
	LengthCM float64
	// Bends is the number of 90-degree bends along the hop.
	Bends int
}

// Ring is an immutable ring ONoC instance.
type Ring struct {
	cfg      Config
	segments []Segment // segments[i] connects ONI i to ONI (i+1) mod N
}

// New builds the ring, deriving per-hop geometry from the serpentine
// layout: horizontal hops inside a row are one pitch long with no
// bends; the row-turn hops at row ends are one pitch long with two
// 90-degree bends; the closing hop from the last ONI back to ONI 0
// runs up the left edge ((rows-1) pitches) with two bends.
func New(cfg Config) (*Ring, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("ring: grid %dx%d must be positive", cfg.Rows, cfg.Cols)
	}
	if cfg.Rows*cfg.Cols < 2 {
		return nil, fmt.Errorf("ring: need at least 2 cores, got %d", cfg.Rows*cfg.Cols)
	}
	if cfg.TilePitchCM <= 0 {
		return nil, fmt.Errorf("ring: tile pitch must be positive, got %v", cfg.TilePitchCM)
	}
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	segs := make([]Segment, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		seg := Segment{From: i, To: next, LengthCM: cfg.TilePitchCM}
		switch {
		case next == 0:
			// Closing hop up the left edge of the chip.
			seg.LengthCM = float64(cfg.Rows-1) * cfg.TilePitchCM
			seg.Bends = 2
		case (i+1)%cfg.Cols == 0:
			// End of a row: the serpentine turns down to the next row.
			seg.Bends = 2
		}
		segs[i] = seg
	}
	return &Ring{cfg: cfg, segments: segs}, nil
}

// Config returns the configuration the ring was built from.
func (r *Ring) Config() Config { return r.cfg }

// Name implements fabric.Fabric.
func (r *Ring) Name() string { return "ring" }

// ResourceName implements fabric.Fabric: the ring's shared-medium
// unit is the waveguide segment.
func (r *Ring) ResourceName() string { return "segment" }

// Grid implements fabric.Fabric.
func (r *Ring) Grid() phys.Grid { return r.cfg.Grid }

// Params implements fabric.Fabric.
func (r *Ring) Params() phys.Params { return r.cfg.Params }

// Size returns the number of ONIs on the ring.
func (r *Ring) Size() int { return len(r.segments) }

// Channels returns NW, the number of wavelengths of the comb.
func (r *Ring) Channels() int { return r.cfg.Grid.Channels }

// Segment returns the directed hop leaving ring position i.
func (r *Ring) Segment(i int) Segment { return r.segments[i] }

// Coord converts a serpentine core ID to grid coordinates.
func (r *Ring) Coord(id int) (row, col int) {
	row = id / r.cfg.Cols
	col = id % r.cfg.Cols
	if row%2 == 1 {
		col = r.cfg.Cols - 1 - col
	}
	return row, col
}

// CoreAt converts grid coordinates to the serpentine core ID.
func (r *Ring) CoreAt(row, col int) int {
	if row%2 == 1 {
		col = r.cfg.Cols - 1 - col
	}
	return row*r.cfg.Cols + col
}
