package ring

import "testing"

func mustBidir(t *testing.T, channels int) *Ring {
	t.Helper()
	cfg := DefaultConfig(channels)
	cfg.Bidirectional = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBidirectionalPicksShorterDirection(t *testing.T) {
	r := mustBidir(t, 8)
	// 1 -> 14 is 13 hops clockwise but only 3 counter-clockwise.
	p, err := r.PathBetween(1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if PathDirection(p) != CCW || p.Hops() != 3 {
		t.Errorf("path 1->14 = %s %d hops, want ccw 3", PathDirection(p), p.Hops())
	}
	// 1 -> 4 stays clockwise.
	q, err := r.PathBetween(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if PathDirection(q) != CW || q.Hops() != 3 {
		t.Errorf("path 1->4 = %s %d hops, want cw 3", PathDirection(q), q.Hops())
	}
	// Exact halves tie clockwise.
	h, err := r.PathBetween(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if PathDirection(h) != CW || h.Hops() != 8 {
		t.Errorf("path 0->8 = %s %d hops, want cw 8 (tie)", PathDirection(h), h.Hops())
	}
}

func TestBidirectionalHalvesWorstCase(t *testing.T) {
	r := mustBidir(t, 8)
	uni := mustRing(t, 8)
	for src := 0; src < r.Size(); src++ {
		for dst := 0; dst < r.Size(); dst++ {
			if src == dst {
				continue
			}
			bp, err := r.PathBetween(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			up, err := uni.PathBetween(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if bp.Hops() > up.Hops() {
				t.Fatalf("%d->%d: bidirectional %d hops beats unidirectional %d?",
					src, dst, bp.Hops(), up.Hops())
			}
			if bp.Hops() > r.Size()/2 {
				t.Fatalf("%d->%d: %d hops exceeds half the ring", src, dst, bp.Hops())
			}
		}
	}
}

func TestCCWPathSequence(t *testing.T) {
	r := mustBidir(t, 8)
	p, err := r.DirectedPath(2, 14, CCW)
	if err != nil {
		t.Fatal(err)
	}
	wantONIs := []int{2, 1, 0, 15, 14}
	got := p.ONIs()
	if len(got) != len(wantONIs) {
		t.Fatalf("ONIs = %v, want %v", got, wantONIs)
	}
	for i := range wantONIs {
		if got[i] != wantONIs[i] {
			t.Fatalf("ONIs = %v, want %v", got, wantONIs)
		}
	}
	// Interior excludes endpoints.
	in := p.Interior()
	if len(in) != 3 || in[0] != 1 || in[2] != 15 {
		t.Errorf("interior = %v, want [1 0 15]", in)
	}
	// Resource IDs are direction-qualified (>= N).
	for _, s := range p.Resources() {
		if s < r.Size() {
			t.Errorf("CCW resource id %d collides with CW space", s)
		}
	}
}

func TestCCWRequiresBidirectionalConfig(t *testing.T) {
	uni := mustRing(t, 8)
	if _, err := uni.DirectedPath(2, 1, CCW); err == nil {
		t.Error("CCW on a unidirectional ring must fail")
	}
}

func TestCounterPropagatingPathsNeverOverlap(t *testing.T) {
	r := mustBidir(t, 8)
	cw, err := r.DirectedPath(0, 8, CW)
	if err != nil {
		t.Fatal(err)
	}
	ccw, err := r.DirectedPath(8, 0, CCW)
	if err != nil {
		t.Fatal(err)
	}
	// Same physical trace, opposite waveguides: no shared resource.
	if cw.Overlaps(ccw) || ccw.Overlaps(cw) {
		t.Error("counter-propagating paths must not overlap")
	}
	// Same-direction overlap still detected.
	ccw2, err := r.DirectedPath(10, 2, CCW)
	if err != nil {
		t.Fatal(err)
	}
	if !ccw.Overlaps(ccw2) {
		t.Error("co-propagating CCW paths sharing hops must overlap")
	}
}

func TestCCWGeometryMirrorsCW(t *testing.T) {
	r := mustBidir(t, 8)
	cw, err := r.DirectedPath(3, 7, CW)
	if err != nil {
		t.Fatal(err)
	}
	ccw, err := r.DirectedPath(7, 3, CCW)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.LengthCM(ccw), r.LengthCM(cw); got != want {
		t.Errorf("CCW length %v, CW length %v: the twin runs the same trace", got, want)
	}
	if got, want := r.BendCount(ccw), r.BendCount(cw); got != want {
		t.Errorf("CCW bends %v, CW bends %v", got, want)
	}
}

func TestPrefix(t *testing.T) {
	r := mustBidir(t, 8)
	p, err := r.DirectedPath(1, 9, CW)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := p.Prefix(5)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Src != 1 || pre.Dst != 5 || pre.Hops() != 4 || PathDirection(pre) != CW {
		t.Errorf("prefix = %+v", pre)
	}
	// Prefix to the destination is the whole path.
	full, err := p.Prefix(9)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hops() != p.Hops() {
		t.Errorf("prefix to dst = %d hops, want %d", full.Hops(), p.Hops())
	}
	// ONIs not on the path (or the source itself) are rejected.
	if _, err := p.Prefix(12); err == nil {
		t.Error("prefix to off-path ONI must fail")
	}
	if _, err := p.Prefix(1); err == nil {
		t.Error("prefix to the source must fail")
	}
}

func TestArrivalAlongFollowsCallerPath(t *testing.T) {
	// On a bidirectional ring, an interferer travelling CCW through
	// the victim's receiver must be walked along its own (long)
	// route, not the shortest one.
	r := mustBidir(t, 8)
	long, err := r.DirectedPath(2, 10, CCW) // 2->1->0->15->...->10, 8 hops
	if err != nil {
		t.Fatal(err)
	}
	det := 14 // on the CCW route
	if !long.Through(det) {
		t.Fatal("test setup: detector not on the CCW route")
	}
	bank := NewBank(r.Size(), r.Channels())
	bank.Set(det, 3, true)
	alongCCW, err := r.ArrivalAlongDB(long, det, 5, 3, bank)
	if err != nil {
		t.Fatal(err)
	}
	// The shortest 2->14 route is CCW 4 hops; the interferer's prefix
	// 2->...->14 is also CCW 4 hops here, so compare against the CW
	// walk instead to show the difference.
	cwPath, err := r.DirectedPath(2, 14, CW)
	if err != nil {
		t.Fatal(err)
	}
	alongCW, err := r.ArrivalAlongDB(cwPath, det, 5, 3, bank)
	if err != nil {
		t.Fatal(err)
	}
	if alongCCW == alongCW {
		t.Error("12-hop CW walk and 4-hop CCW walk cannot lose identically")
	}
	if alongCCW < alongCW {
		t.Error("the shorter CCW prefix must arrive stronger")
	}
}
