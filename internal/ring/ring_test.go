package ring

import (
	"testing"

	"repro/internal/phys"
)

func mustRing(t *testing.T, channels int) *Ring {
	t.Helper()
	r, err := New(DefaultConfig(channels))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rows", func(c *Config) { c.Rows = 0 }},
		{"zero cols", func(c *Config) { c.Cols = 0 }},
		{"single core", func(c *Config) { c.Rows, c.Cols = 1, 1 }},
		{"zero pitch", func(c *Config) { c.TilePitchCM = 0 }},
		{"bad grid", func(c *Config) { c.Grid.Channels = 0 }},
		{"bad params", func(c *Config) { c.Params.LossOnMR = 1 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig(8)
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRingSizeAndChannels(t *testing.T) {
	r := mustRing(t, 8)
	if r.Size() != 16 {
		t.Errorf("Size = %d, want 16", r.Size())
	}
	if r.Channels() != 8 {
		t.Errorf("Channels = %d, want 8", r.Channels())
	}
}

func TestSerpentineCoords(t *testing.T) {
	// Fig. 5(b) numbering:
	//  0  1  2  3
	//  7  6  5  4
	//  8  9 10 11
	// 15 14 13 12
	r := mustRing(t, 4)
	wants := map[int][2]int{
		0:  {0, 0},
		3:  {0, 3},
		4:  {1, 3},
		7:  {1, 0},
		8:  {2, 0},
		11: {2, 3},
		12: {3, 3},
		15: {3, 0},
	}
	for id, rc := range wants {
		row, col := r.Coord(id)
		if row != rc[0] || col != rc[1] {
			t.Errorf("Coord(%d) = (%d,%d), want (%d,%d)", id, row, col, rc[0], rc[1])
		}
		if back := r.CoreAt(rc[0], rc[1]); back != id {
			t.Errorf("CoreAt(%d,%d) = %d, want %d", rc[0], rc[1], back, id)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	r := mustRing(t, 4)
	for id := 0; id < r.Size(); id++ {
		row, col := r.Coord(id)
		if back := r.CoreAt(row, col); back != id {
			t.Errorf("round trip %d -> (%d,%d) -> %d", id, row, col, back)
		}
	}
}

func TestSegmentGeometry(t *testing.T) {
	r := mustRing(t, 4)
	pitch := r.Config().TilePitchCM
	// In-row hop: one pitch, no bends.
	s01 := r.Segment(0)
	if s01.LengthCM != pitch || s01.Bends != 0 {
		t.Errorf("segment 0->1 = %+v, want straight pitch", s01)
	}
	// Row-turn hop 3->4: one pitch, two bends.
	s34 := r.Segment(3)
	if s34.LengthCM != pitch || s34.Bends != 2 {
		t.Errorf("segment 3->4 = %+v, want pitch with 2 bends", s34)
	}
	// Closing hop 15->0: three pitches up the left edge, two bends.
	s150 := r.Segment(15)
	if s150.To != 0 || s150.LengthCM != 3*pitch || s150.Bends != 2 {
		t.Errorf("segment 15->0 = %+v, want 3 pitches with 2 bends", s150)
	}
}

func TestPathBetween(t *testing.T) {
	r := mustRing(t, 4)
	p, err := r.PathBetween(1, 5)
	if err != nil {
		t.Fatalf("PathBetween: %v", err)
	}
	if p.Hops() != 4 {
		t.Errorf("hops 1->5 = %d, want 4", p.Hops())
	}
	want := []int{1, 2, 3, 4}
	for i, s := range p.Resources() {
		if s != want[i] {
			t.Errorf("segment[%d] = %d, want %d", i, s, want[i])
		}
	}
}

func TestPathWrapsAround(t *testing.T) {
	r := mustRing(t, 4)
	p, err := r.PathBetween(14, 2)
	if err != nil {
		t.Fatalf("PathBetween: %v", err)
	}
	if p.Hops() != 4 {
		t.Errorf("hops 14->2 = %d, want 4 (wrap)", p.Hops())
	}
	want := []int{14, 15, 0, 1}
	for i, s := range p.Resources() {
		if s != want[i] {
			t.Errorf("segment[%d] = %d, want %d", i, s, want[i])
		}
	}
}

func TestPathErrors(t *testing.T) {
	r := mustRing(t, 4)
	if _, err := r.PathBetween(3, 3); err == nil {
		t.Error("self path must be rejected")
	}
	if _, err := r.PathBetween(-1, 3); err == nil {
		t.Error("negative source must be rejected")
	}
	if _, err := r.PathBetween(0, 16); err == nil {
		t.Error("out-of-range destination must be rejected")
	}
}

func TestPathInteriorAndThrough(t *testing.T) {
	r := mustRing(t, 4)
	p, _ := r.PathBetween(1, 5)
	in := p.Interior()
	want := []int{2, 3, 4}
	if len(in) != len(want) {
		t.Fatalf("interior = %v, want %v", in, want)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("interior = %v, want %v", in, want)
		}
	}
	if p.Through(1) {
		t.Error("source bank is not crossed")
	}
	for _, o := range []int{2, 3, 4, 5} {
		if !p.Through(o) {
			t.Errorf("ONI %d should be crossed", o)
		}
	}
	if p.Through(6) {
		t.Error("ONI past the destination is not crossed")
	}
	// Single-hop path has no interior.
	q, _ := r.PathBetween(0, 1)
	if len(q.Interior()) != 0 {
		t.Errorf("single hop interior = %v, want empty", q.Interior())
	}
}

func TestPathOverlaps(t *testing.T) {
	r := mustRing(t, 4)
	a, _ := r.PathBetween(1, 5)
	b, _ := r.PathBetween(4, 8)  // shares segment 4
	c, _ := r.PathBetween(5, 9)  // disjoint from a (starts where a ends)
	d, _ := r.PathBetween(0, 15) // covers almost the whole ring
	if !a.Overlaps(b) {
		t.Error("1->5 and 4->8 share segment 4")
	}
	if a.Overlaps(c) {
		t.Error("1->5 and 5->9 share no segment")
	}
	if !a.Overlaps(d) || !c.Overlaps(d) {
		t.Error("0->15 overlaps everything inside it")
	}
	if !a.Overlaps(a) {
		t.Error("a path overlaps itself")
	}
}

func TestPathLengthAndBends(t *testing.T) {
	r := mustRing(t, 4)
	pitch := r.Config().TilePitchCM
	p, _ := r.PathBetween(0, 3) // three straight in-row hops
	if got := r.LengthCM(p); !floatEq(got, 3*pitch) {
		t.Errorf("length 0->3 = %v, want %v", got, 3*pitch)
	}
	if got := r.BendCount(p); got != 0 {
		t.Errorf("bends 0->3 = %d, want 0", got)
	}
	q, _ := r.PathBetween(0, 8) // crosses two row turns
	if got := r.BendCount(q); got != 4 {
		t.Errorf("bends 0->8 = %d, want 4", got)
	}
	// Whole-ring-minus-one-hop path touches every geometry feature.
	w, _ := r.PathBetween(0, 15)
	wantLen := 14*pitch + 0 // 15 hops of one pitch... all but closing hop
	wantLen = 15 * pitch
	if got := r.LengthCM(w); !floatEq(got, wantLen) {
		t.Errorf("length 0->15 = %v, want %v", got, wantLen)
	}
}

func floatEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}

func TestPropagationLossScalesWithDistance(t *testing.T) {
	r := mustRing(t, 8)
	short, _ := r.PathBetween(0, 1)
	long, _ := r.PathBetween(0, 12)
	ls := r.PropagationLossDB(short)
	ll := r.PropagationLossDB(long)
	if ls >= 0 || ll >= 0 {
		t.Fatalf("losses must be negative: short %v long %v", ls, ll)
	}
	if ll >= ls {
		t.Errorf("longer path must lose more: short %v long %v", ls, ll)
	}
}

func TestSignalArrivalQuiescentNetwork(t *testing.T) {
	// With every MR OFF except the destination drop, the budget is
	// propagation + bends + (hops' worth of OFF banks) + Lp1 drop.
	r := mustRing(t, 8)
	p, _ := r.PathBetween(1, 5)
	bank := NewBank(r.Size(), r.Channels())
	bank.Set(5, 0, true) // destination receives channel 0
	got := r.SignalArrivalDB(p, 0, bank)

	par := r.Config().Params
	want := r.PropagationLossDB(p)
	// Interior ONIs 2,3,4: full 8-MR OFF bank walks.
	want += phys.DB(3*8) * par.LossOffMR
	// At the destination, channel 0 crosses no earlier rings; its own
	// drop costs Lp1.
	want += par.LossOnMR
	if !floatEq(float64(got), float64(want)) {
		t.Errorf("arrival = %v dB, want %v dB", got, want)
	}
}

func TestSignalArrivalPaysForEarlierOnRings(t *testing.T) {
	// A signal on a high channel crosses the ON rings of the same
	// communication's lower channels at the destination and pays Lp1
	// for each: the physical driver of the paper's energy growth with
	// wavelength count.
	r := mustRing(t, 8)
	p, _ := r.PathBetween(1, 5)
	single := NewBank(r.Size(), r.Channels())
	single.Set(5, 7, true)
	lone := r.SignalArrivalDB(p, 7, single)

	crowd := NewBank(r.Size(), r.Channels())
	for ch := 0; ch < 8; ch++ {
		crowd.Set(5, ch, true)
	}
	crowded := r.SignalArrivalDB(p, 7, crowd)
	par := r.Config().Params
	wantDiff := phys.DB(7) * (par.LossOnMR - par.LossOffMR)
	if !floatEq(float64(crowded-lone), float64(wantDiff)) {
		t.Errorf("crowded-lone = %v dB, want %v dB", crowded-lone, wantDiff)
	}
}

func TestTransitLossResonantInteriorRingDropsSignal(t *testing.T) {
	// If an interior ONI has an ON ring at our channel (the conflict
	// the validity rule forbids), only the Kp1 residue survives.
	r := mustRing(t, 8)
	p, _ := r.PathBetween(1, 5)
	bank := NewBank(r.Size(), r.Channels())
	bank.Set(3, 2, true) // interior ONI 3 steals channel 2
	stolen := r.TransitLossDB(p, 2, bank)
	clean := r.TransitLossDB(p, 2, AllOff)
	par := r.Config().Params
	wantDiff := par.XtalkOnMR - par.LossOffMR // Kp1 instead of Lp0 at one ring
	if !floatEq(float64(stolen-clean), float64(wantDiff)) {
		t.Errorf("stolen-clean = %v dB, want %v dB", stolen-clean, wantDiff)
	}
}

func TestDetectorArrivalCrosstalkBelowSignal(t *testing.T) {
	// A neighbouring channel's leak into the detector must sit far
	// below the resonant signal's arrival (by roughly the Lorentzian
	// rejection).
	r := mustRing(t, 8)
	bank := NewBank(r.Size(), r.Channels())
	bank.Set(5, 3, true)
	bank.Set(5, 4, true)
	sig, err := r.DetectorArrivalDB(1, 5, 3, 3, bank)
	if err != nil {
		t.Fatalf("signal arrival: %v", err)
	}
	leak, err := r.DetectorArrivalDB(1, 5, 4, 3, bank)
	if err != nil {
		t.Fatalf("leak arrival: %v", err)
	}
	if leak >= sig {
		t.Fatalf("crosstalk (%v dB) must arrive below signal (%v dB)", leak, sig)
	}
	if sig-leak < 20 {
		t.Errorf("rejection = %v dB, want > 20 dB at one channel spacing", sig-leak)
	}
}

func TestDetectorArrivalRejectsBadEndpoints(t *testing.T) {
	r := mustRing(t, 8)
	if _, err := r.DetectorArrivalDB(3, 3, 0, 0, AllOff); err == nil {
		t.Error("src == det must error")
	}
	if _, err := r.DetectorArrivalDB(-1, 3, 0, 0, AllOff); err == nil {
		t.Error("bad src must error")
	}
}

func TestBankSetAndQuery(t *testing.T) {
	b := NewBank(4, 3)
	if b.On(2, 1) {
		t.Error("new bank must be all OFF")
	}
	b.Set(2, 1, true)
	if !b.On(2, 1) {
		t.Error("Set(true) not visible")
	}
	if b.On(1, 2) || b.On(2, 0) {
		t.Error("Set must not leak to other cells")
	}
	b.Set(2, 1, false)
	if b.On(2, 1) {
		t.Error("Set(false) not visible")
	}
}

func TestAllOffBank(t *testing.T) {
	if AllOff.On(0, 0) || AllOff.On(5, 7) {
		t.Error("AllOff must report every ring OFF")
	}
}

func TestAreaModel(t *testing.T) {
	r := mustRing(t, 8)
	a := r.Area(DefaultAreaModel())
	// 16 ONIs x 8 channels of each device class.
	if a.MRs != 128 || a.Lasers != 128 || a.Photodetectors != 128 {
		t.Errorf("device counts = %+v, want 128 each", a)
	}
	if a.WaveguideCM <= 0 || a.TotalMM2 <= 0 {
		t.Errorf("degenerate area: %+v", a)
	}
	// More wavelengths cost more area (the paper's closing remark on
	// Fig. 6(a)).
	r12 := mustRing(t, 12)
	a12 := r12.Area(DefaultAreaModel())
	if a12.TotalMM2 <= a.TotalMM2 {
		t.Errorf("area must grow with NW: %v vs %v mm^2", a12.TotalMM2, a.TotalMM2)
	}
}

func TestAreaBidirectionalDoubles(t *testing.T) {
	uni := mustRing(t, 8)
	bi := mustBidir(t, 8)
	au := uni.Area(DefaultAreaModel())
	ab := bi.Area(DefaultAreaModel())
	if ab.MRs != 2*au.MRs {
		t.Errorf("twin waveguide MRs = %d, want %d", ab.MRs, 2*au.MRs)
	}
	if ab.WaveguideCM != 2*au.WaveguideCM {
		t.Errorf("twin waveguide length = %v, want %v", ab.WaveguideCM, 2*au.WaveguideCM)
	}
	if ab.TotalMM2 <= au.TotalMM2 {
		t.Error("twin waveguide must cost more area")
	}
}
