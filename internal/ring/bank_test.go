package ring

import (
	"math/rand"
	"testing"
)

// TestMaskWords pins the bitmask stride shared with the allocation
// layer.
func TestMaskWords(t *testing.T) {
	cases := map[int]int{1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for channels, want := range cases {
		if got := MaskWords(channels); got != want {
			t.Errorf("MaskWords(%d) = %d, want %d", channels, got, want)
		}
	}
}

// TestBankOrRowMatchesSets proves the word-wise row install is
// equivalent to per-channel Set calls, across word-boundary comb
// sizes and random masks.
func TestBankOrRowMatchesSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, channels := range []int{3, 8, 64, 65, 130} {
		words := MaskWords(channels)
		for trial := 0; trial < 50; trial++ {
			onis := 2 + rng.Intn(6)
			mask := make([]uint64, words)
			for ch := 0; ch < channels; ch++ {
				if rng.Intn(2) == 0 {
					mask[ch>>6] |= 1 << (uint(ch) & 63)
				}
			}
			oni := rng.Intn(onis)

			viaOr := NewBank(onis, channels)
			viaOr.OrRow(oni, mask)
			viaSet := NewBank(onis, channels)
			for ch := 0; ch < channels; ch++ {
				if mask[ch>>6]&(1<<(uint(ch)&63)) != 0 {
					viaSet.Set(oni, ch, true)
				}
			}
			for o := 0; o < onis; o++ {
				for ch := 0; ch < channels; ch++ {
					if viaOr.On(o, ch) != viaSet.On(o, ch) {
						t.Fatalf("channels=%d oni=%d ch=%d: OrRow %v, Set %v",
							channels, o, ch, viaOr.On(o, ch), viaSet.On(o, ch))
					}
				}
			}
		}
	}
}

// TestBankOrRowAccumulates proves OrRow merges with existing state
// instead of overwriting it, and Reset clears everything.
func TestBankOrRowAccumulates(t *testing.T) {
	b := NewBank(3, 8)
	b.Set(1, 0, true)
	b.OrRow(1, []uint64{0b10})
	if !b.On(1, 0) || !b.On(1, 1) {
		t.Fatal("OrRow must OR into the existing row")
	}
	if b.On(0, 0) || b.On(2, 1) {
		t.Fatal("OrRow leaked into other ONI rows")
	}
	b.Reset()
	for o := 0; o < 3; o++ {
		for ch := 0; ch < 8; ch++ {
			if b.On(o, ch) {
				t.Fatal("Reset left a micro-ring on")
			}
		}
	}
}

// TestBankChannelBoundsPanic pins the fail-loud contract for
// out-of-comb channels, which the packed representation would
// otherwise silently mis-index.
func TestBankChannelBoundsPanic(t *testing.T) {
	b := NewBank(2, 8)
	for name, f := range map[string]func(){
		"Set": func() { b.Set(0, 8, true) },
		"On":  func() { _ = b.On(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with an out-of-range channel must panic", name)
				}
			}()
			f()
		}()
	}
}
