package ring

import "repro/internal/fabric"

// The paper closes its Fig. 6(a) discussion with "a growing number of
// wavelengths increases the area cost". This file makes that remark
// quantitative with a first-order photonic area model: every ONI
// carries one receiver micro-ring, one photodetector and one
// modulating laser per comb channel, and the serpentine waveguide
// occupies its trace; a bidirectional ring doubles both the waveguide
// and the per-ONI interfaces. The model types live in the fabric
// package, shared by every backend.

// AreaModel holds per-device footprints in square micrometres.
type AreaModel = fabric.AreaModel

// DefaultAreaModel returns typical silicon-photonics footprints.
func DefaultAreaModel() AreaModel { return fabric.DefaultAreaModel() }

// Area summarizes the optical layer's footprint.
type Area = fabric.Area

// Area evaluates the model on this ring.
func (r *Ring) Area(m AreaModel) Area {
	dirs := 1
	if r.cfg.Bidirectional {
		dirs = 2
	}
	perONI := r.Channels() * dirs
	a := Area{
		MRs:            r.Size() * perONI,
		Lasers:         r.Size() * perONI,
		Photodetectors: r.Size() * perONI,
	}
	for i := 0; i < r.Size(); i++ {
		a.WaveguideCM += r.segments[i].LengthCM
	}
	a.WaveguideCM *= float64(dirs)
	a.Total(m)
	return a
}
