package ring

// The paper closes its Fig. 6(a) discussion with "a growing number of
// wavelengths increases the area cost". This file makes that remark
// quantitative with a first-order photonic area model: every ONI
// carries one receiver micro-ring, one photodetector and one
// modulating laser per comb channel, and the serpentine waveguide
// occupies its trace; a bidirectional ring doubles both the waveguide
// and the per-ONI interfaces.

// AreaModel holds per-device footprints in square micrometres.
type AreaModel struct {
	// MRUM2 is one micro-ring resonator's footprint (a ~10 um ring
	// with its tuning pad).
	MRUM2 float64
	// LaserUM2 is one on-chip VCSEL.
	LaserUM2 float64
	// PhotodetectorUM2 is one germanium photodetector.
	PhotodetectorUM2 float64
	// WaveguideWidthUM is the waveguide trace width, multiplied by
	// the routed length.
	WaveguideWidthUM float64
}

// DefaultAreaModel returns typical silicon-photonics footprints.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		MRUM2:            150,
		LaserUM2:         400,
		PhotodetectorUM2: 100,
		WaveguideWidthUM: 0.5,
	}
}

// Area summarizes the optical layer's footprint.
type Area struct {
	// MRs, Lasers and Photodetectors count devices over the whole
	// ring.
	MRs, Lasers, Photodetectors int
	// WaveguideCM is the total routed waveguide length.
	WaveguideCM float64
	// TotalMM2 is the summed footprint in square millimetres.
	TotalMM2 float64
}

// Area evaluates the model on this ring.
func (r *Ring) Area(m AreaModel) Area {
	dirs := 1
	if r.cfg.Bidirectional {
		dirs = 2
	}
	perONI := r.Channels() * dirs
	a := Area{
		MRs:            r.Size() * perONI,
		Lasers:         r.Size() * perONI,
		Photodetectors: r.Size() * perONI,
	}
	for i := 0; i < r.Size(); i++ {
		a.WaveguideCM += r.segments[i].LengthCM
	}
	a.WaveguideCM *= float64(dirs)
	deviceUM2 := float64(a.MRs)*m.MRUM2 +
		float64(a.Lasers)*m.LaserUM2 +
		float64(a.Photodetectors)*m.PhotodetectorUM2
	waveguideUM2 := a.WaveguideCM * 1e4 * m.WaveguideWidthUM
	a.TotalMM2 = (deviceUM2 + waveguideUM2) / 1e6
	return a
}
