package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanKnown(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty must be NaN")
	}
}

func TestStdDevKnown(t *testing.T) {
	// Sample std of {2,4,4,4,5,5,7,9} is ~2.138 (n-1 form).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("std = %v, want ~2.138", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("singleton std must be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("empty std must be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("odd median = %v, want 3", Median(xs))
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty-sample extrema must be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("median must not sort the caller's slice")
	}
}

func TestDescribeAndString(t *testing.T) {
	s := Describe([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("describe = %+v", s)
	}
	out := s.String()
	if !strings.Contains(out, "n=3") {
		t.Errorf("summary string %q", out)
	}
}

func TestStatsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Describe(xs)
		// Ordering invariants.
		if !(s.Min <= s.Median && s.Median <= s.Max) {
			return false
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShiftInvariance(t *testing.T) {
	// StdDev is shift-invariant; Mean shifts linearly.
	xs := []float64{1, 5, 9, 2}
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + 100
	}
	if math.Abs(StdDev(xs)-StdDev(shifted)) > 1e-12 {
		t.Error("std must be shift invariant")
	}
	if math.Abs(Mean(shifted)-Mean(xs)-100) > 1e-12 {
		t.Error("mean must shift linearly")
	}
}
