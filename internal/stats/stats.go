// Package stats provides the small descriptive-statistics kit the
// multi-seed experiment runner reports with: mean, sample standard
// deviation, median, extrema. The GA is stochastic, so a production
// harness quotes distributions over seeds, not single runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes one sample of observations.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Median, Max float64
}

// Mean returns the arithmetic mean; NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample (n-1) standard deviation; 0 for samples
// of size < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest observation; NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation; NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (mean of the central pair for even
// sizes); NaN for an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Describe computes the full summary.
func Describe(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// String renders "mean +/- std [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g +/- %.2g [%.3g, %.3g] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}
