// Package mapping implements the paper's announced future work:
// exploring the task-to-core mapping itself. "Since the task mapping
// allows to move the communication in space and in time respectively,
// the system performance including throughput, BER and bit energy will
// be better improved" (Section V). The explorer runs simulated
// annealing over injective mappings, scoring each candidate by a fast
// deterministic wavelength assignment (a heuristic from the
// related-work baselines) followed by the full evaluation kernel.
package mapping

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/ring"
)

// Config parameterizes an exploration.
type Config struct {
	// Ring is the target platform.
	Ring *ring.Ring
	// App is the application to place.
	App *graph.TaskGraph
	// BitsPerCycle is B of the time model (default 1).
	BitsPerCycle float64
	// Energy is the bit-energy calibration (default energy.Default).
	Energy *energy.Model
	// Counts is the per-communication wavelength budget used to score
	// candidates (default: one wavelength each, the energy-optimal
	// paper baseline).
	Counts []int
	// Policy is the channel assignment heuristic used for scoring
	// (default LeastUsed, the crosstalk-friendly spread).
	Policy alloc.Policy
	// Objective selects the score (default alloc.ObjTime).
	Objective alloc.Objective
	// Iterations bounds the annealing moves (default 2000).
	Iterations int
	// Seed drives the private PRNG.
	Seed int64
	// InitialTemp and Cooling shape the annealing schedule; defaults
	// 0.05 (5% of the initial score) and 0.995 per move.
	InitialTemp float64
	Cooling     float64
}

// Result reports the exploration outcome.
type Result struct {
	// Best is the best mapping found and BestScore its objective.
	Best      graph.Mapping
	BestScore float64
	// Initial is the starting mapping and InitialScore its objective.
	Initial      graph.Mapping
	InitialScore float64
	// Evaluated counts scored candidates; Accepted counts accepted
	// moves; History records the best score after each iteration.
	Evaluated int
	Accepted  int
	History   []float64
}

// Score evaluates one mapping with the configured budget, policy and
// objective, filling config defaults as Explore would. Infeasible
// placements (the heuristic cannot serve the wavelength budget) score
// +Inf.
func Score(cfg *Config, m graph.Mapping, rng *rand.Rand) (float64, error) {
	if err := cfg.fillDefaults(); err != nil {
		return 0, err
	}
	in, err := alloc.NewInstance(cfg.Ring, cfg.App, m, cfg.BitsPerCycle, *cfg.Energy)
	if err != nil {
		return 0, err
	}
	g, err := alloc.Assign(in, cfg.Counts, cfg.Policy, rng)
	if err != nil {
		return math.Inf(1), nil // infeasible budget on this placement
	}
	ev := in.Evaluate(g)
	if !ev.Valid {
		return math.Inf(1), nil
	}
	switch cfg.Objective {
	case alloc.ObjTime:
		return ev.MakespanCycles, nil
	case alloc.ObjEnergy:
		return ev.BitEnergyFJ, nil
	case alloc.ObjBER:
		return ev.MeanBER, nil
	}
	return 0, fmt.Errorf("mapping: unknown objective %v", cfg.Objective)
}

func (cfg *Config) fillDefaults() error {
	if cfg.Ring == nil || cfg.App == nil {
		return fmt.Errorf("mapping: ring and application are required")
	}
	if cfg.BitsPerCycle == 0 {
		cfg.BitsPerCycle = 1
	}
	if cfg.Energy == nil {
		em := energy.Default()
		cfg.Energy = &em
	}
	if cfg.Counts == nil {
		cfg.Counts = alloc.UniformCounts(cfg.App.NumEdges(), 1)
	}
	if len(cfg.Counts) != cfg.App.NumEdges() {
		return fmt.Errorf("mapping: %d counts for %d communications", len(cfg.Counts), cfg.App.NumEdges())
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 2000
	}
	if cfg.InitialTemp == 0 {
		cfg.InitialTemp = 0.05
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.995
	}
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return fmt.Errorf("mapping: cooling factor %v outside (0,1)", cfg.Cooling)
	}
	return nil
}

// Explore runs simulated annealing from a random placement. Moves are
// either a swap of two mapped tasks' cores or a relocation of one task
// to a free core.
func Explore(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.App.NumTasks() > cfg.Ring.Size() {
		return nil, fmt.Errorf("mapping: %d tasks exceed %d cores", cfg.App.NumTasks(), cfg.Ring.Size())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur, err := graph.RandomMapping(rng, cfg.App, cfg.Ring.Size())
	if err != nil {
		return nil, err
	}
	curScore, err := Score(&cfg, cur, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Initial:      cur.Clone(),
		InitialScore: curScore,
		Best:         cur.Clone(),
		BestScore:    curScore,
		Evaluated:    1,
	}
	temp := cfg.InitialTemp * normalizeTemp(curScore)
	for it := 0; it < cfg.Iterations; it++ {
		cand := neighbour(rng, cur, cfg.Ring.Size())
		score, err := Score(&cfg, cand, rng)
		if err != nil {
			return nil, err
		}
		res.Evaluated++
		if accept(rng, curScore, score, temp) {
			cur, curScore = cand, score
			res.Accepted++
			if score < res.BestScore {
				res.Best, res.BestScore = cand.Clone(), score
			}
		}
		temp *= cfg.Cooling
		res.History = append(res.History, res.BestScore)
	}
	return res, nil
}

// normalizeTemp anchors the temperature to the score scale; an
// infeasible start falls back to 1.
func normalizeTemp(score float64) float64 {
	if math.IsInf(score, 0) || score <= 0 {
		return 1
	}
	return score
}

// accept implements the Metropolis criterion (always accept
// improvements; accept regressions with exp(-delta/temp)). Any finite
// score beats an infinite one.
func accept(rng *rand.Rand, cur, cand, temp float64) bool {
	if cand <= cur {
		return true
	}
	if math.IsInf(cand, 1) {
		return false
	}
	if math.IsInf(cur, 1) {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-(cand-cur)/temp)
}

// neighbour perturbs the mapping: either swaps the cores of two tasks
// or moves one task to an unused core.
func neighbour(rng *rand.Rand, m graph.Mapping, cores int) graph.Mapping {
	n := m.Clone()
	if len(n) >= 2 && (len(n) == cores || rng.Intn(2) == 0) {
		i, j := rng.Intn(len(n)), rng.Intn(len(n))
		for i == j {
			j = rng.Intn(len(n))
		}
		n[i], n[j] = n[j], n[i]
		return n
	}
	used := make(map[int]bool, len(n))
	for _, p := range n {
		used[p] = true
	}
	var free []int
	for c := 0; c < cores; c++ {
		if !used[c] {
			free = append(free, c)
		}
	}
	t := rng.Intn(len(n))
	n[t] = free[rng.Intn(len(free))]
	return n
}
