package mapping

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/ring"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	r, err := ring.New(ring.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Ring: r, App: graph.PaperApp(), Iterations: 150, Seed: 1}
}

func TestExploreImprovesOrMatchesInitial(t *testing.T) {
	res, err := Explore(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore > res.InitialScore {
		t.Errorf("best %v worse than initial %v", res.BestScore, res.InitialScore)
	}
	if math.IsInf(res.BestScore, 1) {
		t.Error("explorer never found a feasible placement")
	}
	if err := res.Best.ValidateInjective(graph.PaperApp(), 16); err != nil {
		t.Errorf("best mapping invalid: %v", err)
	}
	if res.Evaluated != res.Accepted && res.Evaluated < len(res.History) {
		t.Errorf("bookkeeping: evaluated %d, accepted %d, history %d",
			res.Evaluated, res.Accepted, len(res.History))
	}
}

func TestExploreHistoryMonotone(t *testing.T) {
	res, err := Explore(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best-score history must never rise: %v -> %v at %d",
				res.History[i-1], res.History[i], i)
		}
	}
}

func TestExploreDeterministicPerSeed(t *testing.T) {
	a, err := Explore(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore {
		t.Errorf("same seed, different outcomes: %v vs %v", a.BestScore, b.BestScore)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed, different best mapping")
		}
	}
}

func TestExploreBeatsPaperMappingSometimes(t *testing.T) {
	// The future-work claim: exploring placements can improve on a
	// fixed design-time mapping. With the single-wavelength budget the
	// schedule is placement-independent (durations fixed), but energy
	// is not: shorter paths need less laser power. Optimizing energy
	// must find a placement at least as good as the paper's.
	cfg := baseConfig(t)
	cfg.Objective = alloc.ObjEnergy
	cfg.Iterations = 400
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	paperScore, err := Score(&cfg, graph.PaperMapping(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore > paperScore {
		t.Errorf("explored placement (%v fJ/bit) should not lose to the fixed one (%v fJ/bit)",
			res.BestScore, paperScore)
	}
}

func TestScoreObjectives(t *testing.T) {
	cfg := baseConfig(t)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, obj := range []alloc.Objective{alloc.ObjTime, alloc.ObjEnergy, alloc.ObjBER} {
		cfg.Objective = obj
		s, err := Score(&cfg, graph.PaperMapping(), rng)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if s <= 0 || math.IsInf(s, 1) {
			t.Errorf("%v score = %v, want positive finite", obj, s)
		}
	}
	cfg.Objective = alloc.Objective(42)
	if _, err := Score(&cfg, graph.PaperMapping(), rng); err == nil {
		t.Error("unknown objective must error")
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(Config{}); err == nil {
		t.Error("missing ring/app must fail")
	}
	cfg := baseConfig(t)
	cfg.Counts = []int{1}
	if _, err := Explore(cfg); err == nil {
		t.Error("wrong count length must fail")
	}
	cfg = baseConfig(t)
	cfg.Cooling = 1.5
	if _, err := Explore(cfg); err == nil {
		t.Error("cooling outside (0,1) must fail")
	}
	small, err := ring.New(ring.Config{Rows: 2, Cols: 2, TilePitchCM: 0.2,
		Grid: ring.DefaultConfig(8).Grid, Params: ring.DefaultConfig(8).Params})
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseConfig(t)
	cfg.Ring = small
	if _, err := Explore(cfg); err == nil {
		t.Error("6 tasks on 4 cores must fail")
	}
}

func TestNeighbourStaysInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := graph.PaperMapping()
	for trial := 0; trial < 200; trial++ {
		m = neighbour(rng, m, 16)
		if err := m.ValidateInjective(graph.PaperApp(), 16); err != nil {
			t.Fatalf("trial %d: neighbour broke the mapping: %v", trial, err)
		}
	}
}

func TestAcceptCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if !accept(rng, 10, 5, 1) {
		t.Error("improvements are always accepted")
	}
	if accept(rng, 10, math.Inf(1), 1e9) {
		t.Error("infeasible candidates are never accepted")
	}
	if !accept(rng, math.Inf(1), 10, 0) {
		t.Error("any feasible candidate beats an infeasible incumbent")
	}
	if accept(rng, 10, 11, 0) {
		t.Error("zero temperature must reject regressions")
	}
	// High temperature accepts most small regressions.
	hits := 0
	for i := 0; i < 1000; i++ {
		if accept(rng, 10, 10.1, 100) {
			hits++
		}
	}
	if hits < 900 {
		t.Errorf("hot annealer accepted only %d/1000 tiny regressions", hits)
	}
}
