package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/nsga2"
)

// Island-model exploration: one long GA run split across several
// smaller populations ("islands") that evolve independently and
// exchange their best genomes at fixed generation boundaries. The
// model is built from three deterministic pieces —
//
//   - a per-island engine configuration (population share and a
//     seed derived from the base seed and the island index),
//   - a pure segment function that advances one island by one
//     migration interval, communicating only through checkpoint
//     bytes and genome lists, and
//   - a lockstep driver that runs rounds of segments and routes
//     emigrants around a directed ring —
//
// so the result is reproducible for a given (seed, islands,
// interval, top-k) regardless of where the segments execute. The
// distributed coordinator substitutes its own RoundRunner that ships
// segments to workers; because a segment's inputs and outputs are
// exactly the checkpoint wire format, the remote run is equivalent
// to the local one by construction.

// IslandSpec parameterizes an island-model run.
type IslandSpec struct {
	// Islands is the number of independent populations. 1 degenerates
	// to a plain single-engine run (no migration).
	Islands int
	// Interval is the migration period in generations. Defaults to
	// DefaultMigrationInterval.
	Interval int
	// TopK is the number of emigrant genomes an island sends at each
	// boundary. Defaults to DefaultMigrationTopK.
	TopK int
}

// DefaultMigrationInterval is the migration period used when
// IslandSpec.Interval is unset.
const DefaultMigrationInterval = 25

// DefaultMigrationTopK is the emigrant count used when
// IslandSpec.TopK is unset.
const DefaultMigrationTopK = 3

func (s IslandSpec) withDefaults() IslandSpec {
	if s.Interval <= 0 {
		s.Interval = DefaultMigrationInterval
	}
	if s.TopK <= 0 {
		s.TopK = DefaultMigrationTopK
	}
	return s
}

// IslandSegment is one unit of island work: advance one island by
// Gens generations. It is self-describing — a process holding only
// the problem configuration and this struct can execute it — which
// is what lets the distributed coordinator hand segments to workers.
type IslandSegment struct {
	// Spec restates the run's island parameters so a remote executor
	// derives the same per-island engine configuration.
	Spec IslandSpec
	// Island is this segment's island index in [0, Spec.Islands).
	Island int
	// StartGen is the generation count already completed (0 for the
	// first segment, which starts the engine fresh).
	StartGen int
	// Gens is how many generations to advance.
	Gens int
	// Checkpoint is the island's engine state from the previous
	// segment (nil at StartGen 0).
	Checkpoint []byte
	// Immigrants are genomes injected before stepping — the previous
	// round's emigrants from the ring neighbor.
	Immigrants [][]byte
}

// IslandSegmentResult is the output of one segment.
type IslandSegmentResult struct {
	// Checkpoint is the island's engine state after stepping, input
	// to the island's next segment (and, after the last round, to
	// AssembleIslands).
	Checkpoint []byte
	// Emigrants are the island's top-K distinct genomes after
	// stepping.
	Emigrants [][]byte
	// Stats is the instrumentation delta attributable to this
	// segment (including initial-population evaluation at gen 0).
	Stats nsga2.Stats
}

// RoundRunner executes one migration round: all islands' segments
// for the same generation window. The local implementation
// (Problem.RunIslandRound) runs them serially in-process; the
// distributed coordinator fans them out to workers. Results must be
// indexed like segs.
type RoundRunner func(segs []IslandSegment) ([]IslandSegmentResult, error)

// islandSeed derives island i's PRNG seed from the base seed, the
// same way campaign cells derive theirs: FNV-1a over a tagged tuple,
// masked non-negative. Island 0 keeps the base seed so a 1-island
// run is the plain run.
func islandSeed(base int64, i int) int64 {
	if i == 0 {
		return base
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|island|%d", base, i)
	return int64(h.Sum64() & math.MaxInt64)
}

// islandConfig derives island i's engine configuration: an even
// population split (earlier islands take the remainder), a derived
// seed, and heuristic warm-start seeds on island 0 only (truncated
// to its population share).
func (p *Problem) islandConfig(spec IslandSpec, i int) nsga2.Config {
	ga := p.baseGAConfig()
	n := spec.Islands
	share := ga.PopSize / n
	if i < ga.PopSize%n {
		share++
	}
	ga.PopSize = share
	ga.Seed = islandSeed(ga.Seed, i)
	if i == 0 && p.cfg.WarmStart && len(ga.Seeds) == 0 {
		ga.Seeds = p.HeuristicSeeds()
	}
	if len(ga.Seeds) > share {
		ga.Seeds = ga.Seeds[:share]
	}
	return ga
}

// validateIslands checks that the GA configuration can be split
// spec.Islands ways.
func (p *Problem) validateIslands(spec IslandSpec) error {
	switch {
	case spec.Islands < 1:
		return fmt.Errorf("core: island count %d, want >= 1", spec.Islands)
	case p.cfg.GA.PopSize < 2*spec.Islands:
		return fmt.Errorf("core: population %d cannot split into %d islands (need >= 2 per island)",
			p.cfg.GA.PopSize, spec.Islands)
	case p.cfg.GA.Generations <= 0:
		return fmt.Errorf("core: island mode needs an explicit generation count")
	}
	return nil
}

// forkForSegment builds a fresh Problem over the same instance and
// settings: empty evaluator pool, empty metric cache — exactly the
// state a worker process starts a segment with. Running every
// segment on a fork keeps a local island run equivalent to a
// distributed one down to the kernel-path instrumentation (evaluator
// delta caches never carry over between segments in either mode).
func (p *Problem) forkForSegment() (*Problem, error) {
	cfg := p.cfg
	cfg.Instance = p.in
	cfg.Backend, cfg.Ring, cfg.App, cfg.Mapping, cfg.Energy, cfg.BitsPerCycle = "", nil, nil, nil, nil, 0
	return New(cfg)
}

// RunIslandSegment executes one island segment: resume (or start)
// the island engine, inject the immigrants, advance Gens
// generations, and return the new checkpoint, the emigrants, and the
// segment's instrumentation delta. The segment runs on a fresh fork
// of the problem (see forkForSegment) and consumes no randomness
// beyond the island engine's own seeded stream, so its outputs are a
// pure function of (problem configuration, segment) — the property
// that makes local and distributed island runs interchangeable.
func (p *Problem) RunIslandSegment(seg IslandSegment) (IslandSegmentResult, error) {
	fp, err := p.forkForSegment()
	if err != nil {
		return IslandSegmentResult{}, fmt.Errorf("core: island %d: %w", seg.Island, err)
	}
	ga := fp.islandConfig(seg.Spec, seg.Island)
	var (
		x *Explorer
		// engBefore is subtracted from the post-segment counters:
		// a resumed engine carries its history in its counters,
		// while a fresh engine's initial-population work belongs to
		// this segment.
		engBefore nsga2.Stats
	)
	if seg.Checkpoint == nil {
		x, err = fp.newExplorerWith(ga)
	} else {
		x, err = fp.resumeExplorerWith(ga, bytes.NewReader(seg.Checkpoint))
		if err == nil {
			engBefore = x.eng.Stats()
			engBefore.Eval = nsga2.EvalStats{} // fork's kernel counters started at zero
		}
	}
	if err != nil {
		return IslandSegmentResult{}, fmt.Errorf("core: island %d at gen %d: %w", seg.Island, seg.StartGen, err)
	}
	if got := x.Generation(); got != seg.StartGen {
		return IslandSegmentResult{}, fmt.Errorf("core: island %d checkpoint at generation %d, segment expects %d",
			seg.Island, got, seg.StartGen)
	}
	if err := x.eng.InjectGenomes(seg.Immigrants); err != nil {
		return IslandSegmentResult{}, fmt.Errorf("core: island %d: %w", seg.Island, err)
	}
	for g := 0; g < seg.Gens; g++ {
		x.Step()
	}
	var buf bytes.Buffer
	if err := x.WriteCheckpoint(&buf); err != nil {
		return IslandSegmentResult{}, fmt.Errorf("core: island %d: %w", seg.Island, err)
	}
	return IslandSegmentResult{
		Checkpoint: buf.Bytes(),
		Emigrants:  x.eng.TopGenomes(seg.Spec.TopK),
		Stats:      x.eng.Stats().Sub(engBefore),
	}, nil
}

// RunIslandRound is the local RoundRunner: the round's segments run
// serially in-process, each on its own problem fork (evaluation
// within a segment still uses the configured worker pool).
// Island-level parallelism is the distributed coordinator's job.
func (p *Problem) RunIslandRound(segs []IslandSegment) ([]IslandSegmentResult, error) {
	out := make([]IslandSegmentResult, len(segs))
	for i, seg := range segs {
		r, err := p.RunIslandSegment(seg)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// RunIslands drives a full island-model run: rounds of one migration
// interval each, with every island's emigrants injected into its
// successor on a directed ring ((i+1) mod N) at the next round's
// start. runner executes each round's segments (nil uses the local
// serial RunIslandRound). Returns the assembled result and the
// summed per-segment instrumentation.
func (p *Problem) RunIslands(spec IslandSpec, runner RoundRunner) (*Result, nsga2.Stats, error) {
	spec = spec.withDefaults()
	if err := p.validateIslands(spec); err != nil {
		return nil, nsga2.Stats{}, err
	}
	if runner == nil {
		runner = p.RunIslandRound
	}
	n := spec.Islands
	gens := p.cfg.GA.Generations
	ckpts := make([][]byte, n)
	inbound := make([][][]byte, n)
	var agg nsga2.Stats
	for start := 0; start < gens; start += spec.Interval {
		g := spec.Interval
		if start+g > gens {
			g = gens - start
		}
		segs := make([]IslandSegment, n)
		for i := 0; i < n; i++ {
			segs[i] = IslandSegment{
				Spec:       spec,
				Island:     i,
				StartGen:   start,
				Gens:       g,
				Checkpoint: ckpts[i],
				Immigrants: inbound[i],
			}
		}
		results, err := runner(segs)
		if err != nil {
			return nil, nsga2.Stats{}, err
		}
		if len(results) != n {
			return nil, nsga2.Stats{}, fmt.Errorf("core: island round returned %d results, want %d", len(results), n)
		}
		inbound = make([][][]byte, n)
		for i, r := range results {
			ckpts[i] = r.Checkpoint
			agg = agg.Add(r.Stats)
			if n > 1 && start+g < gens {
				inbound[(i+1)%n] = r.Emigrants
			}
		}
	}
	res, err := p.AssembleIslands(spec, ckpts)
	if err != nil {
		return nil, nsga2.Stats{}, err
	}
	return res, agg, nil
}

// AssembleIslands folds the islands' final checkpoints into one
// Result: each checkpoint is resumed (rehydrating the metric cache
// from the aux payloads, exactly like a single-engine resume), the
// per-island results are merged with the reference re-rank and
// archive dedup, and the merged run goes through the standard result
// assembly. Because the inputs are checkpoint bytes, a distributed
// run assembles identically to a local one.
func (p *Problem) AssembleIslands(spec IslandSpec, finals [][]byte) (*Result, error) {
	spec = spec.withDefaults()
	if len(finals) != spec.Islands {
		return nil, fmt.Errorf("core: %d final island checkpoints, want %d", len(finals), spec.Islands)
	}
	rs := make([]*nsga2.Result, len(finals))
	for i, ck := range finals {
		x, err := p.resumeExplorerWith(p.islandConfig(spec, i), bytes.NewReader(ck))
		if err != nil {
			return nil, fmt.Errorf("core: assembling island %d: %w", i, err)
		}
		rs[i] = x.eng.Result()
	}
	merged := nsga2.MergeResults(rs...)
	p.mergeWorkers()
	return p.assembleResult(merged)
}
