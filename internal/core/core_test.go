package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/nsga2"
	"repro/internal/ring"
)

// smallGA keeps unit-test runs fast; the full paper settings run in
// the benchmarks.
func smallGA(seed int64) nsga2.Config {
	return nsga2.Config{PopSize: 60, Generations: 40, Seed: seed}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing NW must fail")
	}
	rcfg := ring.DefaultConfig(4)
	if _, err := New(Config{NW: 8, Ring: &rcfg}); err == nil {
		t.Error("NW/ring channel mismatch must fail")
	}
	if _, err := New(Config{NW: 8, App: graph.PaperApp()}); err == nil {
		t.Error("custom app without mapping must fail")
	}
	if _, err := New(Config{NW: 8, Objectives: ObjectiveSet(9)}); err == nil {
		t.Error("unknown objective set must fail")
	}
}

func TestProblemShape(t *testing.T) {
	p, err := New(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.GenomeLen() != 48 {
		t.Errorf("genome length = %d, want 6*8", p.GenomeLen())
	}
	if p.NumObjectives() != 3 {
		t.Errorf("objectives = %d, want 3 (default set)", p.NumObjectives())
	}
	p2, err := New(Config{NW: 8, Objectives: TimeBER})
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumObjectives() != 2 {
		t.Errorf("TimeBER objectives = %d, want 2", p2.NumObjectives())
	}
}

func TestEvaluateThroughInterface(t *testing.T) {
	p, err := New(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The valid staggered genome from the heuristics must evaluate
	// feasible through the nsga2.Problem interface.
	g, err := alloc.Assign(p.Instance(), alloc.UniformCounts(6, 1), alloc.FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	objs, violation := p.Evaluate(g.Bits())
	if violation != 0 {
		t.Fatalf("heuristic genome must be feasible, violation %v", violation)
	}
	if len(objs) != 3 {
		t.Fatalf("objective vector = %v", objs)
	}
	for _, v := range objs {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("feasible objective carries %v", v)
		}
	}
	// All-zero genome is infeasible, with one violation per loaded
	// communication.
	zero := make([]byte, p.GenomeLen())
	objs, violation = p.Evaluate(zero)
	if violation != 6 {
		t.Errorf("all-zero genome violation = %v, want 6 (one per communication)", violation)
	}
	for _, v := range objs {
		if !math.IsInf(v, 1) {
			t.Error("infeasible objectives must be +Inf")
		}
	}
}

func TestOptimizeSmallRun(t *testing.T) {
	p, err := New(Config{NW: 8, GA: smallGA(1)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.NW != 8 {
		t.Errorf("NW = %d", res.NW)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty final front")
	}
	if len(res.Valid) == 0 || res.DistinctValid != len(res.Valid) {
		t.Fatalf("valid bookkeeping: %d solutions vs %d distinct", len(res.Valid), res.DistinctValid)
	}
	if res.DistinctEvaluated < res.DistinctValid {
		t.Error("distinct evaluated cannot undercut distinct valid")
	}
	if len(res.FrontTimeEnergy) == 0 || len(res.FrontTimeBER) == 0 {
		t.Fatal("projected fronts must not be empty")
	}
	// Projected fronts are subsets of the valid set and sorted by
	// time.
	for i := 1; i < len(res.FrontTimeEnergy); i++ {
		if res.FrontTimeEnergy[i].TimeKCC < res.FrontTimeEnergy[i-1].TimeKCC {
			t.Error("time-energy front not sorted by time")
		}
	}
	// On a 2D front sorted by time, energy must be strictly
	// decreasing (otherwise a point would be dominated).
	for i := 1; i < len(res.FrontTimeEnergy); i++ {
		a, b := res.FrontTimeEnergy[i-1], res.FrontTimeEnergy[i]
		if a.TimeKCC < b.TimeKCC && b.BitEnergyFJ >= a.BitEnergyFJ {
			t.Errorf("dominated point on time-energy front: %+v then %+v", a.Metrics, b.Metrics)
		}
	}
}

func TestOptimizeFindsPaperAnchors(t *testing.T) {
	// Structural anchors from Section IV, checked on a reduced GA:
	// the makespan floor is 20 k-cc, no valid solution beats it, and
	// a near-floor solution exists for NW = 8... the reduced run must
	// at least respect the bounds and land under the all-ones 36 k-cc.
	p, err := New(Config{NW: 8, GA: smallGA(2)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestTimeKCC()
	if best < 20 {
		t.Errorf("best time %v beats the physical floor of 20 k-cc", best)
	}
	if best >= 36 {
		t.Errorf("best time %v did not improve on the single-wavelength 36 k-cc", best)
	}
	for _, s := range res.Valid {
		if s.TimeKCC < 20-1e-9 {
			t.Fatalf("valid solution below the floor: %+v", s.Metrics)
		}
	}
}

func TestMinEnergySolutionIsAllOnes(t *testing.T) {
	// The paper: "the most energy saving is the allocation
	// [1,1,1,1,1,1]". Any other valid allocation must cost at least
	// as much per bit.
	p, err := New(Config{NW: 8, GA: smallGA(3)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.MinEnergySolution()
	if !ok {
		t.Fatal("no valid solutions")
	}
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	if total != len(s.Counts) {
		t.Errorf("minimum-energy allocation = %v, want all ones", s.Counts)
	}
}

func TestOptimizeDeterministicPerSeed(t *testing.T) {
	run := func() *Result {
		p, err := New(Config{NW: 4, GA: smallGA(7)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DistinctValid != b.DistinctValid || len(a.Front) != len(b.Front) {
		t.Fatal("same seed must reproduce the result")
	}
	for i := range a.Front {
		if a.Front[i].Genome.Key() != b.Front[i].Genome.Key() {
			t.Fatal("front genomes differ across identical runs")
		}
	}
}

func TestSolutionAllocationVector(t *testing.T) {
	g, err := alloc.ParseGenome("1000/0001/0001/0001/1000/1000", 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Solution{Genome: g, Counts: g.Counts()}
	if s.AllocationVector() != "[1 1 1 1 1 1]" {
		t.Errorf("vector = %q", s.AllocationVector())
	}
}

func TestObjectiveSetStrings(t *testing.T) {
	for set, want := range map[ObjectiveSet]string{
		TimeEnergyBER: "time+energy+BER",
		TimeEnergy:    "time+energy",
		TimeBER:       "time+BER",
	} {
		if set.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(set), set.String(), want)
		}
	}
}

func TestMetricsLog10BER(t *testing.T) {
	if got := (Metrics{MeanBER: 1e-4}).Log10BER(); math.Abs(got+4) > 1e-12 {
		t.Errorf("Log10BER = %v, want -4", got)
	}
	if got := (Metrics{MeanBER: 0}).Log10BER(); got != -300 {
		t.Errorf("Log10BER(0) = %v, want -300 floor", got)
	}
}

func TestHeuristicSeeds(t *testing.T) {
	p, err := New(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	seeds := p.HeuristicSeeds()
	if len(seeds) == 0 {
		t.Fatal("no heuristic seeds on the default instance")
	}
	for i, s := range seeds {
		if len(s) != p.GenomeLen() {
			t.Fatalf("seed %d has %d genes, want %d", i, len(s), p.GenomeLen())
		}
		if _, violation := p.Evaluate(s); violation != 0 {
			t.Fatalf("heuristic seed %d is infeasible", i)
		}
	}
}

func TestWarmStartFindsAllOnesImmediately(t *testing.T) {
	// With warm start, the all-ones energy optimum is present from
	// generation zero, so even a tiny run reports it.
	p, err := New(Config{NW: 8, WarmStart: true,
		GA: nsga2.Config{PopSize: 30, Generations: 3, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	sol, ok := res.MinEnergySolution()
	if !ok {
		t.Fatal("no valid solutions")
	}
	for _, c := range sol.Counts {
		if c != 1 {
			t.Fatalf("warm-started min-energy allocation %v, want all ones", sol.Counts)
		}
	}
}

func TestEvaluateBadGenomeLength(t *testing.T) {
	p, err := New(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	objs, violation := p.Evaluate([]byte{1, 0, 1})
	if !math.IsInf(violation, 1) {
		t.Errorf("short genome violation = %v, want +Inf", violation)
	}
	for _, v := range objs {
		if !math.IsInf(v, 1) {
			t.Error("short genome objectives must be +Inf")
		}
	}
}

func TestResultAccessorsOnEmpty(t *testing.T) {
	var r Result
	if !math.IsInf(r.BestTimeKCC(), 1) {
		t.Error("empty result best time must be +Inf")
	}
	if _, ok := r.MinEnergySolution(); ok {
		t.Error("empty result has no min-energy solution")
	}
}

// sameResult demands byte-identical fronts and identical Table II
// counters between two runs.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Evaluations != b.Evaluations || a.ValidEvaluations != b.ValidEvaluations ||
		a.DistinctEvaluated != b.DistinctEvaluated || a.DistinctValid != b.DistinctValid {
		t.Fatalf("%s: counters differ: %d/%d/%d/%d vs %d/%d/%d/%d", label,
			a.Evaluations, a.ValidEvaluations, a.DistinctEvaluated, a.DistinctValid,
			b.Evaluations, b.ValidEvaluations, b.DistinctEvaluated, b.DistinctValid)
	}
	fronts := func(r *Result) [][]Solution {
		return [][]Solution{r.Front, r.Valid, r.FrontTimeEnergy, r.FrontTimeBER}
	}
	names := []string{"Front", "Valid", "FrontTimeEnergy", "FrontTimeBER"}
	fa, fb := fronts(a), fronts(b)
	for fi := range fa {
		if len(fa[fi]) != len(fb[fi]) {
			t.Fatalf("%s: %s sizes differ: %d vs %d", label, names[fi], len(fa[fi]), len(fb[fi]))
		}
		for i := range fa[fi] {
			sa, sb := fa[fi][i], fb[fi][i]
			if sa.Genome.Key() != sb.Genome.Key() {
				t.Fatalf("%s: %s[%d] genomes differ", label, names[fi], i)
			}
			if sa.Metrics != sb.Metrics {
				t.Fatalf("%s: %s[%d] metrics differ: %+v vs %+v", label, names[fi], i, sa.Metrics, sb.Metrics)
			}
		}
	}
}

// TestParallelWorkersBitIdenticalToSerial is the determinism
// guarantee of the per-worker evaluator design: any worker count
// yields the same fronts and the same Table II counters as the serial
// run.
func TestParallelWorkersBitIdenticalToSerial(t *testing.T) {
	run := func(workers int) *Result {
		ga := smallGA(11)
		ga.Workers = workers
		p, err := New(Config{NW: 8, GA: ga})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	for _, workers := range []int{1, 2, 8} {
		sameResult(t, fmt.Sprintf("workers=%d", workers), serial, run(workers))
	}
}

// TestNewWorkerSharesInstance pins the worker-view contract.
func TestNewWorkerSharesInstance(t *testing.T) {
	p, err := New(Config{NW: 4, GA: smallGA(3)})
	if err != nil {
		t.Fatal(err)
	}
	w := p.NewWorker()
	if w.GenomeLen() != p.GenomeLen() || w.NumObjectives() != p.NumObjectives() {
		t.Fatal("worker view has a different shape")
	}
	genome := make([]byte, p.GenomeLen())
	for i := range genome {
		genome[i] = byte(i % 2)
	}
	ow, vw := w.Evaluate(genome)
	op, vp := p.Evaluate(genome)
	if vw != vp || len(ow) != len(op) {
		t.Fatalf("worker and parent disagree: %v/%v vs %v/%v", ow, vw, op, vp)
	}
	for i := range ow {
		if ow[i] != op[i] && !(math.IsInf(ow[i], 1) && math.IsInf(op[i], 1)) {
			t.Fatalf("objective %d differs: %v vs %v", i, ow[i], op[i])
		}
	}
}
