package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/nsga2"
)

func islandProblem(t *testing.T, ga nsga2.Config) *Problem {
	t.Helper()
	p, err := New(Config{NW: 4, GA: ga})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestIslandsOneMatchesPlainRun pins the degenerate topology: one
// island with any interval is the plain single-engine run — same
// front, archive-derived counts, everything.
func TestIslandsOneMatchesPlainRun(t *testing.T) {
	ga := nsga2.Config{PopSize: 16, Generations: 8, Seed: 11}
	ref, err := islandProblem(t, ga).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := islandProblem(t, ga).RunIslands(IslandSpec{Islands: 1, Interval: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("1-island run differs from plain run:\nplain: %+v\nisland: %+v", ref, got)
	}
}

// TestIslandsDeterministic: the island model is reproducible for a
// given (seed, islands, interval, top-k) — results and aggregated
// stats from two independent runs are identical.
func TestIslandsDeterministic(t *testing.T) {
	ga := nsga2.Config{PopSize: 18, Generations: 7, Seed: 4}
	spec := IslandSpec{Islands: 3, Interval: 2, TopK: 2}
	r1, s1, err := islandProblem(t, ga).RunIslands(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := islandProblem(t, ga).RunIslands(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("island runs with identical parameters diverged")
	}
	if s1 != s2 {
		t.Fatalf("island stats diverged: %+v vs %+v", s1, s2)
	}
	// A different interval is a different (valid) trajectory — guard
	// against the migration machinery being a no-op.
	r3, _, err := islandProblem(t, ga).RunIslands(IslandSpec{Islands: 3, Interval: 4, TopK: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Evaluations == 0 || len(r3.Front) == 0 {
		t.Fatal("island run produced no work")
	}
}

// TestIslandsRoundTripRunnerEquivalent simulates distribution: a
// RoundRunner that serializes every segment through JSON (the wire),
// executes it on a separate problem instance built from scratch (the
// worker), and returns the serialized results, must reproduce the
// local run bit-for-bit — result and stats.
func TestIslandsRoundTripRunnerEquivalent(t *testing.T) {
	ga := nsga2.Config{PopSize: 14, Generations: 6, Seed: 9}
	spec := IslandSpec{Islands: 2, Interval: 2, TopK: 2}

	local, localStats, err := islandProblem(t, ga).RunIslands(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	remote := func(segs []IslandSegment) ([]IslandSegmentResult, error) {
		out := make([]IslandSegmentResult, len(segs))
		for i, seg := range segs {
			wire, err := json.Marshal(seg)
			if err != nil {
				return nil, err
			}
			var decoded IslandSegment
			if err := json.Unmarshal(wire, &decoded); err != nil {
				return nil, err
			}
			// The "worker": a problem built independently from the
			// same configuration.
			wp, err := New(Config{NW: 4, GA: ga})
			if err != nil {
				return nil, err
			}
			r, err := wp.RunIslandSegment(decoded)
			if err != nil {
				return nil, err
			}
			back, err := json.Marshal(r)
			if err != nil {
				return nil, err
			}
			if err := json.Unmarshal(back, &out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	dist, distStats, err := islandProblem(t, ga).RunIslands(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, dist) {
		t.Fatal("distributed-style island run diverged from the local run")
	}
	if localStats != distStats {
		t.Fatalf("stats diverged: local %+v distributed %+v", localStats, distStats)
	}
}

// TestIslandSegmentPureFunction: running the same segment twice
// yields identical checkpoint bytes, emigrants and stats.
func TestIslandSegmentPureFunction(t *testing.T) {
	ga := nsga2.Config{PopSize: 12, Generations: 6, Seed: 2}
	spec := IslandSpec{Islands: 2, Interval: 3, TopK: 2}
	p := islandProblem(t, ga)
	seg := IslandSegment{Spec: spec, Island: 1, StartGen: 0, Gens: 3}
	a, err := p.RunIslandSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := islandProblem(t, ga).RunIslandSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Checkpoint, b.Checkpoint) {
		t.Fatal("segment checkpoints differ across identical executions")
	}
	if !reflect.DeepEqual(a.Emigrants, b.Emigrants) || a.Stats != b.Stats {
		t.Fatal("segment emigrants or stats differ across identical executions")
	}
	// Continuing the segment chain must pick up exactly where the
	// checkpoint left off.
	next, err := p.RunIslandSegment(IslandSegment{
		Spec: spec, Island: 1, StartGen: 3, Gens: 3,
		Checkpoint: a.Checkpoint, Immigrants: a.Emigrants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Checkpoint) == 0 {
		t.Fatal("continuation produced no checkpoint")
	}
	// Wrong StartGen is rejected (stale lease / replay protection).
	if _, err := p.RunIslandSegment(IslandSegment{
		Spec: spec, Island: 1, StartGen: 5, Gens: 1, Checkpoint: a.Checkpoint,
	}); err == nil {
		t.Fatal("segment with mismatched StartGen accepted")
	}
}

func TestIslandsValidation(t *testing.T) {
	p := islandProblem(t, nsga2.Config{PopSize: 4, Generations: 3, Seed: 1})
	if _, _, err := p.RunIslands(IslandSpec{Islands: 3}, nil); err == nil {
		t.Fatal("population 4 split into 3 islands accepted")
	}
	if _, _, err := p.RunIslands(IslandSpec{Islands: 0}, nil); err == nil {
		t.Fatal("zero islands accepted")
	}
	p2 := islandProblem(t, nsga2.Config{PopSize: 8, Seed: 1})
	if _, _, err := p2.RunIslands(IslandSpec{Islands: 2}, nil); err == nil {
		t.Fatal("island run without explicit generations accepted")
	}
	if _, err := p.AssembleIslands(IslandSpec{Islands: 2}, [][]byte{nil}); err == nil {
		t.Fatal("checkpoint count mismatch accepted")
	}
}

// TestIslandSeedsDistinct: derived island seeds differ from the base
// and from each other (island 0 keeps the base seed).
func TestIslandSeedsDistinct(t *testing.T) {
	base := int64(42)
	if islandSeed(base, 0) != base {
		t.Fatal("island 0 must keep the base seed")
	}
	seen := map[int64]bool{base: true}
	for i := 1; i < 8; i++ {
		s := islandSeed(base, i)
		if s < 0 {
			t.Fatalf("island seed %d negative", i)
		}
		if seen[s] {
			t.Fatalf("island seed collision at %d", i)
		}
		seen[s] = true
	}
}
