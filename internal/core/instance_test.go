package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nsga2"
)

// TestConfigInstanceValidation pins the shared-instance contract:
// comb sizes must match, and the instance-describing fields are
// mutually exclusive with an explicit Instance.
func TestConfigInstanceValidation(t *testing.T) {
	in, err := NewSharedInstance(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{NW: 4, Instance: in}); err == nil {
		t.Error("comb-size mismatch between NW and Instance must fail")
	}
	if _, err := New(Config{NW: 8, Instance: in, App: graph.PaperApp()}); err == nil {
		t.Error("Instance together with App must fail")
	}
	if _, err := New(Config{NW: 8, Instance: in, BitsPerCycle: 2}); err == nil {
		t.Error("Instance together with BitsPerCycle must fail")
	}
	if _, err := New(Config{NW: 8, Instance: in}); err != nil {
		t.Errorf("valid shared-instance config rejected: %v", err)
	}
}

// TestSharedInstanceRunsBitIdentical proves two problems over one
// shared instance reproduce the self-built-instance run exactly.
func TestSharedInstanceRunsBitIdentical(t *testing.T) {
	ga := nsga2.Config{PopSize: 20, Generations: 8, Seed: 5}
	own, err := New(Config{NW: 8, GA: ga})
	if err != nil {
		t.Fatal(err)
	}
	want, err := own.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewSharedInstance(Config{NW: 8})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		p, err := New(Config{NW: 8, Instance: in, GA: ga})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if got.Evaluations != want.Evaluations || got.DistinctValid != want.DistinctValid {
			t.Fatalf("round %d: counters diverge from self-built instance", round)
		}
		if len(got.Front) != len(want.Front) {
			t.Fatalf("round %d: front sizes diverge", round)
		}
		for i := range want.Front {
			if got.Front[i].Genome.Key() != want.Front[i].Genome.Key() {
				t.Fatalf("round %d: front genome %d diverges", round, i)
			}
		}
	}
}
