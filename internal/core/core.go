// Package core is the paper's primary contribution as a library: the
// multi-objective wavelength-allocation (WA) explorer for ring-based
// WDM optical NoCs. It ties the substrates together — the photonic
// device models (internal/phys), the ring architecture and loss
// budget (internal/ring), the application time model (internal/sched)
// and the chromosome evaluation (internal/alloc) — and drives the
// NSGA-II engine (internal/nsga2) to produce the Pareto fronts of
// execution time, bit energy and BER that Section IV of the paper
// reports.
//
// Typical use:
//
//	p, err := core.New(core.Config{NW: 8})   // paper's defaults
//	res, err := p.Optimize()
//	for _, s := range res.FrontTimeEnergy { ... }
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/crossbar"
	"repro/internal/energy"
	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/nsga2"
	"repro/internal/pareto"
	"repro/internal/ring"
)

// DefaultBackend is the optical fabric a zero Config.Backend selects:
// the paper's serpentine ring.
const DefaultBackend = "ring"

// Backends lists the optical fabric backends a Config.Backend may
// name, in canonical order.
func Backends() []string { return []string{"ring", "crossbar"} }

// ObjectiveSet selects which of the paper's criteria the GA optimizes
// simultaneously.
type ObjectiveSet int

const (
	// TimeEnergyBER explores all three criteria at once; the paper's
	// two plots are projections of this run's archive.
	TimeEnergyBER ObjectiveSet = iota
	// TimeEnergy matches Fig. 6(a).
	TimeEnergy
	// TimeBER matches Fig. 6(b) and Fig. 7.
	TimeBER
)

// String names the set for reports.
func (s ObjectiveSet) String() string {
	switch s {
	case TimeEnergyBER:
		return "time+energy+BER"
	case TimeEnergy:
		return "time+energy"
	case TimeBER:
		return "time+BER"
	}
	return fmt.Sprintf("objectives(%d)", int(s))
}

// ParseObjectiveSet resolves the short objective-set names the CLI
// and the serving API use ("teb", "te", "tb") — the single place the
// wadate flags, the waserve endpoints and the session tokens agree on
// the spelling.
func ParseObjectiveSet(name string) (ObjectiveSet, error) {
	switch name {
	case "teb":
		return TimeEnergyBER, nil
	case "te":
		return TimeEnergy, nil
	case "tb":
		return TimeBER, nil
	}
	return 0, fmt.Errorf("core: unknown objective set %q (want teb, te or tb)", name)
}

// ShortName is the inverse of ParseObjectiveSet.
func (s ObjectiveSet) ShortName() string {
	switch s {
	case TimeEnergyBER:
		return "teb"
	case TimeEnergy:
		return "te"
	case TimeBER:
		return "tb"
	}
	return fmt.Sprintf("objectives(%d)", int(s))
}

func (s ObjectiveSet) objectives() ([]alloc.Objective, error) {
	switch s {
	case TimeEnergyBER:
		return []alloc.Objective{alloc.ObjTime, alloc.ObjEnergy, alloc.ObjBER}, nil
	case TimeEnergy:
		return []alloc.Objective{alloc.ObjTime, alloc.ObjEnergy}, nil
	case TimeBER:
		return []alloc.Objective{alloc.ObjTime, alloc.ObjBER}, nil
	}
	return nil, fmt.Errorf("core: unknown objective set %d", int(s))
}

// Config assembles a WA problem. Zero fields default to the paper's
// evaluation setup: the 6-task virtual application mapped on the 4x4
// serpentine ring with Table I parameters, B = 1 bit/cycle, NSGA-II
// with population 400 over 300 generations.
type Config struct {
	// NW is the number of wavelengths of the comb (required).
	NW int
	// Backend names the optical fabric the allocation runs on: "ring"
	// (the paper's serpentine ring, the default for "") or "crossbar"
	// (the multi-layer MWSR crossbar of internal/crossbar). Both use
	// the default 16-core platform; Ring customizes the ring backend
	// only and is rejected with Backend "crossbar".
	Backend string
	// Ring optionally overrides the platform; its Grid.Channels must
	// equal NW when set. Only meaningful for the ring backend.
	Ring *ring.Config
	// App and Mapping optionally override the workload. The mapping
	// may place several tasks on one core (shared-core regime): the
	// evaluation stack then core-serializes same-core tasks, and
	// campaigns can sweep workloads larger than the 16-core platform.
	App     *graph.TaskGraph
	Mapping graph.Mapping
	// BitsPerCycle is B of the time model.
	BitsPerCycle float64
	// Energy overrides the bit-energy calibration.
	Energy *energy.Model
	// Objectives selects the optimization criteria.
	Objectives ObjectiveSet
	// Instance optionally supplies a prebuilt evaluation instance
	// (see NewSharedInstance). Instances are read-only during
	// evaluation, so any number of problems — e.g. a campaign's
	// replicate cells over the same (workload, NW) pair — may share
	// one and reuse its precomputed routes, path-overlap matrix and
	// conflict-neighbor lists instead of rebuilding them per run.
	// Mutually exclusive with Ring, App, Mapping, BitsPerCycle and
	// Energy; its comb size must equal NW.
	Instance *alloc.Instance
	// WarmStart seeds the GA's initial population with the
	// related-work heuristic allocations (First-Fit / Most-Used /
	// Least-Used at small uniform budgets): the all-ones energy
	// optimum is then present from generation zero instead of having
	// to be discovered.
	WarmStart bool
	// WarmSource optionally supplies already-known evaluations (e.g.
	// a completed replicate sibling's checkpoint archive): when it
	// reports ok, the engine records the objective vector and
	// violation without evaluating. For feasible genotypes
	// (violation == 0) aux must carry the metric triple [TimeKCC,
	// BitEnergyFJ, MeanBER] so result assembly still resolves them;
	// a feasible answer without a complete triple is treated as a
	// miss and evaluated normally. Wired to nsga2.Config.WarmLookup
	// under the hood — takes precedence over GA.WarmLookup.
	WarmSource func(genome []byte) (objs []float64, violation float64, aux []float64, ok bool)
	// GA tunes the engine; GA.ArchiveAll is forced on because the
	// result assembly needs the archive.
	GA nsga2.Config
}

// Problem is a configured wavelength-allocation exploration. It
// implements nsga2.PerWorkerProblem: with Workers > 1 the engine
// gives every evaluation goroutine its own zero-allocation
// alloc.Evaluator and metrics shard (merged when the run finishes),
// so parallel runs scale without contending on a shared lock while
// staying bit-for-bit identical to serial ones. The compatibility
// Evaluate method remains safe for concurrent calls.
//
// It also implements nsga2.DeltaProblem: every evaluator the problem
// hands out carries a delta cache (alloc.EnableDeltaCache), so
// offspring that differ from a retained parent in a single gene or a
// few edge rows are re-evaluated incrementally — bit-identically to
// the full kernel, the engine's variation records merely select the
// cheaper path.
type Problem struct {
	cfg  Config
	in   *alloc.Instance
	objs []alloc.Objective

	// evalPool recycles the problem's delta-enabled evaluators behind
	// Evaluate/EvaluateDelta, so concurrent callers run genuinely in
	// parallel and the serial engine keeps reusing one warm delta
	// cache. Distinct from the instance's compatibility pool, whose
	// evaluators stay delta-free for sim/CLI/tooling callers.
	evalPool *alloc.EvaluatorPool

	mu      sync.Mutex
	metrics map[string]Metrics // full metric triple per evaluated genotype
	workers []*workerProblem   // outstanding shards, folded in by mergeWorkers

	// stats counts which kernel served each evaluation (atomic:
	// worker shards update the shared counters lock-free).
	stats evalStats
}

// evalStats is the problem-level half of the engine instrumentation.
type evalStats struct {
	full, gene, near, cross atomic.Int64
}

// countPath attributes one evaluation to the kernel that served it.
func (p *Problem) countPath(path alloc.EvalPath) {
	switch path {
	case alloc.EvalPathGeneDelta:
		p.stats.gene.Add(1)
	case alloc.EvalPathNearDelta:
		p.stats.near.Add(1)
	case alloc.EvalPathCrossDelta:
		p.stats.cross.Add(1)
	default:
		p.stats.full.Add(1)
	}
}

// EvalStats implements nsga2.StatsProblem.
func (p *Problem) EvalStats() nsga2.EvalStats {
	return nsga2.EvalStats{
		Full:       p.stats.full.Load(),
		GeneDelta:  p.stats.gene.Load(),
		NearDelta:  p.stats.near.Load(),
		CrossDelta: p.stats.cross.Load(),
	}
}

// metricsAuxLen is the checkpoint aux payload dimension: the metric
// triple [TimeKCC, BitEnergyFJ, MeanBER] of feasible genotypes.
const metricsAuxLen = 3

// auxFill implements nsga2.Config.AuxFill: persist the metric triple
// of every genotype the problem knows next to its checkpoint cache
// entry. Unknown genotypes keep the pre-filled payload (a resumed
// entry's retained triple, or NaN).
func (p *Problem) auxFill(genome []byte, aux []float64) {
	if m, ok := p.lookupMetrics(genome); ok {
		aux[0], aux[1], aux[2] = m.TimeKCC, m.BitEnergyFJ, m.MeanBER
	}
}

// lookupMetrics reads the metric triple for a genotype from the
// parent map or any outstanding worker shard, without folding the
// shards. Safe between engine Steps (no evaluation goroutines run).
func (p *Problem) lookupMetrics(genome []byte) (Metrics, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.metrics[string(genome)]; ok {
		return m, true
	}
	for _, w := range p.workers {
		if m, ok := w.metrics[string(genome)]; ok {
			return m, true
		}
	}
	return Metrics{}, false
}

// injectMetrics registers an externally supplied metric triple (a
// checkpoint aux payload or a warm-source hit) as if the genotype had
// been evaluated.
func (p *Problem) injectMetrics(genome []byte, m Metrics) {
	p.mu.Lock()
	p.metrics[string(genome)] = m
	p.mu.Unlock()
}

// warmLookup adapts Config.WarmSource to nsga2.Config.WarmLookup:
// feasible hits must carry the complete metric triple, which is
// injected into the metric cache so result assembly and later
// checkpoints see it; incomplete feasible answers degrade to a miss.
func (p *Problem) warmLookup(genome []byte) ([]float64, float64, bool) {
	objs, viol, aux, ok := p.cfg.WarmSource(genome)
	if !ok {
		return nil, 0, false
	}
	if viol == 0 {
		if len(aux) != metricsAuxLen || anyNaN(aux) {
			return nil, 0, false
		}
		p.injectMetrics(genome, Metrics{TimeKCC: aux[0], BitEnergyFJ: aux[1], MeanBER: aux[2]})
	}
	return objs, viol, true
}

func anyNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Metrics is the full figure-of-merit triple of a valid genome.
type Metrics struct {
	TimeKCC     float64
	BitEnergyFJ float64
	MeanBER     float64
}

// Log10BER is the display form of MeanBER.
func (m Metrics) Log10BER() float64 {
	if m.MeanBER <= 0 {
		return -300
	}
	return math.Log10(m.MeanBER)
}

// NewSharedInstance builds the evaluation instance a Config
// describes, without the GA around it. The result is safe to share
// read-only across any number of problems via Config.Instance: a
// campaign hands every replicate cell of one (workload, NW) pair the
// same instance, so the precomputed routes, overlap matrix and
// conflict-neighbor lists are built once per pair instead of once per
// cell.
func NewSharedInstance(cfg Config) (*alloc.Instance, error) {
	if cfg.NW <= 0 {
		return nil, fmt.Errorf("core: NW must be positive, got %d", cfg.NW)
	}
	f, err := newFabric(cfg)
	if err != nil {
		return nil, err
	}
	app := cfg.App
	if app == nil {
		app = graph.PaperApp()
	}
	m := cfg.Mapping
	if m == nil {
		if cfg.App != nil {
			return nil, fmt.Errorf("core: custom application needs an explicit mapping")
		}
		m = graph.PaperMapping()
	}
	bpc := cfg.BitsPerCycle
	if bpc == 0 {
		bpc = 1
	}
	em := energy.Default()
	if cfg.Energy != nil {
		em = *cfg.Energy
	}
	return alloc.NewInstance(f, app, m, bpc, em)
}

// newFabric builds the optical backend Config.Backend selects.
func newFabric(cfg Config) (fabric.Fabric, error) {
	switch cfg.Backend {
	case "", "ring":
		rcfg := ring.DefaultConfig(cfg.NW)
		if cfg.Ring != nil {
			rcfg = *cfg.Ring
			if rcfg.Grid.Channels != cfg.NW {
				return nil, fmt.Errorf("core: ring grid has %d channels, config says NW=%d",
					rcfg.Grid.Channels, cfg.NW)
			}
		}
		return ring.New(rcfg)
	case "crossbar":
		if cfg.Ring != nil {
			return nil, fmt.Errorf("core: Ring override is meaningless with the crossbar backend")
		}
		return crossbar.New(crossbar.DefaultConfig(cfg.NW))
	default:
		return nil, fmt.Errorf("core: unknown backend %q (known: %v)", cfg.Backend, Backends())
	}
}

// New validates the configuration and builds the problem.
func New(cfg Config) (*Problem, error) {
	if cfg.NW <= 0 {
		return nil, fmt.Errorf("core: NW must be positive, got %d", cfg.NW)
	}
	in := cfg.Instance
	if in != nil {
		if cfg.Backend != "" || cfg.Ring != nil || cfg.App != nil || cfg.Mapping != nil || cfg.Energy != nil || cfg.BitsPerCycle != 0 {
			return nil, fmt.Errorf("core: Instance is mutually exclusive with Backend, Ring, App, Mapping, BitsPerCycle and Energy")
		}
		if in.Channels() != cfg.NW {
			return nil, fmt.Errorf("core: shared instance has %d channels, config says NW=%d",
				in.Channels(), cfg.NW)
		}
	} else {
		var err error
		in, err = NewSharedInstance(cfg)
		if err != nil {
			return nil, err
		}
	}
	objs, err := cfg.Objectives.objectives()
	if err != nil {
		return nil, err
	}
	return &Problem{
		cfg:      cfg,
		in:       in,
		objs:     objs,
		evalPool: alloc.NewEvaluatorPool(in, true),
		metrics:  make(map[string]Metrics),
	}, nil
}

// Instance exposes the underlying evaluation instance (heuristics,
// simulator and CLI tooling build on it).
func (p *Problem) Instance() *alloc.Instance { return p.in }

// GenomeLen implements nsga2.Problem.
func (p *Problem) GenomeLen() int { return p.in.Edges() * p.in.Channels() }

// NumObjectives implements nsga2.Problem.
func (p *Problem) NumObjectives() int { return len(p.objs) }

// getEvaluator draws a delta-enabled evaluator from the problem pool
// (alloc.EvaluatorPool constructs them lazily with the delta cache
// on).
func (p *Problem) getEvaluator() (*alloc.Evaluator, error) {
	return p.evalPool.Get()
}

// Evaluate implements nsga2.Problem: full evaluation, metric capture,
// then projection onto the configured objectives. The returned
// violation is 0 for valid chromosomes and the graded constraint
// violation otherwise. This path evaluates through the problem's
// delta-enabled evaluator pool — concurrent callers run in parallel,
// only the metrics insert takes the lock; the engine's workers go
// through NewWorker and skip even that.
func (p *Problem) Evaluate(genome []byte) ([]float64, float64) {
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		return infObjectives(len(p.objs)), math.Inf(1)
	}
	ev, err := p.getEvaluator()
	if err != nil {
		return infObjectives(len(p.objs)), 1
	}
	var out alloc.Eval
	ev.EvaluateInto(&out, g)
	p.countPath(ev.LastEvalPath())
	p.recordMetrics(g, &out)
	objs, viol := out.Objectives(p.objs), out.Violation
	p.evalPool.Put(ev)
	return objs, viol
}

// EvaluateDelta implements nsga2.DeltaProblem: a recorded pure
// single-gene mutant whose parent is still retained in the
// evaluator's delta cache goes through the handle-based
// EvaluateDeltaInto; any other offspring tries the general few-row
// path against both mating parents and falls back to the full kernel
// inside EvaluateNearInto. Results are bit-identical to Evaluate.
func (p *Problem) EvaluateDelta(genome, parent1, parent2 []byte, gene int) ([]float64, float64) {
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		return infObjectives(len(p.objs)), math.Inf(1)
	}
	ev, err := p.getEvaluator()
	if err != nil {
		return infObjectives(len(p.objs)), 1
	}
	var out alloc.Eval
	deltaEvalInto(ev, &out, g, parent1, parent2, gene)
	p.countPath(ev.LastEvalPath())
	p.recordMetrics(g, &out)
	objs, viol := out.Objectives(p.objs), out.Violation
	p.evalPool.Put(ev)
	return objs, viol
}

// EvaluateObjsInto implements nsga2.IntoProblem: Evaluate writing the
// objective vector into a caller-owned row (the engine's column
// arena) instead of boxing a fresh slice per evaluation. Values are
// bit-identical to Evaluate's.
func (p *Problem) EvaluateObjsInto(dst []float64, genome []byte) float64 {
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		fillInf(dst)
		return math.Inf(1)
	}
	ev, err := p.getEvaluator()
	if err != nil {
		fillInf(dst)
		return 1
	}
	var out alloc.Eval
	ev.EvaluateInto(&out, g)
	p.countPath(ev.LastEvalPath())
	p.recordMetrics(g, &out)
	out.ObjectivesInto(dst, p.objs)
	viol := out.Violation
	p.evalPool.Put(ev)
	return viol
}

// EvaluateDeltaObjsInto implements nsga2.DeltaIntoProblem — the
// write-into form of EvaluateDelta.
func (p *Problem) EvaluateDeltaObjsInto(dst []float64, genome, parent1, parent2 []byte, gene int) float64 {
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		fillInf(dst)
		return math.Inf(1)
	}
	ev, err := p.getEvaluator()
	if err != nil {
		fillInf(dst)
		return 1
	}
	var out alloc.Eval
	deltaEvalInto(ev, &out, g, parent1, parent2, gene)
	p.countPath(ev.LastEvalPath())
	p.recordMetrics(g, &out)
	out.ObjectivesInto(dst, p.objs)
	viol := out.Violation
	p.evalPool.Put(ev)
	return viol
}

// recordMetrics captures a valid evaluation's full metric triple
// under the problem lock.
func (p *Problem) recordMetrics(g alloc.Genome, out *alloc.Eval) {
	if !out.Valid {
		return
	}
	p.mu.Lock()
	p.metrics[g.Key()] = Metrics{
		TimeKCC:     out.TimeKCC(),
		BitEnergyFJ: out.BitEnergyFJ,
		MeanBER:     out.MeanBER,
	}
	p.mu.Unlock()
}

// deltaEvalInto dispatches one delta-hinted evaluation on ev: the
// recorded single-gene flip uses the parent handle directly (the
// child's mask rows are the parent's with one bit edited — no genome
// decode at all); everything else goes through EvaluateNearInto,
// which row-diffs against the retained parents and falls back to the
// full kernel when no retained parent is close enough.
func deltaEvalInto(ev *alloc.Evaluator, out *alloc.Eval, g alloc.Genome, parent1, parent2 []byte, gene int) {
	if gene >= 0 && gene < g.Len() && len(parent1) == g.Len() {
		if pg, err := alloc.FromBits(parent1, g.Edges(), g.Channels()); err == nil {
			if h, ok := ev.DeltaHandle(pg); ok {
				nw := g.Channels()
				edge, ch := gene/nw, gene%nw
				oldCh, newCh := -1, ch
				if parent1[gene] != 0 {
					oldCh, newCh = ch, -1
				}
				ev.EvaluateDeltaInto(out, h, edge, oldCh, newCh)
				return
			}
		}
	}
	ev.EvaluateNearInto(out, g, parent1, parent2)
}

func infObjectives(n int) []float64 {
	out := make([]float64, n)
	fillInf(out)
	return out
}

func fillInf(dst []float64) {
	inf := math.Inf(1)
	for i := range dst {
		dst[i] = inf
	}
}

// workerProblem is one engine goroutine's private evaluation view: a
// zero-allocation evaluator plus a metrics shard written without any
// locking. Shards fold back into the parent when the run completes.
type workerProblem struct {
	parent  *Problem
	eval    *alloc.Evaluator
	metrics map[string]Metrics
}

// NewWorker implements nsga2.PerWorkerProblem. The worker shares the
// parent's immutable instance and objective set; only scratch and the
// metrics shard are private.
func (p *Problem) NewWorker() nsga2.Problem {
	ev, err := alloc.NewEvaluator(p.in)
	if err != nil {
		// Cannot happen for instances built by New; degrade to the
		// locked compatibility path rather than failing the run.
		return p
	}
	ev.EnableDeltaCache(0)
	w := &workerProblem{parent: p, eval: ev, metrics: make(map[string]Metrics)}
	p.mu.Lock()
	p.workers = append(p.workers, w)
	p.mu.Unlock()
	return w
}

// mergeWorkers folds every outstanding shard into the parent metrics
// map. Evaluation is deterministic, so identical keys carry identical
// metrics and the merge order cannot matter.
func (p *Problem) mergeWorkers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		for k, m := range w.metrics {
			p.metrics[k] = m
		}
	}
	p.workers = nil
}

// GenomeLen implements nsga2.Problem.
func (w *workerProblem) GenomeLen() int { return w.parent.GenomeLen() }

// NumObjectives implements nsga2.Problem.
func (w *workerProblem) NumObjectives() int { return w.parent.NumObjectives() }

// Evaluate implements nsga2.Problem on the worker's private state:
// no locks, no steady-state allocations beyond the retained objective
// vector and metrics entry.
func (w *workerProblem) Evaluate(genome []byte) ([]float64, float64) {
	p := w.parent
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		return infObjectives(len(p.objs)), math.Inf(1)
	}
	var ev alloc.Eval
	w.eval.EvaluateInto(&ev, g)
	p.countPath(w.eval.LastEvalPath())
	w.record(g, &ev)
	return ev.Objectives(p.objs), ev.Violation
}

// EvaluateDelta implements nsga2.DeltaProblem on the worker's private
// delta-enabled evaluator — the lock-free analogue of the parent's.
func (w *workerProblem) EvaluateDelta(genome, parent1, parent2 []byte, gene int) ([]float64, float64) {
	p := w.parent
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		return infObjectives(len(p.objs)), math.Inf(1)
	}
	var ev alloc.Eval
	deltaEvalInto(w.eval, &ev, g, parent1, parent2, gene)
	p.countPath(w.eval.LastEvalPath())
	w.record(g, &ev)
	return ev.Objectives(p.objs), ev.Violation
}

// EvaluateObjsInto implements nsga2.IntoProblem on the worker's
// private state — the write-into form of the worker Evaluate.
func (w *workerProblem) EvaluateObjsInto(dst []float64, genome []byte) float64 {
	p := w.parent
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		fillInf(dst)
		return math.Inf(1)
	}
	var ev alloc.Eval
	w.eval.EvaluateInto(&ev, g)
	p.countPath(w.eval.LastEvalPath())
	w.record(g, &ev)
	ev.ObjectivesInto(dst, p.objs)
	return ev.Violation
}

// EvaluateDeltaObjsInto implements nsga2.DeltaIntoProblem on the
// worker's private delta-enabled evaluator.
func (w *workerProblem) EvaluateDeltaObjsInto(dst []float64, genome, parent1, parent2 []byte, gene int) float64 {
	p := w.parent
	g, err := alloc.FromBits(genome, p.in.Edges(), p.in.Channels())
	if err != nil {
		fillInf(dst)
		return math.Inf(1)
	}
	var ev alloc.Eval
	deltaEvalInto(w.eval, &ev, g, parent1, parent2, gene)
	p.countPath(w.eval.LastEvalPath())
	w.record(g, &ev)
	ev.ObjectivesInto(dst, p.objs)
	return ev.Violation
}

// record captures a valid evaluation's metric triple in the worker's
// lock-free shard.
func (w *workerProblem) record(g alloc.Genome, ev *alloc.Eval) {
	if !ev.Valid {
		return
	}
	w.metrics[g.Key()] = Metrics{
		TimeKCC:     ev.TimeKCC(),
		BitEnergyFJ: ev.BitEnergyFJ,
		MeanBER:     ev.MeanBER,
	}
}

// Solution is one valid wavelength allocation with its metrics.
type Solution struct {
	Genome alloc.Genome
	Counts []int
	Metrics
}

// AllocationVector renders the per-communication wavelength counts in
// the paper's "[2 8 6 6 4 7]" style.
func (s Solution) AllocationVector() string {
	return fmt.Sprint(s.Counts)
}

// Result is the outcome of one exploration run.
type Result struct {
	// NW echoes the comb size of the run.
	NW int
	// Front is the final population's feasible first front, deduped
	// and sorted by execution time.
	Front []Solution
	// Valid lists every distinct valid genome evaluated during the
	// run (the paper's Table II "number of valid solutions").
	Valid []Solution
	// FrontTimeEnergy and FrontTimeBER are the global Pareto fronts
	// over Valid, projected on (time, bit energy) and (time, mean
	// BER): the point sets of Figs. 6(a) and 6(b).
	FrontTimeEnergy []Solution
	FrontTimeBER    []Solution
	// Evaluations, ValidEvaluations, DistinctEvaluated and
	// DistinctValid count the engine's work; ValidEvaluations
	// (duplicates included) is what the paper's Table II reports as
	// the "number of valid solutions" generated by the GA.
	Evaluations       int
	ValidEvaluations  int
	DistinctEvaluated int
	DistinctValid     int
}

// HeuristicSeeds builds the warm-start genomes: every related-work
// policy at uniform budgets of 1..3 wavelengths, keeping whatever is
// feasible on this instance.
func (p *Problem) HeuristicSeeds() [][]byte {
	var seeds [][]byte
	for n := 1; n <= 3 && n <= p.in.Channels(); n++ {
		counts := alloc.UniformCounts(p.in.Edges(), n)
		for _, pol := range []alloc.Policy{alloc.FirstFit, alloc.MostUsed, alloc.LeastUsed} {
			g, err := alloc.Assign(p.in, counts, pol, nil)
			if err != nil {
				continue
			}
			seeds = append(seeds, append([]byte(nil), g.Bits()...))
		}
	}
	return seeds
}

// Optimize runs NSGA-II and assembles the result. It is a loop over
// an Explorer: runs that need to checkpoint between generations use
// NewExplorer/Step/Finish directly and get bit-identical results.
func (p *Problem) Optimize() (*Result, error) {
	x, err := p.NewExplorer()
	if err != nil {
		return nil, err
	}
	for !x.Done() {
		x.Step()
	}
	return x.Finish()
}

// assembleResult builds the Result from a finished run: the feasible
// final front, the valid archive and its 2D Pareto projections, all
// resolved through the metric cache.
func (p *Problem) assembleResult(runRes *nsga2.Result) (*Result, error) {
	res := &Result{
		NW:                p.in.Channels(),
		Evaluations:       runRes.Evaluations,
		ValidEvaluations:  runRes.ValidEvaluations,
		DistinctEvaluated: runRes.DistinctEvaluated,
		DistinctValid:     runRes.DistinctValid,
	}
	for _, ind := range nsga2.FeasibleFront(runRes.Final) {
		if s, ok := p.solutionFor(ind.Genome); ok {
			res.Front = append(res.Front, s)
		}
	}
	sortByTime(res.Front)
	for _, e := range runRes.Archive {
		if !e.Feasible() {
			continue
		}
		if s, ok := p.solutionFor(e.Genome); ok {
			res.Valid = append(res.Valid, s)
		}
	}
	res.FrontTimeEnergy = projectFront(res.Valid, func(s Solution) [2]float64 {
		return [2]float64{s.TimeKCC, s.BitEnergyFJ}
	})
	res.FrontTimeBER = projectFront(res.Valid, func(s Solution) [2]float64 {
		return [2]float64{s.TimeKCC, s.MeanBER}
	})
	return res, nil
}

// solutionFor resolves a genome to a Solution through the metric
// cache. It takes the problem lock: result assembly can race with
// concurrent Evaluate calls from other users of the same Problem.
func (p *Problem) solutionFor(genome []byte) (Solution, bool) {
	p.mu.Lock()
	m, ok := p.metrics[string(genome)]
	p.mu.Unlock()
	if !ok {
		return Solution{}, false
	}
	g, err := alloc.FromBits(append([]byte(nil), genome...), p.in.Edges(), p.in.Channels())
	if err != nil {
		return Solution{}, false
	}
	return Solution{Genome: g, Counts: g.Counts(), Metrics: m}, true
}

// projectFront reduces the valid set to its 2D Pareto front under the
// projection, sorted by the first coordinate.
func projectFront(valid []Solution, proj func(Solution) [2]float64) []Solution {
	if len(valid) == 0 {
		return nil
	}
	points := make([][]float64, len(valid))
	for i, s := range valid {
		xy := proj(s)
		points[i] = []float64{xy[0], xy[1]}
	}
	idx := pareto.FrontIndices2D(points)
	front := make([]Solution, 0, len(idx))
	for _, i := range idx {
		front = append(front, valid[i])
	}
	sortByTime(front)
	return front
}

func sortByTime(ss []Solution) {
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].TimeKCC != ss[j].TimeKCC {
			return ss[i].TimeKCC < ss[j].TimeKCC
		}
		if ss[i].BitEnergyFJ != ss[j].BitEnergyFJ {
			return ss[i].BitEnergyFJ < ss[j].BitEnergyFJ
		}
		return ss[i].MeanBER < ss[j].MeanBER
	})
}

// BestTimeKCC returns the fastest valid solution's makespan, the
// per-NW anchor the paper quotes (28.3, 23.8, 22.96 k-cc).
func (r *Result) BestTimeKCC() float64 {
	best := math.Inf(1)
	for _, s := range r.Valid {
		if s.TimeKCC < best {
			best = s.TimeKCC
		}
	}
	return best
}

// MinEnergySolution returns the lowest-bit-energy valid solution (the
// paper's all-ones allocation).
func (r *Result) MinEnergySolution() (Solution, bool) {
	if len(r.Valid) == 0 {
		return Solution{}, false
	}
	best := r.Valid[0]
	for _, s := range r.Valid[1:] {
		if s.BitEnergyFJ < best.BitEnergyFJ {
			best = s
		}
	}
	return best, true
}
