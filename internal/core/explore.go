package core

import (
	"fmt"
	"io"

	"repro/internal/nsga2"
)

// Explorer is the incremental form of Optimize: it exposes the
// exploration one generation at a time, so long campaigns can
// checkpoint between generations and resume after preemption.
// Optimize itself is a thin loop over an Explorer, so a stepped run
// is bit-for-bit identical to a monolithic one.
//
// An Explorer is not safe for concurrent use.
type Explorer struct {
	p    *Problem
	eng  *nsga2.Engine
	gens int
}

// baseGAConfig assembles the part of the engine configuration every
// run — fresh or resumed — needs: the archive is forced on (result
// assembly needs it), checkpoints carry the metric triple as the aux
// payload, and a configured WarmSource is adapted onto the engine's
// WarmLookup hook.
func (p *Problem) baseGAConfig() nsga2.Config {
	ga := p.cfg.GA
	ga.ArchiveAll = true
	ga.AuxLen = metricsAuxLen
	ga.AuxFill = p.auxFill
	if p.cfg.WarmSource != nil {
		ga.WarmLookup = p.warmLookup
	}
	return ga
}

// gaConfig is baseGAConfig plus the fresh-run concerns: WarmStart
// injects the heuristic seeds, exactly like Optimize always did.
func (p *Problem) gaConfig() nsga2.Config {
	ga := p.baseGAConfig()
	if p.cfg.WarmStart && len(ga.Seeds) == 0 {
		ga.Seeds = p.HeuristicSeeds()
	}
	return ga
}

// NewExplorer builds the engine and evaluates the initial population.
func (p *Problem) NewExplorer() (*Explorer, error) {
	return p.newExplorerWith(p.gaConfig())
}

// newExplorerWith is NewExplorer under an explicit engine
// configuration — the island model derives per-island configurations
// from the problem's instead of using it verbatim.
func (p *Problem) newExplorerWith(ga nsga2.Config) (*Explorer, error) {
	eng, err := nsga2.NewEngine(p, ga)
	if err != nil {
		return nil, err
	}
	return &Explorer{p: p, eng: eng, gens: eng.Config().Generations}, nil
}

// ResumeExplorer rebuilds an exploration from a checkpoint written by
// WriteCheckpoint, typically in a fresh process after preemption. The
// problem must be configured identically to the checkpointed run (the
// checkpoint header pins genome geometry, population size and seed
// and fails loudly on mismatch).
//
// Beyond the engine state, the problem's metric cache is rehydrated:
// checkpoints persist the metric triple of every known genotype as
// the cache entries' aux payload, so a resume decodes the triples
// straight back instead of re-running the evaluation kernel. The
// triples were recorded from deterministic evaluations and round-trip
// as IEEE-754 bit patterns, which keeps the rehydrated metrics — and
// therefore the final Result — bit-identical to an uninterrupted
// run's. A feasible entry without a complete triple (possible only in
// a hand-built stream) falls back to one evaluation.
func (p *Problem) ResumeExplorer(r io.Reader) (*Explorer, error) {
	// Warm-start seeds are an initial-population concern; the
	// population comes from the checkpoint here, so skip the heuristic
	// recomputation gaConfig would do per resumed cell.
	return p.resumeExplorerWith(p.baseGAConfig(), r)
}

// resumeExplorerWith is ResumeExplorer under an explicit engine
// configuration (which must match the checkpoint header); the island
// model resumes per-island checkpoints with per-island
// configurations.
func (p *Problem) resumeExplorerWith(ga nsga2.Config, r io.Reader) (*Explorer, error) {
	eng, err := nsga2.ResumeEngine(p, ga, r)
	if err != nil {
		return nil, err
	}
	// Rehydration inserts up to one metric triple per archive entry;
	// pre-sizing the cache once replaces the incremental map growth
	// (and rehashing of everything already inserted) a large resumed
	// archive would otherwise pay.
	p.mu.Lock()
	if len(p.metrics) == 0 {
		p.metrics = make(map[string]Metrics, eng.ArchiveLen())
	}
	p.mu.Unlock()
	eng.VisitArchive(func(genome []byte, objs []float64, violation float64, aux []float64) {
		if violation != 0 {
			return
		}
		if len(aux) == metricsAuxLen && !anyNaN(aux) {
			p.injectMetrics(genome, Metrics{TimeKCC: aux[0], BitEnergyFJ: aux[1], MeanBER: aux[2]})
			return
		}
		p.Evaluate(genome)
	})
	return &Explorer{p: p, eng: eng, gens: eng.Config().Generations}, nil
}

// Generation returns the number of completed generations.
func (x *Explorer) Generation() int { return x.eng.Generation() }

// Generations returns the run's target generation count.
func (x *Explorer) Generations() int { return x.gens }

// Done reports whether the run has completed its configured
// generations.
func (x *Explorer) Done() bool { return x.eng.Generation() >= x.gens }

// Step advances one generation.
func (x *Explorer) Step() { x.eng.Step() }

// Stats exposes the engine's instrumentation counters: how many
// evaluations each kernel served, cache and warm-lookup hits, and
// dominance relations compared (see nsga2.Stats).
func (x *Explorer) Stats() nsga2.Stats { return x.eng.Stats() }

// WriteCheckpoint serializes the exploration state (see
// nsga2.Engine.WriteCheckpoint). Call it between Steps.
func (x *Explorer) WriteCheckpoint(w io.Writer) error {
	return x.eng.WriteCheckpoint(w)
}

// Finish folds the worker metric shards and assembles the Result. The
// explorer can keep stepping afterwards (e.g. to extend a run), but
// the usual pattern is Step-until-Done, then Finish.
func (x *Explorer) Finish() (*Result, error) {
	if !x.Done() {
		return nil, fmt.Errorf("core: Finish at generation %d of %d (step the explorer to completion first)",
			x.eng.Generation(), x.gens)
	}
	runRes := x.eng.Result()
	x.p.mergeWorkers()
	return x.p.assembleResult(runRes)
}
