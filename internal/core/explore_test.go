package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/nsga2"
)

func quickCfg(seed int64) Config {
	return Config{NW: 8, GA: nsga2.Config{PopSize: 40, Generations: 24, Seed: seed}}
}

func resultsIdentical(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Evaluations != b.Evaluations || a.ValidEvaluations != b.ValidEvaluations ||
		a.DistinctEvaluated != b.DistinctEvaluated || a.DistinctValid != b.DistinctValid {
		t.Fatalf("%s: counters diverge: %d/%d/%d/%d vs %d/%d/%d/%d", label,
			a.Evaluations, a.ValidEvaluations, a.DistinctEvaluated, a.DistinctValid,
			b.Evaluations, b.ValidEvaluations, b.DistinctEvaluated, b.DistinctValid)
	}
	for _, fronts := range []struct {
		name string
		a, b []Solution
	}{
		{"Front", a.Front, b.Front},
		{"Valid", a.Valid, b.Valid},
		{"FrontTimeEnergy", a.FrontTimeEnergy, b.FrontTimeEnergy},
		{"FrontTimeBER", a.FrontTimeBER, b.FrontTimeBER},
	} {
		if len(fronts.a) != len(fronts.b) {
			t.Fatalf("%s: %s sizes %d vs %d", label, fronts.name, len(fronts.a), len(fronts.b))
		}
		for i := range fronts.a {
			sa, sb := fronts.a[i], fronts.b[i]
			if sa.Genome.String() != sb.Genome.String() ||
				!reflect.DeepEqual(sa.Counts, sb.Counts) || sa.Metrics != sb.Metrics {
				t.Fatalf("%s: %s[%d] diverges:\n%v %v\n%v %v",
					label, fronts.name, i, sa.Genome, sa.Metrics, sb.Genome, sb.Metrics)
			}
		}
	}
}

// TestExplorerMatchesOptimize pins the stepped API to the monolithic
// one: driving an Explorer to completion assembles the identical
// Result.
func TestExplorerMatchesOptimize(t *testing.T) {
	pa, err := New(quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := pa.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	x, err := pb.NewExplorer()
	if err != nil {
		t.Fatal(err)
	}
	for !x.Done() {
		x.Step()
	}
	rb, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, ra, rb, "explorer vs optimize")
}

// TestExplorerFinishEarlyFails pins the misuse guard.
func TestExplorerFinishEarlyFails(t *testing.T) {
	p, err := New(quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	x, err := p.NewExplorer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Finish(); err == nil {
		t.Fatal("Finish before completion must fail")
	}
}

// TestResumeExplorerIdenticalResult is the cross-process contract: a
// run checkpointed mid-exploration and resumed on a FRESH problem (a
// fresh instance, an empty metric cache — everything a new process
// would rebuild) finishes with a Result bit-identical to the
// uninterrupted run, including the rehydrated metric triples behind
// every front solution.
func TestResumeExplorerIdenticalResult(t *testing.T) {
	ref, err := New(quickCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Optimize()
	if err != nil {
		t.Fatal(err)
	}

	live, err := New(quickCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	x, err := live.NewExplorer()
	if err != nil {
		t.Fatal(err)
	}
	for x.Generation() < 9 {
		x.Step()
	}
	var ckpt bytes.Buffer
	if err := x.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(quickCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := fresh.ResumeExplorer(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 9 {
		t.Fatalf("resumed at generation %d, want 9", resumed.Generation())
	}
	for !resumed.Done() {
		resumed.Step()
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, refRes, res, "resumed vs uninterrupted")
}

// TestResumeExplorerRejectsMismatchedProblem pins the fail-loud
// geometry check at the core level: a checkpoint taken at one comb
// size cannot resume a problem at another.
func TestResumeExplorerRejectsMismatchedProblem(t *testing.T) {
	p, err := New(quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	x, err := p.NewExplorer()
	if err != nil {
		t.Fatal(err)
	}
	x.Step()
	var ckpt bytes.Buffer
	if err := x.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{NW: 4, GA: nsga2.Config{PopSize: 40, Generations: 24, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ResumeExplorer(&ckpt); err == nil {
		t.Fatal("checkpoint for NW=8 resumed an NW=4 problem")
	}
}
