package phys

import (
	"math"
	"testing"
)

func TestDefaultGridMatchesPaper(t *testing.T) {
	g := DefaultGrid(8)
	if g.FSRNM != 12.8 {
		t.Errorf("FSR = %v, want 12.8 nm", g.FSRNM)
	}
	if g.Q != 9600 {
		t.Errorf("Q = %v, want 9600", g.Q)
	}
	if g.Channels != 8 {
		t.Errorf("Channels = %v, want 8", g.Channels)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("default grid invalid: %v", err)
	}
}

func TestGridSpacing(t *testing.T) {
	for _, nw := range []int{4, 8, 12} {
		g := DefaultGrid(nw)
		want := 12.8 / float64(nw)
		if got := g.SpacingNM(); !almostEqual(got, want, 1e-12) {
			t.Errorf("NW=%d spacing = %v, want %v", nw, got, want)
		}
	}
}

func TestGridDelta(t *testing.T) {
	g := DefaultGrid(8)
	want := 1550.0 / (2 * 9600)
	if got := g.DeltaNM(); !almostEqual(got, want, 1e-12) {
		t.Errorf("delta = %v, want %v", got, want)
	}
}

func TestGridWavelengthsSymmetricAroundCenter(t *testing.T) {
	g := DefaultGrid(8)
	lo := g.WavelengthNM(0)
	hi := g.WavelengthNM(g.Channels - 1)
	if !almostEqual(lo+hi, 2*g.CenterNM, 1e-9) {
		t.Errorf("first+last = %v, want %v", lo+hi, 2*g.CenterNM)
	}
	// Consecutive channels are exactly one spacing apart.
	for ch := 1; ch < g.Channels; ch++ {
		d := g.WavelengthNM(ch) - g.WavelengthNM(ch-1)
		if !almostEqual(d, g.SpacingNM(), 1e-9) {
			t.Errorf("spacing between ch %d and %d = %v, want %v", ch-1, ch, d, g.SpacingNM())
		}
	}
}

func TestGridDistance(t *testing.T) {
	g := DefaultGrid(4)
	if got := g.DistanceNM(0, 0); got != 0 {
		t.Errorf("distance(0,0) = %v, want 0", got)
	}
	if got, want := g.DistanceNM(0, 3), 3*g.SpacingNM(); !almostEqual(got, want, 1e-12) {
		t.Errorf("distance(0,3) = %v, want %v", got, want)
	}
	if g.DistanceNM(1, 3) != g.DistanceNM(3, 1) {
		t.Error("distance must be symmetric")
	}
}

func TestCrosstalkDBProperties(t *testing.T) {
	g := DefaultGrid(12)
	// Resonant channel drops fully: 0 dB.
	if got := g.CrosstalkDB(5, 5); !almostEqual(float64(got), 0, 1e-12) {
		t.Errorf("resonant crosstalk = %v dB, want 0", got)
	}
	// Leakage decreases monotonically with channel distance.
	prev := 1.0
	for d := 1; d < g.Channels; d++ {
		leak := g.CrosstalkDB(0, d).Linear()
		if leak >= prev {
			t.Errorf("leak at distance %d = %v, not below %v", d, leak, prev)
		}
		prev = leak
	}
	// Symmetric in its arguments.
	if g.CrosstalkDB(2, 7) != g.CrosstalkDB(7, 2) {
		t.Error("crosstalk must be symmetric")
	}
}

func TestCrosstalkAdjacentChannelMagnitude(t *testing.T) {
	// Sanity anchor: with the paper's comb at NW=8 (CS = 1.6 nm,
	// delta ~ 0.0807 nm) adjacent-channel leakage is about -26 dB.
	g := DefaultGrid(8)
	got := float64(g.CrosstalkDB(0, 1))
	if got > -24 || got < -28 {
		t.Errorf("adjacent crosstalk = %v dB, want about -26 dB", got)
	}
}

func TestDenserCombLeaksMore(t *testing.T) {
	// Fixed FSR: more channels -> smaller spacing -> worse adjacent
	// crosstalk. This is the physical driver of the paper's
	// time/BER trade-off.
	leak4 := DefaultGrid(4).CrosstalkDB(0, 1)
	leak8 := DefaultGrid(8).CrosstalkDB(0, 1)
	leak12 := DefaultGrid(12).CrosstalkDB(0, 1)
	if !(leak12 > leak8 && leak8 > leak4) {
		t.Errorf("adjacent leak should grow with density: 4->%v 8->%v 12->%v", leak4, leak8, leak12)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Grid
	}{
		{"zero channels", Grid{CenterNM: 1550, FSRNM: 12.8, Q: 9600, Channels: 0}},
		{"negative FSR", Grid{CenterNM: 1550, FSRNM: -1, Q: 9600, Channels: 4}},
		{"zero centre", Grid{CenterNM: 0, FSRNM: 12.8, Q: 9600, Channels: 4}},
		{"zero Q", Grid{CenterNM: 1550, FSRNM: 12.8, Q: 0, Channels: 4}},
		{"FSR exceeds carrier", Grid{CenterNM: 10, FSRNM: 12.8, Q: 9600, Channels: 4}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLorentzianProperties(t *testing.T) {
	const delta = 0.0807
	if got := Lorentzian(0, delta); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Lorentzian(0) = %v, want 1", got)
	}
	// Half power at one half-width.
	if got := Lorentzian(delta, delta); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Lorentzian(delta) = %v, want 0.5", got)
	}
	// Monotone decreasing in distance, even under sign flips.
	if Lorentzian(1, delta) <= Lorentzian(2, delta) {
		t.Error("Lorentzian must decrease with distance")
	}
	if Lorentzian(1.5, delta) != Lorentzian(-1.5, delta) {
		t.Error("Lorentzian must be even in distance")
	}
	// Quadratic far-field rolloff: doubling the distance quarters the leak.
	far := Lorentzian(4, delta) / Lorentzian(8, delta)
	if math.Abs(far-4) > 0.01 {
		t.Errorf("far-field rolloff ratio = %v, want ~4", far)
	}
}
