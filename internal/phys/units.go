// Package phys implements the photonic device physics underlying the
// wavelength-allocation models of Luo et al. (DATE 2017): decibel and
// linear optical power arithmetic, the micro-ring resonator (MR)
// Lorentzian filter response (Eq. 1), the WDM wavelength grid (FSR,
// channel spacing, quality factor), and the OOK signal-to-noise-ratio
// and bit-error-rate model (Eqs. 8 and 9).
//
// Conventions:
//   - Wavelengths are expressed in nanometres.
//   - Relative power gains/losses are phys.DB values; losses are
//     negative (e.g. an ON-state MR pass is -0.5 dB).
//   - Absolute optical powers are phys.DBm (referenced to 1 mW) or
//     phys.MilliWatt in the linear domain.
package phys

import "math"

// DB is a relative power ratio expressed in decibels. Losses are
// negative values, exactly as printed in Table I of the paper.
type DB float64

// DBm is an absolute optical power referenced to 1 mW.
type DBm float64

// MilliWatt is an absolute optical power in the linear domain.
type MilliWatt float64

// Linear converts a relative dB ratio to a linear power ratio.
func (d DB) Linear() float64 { return math.Pow(10, float64(d)/10) }

// LinearToDB converts a linear power ratio to decibels. Ratios must be
// strictly positive; zero maps to -Inf, which propagates harmlessly
// through the loss budget (a fully blocked signal).
func LinearToDB(ratio float64) DB {
	return DB(10 * math.Log10(ratio))
}

// MilliWatt converts an absolute dBm power to linear milliwatts.
func (p DBm) MilliWatt() MilliWatt {
	return MilliWatt(math.Pow(10, float64(p)/10))
}

// DBm converts a linear power to dBm. Non-positive powers map to -Inf.
func (p MilliWatt) DBm() DBm {
	return DBm(10 * math.Log10(float64(p)))
}

// Add applies a relative gain or loss to an absolute power. Because
// both quantities are logarithmic this is a plain addition.
func (p DBm) Add(gain DB) DBm { return p + DBm(gain) }

// SumMilliWatt sums linear powers. Noise powers combine linearly
// (Eq. 7 of the paper sums the crosstalk contributions of every other
// wavelength present at the photodetector).
func SumMilliWatt(ps ...MilliWatt) MilliWatt {
	var s MilliWatt
	for _, p := range ps {
		s += p
	}
	return s
}
