package phys

import (
	"errors"
	"fmt"
)

// Grid describes the WDM wavelength comb shared by every optical
// network interface of the ring. The paper assumes equal channel
// spacing covering a whole free spectral range (FSR): with NW channels
// the spacing is FSR/NW, so the comb tiles the FSR exactly and the
// crosstalk between two channels depends only on their index distance.
type Grid struct {
	// CenterNM is the comb centre wavelength in nanometres. The paper
	// uses a 1550 nm band; the exact centre only fixes the absolute
	// channel positions, the crosstalk model depends on distances.
	CenterNM float64
	// FSRNM is the micro-ring free spectral range in nanometres
	// (12.8 nm in the paper's evaluation).
	FSRNM float64
	// Q is the quality factor of the micro-ring resonators (9600 in
	// the paper). The -3 dB bandwidth of the Lorentzian filter is
	// 2*delta = lambda/Q.
	Q float64
	// Channels is NW, the number of wavelengths multiplexed on the
	// waveguide.
	Channels int
}

// DefaultGrid returns the comb used throughout the paper's evaluation
// section with the requested number of channels.
func DefaultGrid(channels int) Grid {
	return Grid{CenterNM: 1550, FSRNM: 12.8, Q: 9600, Channels: channels}
}

// Validate reports whether the grid parameters are physically
// meaningful.
func (g Grid) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("phys: grid needs at least one channel, got %d", g.Channels)
	case g.FSRNM <= 0:
		return errors.New("phys: free spectral range must be positive")
	case g.CenterNM <= 0:
		return errors.New("phys: centre wavelength must be positive")
	case g.Q <= 0:
		return errors.New("phys: quality factor must be positive")
	case g.FSRNM >= g.CenterNM:
		return errors.New("phys: free spectral range must be far smaller than the carrier wavelength")
	}
	return nil
}

// SpacingNM is the channel spacing CS = FSR / NW in nanometres.
func (g Grid) SpacingNM() float64 { return g.FSRNM / float64(g.Channels) }

// DeltaNM is the Lorentzian half-width delta, from 2*delta = lambda/Q.
func (g Grid) DeltaNM() float64 { return g.CenterNM / (2 * g.Q) }

// WavelengthNM returns the absolute position of grid channel ch
// (0-based). Channels are laid out symmetrically around the comb
// centre: channel 0 sits at Center - FSR/2 + CS/2.
func (g Grid) WavelengthNM(ch int) float64 {
	return g.CenterNM - g.FSRNM/2 + (float64(ch)+0.5)*g.SpacingNM()
}

// DistanceNM is the spectral distance |lambda_i - lambda_j| between two
// grid channels.
func (g Grid) DistanceNM(i, j int) float64 {
	d := float64(i-j) * g.SpacingNM()
	if d < 0 {
		d = -d
	}
	return d
}

// CrosstalkDB returns Phi(lambda_m, lambda_i) in decibels: the fraction
// of channel i's power that leaks into the drop port of a micro-ring
// resonant at channel m (Eq. 1 of the paper, converted to dB). For
// i == m the filter is resonant and the value is 0 dB (full drop).
func (g Grid) CrosstalkDB(m, i int) DB {
	return LinearToDB(Lorentzian(g.DistanceNM(m, i), g.DeltaNM()))
}
