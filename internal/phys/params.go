package phys

import "fmt"

// Params collects the device-level power parameters of the optical
// layer. The defaults are exactly Table I of the paper plus the laser
// powers stated in Section IV.
type Params struct {
	// PropagationDBPerCM is the straight-waveguide propagation loss
	// (Table I: -0.274 dB/cm, after Dong et al.).
	PropagationDBPerCM DB
	// BendingDBPer90 is the loss of one 90-degree waveguide bend
	// (Table I: -0.005 dB, after Xia et al.).
	BendingDBPer90 DB
	// LossOffMR is Lp0, the pass-by loss of an OFF-state micro-ring
	// (Table I: -0.005 dB).
	LossOffMR DB
	// LossOnMR is Lp1, both the through-port loss a non-resonant
	// wavelength suffers at an ON-state micro-ring and the drop loss
	// of the resonant wavelength (Table I: -0.5 dB).
	LossOnMR DB
	// XtalkOffMR is Kp0, the crosstalk coefficient of an OFF-state
	// micro-ring: how much of the resonant wavelength still leaks to
	// the drop port when the ring is detuned (Table I: -20 dB).
	XtalkOffMR DB
	// XtalkOnMR is Kp1, the ON-state crosstalk coefficient: the
	// residue of a dropped signal that survives at the through port
	// (Table I: -25 dB).
	XtalkOnMR DB
	// LaserOnDBm is Pv, the VCSEL emission power while transmitting a
	// logical 1 (-10 dBm in Section IV).
	LaserOnDBm DBm
	// LaserOffDBm is P0, the residual emission while transmitting a
	// logical 0; imperfect extinction makes it non-zero (-30 dBm in
	// Section IV) and it is accounted as noise in Eq. 8.
	LaserOffDBm DBm
}

// DefaultParams returns the Table I values used throughout the paper's
// evaluation.
func DefaultParams() Params {
	return Params{
		PropagationDBPerCM: -0.274,
		BendingDBPer90:     -0.005,
		LossOffMR:          -0.005,
		LossOnMR:           -0.5,
		XtalkOffMR:         -20,
		XtalkOnMR:          -25,
		LaserOnDBm:         -10,
		LaserOffDBm:        -30,
	}
}

// Validate rejects parameter sets that would break the loss model:
// every relative coefficient must be a loss (non-positive dB) and the
// laser's 1-level must carry more power than its 0-level residue.
func (p Params) Validate() error {
	check := func(name string, v DB) error {
		if v > 0 {
			return fmt.Errorf("phys: %s must be a loss (<= 0 dB), got %v dB", name, float64(v))
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    DB
	}{
		{"propagation loss", p.PropagationDBPerCM},
		{"bending loss", p.BendingDBPer90},
		{"OFF-state MR loss Lp0", p.LossOffMR},
		{"ON-state MR loss Lp1", p.LossOnMR},
		{"OFF-state crosstalk Kp0", p.XtalkOffMR},
		{"ON-state crosstalk Kp1", p.XtalkOnMR},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.LaserOnDBm <= p.LaserOffDBm {
		return fmt.Errorf("phys: laser 1-level (%v dBm) must exceed 0-level (%v dBm)",
			float64(p.LaserOnDBm), float64(p.LaserOffDBm))
	}
	return nil
}
