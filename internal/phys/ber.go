package phys

import "math"

// SNR computes the signal-to-noise ratio at a photodetector input
// following Eq. 8 of the paper:
//
//	SNR = Psignal / (Pnoise + P0)
//
// where Psignal is the detected power of the wanted wavelength, Pnoise
// is the summed first-order crosstalk leakage of every other
// wavelength present at the detector, and P0 is the laser's residual
// 0-level power (imperfect OOK extinction), all in linear milliwatts.
// A non-positive signal yields SNR 0 (the link is dark).
func SNR(signal, noise, p0 MilliWatt) float64 {
	if signal <= 0 {
		return 0
	}
	den := float64(noise) + float64(p0)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(signal) / den
}

// BEROOK evaluates the bit-error rate of direct-detection OOK
// modulation as a function of the linear SNR (Eq. 9):
//
//	BER = 1/2 * exp(-SNR/2) * (1 + SNR/4)
//
// The expression is monotonically decreasing for SNR >= 2 (the regime
// of any usable link) and is clamped to [0, 0.5]: SNR 0 means the
// receiver guesses, not that it is always wrong.
func BEROOK(snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	ber := 0.5 * math.Exp(-snr/2) * (1 + snr/4)
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// Log10BER is a display helper: log10 of the BER with a floor that
// keeps extremely clean links (BER underflowing float64) plottable.
func Log10BER(ber float64) float64 {
	const floor = 1e-300
	if ber < floor {
		ber = floor
	}
	return math.Log10(ber)
}

// SNRForBER inverts Eq. 9 numerically: it returns the linear SNR at
// which OOK direct detection reaches the target BER. It is used by
// link-budget style analyses (e.g. deriving the laser power needed for
// a BER spec). The function requires 0 < ber < 0.5 and uses bisection
// on the monotone region.
func SNRForBER(ber float64) float64 {
	if ber >= 0.5 {
		return 0
	}
	if ber <= 0 {
		return math.Inf(1)
	}
	lo, hi := 2.0, 2.0
	for BEROOK(hi) > ber {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if BEROOK(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
