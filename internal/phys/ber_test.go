package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSNRBasic(t *testing.T) {
	// Signal 100 uW, noise 4 uW, P0 1 uW -> SNR 20.
	got := SNR(0.1, 0.004, 0.001)
	if !almostEqual(got, 20, 1e-9) {
		t.Errorf("SNR = %v, want 20", got)
	}
}

func TestSNRDegenerateInputs(t *testing.T) {
	if got := SNR(0, 1, 1); got != 0 {
		t.Errorf("dark link SNR = %v, want 0", got)
	}
	if got := SNR(-1, 1, 1); got != 0 {
		t.Errorf("negative signal SNR = %v, want 0", got)
	}
	if got := SNR(1, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("noiseless SNR = %v, want +Inf", got)
	}
}

func TestSNRWithPaperLaserLevels(t *testing.T) {
	p := DefaultParams()
	sig := p.LaserOnDBm.MilliWatt() // 0.1 mW
	p0 := p.LaserOffDBm.MilliWatt() // 0.001 mW
	got := SNR(sig, 0, p0)
	if !almostEqual(got, 100, 1e-9) {
		t.Errorf("crosstalk-free SNR with paper lasers = %v, want 100 (20 dB extinction)", got)
	}
}

func TestBEROOKKnownValues(t *testing.T) {
	// Eq. 9 evaluated directly.
	cases := []struct {
		snr float64
		ber float64
	}{
		{0, 0.5},
		{4, 0.5 * math.Exp(-2) * 2},
		{20, 0.5 * math.Exp(-10) * 6},
		{100, 0.5 * math.Exp(-50) * 26},
	}
	for _, c := range cases {
		if got := BEROOK(c.snr); !almostEqual(got, c.ber, 1e-15) {
			t.Errorf("BEROOK(%v) = %v, want %v", c.snr, got, c.ber)
		}
	}
}

func TestBEROOKClamped(t *testing.T) {
	if got := BEROOK(-5); got != 0.5 {
		t.Errorf("BEROOK(-5) = %v, want clamp at 0.5", got)
	}
	if got := BEROOK(1); got > 0.5 {
		t.Errorf("BEROOK(1) = %v, must never exceed 0.5", got)
	}
}

func TestBEROOKMonotoneDecreasing(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := 2 + math.Abs(math.Mod(aRaw, 500))
		b := a + 1e-3 + math.Abs(math.Mod(bRaw, 500))
		return BEROOK(b) <= BEROOK(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog10BERFloor(t *testing.T) {
	if got := Log10BER(0); got != -300 {
		t.Errorf("Log10BER(0) = %v, want -300 floor", got)
	}
	if got := Log10BER(1e-4); !almostEqual(got, -4, 1e-12) {
		t.Errorf("Log10BER(1e-4) = %v, want -4", got)
	}
}

func TestSNRForBERInvertsBEROOK(t *testing.T) {
	for _, ber := range []float64{1e-3, 3.16e-4, 1e-6, 1e-9, 1e-12} {
		snr := SNRForBER(ber)
		back := BEROOK(snr)
		if math.Abs(math.Log10(back)-math.Log10(ber)) > 1e-6 {
			t.Errorf("BEROOK(SNRForBER(%g)) = %g, want %g", ber, back, ber)
		}
	}
}

func TestSNRForBERPaperRegime(t *testing.T) {
	// The paper's Pareto plots live around log10(BER) of -3.3..-3.7,
	// which Eq. 9 maps to linear SNRs in the high-teens.
	snr := SNRForBER(math.Pow(10, -3.5))
	if snr < 14 || snr < 0 || snr > 25 {
		t.Errorf("SNR for BER 10^-3.5 = %v, want high-teens", snr)
	}
}

func TestSNRForBERBoundaries(t *testing.T) {
	if got := SNRForBER(0.5); got != 0 {
		t.Errorf("SNRForBER(0.5) = %v, want 0", got)
	}
	if got := SNRForBER(0); !math.IsInf(got, 1) {
		t.Errorf("SNRForBER(0) = %v, want +Inf", got)
	}
}

func TestParamsValidateDefaults(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("Table I parameters must validate: %v", err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	p := DefaultParams()
	p.LossOnMR = 0.5 // a gain: impossible for a passive ring
	if err := p.Validate(); err == nil {
		t.Error("positive MR loss must be rejected")
	}
	p = DefaultParams()
	p.LaserOnDBm = -40 // below the 0-level
	if err := p.Validate(); err == nil {
		t.Error("1-level below 0-level must be rejected")
	}
}

func TestThroughAndDropLoss(t *testing.T) {
	p := DefaultParams()
	if got := ThroughLossDB(p, MROff, false); got != p.LossOffMR {
		t.Errorf("OFF through loss = %v, want Lp0", got)
	}
	if got := ThroughLossDB(p, MROn, false); got != p.LossOnMR {
		t.Errorf("ON through loss = %v, want Lp1", got)
	}
	if got := ThroughLossDB(p, MROn, true); got != p.XtalkOnMR {
		t.Errorf("resonant ON through residue = %v, want Kp1", got)
	}
	if got := ThroughLossDB(p, MROff, true); got != p.LossOffMR {
		t.Errorf("resonant OFF through loss = %v, want Lp0", got)
	}
	if got := DropLossDB(p, MROn); got != p.LossOnMR {
		t.Errorf("ON drop loss = %v, want Lp1", got)
	}
	if got := DropLossDB(p, MROff); got != p.XtalkOffMR {
		t.Errorf("OFF drop leak = %v, want Kp0", got)
	}
}
