package phys_test

import (
	"fmt"

	"repro/internal/phys"
)

// The crosstalk-to-BER pipeline of Eqs. 1, 8 and 9 on the paper's
// comb: an 8-channel grid over a 12.8 nm FSR, the -10 dBm laser, and
// one adjacent-channel interferer.
func Example() {
	grid := phys.DefaultGrid(8)
	par := phys.DefaultParams()

	// Adjacent-channel leakage through a micro-ring tuned one spacing
	// away (Eq. 1, in dB).
	leak := grid.CrosstalkDB(0, 1)
	fmt.Printf("adjacent leak: %.1f dB\n", float64(leak))

	// A -10 dBm signal against that leak plus the laser's 0-level
	// residue (Eq. 8), mapped to OOK BER (Eq. 9).
	signal := par.LaserOnDBm.MilliWatt()
	noise := par.LaserOnDBm.Add(leak).MilliWatt()
	snr := phys.SNR(signal, noise, par.LaserOffDBm.MilliWatt())
	fmt.Printf("SNR: %.0f\n", snr)
	fmt.Printf("log10(BER): %.1f\n", phys.Log10BER(phys.BEROOK(snr)))
	// Output:
	// adjacent leak: -26.0 dB
	// SNR: 80
	// log10(BER): -16.3
}

func ExampleLorentzian() {
	// Half of the -3 dB bandwidth: the filter passes exactly half the
	// power.
	fmt.Printf("%.2f\n", phys.Lorentzian(0.08, 0.08))
	// Output: 0.50
}

func ExampleSNRForBER() {
	snr := phys.SNRForBER(1e-9)
	fmt.Printf("BER 1e-9 needs linear SNR ~%.0f\n", snr)
	// Output: BER 1e-9 needs linear SNR ~45
}
