package phys

// Lorentzian evaluates the micro-ring resonator drop-port transfer
// function of Eq. 1:
//
//	Phi(lambda_i, lambda_m) = delta^2 / ((lambda_i - lambda_m)^2 + delta^2)
//
// where distNM = |lambda_i - lambda_m| is the spectral distance between
// the signal and the ring resonance, and deltaNM is the half of the
// -3 dB bandwidth (2*delta = lambda_m / Q). The result is the linear
// fraction of the input power that appears at the drop port: 1 at
// resonance, 1/2 at one half-bandwidth, and falling off quadratically
// with distance. This undesirable partial drop of non-resonant
// channels is the physical source of inter-channel crosstalk.
func Lorentzian(distNM, deltaNM float64) float64 {
	d2 := deltaNM * deltaNM
	return d2 / (distNM*distNM + d2)
}

// MRState is the configuration of a micro-ring resonator in an ONI
// receiver bank: ON (tuned, dropping its resonant channel toward the
// photodetector) or OFF (detuned, passing traffic through).
type MRState bool

const (
	// MROff lets all wavelengths travel toward the through port,
	// each attenuated by the small OFF-state pass loss Lp0 (Eq. 2).
	MROff MRState = false
	// MROn drops the resonant wavelength toward the photodetector
	// (drop loss Lp1) and attenuates every through wavelength by the
	// ON-state pass loss Lp1 (Eq. 4).
	MROn MRState = true
)

// ThroughLossDB returns the attenuation a wavelength suffers when it
// continues past an MR toward the through port (Eqs. 2 and 4).
// resonant indicates whether the wavelength matches the MR's channel:
// a resonant wavelength passing an ON-state MR is almost entirely
// dropped, so only the crosstalk residue Kp1 survives at the through
// port; a resonant wavelength passing an OFF-state MR keeps its power
// up to the OFF pass loss (the drop-port leak Kp0 is what reaches that
// ring's idle photodetector, not a loss on the through path worth
// modelling separately at first order).
func ThroughLossDB(p Params, state MRState, resonant bool) DB {
	if state == MROn {
		if resonant {
			return p.XtalkOnMR // Kp1: residue of a dropped signal
		}
		return p.LossOnMR // Lp1
	}
	return p.LossOffMR // Lp0
}

// DropLossDB returns the attenuation from the MR input to the drop
// port for its resonant wavelength (Eqs. 3 and 5): Lp1 through an
// ON-state ring, Kp0 (the OFF-state crosstalk coefficient) through an
// OFF-state ring.
func DropLossDB(p Params, state MRState) DB {
	if state == MROn {
		return p.LossOnMR
	}
	return p.XtalkOffMR
}
