package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestDBLinearKnownValues(t *testing.T) {
	cases := []struct {
		db  DB
		lin float64
	}{
		{0, 1},
		{10, 10},
		{-10, 0.1},
		{3, 1.9952623149688795},
		{-3, 0.5011872336272722},
		{-20, 0.01},
	}
	for _, c := range cases {
		if got := c.db.Linear(); !almostEqual(got, c.lin, 1e-12) {
			t.Errorf("DB(%v).Linear() = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestLinearToDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if db < -200 || db > 200 {
			return true // skip degenerate magnitudes
		}
		back := LinearToDB(DB(db).Linear())
		return almostEqual(float64(back), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmMilliWattKnownValues(t *testing.T) {
	cases := []struct {
		dbm DBm
		mw  float64
	}{
		{0, 1},
		{-10, 0.1},   // Pv: the paper's 1-level laser power
		{-30, 0.001}, // P0: the paper's 0-level residue
		{10, 10},
	}
	for _, c := range cases {
		if got := c.dbm.MilliWatt(); !almostEqual(float64(got), c.mw, 1e-12) {
			t.Errorf("DBm(%v).MilliWatt() = %v, want %v", c.dbm, got, c.mw)
		}
		if got := MilliWatt(c.mw).DBm(); !almostEqual(float64(got), float64(c.dbm), 1e-9) {
			t.Errorf("MilliWatt(%v).DBm() = %v, want %v", c.mw, got, c.dbm)
		}
	}
}

func TestDBmAddIsLogDomainMultiplication(t *testing.T) {
	f := func(pRaw, lossRaw float64) bool {
		p := DBm(math.Mod(pRaw, 60)) // keep within float-friendly range
		loss := DB(-math.Abs(math.Mod(lossRaw, 60)))
		viaLog := p.Add(loss).MilliWatt()
		viaLin := MilliWatt(float64(p.MilliWatt()) * loss.Linear())
		return almostEqual(float64(viaLog), float64(viaLin), 1e-9*math.Abs(float64(viaLin))+1e-300)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumMilliWatt(t *testing.T) {
	if got := SumMilliWatt(); got != 0 {
		t.Errorf("empty sum = %v, want 0", got)
	}
	if got := SumMilliWatt(1, 2, 3.5); !almostEqual(float64(got), 6.5, 1e-12) {
		t.Errorf("SumMilliWatt = %v, want 6.5", got)
	}
}

func TestZeroPowerToDBmIsNegInf(t *testing.T) {
	if got := MilliWatt(0).DBm(); !math.IsInf(float64(got), -1) {
		t.Errorf("0 mW = %v dBm, want -Inf", got)
	}
}
